(* Campaign observatory: the trace fold (lineage graph, comm matrix,
   deadlock witnesses, renderers) and the unified Trace/Obs wire
   format, exercised end to end — events are emitted by real campaign
   and scheduler runs, serialized as JSONL, and folded back. *)

open Minic
open Mpisim

(* substring containment, for checking rendered reports *)
let contains ~needle hay =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  nn = 0 || go 0

(* ------------------------------------------------------------------ *)
(* line triage and forward compatibility                               *)
(* ------------------------------------------------------------------ *)

let test_classify_lines () =
  (match Obs.Fold.classify_line "   " with
  | `Blank -> ()
  | _ -> Alcotest.fail "blank line not classified as blank");
  (match Obs.Fold.classify_line "{\"ev\":\"restart\",\"iteration\":3,\"reason\":\"x\"}" with
  | `Event (Obs.Event.Restart { iteration = 3; reason = "x" }) -> ()
  | _ -> Alcotest.fail "valid event not classified");
  (* a kind minted by a future build: skipped, not an error *)
  (match Obs.Fold.classify_line "{\"ev\":\"hologram\",\"t\":1.0,\"shade\":4}" with
  | `Unknown "hologram" -> ()
  | `Unknown k -> Alcotest.failf "wrong unknown kind %s" k
  | _ -> Alcotest.fail "unknown kind not skipped");
  (* known kind with missing fields is malformed, not unknown *)
  (match Obs.Fold.classify_line "{\"ev\":\"restart\"}" with
  | `Malformed _ -> ()
  | _ -> Alcotest.fail "truncated event not flagged malformed");
  match Obs.Fold.classify_line "{not json" with
  | `Malformed _ -> ()
  | _ -> Alcotest.fail "bad JSON not flagged malformed"

let test_unknown_kinds_counted () =
  let lines =
    [
      "{\"ev\":\"hologram\",\"x\":1}";
      "";
      "{\"ev\":\"restart\",\"iteration\":0,\"reason\":\"seed\"}";
      "{\"ev\":\"hologram\",\"x\":2}";
      "{\"ev\":\"chrono\",\"y\":3}";
      "garbage";
    ]
  in
  let f = Obs.Fold.of_lines lines in
  Alcotest.(check int) "events" 1 f.Obs.Fold.events;
  Alcotest.(check int) "malformed" 1 f.Obs.Fold.malformed;
  Alcotest.(check (list (pair string int)))
    "unknown kinds"
    [ ("chrono", 1); ("hologram", 2) ]
    f.Obs.Fold.unknown_kinds;
  (* the report surfaces the skip count *)
  let txt = Obs.Fold.to_text f in
  Alcotest.(check bool)
    "skip count rendered" true
    (contains ~needle:"skipped 3 event(s) of unknown kind" txt)

(* ------------------------------------------------------------------ *)
(* emit -> parse -> fold round trip for every event kind               *)
(* ------------------------------------------------------------------ *)

let all_kind_samples : Obs.Event.t list =
  [
    Campaign_start { target = "toy"; iterations = 10; seed = 1; nprocs = 4 };
    Campaign_end { iterations_run = 10; covered = 5; reachable = 8; bugs = 1; wall_s = 0.5 };
    Iter_start { iteration = 0; nprocs = 4; focus = 0 };
    Iter_end
      {
        iteration = 0;
        covered = 5;
        reachable = 8;
        cs_size = 3;
        faults = 1;
        restarted = false;
        exec_s = 0.01;
        solve_s = 0.02;
      };
    Solver_call
      {
        incremental = true;
        outcome = Obs.Event.Sat;
        nodes = 12;
        vars = 3;
        constraints = 4;
        time_s = 0.001;
      };
    Negation { iteration = 0; index = 2; sat = true };
    Restart { iteration = 3; reason = "stagnation" };
    Sched_step { kind = "send"; rank = 0; comm = 0; detail = "dest=1 tag=0" };
    Sched_step { kind = "recv"; rank = 1; comm = 0; detail = "src=0 tag=0" };
    Sched_deadlock { ranks = [ 1; 2 ] };
    Fault { iteration = 0; rank = 1; kind = "assert"; detail = "boom" };
    Coverage_delta { iteration = 0; covered_before = 0; covered_after = 5 };
    Worker_spawn { worker = 1 };
    Worker_task { worker = 1; task = 2; time_s = 0.1 };
    Worker_exit { worker = 1; tasks = 2 };
    Cache_lookup { hit = true; constraints = 4; entries = 9 };
    Cache_evict { dropped = 1; entries = 8 };
    Checkpoint_write { iteration = 5; path = "/tmp/c"; bytes = 100 };
    Checkpoint_load { iteration = 5; path = "/tmp/c" };
    Lineage_test { test = 1; parent = 0; origin = "negated"; branch = 7; index = 2; cached = false };
    Lineage_negation { parent = 1; index = 3; branch = 9; outcome = Obs.Event.Unsat; cached = true };
    Msg_matched { src = 0; dst = 1; comm = 0; tag = 0 };
    Coll_done { comm = 0; signature = "barrier"; ranks = [ 0; 1; 2; 3 ] };
    Rank_blocked { rank = 2; comm = 0; kind = "recv"; peer = 0 };
    Deadlock_witness { rank = 1; comm = 0; kind = "recv"; peer = 2 };
    Span { domain = 1; kind = "exec"; t0 = 1_000; t1 = 2_000 };
    Status_snapshot
      { rounds = 3; executed = 10; covered = 5; reachable = 8; bugs = 1;
        queue = 2; path = "/tmp/status.json" };
    Ledger_append
      { path = "/tmp/ledger.jsonl"; run = "toy#0"; covered = 5; reachable = 8; bugs = 1 };
  ]

let test_roundtrip_fold_every_kind () =
  let lines =
    List.map (fun ev -> Obs.Json.to_string (Obs.Event.to_json ~t:0.5 ev)) all_kind_samples
  in
  let f = Obs.Fold.of_lines lines in
  Alcotest.(check int) "no skips" 0 (List.length f.Obs.Fold.unknown_kinds);
  Alcotest.(check int) "no malformed" 0 f.Obs.Fold.malformed;
  Alcotest.(check int) "all lines folded" (List.length lines) f.Obs.Fold.events;
  (* every one of the 27 kinds appears in the census *)
  Alcotest.(check int) "27 kinds in census" 27 (List.length f.Obs.Fold.census);
  (* spot-check the aggregation paths fed by the new kinds *)
  Alcotest.(check int) "matrix has the matched pair" 1
    (List.length f.Obs.Fold.matrix);
  Alcotest.(check int) "collective counted" 1 (List.length f.Obs.Fold.collectives);
  Alcotest.(check int) "witness edge kept" 1 (List.length f.Obs.Fold.witness);
  Alcotest.(check int) "deadlock counted" 1 f.Obs.Fold.deadlocks;
  Alcotest.(check int) "lineage node kept" 1 (List.length f.Obs.Fold.lineage);
  Alcotest.(check int) "span kept" 1 (List.length f.Obs.Fold.spans);
  Alcotest.(check (list (pair string int))) "restart reasons" [ ("stagnation", 1) ]
    f.Obs.Fold.restarts

(* ------------------------------------------------------------------ *)
(* lineage invariants on a real campaign trace                         *)
(* ------------------------------------------------------------------ *)

let heat2d () =
  match Targets.Catalog.find "heat2d" with
  | Some t -> Targets.Registry.instrument t
  | None -> Alcotest.fail "heat2d target missing"

let campaign_fold ~jobs ~iterations =
  let buf = Buffer.create 65536 in
  let info = heat2d () in
  let settings =
    {
      Compi.Campaign.default_settings with
      Compi.Campaign.base =
        {
          Compi.Driver.default_settings with
          Compi.Driver.iterations;
          dfs_phase_iters = 10;
          initial_nprocs = 4;
          seed = 7;
        };
      jobs;
    }
  in
  ignore
    (Obs.Sink.with_sink (Obs.Sink.Buffer_sink buf) (fun () ->
         Compi.Campaign.run ~settings ~label:"heat2d" info));
  Obs.Fold.of_lines (String.split_on_char '\n' (Buffer.contents buf))

let test_lineage_invariants () =
  let f = campaign_fold ~jobs:2 ~iterations:25 in
  Alcotest.(check (list string)) "lineage structurally sound" [] (Obs.Fold.lineage_errors f);
  Alcotest.(check int) "one lineage node per iteration" f.Obs.Fold.iterations
    (List.length f.Obs.Fold.lineage);
  (* acyclic by construction (parent < test); every chain ends at a root
     whose origin is a seed or restart *)
  List.iter
    (fun (n : Obs.Fold.lineage_node) ->
      match Obs.Fold.chain f n.Obs.Fold.ln_test with
      | [] -> Alcotest.failf "test %d has no chain" n.Obs.Fold.ln_test
      | chain -> (
        let root = List.nth chain (List.length chain - 1) in
        Alcotest.(check int) "root has no parent" (-1) root.Obs.Fold.ln_parent;
        match root.Obs.Fold.ln_origin with
        | "seed" | "restart" -> ()
        | o -> Alcotest.failf "root of test %d is %s" n.Obs.Fold.ln_test o))
    f.Obs.Fold.lineage;
  (* every branch a negation first covered is reachable through lineage:
     its first test exists in the graph *)
  List.iter
    (fun (s : Obs.Fold.branch_stat) ->
      if s.Obs.Fold.br_first_test >= 0 then
        match Obs.Fold.node f s.Obs.Fold.br_first_test with
        | Some _ -> ()
        | None ->
          Alcotest.failf "branch %d first test %d missing from lineage"
            s.Obs.Fold.br_branch s.Obs.Fold.br_first_test)
    f.Obs.Fold.branches;
  (* the sequential driver threads the same provenance *)
  let buf = Buffer.create 65536 in
  let info = heat2d () in
  let settings =
    {
      Compi.Driver.default_settings with
      Compi.Driver.iterations = 15;
      dfs_phase_iters = 8;
      initial_nprocs = 4;
      seed = 7;
    }
  in
  ignore
    (Obs.Sink.with_sink (Obs.Sink.Buffer_sink buf) (fun () ->
         Compi.Driver.run ~settings ~label:"heat2d" info));
  let fd = Obs.Fold.of_lines (String.split_on_char '\n' (Buffer.contents buf)) in
  Alcotest.(check (list string)) "driver lineage sound" [] (Obs.Fold.lineage_errors fd);
  Alcotest.(check bool) "driver produced lineage" true (fd.Obs.Fold.lineage <> [])

(* ------------------------------------------------------------------ *)
(* deadlock witness: the edges name the wait-for cycle                 *)
(* ------------------------------------------------------------------ *)

let test_deadlock_witness () =
  (* rank 0 finishes; 1 and 2 wait on each other — the classic cycle *)
  let tracer = Trace.create () in
  let r =
    Scheduler.run ~nprocs:3 ~on_event:(Trace.collector tracer)
      (fun ~rank ~mpi ->
        if rank = 0 then Ok ()
        else if rank = 1 then
          match mpi (Mpi_iface.Recv { comm = Mpi_iface.world; src = Some 2; tag = None }) with
          | _ -> Ok ()
        else
          match mpi (Mpi_iface.Recv { comm = Mpi_iface.world; src = Some 1; tag = None }) with
          | _ -> Ok ())
  in
  Alcotest.(check (list int)) "ranks 1,2 deadlocked" [ 1; 2 ] r.Scheduler.deadlocked;
  (* fold the trace through the unified JSONL wire format *)
  let f =
    Obs.Fold.of_lines (String.split_on_char '\n' (Trace.to_jsonl tracer))
  in
  Alcotest.(check int) "one deadlock" 1 f.Obs.Fold.deadlocks;
  let edge rank peer =
    List.exists
      (fun ((e : Obs.Fold.witness_edge), _) ->
        e.Obs.Fold.we_rank = rank && e.Obs.Fold.we_peer = peer
        && e.Obs.Fold.we_kind = "recv")
      f.Obs.Fold.witness
  in
  Alcotest.(check bool) "edge 1 waits on 2" true (edge 1 2);
  Alcotest.(check bool) "edge 2 waits on 1" true (edge 2 1);
  (match Obs.Fold.witness_cycle f with
  | None -> Alcotest.fail "no wait-for cycle found"
  | Some cycle ->
    Alcotest.(check (list int)) "cycle names ranks 1 and 2" [ 1; 2 ]
      (List.sort compare cycle));
  (* the rendered reports name the cycle *)
  let txt = Obs.Fold.to_text f in
  Alcotest.(check bool) "text report names the cycle" true
    (contains ~needle:"wait-for cycle" txt);
  let html = Obs.Fold.to_html f in
  Alcotest.(check bool) "html report names the cycle" true
    (contains ~needle:"wait-for cycle" html)

let test_collective_witness_no_false_cycle () =
  (* rank 0 never joins the barrier: 1 and 2 block in the collective.
     Witness edges point at the absent rank — no directed cycle. *)
  let tracer = Trace.create () in
  let r =
    Scheduler.run ~nprocs:3 ~on_event:(Trace.collector tracer)
      (fun ~rank ~mpi ->
        if rank = 0 then Ok ()
        else match mpi (Mpi_iface.Barrier Mpi_iface.world) with _ -> Ok ())
  in
  Alcotest.(check (list int)) "ranks 1,2 deadlocked" [ 1; 2 ] r.Scheduler.deadlocked;
  let f = Obs.Fold.of_lines (String.split_on_char '\n' (Trace.to_jsonl tracer)) in
  Alcotest.(check bool) "witness edges present" true (f.Obs.Fold.witness <> []);
  List.iter
    (fun ((e : Obs.Fold.witness_edge), _) ->
      Alcotest.(check string) "collective kind" "collective:barrier" e.Obs.Fold.we_kind;
      Alcotest.(check int) "waiting on the absent rank" 0 e.Obs.Fold.we_peer)
    f.Obs.Fold.witness;
  match Obs.Fold.witness_cycle f with
  | None -> ()
  | Some c ->
    Alcotest.failf "no cycle expected, got %s"
      (String.concat "," (List.map string_of_int c))

(* ------------------------------------------------------------------ *)
(* comm matrix from a real run                                         *)
(* ------------------------------------------------------------------ *)

let test_comm_matrix_ring () =
  (* 4-rank ring: each rank sends one message to (rank+1) mod 4 *)
  let tracer = Trace.create () in
  let r =
    Scheduler.run ~nprocs:4 ~on_event:(Trace.collector tracer)
      (fun ~rank ~mpi ->
        let next = (rank + 1) mod 4 in
        let prev = (rank + 3) mod 4 in
        match
          mpi (Mpi_iface.Send { comm = Mpi_iface.world; dest = next; tag = 0; data = Value.Vint rank })
        with
        | _ -> (
          match
            mpi (Mpi_iface.Recv { comm = Mpi_iface.world; src = Some prev; tag = None })
          with
          | _ -> Ok ()))
  in
  Alcotest.(check (list int)) "no deadlock" [] r.Scheduler.deadlocked;
  let f = Obs.Fold.of_lines (String.split_on_char '\n' (Trace.to_jsonl tracer)) in
  Alcotest.(check int) "four matrix cells" 4 (List.length f.Obs.Fold.matrix);
  List.iter
    (fun src ->
      let dst = (src + 1) mod 4 in
      Alcotest.(check (option int))
        (Printf.sprintf "cell %d->%d" src dst)
        (Some 1)
        (List.assoc_opt (src, dst) f.Obs.Fold.matrix))
    [ 0; 1; 2; 3 ];
  (* sends/recvs balance per rank *)
  List.iter
    (fun rank ->
      Alcotest.(check (option int)) "one send" (Some 1)
        (List.assoc_opt rank f.Obs.Fold.rank_sends);
      Alcotest.(check (option int)) "one recv" (Some 1)
        (List.assoc_opt rank f.Obs.Fold.rank_recvs))
    [ 0; 1; 2; 3 ]

(* ------------------------------------------------------------------ *)
(* report determinism                                                  *)
(* ------------------------------------------------------------------ *)

let test_stable_report_jobs_invariant () =
  let f1 = campaign_fold ~jobs:1 ~iterations:20 in
  let f4 = campaign_fold ~jobs:4 ~iterations:20 in
  Alcotest.(check string) "stable text identical across jobs"
    (Obs.Fold.to_text ~stable:true f1)
    (Obs.Fold.to_text ~stable:true f4);
  Alcotest.(check string) "stable html identical across jobs"
    (Obs.Fold.to_html ~stable:true f1)
    (Obs.Fold.to_html ~stable:true f4);
  (* re-rendering the same fold is byte-identical *)
  Alcotest.(check string) "re-render stable" (Obs.Fold.to_html f1) (Obs.Fold.to_html f1);
  (* the html is a full page with the curve *)
  let html = Obs.Fold.to_html f1 in
  Alcotest.(check bool) "doctype" true (String.length html >= 15 && String.sub html 0 15 = "<!DOCTYPE html>");
  Alcotest.(check bool) "has polyline" true (contains ~needle:"<polyline" html);
  Alcotest.(check bool) "closes html" true (contains ~needle:"</html>" html)

let suite =
  [
    ( "observatory",
      [
        Alcotest.test_case "line triage" `Quick test_classify_lines;
        Alcotest.test_case "unknown kinds skipped+counted" `Quick test_unknown_kinds_counted;
        Alcotest.test_case "roundtrip fold all kinds" `Quick test_roundtrip_fold_every_kind;
        Alcotest.test_case "lineage invariants" `Quick test_lineage_invariants;
        Alcotest.test_case "deadlock witness cycle" `Quick test_deadlock_witness;
        Alcotest.test_case "collective witness no cycle" `Quick
          test_collective_witness_no_false_cycle;
        Alcotest.test_case "comm matrix ring" `Quick test_comm_matrix_ring;
        Alcotest.test_case "stable report determinism" `Quick
          test_stable_report_jobs_invariant;
      ] );
  ]
