(* Tests for the evaluation targets: they validate, run cleanly on
   default inputs, and their seeded bugs trigger under exactly the
   documented conditions — in particular the SUSY-HMC FPE that needs 2
   or 4 processes but never 1 or 3 (paper section VI-A). *)

open Minic

let run_with ~nprocs ~inputs (t : Targets.Registry.t) =
  let info = Targets.Registry.instrument t in
  let config =
    {
      (Compi.Runner.default_config ~info) with
      Compi.Runner.nprocs;
      inputs;
      step_limit = t.Targets.Registry.tuning.Targets.Registry.step_limit;
    }
  in
  match Compi.Runner.run config with
  | Ok res -> res
  | Error (`Platform_limit _) -> Alcotest.fail "platform limit"

let fault_kinds res =
  List.map (fun (_, f) -> Fault.kind_name f) (Compi.Runner.faults res)

(* Inputs that pass SUSY's sanity check at a given size. *)
let susy_clean_inputs =
  [
    ("nx", 4); ("ny", 4); ("nz", 2); ("nt", 4); ("nroot", 2); ("warms", 1);
    ("trajecs", 1); ("nsteps", 1); ("nsrc", 1); ("seed", 17); ("tol_exp", 4);
    ("gauge_iter", 3); ("multi_mass", 1);
  ]

let set key value inputs = (key, value) :: List.remove_assoc key inputs

let test_catalog_complete () =
  Alcotest.(check (list string)) "names"
    [ "toy-fig1"; "toy-fig2"; "susy-hmc"; "hpl"; "imb-mpi1"; "heat2d"; "npb-cg"; "wc-race" ]
    (Targets.Catalog.names ())

let test_all_targets_validate () =
  List.iter
    (fun (t : Targets.Registry.t) ->
      Alcotest.(check (list string))
        (t.Targets.Registry.name ^ " checks")
        []
        (Check.check t.Targets.Registry.program))
    (Targets.Catalog.all ())

let test_branch_counts_sane () =
  let census name =
    let t = Targets.Catalog.find_exn name in
    (Targets.Registry.instrument t).Branchinfo.total_branches
  in
  Alcotest.(check bool) "susy largest" true (census "susy-hmc" > census "imb-mpi1");
  Alcotest.(check bool) "hpl large" true (census "hpl" > 300);
  Alcotest.(check bool) "imb moderate" true (census "imb-mpi1" > 100)

let test_susy_clean_run () =
  (* nt = 4 >= size = 4, vol divisible: passes sanity, no faults *)
  let res = run_with ~nprocs:4 ~inputs:(set "nt" 4 susy_clean_inputs) Targets.Susy_hmc.target in
  Alcotest.(check (list string)) "no faults" []
    (fault_kinds res
    |> List.filter (fun k -> k <> "mpi-error"))  (* no faults of any kind expected *)

let test_susy_bug1_sources () =
  (* nsrc > 2 triggers the under-allocated src buffer. nx<>nz avoids the
     FPE at size 4; use 3 procs (odd) so layout is safe. *)
  let inputs = set "nsrc" 3 (set "nt" 3 susy_clean_inputs) in
  let res = run_with ~nprocs:3 ~inputs Targets.Susy_hmc.target in
  Alcotest.(check bool) "segfault seen" true (List.mem "segfault" (fault_kinds res))

let test_susy_bug2_gauge () =
  let inputs = set "gauge_iter" 11 (set "nt" 3 susy_clean_inputs) in
  let res = run_with ~nprocs:3 ~inputs Targets.Susy_hmc.target in
  Alcotest.(check bool) "segfault seen" true (List.mem "segfault" (fault_kinds res))

let test_susy_bug3_multimass () =
  let inputs = set "multi_mass" 2 (set "nt" 3 susy_clean_inputs) in
  let res = run_with ~nprocs:3 ~inputs Targets.Susy_hmc.target in
  Alcotest.(check bool) "segfault seen" true (List.mem "segfault" (fault_kinds res))

let test_susy_fpe_needs_2_or_4_procs () =
  (* nx = nz triggers the division by zero — but only when size is 2;
     with nz = nx + 1 only when size is 4; never with 1 or 3. *)
  let fpe_inputs = set "nx" 2 (set "nz" 2 (set "nt" 4 susy_clean_inputs)) in
  let has_fpe nprocs inputs =
    let inputs = set "nt" (max 4 nprocs) inputs in
    (* keep nt >= size so sanity passes *)
    let res = run_with ~nprocs ~inputs Targets.Susy_hmc.target in
    List.mem "floating-point-exception" (fault_kinds res)
  in
  Alcotest.(check bool) "2 procs: FPE" true (has_fpe 2 fpe_inputs);
  Alcotest.(check bool) "1 proc: clean" false (has_fpe 1 fpe_inputs);
  Alcotest.(check bool) "3 procs: clean" false (has_fpe 3 fpe_inputs);
  let fpe4 = set "nx" 2 (set "nz" 3 (set "nt" 4 susy_clean_inputs)) in
  Alcotest.(check bool) "4 procs: FPE" true (has_fpe 4 fpe4)

let hpl_clean_inputs =
  [
    ("ns", 1); ("n", 64); ("nbs", 1); ("nb", 16); ("pmap", 0); ("grids", 1);
    ("p", 2); ("q", 2); ("thresh_exp", 4); ("npfacts", 1); ("pfact", 1);
    ("nbmins", 1); ("nbmin", 2); ("ndivs", 1); ("ndiv", 2); ("nrfacts", 1);
    ("rfact", 1); ("nbcasts", 1); ("bcast", 0); ("ndepths", 1); ("depth", 0);
    ("swap", 1); ("swap_thresh", 32); ("l1_trans", 0); ("u_trans", 0);
    ("equil", 1); ("align", 8); ("seed", 1);
  ]

let test_hpl_clean_run () =
  let res = run_with ~nprocs:4 ~inputs:hpl_clean_inputs Targets.Hpl.target in
  Alcotest.(check (list string)) "no faults" [] (fault_kinds res)

let test_hpl_sanity_rejects () =
  (* p*q > size must exit in the sanity phase: the branch for the
     factorization loop is then never covered *)
  let res =
    run_with ~nprocs:2
      ~inputs:(set "p" 4 (set "q" 4 hpl_clean_inputs))
      Targets.Hpl.target
  in
  Alcotest.(check (list string)) "clean exit, not a fault" [] (fault_kinds res);
  let full =
    run_with ~nprocs:4 ~inputs:hpl_clean_inputs Targets.Hpl.target
  in
  Alcotest.(check bool) "full run covers more" true
    (Concolic.Coverage.covered_branches full.Compi.Runner.coverage
    > Concolic.Coverage.covered_branches res.Compi.Runner.coverage)

let test_hpl_bcast_variants_diverge () =
  (* different bcast variants cover different branches *)
  let cover bcast =
    let res =
      run_with ~nprocs:4 ~inputs:(set "bcast" bcast hpl_clean_inputs) Targets.Hpl.target
    in
    Concolic.Coverage.branch_list res.Compi.Runner.coverage
  in
  Alcotest.(check bool) "variant 0 vs 5 differ" true (cover 0 <> cover 5)

let imb_clean_inputs =
  [
    ("iters", 3); ("minexp", 0); ("maxexp", 2); ("npmin", 2);
    ("run_pingpong", 1); ("run_pingping", 1); ("run_sendrecv", 1);
    ("run_exchange", 1); ("run_bcast", 1); ("run_allreduce", 1);
    ("run_reduce", 1); ("run_reduce_scatter", 1); ("run_allgather", 1);
    ("run_gather", 1); ("run_scatter", 1);
  ]

let test_imb_clean_run () =
  let res = run_with ~nprocs:4 ~inputs:imb_clean_inputs Targets.Imb_mpi1.target in
  Alcotest.(check (list string)) "no faults" [] (fault_kinds res)

let test_imb_two_proc_benchmarks_gate_on_size () =
  (* with one process the p2p benchmarks return early *)
  let res1 = run_with ~nprocs:1 ~inputs:(set "npmin" 1 imb_clean_inputs) Targets.Imb_mpi1.target in
  let res4 = run_with ~nprocs:4 ~inputs:imb_clean_inputs Targets.Imb_mpi1.target in
  Alcotest.(check (list string)) "single proc clean" [] (fault_kinds res1);
  Alcotest.(check bool) "more procs, more coverage" true
    (Concolic.Coverage.covered_branches res4.Compi.Runner.coverage
    > Concolic.Coverage.covered_branches res1.Compi.Runner.coverage)

let test_toy_fig2_branch_4f_needs_focus_shift () =
  (* the famous 4F: rank <> 0 and y >= 100. With focus 0 recording only
     itself it is invisible; all-recorders see it once y >= 100. *)
  let info = Targets.Registry.instrument Targets.Toy.fig2 in
  let run ~record_all =
    let config =
      {
        (Compi.Runner.default_config ~info) with
        Compi.Runner.nprocs = 4;
        record_all;
        inputs = [ ("x", 10); ("y", 150) ];
      }
    in
    match Compi.Runner.run config with
    | Ok res -> res.Compi.Runner.coverage
    | Error _ -> Alcotest.fail "run failed"
  in
  let with_all = run ~record_all:true in
  let focus_only = run ~record_all:false in
  Alcotest.(check bool) "all-recorders strictly more" true
    (Concolic.Coverage.covered_branches with_all
    > Concolic.Coverage.covered_branches focus_only)

let test_hpl_serial_path_needs_one_proc () =
  (* serial_lu runs only with a single process: the function is
     encountered at np=1 and never at np=8 — the Table VI mechanism *)
  let info = Targets.Registry.instrument Targets.Hpl.target in
  let encountered nprocs inputs =
    let config =
      {
        (Compi.Runner.default_config ~info) with
        Compi.Runner.nprocs;
        inputs;
        step_limit = 10_000_000;
      }
    in
    match Compi.Runner.run config with
    | Ok res -> Concolic.Coverage.encountered res.Compi.Runner.coverage "serial_lu"
    | Error _ -> Alcotest.fail "run failed"
  in
  let serial_inputs = set "p" 1 (set "q" 1 hpl_clean_inputs) in
  Alcotest.(check bool) "np=1 reaches serial_lu" true (encountered 1 serial_inputs);
  Alcotest.(check bool) "np=8 never does" false (encountered 8 hpl_clean_inputs)

let test_hpl_tall_grid_needs_12_procs () =
  let info = Targets.Registry.instrument Targets.Hpl.target in
  let encountered nprocs =
    let config =
      {
        (Compi.Runner.default_config ~info) with
        Compi.Runner.nprocs;
        inputs = set "p" 3 (set "q" 4 hpl_clean_inputs);
        step_limit = 10_000_000;
      }
    in
    match Compi.Runner.run config with
    | Ok res -> Concolic.Coverage.encountered res.Compi.Runner.coverage "tall_grid_setup"
    | Error _ -> Alcotest.fail "run failed"
  in
  Alcotest.(check bool) "np=12 reaches tall grid" true (encountered 12);
  Alcotest.(check bool) "np=8 never does" false (encountered 8)

let test_unreachable_functions_stay_dead () =
  (* eig_measure (SUSY) and pdfact_custom / bench_rma_put guards are
     outside the capped input space: a healthy campaign never enters them *)
  let check_dead name func iters =
    let t = Targets.Catalog.find_exn name in
    let info = Targets.Registry.instrument t in
    let settings =
      {
        Compi.Driver.default_settings with
        Compi.Driver.iterations = iters;
        dfs_phase_iters = 20;
        initial_nprocs = 4;
        step_limit = t.Targets.Registry.tuning.Targets.Registry.step_limit;
      }
    in
    let r = Compi.Driver.run ~settings info in
    Alcotest.(check bool)
      (Printf.sprintf "%s.%s unreachable" name func)
      false
      (Concolic.Coverage.encountered r.Compi.Driver.coverage func)
  in
  check_dead "susy-hmc" "eig_measure" 120;
  check_dead "hpl" "pdfact_custom" 120;
  check_dead "imb-mpi1" "bench_rma_put" 120

let test_bug_replay_via_testcase () =
  (* campaign bugs saved as test cases must reproduce on replay *)
  let t = Targets.Catalog.find_exn "susy-hmc" in
  let info = Targets.Registry.instrument t in
  let settings =
    {
      Compi.Driver.default_settings with
      Compi.Driver.iterations = 200;
      dfs_phase_iters = 50;
      initial_nprocs = 8;
      step_limit = t.Targets.Registry.tuning.Targets.Registry.step_limit;
      seed = 5;
    }
  in
  let r = Compi.Driver.run ~settings info in
  let bugs = Compi.Driver.distinct_bugs r in
  Alcotest.(check bool) "found at least one bug" true (bugs <> []);
  List.iter
    (fun b ->
      let case = Compi.Testcase.of_bug ~target:"susy-hmc" b in
      match Compi.Testcase.replay case ~info () with
      | Ok faults ->
        Alcotest.(check bool)
          (Printf.sprintf "bug reproduces (%s)" (Compi.Driver.bug_key b))
          true (faults <> [])
      | Error (`Platform_limit _) -> Alcotest.fail "platform limit")
    bugs

let heat2d_inputs ny =
  [ ("nx", 8); ("ny", ny); ("steps", 3); ("source_temp", 100); ("tol", 2) ]

let test_npb_cg_clean_and_class_verification () =
  (* clean at any size; the class path is taken when na matches a class *)
  let inputs na =
    [ ("na", na); ("nonzer", 3); ("niter", 2); ("shift", 10); ("seed", 314) ]
  in
  let res = run_with ~nprocs:4 ~inputs:(inputs 64) Targets.Npb_cg.target in
  Alcotest.(check (list string)) "class S clean" [] (fault_kinds res);
  Alcotest.(check bool) "verification path encountered" true
    (Concolic.Coverage.encountered res.Compi.Runner.coverage "class_reference");
  let res2 = run_with ~nprocs:4 ~inputs:(inputs 100) Targets.Npb_cg.target in
  Alcotest.(check (list string)) "off-class clean" [] (fault_kinds res2);
  (* a short campaign stays clean and covers well *)
  let info = Targets.Registry.instrument Targets.Npb_cg.target in
  let settings =
    {
      Compi.Driver.default_settings with
      Compi.Driver.iterations = 200;
      dfs_phase_iters = 40;
      initial_nprocs = 4;
      step_limit = 4_000_000;
    }
  in
  let r = Compi.Driver.run ~settings info in
  Alcotest.(check int) "no defects" 0 (List.length (Compi.Driver.distinct_bugs r));
  Alcotest.(check bool) "good coverage" true (r.Compi.Driver.coverage_rate > 0.6)

let test_heat2d_remainder_bug () =
  (* the halo buffer overflow needs ny mod size >= 2 *)
  let run ny nprocs =
    let res = run_with ~nprocs ~inputs:(heat2d_inputs ny) Targets.Heat2d.target in
    List.mem "segfault" (fault_kinds res)
  in
  Alcotest.(check bool) "divisible: clean" false (run 12 4);
  Alcotest.(check bool) "remainder 1: still fits" false (run 13 4);
  Alcotest.(check bool) "remainder 2: off-by-one overflow" true (run 14 4);
  Alcotest.(check bool) "remainder 3: overflow" true (run 15 4)

let test_pretty_printed_sloc () =
  (* Table III analogue: targets are non-trivially sized *)
  List.iter
    (fun (name, minimum) ->
      let t = Targets.Catalog.find_exn name in
      let sloc = Pretty.source_lines t.Targets.Registry.program in
      Alcotest.(check bool) (name ^ " sloc") true (sloc >= minimum))
    [ ("susy-hmc", 500); ("hpl", 500); ("imb-mpi1", 300) ]

let unit_tests =
  [
    ("catalog complete", `Quick, test_catalog_complete);
    ("all targets validate", `Quick, test_all_targets_validate);
    ("branch counts sane", `Quick, test_branch_counts_sane);
    ("susy clean run", `Quick, test_susy_clean_run);
    ("susy bug 1 (sources)", `Quick, test_susy_bug1_sources);
    ("susy bug 2 (gauge)", `Quick, test_susy_bug2_gauge);
    ("susy bug 3 (multi-mass)", `Quick, test_susy_bug3_multimass);
    ("susy FPE needs 2 or 4 procs", `Quick, test_susy_fpe_needs_2_or_4_procs);
    ("hpl clean run", `Quick, test_hpl_clean_run);
    ("hpl sanity rejects", `Quick, test_hpl_sanity_rejects);
    ("hpl bcast variants diverge", `Quick, test_hpl_bcast_variants_diverge);
    ("imb clean run", `Quick, test_imb_clean_run);
    ("imb gates on size", `Quick, test_imb_two_proc_benchmarks_gate_on_size);
    ("fig2 4F visibility", `Quick, test_toy_fig2_branch_4f_needs_focus_shift);
    ("hpl serial path", `Quick, test_hpl_serial_path_needs_one_proc);
    ("hpl tall grid", `Quick, test_hpl_tall_grid_needs_12_procs);
    ("unreachable functions dead", `Quick, test_unreachable_functions_stay_dead);
    ("bug replay via testcase", `Quick, test_bug_replay_via_testcase);
    ("heat2d remainder bug", `Quick, test_heat2d_remainder_bug);
    ("npb-cg clean + class verify", `Quick, test_npb_cg_clean_and_class_verification);
    ("targets sloc (table III)", `Quick, test_pretty_printed_sloc);
  ]

let suite = [ ("targets:unit", unit_tests) ]
