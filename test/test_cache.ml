(* Solver cache: key canonicalization, CREST-style verdict replay,
   capacity/eviction, and consistency with the incremental solver. *)

open Smt

let v k = (k : Varid.t)

(* x0 + k rel 0 *)
let c ?(k = 0) ?(coeff = 1) var rel = Constr.make (Linexp.of_terms [ (coeff, var) ] k) rel

let doms lo hi vars =
  List.fold_left (fun m x -> Varid.Map.add x (Domain.make ~lo ~hi) m) Varid.Map.empty vars

let test_key_order_insensitive () =
  let x, y = (v 0, v 1) in
  let a = c x Constr.Ge ~k:(-3) in
  let b = c y Constr.Lt ~k:5 in
  let d = doms (-10) 10 [ x; y ] in
  let cache = Cache.create () in
  Cache.add cache (Cache.key ~domains:d [ a; b ]) Cache.Unsat;
  (* permuted and duplicated constraint lists canonicalize to the same key *)
  Alcotest.(check bool)
    "permutation hits" true
    (Cache.find cache (Cache.key ~domains:d [ b; a ]) <> None);
  Alcotest.(check bool)
    "duplicates collapse" true
    (Cache.find cache (Cache.key ~domains:d [ b; a; b; a ]) <> None);
  Alcotest.(check int) "one entry" 1 (Cache.entries cache)

let test_key_domains_matter () =
  let x = v 0 in
  let a = c x Constr.Gt in
  let cache = Cache.create () in
  Cache.add cache (Cache.key ~domains:(doms 0 10 [ x ]) [ a ]) Cache.Unsat;
  (* same constraints, different interval: a genuinely different problem *)
  Alcotest.(check bool)
    "different domain misses" true
    (Cache.find cache (Cache.key ~domains:(doms 0 99 [ x ]) [ a ]) = None)

let test_hit_returns_same_model () =
  let x, y = (v 0, v 1) in
  let a = c x Constr.Ge in
  let b = c y Constr.Le in
  let d = doms (-10) 10 [ x; y ] in
  let m = Model.of_bindings [ (x, 7); (y, -2) ] in
  let cache = Cache.create () in
  Cache.add cache (Cache.key ~domains:d [ a; b ]) (Cache.Sat m);
  (match Cache.find cache (Cache.key ~domains:d [ b; a ]) with
  | Some (Cache.Sat m') ->
    Alcotest.(check (option int)) "x replayed" (Some 7) (Model.find x m');
    Alcotest.(check (option int)) "y replayed" (Some (-2)) (Model.find y m')
  | Some Cache.Unsat | None -> Alcotest.fail "expected a Sat hit");
  (* first verdict wins: re-adding must not overwrite *)
  Cache.add cache (Cache.key ~domains:d [ a; b ]) Cache.Unsat;
  match Cache.find cache (Cache.key ~domains:d [ a; b ]) with
  | Some (Cache.Sat _) -> ()
  | Some Cache.Unsat | None -> Alcotest.fail "first verdict must win"

let test_eviction_fifo () =
  let d = Varid.Map.empty in
  let key_of n = Cache.key ~domains:d [ c (v 0) Constr.Eq ~k:n ] in
  let cache = Cache.create ~capacity:2 () in
  Cache.add cache (key_of 1) Cache.Unsat;
  Cache.add cache (key_of 2) Cache.Unsat;
  Cache.add cache (key_of 3) Cache.Unsat;
  Alcotest.(check int) "capacity respected" 2 (Cache.entries cache);
  Alcotest.(check bool) "oldest evicted" true (Cache.find cache (key_of 1) = None);
  Alcotest.(check bool) "newest kept" true (Cache.find cache (key_of 3) <> None);
  let st = Cache.stats cache in
  Alcotest.(check int) "one eviction" 1 st.Cache.evictions

let test_stats_and_hit_rate () =
  let d = Varid.Map.empty in
  let k1 = Cache.key ~domains:d [ c (v 0) Constr.Eq ] in
  let cache = Cache.create () in
  Alcotest.(check bool) "cold miss" true (Cache.find cache k1 = None);
  Cache.add cache k1 Cache.Unsat;
  ignore (Cache.find cache k1);
  ignore (Cache.find cache k1);
  let st = Cache.stats cache in
  Alcotest.(check int) "hits" 2 st.Cache.hits;
  Alcotest.(check int) "misses" 1 st.Cache.misses;
  Alcotest.(check bool)
    "hit rate" true
    (abs_float (Cache.hit_rate cache -. (2.0 /. 3.0)) < 1e-9)

(* Integration: a negation solved through the real pipeline caches a
   verdict that {!Concolic.Execution.apply_cached} replays into the
   exact result the live solver produced. *)
let exec_record ?(cx = 3) ?(cy = 4) () =
  let tab = Concolic.Symtab.create () in
  let x = Concolic.Symtab.fresh_input tab ~name:"x" ~concrete:cx () in
  let y = Concolic.Symtab.fresh_input tab ~name:"y" ~concrete:cy () in
  (* path: x > 0 (branch 0), y > x (branch 2) — both taken *)
  let constraints =
    [|
      (0, c x Constr.Gt);
      (2, Constr.cmp (Linexp.var y) Constr.Gt (Linexp.var x));
    |]
  in
  {
    Concolic.Execution.constraints;
    symtab = tab;
    model = Concolic.Symtab.model tab;
    domains = Concolic.Symtab.domains tab;
    extra = [];
    nprocs = 1;
    focus = 0;
    mapping = [];
    exec_id = -1;
    exec_schedule = [];
  }

let test_apply_cached_matches_solver () =
  let t = exec_record () in
  let i = 1 in
  (* negate y > x; canonical mode — the only mode whose verdicts may be
     cached, because only there is the model a pure function of the key *)
  match Concolic.Execution.solve_negation ~canonical:true t i with
  | Error _ -> Alcotest.fail "negation should be satisfiable"
  | Ok live ->
    let cache = Cache.create () in
    let key = Concolic.Execution.negation_key t i in
    Cache.add cache key (Cache.Sat live.Solver.fresh);
    (match Cache.find cache (Concolic.Execution.negation_key t i) with
    | Some outcome -> (
      match Concolic.Execution.apply_cached t i outcome with
      | Error _ -> Alcotest.fail "cached Sat must replay as Ok"
      | Ok replayed ->
        Alcotest.(check bool)
          "same resolved set" true
          (Varid.Set.equal live.Solver.resolved replayed.Solver.resolved);
        Varid.Set.iter
          (fun var ->
            Alcotest.(check (option int))
              (Printf.sprintf "model agrees on %d" var)
              (Model.find var live.Solver.model)
              (Model.find var replayed.Solver.model))
          live.Solver.resolved;
        Alcotest.(check bool)
          "same changed set" true
          (Varid.Set.equal live.Solver.changed replayed.Solver.changed))
    | None -> Alcotest.fail "key must round-trip to a hit")

(* The soundness hole canonical mode closes: a verdict cached under one
   run must replay, in a run with *different* concrete inputs, the exact
   result that run's own live solve would produce — this is what makes
   campaigns cache-on/off invariant. With the prefer-previous-values
   heuristic this fails: the model would track whichever run happened to
   solve first, and the heuristic's input is (deliberately) not part of
   the key. *)
let test_replay_pure_across_runs () =
  let a = exec_record ~cx:3 ~cy:4 () in
  let b = exec_record ~cx:1 ~cy:9 () in
  let i = 1 in
  let cache = Cache.create () in
  (match Concolic.Execution.solve_negation ~canonical:true a i with
  | Error _ -> Alcotest.fail "negation satisfiable under run A"
  | Ok live_a ->
    Cache.add cache
      (Concolic.Execution.negation_key a i)
      (Cache.Sat live_a.Solver.fresh));
  let live_b =
    match Concolic.Execution.solve_negation ~canonical:true b i with
    | Error _ -> Alcotest.fail "negation satisfiable under run B"
    | Ok r -> r
  in
  (* per-run symbol tables number the same path identically, so the key
     from run A hits in run B despite the differing concrete models *)
  match Cache.find cache (Concolic.Execution.negation_key b i) with
  | None -> Alcotest.fail "structurally identical runs must share a key"
  | Some outcome -> (
    match Concolic.Execution.apply_cached b i outcome with
    | Error _ -> Alcotest.fail "cached Sat must replay as Ok"
    | Ok replayed ->
      Alcotest.(check bool)
        "same resolved set" true
        (Varid.Set.equal live_b.Solver.resolved replayed.Solver.resolved);
      Varid.Set.iter
        (fun var ->
          Alcotest.(check (option int))
            (Printf.sprintf "fresh agrees on %d" var)
            (Model.find var live_b.Solver.fresh)
            (Model.find var replayed.Solver.fresh);
          Alcotest.(check (option int))
            (Printf.sprintf "merged model agrees on %d" var)
            (Model.find var live_b.Solver.model)
            (Model.find var replayed.Solver.model))
        live_b.Solver.resolved;
      Alcotest.(check bool)
        "same changed set" true
        (Varid.Set.equal live_b.Solver.changed replayed.Solver.changed))

let test_unsat_negation_cached () =
  let tab = Concolic.Symtab.create () in
  let x = Concolic.Symtab.fresh_input tab ~name:"x" ~concrete:5 () in
  (* path: x >= 0 with extra constraint x >= 1 — negating x >= 0 is unsat *)
  let t =
    {
      Concolic.Execution.constraints = [| (0, c x Constr.Ge) |];
      symtab = tab;
      model = Concolic.Symtab.model tab;
      domains = Concolic.Symtab.domains tab;
      extra = [ c x Constr.Ge ~k:(-1) ];
      nprocs = 1;
      focus = 0;
      mapping = [];
      exec_id = -1;
      exec_schedule = [];
    }
  in
  (match Concolic.Execution.solve_negation t 0 with
  | Error `Unsat -> ()
  | Error `Unknown | Ok _ -> Alcotest.fail "expected unsat");
  let cache = Cache.create () in
  Cache.add cache (Concolic.Execution.negation_key t 0) Cache.Unsat;
  match Cache.find cache (Concolic.Execution.negation_key t 0) with
  | Some outcome -> (
    match Concolic.Execution.apply_cached t 0 outcome with
    | Error `Unsat -> ()
    | Error `Unknown | Ok _ -> Alcotest.fail "cached unsat must replay as unsat")
  | None -> Alcotest.fail "unsat verdict must hit"

let suite =
  [
    ( "cache:unit",
      [
        Alcotest.test_case "key order-insensitive" `Quick test_key_order_insensitive;
        Alcotest.test_case "key includes domains" `Quick test_key_domains_matter;
        Alcotest.test_case "hit replays the model" `Quick test_hit_returns_same_model;
        Alcotest.test_case "FIFO eviction at capacity" `Quick test_eviction_fifo;
        Alcotest.test_case "stats and hit rate" `Quick test_stats_and_hit_rate;
        Alcotest.test_case "replay matches live solve" `Quick
          test_apply_cached_matches_solver;
        Alcotest.test_case "replay is pure across runs" `Quick
          test_replay_pure_across_runs;
        Alcotest.test_case "unsat verdicts replay" `Quick test_unsat_negation_cached;
      ] );
  ]
