(* Differential tests for the closure-compiled executor (Minic.Compile):
   it must be observationally identical to the tree-walking interpreter
   on every program — same verdict, same hook event stream (inputs,
   branches with their symbolic constraints, function entries), in both
   heavy and light modes — and identical through the full Runner stack
   (coverage, path logs, MPI traces) and a live parallel campaign. *)

open Minic
open Builder

let instrument p = Branchinfo.instrument (Check.check_exn p)

(* Every observable an executor produces through the hook surface,
   rendered to strings so Alcotest diffs read well. The first element
   is the verdict; the rest is the chronological event stream. *)
let observe ?step_limit exec mode (info : Branchinfo.t) ~inputs =
  let gen = Smt.Varid.make_gen () in
  let trace = ref [] in
  let push s = trace := s :: !trace in
  let hooks = Interp.plain_hooks ?step_limit () in
  let hooks =
    {
      hooks with
      Interp.mode;
      input_value =
        (fun d ->
          match List.assoc_opt d.Ast.iname inputs with
          | Some value -> value
          | None -> d.Ast.default);
      on_input =
        (fun d concrete ->
          push (Printf.sprintf "input %s=%d" d.Ast.iname concrete);
          if mode = Interp.Heavy then Some (Smt.Linexp.var (Smt.Varid.fresh gen))
          else None);
      on_branch =
        (fun ~id ~taken ~constr ->
          push
            (Printf.sprintf "branch %d %c %s" id
               (if taken then 'T' else 'F')
               (match constr with
               | None -> "concrete"
               | Some c -> Format.asprintf "%a" Smt.Constr.pp c)));
      on_func_enter = (fun fn -> push ("enter " ^ fn));
    }
  in
  let verdict =
    match exec hooks info.Branchinfo.program with
    | Ok () -> "ok"
    | Error f -> Fault.to_string f
  in
  verdict :: List.rev !trace

let interp_exec hooks program = Interp.run hooks program
let compiled_exec cp hooks _program = Compile.run cp hooks

let mode_name = function Interp.Heavy -> "heavy" | Interp.Light -> "light"

let differential ?step_limit ?(inputs = []) name p =
  let info = instrument p in
  let cp = Compile.compile info.Branchinfo.program in
  List.iter
    (fun mode ->
      let want = observe ?step_limit interp_exec mode info ~inputs in
      let got = observe ?step_limit (compiled_exec cp) mode info ~inputs in
      Alcotest.(check (list string))
        (Printf.sprintf "%s (%s)" name (mode_name mode))
        want got)
    [ Interp.Heavy; Interp.Light ]

(* ------------------------------------------------------------------ *)
(* Hand-picked programs covering the tricky equivalence corners        *)
(* ------------------------------------------------------------------ *)

let test_arith_and_branches () =
  differential ~inputs:[ ("n", 7) ] "arith"
    (program
       [
         func "main" []
           [
             input "n" ~default:3;
             decl "x" ((v "n" *: i 2) +: i 1);
             if_ (v "x" >: i 10) [ assign "x" (v "x" -: v "n") ] [ assign "x" (i 0) ];
             decl "q" (v "x" /: i 2);
             decl "r" (v "x" %: i 3);
             if_ (v "q" =: v "r") [] [ assign "x" (v "q" +: v "r") ];
           ];
       ])

let test_fault_fpe () =
  differential ~inputs:[ ("n", 0) ] "fpe"
    (program
       [ func "main" [] [ input "n" ~default:0; decl "x" (i 1 /: v "n") ] ])

let test_fault_segv () =
  differential ~inputs:[ ("n", 9) ] "segv"
    (program
       [
         func "main" []
           [
             input "n" ~default:9;
             decl_arr "a" (i 4);
             aset "a" (v "n") (i 1);
           ];
       ])

let test_fault_assert_and_exit () =
  differential ~inputs:[ ("n", 1) ] "assert"
    (program
       [ func "main" [] [ input "n" ~default:1; assert_ (v "n" =: i 0) "boom" ] ]);
  differential "exit"
    (program
       [ func "main" [] [ decl "x" (i 1); exit_ (i 0); assign "x" (i 2) ] ])

let test_arrays_and_len () =
  differential ~inputs:[ ("n", 2) ] "arrays"
    (program
       [
         func "fill" [ ("a", Ast.Tint); ("k", Ast.Tint) ]
           [ aset "a" (v "k") (v "k" *: i 10) ];
         func "main" []
           [
             input "n" ~default:2;
             decl_arr "a" (i 5);
             call "fill" [ v "a"; v "n" ];
             decl "x" (idx "a" (v "n"));
             decl "l" (len "a");
             if_ (v "x" =: v "n" *: i 10) [] [ assert_ (i 0) "by ref" ];
             if_ (v "l" =: i 5) [] [ assert_ (i 0) "len" ];
           ];
       ])

let test_recursion_and_shadow_through_call () =
  differential ~inputs:[ ("n", 5) ] "recursion"
    (program
       [
         func "fact" [ ("n", Ast.Tint) ]
           [
             if_ (v "n" <=: i 1) [ ret (i 1) ] [];
             decl "r" (i 0);
             call_assign "r" "fact" [ v "n" -: i 1 ];
             ret (v "n" *: v "r");
           ];
         func "id" [ ("x", Ast.Tint) ] [ ret (v "x") ];
         func "main" []
           [
             input "n" ~default:5;
             decl "r" (i 0);
             call_assign "r" "fact" [ i 6 ];
             decl "y" (i 0);
             call_assign "y" "id" [ v "n" +: i 1 ];
             (* shadow must flow through id: this branch is symbolic *)
             if_ (v "y" >: i 3) [] [];
             if_ (v "r" =: i 720) [] [ assert_ (i 0) "6!" ];
           ];
       ])

let test_floats_and_bitwise () =
  differential "floats"
    (program
       [
         func "main" []
           [
             declf "x" (f 1.5 +: f 2.5);
             declf "y" (v "x" /: f 0.0);
             if_ (v "y" >: f 1000.0) [] [];
             decl "a" (i 6);
             decl "b"
               (Ast.Binop
                  ( Ast.Bitor,
                    Ast.Binop (Ast.Bitand, v "a", i 3),
                    Ast.Binop
                      ( Ast.Add,
                        Ast.Binop (Ast.Bitxor, v "a", i 1),
                        Ast.Binop (Ast.Shl, v "a", i 2) ) ));
             decl "c" (Ast.Binop (Ast.Shr, v "b", i 1));
             if_ (v "c" >=: i 0) [] [];
           ];
       ])

let test_while_and_nonlinear () =
  differential ~inputs:[ ("n", 4) ] "while"
    (program
       [
         func "main" []
           [
             input "n" ~default:4;
             decl "x" (v "n");
             while_ (v "x" >: i 0) [ assign "x" (v "x" -: i 1) ];
             (* nonlinear: shadow concretizes, branch goes concrete *)
             decl "sq" (v "n" *: v "n");
             if_ (v "sq" >: i 10) [] [];
             if_ (lognot (v "x")) [] [];
           ];
       ])

let test_step_limit () =
  differential ~step_limit:100 "step limit"
    (program [ func "main" [] [ decl "x" (i 1); while_ (v "x") [] ] ])

(* A compiled program is immutable: two runs from the same compile must
   produce identical observations (no cross-run state leak). *)
let test_compiled_reuse () =
  let p =
    program
      [
        func "main" []
          [
            input "n" ~default:3;
            decl_arr "a" (i 4);
            aset "a" (i 0) (v "n");
            if_ (idx "a" (i 0) >: i 1) [ aset "a" (i 1) (i 7) ] [];
          ];
      ]
  in
  let info = instrument p in
  let cp = Compile.compile info.Branchinfo.program in
  let run () = observe (compiled_exec cp) Interp.Heavy info ~inputs:[ ("n", 3) ] in
  Alcotest.(check (list string)) "second run identical" (run ()) (run ())

let test_compile_metadata () =
  let p =
    program
      [
        func "helper" [ ("x", Ast.Tint) ] [ ret (v "x") ];
        func "main" [] [ decl "a" (i 1); if_ (v "a") [] [] ];
      ]
  in
  let info = instrument p in
  let cp = Compile.compile info.Branchinfo.program in
  Alcotest.(check int) "funcs" 2 (Compile.funcs cp);
  Alcotest.(check int) "conds" 1 (Compile.conds cp);
  Alcotest.(check bool) "slots counted" true (Compile.slots cp >= 2);
  Alcotest.(check bool) "program kept" true
    (Compile.program cp == info.Branchinfo.program)

(* ------------------------------------------------------------------ *)
(* Full Runner stack: targets and the .mc corpus under N processes     *)
(* ------------------------------------------------------------------ *)

(* Everything a Runner result exposes, as strings: per-rank verdicts,
   coverage, the focus path log, deadlocks, leaks and the full MPI
   communication trace. *)
let runner_observe exec_mode (info : Branchinfo.t) ~step_limit ~nprocs =
  let tracer = Mpisim.Trace.create () in
  let config =
    {
      (Compi.Runner.default_config ~info) with
      Compi.Runner.nprocs;
      step_limit;
      compiled = Compi.Runner.prepare exec_mode info;
      on_event = Mpisim.Trace.collector tracer;
    }
  in
  match Compi.Runner.run config with
  | Error (`Platform_limit n) -> [ Printf.sprintf "platform limit %d" n ]
  | Ok r ->
    let outcome = function Ok () -> "ok" | Error f -> Fault.to_string f in
    [
      String.concat ";" (Array.to_list (Array.map outcome r.Compi.Runner.outcomes));
      String.concat ","
        (List.map string_of_int
           (Concolic.Coverage.branch_list r.Compi.Runner.coverage));
      String.concat ","
        (Array.to_list
           (Array.map
              (fun (br, c) -> Printf.sprintf "%d:%s" br (Format.asprintf "%a" Smt.Constr.pp c))
              r.Compi.Runner.execution.Concolic.Execution.constraints));
      String.concat ","
        (List.map
           (fun (c, t) -> Printf.sprintf "%d%c" c (if t then 'T' else 'F'))
           r.Compi.Runner.focus_tail);
      string_of_int r.Compi.Runner.constraint_set_size;
      String.concat "," (List.map string_of_int r.Compi.Runner.deadlocked);
      string_of_int r.Compi.Runner.leaked_messages;
      Mpisim.Trace.to_jsonl tracer;
    ]

let runner_differential name info ~step_limit ~nprocs =
  Alcotest.(check (list string))
    name
    (runner_observe Compi.Runner.Exec_interp info ~step_limit ~nprocs)
    (runner_observe Compi.Runner.Exec_compiled info ~step_limit ~nprocs)

let test_targets_differential () =
  List.iter
    (fun (t : Targets.Registry.t) ->
      let info = Targets.Registry.instrument t in
      runner_differential t.Targets.Registry.name info
        ~step_limit:t.Targets.Registry.tuning.Targets.Registry.step_limit ~nprocs:4)
    (Targets.Catalog.all ())

(* dune runs tests from the build sandbox; walk up to the source root *)
let corpus_dir () =
  let rec find dir =
    let candidate = Filename.concat dir "examples/programs" in
    if Sys.file_exists candidate then Some candidate
    else
      let parent = Filename.dirname dir in
      if parent = dir then None else find parent
  in
  find (Sys.getcwd ())

let example_programs () =
  match corpus_dir () with
  | None -> []
  | Some dir -> (
    match Sys.readdir dir with
    | exception Sys_error _ -> []
    | names ->
    Array.to_list names
    |> List.filter (fun n -> Filename.check_suffix n ".mc")
    |> List.sort String.compare
    |> List.filter_map (fun n ->
           let src =
             In_channel.with_open_text (Filename.concat dir n) In_channel.input_all
           in
           match Parse.program src with
           | Error _ -> None
           | Ok program -> (
             match Check.check program with
             | _ :: _ -> None
             | [] -> Some (n, Branchinfo.instrument (Opt.simplify_program program)))))

let test_corpus_differential () =
  let programs = example_programs () in
  Alcotest.(check bool) "corpus present" true (List.length programs >= 3);
  List.iter
    (fun (name, info) ->
      runner_differential name info ~step_limit:2_000_000 ~nprocs:4)
    programs

(* A live parallel campaign must be byte-identical across exec modes
   (and the report is already jobs-invariant, so jobs=2 covers the
   shared-compiled-program-across-domains path). *)
let campaign exec_mode ~jobs info =
  let settings =
    {
      Compi.Campaign.default_settings with
      Compi.Campaign.base =
        {
          Compi.Driver.default_settings with
          Compi.Driver.iterations = 40;
          dfs_phase_iters = 12;
          initial_nprocs = 2;
          seed = 11;
          exec_mode;
        };
      jobs;
    }
  in
  Compi.Campaign.run ~settings info

let test_campaign_modes_identical () =
  let info = Targets.Registry.instrument (Targets.Catalog.find_exn "toy-fig1") in
  List.iter
    (fun jobs ->
      let ri = campaign Compi.Runner.Exec_interp ~jobs info in
      let rc = campaign Compi.Runner.Exec_compiled ~jobs info in
      Alcotest.(check string)
        (Printf.sprintf "jobs=%d report identical across exec modes" jobs)
        (Compi.Campaign.coverage_report ri)
        (Compi.Campaign.coverage_report rc);
      Alcotest.(check int)
        (Printf.sprintf "jobs=%d same execution count" jobs)
        ri.Compi.Campaign.executed rc.Compi.Campaign.executed)
    [ 1; 2 ]

(* ------------------------------------------------------------------ *)
(* Property: random programs agree under both executors                *)
(* ------------------------------------------------------------------ *)

let prop_compile_matches_interp =
  QCheck.Test.make ~name:"compile: differential vs interp on random programs"
    ~count:150
    QCheck.(
      make
        Gen.(
          let* d = int_range (-10) 10 in
          let* steps =
            list_size (int_range 1 8)
              (triple (int_range 0 6) (int_range (-9) 9) (int_range (-9) 9))
          in
          return (d, steps)))
    (fun (d, steps) ->
      let step k (op, a, b) =
        match op with
        | 0 -> [ assign "x" (v "x" +: (v "n" *: i a)) ]
        | 1 -> [ assign "x" (v "x" -: i b) ]
        | 2 ->
          [
            if_ (v "x" <: i a)
              [ assign "x" (v "x" +: i 1) ]
              [ assign "x" (v "x" -: i 1) ];
          ]
        | 3 ->
          let kv = Printf.sprintf "k%d" k in
          for_ kv (i 0) (i (abs a mod 4)) [ assign "x" (v "x" +: v kv) ]
        | 4 -> [ assign "x" (v "x" /: i b) ] (* faults when b = 0 *)
        | 5 -> [ aset "arr" (v "x" %: i 5) (v "x") ] (* may segfault *)
        | _ -> [ assign "x" (v "x" *: v "x") ] (* nonlinear: concretizes *)
      in
      let stmts = List.concat (List.mapi step steps) in
      let p =
        program
          [
            func "main" []
              ([ input "n" ~default:d; decl "x" (v "n"); decl_arr "arr" (i 5) ]
              @ stmts
              @ [ if_ (v "x" >: i 0) [] [] ]);
          ]
      in
      let info = instrument p in
      let cp = Compile.compile info.Branchinfo.program in
      List.for_all
        (fun mode ->
          observe interp_exec mode info ~inputs:[ ("n", d) ]
          = observe (compiled_exec cp) mode info ~inputs:[ ("n", d) ])
        [ Interp.Heavy; Interp.Light ])

let unit_tests =
  [
    ("arith and branches", `Quick, test_arith_and_branches);
    ("fpe fault", `Quick, test_fault_fpe);
    ("segfault", `Quick, test_fault_segv);
    ("assert and exit", `Quick, test_fault_assert_and_exit);
    ("arrays by reference and len", `Quick, test_arrays_and_len);
    ("recursion and shadow through call", `Quick, test_recursion_and_shadow_through_call);
    ("floats and bitwise", `Quick, test_floats_and_bitwise);
    ("while and nonlinear", `Quick, test_while_and_nonlinear);
    ("step limit", `Quick, test_step_limit);
    ("compiled reuse", `Quick, test_compiled_reuse);
    ("compile metadata", `Quick, test_compile_metadata);
    ("all targets under runner", `Quick, test_targets_differential);
    ("mc corpus under runner", `Quick, test_corpus_differential);
    ("campaign identical across modes", `Quick, test_campaign_modes_identical);
  ]

let property_tests =
  List.map QCheck_alcotest.to_alcotest [ prop_compile_matches_interp ]

let suite = [ ("compile:unit", unit_tests); ("compile:property", property_tests) ]
