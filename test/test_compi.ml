(* Tests for the COMPI framework: inherent MPI-semantics constraints,
   conflict resolution (the paper's Figure 5 scenario), the test runner
   (two-way instrumentation, all-recorders), and the campaign driver. *)

open Concolic

(* ------------------------------------------------------------------ *)
(* Mpi_sem                                                             *)
(* ------------------------------------------------------------------ *)

let test_mpi_sem_families () =
  let tab = Symtab.create () in
  let x0 = Symtab.fresh_sem tab ~kind:Symtab.Rank_world ~concrete:0 () in
  let x1 = Symtab.fresh_sem tab ~kind:Symtab.Rank_world ~concrete:0 () in
  let y0 = Symtab.fresh_sem tab ~kind:(Symtab.Rank_comm 1) ~comm_size:3 ~concrete:0 () in
  let z0 = Symtab.fresh_sem tab ~kind:Symtab.Size_world ~concrete:8 () in
  let cs = Compi.Mpi_sem.constraints ~nprocs_cap:16 tab in
  (* A model violating x0 = x1 must be rejected; a consistent one passes. *)
  let consistent =
    Smt.Model.of_bindings [ (x0, 2); (x1, 2); (y0, 1); (z0, 4) ]
  in
  Alcotest.(check bool) "consistent model passes" true (Smt.Solver.holds_all consistent cs);
  let rank_mismatch = Smt.Model.of_bindings [ (x0, 2); (x1, 3); (y0, 1); (z0, 4) ] in
  Alcotest.(check bool) "rw equality enforced" false
    (Smt.Solver.holds_all rank_mismatch cs);
  let rank_too_big = Smt.Model.of_bindings [ (x0, 4); (x1, 4); (y0, 1); (z0, 4) ] in
  Alcotest.(check bool) "x0 < z0 enforced" false (Smt.Solver.holds_all rank_too_big cs);
  let rc_too_big = Smt.Model.of_bindings [ (x0, 2); (x1, 2); (y0, 3); (z0, 4) ] in
  Alcotest.(check bool) "rc < comm size enforced" false
    (Smt.Solver.holds_all rc_too_big cs);
  let size_over_cap = Smt.Model.of_bindings [ (x0, 2); (x1, 2); (y0, 1); (z0, 17) ] in
  Alcotest.(check bool) "sw cap enforced" false (Smt.Solver.holds_all size_over_cap cs)

let test_mpi_sem_empty () =
  let tab = Symtab.create () in
  Alcotest.(check (list reject)) "no vars, no constraints" []
    (List.map (fun _ -> ()) (Compi.Mpi_sem.constraints ~nprocs_cap:16 tab))

(* ------------------------------------------------------------------ *)
(* Conflict resolution — the paper's Figure 5                          *)
(* ------------------------------------------------------------------ *)

(* Figure 5 setup: 3 processes, focus has global rank 0; it belongs to
   MPI_COMM_WORLD (x0) and two local communicators (y0 in comm 1, y1 in
   comm 2). Negating y0 = 0 yields y0 = 1; with comm 1's row [0; 2] the
   new focus must be global rank 2. (The paper's table uses different
   membership; the mechanism is the same.) *)
let test_conflict_rc_translates_via_table2 () =
  let tab = Symtab.create () in
  let _x0 = Symtab.fresh_sem tab ~kind:Symtab.Rank_world ~concrete:0 () in
  let y0 = Symtab.fresh_sem tab ~kind:(Symtab.Rank_comm 1) ~comm_size:2 ~concrete:0 () in
  let _y1 = Symtab.fresh_sem tab ~kind:(Symtab.Rank_comm 2) ~comm_size:2 ~concrete:0 () in
  let mapping = [ (1, [| 0; 2 |]); (2, [| 0; 1 |]) ] in
  let result =
    {
      Smt.Solver.model = Smt.Model.of_bindings [ (y0, 1) ];
      fresh = Smt.Model.of_bindings [ (y0, 1) ];
      resolved = Smt.Varid.Set.singleton y0;
      changed = Smt.Varid.Set.singleton y0;
    }
  in
  let d =
    Compi.Conflict.resolve ~prev_nprocs:3 ~prev_focus:0 ~mapping ~symtab:tab ~result
  in
  Alcotest.(check int) "focus shifts to global 2" 2 d.Compi.Conflict.focus;
  Alcotest.(check int) "nprocs stays" 3 d.Compi.Conflict.nprocs;
  Alcotest.(check bool) "moved" true d.Compi.Conflict.moved

let test_conflict_rw_takes_priority () =
  let tab = Symtab.create () in
  let x0 = Symtab.fresh_sem tab ~kind:Symtab.Rank_world ~concrete:0 () in
  let y0 = Symtab.fresh_sem tab ~kind:(Symtab.Rank_comm 1) ~comm_size:2 ~concrete:0 () in
  let result =
    {
      Smt.Solver.model = Smt.Model.of_bindings [ (x0, 1); (y0, 1) ];
      fresh = Smt.Model.of_bindings [ (x0, 1); (y0, 1) ];
      resolved = Smt.Varid.Set.of_list [ x0; y0 ];
      changed = Smt.Varid.Set.of_list [ x0; y0 ];
    }
  in
  let d =
    Compi.Conflict.resolve ~prev_nprocs:4 ~prev_focus:0 ~mapping:[ (1, [| 0; 3 |]) ]
      ~symtab:tab ~result
  in
  (* rw's new value IS the global rank: 1, not the rc translation 3 *)
  Alcotest.(check int) "rw wins" 1 d.Compi.Conflict.focus

let test_conflict_stale_values_ignored () =
  (* Nothing changed: focus must stay even though the model binds ranks. *)
  let tab = Symtab.create () in
  let x0 = Symtab.fresh_sem tab ~kind:Symtab.Rank_world ~concrete:2 () in
  let result =
    {
      Smt.Solver.model = Smt.Model.of_bindings [ (x0, 2) ];
      fresh = Smt.Model.empty;
      resolved = Smt.Varid.Set.empty;
      changed = Smt.Varid.Set.empty;
    }
  in
  let d =
    Compi.Conflict.resolve ~prev_nprocs:4 ~prev_focus:2 ~mapping:[] ~symtab:tab ~result
  in
  Alcotest.(check int) "focus unchanged" 2 d.Compi.Conflict.focus;
  Alcotest.(check bool) "not moved" false d.Compi.Conflict.moved

let test_conflict_nprocs_from_sw () =
  let tab = Symtab.create () in
  let z0 = Symtab.fresh_sem tab ~kind:Symtab.Size_world ~concrete:8 () in
  let result =
    {
      Smt.Solver.model = Smt.Model.of_bindings [ (z0, 3) ];
      fresh = Smt.Model.of_bindings [ (z0, 3) ];
      resolved = Smt.Varid.Set.singleton z0;
      changed = Smt.Varid.Set.singleton z0;
    }
  in
  let d =
    Compi.Conflict.resolve ~prev_nprocs:8 ~prev_focus:5 ~mapping:[] ~symtab:tab ~result
  in
  Alcotest.(check int) "nprocs derived" 3 d.Compi.Conflict.nprocs;
  Alcotest.(check bool) "focus clamped into range" true (d.Compi.Conflict.focus < 3)

(* ------------------------------------------------------------------ *)
(* Runner                                                              *)
(* ------------------------------------------------------------------ *)

let fig2_info = lazy (Targets.Registry.instrument Targets.Toy.fig2)

let test_runner_records_all_processes () =
  let info = Lazy.force fig2_info in
  let config =
    { (Compi.Runner.default_config ~info) with Compi.Runner.nprocs = 4; focus = 0 }
  in
  match Compi.Runner.run config with
  | Error (`Platform_limit _) -> Alcotest.fail "platform limit"
  | Ok res ->
    (* branch 4 (rank != 0, y < 100) is only seen by non-focus ranks;
       all-recorders must have it *)
    let all = res.Compi.Runner.coverage in
    let only_focus =
      let config = { config with Compi.Runner.record_all = false } in
      match Compi.Runner.run config with
      | Ok r -> r.Compi.Runner.coverage
      | Error _ -> Alcotest.fail "rerun failed"
    in
    Alcotest.(check bool) "all-recorders sees more" true
      (Coverage.covered_branches all > Coverage.covered_branches only_focus)

let test_runner_two_way_log_sizes () =
  let info = Lazy.force fig2_info in
  let base = { (Compi.Runner.default_config ~info) with Compi.Runner.nprocs = 4 } in
  let two_way =
    match Compi.Runner.run base with Ok r -> r | Error _ -> Alcotest.fail "run"
  in
  let one_way =
    match Compi.Runner.run { base with Compi.Runner.two_way = false } with
    | Ok r -> r
    | Error _ -> Alcotest.fail "run"
  in
  Alcotest.(check bool) "one-way non-focus logs are much bigger" true
    (one_way.Compi.Runner.nonfocus_log_bytes > 2 * two_way.Compi.Runner.nonfocus_log_bytes);
  Alcotest.(check bool) "focus log unchanged in kind" true
    (two_way.Compi.Runner.focus_log_bytes > 0)

let test_runner_platform_limit () =
  let info = Lazy.force fig2_info in
  let config =
    { (Compi.Runner.default_config ~info) with Compi.Runner.nprocs = 99; max_procs = 16 }
  in
  match Compi.Runner.run config with
  | Error (`Platform_limit 99) -> ()
  | Error (`Platform_limit n) -> Alcotest.failf "wrong limit %d" n
  | Ok _ -> Alcotest.fail "expected platform limit"

let test_runner_auto_marking () =
  (* fig2 reads rank and size from MPI_COMM_WORLD: the symbol table must
     contain one rw and one sw variable automatically. *)
  let info = Lazy.force fig2_info in
  let config = { (Compi.Runner.default_config ~info) with Compi.Runner.nprocs = 3 } in
  match Compi.Runner.run config with
  | Error (`Platform_limit _) -> Alcotest.fail "platform limit"
  | Ok res ->
    let tab = res.Compi.Runner.execution.Execution.symtab in
    Alcotest.(check int) "one rw" 1 (List.length (Compi.Mpi_sem.rw_vars tab));
    Alcotest.(check int) "one sw" 1 (List.length (Compi.Mpi_sem.sw_vars tab));
    Alcotest.(check bool) "inherent constraints present" true
      (res.Compi.Runner.execution.Execution.extra <> [])

let test_runner_no_marking_when_disabled () =
  let info = Lazy.force fig2_info in
  let config =
    { (Compi.Runner.default_config ~info) with Compi.Runner.nprocs = 3; mark_mpi_sem = false }
  in
  match Compi.Runner.run config with
  | Error (`Platform_limit _) -> Alcotest.fail "platform limit"
  | Ok res ->
    let tab = res.Compi.Runner.execution.Execution.symtab in
    Alcotest.(check int) "no rw" 0 (List.length (Compi.Mpi_sem.rw_vars tab));
    Alcotest.(check int) "no sw" 0 (List.length (Compi.Mpi_sem.sw_vars tab))

let test_runner_inputs_respected () =
  let info = Lazy.force fig2_info in
  let config =
    {
      (Compi.Runner.default_config ~info) with
      Compi.Runner.nprocs = 2;
      inputs = [ ("x", 7); ("y", 3) ];
    }
  in
  match Compi.Runner.run config with
  | Error (`Platform_limit _) -> Alcotest.fail "platform limit"
  | Ok res ->
    let tab = res.Compi.Runner.execution.Execution.symtab in
    (match Symtab.find_input tab "x" with
    | Some e -> Alcotest.(check int) "x concrete" 7 e.Symtab.concrete
    | None -> Alcotest.fail "x not marked");
    Alcotest.(check bool) "no faults" true (Compi.Runner.faults res = [])

(* ------------------------------------------------------------------ *)
(* Driver end-to-end                                                   *)
(* ------------------------------------------------------------------ *)

let quick_settings iters =
  {
    Compi.Driver.default_settings with
    Compi.Driver.iterations = iters;
    dfs_phase_iters = 5;
    initial_nprocs = 4;
    seed = 7;
  }

let test_driver_full_coverage_fig1 () =
  let info = Targets.Registry.instrument Targets.Toy.fig1 in
  let r = Compi.Driver.run ~settings:(quick_settings 30) info in
  Alcotest.(check int) "100%% of fig1" 4 r.Compi.Driver.covered_branches;
  (* every bug carries the focus's failure context, ending at the buggy
     conditional's true side (cond 0, x == 100) *)
  List.iter
    (fun (b : Compi.Driver.bug) ->
      match List.rev b.Compi.Driver.bug_context with
      | (cond, taken) :: _ ->
        Alcotest.(check (pair int bool)) "context ends at the bug" (0, true) (cond, taken)
      | [] -> Alcotest.fail "bug without context")
    r.Compi.Driver.bugs;
  Alcotest.(check bool) "finds the hidden bug" true
    (List.exists
       (fun (b : Compi.Driver.bug) ->
         match b.Compi.Driver.bug_fault with
         | Minic.Fault.Abort_called _ -> true
         | _ -> false)
       r.Compi.Driver.bugs)

let test_driver_beats_random_on_fig2 () =
  let info = Lazy.force fig2_info in
  let compi = Compi.Driver.run ~settings:(quick_settings 60) info in
  let random = Compi.Random_testing.run ~settings:(quick_settings 60) info in
  Alcotest.(check bool) "compi >= random coverage" true
    (compi.Compi.Driver.covered_branches >= random.Compi.Driver.covered_branches);
  Alcotest.(check bool) "compi nearly complete" true
    (compi.Compi.Driver.covered_branches >= 14)

let test_driver_framework_varies_focus () =
  (* fig2 branches on rank: negating rank = 0 must shift the focus *)
  let info = Lazy.force fig2_info in
  let r = Compi.Driver.run ~settings:(quick_settings 60) info in
  let focus_seen =
    List.sort_uniq Int.compare
      (List.map (fun (s : Compi.Driver.iter_stat) -> s.Compi.Driver.focus) r.Compi.Driver.stats)
  in
  Alcotest.(check bool) "multiple focus processes tried" true (List.length focus_seen > 1)

let test_driver_framework_varies_nprocs () =
  (* susy-hmc branches on size (nt >= size, size == 1, size == 2, ...):
     the framework must end up varying the process count *)
  let info = Targets.Registry.instrument Targets.Susy_hmc.target in
  let settings = { (quick_settings 120) with Compi.Driver.dfs_phase_iters = 30 } in
  let r = Compi.Driver.run ~settings info in
  let nprocs_seen =
    List.sort_uniq Int.compare
      (List.map (fun (s : Compi.Driver.iter_stat) -> s.Compi.Driver.nprocs) r.Compi.Driver.stats)
  in
  Alcotest.(check bool) "multiple process counts tried" true (List.length nprocs_seen > 1)

let test_driver_no_fwk_fixed_nprocs () =
  let info = Lazy.force fig2_info in
  let settings = { (quick_settings 40) with Compi.Driver.framework = false } in
  let r = Compi.Driver.run ~settings info in
  let nprocs_seen =
    List.sort_uniq Int.compare
      (List.map (fun (s : Compi.Driver.iter_stat) -> s.Compi.Driver.nprocs) r.Compi.Driver.stats)
  in
  Alcotest.(check (list int)) "always the initial count" [ 4 ] nprocs_seen

let test_driver_two_phase_derives_bound () =
  let info = Lazy.force fig2_info in
  let r = Compi.Driver.run ~settings:(quick_settings 20) info in
  match r.Compi.Driver.derived_bound with
  | Some b -> Alcotest.(check bool) "bound above observed max" true (b > r.Compi.Driver.max_constraint_set / 2)
  | None -> Alcotest.fail "two-phase should derive a bound"

let test_driver_time_budget_respected () =
  let info = Targets.Registry.instrument Targets.Susy_hmc.target in
  let settings =
    { (quick_settings max_int) with Compi.Driver.time_budget = Some 0.5; iterations = max_int }
  in
  let t0 = Unix.gettimeofday () in
  let r = Compi.Driver.run ~settings info in
  let elapsed = Unix.gettimeofday () -. t0 in
  Alcotest.(check bool) "stopped within ~3x budget" true (elapsed < 1.5);
  Alcotest.(check bool) "ran some iterations" true (r.Compi.Driver.iterations_run > 0)

let test_driver_distinct_bugs_dedupe () =
  let info = Targets.Registry.instrument Targets.Toy.fig1 in
  let r = Compi.Driver.run ~settings:(quick_settings 30) info in
  let distinct = Compi.Driver.distinct_bugs r in
  let keys = List.map Compi.Driver.bug_key distinct in
  Alcotest.(check int) "unique keys" (List.length keys)
    (List.length (List.sort_uniq String.compare keys))

let test_focus_shift_end_to_end () =
  (* The paper's Figure 3 walkthrough: run fig2, find the rank = 0
     constraint on the focus's path, negate it, solve with the inherent
     MPI constraints, and check conflict resolution derives a non-zero
     focus for the next test. *)
  let info = Lazy.force fig2_info in
  let config = { (Compi.Runner.default_config ~info) with Compi.Runner.nprocs = 4 } in
  match Compi.Runner.run config with
  | Error (`Platform_limit _) -> Alcotest.fail "platform limit"
  | Ok res -> (
    let ex = res.Compi.Runner.execution in
    let rw =
      match Compi.Mpi_sem.rw_vars ex.Execution.symtab with
      | e :: _ -> e.Symtab.var
      | [] -> Alcotest.fail "no rw variable marked"
    in
    (* find the path position whose constraint mentions the rw var *)
    let position = ref None in
    for idx = 0 to Execution.length ex - 1 do
      if
        !position = None
        && Smt.Varid.Set.mem rw (Smt.Constr.vars (Execution.constr_at ex idx))
      then position := Some idx
    done;
    match !position with
    | None -> Alcotest.fail "no rank-dependent constraint on the path"
    | Some idx -> (
      match Execution.solve_negation ex idx with
      | Error _ -> Alcotest.fail "rank negation should be satisfiable"
      | Ok solved ->
        let d =
          Compi.Conflict.resolve ~prev_nprocs:4 ~prev_focus:0
            ~mapping:ex.Execution.mapping ~symtab:ex.Execution.symtab ~result:solved
        in
        Alcotest.(check bool) "focus moved off rank 0" true (d.Compi.Conflict.focus <> 0);
        Alcotest.(check bool) "focus within bounds" true
          (d.Compi.Conflict.focus >= 0 && d.Compi.Conflict.focus < d.Compi.Conflict.nprocs)))

let test_driver_deterministic_given_seed () =
  let info = Lazy.force fig2_info in
  let run () = Compi.Driver.run ~settings:(quick_settings 40) info in
  let a = run () and b = run () in
  Alcotest.(check int) "same coverage" a.Compi.Driver.covered_branches
    b.Compi.Driver.covered_branches;
  Alcotest.(check int) "same iterations" a.Compi.Driver.iterations_run
    b.Compi.Driver.iterations_run;
  Alcotest.(check (list int)) "same per-iteration nprocs"
    (List.map (fun (s : Compi.Driver.iter_stat) -> s.Compi.Driver.nprocs) a.Compi.Driver.stats)
    (List.map (fun (s : Compi.Driver.iter_stat) -> s.Compi.Driver.nprocs) b.Compi.Driver.stats)

let test_runner_one_way_same_coverage () =
  (* instrumentation mode must not change WHAT is covered, only cost *)
  let info = Lazy.force fig2_info in
  let cover two_way =
    let config =
      {
        (Compi.Runner.default_config ~info) with
        Compi.Runner.nprocs = 4;
        inputs = [ ("x", 10); ("y", 150) ];
        two_way;
      }
    in
    match Compi.Runner.run config with
    | Ok res -> Concolic.Coverage.branch_list res.Compi.Runner.coverage
    | Error _ -> Alcotest.fail "run failed"
  in
  Alcotest.(check (list int)) "identical coverage" (cover true) (cover false)

let test_variants_apply () =
  let base = Compi.Driver.default_settings in
  let nr = Compi.Variants.apply (Compi.Variants.No_reduction_bounded 300) base in
  Alcotest.(check bool) "reduce off" false nr.Compi.Driver.reduce;
  Alcotest.(check (option int)) "bound set" (Some 300) nr.Compi.Driver.depth_bound;
  let nf = Compi.Variants.apply Compi.Variants.No_framework base in
  Alcotest.(check bool) "framework off" false nf.Compi.Driver.framework;
  Alcotest.(check bool) "reduce untouched" true nf.Compi.Driver.reduce;
  let ow = Compi.Variants.apply Compi.Variants.One_way base in
  Alcotest.(check bool) "two-way off" false ow.Compi.Driver.two_way;
  Alcotest.(check string) "names distinct" "no-fwk" (Compi.Variants.name Compi.Variants.No_framework)

(* ------------------------------------------------------------------ *)
(* Testcase store and report                                           *)
(* ------------------------------------------------------------------ *)

let test_testcase_roundtrip () =
  let case =
    {
      Compi.Testcase.target = "susy-hmc";
      nprocs = 2;
      focus = 1;
      inputs = [ ("nx", 2); ("nz", 2) ];
      fault = Some "floating-point-exception";
    }
  in
  match Compi.Testcase.of_string (Compi.Testcase.to_string case) with
  | Ok parsed ->
    Alcotest.(check string) "target" case.Compi.Testcase.target
      parsed.Compi.Testcase.target;
    Alcotest.(check int) "nprocs" 2 parsed.Compi.Testcase.nprocs;
    Alcotest.(check (list (pair string int))) "inputs" case.Compi.Testcase.inputs
      parsed.Compi.Testcase.inputs;
    Alcotest.(check (option string)) "fault" case.Compi.Testcase.fault
      parsed.Compi.Testcase.fault
  | Error e -> Alcotest.fail e

let test_testcase_save_load () =
  let path = Filename.temp_file "compi" ".cases" in
  let mk k =
    {
      Compi.Testcase.target = "toy-fig1";
      nprocs = k;
      focus = 0;
      inputs = [ ("x", 100 + k) ];
      fault = None;
    }
  in
  Compi.Testcase.save ~path [ mk 1; mk 2; mk 3 ];
  (match Compi.Testcase.load ~path with
  | Ok cases ->
    Alcotest.(check int) "three cases" 3 (List.length cases);
    Alcotest.(check int) "second nprocs" 2 (List.nth cases 1).Compi.Testcase.nprocs
  | Error e -> Alcotest.fail e);
  Sys.remove path

let test_testcase_rejects_garbage () =
  (match Compi.Testcase.of_string "nonsense without colon" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "should reject");
  match Compi.Testcase.of_string "nprocs: 4" with
  | Error _ -> ()  (* missing target *)
  | Ok _ -> Alcotest.fail "should reject missing target"

let test_testcase_replay_reproduces_bug () =
  let info = Targets.Registry.instrument Targets.Toy.fig1 in
  let case =
    {
      Compi.Testcase.target = "toy-fig1";
      nprocs = 1;
      focus = 0;
      inputs = [ ("x", 100); ("y", 50) ];
      fault = Some "abort";
    }
  in
  match Compi.Testcase.replay case ~info () with
  | Ok ((_, Minic.Fault.Abort_called _) :: _) -> ()
  | Ok faults -> Alcotest.failf "wrong faults (%d)" (List.length faults)
  | Error (`Platform_limit _) -> Alcotest.fail "platform limit"

let test_report_uncovered_and_annotate () =
  let info = Lazy.force fig2_info in
  let r = Compi.Driver.run ~settings:(quick_settings 60) info in
  let misses = Compi.Report.uncovered info r.Compi.Driver.coverage in
  (* fig2's [total > 0] false side is infeasible (sanity forces x > 0),
     so exactly that branch remains *)
  Alcotest.(check int) "one uncovered branch" 1 (List.length misses);
  (match misses with
  | [ (_, dir, func) ] ->
    Alcotest.(check bool) "false side" false dir;
    Alcotest.(check string) "in main" "main" func
  | _ -> Alcotest.fail "unexpected");
  let listing = Compi.Report.annotate info r.Compi.Driver.coverage in
  let contains needle =
    let nh = String.length listing and nn = String.length needle in
    let rec go k = k + nn <= nh && (String.sub listing k nn = needle || go (k + 1)) in
    go 0
  in
  Alcotest.(check bool) "covered marker present" true (contains "T+ F+");
  Alcotest.(check bool) "uncovered marker present" true (contains "F-")

let test_runner_reports_leaks () =
  (* rank 1 sends a message nobody receives *)
  let open Minic in
  let open Builder in
  let p =
    program
      [
        func "main" []
          [
            decl "rank" (i 0);
            comm_rank Ast.World "rank";
            if_ (v "rank" =: i 1) [ send ~dest:(i 0) ~tag:(i 3) (i 42) ] [];
          ];
      ]
  in
  let info = Branchinfo.instrument (Check.check_exn p) in
  let config = { (Compi.Runner.default_config ~info) with Compi.Runner.nprocs = 2 } in
  match Compi.Runner.run config with
  | Ok res -> Alcotest.(check int) "one leaked message" 1 res.Compi.Runner.leaked_messages
  | Error (`Platform_limit _) -> Alcotest.fail "platform limit"

let test_report_outputs () =
  let info = Targets.Registry.instrument Targets.Toy.fig1 in
  let r = Compi.Driver.run ~settings:(quick_settings 20) info in
  let csv = Compi.Report.stats_csv r in
  Alcotest.(check bool) "csv has header + rows" true
    (List.length (String.split_on_char '\n' csv) > r.Compi.Driver.iterations_run);
  let curve = Compi.Report.coverage_curve ~points:5 r in
  Alcotest.(check bool) "curve non-empty" true (curve <> []);
  Alcotest.(check bool) "curve monotone" true
    (let covs = List.map snd curve in
     List.sort compare covs = covs);
  let ascii = Compi.Report.ascii_curve r in
  Alcotest.(check bool) "ascii plot drawn" true (String.length ascii > 100);
  let bugs_csv = Compi.Report.bugs_csv r in
  Alcotest.(check bool) "bug csv mentions abort" true
    (List.exists
       (fun line ->
         List.exists (fun f -> f = "abort") (String.split_on_char ',' line))
       (String.split_on_char '\n' bugs_csv))

let unit_tests =
  [
    ("mpi_sem families", `Quick, test_mpi_sem_families);
    ("mpi_sem empty", `Quick, test_mpi_sem_empty);
    ("conflict rc via Table II (fig 5)", `Quick, test_conflict_rc_translates_via_table2);
    ("conflict rw priority", `Quick, test_conflict_rw_takes_priority);
    ("conflict stale ignored", `Quick, test_conflict_stale_values_ignored);
    ("conflict nprocs from sw", `Quick, test_conflict_nprocs_from_sw);
    ("runner all recorders", `Quick, test_runner_records_all_processes);
    ("runner two-way log sizes", `Quick, test_runner_two_way_log_sizes);
    ("runner platform limit", `Quick, test_runner_platform_limit);
    ("runner auto marking", `Quick, test_runner_auto_marking);
    ("runner marking disabled", `Quick, test_runner_no_marking_when_disabled);
    ("runner inputs respected", `Quick, test_runner_inputs_respected);
    ("driver fig1 complete + bug", `Quick, test_driver_full_coverage_fig1);
    ("driver beats random (fig2)", `Quick, test_driver_beats_random_on_fig2);
    ("driver varies focus", `Quick, test_driver_framework_varies_focus);
    ("driver varies nprocs", `Quick, test_driver_framework_varies_nprocs);
    ("driver No_Fwk fixed nprocs", `Quick, test_driver_no_fwk_fixed_nprocs);
    ("driver two-phase bound", `Quick, test_driver_two_phase_derives_bound);
    ("driver time budget", `Quick, test_driver_time_budget_respected);
    ("driver bug dedupe", `Quick, test_driver_distinct_bugs_dedupe);
    ("focus shift end-to-end (fig 3)", `Quick, test_focus_shift_end_to_end);
    ("driver deterministic", `Quick, test_driver_deterministic_given_seed);
    ("runner one-way same coverage", `Quick, test_runner_one_way_same_coverage);
    ("variants apply", `Quick, test_variants_apply);
    ("testcase roundtrip", `Quick, test_testcase_roundtrip);
    ("testcase save/load", `Quick, test_testcase_save_load);
    ("testcase rejects garbage", `Quick, test_testcase_rejects_garbage);
    ("testcase replay bug", `Quick, test_testcase_replay_reproduces_bug);
    ("report outputs", `Quick, test_report_outputs);
    ("report uncovered/annotate", `Quick, test_report_uncovered_and_annotate);
    ("runner reports message leaks", `Quick, test_runner_reports_leaks);
  ]

let suite = [ ("compi:unit", unit_tests) ]
