(* Testcase persistence: qcheck round-trip through the textual format,
   multi-case files with blank-line separators, and parser edge cases. *)

(* lowercase identifiers: safe on both sides of the line format *)
let ident_gen =
  QCheck.Gen.(
    map
      (fun chars -> String.init (List.length chars) (List.nth chars))
      (list_size (int_range 1 8) (char_range 'a' 'z')))

let case_gen =
  QCheck.Gen.(
    let* target = ident_gen in
    let* nprocs = int_range 1 64 in
    let* focus = int_range 0 (nprocs - 1) in
    let* inputs = list_size (int_range 0 6) (pair ident_gen (int_range (-1000) 1000)) in
    let* fault = opt ident_gen in
    return { Compi.Testcase.target; nprocs; focus; inputs; fault })

let case_print (c : Compi.Testcase.t) = Compi.Testcase.to_string c
let case_arb = QCheck.make ~print:case_print case_gen

let prop_roundtrip =
  QCheck.Test.make ~name:"testcase: of_string ∘ to_string = id" ~count:500 case_arb
    (fun c ->
      match Compi.Testcase.of_string (Compi.Testcase.to_string c) with
      | Ok c' -> c' = c
      | Error _ -> false)

let prop_multi_roundtrip =
  QCheck.Test.make ~name:"testcase: save/load round-trips case lists" ~count:100
    QCheck.(make Gen.(list_size (int_range 0 5) case_gen))
    (fun cases ->
      let path =
        Filename.temp_file "compi-testcase" ".txt"
      in
      Fun.protect ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
      @@ fun () ->
      Compi.Testcase.save ~path cases;
      match Compi.Testcase.load ~path with
      | Ok cases' -> cases' = cases
      | Error _ -> false)

let test_fault_none_roundtrip () =
  let c =
    {
      Compi.Testcase.target = "toy-fig1";
      nprocs = 4;
      focus = 0;
      inputs = [ ("x", 7) ];
      fault = None;
    }
  in
  let text = Compi.Testcase.to_string c in
  Alcotest.(check bool) "no fault line emitted" false
    (List.exists
       (fun l -> String.length l >= 5 && String.sub l 0 5 = "fault")
       (String.split_on_char '\n' text));
  match Compi.Testcase.of_string text with
  | Ok c' -> Alcotest.(check bool) "round-trips" true (c = c')
  | Error e -> Alcotest.failf "parse: %s" e

let test_comments_and_blanks () =
  let text = "# saved by a campaign\n\ntarget: hpl\n  nprocs: 6  \nfocus: 2\n" in
  match Compi.Testcase.of_string text with
  | Ok c ->
    Alcotest.(check string) "target" "hpl" c.Compi.Testcase.target;
    Alcotest.(check int) "nprocs" 6 c.Compi.Testcase.nprocs;
    Alcotest.(check int) "focus" 2 c.Compi.Testcase.focus
  | Error e -> Alcotest.failf "parse: %s" e

let test_missing_target_rejected () =
  match Compi.Testcase.of_string "nprocs: 4\n" with
  | Ok _ -> Alcotest.fail "a case without a target must be rejected"
  | Error e -> Alcotest.(check bool) "diagnostic nonempty" true (String.length e > 0)

let suite =
  [
    ( "testcase:format",
      List.map QCheck_alcotest.to_alcotest [ prop_roundtrip; prop_multi_roundtrip ]
      @ [
          Alcotest.test_case "fault: none round-trips" `Quick test_fault_none_roundtrip;
          Alcotest.test_case "comments and blank lines" `Quick test_comments_and_blanks;
          Alcotest.test_case "missing target rejected" `Quick
            test_missing_target_rejected;
        ] );
  ]
