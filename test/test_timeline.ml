(* The span timeline and the profile fold built on it: live recording
   through drain into a sink, the interval accounting's invariants
   (utilization bounds, critical path, lock histogram), unknown-kind
   triage, renderer determinism, and the zero-cost-when-off guarantee. *)

(* substring search, to keep the test deps at alcotest alone *)
let contains ~affix s =
  let n = String.length affix and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = affix || go (i + 1)) in
  n = 0 || go 0

let span_line ~domain ~kind ~t0 ~t1 =
  Obs.Json.to_string
    (Obs.Event.to_json ~t:0.0 (Obs.Event.Span { domain; kind; t0; t1 }))

let fold_of_spans spans =
  Obs.Fold.of_lines
    (List.map (fun (domain, kind, t0, t1) -> span_line ~domain ~kind ~t0 ~t1) spans)

(* Record through the real machinery: enable, nest spans, drain into a
   buffer sink, fold the JSONL back. *)
let test_live_roundtrip () =
  let buf = Buffer.create 1024 in
  Obs.Sink.with_sink (Obs.Sink.Buffer_sink buf) (fun () ->
      Obs.Timeline.enable ();
      Fun.protect ~finally:Obs.Timeline.disable (fun () ->
          let got =
            Obs.Timeline.span "exec" (fun () ->
                Obs.Timeline.span "solve" (fun () -> 41 + 1))
          in
          Alcotest.(check int) "span returns the result" 42 got;
          Obs.Timeline.record ~kind:"idle" ~t0:1 ~t1:5;
          Alcotest.(check bool) "spans pending before drain" true
            (Obs.Timeline.pending () >= 3);
          Obs.Timeline.drain ();
          Alcotest.(check int) "drained" 0 (Obs.Timeline.pending ())));
  let f =
    Obs.Fold.of_lines (String.split_on_char '\n' (Buffer.contents buf))
  in
  let spans = f.Obs.Fold.spans in
  Alcotest.(check int) "three spans folded" 3 (List.length spans);
  let find kind = List.find (fun s -> s.Obs.Fold.sp_kind = kind) spans in
  let outer = find "exec" and inner = find "solve" in
  Alcotest.(check bool) "inner nests inside outer" true
    (outer.Obs.Fold.sp_t0 <= inner.Obs.Fold.sp_t0
    && inner.Obs.Fold.sp_t1 <= outer.Obs.Fold.sp_t1);
  Alcotest.(check int) "main domain" 0 outer.Obs.Fold.sp_domain;
  Alcotest.(check bool) "monotone span" true
    (inner.Obs.Fold.sp_t0 <= inner.Obs.Fold.sp_t1)

(* A span raised through must still be recorded and re-raised. *)
let test_span_exception_safe () =
  let buf = Buffer.create 256 in
  Obs.Sink.with_sink (Obs.Sink.Buffer_sink buf) (fun () ->
      Obs.Timeline.enable ();
      Fun.protect ~finally:Obs.Timeline.disable (fun () ->
          (try Obs.Timeline.span "exec" (fun () -> failwith "boom")
           with Failure _ -> ());
          Obs.Timeline.drain ()));
  let f = Obs.Fold.of_lines (String.split_on_char '\n' (Buffer.contents buf)) in
  Alcotest.(check int) "raising span still recorded" 1
    (List.length f.Obs.Fold.spans)

let test_unknown_kind_skipped () =
  let f =
    fold_of_spans
      [
        (0, "exec", 0, 100);
        (0, "mystery.v9", 10, 20);
        (0, "mystery.v9", 30, 40);
        (1, "idle", 0, 80);
      ]
  in
  let p = Obs.Fold.profile f in
  Alcotest.(check int) "known spans counted" 2 p.Obs.Fold.pf_spans;
  Alcotest.(check (list (pair string int)))
    "unknown kind skipped and counted"
    [ ("mystery.v9", 2) ]
    p.Obs.Fold.pf_unknown;
  (* skip note must surface in the text rendering *)
  let txt = Obs.Fold.profile_text f in
  Alcotest.(check bool) "skip note rendered" true
    (contains ~affix:"mystery.v9" txt)

let test_utilization_bounds () =
  let f =
    fold_of_spans
      [
        (* overlapping busy spans + a wait overlapping both *)
        (0, "exec", 0, 100);
        (0, "interp", 50, 150);
        (0, "barrier", 80, 120);
        (* a worker that only waited *)
        (1, "idle", 0, 150);
      ]
  in
  let p = Obs.Fold.profile f in
  Alcotest.(check int) "wall is the global extent" 150 p.Obs.Fold.pf_wall_ns;
  List.iter
    (fun d ->
      Alcotest.(check bool)
        (Printf.sprintf "domain %d utilization <= 1" d.Obs.Fold.dp_domain)
        true
        (d.Obs.Fold.dp_util >= 0.0 && d.Obs.Fold.dp_util <= 1.0))
    p.Obs.Fold.pf_domains;
  let d0 = List.find (fun d -> d.Obs.Fold.dp_domain = 0) p.Obs.Fold.pf_domains in
  (* busy union [0,150] minus wait [80,120] = 110 exclusive ns *)
  Alcotest.(check int) "exclusive busy subtracts waits" 110 d0.Obs.Fold.dp_busy_ns;
  Alcotest.(check int) "wait accounted" 40 d0.Obs.Fold.dp_wait_ns;
  let d1 = List.find (fun d -> d.Obs.Fold.dp_domain = 1) p.Obs.Fold.pf_domains in
  Alcotest.(check int) "pure-wait domain has no busy" 0 d1.Obs.Fold.dp_busy_ns

(* Umbrella spans attribute wall but must not count as work, or the
   critical path would always equal the round wall. *)
let test_round_critical_path () =
  let f =
    fold_of_spans
      [
        (0, "round", 0, 1000);
        (0, "merge", 600, 1000);
        (1, "task", 0, 600);
        (1, "idle", 600, 1000);
        (2, "task", 100, 400);
      ]
  in
  let p = Obs.Fold.profile f in
  (match p.Obs.Fold.pf_rounds with
  | [ r ] ->
    Alcotest.(check int) "round wall" 1000 r.Obs.Fold.rp_wall_ns;
    Alcotest.(check int) "critical path is the busiest domain" 600
      r.Obs.Fold.rp_crit_ns;
    Alcotest.(check int) "carried by domain 1" 1 r.Obs.Fold.rp_crit_domain;
    Alcotest.(check int) "stall is the unhideable remainder" 400
      r.Obs.Fold.rp_stall_ns
  | rs -> Alcotest.failf "expected 1 round, got %d" (List.length rs));
  (* attribution counts the umbrella: domain 0's round span covers all *)
  Alcotest.(check (float 0.01)) "full attribution" 100.0
    p.Obs.Fold.pf_attributed_pct

let test_lock_wait_histogram () =
  let waits = [ 0; 1; 2; 3; 4; 1500 ] in
  let f =
    fold_of_spans
      ((0, "exec", 0, 4000)
      :: List.mapi (fun i d -> (0, "cache.lock.wait", i * 10, (i * 10) + d)) waits)
  in
  let p = Obs.Fold.profile f in
  (* 0 -> bucket 0; 1,2 -> bucket 1; 3,4 -> bucket 2; 1500 -> bucket 11 *)
  Alcotest.(check (list (pair int int)))
    "power-of-two buckets"
    [ (0, 1); (1, 2); (2, 2); (11, 1) ]
    p.Obs.Fold.pf_lock_hist;
  Alcotest.(check int) "acquisitions counted" 6 p.Obs.Fold.pf_lock_acqs

let test_profile_renderers_deterministic () =
  let spans =
    [
      (0, "round", 0, 900);
      (0, "dispatch", 0, 100);
      (0, "merge", 500, 900);
      (0, "barrier", 100, 480);
      (1, "task", 120, 470);
      (1, "cache.lock.wait", 470, 475);
      (1, "idle", 480, 900);
    ]
  in
  let f = fold_of_spans spans in
  let t1 = Obs.Fold.profile_text ~stable:true f in
  let t2 = Obs.Fold.profile_text ~stable:true f in
  Alcotest.(check string) "stable text is byte-identical" t1 t2;
  let h1 = Obs.Fold.profile_html ~stable:true f in
  let h2 = Obs.Fold.profile_html ~stable:true f in
  Alcotest.(check string) "stable html is byte-identical" h1 h2;
  (* stable text never contains raw second values *)
  Alcotest.(check bool) "no raw seconds under --stable" false
    (contains ~affix:"0.000s" t1);
  (* the diagnostic vocabulary the CI smoke greps for *)
  List.iter
    (fun phrase ->
      Alcotest.(check bool) (phrase ^ " present") true
        (contains ~affix:phrase t1))
    [ "per-worker utilization"; "merge-barrier stall"; "cache-lock wait" ];
  List.iter
    (fun affix ->
      Alcotest.(check bool) (affix ^ " in html") true
        (contains ~affix h1))
    [ "<svg"; "</html>"; "Per-worker utilization" ]

(* With the timeline off, span/record must not touch the minor heap —
   the instrumented hot paths run at full speed in untraced campaigns. *)
let test_zero_alloc_when_off () =
  Alcotest.(check bool) "timeline off" false (Obs.Timeline.on ());
  let f = Sys.opaque_identity (fun () -> ()) in
  (* warm both paths so any one-time setup is done *)
  Obs.Timeline.span "warm" f;
  Obs.Timeline.record ~kind:"warm" ~t0:0 ~t1:0;
  let w0 = Gc.minor_words () in
  for _ = 1 to 50_000 do
    Obs.Timeline.span "bench" f;
    Obs.Timeline.record ~kind:"bench" ~t0:0 ~t1:0
  done;
  let dw = Gc.minor_words () -. w0 in
  (* the Gc.minor_words brackets box a couple of floats; the loop body
     itself must contribute nothing *)
  Alcotest.(check bool)
    (Printf.sprintf "no allocation on the disabled path (%.0f words)" dw)
    true (dw < 256.0)

(* End to end: a real jobs-2 campaign traced through a buffer sink must
   yield a profile that attributes (nearly) all wall time, keeps every
   utilization in bounds, and reports the contention tables. *)
let test_live_campaign_profile () =
  let info = Targets.Registry.instrument (Targets.Catalog.find_exn "toy-fig1") in
  let settings =
    {
      Compi.Campaign.default_settings with
      Compi.Campaign.base =
        {
          Compi.Driver.default_settings with
          Compi.Driver.iterations = 30;
          dfs_phase_iters = 12;
          initial_nprocs = 2;
          seed = 11;
        };
      jobs = 2;
      solver_cache = true;
    }
  in
  let buf = Buffer.create 65536 in
  Obs.Sink.with_sink (Obs.Sink.Buffer_sink buf) (fun () ->
      ignore (Compi.Campaign.run ~settings info));
  Alcotest.(check bool) "campaign released the timeline" false (Obs.Timeline.on ());
  let f = Obs.Fold.of_lines (String.split_on_char '\n' (Buffer.contents buf)) in
  let p = Obs.Fold.profile f in
  Alcotest.(check bool) "spans recorded" true (p.Obs.Fold.pf_spans > 0);
  Alcotest.(check int) "both domains present" 2 (List.length p.Obs.Fold.pf_domains);
  Alcotest.(check bool)
    (Printf.sprintf "attribution >= 95%% (got %.1f)" p.Obs.Fold.pf_attributed_pct)
    true
    (p.Obs.Fold.pf_attributed_pct >= 95.0);
  List.iter
    (fun d ->
      Alcotest.(check bool) "live utilization <= 1" true (d.Obs.Fold.dp_util <= 1.0))
    p.Obs.Fold.pf_domains;
  Alcotest.(check bool) "rounds profiled" true (p.Obs.Fold.pf_rounds <> []);
  Alcotest.(check bool) "cache probed under the lock" true (p.Obs.Fold.pf_probes > 0);
  let txt = Obs.Fold.profile_text f in
  List.iter
    (fun phrase ->
      Alcotest.(check bool) (phrase ^ " present") true
        (contains ~affix:phrase txt))
    [ "per-worker utilization"; "merge-barrier stall"; "cache-lock wait" ]

let suite =
  [
    ( "timeline",
      [
        Alcotest.test_case "live record/drain round-trip" `Quick test_live_roundtrip;
        Alcotest.test_case "span is exception-safe" `Quick test_span_exception_safe;
        Alcotest.test_case "unknown span kinds skipped+counted" `Quick
          test_unknown_kind_skipped;
        Alcotest.test_case "utilization bounded by interval union" `Quick
          test_utilization_bounds;
        Alcotest.test_case "round critical path and stall" `Quick
          test_round_critical_path;
        Alcotest.test_case "lock-wait histogram buckets" `Quick
          test_lock_wait_histogram;
        Alcotest.test_case "profile renderers deterministic" `Quick
          test_profile_renderers_deterministic;
        Alcotest.test_case "zero allocation when off" `Quick test_zero_alloc_when_off;
        Alcotest.test_case "live jobs-2 campaign profile" `Quick
          test_live_campaign_profile;
      ] );
  ]
