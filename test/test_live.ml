(* The live campaign monitor and the run ledger: incremental-fold
   equivalence with the batch fold (the streaming-folds tentpole),
   status snapshot round trips and plateau/ETA estimates, ledger
   persistence/triage/diffing, and a live jobs-2 campaign whose final
   status snapshot must agree with the post-hoc replay census. *)

let tmp_file suffix = Filename.temp_file "compi-live" suffix

(* ------------------------------------------------------------------ *)
(* incremental fold == batch fold, on every renderer                    *)
(* ------------------------------------------------------------------ *)

(* A pool of events covering every aggregation path in the fold: the
   qcheck properties draw arbitrary streams (any order, any length,
   with repetition) from it, so they exercise arbitrary permutations
   and prefixes of a realistic event vocabulary. *)
let pool : Obs.Event.t array =
  [|
    Campaign_start { target = "toy"; iterations = 40; seed = 7; nprocs = 4 };
    Campaign_end { iterations_run = 40; covered = 9; reachable = 12; bugs = 1; wall_s = 0.8 };
    Iter_start { iteration = 0; nprocs = 4; focus = 0 };
    Iter_end
      { iteration = 0; covered = 3; reachable = 12; cs_size = 5; faults = 0;
        restarted = false; exec_s = 0.01; solve_s = 0.0 };
    Iter_end
      { iteration = 1; covered = 5; reachable = 12; cs_size = 6; faults = 1;
        restarted = true; exec_s = 0.02; solve_s = 0.01 };
    Solver_call
      { incremental = true; outcome = Obs.Event.Sat; nodes = 10; vars = 3;
        constraints = 4; time_s = 0.001 };
    Solver_call
      { incremental = false; outcome = Obs.Event.Unsat; nodes = 4; vars = 2;
        constraints = 2; time_s = 0.002 };
    Solver_call
      { incremental = false; outcome = Obs.Event.Unknown; nodes = 99; vars = 9;
        constraints = 9; time_s = 0.1 };
    Negation { iteration = 2; index = 1; sat = true };
    Restart { iteration = 3; reason = "stagnation" };
    Sched_step { kind = "send"; rank = 0; comm = 0; detail = "dest=1 tag=0" };
    Sched_deadlock { ranks = [ 1; 2 ] };
    Fault { iteration = 4; rank = 1; kind = "assert"; detail = "boom" };
    Coverage_delta { iteration = 4; covered_before = 5; covered_after = 7 };
    Worker_spawn { worker = 1 };
    Worker_task { worker = 1; task = 2; time_s = 0.1 };
    Worker_exit { worker = 1; tasks = 2 };
    Cache_lookup { hit = true; constraints = 4; entries = 9 };
    Cache_lookup { hit = false; constraints = 5; entries = 9 };
    Cache_evict { dropped = 1; entries = 8 };
    Checkpoint_write { iteration = 5; path = "/tmp/c"; bytes = 100 };
    Checkpoint_load { iteration = 5; path = "/tmp/c" };
    Lineage_test
      { test = 0; parent = -1; origin = "seed"; branch = -1; index = -1; cached = false };
    Lineage_test
      { test = 1; parent = 0; origin = "negated"; branch = 7; index = 2; cached = false };
    Lineage_negation
      { parent = 1; index = 3; branch = 9; outcome = Obs.Event.Unsat; cached = true };
    Lineage_negation
      { parent = 0; index = 1; branch = 7; outcome = Obs.Event.Sat; cached = false };
    Msg_matched { src = 0; dst = 1; comm = 0; tag = 0 };
    Coll_done { comm = 0; signature = "barrier"; ranks = [ 0; 1; 2; 3 ] };
    Rank_blocked { rank = 2; comm = 0; kind = "recv"; peer = 0 };
    Deadlock_witness { rank = 1; comm = 0; kind = "recv"; peer = 2 };
    Schedule_choice { rank = 0; comm = 0; tag = 3; chosen = 2; alts = [ 1; 2 ]; point = 0 };
    Schedule_enum { parent = 1; points = 2; emitted = 1; pruned = 1 };
    Span { domain = 0; kind = "merge"; t0 = 500; t1 = 900 };
    Span { domain = 1; kind = "exec"; t0 = 1_000; t1 = 2_000 };
    Span { domain = 1; kind = "idle"; t0 = 2_000; t1 = 2_400 };
    Status_snapshot
      { rounds = 3; executed = 10; covered = 5; reachable = 12; bugs = 1;
        queue = 2; path = "/tmp/s.json" };
    Ledger_append
      { path = "/tmp/l.jsonl"; run = "toy#0"; covered = 9; reachable = 12; bugs = 1 };
  |]

let events_of_indices ixs = List.map (fun i -> pool.(i mod Array.length pool)) ixs

(* Byte-level agreement across every renderer: if the folds differ
   anywhere a renderer reads, some string differs. *)
let renderings (f : Obs.Fold.t) =
  [
    ("to_text", Obs.Fold.to_text f);
    ("to_text stable", Obs.Fold.to_text ~stable:true f);
    ("to_html", Obs.Fold.to_html f);
    ("profile_text", Obs.Fold.profile_text f);
    ("profile_text stable", Obs.Fold.profile_text ~stable:true f);
    ("ascii_curve", Obs.Fold.ascii_curve f.Obs.Fold.curve);
  ]

let check_equal_folds ~what (batch : Obs.Fold.t) (incr : Obs.Fold.t) =
  if batch <> incr then
    QCheck.Test.fail_reportf "%s: structural mismatch" what;
  List.iter2
    (fun (name, b) (_, i) ->
      if b <> i then
        QCheck.Test.fail_reportf "%s: renderer %s differs" what name)
    (renderings batch) (renderings incr);
  true

let take n l =
  let rec go n = function
    | x :: tl when n > 0 -> x :: go (n - 1) tl
    | _ -> []
  in
  go n l

(* Arbitrary streams and split points: finishing mid-stream must leave
   the state intact (each finish equals a batch fold of the prefix
   consumed so far), and the full-stream finish must equal the batch
   fold of the whole stream. *)
let prop_incremental_equals_batch =
  QCheck.Test.make ~name:"fold: incremental == batch on any stream prefix"
    ~count:150
    QCheck.(pair (list_of_size Gen.(int_range 0 80) (int_bound 1_000)) small_nat)
    (fun (ixs, split) ->
      let events = events_of_indices ixs in
      let n = List.length events in
      let k = if n = 0 then 0 else split mod (n + 1) in
      let st = Obs.Fold.init () in
      List.iter (fun ev -> ignore (Obs.Fold.step st ev)) (take k events);
      let mid = Obs.Fold.finish st in
      ignore (check_equal_folds ~what:"prefix" (Obs.Fold.fold (take k events)) mid);
      List.iter
        (fun ev -> ignore (Obs.Fold.step st ev))
        (List.filteri (fun i _ -> i >= k) events);
      check_equal_folds ~what:"full" (Obs.Fold.fold events) (Obs.Fold.finish st))

(* Same property at the raw-line layer, with forward-compat noise mixed
   in: unknown kinds and malformed lines must be counted identically by
   the streaming and batch paths. *)
let prop_step_line_equals_of_lines =
  QCheck.Test.make ~name:"fold: step_line == of_lines with triage noise"
    ~count:100
    QCheck.(pair (list_of_size Gen.(int_range 0 60) (int_bound 1_000)) small_nat)
    (fun (ixs, split) ->
      let lines =
        List.map
          (fun i ->
            match i mod 10 with
            | 0 -> "{\"ev\": \"from_the_future\", \"x\": 1}"
            | 1 -> "not json at all"
            | 2 -> ""
            | _ ->
              Obs.Json.to_string
                (Obs.Event.to_json ~t:0.25 pool.(i mod Array.length pool)))
          ixs
      in
      let n = List.length lines in
      let k = if n = 0 then 0 else split mod (n + 1) in
      let st = Obs.Fold.init () in
      List.iter (fun l -> ignore (Obs.Fold.step_line st l)) (take k lines);
      ignore
        (check_equal_folds ~what:"line prefix"
           (Obs.Fold.of_lines (take k lines))
           (Obs.Fold.finish st));
      List.iter
        (fun l -> ignore (Obs.Fold.step_line st l))
        (List.filteri (fun i _ -> i >= k) lines);
      check_equal_folds ~what:"line full" (Obs.Fold.of_lines lines)
        (Obs.Fold.finish st))

(* ------------------------------------------------------------------ *)
(* status snapshots                                                    *)
(* ------------------------------------------------------------------ *)

let sample_status : Obs.Status.t =
  {
    Obs.Status.target = "toy";
    budget = 100;
    rounds = 12;
    executed = 48;
    covered = 9;
    reachable = 12;
    bugs = 1;
    queue_depth = 3;
    utilization = 0.75;
    cache_hit_rate = 0.5;
    schedule_forks = 2;
    plateau = false;
    eta_iterations = 40;
    finished = false;
  }

let test_status_roundtrip () =
  match Obs.Status.of_json (Obs.Status.to_json sample_status) with
  | Ok st -> Alcotest.(check bool) "round-trips" true (st = sample_status)
  | Error e -> Alcotest.failf "decode failed: %s" e

let test_status_publish_read () =
  let path = tmp_file ".json" in
  Obs.Status.publish path sample_status;
  (match Obs.Status.read path with
  | Ok st -> Alcotest.(check bool) "published then read" true (st = sample_status)
  | Error e -> Alcotest.failf "read failed: %s" e);
  (* publish is tmp+rename: no stray temp file survives *)
  Alcotest.(check bool) "no temp residue" false (Sys.file_exists (path ^ ".tmp"));
  Sys.remove path

let test_status_forward_compat () =
  (* a v2 producer adds a field: the v1 core must still read *)
  let extended =
    match Obs.Status.to_json sample_status with
    | Obs.Json.Obj fields ->
      Obs.Json.Obj
        (List.map
           (function "v", _ -> ("v", Obs.Json.Int 2) | kv -> kv)
           fields
        @ [ ("novelty", Obs.Json.Str "ignored") ])
    | _ -> Alcotest.fail "status json is not an object"
  in
  (match Obs.Status.of_json extended with
  | Ok st -> Alcotest.(check bool) "newer version readable" true (st = sample_status)
  | Error e -> Alcotest.failf "v2 rejected: %s" e);
  match Obs.Status.of_json (Obs.Json.Obj [ ("v", Obs.Json.Int 0) ]) with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "accepted a v0 document"

let test_status_estimate () =
  let check name expect got =
    Alcotest.(check (pair bool int)) name expect got
  in
  check "empty curve" (false, -1) (Obs.Status.estimate ~reachable:10 []);
  check "fully covered" (false, 0)
    (Obs.Status.estimate ~reachable:10 [ (0, 2); (30, 10) ]);
  check "too little history" (false, -1)
    (Obs.Status.estimate ~reachable:10 [ (0, 2); (5, 3) ]);
  (* 2 branches gained over 40 iterations: slope 0.05, 6 remaining ->
     ceil(6 / 0.05) = 120 *)
  check "slope extrapolates" (false, 120)
    (Obs.Status.estimate ~reachable:10 [ (0, 2); (40, 4) ]);
  check "flat window is a plateau" (true, -1)
    (Obs.Status.estimate ~reachable:10 [ (0, 4); (40, 4) ])

(* ------------------------------------------------------------------ *)
(* run ledger                                                          *)
(* ------------------------------------------------------------------ *)

let sample_record ?(covered = 9) ?(fingerprint = "abc123") () : Obs.Ledger.record =
  {
    Obs.Ledger.run = "";
    target = "toy";
    fingerprint;
    exec_mode = "compiled";
    jobs = 2;
    seed = 7;
    budget = 40;
    executed = 40;
    rounds = 11;
    covered;
    reachable = 12;
    bugs = [ { Obs.Ledger.bug_test = 5; bug_rank = 1; bug_kind = "assert" } ];
    curve = [ (0, 3); (5, 7); (39, covered) ];
    wall_s = 0.5;
    solver_calls = 30;
    cache_hits = 20;
    cache_misses = 10;
    schedule_forks = 0;
  }

let test_ledger_roundtrip () =
  let r = { (sample_record ()) with Obs.Ledger.run = "toy#0" } in
  match Obs.Ledger.of_json (Obs.Ledger.to_json r) with
  | Ok r' -> Alcotest.(check bool) "round-trips" true (r = r')
  | Error e -> Alcotest.failf "decode failed: %s" e

let test_ledger_append_assigns_ids () =
  let path = tmp_file ".jsonl" in
  Sys.remove path;
  let w0 = Obs.Ledger.append path (sample_record ()) in
  let w1 = Obs.Ledger.append path (sample_record ~covered:10 ()) in
  Alcotest.(check string) "first id" "toy#0" w0.Obs.Ledger.run;
  Alcotest.(check string) "second id" "toy#1" w1.Obs.Ledger.run;
  (match Obs.Ledger.load path with
  | Ok store ->
    Alcotest.(check int) "two records" 2 (List.length store.Obs.Ledger.records);
    Alcotest.(check int) "no skips" 0 store.Obs.Ledger.skipped;
    (* selectors: by index (negative from the end) and by run id *)
    (match Obs.Ledger.find store "-1" with
    | Some r -> Alcotest.(check string) "find -1 is latest" "toy#1" r.Obs.Ledger.run
    | None -> Alcotest.fail "find -1 failed");
    (match Obs.Ledger.find store "toy#0" with
    | Some r -> Alcotest.(check int) "find by id" 9 r.Obs.Ledger.covered
    | None -> Alcotest.fail "find by id failed");
    Alcotest.(check bool) "find miss" true (Obs.Ledger.find store "toy#9" = None)
  | Error e -> Alcotest.failf "load failed: %s" e);
  Sys.remove path

let test_ledger_triage () =
  let path = tmp_file ".jsonl" in
  let oc = open_out path in
  output_string oc
    (Obs.Json.to_string
       (Obs.Ledger.to_json { (sample_record ()) with Obs.Ledger.run = "toy#0" }));
  output_string oc "\n{\"v\": 99, \"run\": \"future#0\"}\nnot json\n";
  close_out oc;
  (match Obs.Ledger.load path with
  | Ok store ->
    Alcotest.(check int) "one readable record" 1
      (List.length store.Obs.Ledger.records);
    Alcotest.(check int) "newer version skipped" 1 store.Obs.Ledger.skipped;
    Alcotest.(check int) "bad line malformed" 1 store.Obs.Ledger.malformed;
    (* appends keep ids unique past lines this build cannot parse *)
    let w = Obs.Ledger.append path (sample_record ()) in
    Alcotest.(check string) "seq counts every line" "toy#3" w.Obs.Ledger.run
  | Error e -> Alcotest.failf "load failed: %s" e);
  Sys.remove path

let test_ledger_diff () =
  let a = { (sample_record ()) with Obs.Ledger.run = "toy#0" } in
  let same = { (sample_record ()) with Obs.Ledger.run = "toy#1" } in
  let d = Obs.Ledger.diff a same in
  Alcotest.(check int) "zero coverage delta" 0 d.Obs.Ledger.d_covered;
  Alcotest.(check int) "zero bug delta" 0 d.Obs.Ledger.d_bugs;
  Alcotest.(check bool) "same settings" true d.Obs.Ledger.same_settings;
  Alcotest.(check bool) "no regression" false d.Obs.Ledger.regression;
  let worse = { (sample_record ~covered:7 ()) with Obs.Ledger.run = "toy#2" } in
  Alcotest.(check bool) "drop of 2 regresses" true
    (Obs.Ledger.diff a worse).Obs.Ledger.regression;
  Alcotest.(check bool) "tolerance absorbs the drop" false
    (Obs.Ledger.diff ~tolerance:2 a worse).Obs.Ledger.regression;
  (* wall time and solver work never gate *)
  let slow = { (sample_record ()) with Obs.Ledger.run = "toy#3"; wall_s = 99.0 } in
  Alcotest.(check bool) "slower is not a regression" false
    (Obs.Ledger.diff a slow).Obs.Ledger.regression;
  let diff_settings =
    { (sample_record ~fingerprint:"zzz" ()) with Obs.Ledger.run = "toy#4" }
  in
  Alcotest.(check bool) "fingerprints differ" false
    (Obs.Ledger.diff a diff_settings).Obs.Ledger.same_settings

let test_ledger_digest_stable () =
  let fp = [ ("target", "toy"); ("seed", "7") ] in
  Alcotest.(check string) "digest is deterministic" (Obs.Ledger.digest fp)
    (Obs.Ledger.digest fp);
  Alcotest.(check bool) "digest depends on values" true
    (Obs.Ledger.digest fp <> Obs.Ledger.digest [ ("target", "toy"); ("seed", "8") ])

(* ------------------------------------------------------------------ *)
(* live jobs-2 campaign: status snapshot vs post-hoc replay census     *)
(* ------------------------------------------------------------------ *)

let test_live_campaign_status_matches_replay () =
  let status_path = tmp_file ".json" in
  let trace_path = tmp_file ".jsonl" in
  let ledger_path = tmp_file ".jsonl" in
  Sys.remove ledger_path;
  let info = Targets.Registry.instrument (Targets.Catalog.find_exn "toy-fig1") in
  let settings =
    {
      Compi.Campaign.default_settings with
      Compi.Campaign.base =
        {
          Compi.Driver.default_settings with
          Compi.Driver.iterations = 40;
          dfs_phase_iters = 12;
          initial_nprocs = 2;
          seed = 11;
        };
      jobs = 2;
      status_file = Some status_path;
      ledger = Some ledger_path;
    }
  in
  let oc = open_out trace_path in
  Obs.Sink.install (Obs.Sink.Channel_sink oc);
  let result =
    Fun.protect
      ~finally:(fun () ->
        Obs.Sink.uninstall ();
        close_out oc)
      (fun () -> Compi.Campaign.run ~settings ~label:"toy-fig1" info)
  in
  let summary = result.Compi.Campaign.summary in
  (* the final snapshot is the campaign's own closing publish *)
  let st =
    match Obs.Status.read status_path with
    | Ok st -> st
    | Error e -> Alcotest.failf "status unreadable: %s" e
  in
  Alcotest.(check bool) "finished flag set" true st.Obs.Status.finished;
  Alcotest.(check string) "target" "toy-fig1" st.Obs.Status.target;
  (* the snapshot agrees with the post-hoc replay census of the trace *)
  let f =
    Obs.Fold.of_lines (In_channel.with_open_text trace_path In_channel.input_lines)
  in
  Alcotest.(check (option int))
    "covered agrees with replay" (Some st.Obs.Status.covered)
    f.Obs.Fold.final_covered;
  Alcotest.(check (option int))
    "reachable agrees with replay" (Some st.Obs.Status.reachable)
    f.Obs.Fold.final_reachable;
  Alcotest.(check int) "bugs agree with replay" f.Obs.Fold.bugs st.Obs.Status.bugs;
  Alcotest.(check int)
    "executed agrees with replay" f.Obs.Fold.iterations st.Obs.Status.executed;
  (* and with the in-process result *)
  Alcotest.(check int) "covered agrees with result"
    summary.Compi.Driver.covered_branches st.Obs.Status.covered;
  Alcotest.(check int) "executed agrees with result"
    result.Compi.Campaign.executed st.Obs.Status.executed;
  (* the trace carries the status/ledger breadcrumbs *)
  let census kind =
    match List.assoc_opt kind f.Obs.Fold.census with Some n -> n | None -> 0
  in
  Alcotest.(check bool) "status snapshots traced" true (census "status_snapshot" > 0);
  Alcotest.(check int) "one ledger append traced" 1 (census "ledger_append");
  (* the ledger record mirrors the same final numbers *)
  (match Obs.Ledger.load ledger_path with
  | Ok { Obs.Ledger.records = [ r ]; skipped = 0; malformed = 0 } ->
    Alcotest.(check string) "run id" "toy-fig1#0" r.Obs.Ledger.run;
    Alcotest.(check int) "ledger covered" st.Obs.Status.covered r.Obs.Ledger.covered;
    Alcotest.(check int) "ledger executed" st.Obs.Status.executed r.Obs.Ledger.executed;
    Alcotest.(check int) "ledger bugs" st.Obs.Status.bugs
      (List.length r.Obs.Ledger.bugs);
    Alcotest.(check string) "ledger exec mode" "compiled" r.Obs.Ledger.exec_mode
  | Ok s ->
    Alcotest.failf "expected exactly one clean ledger record, got %d (+%d/%d)"
      (List.length s.Obs.Ledger.records)
      s.Obs.Ledger.skipped s.Obs.Ledger.malformed
  | Error e -> Alcotest.failf "ledger unreadable: %s" e);
  List.iter Sys.remove [ status_path; trace_path; ledger_path ]

let suite =
  [
    ( "live",
      [
        Alcotest.test_case "status: json round trip" `Quick test_status_roundtrip;
        Alcotest.test_case "status: publish/read" `Quick test_status_publish_read;
        Alcotest.test_case "status: forward compat" `Quick test_status_forward_compat;
        Alcotest.test_case "status: plateau/eta estimate" `Quick test_status_estimate;
        Alcotest.test_case "ledger: json round trip" `Quick test_ledger_roundtrip;
        Alcotest.test_case "ledger: append assigns ids" `Quick
          test_ledger_append_assigns_ids;
        Alcotest.test_case "ledger: version triage" `Quick test_ledger_triage;
        Alcotest.test_case "ledger: diff and regression gate" `Quick test_ledger_diff;
        Alcotest.test_case "ledger: digest stability" `Quick test_ledger_digest_stable;
        Alcotest.test_case "campaign: live status agrees with replay" `Quick
          test_live_campaign_status_matches_replay;
      ]
      @ List.map QCheck_alcotest.to_alcotest
          [ prop_incremental_equals_batch; prop_step_line_equals_of_lines ] );
  ]
