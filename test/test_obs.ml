(* Tests for the telemetry layer: the JSON emitter/parser round-trip,
   the event vocabulary encoding, histogram bucketing edge cases, and
   the guarantee that telemetry (null sink, metrics) never perturbs a
   campaign's results. *)

(* ------------------------------------------------------------------ *)
(* Json: escaping and round-trips                                      *)
(* ------------------------------------------------------------------ *)

let roundtrip j =
  match Obs.Json.parse (Obs.Json.to_string j) with
  | Ok j' -> j'
  | Error e -> Alcotest.failf "re-parse failed: %s on %s" e (Obs.Json.to_string j)

let test_json_escaping () =
  let check_str s =
    match roundtrip (Obs.Json.Str s) with
    | Obs.Json.Str s' -> Alcotest.(check string) "string round-trip" s s'
    | _ -> Alcotest.fail "not a string"
  in
  check_str "";
  check_str "plain";
  check_str "quote \" backslash \\ slash /";
  check_str "newline \n tab \t return \r";
  check_str "\x00\x01\x1f control bytes";
  check_str "utf-8 passthrough: \xc3\xa9\xe2\x86\x92";
  (* control characters must appear escaped on the wire *)
  let wire = Obs.Json.to_string (Obs.Json.Str "\x07") in
  Alcotest.(check string) "control char escaped" "\"\\u0007\"" wire;
  Alcotest.(check string) "newline escaped" "\"\\n\""
    (Obs.Json.to_string (Obs.Json.Str "\n"))

let test_json_floats () =
  let check_float x =
    match Obs.Json.to_float (roundtrip (Obs.Json.Float x)) with
    | Some x' ->
      Alcotest.(check bool) (Printf.sprintf "float %h round-trips" x) true (x = x')
    | None -> Alcotest.fail "not a number"
  in
  List.iter check_float
    [ 0.0; 1.0; -1.5; 0.1; 1e-9; 1.7976931348623157e308; 4.9e-324; 3.141592653589793 ];
  (* integer-valued floats must stay floats on the wire *)
  let wire = Obs.Json.to_string (Obs.Json.Float 2.0) in
  Alcotest.(check bool) "2.0 renders with a point" true (String.contains wire '.');
  Alcotest.(check string) "nan is null" "null" (Obs.Json.to_string (Obs.Json.Float Float.nan));
  Alcotest.(check string) "inf is null" "null"
    (Obs.Json.to_string (Obs.Json.Float Float.infinity))

let test_json_structures () =
  let doc =
    Obs.Json.Obj
      [
        ("a", Obs.Json.Int (-42));
        ("b", Obs.Json.List [ Obs.Json.Bool true; Obs.Json.Null; Obs.Json.Str "x" ]);
        ("max", Obs.Json.Int max_int);
        ("min", Obs.Json.Int min_int);
        ("nested", Obs.Json.Obj [ ("empty", Obs.Json.List []) ]);
      ]
  in
  Alcotest.(check bool) "structure round-trips" true (roundtrip doc = doc);
  (match Obs.Json.parse "{\"a\": 1} trailing" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "trailing garbage accepted");
  match Obs.Json.parse " [1, 2.5, \"\\u0041\\n\", {}] " with
  | Ok (Obs.Json.List [ Obs.Json.Int 1; Obs.Json.Float 2.5; Obs.Json.Str "A\n"; Obs.Json.Obj [] ])
    -> ()
  | Ok j -> Alcotest.failf "unexpected parse: %s" (Obs.Json.to_string j)
  | Error e -> Alcotest.failf "parse failed: %s" e

(* ------------------------------------------------------------------ *)
(* Event: every constructor encodes and decodes exactly                *)
(* ------------------------------------------------------------------ *)

let sample_events : Obs.Event.t list =
  [
    Campaign_start { target = "toy \"quoted\""; iterations = 200; seed = 42; nprocs = 4 };
    Campaign_end
      { iterations_run = 200; covered = 17; reachable = 20; bugs = 1; wall_s = 0.125 };
    Iter_start { iteration = 3; nprocs = 8; focus = 2 };
    Iter_end
      {
        iteration = 3;
        covered = 12;
        reachable = 20;
        cs_size = 9;
        faults = 0;
        restarted = true;
        exec_s = 0.01;
        solve_s = 0.002;
      };
    Solver_call
      {
        incremental = true;
        outcome = Obs.Event.Sat;
        nodes = 128;
        vars = 6;
        constraints = 11;
        time_s = 3.5e-05;
      };
    Solver_call
      {
        incremental = false;
        outcome = Obs.Event.Unsat;
        nodes = 0;
        vars = 0;
        constraints = 0;
        time_s = 0.0;
      };
    Solver_call
      {
        incremental = false;
        outcome = Obs.Event.Unknown;
        nodes = max_int;
        vars = 1;
        constraints = 1;
        time_s = 1.0;
      };
    Negation { iteration = 7; index = 4; sat = false };
    Restart { iteration = 50; reason = "stagnation" };
    Sched_step { kind = "send"; rank = 1; comm = 0; detail = "dest=2 tag=0" };
    Sched_deadlock { ranks = [ 0; 1; 3 ] };
    Fault { iteration = 9; rank = 2; kind = "assert"; detail = "x > 0\nline 3" };
    Coverage_delta { iteration = 9; covered_before = 10; covered_after = 12 };
    Worker_spawn { worker = 2 };
    Worker_task { worker = 2; task = 17; time_s = 0.004 };
    Worker_exit { worker = 2; tasks = 9 };
    Cache_lookup { hit = true; constraints = 5; entries = 40 };
    Cache_evict { dropped = 3; entries = 4096 };
    Checkpoint_write { iteration = 60; path = "/tmp/ckpt/campaign.ckpt"; bytes = 8192 };
    Checkpoint_load { iteration = 60; path = "/tmp/ckpt/campaign.ckpt" };
    Lineage_test
      { test = 12; parent = 7; origin = "negated"; branch = 35; index = 4; cached = true };
    Lineage_test
      { test = 0; parent = -1; origin = "seed"; branch = -1; index = -1; cached = false };
    Lineage_negation
      { parent = 12; index = 9; branch = 18; outcome = Obs.Event.Unsat; cached = false };
    Msg_matched { src = 1; dst = 2; comm = 0; tag = 7 };
    Coll_done { comm = 3; signature = "allreduce:max"; ranks = [ 0; 1; 2; 3 ] };
    Rank_blocked { rank = 2; comm = 0; kind = "recv"; peer = -1 };
    Deadlock_witness { rank = 1; comm = 0; kind = "collective:barrier"; peer = 3 };
    Schedule_choice { rank = 0; comm = 0; tag = 3; chosen = 2; alts = [ 1; 2 ]; point = 0 };
    Schedule_enum { parent = 12; points = 2; emitted = 1; pruned = 1 };
    Span { domain = 1; kind = "cache.lock.wait"; t0 = 1_000; t1 = 2_500 };
    Status_snapshot
      { rounds = 40; executed = 120; covered = 30; reachable = 38; bugs = 1;
        queue = 6; path = "/tmp/status.json" };
    Ledger_append
      { path = "/tmp/ledger.jsonl"; run = "toy#3"; covered = 30; reachable = 38; bugs = 1 };
  ]

let test_event_roundtrip () =
  (* every constructor appears in the sample set *)
  let kinds =
    List.sort_uniq String.compare (List.map Obs.Event.kind_name sample_events)
  in
  Alcotest.(check int) "all 29 event kinds sampled" 29 (List.length kinds);
  List.iter
    (fun ev ->
      let wire = Obs.Json.to_string (Obs.Event.to_json ~t:1.25 ev) in
      match Obs.Json.parse wire with
      | Error e -> Alcotest.failf "%s: unparseable wire %s (%s)" (Obs.Event.kind_name ev) wire e
      | Ok j -> (
        match Obs.Event.of_json j with
        | Ok ev' ->
          Alcotest.(check bool)
            (Printf.sprintf "%s round-trips" (Obs.Event.kind_name ev))
            true (ev = ev')
        | Error e -> Alcotest.failf "%s: decode failed: %s" (Obs.Event.kind_name ev) e))
    sample_events

let test_event_of_json_rejects () =
  let reject s =
    match Obs.Json.parse s with
    | Error _ -> ()
    | Ok j -> (
      match Obs.Event.of_json j with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "accepted bad event %s" s)
  in
  reject "{\"no_ev\": 1}";
  reject "{\"ev\": \"not_a_kind\"}";
  reject "{\"ev\": \"negation\", \"iteration\": 1}";
  reject "[1,2,3]"

(* ------------------------------------------------------------------ *)
(* Metrics: histogram bucketing edge cases                             *)
(* ------------------------------------------------------------------ *)

let test_histogram_buckets () =
  (* non-positive values land in the underflow bucket *)
  Alcotest.(check int) "0 -> bucket 0" 0 (Obs.Metrics.bucket_index 0.0);
  Alcotest.(check int) "-1 -> bucket 0" 0 (Obs.Metrics.bucket_index (-1.0));
  Alcotest.(check int) "-inf -> bucket 0" 0 (Obs.Metrics.bucket_index Float.neg_infinity);
  (* buckets are monotone in the value *)
  let idx = List.map Obs.Metrics.bucket_index [ 1e-9; 1e-3; 1.0; 2.0; 1e6; 1e18 ] in
  Alcotest.(check (list int)) "monotone" (List.sort_uniq compare idx) idx;
  (* every probed value lies inside its bucket's bounds: bucket 0 is
     (-inf, 0], positive buckets are [lo, hi) *)
  List.iter
    (fun v ->
      let i = Obs.Metrics.bucket_index v in
      let lo, hi = Obs.Metrics.bucket_bounds i in
      Alcotest.(check bool)
        (Printf.sprintf "%h in bucket %d [%h, %h)" v i lo hi)
        true
        (if i = 0 then v <= 0.0 else v >= lo && v < hi))
    [ 1e-9; 0.5; 1.0; 1.5; 2.0; 1024.0; float_of_int max_int ];
  (* max_int observes without escaping the bucket range *)
  let h = Obs.Metrics.histogram "test.buckets" in
  Obs.Metrics.observe_int h max_int;
  Obs.Metrics.observe_int h 0;
  Obs.Metrics.observe h 1e300;
  Alcotest.(check int) "3 observations" 3 (Obs.Metrics.histogram_count h);
  Alcotest.(check (float 1e280)) "sum tracks" (float_of_int max_int +. 1e300)
    (Obs.Metrics.histogram_sum h)

let test_histogram_snapshot () =
  let get_hist name =
    match Obs.Json.member "metrics" (Obs.Metrics.snapshot_json ()) with
    | None -> Alcotest.fail "snapshot has no metrics object"
    | Some m -> (
      match Obs.Json.member name m with
      | Some h -> h
      | None -> Alcotest.failf "histogram %s missing from snapshot" name)
  in
  let buckets h =
    match Obs.Json.member "buckets" h with
    | Some b -> Option.get (Obs.Json.to_list b)
    | None -> Alcotest.fail "no buckets field"
  in
  let int_field k j = Option.get (Obs.Json.to_int (Option.get (Obs.Json.member k j))) in
  let float_field k j =
    Option.get (Obs.Json.to_float (Option.get (Obs.Json.member k j)))
  in
  (* zero-count snapshot: count 0, empty bucket list, null min/max *)
  let _ = Obs.Metrics.histogram "test.snap.empty" in
  let h = get_hist "test.snap.empty" in
  Alcotest.(check int) "empty count" 0 (int_field "count" h);
  Alcotest.(check int) "empty buckets" 0 (List.length (buckets h));
  Alcotest.(check bool) "empty min is null" true
    (Obs.Json.member "min" h = Some Obs.Json.Null);
  Alcotest.(check bool) "empty max is null" true
    (Obs.Json.member "max" h = Some Obs.Json.Null);
  (* negative and zero samples all land in the one underflow bucket,
     whose lo exports as null (-inf is not representable in JSON) *)
  let neg = Obs.Metrics.histogram "test.snap.neg" in
  Obs.Metrics.observe neg 0.0;
  Obs.Metrics.observe neg (-5.0);
  Obs.Metrics.observe_int neg (-1);
  let h = get_hist "test.snap.neg" in
  Alcotest.(check int) "neg count" 3 (int_field "count" h);
  (match buckets h with
  | [ b ] ->
    Alcotest.(check int) "underflow n" 3 (int_field "n" b);
    Alcotest.(check bool) "underflow lo is null" true
      (Obs.Json.member "lo" b = Some Obs.Json.Null);
    Alcotest.(check (float 0.0)) "underflow hi" 0.0 (float_field "hi" b)
  | bs -> Alcotest.failf "expected one underflow bucket, got %d" (List.length bs));
  Alcotest.(check (float 1e-9)) "neg min" (-5.0) (float_field "min" h);
  Alcotest.(check (float 1e-9)) "neg max" 0.0 (float_field "max" h);
  (* single-bucket saturation: 1000 identical samples export exactly one
     bucket holding all of them, with the value inside its bounds *)
  let sat = Obs.Metrics.histogram "test.snap.sat" in
  for _ = 1 to 1000 do
    Obs.Metrics.observe sat 3.0
  done;
  let h = get_hist "test.snap.sat" in
  Alcotest.(check int) "sat count" 1000 (int_field "count" h);
  (match buckets h with
  | [ b ] ->
    Alcotest.(check int) "sat bucket n" 1000 (int_field "n" b);
    let lo = float_field "lo" b and hi = float_field "hi" b in
    Alcotest.(check bool) "3.0 inside [lo, hi)" true (lo <= 3.0 && 3.0 < hi)
  | bs -> Alcotest.failf "expected one saturated bucket, got %d" (List.length bs));
  Alcotest.(check (float 1e-6)) "sat sum" 3000.0 (Obs.Metrics.histogram_sum sat)

let test_metrics_registry () =
  let c = Obs.Metrics.counter "test.reg.c" in
  Obs.Metrics.incr c;
  Obs.Metrics.incr ~by:4 c;
  Alcotest.(check int) "counter accumulates" 5 (Obs.Metrics.value c);
  (* find-or-create returns the same instrument *)
  Obs.Metrics.incr (Obs.Metrics.counter "test.reg.c");
  Alcotest.(check int) "idempotent creation" 6 (Obs.Metrics.value c);
  (* kind mismatch is a programming error *)
  (match Obs.Metrics.gauge "test.reg.c" with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "kind mismatch accepted");
  (* reset zeroes in place: the cached handle stays valid *)
  Obs.Metrics.reset ();
  Alcotest.(check int) "reset zeroes counter" 0 (Obs.Metrics.value c);
  Obs.Metrics.incr c;
  Alcotest.(check int) "handle survives reset" 1 (Obs.Metrics.value c)

(* ------------------------------------------------------------------ *)
(* Sink: emission shape, and the null sink changes nothing             *)
(* ------------------------------------------------------------------ *)

let test_buffer_sink () =
  let buf = Buffer.create 256 in
  Obs.Sink.with_sink (Obs.Sink.Buffer_sink buf) (fun () ->
      Alcotest.(check bool) "buffer sink active" true (Obs.Sink.active ());
      Obs.Sink.emit (Obs.Event.Restart { iteration = 1; reason = "stagnation" });
      Obs.Sink.emit (Obs.Event.Sched_deadlock { ranks = [ 2 ] }));
  Alcotest.(check bool) "restored to inactive" false (Obs.Sink.active ());
  let lines =
    Buffer.contents buf |> String.split_on_char '\n'
    |> List.filter (fun l -> String.trim l <> "")
  in
  Alcotest.(check int) "one line per event" 2 (List.length lines);
  List.iter
    (fun line ->
      match Obs.Json.parse line with
      | Ok j ->
        Alcotest.(check bool) "has ev" true (Obs.Json.member "ev" j <> None);
        Alcotest.(check bool) "has t" true (Obs.Json.member "t" j <> None)
      | Error e -> Alcotest.failf "bad JSONL line %s: %s" line e)
    lines

let toy_result () =
  let t = Targets.Catalog.find_exn "toy-fig2" in
  let info = Targets.Registry.instrument t in
  let settings =
    { Compi.Driver.default_settings with Compi.Driver.iterations = 30; seed = 7 }
  in
  Compi.Driver.run ~settings info

(* Everything observable about a result except wall-clock times. *)
let fingerprint (r : Compi.Driver.result) =
  ( ( r.Compi.Driver.covered_branches,
      r.Compi.Driver.reachable_branches,
      r.Compi.Driver.total_branches,
      r.Compi.Driver.iterations_run,
      r.Compi.Driver.max_constraint_set,
      r.Compi.Driver.derived_bound ),
    List.map
      (fun (s : Compi.Driver.iter_stat) ->
        ( s.Compi.Driver.iteration,
          s.Compi.Driver.nprocs,
          s.Compi.Driver.focus,
          s.Compi.Driver.constraint_set_size,
          s.Compi.Driver.covered_after,
          s.Compi.Driver.faults_seen,
          s.Compi.Driver.restarted ))
      r.Compi.Driver.stats,
    List.map Compi.Driver.bug_key r.Compi.Driver.bugs )

let test_null_sink_transparent () =
  let bare = fingerprint (toy_result ()) in
  let nulled =
    Obs.Sink.with_sink Obs.Sink.Null_sink (fun () -> fingerprint (toy_result ()))
  in
  Alcotest.(check bool) "null sink leaves results identical" true (bare = nulled);
  let buf = Buffer.create 4096 in
  let buffered =
    Obs.Sink.with_sink (Obs.Sink.Buffer_sink buf) (fun () -> fingerprint (toy_result ()))
  in
  Alcotest.(check bool) "buffer sink leaves results identical" true (bare = buffered);
  Alcotest.(check bool) "buffer sink captured events" true (Buffer.length buf > 0)

let suite =
  [
    ( "obs",
      [
        Alcotest.test_case "json string escaping" `Quick test_json_escaping;
        Alcotest.test_case "json float round-trip" `Quick test_json_floats;
        Alcotest.test_case "json structures" `Quick test_json_structures;
        Alcotest.test_case "event round-trip (all kinds)" `Quick test_event_roundtrip;
        Alcotest.test_case "event decode rejects junk" `Quick test_event_of_json_rejects;
        Alcotest.test_case "histogram bucket edges" `Quick test_histogram_buckets;
        Alcotest.test_case "histogram snapshot edge cases" `Quick test_histogram_snapshot;
        Alcotest.test_case "metrics registry" `Quick test_metrics_registry;
        Alcotest.test_case "buffer sink JSONL shape" `Quick test_buffer_sink;
        Alcotest.test_case "sinks do not perturb campaigns" `Quick
          test_null_sink_transparent;
      ] );
  ]
