(* Parallel campaign engine: the determinism guarantee (worker-count
   and cache invariance of the canonical report), taskpool semantics,
   and budget accounting. *)

let campaign ?(jobs = 1) ?(cache = true) ?(iterations = 60) ?(batch = 4) info =
  let settings =
    {
      Compi.Campaign.default_settings with
      Compi.Campaign.base =
        {
          Compi.Driver.default_settings with
          Compi.Driver.iterations;
          dfs_phase_iters = 12;
          initial_nprocs = 2;
          seed = 11;
        };
      jobs;
      batch;
      solver_cache = cache;
    }
  in
  Compi.Campaign.run ~settings info

let toy () = Targets.Registry.instrument (Targets.Catalog.find_exn "toy-fig1")
let susy () = Targets.Registry.instrument (Targets.Catalog.find_exn "susy-hmc")

let test_jobs_invariance_toy () =
  let r1 = campaign ~jobs:1 (toy ()) in
  let r4 = campaign ~jobs:4 (toy ()) in
  Alcotest.(check string)
    "byte-identical report"
    (Compi.Campaign.coverage_report r1)
    (Compi.Campaign.coverage_report r4);
  Alcotest.(check int)
    "same iteration count" r1.Compi.Campaign.summary.Compi.Driver.iterations_run
    r4.Compi.Campaign.summary.Compi.Driver.iterations_run;
  Alcotest.(check int)
    "same execution count" r1.Compi.Campaign.executed r4.Compi.Campaign.executed

let test_jobs_invariance_susy () =
  let r1 = campaign ~jobs:1 ~iterations:80 (susy ()) in
  let r3 = campaign ~jobs:3 ~iterations:80 (susy ()) in
  Alcotest.(check string)
    "byte-identical report on a deep target"
    (Compi.Campaign.coverage_report r1)
    (Compi.Campaign.coverage_report r3)

(* Campaigns over the Mini-C corpus in examples/programs: parse, check,
   instrument, then require jobs-count invariance on each. *)
let example_programs () =
  let dir = "../examples/programs" in
  match Sys.readdir dir with
  | exception Sys_error _ -> []
  | names ->
    Array.to_list names
    |> List.filter (fun n -> Filename.check_suffix n ".mc")
    |> List.sort String.compare
    |> List.filter_map (fun n ->
           let src = In_channel.with_open_text (Filename.concat dir n) In_channel.input_all in
           match Minic.Parse.program src with
           | Error _ -> None
           | Ok program -> (
             match Minic.Check.check program with
             | _ :: _ -> None
             | [] ->
               Some
                 (n, Minic.Branchinfo.instrument (Minic.Opt.simplify_program program))))

let test_jobs_invariance_corpus () =
  let programs = example_programs () in
  Alcotest.(check bool) "corpus present" true (List.length programs >= 3);
  List.iter
    (fun (name, info) ->
      let r1 = campaign ~jobs:1 ~iterations:30 info in
      let r4 = campaign ~jobs:4 ~iterations:30 info in
      Alcotest.(check string)
        (Printf.sprintf "%s: jobs=4 report equals jobs=1" name)
        (Compi.Campaign.coverage_report r1)
        (Compi.Campaign.coverage_report r4))
    programs

let test_cache_invariance () =
  (* the cache must replay verdicts, never change the trajectory *)
  let on = campaign ~jobs:2 ~cache:true ~iterations:80 (susy ()) in
  let off = campaign ~jobs:2 ~cache:false ~iterations:80 (susy ()) in
  Alcotest.(check string)
    "cache on/off same report"
    (Compi.Campaign.coverage_report off)
    (Compi.Campaign.coverage_report on);
  (match on.Compi.Campaign.cache with
  | None -> Alcotest.fail "cache stats expected when enabled"
  | Some st ->
    Alcotest.(check bool) "cache was exercised" true (st.Smt.Cache.hits > 0));
  Alcotest.(check (option reject)) "no stats when disabled" None
    (Option.map (fun _ -> ()) off.Compi.Campaign.cache);
  Alcotest.(check bool)
    "cache reduces solver calls" true
    (on.Compi.Campaign.solver_calls < off.Compi.Campaign.solver_calls)

let test_matches_reference_coverage () =
  (* the engine must find what the sequential driver finds: same final
     coverage on the toy target (trajectories differ by design — the
     driver interleaves, the engine batches — but toy-fig1 saturates) *)
  let seq =
    Compi.Driver.run
      ~settings:
        {
          Compi.Driver.default_settings with
          Compi.Driver.iterations = 60;
          dfs_phase_iters = 12;
          initial_nprocs = 2;
          seed = 11;
        }
      (toy ())
  in
  let par = campaign ~jobs:2 (toy ()) in
  Alcotest.(check int)
    "same covered branches" seq.Compi.Driver.covered_branches
    par.Compi.Campaign.summary.Compi.Driver.covered_branches;
  Alcotest.(check bool)
    "both find the planted bug" true
    (Compi.Driver.distinct_bugs seq <> []
    && Compi.Driver.distinct_bugs par.Compi.Campaign.summary <> [])

let test_budget_respected () =
  let r = campaign ~jobs:4 ~iterations:25 ~batch:6 (susy ()) in
  Alcotest.(check bool)
    "iteration budget is a hard cap" true
    (r.Compi.Campaign.summary.Compi.Driver.iterations_run <= 25);
  Alcotest.(check bool)
    "executed <= iterations merged" true
    (r.Compi.Campaign.executed <= r.Compi.Campaign.summary.Compi.Driver.iterations_run)

let test_taskpool_order_and_errors () =
  let pool = Compi.Taskpool.create ~jobs:4 in
  Fun.protect ~finally:(fun () -> Compi.Taskpool.shutdown pool) @@ fun () ->
  let xs = List.init 100 Fun.id in
  Alcotest.(check (list int))
    "map preserves submission order"
    (List.map (fun x -> x * x) xs)
    (Compi.Taskpool.map pool (fun x -> x * x) xs);
  (* exceptions surface on the caller, pool stays usable *)
  (match Compi.Taskpool.map pool (fun x -> if x = 3 then failwith "boom" else x) xs with
  | _ -> Alcotest.fail "exception must propagate"
  | exception Failure msg -> Alcotest.(check string) "original exception" "boom" msg);
  Alcotest.(check (list int))
    "pool survives a failing batch" [ 2; 4 ]
    (Compi.Taskpool.map pool (fun x -> 2 * x) [ 1; 2 ])

(* The pipelined engine's determinism rests on one property: however the
   pool interleaves task completions, [next] hands results back in
   submission order — i.e. exactly the order the old round-barrier
   [map] merged in. Randomized per-task delays exercise arbitrary
   completion permutations (a slow early task forces later results to
   queue; a slow late task forces the consumer to wait). *)
let test_stream_merge_order_qcheck =
  QCheck.Test.make ~count:25 ~name:"pipelined delivery order = round-barrier order"
    QCheck.(list_of_size Gen.(int_range 1 40) (int_bound 200))
    (fun delays ->
      let pool = Compi.Taskpool.create ~jobs:4 in
      Fun.protect ~finally:(fun () -> Compi.Taskpool.shutdown pool) @@ fun () ->
      let items = List.mapi (fun i d -> (i, d)) delays in
      let work (i, d) =
        if d > 0 then Unix.sleepf (float_of_int d /. 1e6);
        i
      in
      let barrier_order = Compi.Taskpool.map pool work items in
      let st = Compi.Taskpool.stream pool (List.map (fun it () -> work it) items) in
      let rec drain acc =
        match Compi.Taskpool.next st with
        | None -> List.rev acc
        | Some x -> drain (x :: acc)
      in
      let pipelined_order = drain [] in
      pipelined_order = barrier_order
      && pipelined_order = List.mapi (fun i _ -> i) delays)

let test_taskpool_sequential_degenerate () =
  let pool = Compi.Taskpool.create ~jobs:1 in
  Fun.protect ~finally:(fun () -> Compi.Taskpool.shutdown pool) @@ fun () ->
  (* jobs=1 spawns no domain: tasks run inline on the caller, in order *)
  let trace = ref [] in
  let out = Compi.Taskpool.map pool (fun x -> trace := x :: !trace; x + 1) [ 1; 2; 3 ] in
  Alcotest.(check (list int)) "inline results" [ 2; 3; 4 ] out;
  Alcotest.(check (list int)) "inline order" [ 3; 2; 1 ] !trace

let suite =
  [
    ( "parallel:campaign",
      [
        Alcotest.test_case "jobs invariance (toy-fig1)" `Quick test_jobs_invariance_toy;
        Alcotest.test_case "jobs invariance (susy-hmc)" `Quick test_jobs_invariance_susy;
        Alcotest.test_case "jobs invariance (examples corpus)" `Quick
          test_jobs_invariance_corpus;
        Alcotest.test_case "cache invariance + savings" `Quick test_cache_invariance;
        Alcotest.test_case "coverage parity with the driver" `Quick
          test_matches_reference_coverage;
        Alcotest.test_case "iteration budget respected" `Quick test_budget_respected;
      ] );
    ( "parallel:taskpool",
      [
        Alcotest.test_case "order preserved, errors propagate" `Quick
          test_taskpool_order_and_errors;
        Alcotest.test_case "jobs=1 runs inline" `Quick test_taskpool_sequential_degenerate;
        QCheck_alcotest.to_alcotest test_stream_merge_order_qcheck;
      ] );
  ]
