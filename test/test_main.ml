let () =
  Alcotest.run "compi-repro"
    (List.concat
       [
         Test_obs.suite;
         Test_observatory.suite;
         Test_live.suite;
         Test_timeline.suite;
         Test_smt.suite;
         Test_minic.suite;
         Test_compile.suite;
         Test_mpisim.suite;
         Test_schedule.suite;
         Test_concolic.suite;
         Test_compi.suite;
         Test_cache.suite;
         Test_parallel.suite;
         Test_checkpoint.suite;
         Test_testcase.suite;
         Test_targets.suite;
         Test_parse.suite;
       ])
