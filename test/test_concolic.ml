(* Tests for the concolic engine: coverage store, symbol table, path log
   with constraint-set reduction, execution records, search strategies. *)

open Concolic

let mk_constr ?(rel = Smt.Constr.Lt) var k =
  Smt.Constr.cmp (Smt.Linexp.var var) rel (Smt.Linexp.const k)

(* ------------------------------------------------------------------ *)
(* Coverage                                                            *)
(* ------------------------------------------------------------------ *)

let test_coverage_basics () =
  let c = Coverage.create () in
  Coverage.add_branch c 4;
  Coverage.add_branch c 4;
  Coverage.add_branch c 5;
  Coverage.add_func c "main";
  Alcotest.(check int) "distinct branches" 2 (Coverage.covered_branches c);
  Alcotest.(check bool) "mem" true (Coverage.mem_branch c 4);
  Alcotest.(check bool) "not mem" false (Coverage.mem_branch c 9);
  Alcotest.(check bool) "func" true (Coverage.encountered c "main")

let test_coverage_absorb () =
  let a = Coverage.create () and b = Coverage.create () in
  Coverage.add_branch a 1;
  Coverage.add_branch b 2;
  Coverage.add_func b "f";
  Coverage.absorb ~into:a b;
  Alcotest.(check int) "union" 2 (Coverage.covered_branches a);
  Alcotest.(check bool) "func carried" true (Coverage.encountered a "f");
  (* absorb must not mutate the source *)
  Alcotest.(check int) "source untouched" 1 (Coverage.covered_branches b)

(* ------------------------------------------------------------------ *)
(* Symtab                                                              *)
(* ------------------------------------------------------------------ *)

let test_symtab_input_reuse () =
  let tab = Symtab.create () in
  let v1 = Symtab.fresh_input tab ~name:"n" ~hi:100 ~concrete:5 () in
  let v2 = Symtab.fresh_input tab ~name:"n" ~hi:100 ~concrete:5 () in
  let v3 = Symtab.fresh_input tab ~name:"m" ~concrete:7 () in
  Alcotest.(check int) "same var" v1 v2;
  Alcotest.(check bool) "distinct inputs distinct vars" true (v1 <> v3);
  Alcotest.(check int) "two entries" 2 (List.length (Symtab.entries tab))

let test_symtab_sem_fresh_per_invocation () =
  let tab = Symtab.create () in
  let r1 = Symtab.fresh_sem tab ~kind:Symtab.Rank_world ~concrete:0 () in
  let r2 = Symtab.fresh_sem tab ~kind:Symtab.Rank_world ~concrete:0 () in
  Alcotest.(check bool) "each invocation a fresh rw" true (r1 <> r2)

let test_symtab_model_and_domains () =
  let tab = Symtab.create () in
  let vn = Symtab.fresh_input tab ~name:"n" ~lo:0 ~hi:300 ~concrete:42 () in
  let vs = Symtab.fresh_sem tab ~kind:Symtab.Size_world ~concrete:8 () in
  let model = Symtab.model tab in
  Alcotest.(check (option int)) "n concrete" (Some 42) (Smt.Model.find vn model);
  Alcotest.(check (option int)) "sw concrete" (Some 8) (Smt.Model.find vs model);
  let doms = Symtab.domains tab in
  (match Smt.Varid.Map.find_opt vn doms with
  | Some d ->
    Alcotest.(check int) "cap hi" 300 d.Smt.Domain.hi;
    Alcotest.(check int) "cap lo" 0 d.Smt.Domain.lo
  | None -> Alcotest.fail "missing domain");
  match Smt.Varid.Map.find_opt vs doms with
  | Some d -> Alcotest.(check int) "sw lo 1" 1 d.Smt.Domain.lo
  | None -> Alcotest.fail "missing sw domain"

let test_symtab_input_projection () =
  let tab = Symtab.create () in
  let vn = Symtab.fresh_input tab ~name:"n" ~concrete:1 () in
  let _ = Symtab.fresh_sem tab ~kind:Symtab.Rank_world ~concrete:0 () in
  let solved = Smt.Model.of_bindings [ (vn, 99) ] in
  Alcotest.(check (list (pair string int))) "projection" [ ("n", 99) ]
    (Symtab.input_values tab solved)

(* ------------------------------------------------------------------ *)
(* Pathlog & constraint-set reduction                                  *)
(* ------------------------------------------------------------------ *)

let test_pathlog_no_reduction () =
  let log = Pathlog.create ~reduce:false in
  for _ = 1 to 100 do
    Pathlog.record log ~cond_id:3 ~taken:true ~constr:(Some (mk_constr 0 100))
  done;
  Pathlog.record log ~cond_id:3 ~taken:false ~constr:(Some (mk_constr ~rel:Smt.Constr.Ge 0 100));
  Alcotest.(check int) "all kept" 101 (Pathlog.constraint_count log);
  Alcotest.(check int) "all events" 101 (Pathlog.branch_events log)

let test_pathlog_reduction_loop () =
  (* The paper's Figure 7: a loop produces 100 same-direction constraints
     and one final flip; reduction keeps the first and the flip. *)
  let log = Pathlog.create ~reduce:true in
  for _ = 1 to 100 do
    Pathlog.record log ~cond_id:3 ~taken:true ~constr:(Some (mk_constr 0 100))
  done;
  Pathlog.record log ~cond_id:3 ~taken:false ~constr:(Some (mk_constr ~rel:Smt.Constr.Ge 0 100));
  Alcotest.(check int) "first + flip" 2 (Pathlog.constraint_count log);
  Alcotest.(check int) "coverage events all kept" 101 (Pathlog.branch_events log)

let test_pathlog_reduction_alternating () =
  (* Alternating outcomes always flip, so nothing is dropped. *)
  let log = Pathlog.create ~reduce:true in
  for k = 0 to 9 do
    Pathlog.record log ~cond_id:1 ~taken:(k mod 2 = 0) ~constr:(Some (mk_constr 0 k))
  done;
  Alcotest.(check int) "no drops when flipping" 10 (Pathlog.constraint_count log)

let test_pathlog_reduction_per_conditional () =
  (* Reduction state is per conditional statement. *)
  let log = Pathlog.create ~reduce:true in
  Pathlog.record log ~cond_id:1 ~taken:true ~constr:(Some (mk_constr 0 1));
  Pathlog.record log ~cond_id:2 ~taken:true ~constr:(Some (mk_constr 0 2));
  Pathlog.record log ~cond_id:1 ~taken:true ~constr:(Some (mk_constr 0 3));
  Pathlog.record log ~cond_id:2 ~taken:true ~constr:(Some (mk_constr 0 4));
  Alcotest.(check int) "one per conditional" 2 (Pathlog.constraint_count log)

let test_pathlog_concrete_branches () =
  let log = Pathlog.create ~reduce:true in
  Pathlog.record log ~cond_id:5 ~taken:true ~constr:None;
  Pathlog.record log ~cond_id:5 ~taken:false ~constr:None;
  Alcotest.(check int) "no constraints" 0 (Pathlog.constraint_count log);
  Alcotest.(check int) "events recorded" 2 (Pathlog.branch_events log)

let test_pathlog_constraints_order () =
  let log = Pathlog.create ~reduce:false in
  Pathlog.record log ~cond_id:0 ~taken:true ~constr:(Some (mk_constr 0 10));
  Pathlog.record log ~cond_id:1 ~taken:false ~constr:(Some (mk_constr 0 20));
  let arr = Pathlog.constraints log in
  Alcotest.(check int) "two" 2 (Array.length arr);
  Alcotest.(check int) "first branch id" (Minic.Branchinfo.branch_of_cond 0 true) (fst arr.(0));
  Alcotest.(check int) "second branch id" (Minic.Branchinfo.branch_of_cond 1 false) (fst arr.(1))

let test_pathlog_serialize_roundtrip () =
  let log = Pathlog.create ~reduce:false in
  Pathlog.record log ~cond_id:0 ~taken:true ~constr:(Some (mk_constr 3 10));
  Pathlog.record log ~cond_id:1 ~taken:false ~constr:None;
  Pathlog.record log ~cond_id:2 ~taken:true ~constr:(Some (mk_constr ~rel:Smt.Constr.Ge 4 7));
  let text = Pathlog.serialize log in
  Alcotest.(check int) "one record per event" (Pathlog.branch_events log)
    (Pathlog.parse_count text);
  let contains needle =
    let nh = String.length text and nn = String.length needle in
    let rec go k = k + nn <= nh && (String.sub text k nn = needle || go (k + 1)) in
    go 0
  in
  Alcotest.(check bool) "mentions var x3" true (contains "1*3");
  Alcotest.(check bool) "mentions relation" true (contains "<");
  Alcotest.(check bool) "grows with events" true
    (String.length text > 3 * String.length "1\n")

let test_pathlog_serialize_reduction_smaller () =
  let fill log =
    for _ = 1 to 500 do
      Pathlog.record log ~cond_id:9 ~taken:true ~constr:(Some (mk_constr 0 100))
    done
  in
  let with_r = Pathlog.create ~reduce:true in
  let without = Pathlog.create ~reduce:false in
  fill with_r;
  fill without;
  Alcotest.(check bool) "reduced log much smaller" true
    (String.length (Pathlog.serialize without)
    > 3 * String.length (Pathlog.serialize with_r))

let test_pathlog_bytes () =
  let log = Pathlog.create ~reduce:false in
  for k = 0 to 99 do
    Pathlog.record log ~cond_id:k ~taken:true ~constr:(Some (mk_constr 0 k))
  done;
  Alcotest.(check bool) "heavy >> light" true
    (Pathlog.heavy_bytes log > 2 * Pathlog.light_bytes log)

(* ------------------------------------------------------------------ *)
(* Execution                                                           *)
(* ------------------------------------------------------------------ *)

let mk_record ?(extra = []) constrs model =
  {
    Execution.constraints = Array.of_list (List.mapi (fun k c -> (k, c)) constrs);
    symtab = Symtab.create ();
    model;
    domains = Smt.Varid.Map.empty;
    extra;
    nprocs = 4;
    focus = 0;
    mapping = [];
    exec_id = -1;
    exec_schedule = [];
  }

let test_execution_prefix () =
  let r = mk_record [ mk_constr 0 1; mk_constr 0 2; mk_constr 0 3 ] Smt.Model.empty in
  Alcotest.(check int) "len" 3 (Execution.length r);
  Alcotest.(check int) "prefix 0" 0 (List.length (Execution.prefix r 0));
  Alcotest.(check int) "prefix 2" 2 (List.length (Execution.prefix r 2))

let test_execution_solve_negation () =
  (* path: x < 10 (x was 5); negating yields x >= 10 *)
  let model = Smt.Model.of_bindings [ (0, 5) ] in
  let r = mk_record [ mk_constr 0 10 ] model in
  match Execution.solve_negation r 0 with
  | Ok res ->
    let x = Smt.Model.get 0 ~default:(-1) res.Smt.Solver.model in
    Alcotest.(check bool) "x >= 10" true (x >= 10)
  | Error _ -> Alcotest.fail "should be solvable"

let test_execution_negation_respects_prefix () =
  (* path: x >= 0, x < 10. Negating index 1 must keep x >= 0. *)
  let model = Smt.Model.of_bindings [ (0, 5) ] in
  let r =
    mk_record [ mk_constr ~rel:Smt.Constr.Ge 0 0; mk_constr 0 10 ] model
  in
  match Execution.solve_negation r 1 with
  | Ok res ->
    let x = Smt.Model.get 0 ~default:(-1) res.Smt.Solver.model in
    Alcotest.(check bool) "x >= 10 and x >= 0" true (x >= 10)
  | Error _ -> Alcotest.fail "should be solvable"

let test_execution_negation_unsat () =
  (* path: x >= 10, x >= 0. Negating index 1 (x < 0) conflicts with the
     prefix. *)
  let model = Smt.Model.of_bindings [ (0, 15) ] in
  let r =
    mk_record [ mk_constr ~rel:Smt.Constr.Ge 0 10; mk_constr ~rel:Smt.Constr.Ge 0 0 ] model
  in
  match Execution.solve_negation r 1 with
  | Error `Unsat -> ()
  | Ok _ -> Alcotest.fail "should be unsat"
  | Error `Unknown -> Alcotest.fail "should be unsat, not unknown"

let test_execution_extra_constraints () =
  (* extra: x <= 20 always holds; negating x < 10 must respect it *)
  let model = Smt.Model.of_bindings [ (0, 5) ] in
  let extra = [ mk_constr ~rel:Smt.Constr.Le 0 20 ] in
  let r = mk_record ~extra [ mk_constr 0 10 ] model in
  match Execution.solve_negation r 0 with
  | Ok res ->
    let x = Smt.Model.get 0 ~default:(-1) res.Smt.Solver.model in
    Alcotest.(check bool) "10 <= x <= 20" true (x >= 10 && x <= 20)
  | Error _ -> Alcotest.fail "should be solvable"

(* ------------------------------------------------------------------ *)
(* Strategies                                                          *)
(* ------------------------------------------------------------------ *)

let test_dfs_order () =
  (* CREST order: shallowest position of the newest path first, and a
     new execution's candidates take priority over its parent's. *)
  let s = Strategy.create (Strategy.Bounded_dfs 1000) in
  let r = mk_record [ mk_constr 0 1; mk_constr 0 2; mk_constr 0 3 ] Smt.Model.empty in
  Strategy.observe s ~depth:0 r;
  let cov = Coverage.create () in
  (match Strategy.next s ~coverage:cov with
  | Some c -> Alcotest.(check int) "shallowest first" 0 c.Strategy.index
  | None -> Alcotest.fail "expected candidate");
  (* a new execution derived from negating position 0 *)
  let r2 = mk_record [ mk_constr 0 9; mk_constr 0 8; mk_constr 0 7 ] Smt.Model.empty in
  Strategy.observe s ~depth:1 r2;
  (match Strategy.next s ~coverage:cov with
  | Some c ->
    Alcotest.(check bool) "descends into the new execution" true
      (c.Strategy.record == r2 && c.Strategy.index = 1)
  | None -> Alcotest.fail "expected candidate");
  match Strategy.next s ~coverage:cov with
  | Some c ->
    Alcotest.(check bool) "continues in the new execution" true
      (c.Strategy.record == r2 && c.Strategy.index = 2)
  | None -> Alcotest.fail "expected candidate"

let test_dfs_depth_resume () =
  let s = Strategy.create (Strategy.Bounded_dfs 1000) in
  let r = mk_record [ mk_constr 0 1; mk_constr 0 2; mk_constr 0 3 ] Smt.Model.empty in
  (* observed from depth 2: only index 2 is new *)
  Strategy.observe s ~depth:2 r;
  Alcotest.(check int) "one pending" 1 (Strategy.stack_size s)

let test_dfs_bound_skips_deep () =
  let s = Strategy.create (Strategy.Bounded_dfs 2) in
  let r =
    mk_record [ mk_constr 0 1; mk_constr 0 2; mk_constr 0 3; mk_constr 0 4 ] Smt.Model.empty
  in
  Strategy.observe s ~depth:0 r;
  Alcotest.(check int) "bound caps stack" 2 (Strategy.stack_size s)

let test_dfs_exhaustion () =
  let s = Strategy.create (Strategy.Bounded_dfs 10) in
  let cov = Coverage.create () in
  Alcotest.(check bool) "empty at start" true (Strategy.next s ~coverage:cov = None)

let test_random_strategies_in_range () =
  let cov = Coverage.create () in
  let r = mk_record [ mk_constr 0 1; mk_constr 0 2; mk_constr 0 3 ] Smt.Model.empty in
  List.iter
    (fun kind ->
      let s = Strategy.create kind in
      Strategy.observe s ~depth:0 r;
      for _ = 1 to 20 do
        match Strategy.next s ~coverage:cov with
        | Some c ->
          Alcotest.(check bool) "index in range" true
            (c.Strategy.index >= 0 && c.Strategy.index < 3)
        | None -> Alcotest.fail "stateless strategy should always produce"
      done)
    [ Strategy.Random_branch; Strategy.Uniform_random ]

let test_random_branch_picks_last_occurrence () =
  (* Path with one conditional appearing 3 times: random-branch must
     always negate the last occurrence. *)
  let c = mk_constr 0 5 in
  let r =
    {
      (mk_record [ c; c; c ] Smt.Model.empty) with
      Execution.constraints =
        [| (Minic.Branchinfo.branch_of_cond 7 true, c);
           (Minic.Branchinfo.branch_of_cond 7 true, c);
           (Minic.Branchinfo.branch_of_cond 7 false, c) |];
    }
  in
  let s = Strategy.create Strategy.Random_branch in
  Strategy.observe s ~depth:0 r;
  let cov = Coverage.create () in
  for _ = 1 to 10 do
    match Strategy.next s ~coverage:cov with
    | Some cand -> Alcotest.(check int) "last occurrence" 2 cand.Strategy.index
    | None -> Alcotest.fail "expected candidate"
  done

let test_generational_prefers_uncovered_flips () =
  let s = Strategy.create (Strategy.Generational 100) in
  let c = mk_constr 0 5 in
  let r =
    {
      (mk_record [ c; c; c ] Smt.Model.empty) with
      Execution.constraints =
        [| (Minic.Branchinfo.branch_of_cond 0 true, c);
           (Minic.Branchinfo.branch_of_cond 1 true, c);
           (Minic.Branchinfo.branch_of_cond 2 true, c) |];
    }
  in
  Strategy.observe s ~depth:0 r;
  let cov = Coverage.create () in
  (* both sides of conds 0 and 2 covered; flipping cond 1 is the only
     promising candidate *)
  List.iter
    (fun b -> Coverage.add_branch cov b)
    [ 0; 1; 4; 5; Minic.Branchinfo.branch_of_cond 1 true ];
  (match Strategy.next s ~coverage:cov with
  | Some cand -> Alcotest.(check int) "promising first" 1 cand.Strategy.index
  | None -> Alcotest.fail "expected candidate");
  (* exhausted promising: falls back to remaining candidates *)
  Alcotest.(check bool) "pool not empty" true (Strategy.stack_size s > 0)

let test_generational_bound_limits_pool () =
  let s = Strategy.create (Strategy.Generational 2) in
  let r =
    mk_record [ mk_constr 0 1; mk_constr 0 2; mk_constr 0 3; mk_constr 0 4 ] Smt.Model.empty
  in
  Strategy.observe s ~depth:0 r;
  Alcotest.(check int) "pool capped at bound" 2 (Strategy.stack_size s)

let test_cfg_strategy_prefers_uncovered () =
  (* Program: if(a){ if(b){} } — covering everything except cond 1's
     branches should make the CFG strategy pick cond 0 or 1 positions
     leading toward them. *)
  let open Minic in
  let open Builder in
  let p =
    program
      [
        func "main" []
          [
            decl "a" (i 1);
            decl "b" (i 0);
            if_ (v "a" >: i 0) [ if_ (v "b" >: i 0) [] [] ] [];
          ];
      ]
  in
  let info = Branchinfo.instrument (Check.check_exn p) in
  let g = Cfg.build info in
  let s = Strategy.create (Strategy.Cfg_directed g) in
  let c0 = mk_constr 0 5 in
  let r =
    {
      (mk_record [ c0; c0 ] Smt.Model.empty) with
      Execution.constraints =
        [| (Branchinfo.branch_of_cond 0 true, c0); (Branchinfo.branch_of_cond 1 false, c0) |];
    }
  in
  Strategy.observe s ~depth:0 r;
  let cov = Coverage.create () in
  Coverage.add_branch cov (Branchinfo.branch_of_cond 0 true);
  Coverage.add_branch cov (Branchinfo.branch_of_cond 0 false);
  Coverage.add_branch cov (Branchinfo.branch_of_cond 1 false);
  (* only 1T uncovered; flipping position 1 reaches it directly *)
  match Strategy.next s ~coverage:cov with
  | Some cand -> Alcotest.(check int) "flip toward uncovered" 1 cand.Strategy.index
  | None -> Alcotest.fail "expected candidate"

(* ------------------------------------------------------------------ *)
(* Properties                                                          *)
(* ------------------------------------------------------------------ *)

let prop_reduction_never_more =
  QCheck.Test.make ~name:"pathlog: reduction keeps a subset" ~count:200
    QCheck.(make Gen.(list_size (int_range 1 60) (pair (int_range 0 5) bool)))
    (fun events ->
      let with_r = Pathlog.create ~reduce:true in
      let without = Pathlog.create ~reduce:false in
      List.iter
        (fun (cond_id, taken) ->
          let constr = Some (mk_constr 0 cond_id) in
          Pathlog.record with_r ~cond_id ~taken ~constr;
          Pathlog.record without ~cond_id ~taken ~constr)
        events;
      Pathlog.constraint_count with_r <= Pathlog.constraint_count without
      && Pathlog.branch_events with_r = Pathlog.branch_events without)

let prop_reduction_keeps_flips =
  (* Every boolean flip of a conditional is preserved by reduction. *)
  QCheck.Test.make ~name:"pathlog: reduction keeps every flip" ~count:200
    QCheck.(make Gen.(list_size (int_range 1 60) bool))
    (fun outcomes ->
      let log = Pathlog.create ~reduce:true in
      List.iter
        (fun taken -> Pathlog.record log ~cond_id:0 ~taken ~constr:(Some (mk_constr 0 1)))
        outcomes;
      let flips =
        fst
          (List.fold_left
             (fun (n, prev) cur ->
               match prev with
               | None -> (n + 1, Some cur)  (* first counts *)
               | Some p when p <> cur -> (n + 1, Some cur)
               | Some _ -> (n, Some cur))
             (0, None) outcomes)
      in
      Pathlog.constraint_count log = flips)

let prop_dfs_indices_unique_per_record =
  QCheck.Test.make ~name:"strategy: DFS pops each index once" ~count:100
    QCheck.(make Gen.(int_range 1 30))
    (fun n ->
      let s = Strategy.create (Strategy.Bounded_dfs 1000) in
      let r = mk_record (List.init n (fun k -> mk_constr 0 k)) Smt.Model.empty in
      Strategy.observe s ~depth:0 r;
      let cov = Coverage.create () in
      let seen = Hashtbl.create 16 in
      let rec drain () =
        match Strategy.next s ~coverage:cov with
        | None -> true
        | Some c ->
          if Hashtbl.mem seen c.Strategy.index then false
          else begin
            Hashtbl.replace seen c.Strategy.index ();
            drain ()
          end
      in
      drain () && Hashtbl.length seen = n)

let unit_tests =
  [
    ("coverage basics", `Quick, test_coverage_basics);
    ("coverage absorb", `Quick, test_coverage_absorb);
    ("symtab input reuse", `Quick, test_symtab_input_reuse);
    ("symtab sem fresh", `Quick, test_symtab_sem_fresh_per_invocation);
    ("symtab model/domains", `Quick, test_symtab_model_and_domains);
    ("symtab projection", `Quick, test_symtab_input_projection);
    ("pathlog no reduction", `Quick, test_pathlog_no_reduction);
    ("pathlog reduction loop (fig 7)", `Quick, test_pathlog_reduction_loop);
    ("pathlog reduction alternating", `Quick, test_pathlog_reduction_alternating);
    ("pathlog reduction per conditional", `Quick, test_pathlog_reduction_per_conditional);
    ("pathlog concrete branches", `Quick, test_pathlog_concrete_branches);
    ("pathlog order", `Quick, test_pathlog_constraints_order);
    ("pathlog serialize roundtrip", `Quick, test_pathlog_serialize_roundtrip);
    ("pathlog serialize reduction", `Quick, test_pathlog_serialize_reduction_smaller);
    ("pathlog bytes", `Quick, test_pathlog_bytes);
    ("execution prefix", `Quick, test_execution_prefix);
    ("execution negation", `Quick, test_execution_solve_negation);
    ("execution prefix respected", `Quick, test_execution_negation_respects_prefix);
    ("execution negation unsat", `Quick, test_execution_negation_unsat);
    ("execution extra constraints", `Quick, test_execution_extra_constraints);
    ("dfs order (CREST)", `Quick, test_dfs_order);
    ("dfs depth resume", `Quick, test_dfs_depth_resume);
    ("dfs bound", `Quick, test_dfs_bound_skips_deep);
    ("dfs exhaustion", `Quick, test_dfs_exhaustion);
    ("random strategies range", `Quick, test_random_strategies_in_range);
    ("random-branch last occurrence", `Quick, test_random_branch_picks_last_occurrence);
    ("generational prefers uncovered", `Quick, test_generational_prefers_uncovered_flips);
    ("generational bound", `Quick, test_generational_bound_limits_pool);
    ("cfg prefers uncovered", `Quick, test_cfg_strategy_prefers_uncovered);
  ]

let property_tests =
  List.map QCheck_alcotest.to_alcotest
    [ prop_reduction_never_more; prop_reduction_keeps_flips; prop_dfs_indices_unique_per_record ]

let suite = [ ("concolic:unit", unit_tests); ("concolic:property", property_tests) ]
