(* Schedule-space exploration: lazy wildcard matching under a
   prescription, the choice record, the POR enumerator, and the
   campaign-level guarantee that partial-order-reduced enumeration
   reaches exactly the terminal states exhaustive enumeration does. *)

open Minic
open Mpisim

(* ------------------------------------------------------------------ *)
(* harness: 3 ranks, ranks 1 and 2 send to rank 0, rank 0 receives     *)
(* ------------------------------------------------------------------ *)

(* Run the wildcard fan-in protocol under [presc]: rank 1 sends [m1]
   messages, rank 2 sends [m2], rank 0 posts [recvs] wildcard receives.
   Sent values encode (sender, sequence) as rank*10+k. Returns the
   received values in order, the deadlocked ranks and the choice
   record. *)
let run_fan_in ?(tags = fun _rank k -> k) ~m1 ~m2 ~recvs presc =
  let received = ref [] in
  let r =
    Scheduler.run ~nprocs:3 ~schedule:presc (fun ~rank ~mpi ->
        if rank = 0 then begin
          for _ = 1 to recvs do
            match
              mpi (Mpi_iface.Recv { comm = Mpi_iface.world; src = None; tag = None })
            with
            | Mpi_iface.Rvalue (Value.Vint x) -> received := x :: !received
            | _ -> failwith "bad recv reply"
          done;
          Ok ()
        end
        else begin
          let m = if rank = 1 then m1 else m2 in
          for k = 1 to m do
            ignore
              (mpi
                 (Mpi_iface.Send
                    {
                      comm = Mpi_iface.world;
                      dest = 0;
                      tag = tags rank k;
                      data = Value.Vint ((rank * 10) + k);
                    }))
          done;
          Ok ()
        end)
  in
  (List.rev !received, r.Scheduler.deadlocked, r.Scheduler.choices)

(* ------------------------------------------------------------------ *)
(* scheduler semantics                                                 *)
(* ------------------------------------------------------------------ *)

let test_default_prescription_is_arrival_order () =
  (* empty prescription: every choice point takes the first eligible
     message in arrival order — rank 1 runs (and sends) before rank 2 *)
  let received, dead, choices = run_fan_in ~m1:1 ~m2:1 ~recvs:2 [] in
  Alcotest.(check (list int)) "arrival order" [ 11; 21 ] received;
  Alcotest.(check (list int)) "no deadlock" [] dead;
  Alcotest.(check int) "two choice points" 2 (List.length choices);
  let c0 = List.nth choices 0 and c1 = List.nth choices 1 in
  Alcotest.(check int) "point 0 chose rank 1" 1 c0.Schedule.ch_chosen;
  Alcotest.(check (list int)) "point 0 had both eligible" [ 1; 2 ] c0.Schedule.ch_alts;
  Alcotest.(check int) "point 1 chose rank 2" 2 c1.Schedule.ch_chosen;
  Alcotest.(check (list int)) "point 1 only rank 2 left" [ 2 ] c1.Schedule.ch_alts

let test_prescription_steers_the_match () =
  let received, dead, choices = run_fan_in ~m1:1 ~m2:1 ~recvs:2 [ 2 ] in
  Alcotest.(check (list int)) "rank 2 delivered first" [ 21; 11 ] received;
  Alcotest.(check (list int)) "no deadlock" [] dead;
  Alcotest.(check int) "prescribed point chose rank 2" 2
    (List.hd choices).Schedule.ch_chosen

let test_ineligible_prescription_falls_back () =
  (* a prescription naming a source with no matching message is ignored
     at that point (default order is used instead) *)
  let received, _, _ = run_fan_in ~m1:1 ~m2:1 ~recvs:2 [ 9 ] in
  Alcotest.(check (list int)) "fallback to arrival order" [ 11; 21 ] received

let test_replay_determinism () =
  let a = run_fan_in ~m1:2 ~m2:2 ~recvs:4 [ 2; 1 ] in
  let b = run_fan_in ~m1:2 ~m2:2 ~recvs:4 [ 2; 1 ] in
  Alcotest.(check bool) "identical replay" true (a = b)

let test_eager_mode_records_no_choices () =
  (* without ?schedule the legacy eager matching runs: wildcards match
     at send arrival and the choice record stays empty *)
  let received = ref [] in
  let r =
    Scheduler.run ~nprocs:3 (fun ~rank ~mpi ->
        if rank = 0 then begin
          for _ = 1 to 2 do
            match
              mpi (Mpi_iface.Recv { comm = Mpi_iface.world; src = None; tag = None })
            with
            | Mpi_iface.Rvalue (Value.Vint x) -> received := x :: !received
            | _ -> failwith "bad recv reply"
          done;
          Ok ()
        end
        else begin
          ignore
            (mpi
               (Mpi_iface.Send
                  { comm = Mpi_iface.world; dest = 0; tag = 0; data = Value.Vint rank }));
          Ok ()
        end)
  in
  Alcotest.(check (list int)) "eager arrival order" [ 1; 2 ] (List.rev !received);
  Alcotest.(check int) "no choices recorded" 0 (List.length r.Scheduler.choices)

let test_tag_filter_restricts_eligibility () =
  (* rank 1 tags its message 5, rank 2 tags 7; a tag-7 wildcard receive
     must only consider rank 2 — a single-candidate point, no fork *)
  let received = ref [] in
  let r =
    Scheduler.run ~nprocs:3 ~schedule:[] (fun ~rank ~mpi ->
        if rank = 0 then begin
          (match
             mpi (Mpi_iface.Recv { comm = Mpi_iface.world; src = None; tag = Some 7 })
           with
          | Mpi_iface.Rvalue (Value.Vint x) -> received := x :: !received
          | _ -> failwith "bad recv reply");
          (match
             mpi (Mpi_iface.Recv { comm = Mpi_iface.world; src = None; tag = None })
           with
          | Mpi_iface.Rvalue (Value.Vint x) -> received := x :: !received
          | _ -> failwith "bad recv reply");
          Ok ()
        end
        else begin
          let tag = if rank = 1 then 5 else 7 in
          ignore
            (mpi
               (Mpi_iface.Send
                  { comm = Mpi_iface.world; dest = 0; tag; data = Value.Vint rank }));
          Ok ()
        end)
  in
  Alcotest.(check (list int)) "tag filter honoured" [ 2; 1 ] (List.rev !received);
  List.iter
    (fun (c : Schedule.choice) ->
      Alcotest.(check int)
        (Printf.sprintf "point %d is single-candidate" c.Schedule.ch_rank)
        1
        (List.length c.Schedule.ch_alts))
    r.Scheduler.choices

let test_tag_only_fixed_source_stays_deterministic () =
  (* src pinned, tag wildcard: MPI non-overtaking makes the match unique,
     so schedule mode treats it eagerly — no choice point *)
  let received = ref [] in
  let r =
    Scheduler.run ~nprocs:2 ~schedule:[] (fun ~rank ~mpi ->
        if rank = 0 then begin
          for _ = 1 to 2 do
            match
              mpi (Mpi_iface.Recv { comm = Mpi_iface.world; src = Some 1; tag = None })
            with
            | Mpi_iface.Rvalue (Value.Vint x) -> received := x :: !received
            | _ -> failwith "bad recv reply"
          done;
          Ok ()
        end
        else begin
          ignore
            (mpi
               (Mpi_iface.Send
                  { comm = Mpi_iface.world; dest = 0; tag = 3; data = Value.Vint 30 }));
          ignore
            (mpi
               (Mpi_iface.Send
                  { comm = Mpi_iface.world; dest = 0; tag = 4; data = Value.Vint 40 }));
          Ok ()
        end)
  in
  Alcotest.(check (list int)) "non-overtaking order" [ 30; 40 ] (List.rev !received);
  Alcotest.(check int) "no choice points" 0 (List.length r.Scheduler.choices)

let test_no_eligible_sender_deadlocks () =
  (* a wildcard receive with no sender at quiescence is a deadlock, and
     the witness names the blocked rank *)
  let received, dead, choices = run_fan_in ~m1:1 ~m2:1 ~recvs:3 [] in
  Alcotest.(check (list int)) "both messages arrived first" [ 11; 21 ] received;
  Alcotest.(check (list int)) "receiver deadlocked" [ 0 ] dead;
  Alcotest.(check int) "served points recorded" 2 (List.length choices)

(* ------------------------------------------------------------------ *)
(* the enumerator                                                      *)
(* ------------------------------------------------------------------ *)

let mk_choice ?(rank = 0) ?(comm = 0) ?(tag = 0) ~chosen ~alts () =
  { Schedule.ch_rank = rank; ch_comm = comm; ch_tag = tag; ch_chosen = chosen; ch_alts = alts }

let alt_triple (a : Schedule.alt) =
  (a.Schedule.alt_point, a.Schedule.alt_source, a.Schedule.alt_prescription)

let test_alternatives_por () =
  let choices =
    [ mk_choice ~chosen:0 ~alts:[ 0; 1; 2 ] (); mk_choice ~chosen:1 ~alts:[ 1; 2 ] () ]
  in
  let alts = Schedule.alternatives ~depth:8 ~prefix_len:0 choices in
  Alcotest.(check (list (triple int int (list int))))
    "ascending by point then source"
    [ (0, 1, [ 1 ]); (0, 2, [ 2 ]); (1, 2, [ 0; 2 ]) ]
    (List.map alt_triple alts)

let test_alternatives_prescribed_prefix_pruned () =
  let choices =
    [ mk_choice ~chosen:2 ~alts:[ 1; 2 ] (); mk_choice ~chosen:1 ~alts:[ 1; 2 ] () ]
  in
  (* point 0 was prescribed (prefix_len 1): re-forking it would revisit
     an ancestor of the enumeration tree *)
  let alts = Schedule.alternatives ~depth:8 ~prefix_len:1 choices in
  Alcotest.(check (list (triple int int (list int))))
    "only the free point forks"
    [ (1, 2, [ 2; 2 ]) ]
    (List.map alt_triple alts)

let test_alternatives_depth_budget () =
  let choices =
    [ mk_choice ~chosen:1 ~alts:[ 1; 2 ] (); mk_choice ~chosen:1 ~alts:[ 1; 2 ] () ]
  in
  let alts = Schedule.alternatives ~depth:1 ~prefix_len:0 choices in
  Alcotest.(check (list (triple int int (list int))))
    "points past the depth budget never fork"
    [ (0, 2, [ 2 ]) ]
    (List.map alt_triple alts);
  let st = Schedule.stats ~depth:1 ~prefix_len:0 choices in
  Alcotest.(check int) "both points recorded" 2 st.Schedule.st_points;
  Alcotest.(check int) "one alternative emitted" 1 st.Schedule.st_emitted;
  Alcotest.(check int) "one alternative pruned" 1 st.Schedule.st_pruned

let test_single_candidate_points_never_fork () =
  let choices =
    [ mk_choice ~chosen:1 ~alts:[ 1 ] (); mk_choice ~chosen:2 ~alts:[ 2 ] () ]
  in
  Alcotest.(check int) "no alternatives" 0
    (List.length (Schedule.alternatives ~depth:8 ~prefix_len:0 choices))

let test_prescription_string_roundtrip () =
  List.iter
    (fun p ->
      Alcotest.(check (list int))
        (Schedule.to_string p)
        p
        (Schedule.of_string (Schedule.to_string p)))
    [ []; [ 2 ]; [ 1; 2; 1 ]; [ 0; 7; 3 ] ]

(* ------------------------------------------------------------------ *)
(* POR completeness: pruned enumeration reaches exhaustive's states    *)
(* ------------------------------------------------------------------ *)

(* Terminal state of one run: what was delivered, in order, and who
   deadlocked. Two runs with equal terminal states are
   indistinguishable to coverage and fault detection. *)
let terminal ~m1 ~m2 ~recvs presc =
  let received, dead, choices = run_fan_in ~m1 ~m2 ~recvs presc in
  ((received, dead), choices)

(* The campaign's work-list enumeration: start from the default
   schedule, fork POR-surviving alternatives, repeat to fixpoint. *)
let por_states ~m1 ~m2 ~recvs =
  let states = ref [] in
  let frontier = Queue.create () in
  Queue.add [] frontier;
  let runs = ref 0 in
  while not (Queue.is_empty frontier) do
    let presc = Queue.take frontier in
    incr runs;
    if !runs > 2000 then failwith "POR enumeration diverged";
    let state, choices = terminal ~m1 ~m2 ~recvs presc in
    if not (List.mem state !states) then states := state :: !states;
    List.iter
      (fun (a : Schedule.alt) -> Queue.add a.Schedule.alt_prescription frontier)
      (Schedule.alternatives ~depth:8 ~prefix_len:(List.length presc) choices)
  done;
  (List.sort_uniq compare !states, !runs)

(* Brute force: every source vector in {1,2}^recvs (ineligible entries
   fall back to default order, so every reachable delivery order is
   realized by the vector spelling it out). *)
let exhaustive_states ~m1 ~m2 ~recvs =
  let rec vectors n =
    if n = 0 then [ [] ]
    else List.concat_map (fun v -> [ 1 :: v; 2 :: v ]) (vectors (n - 1))
  in
  List.sort_uniq compare
    (List.map (fun p -> fst (terminal ~m1 ~m2 ~recvs p)) (vectors recvs))

let test_por_equals_exhaustive_unit () =
  List.iter
    (fun (m1, m2, extra) ->
      let recvs = m1 + m2 + extra in
      let por, runs = por_states ~m1 ~m2 ~recvs in
      let exh = exhaustive_states ~m1 ~m2 ~recvs in
      Alcotest.(check bool)
        (Printf.sprintf "m1=%d m2=%d recvs=%d: same terminal states" m1 m2 recvs)
        true (por = exh);
      (* and POR does strictly fewer runs than brute force on the
         larger spaces *)
      if recvs >= 4 then
        Alcotest.(check bool)
          (Printf.sprintf "m1=%d m2=%d recvs=%d: POR prunes (%d runs)" m1 m2 recvs runs)
          true
          (runs < 1 lsl recvs))
    [ (1, 1, 0); (2, 1, 0); (2, 2, 0); (1, 1, 1); (2, 2, 1); (0, 2, 0) ]

let por_property =
  QCheck.Test.make ~count:40
    ~name:"POR-pruned enumeration finds the exhaustive terminal-state set"
    QCheck.(triple (int_bound 2) (int_bound 2) (int_bound 1))
    (fun (m1, m2, extra) ->
      let recvs = m1 + m2 + extra in
      let por, _ = por_states ~m1 ~m2 ~recvs in
      por = exhaustive_states ~m1 ~m2 ~recvs)

(* ------------------------------------------------------------------ *)
(* campaign integration: the wc-race (input, schedule) deadlock        *)
(* ------------------------------------------------------------------ *)

let wc_race () = Targets.Registry.instrument (Targets.Catalog.find_exn "wc-race")

let campaign ?(jobs = 1) ~schedules () =
  let settings =
    {
      Compi.Campaign.default_settings with
      Compi.Campaign.base =
        {
          Compi.Driver.default_settings with
          Compi.Driver.iterations = 60;
          dfs_phase_iters = 4;
          initial_nprocs = 3;
          step_limit = 100_000;
          seed = 3;
          schedules;
        };
      jobs;
    }
  in
  Compi.Campaign.run ~settings (wc_race ())

let is_deadlock (b : Compi.Driver.bug) =
  match b.Compi.Driver.bug_fault with
  | Fault.Mpi_error { message; _ } ->
    (* the deadlock detector's fault message *)
    String.length message >= 8 && String.sub message 0 8 = "deadlock"
  | _ -> false

let test_wc_race_needs_schedules () =
  let off = campaign ~schedules:false () in
  Alcotest.(check int)
    "schedules off: no bugs" 0
    (List.length off.Compi.Campaign.summary.Compi.Driver.bugs);
  let on = campaign ~schedules:true () in
  let deadlocks =
    List.filter is_deadlock on.Compi.Campaign.summary.Compi.Driver.bugs
  in
  Alcotest.(check bool) "schedules on: deadlock found" true (deadlocks <> []);
  List.iter
    (fun (b : Compi.Driver.bug) ->
      Alcotest.(check (list (pair string int)))
        "the input coordinate is x=7" [ ("x", 7) ] b.Compi.Driver.bug_inputs)
    deadlocks;
  (* the schedule dimension also buys coverage: the deadlocked receive *)
  Alcotest.(check bool) "schedules on covers more" true
    (on.Compi.Campaign.summary.Compi.Driver.covered_branches
    > off.Compi.Campaign.summary.Compi.Driver.covered_branches)

let test_schedule_sweep_jobs_invariant () =
  let r1 = campaign ~schedules:true ~jobs:1 () in
  let r4 = campaign ~schedules:true ~jobs:4 () in
  Alcotest.(check string)
    "byte-identical report across jobs"
    (Compi.Campaign.coverage_report r1)
    (Compi.Campaign.coverage_report r4)

let test_fingerprint_carries_schedule_settings () =
  let fp =
    Compi.Checkpoint.fingerprint ~label:"wc-race" ~batch:4 ~solver_cache:true
      ~cache_capacity:16 Compi.Driver.default_settings
  in
  Alcotest.(check (option string)) "schedules key" (Some "false")
    (List.assoc_opt "schedules" fp);
  Alcotest.(check (option string)) "schedule_depth key" (Some "8")
    (List.assoc_opt "schedule_depth" fp)

let unit_tests =
  [
    Alcotest.test_case "default prescription = arrival order" `Quick
      test_default_prescription_is_arrival_order;
    Alcotest.test_case "prescription steers the match" `Quick
      test_prescription_steers_the_match;
    Alcotest.test_case "ineligible prescription falls back" `Quick
      test_ineligible_prescription_falls_back;
    Alcotest.test_case "replay determinism" `Quick test_replay_determinism;
    Alcotest.test_case "eager mode records no choices" `Quick
      test_eager_mode_records_no_choices;
    Alcotest.test_case "tag filter restricts eligibility" `Quick
      test_tag_filter_restricts_eligibility;
    Alcotest.test_case "tag-only fixed-source stays deterministic" `Quick
      test_tag_only_fixed_source_stays_deterministic;
    Alcotest.test_case "no eligible sender deadlocks" `Quick
      test_no_eligible_sender_deadlocks;
    Alcotest.test_case "alternatives: POR shape" `Quick test_alternatives_por;
    Alcotest.test_case "alternatives: prescribed prefix pruned" `Quick
      test_alternatives_prescribed_prefix_pruned;
    Alcotest.test_case "alternatives: depth budget" `Quick
      test_alternatives_depth_budget;
    Alcotest.test_case "single-candidate points never fork" `Quick
      test_single_candidate_points_never_fork;
    Alcotest.test_case "prescription string round-trip" `Quick
      test_prescription_string_roundtrip;
    Alcotest.test_case "POR = exhaustive (unit grid)" `Quick
      test_por_equals_exhaustive_unit;
    Alcotest.test_case "wc-race needs the schedule dimension" `Quick
      test_wc_race_needs_schedules;
    Alcotest.test_case "schedule sweep is jobs-invariant" `Quick
      test_schedule_sweep_jobs_invariant;
    Alcotest.test_case "fingerprint carries schedule settings" `Quick
      test_fingerprint_carries_schedule_settings;
  ]

let property_tests = [ QCheck_alcotest.to_alcotest por_property ]

let suite = [ ("schedule:unit", unit_tests); ("schedule:property", property_tests) ]
