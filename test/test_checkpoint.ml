(* Checkpoint subsystem: the headline guarantee (an interrupted-and-
   resumed campaign reports byte-identically to an uninterrupted one,
   at any worker count), snapshot save/load round-trips, the load-error
   taxonomy on damaged files, and settings fingerprinting. *)

let tmp_counter = ref 0

(* A fresh per-test scratch directory; Checkpoint.save creates it. *)
let fresh_dir () =
  incr tmp_counter;
  Filename.concat
    (Filename.get_temp_dir_name ())
    (Printf.sprintf "compi-ckpt-test-%d-%d" (Unix.getpid ()) !tmp_counter)

let campaign ?(jobs = 1) ?(iterations = 30) ?(seed = 11) ?checkpoint ?(every = 5)
    ?(resume = false) info =
  let settings =
    {
      Compi.Campaign.default_settings with
      Compi.Campaign.base =
        {
          Compi.Driver.default_settings with
          Compi.Driver.iterations;
          dfs_phase_iters = 8;
          initial_nprocs = 2;
          seed;
        };
      jobs;
      batch = 3;
      checkpoint;
      checkpoint_every = every;
      resume;
    }
  in
  Compi.Campaign.run ~settings ~label:"toy-fig1" info

let toy () = Targets.Registry.instrument (Targets.Catalog.find_exn "toy-fig1")

(* --- the determinism guarantee ------------------------------------- *)

let test_resume_equals_uninterrupted () =
  let info = toy () in
  let full = campaign ~iterations:30 info in
  let dir = fresh_dir () in
  let part = campaign ~iterations:13 ~checkpoint:dir info in
  Alcotest.(check bool)
    "interrupted run wrote snapshots" true
    (part.Compi.Campaign.checkpoints_written > 0);
  Alcotest.(check bool)
    "budget stop is not an interruption" false part.Compi.Campaign.interrupted;
  let resumed = campaign ~iterations:30 ~checkpoint:dir ~resume:true info in
  Alcotest.(check string)
    "resumed report equals uninterrupted"
    (Compi.Campaign.coverage_report full)
    (Compi.Campaign.coverage_report resumed)

let test_resume_across_job_counts () =
  (* interrupt at jobs=2, resume at jobs=1; compare against an
     uninterrupted jobs=2 run — neither the cut nor the worker count
     may show up in the report *)
  let info = toy () in
  let full = campaign ~jobs:2 ~iterations:30 info in
  let dir = fresh_dir () in
  let _ = campaign ~jobs:2 ~iterations:13 ~checkpoint:dir info in
  let resumed =
    campaign ~jobs:1 ~iterations:30 ~checkpoint:dir ~resume:true info
  in
  Alcotest.(check string)
    "kill at jobs=2, resume at jobs=1"
    (Compi.Campaign.coverage_report full)
    (Compi.Campaign.coverage_report resumed)

let test_resume_same_budget_is_noop () =
  let info = toy () in
  let dir = fresh_dir () in
  let first = campaign ~iterations:20 ~checkpoint:dir info in
  let again = campaign ~iterations:20 ~checkpoint:dir ~resume:true info in
  Alcotest.(check string)
    "re-running at the same budget replays the finished report"
    (Compi.Campaign.coverage_report first)
    (Compi.Campaign.coverage_report again);
  (* [executed] is cumulative across the checkpoint, so a no-op resume
     reports the first run's count — and not one execution more *)
  Alcotest.(check int)
    "no extra executions" first.Compi.Campaign.executed
    again.Compi.Campaign.executed

(* --- snapshot round-trip ------------------------------------------- *)

let test_snapshot_roundtrip () =
  let info = toy () in
  let dir = fresh_dir () in
  let _ = campaign ~iterations:13 ~checkpoint:dir info in
  match Compi.Checkpoint.load ~dir with
  | Error e -> Alcotest.failf "load: %s" (Compi.Checkpoint.error_to_string e)
  | Ok snap ->
    Alcotest.(check int) "iter restored" 13 snap.Compi.Checkpoint.ck_iter;
    let dir2 = fresh_dir () in
    let bytes = Compi.Checkpoint.save ~dir:dir2 ~target:"toy-fig1" snap in
    Alcotest.(check bool) "payload nonempty" true (bytes > 0);
    (match Compi.Checkpoint.load ~dir:dir2 with
    | Error e -> Alcotest.failf "reload: %s" (Compi.Checkpoint.error_to_string e)
    | Ok snap2 ->
      Alcotest.(check int) "iter survives" snap.Compi.Checkpoint.ck_iter
        snap2.Compi.Checkpoint.ck_iter;
      Alcotest.(check int) "executed survives" snap.Compi.Checkpoint.ck_executed
        snap2.Compi.Checkpoint.ck_executed;
      Alcotest.(check int) "work tail length survives"
        (List.length snap.Compi.Checkpoint.ck_work)
        (List.length snap2.Compi.Checkpoint.ck_work);
      Alcotest.(check (list (pair string string)))
        "fingerprint survives" snap.Compi.Checkpoint.ck_fingerprint
        snap2.Compi.Checkpoint.ck_fingerprint);
    (* the bug corpus rides along as human-readable test cases *)
    (match Compi.Testcase.load ~path:(Compi.Checkpoint.corpus_file ~dir:dir2) with
    | Error e -> Alcotest.failf "corpus: %s" e
    | Ok cases ->
      Alcotest.(check int)
        "corpus mirrors the snapshot's bugs"
        (List.length snap.Compi.Checkpoint.ck_bugs)
        (List.length cases))

(* --- load-error taxonomy ------------------------------------------- *)

let expect_error name pred = function
  | Ok _ -> Alcotest.failf "%s: expected a load error" name
  | Error e ->
    if not (pred e) then
      Alcotest.failf "%s: wrong error: %s" name (Compi.Checkpoint.error_to_string e);
    Alcotest.(check bool)
      (name ^ ": diagnostic nonempty") true
      (String.length (Compi.Checkpoint.error_to_string e) > 0)

(* Write [content] as dir/campaign.ckpt, creating dir. *)
let plant dir content =
  (try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
  Out_channel.with_open_bin (Compi.Checkpoint.file ~dir) (fun oc ->
      Out_channel.output_string oc content)

let real_checkpoint_bytes () =
  let dir = fresh_dir () in
  let _ = campaign ~iterations:13 ~checkpoint:dir (toy ()) in
  In_channel.with_open_bin (Compi.Checkpoint.file ~dir) In_channel.input_all

let test_load_missing () =
  expect_error "missing dir"
    (function Compi.Checkpoint.No_checkpoint _ -> true | _ -> false)
    (Compi.Checkpoint.load ~dir:(fresh_dir ()))

let test_load_garbage () =
  let dir = fresh_dir () in
  plant dir "definitely not a checkpoint\nmore noise\n";
  expect_error "garbage file"
    (function Compi.Checkpoint.Bad_magic _ -> true | _ -> false)
    (Compi.Checkpoint.load ~dir)

let test_load_version_mismatch () =
  let raw = real_checkpoint_bytes () in
  let nl = String.index raw '\n' in
  let bumped =
    Printf.sprintf "COMPI-CKPT %d%s"
      (Compi.Checkpoint.version + 41)
      (String.sub raw nl (String.length raw - nl))
  in
  let dir = fresh_dir () in
  plant dir bumped;
  expect_error "future version"
    (function
      | Compi.Checkpoint.Version_mismatch { found; expected } ->
        found = Compi.Checkpoint.version + 41 && expected = Compi.Checkpoint.version
      | _ -> false)
    (Compi.Checkpoint.load ~dir)

let test_load_truncated () =
  let raw = real_checkpoint_bytes () in
  let dir = fresh_dir () in
  (* a SIGKILL mid-write on a non-atomic filesystem: tail cut off *)
  plant dir (String.sub raw 0 (String.length raw - 7));
  expect_error "truncated payload"
    (function Compi.Checkpoint.Truncated _ -> true | _ -> false)
    (Compi.Checkpoint.load ~dir)

let test_load_corrupted () =
  let raw = real_checkpoint_bytes () in
  let b = Bytes.of_string raw in
  let last = Bytes.length b - 1 in
  Bytes.set b last (Char.chr (Char.code (Bytes.get b last) lxor 0xff));
  let dir = fresh_dir () in
  plant dir (Bytes.to_string b);
  expect_error "flipped payload byte"
    (function Compi.Checkpoint.Checksum_mismatch -> true | _ -> false)
    (Compi.Checkpoint.load ~dir)

(* --- settings fingerprint ------------------------------------------ *)

let test_resume_rejects_other_seed () =
  let info = toy () in
  let dir = fresh_dir () in
  let _ = campaign ~iterations:13 ~seed:11 ~checkpoint:dir info in
  match campaign ~iterations:30 ~seed:12 ~checkpoint:dir ~resume:true info with
  | _ -> Alcotest.fail "resume under a different seed must be refused"
  | exception
      Compi.Checkpoint.Load_error
        (Compi.Checkpoint.Settings_mismatch [ ("seed", "11", "12") ]) ->
    ()

let test_mismatches () =
  let stored = [ ("a", "1"); ("b", "2") ] in
  let current = [ ("a", "1"); ("b", "3"); ("c", "4") ] in
  Alcotest.(check (list (triple string string string)))
    "divergent and missing keys reported"
    [ ("b", "2", "3"); ("c", "<absent>", "4") ]
    (Compi.Checkpoint.mismatches ~stored ~current)

let suite =
  [
    ( "checkpoint:resume",
      [
        Alcotest.test_case "resume equals uninterrupted" `Quick
          test_resume_equals_uninterrupted;
        Alcotest.test_case "resume across job counts" `Quick
          test_resume_across_job_counts;
        Alcotest.test_case "same-budget resume is a no-op" `Quick
          test_resume_same_budget_is_noop;
      ] );
    ( "checkpoint:format",
      [
        Alcotest.test_case "snapshot round-trip + corpus" `Quick
          test_snapshot_roundtrip;
        Alcotest.test_case "missing checkpoint" `Quick test_load_missing;
        Alcotest.test_case "garbage file rejected" `Quick test_load_garbage;
        Alcotest.test_case "version mismatch rejected" `Quick
          test_load_version_mismatch;
        Alcotest.test_case "truncated file rejected" `Quick test_load_truncated;
        Alcotest.test_case "bit rot rejected" `Quick test_load_corrupted;
        Alcotest.test_case "different seed refused" `Quick
          test_resume_rejects_other_seed;
        Alcotest.test_case "fingerprint mismatches" `Quick test_mismatches;
      ] );
  ]
