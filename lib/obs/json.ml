type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

(* ------------------------------------------------------------------ *)
(* Emission                                                            *)
(* ------------------------------------------------------------------ *)

let escape_to buf s =
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\b' -> Buffer.add_string buf "\\b"
      | '\012' -> Buffer.add_string buf "\\f"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s

(* Shortest decimal form that parses back to the same binary64. *)
let float_to_string x =
  if not (Float.is_finite x) then "null"
  else
    let s = Printf.sprintf "%.12g" x in
    let s = if float_of_string s = x then s else Printf.sprintf "%.17g" x in
    (* "%g" may print an integer-valued float without '.' or 'e'; a JSON
       reader would re-type it as an int *)
    if String.exists (fun c -> c = '.' || c = 'e' || c = 'E' || c = 'n') s then s
    else s ^ ".0"

let rec emit buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int n -> Buffer.add_string buf (string_of_int n)
  | Float x -> Buffer.add_string buf (float_to_string x)
  | Str s ->
    Buffer.add_char buf '"';
    escape_to buf s;
    Buffer.add_char buf '"'
  | List xs ->
    Buffer.add_char buf '[';
    List.iteri
      (fun i x ->
        if i > 0 then Buffer.add_char buf ',';
        emit buf x)
      xs;
    Buffer.add_char buf ']'
  | Obj fields ->
    Buffer.add_char buf '{';
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char buf ',';
        Buffer.add_char buf '"';
        escape_to buf k;
        Buffer.add_string buf "\":";
        emit buf v)
      fields;
    Buffer.add_char buf '}'

let to_string j =
  let buf = Buffer.create 256 in
  emit buf j;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Parsing (recursive descent, bytes passed through verbatim)          *)
(* ------------------------------------------------------------------ *)

exception Bad of string

let parse s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Bad (Printf.sprintf "%s at offset %d" msg !pos)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let skip_ws () =
    while
      !pos < n && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
    do
      advance ()
    done
  in
  let expect c =
    if !pos < n && s.[!pos] = c then advance ()
    else fail (Printf.sprintf "expected %c" c)
  in
  let literal word value =
    let l = String.length word in
    if !pos + l <= n && String.sub s !pos l = word then begin
      pos := !pos + l;
      value
    end
    else fail (Printf.sprintf "expected %s" word)
  in
  let hex4 () =
    if !pos + 4 > n then fail "truncated \\u escape";
    let v = int_of_string ("0x" ^ String.sub s !pos 4) in
    pos := !pos + 4;
    v
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string";
      match s.[!pos] with
      | '"' -> advance ()
      | '\\' ->
        advance ();
        (if !pos >= n then fail "truncated escape";
         let c = s.[!pos] in
         advance ();
         match c with
         | '"' -> Buffer.add_char buf '"'
         | '\\' -> Buffer.add_char buf '\\'
         | '/' -> Buffer.add_char buf '/'
         | 'b' -> Buffer.add_char buf '\b'
         | 'f' -> Buffer.add_char buf '\012'
         | 'n' -> Buffer.add_char buf '\n'
         | 'r' -> Buffer.add_char buf '\r'
         | 't' -> Buffer.add_char buf '\t'
         | 'u' -> (
           let cp = hex4 () in
           match Uchar.of_int cp with
           | u -> Buffer.add_utf_8_uchar buf u
           | exception Invalid_argument _ -> fail "bad \\u escape")
         | _ -> fail "unknown escape");
        go ()
      | c ->
        Buffer.add_char buf c;
        advance ();
        go ()
    in
    go ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    let is_num_char c =
      match c with
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while !pos < n && is_num_char s.[!pos] do
      advance ()
    done;
    let text = String.sub s start (!pos - start) in
    if String.exists (fun c -> c = '.' || c = 'e' || c = 'E') text then
      match float_of_string_opt text with
      | Some x -> Float x
      | None -> fail "bad number"
    else
      match int_of_string_opt text with
      | Some k -> Int k
      | None -> (
        (* integer out of range for the OCaml int: keep it as a float *)
        match float_of_string_opt text with
        | Some x -> Float x
        | None -> fail "bad number")
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '{' ->
      advance ();
      skip_ws ();
      if peek () = Some '}' then begin
        advance ();
        Obj []
      end
      else begin
        let fields = ref [] in
        let rec members () =
          skip_ws ();
          let k = parse_string () in
          skip_ws ();
          expect ':';
          let v = parse_value () in
          fields := (k, v) :: !fields;
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            members ()
          | Some '}' -> advance ()
          | _ -> fail "expected , or }"
        in
        members ();
        Obj (List.rev !fields)
      end
    | Some '[' ->
      advance ();
      skip_ws ();
      if peek () = Some ']' then begin
        advance ();
        List []
      end
      else begin
        let items = ref [] in
        let rec elements () =
          let v = parse_value () in
          items := v :: !items;
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            elements ()
          | Some ']' -> advance ()
          | _ -> fail "expected , or ]"
        in
        elements ();
        List (List.rev !items)
      end
    | Some '"' -> Str (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some _ -> parse_number ()
  in
  match parse_value () with
  | v ->
    skip_ws ();
    if !pos <> n then Error (Printf.sprintf "trailing garbage at offset %d" !pos)
    else Ok v
  | exception Bad msg -> Error msg

(* ------------------------------------------------------------------ *)
(* Accessors                                                           *)
(* ------------------------------------------------------------------ *)

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | Null | Bool _ | Int _ | Float _ | Str _ | List _ -> None

let to_int = function Int n -> Some n | Float x -> Some (int_of_float x) | _ -> None
let to_float = function Float x -> Some x | Int n -> Some (float_of_int n) | _ -> None
let to_str = function Str s -> Some s | _ -> None
let to_bool = function Bool b -> Some b | _ -> None
let to_list = function List xs -> Some xs | _ -> None
