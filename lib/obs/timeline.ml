(* Per-domain span buffers for the performance observatory.

   A span is (kind, begin tick, end tick) recorded by whichever domain
   ran the work. The hot path takes no lock and — when the timeline is
   off — allocates nothing: [span] is one ref read before tail-calling
   its argument. When on, a record is three array stores into the
   recording domain's own chunk plus one atomic increment; chunks are
   fixed-size and never reallocated, so the draining (main) domain can
   read entries [0, published) of a foreign buffer without racing a
   resize. The atomic publication counter is bumped after the stores,
   which under the OCaml 5 memory model orders them before any reader
   that observes the new count.

   Ticks are integer nanoseconds since [enable]. Workers inherit the
   epoch set by the main domain before the pool spawns; a drain turns
   undrained entries into {!Event.Span} lines through the global
   {!Sink}, so spans land in the same JSONL stream as everything else
   and the profile fold is just another pure trace consumer. *)

let chunk_size = 1024

type chunk = {
  kinds : string array;
  t0s : int array;
  t1s : int array;
  mutable next : chunk option;
}

let new_chunk () =
  {
    kinds = Array.make chunk_size "";
    t0s = Array.make chunk_size 0;
    t1s = Array.make chunk_size 0;
    next = None;
  }

type buf = {
  mutable dom : int;  (* reporting id: pool worker index, main = 0 *)
  head : chunk;
  mutable tail : chunk;
  mutable tail_used : int;
  published : int Atomic.t;  (* entries safe for a foreign reader *)
  mutable drained : int;  (* entries already emitted; main domain only *)
}

(* Registry of every buffer ever created, so the drainer finds buffers
   of joined domains too. The mutex guards registration only — never
   the recording path. *)
let registry : buf list ref = ref []
let registry_mu = Mutex.create ()

let on_flag = ref false
let epoch = ref 0.0

let key =
  Domain.DLS.new_key (fun () ->
      let c = new_chunk () in
      let b =
        {
          dom = (if Domain.is_main_domain () then 0 else (Domain.self () :> int));
          head = c;
          tail = c;
          tail_used = 0;
          published = Atomic.make 0;
          drained = 0;
        }
      in
      Mutex.lock registry_mu;
      registry := b :: !registry;
      Mutex.unlock registry_mu;
      b)

let on () = !on_flag

let tick () = int_of_float ((Unix.gettimeofday () -. !epoch) *. 1e9)

let set_domain d = (Domain.DLS.get key).dom <- d

let push kind t0 t1 =
  let b = Domain.DLS.get key in
  if b.tail_used = chunk_size then begin
    let c = new_chunk () in
    b.tail.next <- Some c;
    b.tail <- c;
    b.tail_used <- 0
  end;
  let i = b.tail_used in
  b.tail.kinds.(i) <- kind;
  b.tail.t0s.(i) <- t0;
  b.tail.t1s.(i) <- t1;
  b.tail_used <- i + 1;
  (* publish after the stores: a reader that sees the new count sees
     the entry (Atomic is sequentially consistent) *)
  Atomic.incr b.published

let record ~kind ~t0 ~t1 = if !on_flag then push kind t0 t1

let span kind f =
  if not !on_flag then f ()
  else begin
    let t0 = tick () in
    match f () with
    | v ->
      push kind t0 (tick ());
      v
    | exception e ->
      push kind t0 (tick ());
      raise e
  end

let enable () =
  (* restart the clock and discard anything not yet drained; called on
     the main domain before worker domains exist, so no buffer is being
     appended to concurrently *)
  Mutex.lock registry_mu;
  List.iter (fun b -> b.drained <- Atomic.get b.published) !registry;
  Mutex.unlock registry_mu;
  epoch := Unix.gettimeofday ();
  on_flag := true

let disable () = on_flag := false

(* Entry [j] of a buffer lives in chunk [j / chunk_size] (chunks only
   ever fill forward) at offset [j mod chunk_size]. *)
let drain_buf b =
  let n = Atomic.get b.published in
  if n > b.drained then begin
    let c = ref b.head in
    for _ = 1 to b.drained / chunk_size do
      match !c.next with Some nx -> c := nx | None -> assert false
    done;
    for j = b.drained to n - 1 do
      let off = j mod chunk_size in
      if off = 0 && j > b.drained then
        (match !c.next with Some nx -> c := nx | None -> assert false);
      Sink.emit
        (Event.Span
           { domain = b.dom; kind = !c.kinds.(off); t0 = !c.t0s.(off); t1 = !c.t1s.(off) })
    done;
    b.drained <- n
  end

let drain () =
  Mutex.lock registry_mu;
  let bufs = !registry in
  Mutex.unlock registry_mu;
  List.iter drain_buf bufs

let pending () =
  Mutex.lock registry_mu;
  let bufs = !registry in
  Mutex.unlock registry_mu;
  List.fold_left (fun acc b -> acc + (Atomic.get b.published - b.drained)) 0 bufs
