(** Process-wide metrics registry: named counters, gauges, and log-scale
    histograms, exported as one JSON snapshot (with the {!Prof} phase
    totals attached).

    Instrument creation is idempotent and cheap; observation is a few
    mutable-field updates under a process-wide mutex, safe on hot paths
    whether or not any telemetry sink is installed, and safe from any
    domain (campaign workers observe concurrently). [reset] zeroes
    values in place, so instrument handles bound at module-init time
    survive it. *)

type counter
type gauge
type histogram

val counter : string -> counter
(** Find-or-create. Raises [Invalid_argument] if [name] is already
    registered as a different kind. *)

val gauge : string -> gauge
val histogram : string -> histogram

val incr : ?by:int -> counter -> unit
val value : counter -> int
val set : gauge -> float -> unit
val gauge_value : gauge -> float

val observe : histogram -> float -> unit
(** Values [<= 0] (and [0] itself) land in a dedicated underflow bucket;
    positive values go to power-of-two buckets spanning [2^-30] to
    [2^63], so nanosecond latencies and [max_int]-sized step counts both
    bucket without configuration. *)

val observe_int : histogram -> int -> unit
val histogram_count : histogram -> int
val histogram_sum : histogram -> float

val bucket_index : float -> int
(** Exposed for tests: which bucket a value lands in. *)

val bucket_bounds : int -> float * float
(** [(lo, hi)] of a bucket; bucket 0 is [(-inf, 0]]. *)

val reset : unit -> unit
(** Zero every registered metric (and nothing else: registration and
    cached handles survive). Does not touch {!Prof}. *)

val snapshot_json : unit -> Json.t
(** [{"metrics": {name: value|histogram, …}, "phases": {…}}] with names
    sorted; histograms export count/sum/mean/min/max plus the non-empty
    buckets. *)
