(* Persistent run ledger: one versioned JSONL record appended per
   campaign, the longitudinal store behind `compi-cli history` and
   `compi-cli compare`. Forward-compat mirrors the trace: a record
   whose version this build does not know is skipped and counted, never
   an error. *)

let version = 1

type bug = { bug_test : int; bug_rank : int; bug_kind : string }

type record = {
  run : string;  (* "<target>#<seq>" assigned at append *)
  target : string;
  fingerprint : string;
  exec_mode : string;
  jobs : int;
  seed : int;
  budget : int;
  executed : int;
  rounds : int;
  covered : int;
  reachable : int;
  bugs : bug list;
  curve : (int * int) list;
  wall_s : float;
  solver_calls : int;
  cache_hits : int;
  cache_misses : int;
  schedule_forks : int;
}

(* FNV-1a over "k=v" lines: a stable, dependency-free digest of the
   settings fingerprint, identical across runs and builds for identical
   settings. *)
let digest kvs =
  let h = ref 0xcbf29ce484222325L in
  let prime = 0x100000001b3L in
  let feed s =
    String.iter
      (fun c -> h := Int64.mul (Int64.logxor !h (Int64.of_int (Char.code c))) prime)
      s
  in
  List.iter
    (fun (k, v) ->
      feed k;
      feed "=";
      feed v;
      feed "\n")
    kvs;
  Printf.sprintf "%016Lx" !h

let to_json r =
  Json.Obj
    [
      ("v", Json.Int version);
      ("run", Json.Str r.run);
      ("target", Json.Str r.target);
      ("fingerprint", Json.Str r.fingerprint);
      ("exec_mode", Json.Str r.exec_mode);
      ("jobs", Json.Int r.jobs);
      ("seed", Json.Int r.seed);
      ("budget", Json.Int r.budget);
      ("executed", Json.Int r.executed);
      ("rounds", Json.Int r.rounds);
      ("covered", Json.Int r.covered);
      ("reachable", Json.Int r.reachable);
      ( "bugs",
        Json.List
          (List.map
             (fun b ->
               Json.Obj
                 [
                   ("test", Json.Int b.bug_test);
                   ("rank", Json.Int b.bug_rank);
                   ("kind", Json.Str b.bug_kind);
                 ])
             r.bugs) );
      ( "curve",
        Json.List
          (List.map (fun (i, c) -> Json.List [ Json.Int i; Json.Int c ]) r.curve) );
      ("wall_s", Json.Float r.wall_s);
      ("solver_calls", Json.Int r.solver_calls);
      ("cache_hits", Json.Int r.cache_hits);
      ("cache_misses", Json.Int r.cache_misses);
      ("schedule_forks", Json.Int r.schedule_forks);
    ]

let of_json j =
  let str name =
    match Option.bind (Json.member name j) Json.to_str with
    | Some s -> Ok s
    | None -> Error (Printf.sprintf "missing string field %s" name)
  in
  let int name =
    match Option.bind (Json.member name j) Json.to_int with
    | Some n -> Ok n
    | None -> Error (Printf.sprintf "missing int field %s" name)
  in
  let flt name =
    match Option.bind (Json.member name j) Json.to_float with
    | Some x -> Ok x
    | None -> Error (Printf.sprintf "missing float field %s" name)
  in
  let ( let* ) = Result.bind in
  let* v = int "v" in
  if v > version then Error (Printf.sprintf "unknown ledger version %d" v)
  else
    let* run = str "run" in
    let* target = str "target" in
    let* fingerprint = str "fingerprint" in
    let* exec_mode = str "exec_mode" in
    let* jobs = int "jobs" in
    let* seed = int "seed" in
    let* budget = int "budget" in
    let* executed = int "executed" in
    let* rounds = int "rounds" in
    let* covered = int "covered" in
    let* reachable = int "reachable" in
    let* wall_s = flt "wall_s" in
    let* solver_calls = int "solver_calls" in
    let* cache_hits = int "cache_hits" in
    let* cache_misses = int "cache_misses" in
    let* schedule_forks = int "schedule_forks" in
    let* bugs =
      match Option.bind (Json.member "bugs" j) Json.to_list with
      | None -> Error "missing list field bugs"
      | Some xs ->
        let parsed =
          List.filter_map
            (fun bj ->
              match
                ( Option.bind (Json.member "test" bj) Json.to_int,
                  Option.bind (Json.member "rank" bj) Json.to_int,
                  Option.bind (Json.member "kind" bj) Json.to_str )
              with
              | Some t, Some r, Some k -> Some { bug_test = t; bug_rank = r; bug_kind = k }
              | _ -> None)
            xs
        in
        if List.length parsed = List.length xs then Ok parsed
        else Error "malformed bug entry in bugs"
    in
    let* curve =
      match Option.bind (Json.member "curve" j) Json.to_list with
      | None -> Error "missing list field curve"
      | Some xs ->
        let parsed =
          List.filter_map
            (fun pj ->
              match Json.to_list pj with
              | Some [ i; c ] -> (
                match (Json.to_int i, Json.to_int c) with
                | Some i, Some c -> Some (i, c)
                | _ -> None)
              | _ -> None)
            xs
        in
        if List.length parsed = List.length xs then Ok parsed
        else Error "malformed point in curve"
    in
    Ok
      {
        run;
        target;
        fingerprint;
        exec_mode;
        jobs;
        seed;
        budget;
        executed;
        rounds;
        covered;
        reachable;
        bugs;
        curve;
        wall_s;
        solver_calls;
        cache_hits;
        cache_misses;
        schedule_forks;
      }

type store = { records : record list; skipped : int; malformed : int }

let load path =
  match open_in path with
  | exception Sys_error e -> Error e
  | ic ->
    let records = ref [] and skipped = ref 0 and malformed = ref 0 in
    (try
       while true do
         let line = String.trim (input_line ic) in
         if line <> "" then
           match Json.parse line with
           | Error _ -> incr malformed
           | Ok j -> (
             match of_json j with
             | Ok r -> records := r :: !records
             | Error e ->
               (* version triage mirrors the trace: records from a
                  newer producer are skips, bad fields are corruption *)
               if
                 String.length e >= 22
                 && String.sub e 0 22 = "unknown ledger version"
               then incr skipped
               else incr malformed)
       done
     with End_of_file -> ());
    close_in ic;
    Ok { records = List.rev !records; skipped = !skipped; malformed = !malformed }

(* Appends assign the run id "<target>#<seq>" where seq counts every
   existing line (even ones this build cannot parse), so ids stay unique
   under mixed producers. Single open in append mode: concurrent
   campaigns interleave whole lines, never bytes, on POSIX O_APPEND. *)
let append path r =
  let seq =
    match open_in path with
    | exception Sys_error _ -> 0
    | ic ->
      let n = ref 0 in
      (try
         while true do
           if String.trim (input_line ic) <> "" then incr n
         done
       with End_of_file -> ());
      close_in ic;
      !n
  in
  let r = { r with run = Printf.sprintf "%s#%d" r.target seq } in
  let oc = open_out_gen [ Open_append; Open_creat ] 0o644 path in
  output_string oc (Json.to_string (to_json r));
  output_char oc '\n';
  close_out oc;
  r

(* Run selector for `compare A B` / `history`: an integer is an index
   into the store (negative counts from the end, -1 = latest), anything
   else matches a run id exactly. *)
let find store sel =
  match int_of_string_opt sel with
  | Some i ->
    let n = List.length store.records in
    let i = if i < 0 then n + i else i in
    if i < 0 || i >= n then None else Some (List.nth store.records i)
  | None -> List.find_opt (fun r -> r.run = sel) store.records

type delta = {
  d_covered : int;
  d_reachable : int;
  d_bugs : int;
  d_executed : int;
  d_wall_s : float;
  d_solver_calls : int;
  d_hit_rate : float;
  same_settings : bool;
  regression : bool;
}

let hit_rate r =
  let probes = r.cache_hits + r.cache_misses in
  if probes = 0 then 0.0 else float_of_int r.cache_hits /. float_of_int probes

(* B relative to A. Only coverage and bug count gate ([regression]):
   wall time, solver calls and hit rate vary run to run on the same
   settings and stay informational, so two identical-settings runs
   always compare as zero-delta/no-regression. *)
let diff ?(tolerance = 0) a b =
  {
    d_covered = b.covered - a.covered;
    d_reachable = b.reachable - a.reachable;
    d_bugs = List.length b.bugs - List.length a.bugs;
    d_executed = b.executed - a.executed;
    d_wall_s = b.wall_s -. a.wall_s;
    d_solver_calls = b.solver_calls - a.solver_calls;
    d_hit_rate = hit_rate b -. hit_rate a;
    same_settings = a.fingerprint = b.fingerprint;
    regression = b.covered - a.covered < -tolerance;
  }
