(* Trace aggregation for the campaign observatory. Everything here is a
   pure function of the event list, so reports are byte-identical for a
   fixed trace no matter when or where they are regenerated. *)

type line =
  [ `Blank | `Event of Event.t | `Unknown of string | `Malformed of string ]

let classify_line raw : line =
  let s = String.trim raw in
  if s = "" then `Blank
  else
    match Json.parse s with
    | Error e -> `Malformed e
    | Ok j -> (
      match Event.of_json j with
      | Ok ev -> `Event ev
      | Error e ->
        (* Event.of_json distinguishes "unknown event kind …" (a newer
           producer) from a known kind with bad fields (corruption). *)
        let unknown =
          String.length e >= 18 && String.sub e 0 18 = "unknown event kind"
        in
        (match Option.bind (Json.member "ev" j) Json.to_str with
        | Some kind when unknown -> `Unknown kind
        | _ -> `Malformed e))

type lineage_node = {
  ln_test : int;
  ln_parent : int;
  ln_origin : string;
  ln_branch : int;
  ln_index : int;
  ln_cached : bool;
}

type branch_stat = {
  br_branch : int;
  br_first_test : int;
  br_attempts : int;
  br_sat : int;
  br_unsat : int;
  br_unknown : int;
  br_cached : int;
}

type witness_edge = { we_rank : int; we_kind : string; we_peer : int; we_comm : int }

type span = { sp_domain : int; sp_kind : string; sp_t0 : int; sp_t1 : int }

type t = {
  events : int;
  census : (string * int) list;
  unknown_kinds : (string * int) list;
  malformed : int;
  target : string option;
  budget : int option;
  seed : int option;
  nprocs0 : int option;
  curve : (int * int) list;
  iterations : int;
  final_covered : int option;
  final_reachable : int option;
  bugs : int;
  wall_s : float option;
  exec_s : float;
  solve_s : float;
  solver_calls : int;
  solver_sat : int;
  solver_unsat : int;
  solver_unknown : int;
  solver_time_s : float;
  solver_nodes : int;
  cache_hits : int;
  cache_misses : int;
  cache_evictions : int;
  lineage : lineage_node list;
  branches : branch_stat list;
  matrix : ((int * int) * int) list;
  rank_sends : (int * int) list;
  rank_recvs : (int * int) list;
  rank_colls : (int * int) list;
  rank_blocked : (int * int) list;
  collectives : ((int * string) * int) list;
  deadlocks : int;
  schedule_choices : int;
  schedule_forks : int;
  schedule_emitted : int;
  schedule_pruned : int;
  witness : (witness_edge * int) list;
  faults : (int * int * string * string) list;
  restarts : (string * int) list;
  spans : span list;
}

let bump tbl key n =
  Hashtbl.replace tbl key (n + Option.value (Hashtbl.find_opt tbl key) ~default:0)

let sorted_assoc tbl = Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl [] |> List.sort compare

(* Incremental fold state: the batch fold's accumulators hoisted into a
   record so a consumer (the live `watch` dashboard) can [step] events as
   they appear and [finish] at any prefix. [finish] only reads the state,
   so stepping more events after a [finish] and finishing again is
   legal — that is exactly what tailing a growing trace does. *)
type state = {
  mutable s_events : int;
  s_census : (string, int) Hashtbl.t;
  s_unknown : (string, int) Hashtbl.t;
  mutable s_malformed : int;
  mutable s_target : string option;
  mutable s_budget : int option;
  mutable s_seed : int option;
  mutable s_nprocs0 : int option;
  s_curve : (int, int) Hashtbl.t;
  mutable s_final_covered : int option;
  mutable s_final_reachable : int option;
  mutable s_bugs : int;
  mutable s_wall : float option;
  mutable s_exec : float;
  mutable s_solve : float;
  mutable s_calls : int;
  mutable s_sat : int;
  mutable s_unsat : int;
  mutable s_unknown_o : int;
  mutable s_time : float;
  mutable s_nodes : int;
  mutable s_hits : int;
  mutable s_misses : int;
  mutable s_evict : int;
  mutable s_lineage : lineage_node list; (* newest first *)
  s_negs : (int, int * int * int * int * int) Hashtbl.t;
  (* branch -> attempts, sat, unsat, unknown, cached *)
  s_matrix : (int * int, int) Hashtbl.t;
  s_sends : (int, int) Hashtbl.t;
  s_recvs : (int, int) Hashtbl.t;
  s_colls : (int, int) Hashtbl.t;
  s_blocked : (int, int) Hashtbl.t;
  s_coll_sigs : (int * string, int) Hashtbl.t;
  mutable s_deadlocks : int;
  mutable s_sched_choices : int;
  mutable s_sched_forks : int;
  mutable s_sched_emitted : int;
  mutable s_sched_pruned : int;
  s_witness : (witness_edge, int) Hashtbl.t;
  mutable s_faults : (int * int * string * string) list; (* newest first *)
  s_restarts : (string, int) Hashtbl.t;
  mutable s_spans : span list; (* newest first *)
}

let init () =
  {
    s_events = 0;
    s_census = Hashtbl.create 32;
    s_unknown = Hashtbl.create 4;
    s_malformed = 0;
    s_target = None;
    s_budget = None;
    s_seed = None;
    s_nprocs0 = None;
    s_curve = Hashtbl.create 64;
    s_final_covered = None;
    s_final_reachable = None;
    s_bugs = 0;
    s_wall = None;
    s_exec = 0.0;
    s_solve = 0.0;
    s_calls = 0;
    s_sat = 0;
    s_unsat = 0;
    s_unknown_o = 0;
    s_time = 0.0;
    s_nodes = 0;
    s_hits = 0;
    s_misses = 0;
    s_evict = 0;
    s_lineage = [];
    s_negs = Hashtbl.create 64;
    s_matrix = Hashtbl.create 64;
    s_sends = Hashtbl.create 16;
    s_recvs = Hashtbl.create 16;
    s_colls = Hashtbl.create 16;
    s_blocked = Hashtbl.create 16;
    s_coll_sigs = Hashtbl.create 16;
    s_deadlocks = 0;
    s_sched_choices = 0;
    s_sched_forks = 0;
    s_sched_emitted = 0;
    s_sched_pruned = 0;
    s_witness = Hashtbl.create 16;
    s_faults = [];
    s_restarts = Hashtbl.create 8;
    s_spans = [];
  }

let step st ev =
  st.s_events <- st.s_events + 1;
  bump st.s_census (Event.kind_name ev) 1;
  (match ev with
  | Event.Campaign_start { target = tg; iterations; seed = sd; nprocs } ->
    if st.s_target = None then begin
      st.s_target <- Some tg;
      st.s_budget <- Some iterations;
      st.s_seed <- Some sd;
      st.s_nprocs0 <- Some nprocs
    end
  | Event.Campaign_end { covered; reachable; bugs = b; wall_s = w; _ } ->
    st.s_final_covered <- Some covered;
    st.s_final_reachable <- Some reachable;
    st.s_bugs <- b;
    st.s_wall <- Some w
  | Event.Iter_end { iteration; covered; exec_s = e; solve_s = s; _ } ->
    Hashtbl.replace st.s_curve iteration covered;
    st.s_exec <- st.s_exec +. e;
    st.s_solve <- st.s_solve +. s
  | Event.Solver_call { outcome; nodes; time_s; _ } ->
    st.s_calls <- st.s_calls + 1;
    (match outcome with
    | Event.Sat -> st.s_sat <- st.s_sat + 1
    | Event.Unsat -> st.s_unsat <- st.s_unsat + 1
    | Event.Unknown -> st.s_unknown_o <- st.s_unknown_o + 1);
    st.s_time <- st.s_time +. time_s;
    st.s_nodes <- st.s_nodes + nodes
  | Event.Cache_lookup { hit; _ } ->
    if hit then st.s_hits <- st.s_hits + 1 else st.s_misses <- st.s_misses + 1
  | Event.Cache_evict { dropped; _ } -> st.s_evict <- st.s_evict + dropped
  | Event.Lineage_test { test; parent; origin; branch; index; cached } ->
    st.s_lineage <-
      {
        ln_test = test;
        ln_parent = parent;
        ln_origin = origin;
        ln_branch = branch;
        ln_index = index;
        ln_cached = cached;
      }
      :: st.s_lineage
  | Event.Lineage_negation { branch; outcome; cached; _ } ->
    let a, sa, us, uk, ca =
      Option.value (Hashtbl.find_opt st.s_negs branch) ~default:(0, 0, 0, 0, 0)
    in
    let sa, us, uk =
      match outcome with
      | Event.Sat -> (sa + 1, us, uk)
      | Event.Unsat -> (sa, us + 1, uk)
      | Event.Unknown -> (sa, us, uk + 1)
    in
    Hashtbl.replace st.s_negs branch (a + 1, sa, us, uk, (if cached then ca + 1 else ca))
  | Event.Msg_matched { src; dst; comm = _; tag = _ } -> bump st.s_matrix (src, dst) 1
  | Event.Sched_step { kind = "send"; rank; _ } -> bump st.s_sends rank 1
  | Event.Sched_step { kind = "recv"; rank; _ } -> bump st.s_recvs rank 1
  | Event.Sched_step _ -> ()
  | Event.Coll_done { comm; signature; ranks } ->
    bump st.s_coll_sigs (comm, signature) 1;
    List.iter (fun r -> bump st.s_colls r 1) ranks
  | Event.Rank_blocked { rank; _ } -> bump st.s_blocked rank 1
  | Event.Sched_deadlock _ -> st.s_deadlocks <- st.s_deadlocks + 1
  | Event.Schedule_choice { alts; _ } ->
    st.s_sched_choices <- st.s_sched_choices + 1;
    if List.length alts > 1 then st.s_sched_forks <- st.s_sched_forks + 1
  | Event.Schedule_enum { emitted; pruned; _ } ->
    st.s_sched_emitted <- st.s_sched_emitted + emitted;
    st.s_sched_pruned <- st.s_sched_pruned + pruned
  | Event.Deadlock_witness { rank; comm; kind; peer } ->
    bump st.s_witness { we_rank = rank; we_kind = kind; we_peer = peer; we_comm = comm } 1
  | Event.Fault { iteration; rank; kind; detail } ->
    st.s_faults <- (iteration, rank, kind, detail) :: st.s_faults
  | Event.Restart { reason; _ } -> bump st.s_restarts reason 1
  | Event.Span { domain; kind; t0; t1 } ->
    st.s_spans <-
      { sp_domain = domain; sp_kind = kind; sp_t0 = t0; sp_t1 = t1 } :: st.s_spans
  | Event.Iter_start _ | Event.Negation _ | Event.Coverage_delta _
  | Event.Worker_spawn _ | Event.Worker_task _ | Event.Worker_exit _
  | Event.Checkpoint_write _ | Event.Checkpoint_load _ | Event.Compile _
  | Event.Status_snapshot _ | Event.Ledger_append _ -> ());
  st

let step_line st raw =
  (match classify_line raw with
  | `Blank -> ()
  | `Event ev -> ignore (step st ev)
  | `Unknown kind -> bump st.s_unknown kind 1
  | `Malformed _ -> st.s_malformed <- st.s_malformed + 1);
  st

let finish st =
  let lineage = List.sort (fun a b -> compare a.ln_test b.ln_test) st.s_lineage in
  let first_for_branch = Hashtbl.create 64 in
  List.iter
    (fun n ->
      if n.ln_branch >= 0 && not (Hashtbl.mem first_for_branch n.ln_branch) then
        Hashtbl.add first_for_branch n.ln_branch n.ln_test)
    lineage;
  (* branches seen only through a producing test (old traces without
     lineage_negation lines) still get a row; the zero rows are grafted
     here rather than written back so [finish] stays read-only *)
  let negs = sorted_assoc st.s_negs in
  let extra =
    Hashtbl.fold
      (fun branch _ acc ->
        if Hashtbl.mem st.s_negs branch then acc else (branch, (0, 0, 0, 0, 0)) :: acc)
      first_for_branch []
  in
  let branches =
    List.sort compare (extra @ negs)
    |> List.map (fun (branch, (a, sa, us, uk, ca)) ->
           {
             br_branch = branch;
             br_first_test =
               Option.value (Hashtbl.find_opt first_for_branch branch) ~default:(-1);
             br_attempts = a;
             br_sat = sa;
             br_unsat = us;
             br_unknown = uk;
             br_cached = ca;
           })
  in
  let curve = sorted_assoc st.s_curve in
  {
    events = st.s_events;
    census = sorted_assoc st.s_census;
    unknown_kinds = sorted_assoc st.s_unknown;
    malformed = st.s_malformed;
    target = st.s_target;
    budget = st.s_budget;
    seed = st.s_seed;
    nprocs0 = st.s_nprocs0;
    curve;
    iterations = List.length curve;
    final_covered = st.s_final_covered;
    final_reachable = st.s_final_reachable;
    bugs = st.s_bugs;
    wall_s = st.s_wall;
    exec_s = st.s_exec;
    solve_s = st.s_solve;
    solver_calls = st.s_calls;
    solver_sat = st.s_sat;
    solver_unsat = st.s_unsat;
    solver_unknown = st.s_unknown_o;
    solver_time_s = st.s_time;
    solver_nodes = st.s_nodes;
    cache_hits = st.s_hits;
    cache_misses = st.s_misses;
    cache_evictions = st.s_evict;
    lineage;
    branches;
    matrix = sorted_assoc st.s_matrix;
    rank_sends = sorted_assoc st.s_sends;
    rank_recvs = sorted_assoc st.s_recvs;
    rank_colls = sorted_assoc st.s_colls;
    rank_blocked = sorted_assoc st.s_blocked;
    collectives = sorted_assoc st.s_coll_sigs;
    deadlocks = st.s_deadlocks;
    schedule_choices = st.s_sched_choices;
    schedule_forks = st.s_sched_forks;
    schedule_emitted = st.s_sched_emitted;
    schedule_pruned = st.s_sched_pruned;
    witness = sorted_assoc st.s_witness;
    faults = List.rev st.s_faults;
    restarts = sorted_assoc st.s_restarts;
    spans =
      List.sort
        (fun a b ->
          compare (a.sp_t0, a.sp_domain, a.sp_t1, a.sp_kind)
            (b.sp_t0, b.sp_domain, b.sp_t1, b.sp_kind))
        st.s_spans;
  }

let fold events = finish (List.fold_left step (init ()) events)

let of_lines lines = finish (List.fold_left step_line (init ()) lines)

(* ------------------------------------------------------------------ *)
(* Lineage queries                                                     *)
(* ------------------------------------------------------------------ *)

let node t id = List.find_opt (fun n -> n.ln_test = id) t.lineage

let chain t id =
  let rec go acc id =
    match node t id with
    | None -> List.rev acc
    | Some n ->
      let acc = n :: acc in
      if n.ln_parent < 0 || List.exists (fun m -> m.ln_test = n.ln_parent) acc then
        List.rev acc
      else go acc n.ln_parent
  in
  go [] id

let first_test_for_branch t branch =
  match List.find_opt (fun b -> b.br_branch = branch) t.branches with
  | Some b when b.br_first_test >= 0 -> Some b.br_first_test
  | _ -> (
    match List.find_opt (fun n -> n.ln_branch = branch) t.lineage with
    | Some n -> Some n.ln_test
    | None -> None)

let lineage_errors t =
  let errs = ref [] in
  let add fmt = Printf.ksprintf (fun s -> errs := s :: !errs) fmt in
  let tbl = Hashtbl.create 64 in
  List.iter
    (fun n ->
      if Hashtbl.mem tbl n.ln_test then add "duplicate test id %d" n.ln_test;
      Hashtbl.replace tbl n.ln_test n)
    t.lineage;
  List.iter
    (fun n ->
      match n.ln_origin with
      | "seed" | "restart" ->
        if n.ln_parent <> -1 then
          add "test %d: %s root carries parent %d" n.ln_test n.ln_origin n.ln_parent
      | "negated" ->
        if n.ln_parent < 0 then add "test %d: negated without a parent" n.ln_test
        else begin
          if n.ln_parent >= n.ln_test then
            add "test %d: parent %d does not precede it" n.ln_test n.ln_parent;
          if not (Hashtbl.mem tbl n.ln_parent) then
            add "test %d: parent %d absent from the graph" n.ln_test n.ln_parent
        end;
        if n.ln_branch < 0 then add "test %d: negated without a target branch" n.ln_test;
        if n.ln_index < 0 then add "test %d: negated without a constraint index" n.ln_test
      | "schedule" ->
        if n.ln_parent < 0 then add "test %d: schedule fork without a parent" n.ln_test
        else begin
          if n.ln_parent >= n.ln_test then
            add "test %d: parent %d does not precede it" n.ln_test n.ln_parent;
          if not (Hashtbl.mem tbl n.ln_parent) then
            add "test %d: parent %d absent from the graph" n.ln_test n.ln_parent
        end;
        if n.ln_index < 0 then
          add "test %d: schedule fork without a choice point" n.ln_test;
        if n.ln_branch < 0 then
          add "test %d: schedule fork without an alternative source" n.ln_test
      | other -> add "test %d: unknown origin %s" n.ln_test other)
    t.lineage;
  List.rev !errs

let witness_cycle t =
  let adj = Hashtbl.create 8 in
  List.iter
    (fun ({ we_rank; we_peer; _ }, _) ->
      if we_peer >= 0 then
        let cur = Option.value (Hashtbl.find_opt adj we_rank) ~default:[] in
        if not (List.mem we_peer cur) then Hashtbl.replace adj we_rank (we_peer :: cur))
    t.witness;
  let neighbors r = List.sort compare (Option.value (Hashtbl.find_opt adj r) ~default:[]) in
  let starts = Hashtbl.fold (fun k _ acc -> k :: acc) adj [] |> List.sort_uniq compare in
  (* path holds the walk most-recent-first; a revisit closes the cycle *)
  let rec dfs path r =
    if List.mem r path then begin
      let rec upto = function
        | [] -> []
        | x :: tl -> if x = r then [ x ] else x :: upto tl
      in
      Some (List.rev (upto path))
    end
    else
      List.fold_left
        (fun acc p -> match acc with Some _ -> acc | None -> dfs (r :: path) p)
        None (neighbors r)
  in
  List.fold_left
    (fun acc r -> match acc with Some _ -> acc | None -> dfs [] r)
    None starts

(* ------------------------------------------------------------------ *)
(* Renderers                                                           *)
(* ------------------------------------------------------------------ *)

let ascii_curve ?(width = 60) ?(height = 12) points =
  match points with
  | [] -> "(no iterations in trace)\n"
  | points ->
    let points = Array.of_list points in
    let n = Array.length points in
    let max_y = Array.fold_left (fun acc (_, y) -> max acc y) 1 points in
    let grid = Array.make_matrix height width ' ' in
    for col = 0 to width - 1 do
      let idx = min (n - 1) (col * n / width) in
      let _, y = points.(idx) in
      let row = y * (height - 1) / max_y in
      for fill = 0 to row do
        grid.(height - 1 - fill).(col) <- (if fill = row then '*' else '.')
      done
    done;
    let buf = Buffer.create ((width + 8) * height) in
    Array.iteri
      (fun i row ->
        Buffer.add_string buf
          (if i = 0 then Printf.sprintf "%5d |" max_y else "      |");
        Array.iter (Buffer.add_char buf) row;
        Buffer.add_char buf '\n')
      grid;
    Buffer.add_string buf ("      +" ^ String.make width '-' ^ "\n");
    let last_x, _ = points.(n - 1) in
    Buffer.add_string buf (Printf.sprintf "       0 .. iteration %d\n" last_x);
    Buffer.contents buf

(* Census rows whose counts depend on scheduling noise (worker identity,
   checkpoint cadence/paths, timing spans), not on what the campaign
   computed. *)
let unstable_kind k =
  match k with
  | "worker_spawn" | "worker_task" | "worker_exit" | "checkpoint_write"
  | "checkpoint_load" | "span" | "status_snapshot" | "ledger_append" -> true
  | _ -> false

let stable_census t = List.filter (fun (k, _) -> not (unstable_kind k)) t.census

let ranks_of t =
  let add acc r = if List.mem r acc then acc else r :: acc in
  let acc = List.fold_left (fun acc ((s, d), _) -> add (add acc s) d) [] t.matrix in
  let acc = List.fold_left (fun acc (r, _) -> add acc r) acc t.rank_sends in
  let acc = List.fold_left (fun acc (r, _) -> add acc r) acc t.rank_recvs in
  let acc = List.fold_left (fun acc (r, _) -> add acc r) acc t.rank_colls in
  let acc = List.fold_left (fun acc (r, _) -> add acc r) acc t.rank_blocked in
  match List.sort compare acc with
  | [] -> []
  | l ->
    let hi = List.fold_left max 0 l in
    List.init (hi + 1) Fun.id

let plateau_branches t =
  List.filter (fun b -> b.br_attempts > 0 && b.br_first_test < 0) t.branches

let lineage_depths t =
  let depth = Hashtbl.create 64 in
  List.iter
    (fun n ->
      let d =
        if n.ln_parent < 0 then 0
        else 1 + Option.value (Hashtbl.find_opt depth n.ln_parent) ~default:0
      in
      Hashtbl.replace depth n.ln_test d)
    t.lineage;
  depth

let origin_counts t =
  let seed = ref 0 and negated = ref 0 and schedule = ref 0 and restart = ref 0 in
  List.iter
    (fun n ->
      match n.ln_origin with
      | "seed" -> incr seed
      | "negated" -> incr negated
      | "schedule" -> incr schedule
      | _ -> incr restart)
    t.lineage;
  (!seed, !negated, !schedule, !restart)

let pct num den = if den = 0 then 0.0 else 100.0 *. float_of_int num /. float_of_int den

let to_text ?(stable = false) ?(branch_label = string_of_int) t =
  let b = Buffer.create 4096 in
  let pf fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  let census = if stable then stable_census t else t.census in
  let total = List.fold_left (fun acc (_, n) -> acc + n) 0 census in
  pf "events: %d\n" total;
  List.iter (fun (k, n) -> pf "  %-16s %d\n" k n) census;
  if t.unknown_kinds <> [] then begin
    let skipped = List.fold_left (fun acc (_, n) -> acc + n) 0 t.unknown_kinds in
    pf "skipped %d event(s) of unknown kind: %s\n" skipped
      (String.concat ", "
         (List.map (fun (k, n) -> Printf.sprintf "%s (%d)" k n) t.unknown_kinds))
  end;
  if t.malformed > 0 then pf "malformed lines: %d\n" t.malformed;
  (match (t.target, t.budget, t.seed, t.nprocs0) with
  | Some tg, Some bu, Some sd, Some np ->
    pf "\ncampaign: target=%s budget=%d seed=%d initial nprocs=%d\n"
      (if tg = "" then "?" else tg)
      bu sd np
  | _ -> ());
  pf "\ncoverage curve (%d iterations):\n%s" t.iterations (ascii_curve t.curve);
  (match (t.final_covered, t.final_reachable) with
  | Some c, Some r -> pf "coverage: %d/%d branches\n" c r
  | _ -> ());
  if not stable then begin
    pf "\nphase breakdown:\n";
    pf "  exec   %8.3fs\n" t.exec_s;
    pf "  solve  %8.3fs\n" t.solve_s;
    match t.wall_s with
    | Some w ->
      pf "  other  %8.3fs\n" (Float.max 0.0 (w -. t.exec_s -. t.solve_s));
      pf "  wall   %8.3fs\n" w
    | None -> ()
  end;
  if t.solver_calls > 0 then
    if stable then
      pf "\nsolver: %d calls (%d sat, %d unsat, %d unknown)\n" t.solver_calls
        t.solver_sat t.solver_unsat t.solver_unknown
    else
      pf "\nsolver: %d calls (%d sat, %d unsat, %d unknown), %.3fs total, %.1f nodes/call mean\n"
        t.solver_calls t.solver_sat t.solver_unsat t.solver_unknown t.solver_time_s
        (float_of_int t.solver_nodes /. float_of_int t.solver_calls);
  let probes = t.cache_hits + t.cache_misses in
  if probes > 0 then
    pf "cache: %d probes, %d hits (%.0f%%), %d evictions\n" probes t.cache_hits
      (pct t.cache_hits probes) t.cache_evictions;
  if t.schedule_choices > 0 || t.schedule_emitted > 0 then
    pf
      "schedules: %d wildcard choice(s) served (%d with alternatives), %d alternative \
       schedule(s) enumerated, %d pruned\n"
      t.schedule_choices t.schedule_forks t.schedule_emitted t.schedule_pruned;
  (* lineage *)
  if t.lineage <> [] then begin
    let seeds, negated, schedules, restarts = origin_counts t in
    let depths = lineage_depths t in
    let maxd = Hashtbl.fold (fun _ d acc -> max d acc) depths 0 in
    pf "\nlineage: %d tests (%d seed, %d negated, %d schedule, %d restart), max depth %d\n"
      (List.length t.lineage) seeds negated schedules restarts maxd;
    let plateau = plateau_branches t in
    if plateau <> [] then begin
      pf "plateau branches (attempted, never covered): %d\n" (List.length plateau);
      List.iteri
        (fun i br ->
          if i < 12 then
            pf "  branch %s: %d attempts (%d sat, %d unsat, %d unknown; %d cached)\n"
              (branch_label br.br_branch) br.br_attempts br.br_sat br.br_unsat
              br.br_unknown br.br_cached)
        plateau;
      if List.length plateau > 12 then pf "  … %d more\n" (List.length plateau - 12)
    end
  end;
  (* per-branch table *)
  if t.branches <> [] then begin
    pf "\nper-branch negations (%d branches):\n" (List.length t.branches);
    pf "  %-24s %10s %8s %5s %6s %8s %7s\n" "branch" "first-test" "attempts" "sat"
      "unsat" "unknown" "cached";
    List.iteri
      (fun i br ->
        if i < 40 then
          pf "  %-24s %10s %8d %5d %6d %8d %7d\n" (branch_label br.br_branch)
            (if br.br_first_test < 0 then "-" else string_of_int br.br_first_test)
            br.br_attempts br.br_sat br.br_unsat br.br_unknown br.br_cached)
      t.branches;
    if List.length t.branches > 40 then pf "  … %d more\n" (List.length t.branches - 40)
  end;
  (* communication *)
  let ranks = ranks_of t in
  if ranks <> [] then begin
    let cell src dst = Option.value (List.assoc_opt (src, dst) t.matrix) ~default:0 in
    let w =
      List.fold_left
        (fun acc ((_, _), n) -> max acc (String.length (string_of_int n)))
        3 t.matrix
    in
    pf "\ncommunication matrix (delivered messages, src rows × dst cols):\n";
    pf "  %4s" "";
    List.iter (fun d -> pf " %*d" w d) ranks;
    pf "\n";
    List.iter
      (fun s ->
        pf "  %4d" s;
        List.iter
          (fun d ->
            let n = cell s d in
            if n = 0 then pf " %*s" w "." else pf " %*d" w n)
          ranks;
        pf "\n")
      ranks;
    pf "\nper-rank activity:\n";
    pf "  %4s %8s %8s %12s %8s\n" "rank" "sends" "recvs" "collectives" "blocked";
    List.iter
      (fun r ->
        let g tbl = Option.value (List.assoc_opt r tbl) ~default:0 in
        pf "  %4d %8d %8d %12d %8d\n" r (g t.rank_sends) (g t.rank_recvs)
          (g t.rank_colls) (g t.rank_blocked))
      ranks;
    if t.collectives <> [] then begin
      pf "collectives:\n";
      List.iter
        (fun ((comm, signature), n) -> pf "  comm %d %s ×%d\n" comm signature n)
        t.collectives
    end
  end;
  (* deadlocks *)
  if t.deadlocks > 0 || t.witness <> [] then begin
    pf "\ndeadlocks: %d\n" t.deadlocks;
    if t.witness <> [] then begin
      pf "witness (wait-for edges):\n";
      List.iter
        (fun ({ we_rank; we_kind; we_peer; we_comm }, n) ->
          if we_peer >= 0 then
            pf "  rank %d %s ← rank %d (comm %d) ×%d\n" we_rank we_kind we_peer we_comm n
          else pf "  rank %d %s ← * (comm %d) ×%d\n" we_rank we_kind we_comm n)
        t.witness;
      match witness_cycle t with
      | Some cycle ->
        pf "wait-for cycle: %s → %s\n"
          (String.concat " → " (List.map string_of_int cycle))
          (string_of_int (List.hd cycle))
      | None -> ()
    end
  end;
  (* incidents *)
  if t.faults <> [] then begin
    pf "\nfaults (%d):\n" (List.length t.faults);
    List.iteri
      (fun i (iteration, rank, kind, detail) ->
        if i < 12 then pf "  [iter %d, rank %d] %s: %s\n" iteration rank kind detail)
      t.faults;
    if List.length t.faults > 12 then pf "  … %d more\n" (List.length t.faults - 12)
  end;
  if t.restarts <> [] then begin
    pf "\nrestarts:\n";
    List.iter (fun (reason, n) -> pf "  %-16s %d\n" reason n) t.restarts
  end;
  Buffer.contents b

(* HTML report: one self-contained page, no scripts, no timestamps —
   regeneration from the same trace is byte-identical. *)

let esc s =
  let b = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '&' -> Buffer.add_string b "&amp;"
      | '<' -> Buffer.add_string b "&lt;"
      | '>' -> Buffer.add_string b "&gt;"
      | '"' -> Buffer.add_string b "&quot;"
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let svg_curve points =
  let w = 640 and h = 200 and m = 36 in
  let b = Buffer.create 1024 in
  let pf fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  pf
    "<svg viewBox=\"0 0 %d %d\" width=\"%d\" height=\"%d\" role=\"img\" \
     aria-label=\"coverage curve\">\n"
    w h w h;
  (match points with
  | [] -> pf "<text x=\"%d\" y=\"%d\">no iterations in trace</text>\n" m (h / 2)
  | points ->
    let pts = Array.of_list points in
    let n = Array.length pts in
    let max_x = max 1 (fst pts.(n - 1)) in
    let max_y = Array.fold_left (fun acc (_, y) -> max acc y) 1 pts in
    let px x = float_of_int m +. float_of_int x /. float_of_int max_x *. float_of_int (w - 2 * m) in
    let py y =
      float_of_int (h - m) -. (float_of_int y /. float_of_int max_y *. float_of_int (h - 2 * m))
    in
    pf "<line x1=\"%d\" y1=\"%d\" x2=\"%d\" y2=\"%d\" stroke=\"#999\"/>\n" m (h - m)
      (w - m) (h - m);
    pf "<line x1=\"%d\" y1=\"%d\" x2=\"%d\" y2=\"%d\" stroke=\"#999\"/>\n" m m m (h - m);
    let coords =
      (* a single point still draws a visible (degenerate) polyline *)
      let pts = if n = 1 then [| pts.(0); pts.(0) |] else pts in
      Array.to_list pts
      |> List.map (fun (x, y) -> Printf.sprintf "%.1f,%.1f" (px x) (py y))
      |> String.concat " "
    in
    pf "<polyline fill=\"none\" stroke=\"#b22\" stroke-width=\"2\" points=\"%s\"/>\n"
      coords;
    pf "<text x=\"%d\" y=\"%d\" font-size=\"11\">0</text>\n" m (h - m + 14);
    pf "<text x=\"%d\" y=\"%d\" font-size=\"11\" text-anchor=\"end\">iteration %d</text>\n"
      (w - m) (h - m + 14) max_x;
    pf "<text x=\"%d\" y=\"%d\" font-size=\"11\">%d</text>\n" 2 (m + 4) max_y;
    pf "<text x=\"%d\" y=\"%d\" font-size=\"11\">covered</text>\n" 2 (m - 10));
  pf "</svg>\n";
  Buffer.contents b

let to_html ?(stable = false) ?(branch_label = string_of_int) t =
  let b = Buffer.create 16384 in
  let pf fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  pf "<!DOCTYPE html>\n<html lang=\"en\">\n<head>\n<meta charset=\"utf-8\">\n";
  pf "<title>compi campaign report</title>\n";
  pf
    "<style>\nbody{font-family:system-ui,sans-serif;margin:2em auto;max-width:70em;\
     padding:0 1em;color:#222}\nh1,h2{border-bottom:1px solid #ddd;padding-bottom:.2em}\n\
     table{border-collapse:collapse;margin:.6em 0}\n\
     th,td{border:1px solid #ccc;padding:.25em .6em;text-align:right;\
     font-variant-numeric:tabular-nums}\nth{background:#f4f4f4}\n\
     td.l,th.l{text-align:left}\ntd.zero{color:#bbb}\n\
     .matrix td{min-width:2.2em;text-align:center}\n\
     code{background:#f4f4f4;padding:0 .25em}\n</style>\n</head>\n<body>\n";
  pf "<h1>compi campaign report</h1>\n";
  (match (t.target, t.budget, t.seed, t.nprocs0) with
  | Some tg, Some bu, Some sd, Some np ->
    pf
      "<p>target <code>%s</code> · budget %d iterations · seed %d · initial nprocs \
       %d</p>\n"
      (esc (if tg = "" then "?" else tg))
      bu sd np
  | _ -> ());
  let census = if stable then stable_census t else t.census in
  let total = List.fold_left (fun acc (_, n) -> acc + n) 0 census in
  pf "<p>%d events" total;
  if t.unknown_kinds <> [] then begin
    let skipped = List.fold_left (fun acc (_, n) -> acc + n) 0 t.unknown_kinds in
    pf " · %d of unknown kind skipped" skipped
  end;
  if t.malformed > 0 then pf " · %d malformed lines" t.malformed;
  pf "</p>\n";
  (* coverage *)
  pf "<h2>Coverage</h2>\n%s" (svg_curve t.curve);
  (match (t.final_covered, t.final_reachable) with
  | Some c, Some r ->
    pf "<p>final coverage: <b>%d</b>/%d branches over %d iterations</p>\n" c r
      t.iterations
  | _ -> pf "<p>%d iterations</p>\n" t.iterations);
  (* solver + cache *)
  pf "<h2>Solver and cache</h2>\n<table>\n";
  pf "<tr><th class=\"l\">metric</th><th>value</th></tr>\n";
  pf "<tr><td class=\"l\">solver calls</td><td>%d</td></tr>\n" t.solver_calls;
  pf "<tr><td class=\"l\">sat / unsat / unknown</td><td>%d / %d / %d</td></tr>\n"
    t.solver_sat t.solver_unsat t.solver_unknown;
  if not stable then begin
    pf "<tr><td class=\"l\">solver time</td><td>%.3fs</td></tr>\n" t.solver_time_s;
    if t.solver_calls > 0 then
      pf "<tr><td class=\"l\">nodes / call</td><td>%.1f</td></tr>\n"
        (float_of_int t.solver_nodes /. float_of_int t.solver_calls)
  end;
  let probes = t.cache_hits + t.cache_misses in
  pf "<tr><td class=\"l\">cache probes</td><td>%d</td></tr>\n" probes;
  pf "<tr><td class=\"l\">cache hits</td><td>%d (%.0f%%)</td></tr>\n" t.cache_hits
    (pct t.cache_hits probes);
  pf "<tr><td class=\"l\">cache evictions</td><td>%d</td></tr>\n" t.cache_evictions;
  if not stable then begin
    pf "<tr><td class=\"l\">exec time</td><td>%.3fs</td></tr>\n" t.exec_s;
    pf "<tr><td class=\"l\">solve time (attributed)</td><td>%.3fs</td></tr>\n" t.solve_s;
    match t.wall_s with
    | Some w -> pf "<tr><td class=\"l\">wall clock</td><td>%.3fs</td></tr>\n" w
    | None -> ()
  end;
  pf "</table>\n";
  (* per-branch table *)
  if t.branches <> [] then begin
    pf "<h2>Per-branch negations</h2>\n<table>\n";
    pf
      "<tr><th class=\"l\">branch</th><th>first test</th><th>attempts</th><th>sat</th>\
       <th>unsat</th><th>unknown</th><th>cached</th></tr>\n";
    List.iter
      (fun br ->
        pf
          "<tr><td class=\"l\">%s</td><td>%s</td><td>%d</td><td>%d</td><td>%d</td>\
           <td>%d</td><td>%d</td></tr>\n"
          (esc (branch_label br.br_branch))
          (if br.br_first_test < 0 then "—" else string_of_int br.br_first_test)
          br.br_attempts br.br_sat br.br_unsat br.br_unknown br.br_cached)
      t.branches;
    pf "</table>\n"
  end;
  (* lineage *)
  if t.lineage <> [] then begin
    let seeds, negated, schedules, restarts = origin_counts t in
    let depths = lineage_depths t in
    let maxd = Hashtbl.fold (fun _ d acc -> max d acc) depths 0 in
    pf "<h2>Lineage</h2>\n";
    pf
      "<p>%d tests: %d seed, %d negated, %d schedule, %d restart · max derivation \
       depth %d</p>\n"
      (List.length t.lineage) seeds negated schedules restarts maxd;
    if t.schedule_choices > 0 || t.schedule_emitted > 0 then
      pf
        "<p>schedules: %d wildcard choice(s) served (%d with alternatives), %d \
         alternative schedule(s) enumerated, %d pruned</p>\n"
        t.schedule_choices t.schedule_forks t.schedule_emitted t.schedule_pruned;
    let plateau = plateau_branches t in
    if plateau <> [] then begin
      pf "<p>plateau branches (attempted, never covered): %d</p>\n<ul>\n"
        (List.length plateau);
      List.iter
        (fun br ->
          pf "<li>branch %s — %d attempts (%d sat, %d unsat, %d unknown; %d cached)</li>\n"
            (esc (branch_label br.br_branch))
            br.br_attempts br.br_sat br.br_unsat br.br_unknown br.br_cached)
        plateau;
      pf "</ul>\n"
    end
  end;
  (* communication *)
  let ranks = ranks_of t in
  if ranks <> [] then begin
    let cell src dst = Option.value (List.assoc_opt (src, dst) t.matrix) ~default:0 in
    let max_cell = List.fold_left (fun acc (_, n) -> max acc n) 1 t.matrix in
    pf "<h2>Communication matrix</h2>\n";
    pf "<p>delivered point-to-point messages, sender rows × receiver columns</p>\n";
    pf "<table class=\"matrix\">\n<tr><th>src\\dst</th>";
    List.iter (fun d -> pf "<th>%d</th>" d) ranks;
    pf "</tr>\n";
    List.iter
      (fun s ->
        pf "<tr><th>%d</th>" s;
        List.iter
          (fun d ->
            let n = cell s d in
            if n = 0 then pf "<td class=\"zero\">·</td>"
            else
              (* heat: linear alpha over the max cell *)
              pf "<td style=\"background:rgba(178,34,34,%.2f)%s\">%d</td>"
                (0.15 +. (0.75 *. float_of_int n /. float_of_int max_cell))
                (if 2 * n > max_cell then ";color:#fff" else "")
                n)
          ranks;
        pf "</tr>\n")
      ranks;
    pf "</table>\n";
    pf "<table>\n<tr><th>rank</th><th>sends</th><th>recvs</th><th>collectives</th>\
        <th>blocked</th></tr>\n";
    List.iter
      (fun r ->
        let g tbl = Option.value (List.assoc_opt r tbl) ~default:0 in
        pf "<tr><th>%d</th><td>%d</td><td>%d</td><td>%d</td><td>%d</td></tr>\n" r
          (g t.rank_sends) (g t.rank_recvs) (g t.rank_colls) (g t.rank_blocked))
      ranks;
    pf "</table>\n";
    if t.collectives <> [] then begin
      pf "<p>collectives: ";
      pf "%s"
        (String.concat " · "
           (List.map
              (fun ((comm, signature), n) ->
                Printf.sprintf "comm %d %s ×%d" comm (esc signature) n)
              t.collectives));
      pf "</p>\n"
    end
  end;
  (* deadlocks *)
  if t.deadlocks > 0 || t.witness <> [] then begin
    pf "<h2>Deadlocks</h2>\n<p>%d deadlock(s) observed</p>\n" t.deadlocks;
    if t.witness <> [] then begin
      pf "<ul>\n";
      List.iter
        (fun ({ we_rank; we_kind; we_peer; we_comm }, n) ->
          if we_peer >= 0 then
            pf "<li>rank %d blocked in %s waiting on rank %d (comm %d) ×%d</li>\n"
              we_rank (esc we_kind) we_peer we_comm n
          else
            pf "<li>rank %d blocked in %s (comm %d) ×%d</li>\n" we_rank (esc we_kind)
              we_comm n)
        t.witness;
      pf "</ul>\n";
      match witness_cycle t with
      | Some cycle ->
        pf "<p>wait-for cycle: <b>%s → %s</b></p>\n"
          (String.concat " → " (List.map string_of_int cycle))
          (string_of_int (List.hd cycle))
      | None -> ()
    end
  end;
  (* incidents *)
  if t.faults <> [] then begin
    pf "<h2>Faults</h2>\n<p>%d fault observation(s)</p>\n<ul>\n" (List.length t.faults);
    List.iteri
      (fun i (iteration, rank, kind, detail) ->
        if i < 40 then
          pf "<li>[iter %d, rank %d] %s: %s</li>\n" iteration rank (esc kind) (esc detail))
      t.faults;
    if List.length t.faults > 40 then pf "<li>… %d more</li>\n" (List.length t.faults - 40);
    pf "</ul>\n"
  end;
  if t.restarts <> [] then begin
    pf "<h2>Restarts</h2>\n<ul>\n";
    List.iter (fun (reason, n) -> pf "<li>%s ×%d</li>\n" (esc reason) n) t.restarts;
    pf "</ul>\n"
  end;
  pf "</body>\n</html>\n";
  Buffer.contents b

(* ------------------------------------------------------------------ *)
(* Profile fold: where the nanoseconds went                            *)
(* ------------------------------------------------------------------ *)

(* The span vocabulary this build understands. Wait kinds are time a
   domain provably spent not working (parked on a condition variable or
   a lock); busy kinds are work, possibly nested (a "round" contains
   "merge", an "exec" contains "schedule"). Unknown kinds — a newer
   producer — are skipped and counted, mirroring the event-kind triage. *)
let span_wait_kind = function
  | "idle" | "barrier" | "join" | "queue.wait" | "cache.lock.wait" -> true
  | _ -> false

let span_busy_kind = function
  | "campaign" | "task" | "exec" | "solve" | "solver.call" | "interp" | "compiled"
  | "compile" | "schedule" | "strategy" | "checkpoint" | "report" | "round"
  | "inflight" | "dispatch" | "merge" | "cache.probe" | "cache.lock.hold" -> true
  | _ -> false

(* Structural umbrellas: they tile the main domain so attribution can
   reach ~100%, but counting them as work would make domain 0 look
   always-busy and every round's critical path equal its wall. They
   contribute to coverage/attribution and the per-kind table only.
   ("inflight" is the pipelined engine's per-round streaming window —
   batch publication through last result consumed — and overlaps the
   merges and queue waits inside it, so it is structural too.) *)
let span_struct_kind = function
  | "round" | "campaign" | "inflight" -> true
  | _ -> false

(* Integer interval lists [(lo, hi)], hi exclusive. [ivs_norm] sorts,
   drops empties, and merges overlaps into a disjoint ascending list —
   the form the other operations expect. *)
let ivs_norm ivs =
  match List.sort compare (List.filter (fun (a, b) -> b > a) ivs) with
  | [] -> []
  | first :: rest ->
    let merged, last =
      List.fold_left
        (fun (acc, (pa, pb)) (a, b) ->
          if a <= pb then (acc, (pa, max pb b)) else ((pa, pb) :: acc, (a, b)))
        ([], first) rest
    in
    List.rev (last :: merged)

let ivs_len ivs = List.fold_left (fun acc (a, b) -> acc + (b - a)) 0 ivs

(* [ivs_sub a b]: the parts of [a] not covered by [b]; both disjoint
   ascending. *)
let ivs_sub a b =
  let rec go acc a b =
    match (a, b) with
    | [], _ -> List.rev acc
    | rest, [] -> List.rev_append acc rest
    | (a0, a1) :: ar, (b0, b1) :: br ->
      if b1 <= a0 then go acc a br
      else if a1 <= b0 then go ((a0, a1) :: acc) ar b
      else
        let acc = if a0 < b0 then (a0, b0) :: acc else acc in
        if a1 > b1 then go acc ((b1, a1) :: ar) br else go acc ar b
  in
  go [] a b

let ivs_clip (lo, hi) ivs =
  List.filter_map
    (fun (a, b) ->
      let a = max a lo and b = min b hi in
      if b > a then Some (a, b) else None)
    ivs

type domain_prof = {
  dp_domain : int;
  dp_spans : int;
  dp_busy_ns : int;
  dp_wait_ns : int;
  dp_util : float;
}

type round_prof = {
  rp_index : int;
  rp_wall_ns : int;
  rp_crit_ns : int;
  rp_crit_domain : int;
  rp_stall_ns : int;
}

type profile = {
  pf_spans : int;
  pf_unknown : (string * int) list;
  pf_wall_ns : int;
  pf_kinds : (string * (int * int)) list;
  pf_domains : domain_prof list;
  pf_barrier_ns : int;
  pf_queue_wait_ns : int;
  pf_queue_waits : int;
  pf_idle_ns : int;
  pf_join_ns : int;
  pf_lock_wait_ns : int;
  pf_lock_hold_ns : int;
  pf_lock_acqs : int;
  pf_probe_ns : int;
  pf_probes : int;
  pf_lock_hist : (int * int) list;
  pf_rounds : round_prof list;
  pf_attributed_pct : float;
}

(* Power-of-two bucket: 0 for <= 0 ns, else the smallest e >= 1 with
   ns <= 2^e. *)
let ns_bucket ns =
  if ns <= 0 then 0
  else begin
    let rec bits acc n = if n = 0 then acc else bits (acc + 1) (n lsr 1) in
    bits 0 (ns - 1) |> max 1
  end

let empty_profile =
  {
    pf_spans = 0;
    pf_unknown = [];
    pf_wall_ns = 0;
    pf_kinds = [];
    pf_domains = [];
    pf_barrier_ns = 0;
    pf_queue_wait_ns = 0;
    pf_queue_waits = 0;
    pf_idle_ns = 0;
    pf_join_ns = 0;
    pf_lock_wait_ns = 0;
    pf_lock_hold_ns = 0;
    pf_lock_acqs = 0;
    pf_probe_ns = 0;
    pf_probes = 0;
    pf_lock_hist = [];
    pf_rounds = [];
    pf_attributed_pct = 0.0;
  }

let profile t =
  let known, unknown_spans =
    List.partition (fun s -> span_busy_kind s.sp_kind || span_wait_kind s.sp_kind) t.spans
  in
  let unknown = Hashtbl.create 4 in
  List.iter (fun s -> bump unknown s.sp_kind 1) unknown_spans;
  let pf_unknown = sorted_assoc unknown in
  match known with
  | [] -> { empty_profile with pf_unknown }
  | _ :: _ ->
    let t_min = List.fold_left (fun acc s -> min acc s.sp_t0) max_int known in
    let t_max = List.fold_left (fun acc s -> max acc s.sp_t1) t_min known in
    let wall = max 1 (t_max - t_min) in
    let kinds = Hashtbl.create 16 in
    List.iter
      (fun s ->
        let c, ns = Option.value (Hashtbl.find_opt kinds s.sp_kind) ~default:(0, 0) in
        Hashtbl.replace kinds s.sp_kind (c + 1, ns + max 0 (s.sp_t1 - s.sp_t0)))
      known;
    let kind_total k =
      match Hashtbl.find_opt kinds k with Some (_, ns) -> ns | None -> 0
    in
    let kind_count k =
      match Hashtbl.find_opt kinds k with Some (c, _) -> c | None -> 0
    in
    let domains =
      List.sort_uniq compare (List.map (fun s -> s.sp_domain) known)
    in
    (* exclusive busy = union(busy \ structural) minus union(wait): a
       domain blocked on the merge barrier or holding no task is not
       busy, so per-domain utilization can never exceed 1; umbrella
       spans ("round", "campaign") are excluded or domain 0 would look
       always-busy. *)
    let excl_busy_of d =
      let mine = List.filter (fun s -> s.sp_domain = d) known in
      let iv p = ivs_norm (List.filter_map (fun s -> if p s.sp_kind then Some (s.sp_t0, s.sp_t1) else None) mine) in
      let busy = iv (fun k -> span_busy_kind k && not (span_struct_kind k)) in
      (ivs_sub busy (iv span_wait_kind), iv span_wait_kind, List.length mine)
    in
    let per_domain = List.map (fun d -> (d, excl_busy_of d)) domains in
    let pf_domains =
      List.map
        (fun (d, (busy, wait, nspans)) ->
          let busy_ns = ivs_len busy in
          {
            dp_domain = d;
            dp_spans = nspans;
            dp_busy_ns = busy_ns;
            dp_wait_ns = ivs_len wait;
            dp_util = float_of_int busy_ns /. float_of_int wall;
          })
        per_domain
    in
    let lock_waits = List.filter (fun s -> s.sp_kind = "cache.lock.wait") known in
    let lock_hist = Hashtbl.create 8 in
    List.iter (fun s -> bump lock_hist (ns_bucket (s.sp_t1 - s.sp_t0)) 1) lock_waits;
    (* critical path per round: the longest exclusive-busy time any one
       domain accumulated inside the round window; the remainder of the
       round's wall is stall no schedule could have hidden. *)
    let rounds =
      List.filter (fun s -> s.sp_kind = "round") known
      |> List.sort (fun a b -> compare (a.sp_t0, a.sp_t1) (b.sp_t0, b.sp_t1))
    in
    let pf_rounds =
      List.mapi
        (fun i r ->
          let w = (r.sp_t0, r.sp_t1) in
          let crit_domain, crit =
            List.fold_left
              (fun (bd, bn) (d, (busy, _, _)) ->
                let n = ivs_len (ivs_clip w busy) in
                if n > bn then (d, n) else (bd, bn))
              (-1, -1) per_domain
          in
          let wall_r = max 0 (r.sp_t1 - r.sp_t0) in
          {
            rp_index = i + 1;
            rp_wall_ns = wall_r;
            rp_crit_ns = max 0 crit;
            rp_crit_domain = crit_domain;
            rp_stall_ns = max 0 (wall_r - max 0 crit);
          })
        rounds
    in
    (* attribution: how much of the global extent the main domain's
       named spans cover — the >= 95% acceptance gate for the
       instrumentation itself *)
    let main_cover =
      ivs_len
        (ivs_norm
           (List.filter_map
              (fun s -> if s.sp_domain = 0 then Some (s.sp_t0, s.sp_t1) else None)
              known))
    in
    {
      pf_spans = List.length known;
      pf_unknown;
      pf_wall_ns = wall;
      pf_kinds =
        sorted_assoc kinds
        |> List.sort (fun (ka, (_, na)) (kb, (_, nb)) -> compare (nb, ka) (na, kb));
      pf_domains;
      pf_barrier_ns = kind_total "barrier";
      pf_queue_wait_ns = kind_total "queue.wait";
      pf_queue_waits = kind_count "queue.wait";
      pf_idle_ns = kind_total "idle";
      pf_join_ns = kind_total "join";
      pf_lock_wait_ns = kind_total "cache.lock.wait";
      pf_lock_hold_ns = kind_total "cache.lock.hold";
      pf_lock_acqs = kind_count "cache.lock.wait";
      pf_probe_ns = kind_total "cache.probe";
      pf_probes = kind_count "cache.probe";
      pf_lock_hist = sorted_assoc lock_hist;
      pf_rounds;
      pf_attributed_pct = 100.0 *. float_of_int main_cover /. float_of_int wall;
    }

(* ------------------------------------------------------------------ *)
(* Profile renderers                                                   *)
(* ------------------------------------------------------------------ *)

let ns_to_s ns = float_of_int ns /. 1e9

(* Under [stable], absolute durations collapse to power-of-two tick
   buckets ("~2^30ns") and percentages round to whole points, so the
   numbers that survive are reproducible in shape across reruns of the
   same campaign; without it, raw seconds. *)
let dur ~stable ns =
  if stable then Printf.sprintf "~2^%dns" (ns_bucket ns)
  else Printf.sprintf "%.3fs" (ns_to_s ns)

let share ~stable num den =
  let p = if den = 0 then 0.0 else 100.0 *. float_of_int num /. float_of_int den in
  if stable then Printf.sprintf "%3.0f%%" p else Printf.sprintf "%5.1f%%" p

let profile_text ?(stable = false) t =
  let p = profile t in
  let b = Buffer.create 4096 in
  let pf fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  if p.pf_spans = 0 then begin
    pf "no spans in trace";
    (match p.pf_unknown with
    | [] -> pf " (run the campaign with --trace-events to record them)\n"
    | u ->
      pf "; %d span(s) of unknown kind skipped: %s\n"
        (List.fold_left (fun acc (_, n) -> acc + n) 0 u)
        (String.concat ", " (List.map (fun (k, n) -> Printf.sprintf "%s (%d)" k n) u)));
    Buffer.contents b
  end
  else begin
    pf "spans: %d across %d domain(s), wall %s\n" p.pf_spans
      (List.length p.pf_domains) (dur ~stable p.pf_wall_ns);
    pf "attributed to named spans on the main domain: %s of wall\n"
      (share ~stable
         (int_of_float (float_of_int p.pf_wall_ns *. p.pf_attributed_pct /. 100.0))
         p.pf_wall_ns);
    if p.pf_unknown <> [] then
      pf "skipped %d span(s) of unknown kind: %s\n"
        (List.fold_left (fun acc (_, n) -> acc + n) 0 p.pf_unknown)
        (String.concat ", "
           (List.map (fun (k, n) -> Printf.sprintf "%s (%d)" k n) p.pf_unknown));
    pf "\nper-kind totals (nested spans count toward every enclosing kind):\n";
    pf "  %-16s %8s %12s %7s\n" "kind" "count" "total" "% wall";
    List.iter
      (fun (k, (c, ns)) ->
        pf "  %-16s %8d %12s %7s\n" k c (dur ~stable ns) (share ~stable ns p.pf_wall_ns))
      p.pf_kinds;
    pf "\nper-worker utilization (exclusive busy time / wall):\n";
    pf "  %-6s %12s %12s %6s\n" "domain" "busy" "wait" "util";
    List.iter
      (fun d ->
        let u = int_of_float (d.dp_util *. 100.0) in
        let bar = String.make (max 0 (min 30 (u * 30 / 100))) '#' in
        pf "  %-6d %12s %12s %5d%%  |%-30s|\n" d.dp_domain (dur ~stable d.dp_busy_ns)
          (dur ~stable d.dp_wait_ns) u bar)
      p.pf_domains;
    pf "\nstalls and contention:\n";
    pf "  merge-barrier stall (main waiting on workers): %s (%s of wall)\n"
      (dur ~stable p.pf_barrier_ns)
      (share ~stable p.pf_barrier_ns p.pf_wall_ns);
    pf "  pipeline queue wait (main waiting on the next in-order result): %s (%s of wall) across %d wait(s)\n"
      (dur ~stable p.pf_queue_wait_ns)
      (share ~stable p.pf_queue_wait_ns p.pf_wall_ns)
      p.pf_queue_waits;
    pf "  worker idle (no task claimable): %s\n" (dur ~stable p.pf_idle_ns);
    pf "  pool join: %s\n" (dur ~stable p.pf_join_ns);
    pf "  cache-lock wait: %s across %d acquisition(s); hold %s; probe %s over %d probe(s)\n"
      (dur ~stable p.pf_lock_wait_ns) p.pf_lock_acqs (dur ~stable p.pf_lock_hold_ns)
      (dur ~stable p.pf_probe_ns) p.pf_probes;
    if p.pf_lock_hist <> [] then begin
      pf "  cache-lock wait histogram (power-of-two ns buckets):\n";
      List.iter
        (fun (e, n) ->
          if e = 0 then pf "    %-10s %8d\n" "0ns" n
          else pf "    <=2^%-6d %8d\n" e n)
        p.pf_lock_hist
    end;
    if p.pf_rounds <> [] then begin
      let nr = List.length p.pf_rounds in
      let tot f = List.fold_left (fun acc r -> acc + f r) 0 p.pf_rounds in
      let wall_t = tot (fun r -> r.rp_wall_ns) in
      let crit_t = tot (fun r -> r.rp_crit_ns) in
      let stall_t = tot (fun r -> r.rp_stall_ns) in
      pf "\nrounds: %d; critical path %s of round wall (stall %s)\n" nr
        (share ~stable crit_t wall_t) (share ~stable stall_t wall_t);
      if not stable then begin
        let slowest =
          List.sort (fun a b -> compare (b.rp_wall_ns, a.rp_index) (a.rp_wall_ns, b.rp_index)) p.pf_rounds
        in
        pf "  slowest rounds:\n";
        pf "    %5s %12s %12s %12s %6s\n" "round" "wall" "crit" "stall" "on";
        List.iteri
          (fun i r ->
            if i < 5 then
              pf "    %5d %12s %12s %12s %6d\n" r.rp_index (dur ~stable r.rp_wall_ns)
                (dur ~stable r.rp_crit_ns) (dur ~stable r.rp_stall_ns) r.rp_crit_domain)
          slowest
      end
    end;
    Buffer.contents b
  end

(* Gantt colors: a fixed palette indexed by a deterministic hash of the
   kind name, so the same kind is the same color in every report. *)
let span_color kind =
  let palette =
    [|
      "#4878cf"; "#6acc65"; "#d65f5f"; "#b47cc7"; "#c4ad66"; "#77bedb";
      "#ee854a"; "#8c613c"; "#dc7ec0"; "#797979"; "#82c6e2"; "#d5bb67";
    |]
  in
  let h = ref 0 in
  String.iter (fun c -> h := ((!h * 31) + Char.code c) land max_int) kind;
  palette.(!h mod Array.length palette)

let profile_html ?(stable = false) t =
  let p = profile t in
  let b = Buffer.create 16384 in
  let pf fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  pf "<!DOCTYPE html>\n<html lang=\"en\">\n<head>\n<meta charset=\"utf-8\">\n";
  pf "<title>compi campaign profile</title>\n";
  pf
    "<style>\nbody{font-family:system-ui,sans-serif;margin:2em auto;max-width:76em;\
     padding:0 1em;color:#222}\nh1,h2{border-bottom:1px solid #ddd;padding-bottom:.2em}\n\
     table{border-collapse:collapse;margin:.6em 0}\n\
     th,td{border:1px solid #ccc;padding:.25em .6em;text-align:right;\
     font-variant-numeric:tabular-nums}\nth{background:#f4f4f4}\n\
     td.l,th.l{text-align:left}\n\
     .ubar{display:inline-block;height:.8em;background:#4878cf}\n\
     .utrack{display:inline-block;width:200px;height:.8em;background:#eee}\n\
     .legend span{display:inline-block;margin-right:1em}\n\
     .swatch{display:inline-block;width:.8em;height:.8em;margin-right:.3em;\
     vertical-align:middle}\n</style>\n</head>\n<body>\n";
  pf "<h1>compi campaign profile</h1>\n";
  if p.pf_spans = 0 then pf "<p>no spans in this trace</p>\n"
  else begin
    pf "<p>%d spans across %d domain(s) · wall %s · %s of wall attributed on the \
        main domain</p>\n"
      p.pf_spans (List.length p.pf_domains) (dur ~stable p.pf_wall_ns)
      (share ~stable
         (int_of_float (float_of_int p.pf_wall_ns *. p.pf_attributed_pct /. 100.0))
         p.pf_wall_ns);
    (* utilization bars *)
    pf "<h2>Per-worker utilization</h2>\n<table>\n";
    pf "<tr><th>domain</th><th>busy</th><th>wait</th><th>util</th><th class=\"l\">\
        </th></tr>\n";
    List.iter
      (fun d ->
        let u = d.dp_util *. 100.0 in
        pf
          "<tr><th>%d</th><td>%s</td><td>%s</td><td>%.0f%%</td>\
           <td class=\"l\"><span class=\"utrack\"><span class=\"ubar\" \
           style=\"width:%.0f%%\"></span></span></td></tr>\n"
          d.dp_domain (dur ~stable d.dp_busy_ns) (dur ~stable d.dp_wait_ns) u
          (Float.min 100.0 u))
      p.pf_domains;
    pf "</table>\n";
    (* stalls *)
    pf "<h2>Stalls and contention</h2>\n<table>\n";
    pf "<tr><th class=\"l\">source</th><th>total</th><th>%% wall</th></tr>\n";
    List.iter
      (fun (label, ns) ->
        pf "<tr><td class=\"l\">%s</td><td>%s</td><td>%s</td></tr>\n" label
          (dur ~stable ns) (share ~stable ns p.pf_wall_ns))
      [
        ("merge-barrier stall", p.pf_barrier_ns);
        ("pipeline queue wait", p.pf_queue_wait_ns);
        ("worker idle", p.pf_idle_ns);
        ("pool join", p.pf_join_ns);
        ("cache-lock wait", p.pf_lock_wait_ns);
        ("cache-lock hold", p.pf_lock_hold_ns);
      ];
    pf "</table>\n";
    (* gantt *)
    let w = 1000 and row_h = 22 and label_w = 60 in
    let nd = List.length p.pf_domains in
    let h = (nd * row_h) + 30 in
    let spans =
      List.filter
        (fun s -> span_busy_kind s.sp_kind || span_wait_kind s.sp_kind)
        t.spans
    in
    let t_min =
      List.fold_left (fun acc s -> min acc s.sp_t0) max_int spans
    in
    let px tk =
      let raw =
        float_of_int (tk - t_min) /. float_of_int p.pf_wall_ns *. float_of_int w
      in
      (* stable mode buckets ticks onto a 1000-step grid *)
      if stable then Float.round raw else raw
    in
    pf "<h2>Timeline</h2>\n";
    pf
      "<svg viewBox=\"0 0 %d %d\" width=\"%d\" height=\"%d\" role=\"img\" \
       aria-label=\"span timeline\">\n"
      (w + label_w + 10) h (w + label_w + 10) h;
    List.iteri
      (fun row d ->
        let y = row * row_h in
        pf "<text x=\"2\" y=\"%d\" font-size=\"11\">domain %d</text>\n"
          (y + (row_h / 2) + 4) d.dp_domain;
        pf "<line x1=\"%d\" y1=\"%d\" x2=\"%d\" y2=\"%d\" stroke=\"#eee\"/>\n" label_w
          (y + row_h) (w + label_w) (y + row_h);
        List.iter
          (fun s ->
            if s.sp_domain = d.dp_domain then begin
              let x0 = px s.sp_t0 and x1 = px s.sp_t1 in
              let wd = Float.max 0.5 (x1 -. x0) in
              pf
                "<rect x=\"%.1f\" y=\"%d\" width=\"%.1f\" height=\"%d\" \
                 fill=\"%s\" fill-opacity=\"0.8\"><title>%s</title></rect>\n"
                (float_of_int label_w +. x0)
                (y + 3) wd (row_h - 6) (span_color s.sp_kind) (esc s.sp_kind)
            end)
          spans)
      p.pf_domains;
    pf "</svg>\n";
    let legend_kinds = List.map fst p.pf_kinds in
    pf "<p class=\"legend\">";
    List.iter
      (fun k ->
        pf "<span><span class=\"swatch\" style=\"background:%s\"></span>%s</span>"
          (span_color k) (esc k))
      legend_kinds;
    pf "</p>\n";
    (* kind table *)
    pf "<h2>Per-kind totals</h2>\n<table>\n";
    pf "<tr><th class=\"l\">kind</th><th>count</th><th>total</th><th>%% wall</th></tr>\n";
    List.iter
      (fun (k, (c, ns)) ->
        pf "<tr><td class=\"l\">%s</td><td>%d</td><td>%s</td><td>%s</td></tr>\n" (esc k)
          c (dur ~stable ns) (share ~stable ns p.pf_wall_ns))
      p.pf_kinds;
    pf "</table>\n";
    if p.pf_rounds <> [] then begin
      let nr = List.length p.pf_rounds in
      let tot f = List.fold_left (fun acc r -> acc + f r) 0 p.pf_rounds in
      pf "<p>%d round(s): critical path %s of round wall, stall %s</p>\n" nr
        (share ~stable (tot (fun r -> r.rp_crit_ns)) (tot (fun r -> r.rp_wall_ns)))
        (share ~stable (tot (fun r -> r.rp_stall_ns)) (tot (fun r -> r.rp_wall_ns)))
    end
  end;
  pf "</body>\n</html>\n";
  Buffer.contents b
