(** Fold a telemetry event stream into the campaign observatory: census,
    coverage curve, solver/cache accounting, test-case lineage graph,
    rank×rank communication matrix, and deadlock witnesses — everything
    [compi-cli replay]/[explain]/[report] print is computed here, from
    the trace alone.

    The fold is pure and deterministic: two traces with the same event
    content produce structurally equal values, and the renderers below
    produce byte-identical strings for equal values. *)

type line =
  [ `Blank  (** whitespace-only line *)
  | `Event of Event.t
  | `Unknown of string  (** well-formed JSON, unrecognized ["ev"] kind *)
  | `Malformed of string  (** bad JSON or missing/ill-typed fields *) ]

val classify_line : string -> line
(** Forward-compatible line triage: an object whose ["ev"] kind this
    build does not know is [`Unknown kind], not an error — replay skips
    and counts it. *)

type lineage_node = {
  ln_test : int;  (** test-case id (dense iteration number) *)
  ln_parent : int;  (** parent test id, -1 for roots *)
  ln_origin : string;
      (** ["seed"], ["negated"], ["restart"], or ["schedule"] *)
  ln_branch : int;
      (** branch the producing negation targeted (for ["schedule"]: the
          alternative source delivered), -1 *)
  ln_index : int;
      (** constraint-set index negated (for ["schedule"]: the flipped
          choice point), -1 *)
  ln_cached : bool;  (** producing verdict replayed from the cache *)
}

type branch_stat = {
  br_branch : int;
  br_first_test : int;  (** first test targeting it that ran, -1 if none *)
  br_attempts : int;  (** negation attempts targeting this branch *)
  br_sat : int;
  br_unsat : int;
  br_unknown : int;
  br_cached : int;  (** attempts answered from the solver cache *)
}

type witness_edge = { we_rank : int; we_kind : string; we_peer : int; we_comm : int }

type span = {
  sp_domain : int;  (** pool worker index; 0 = main domain *)
  sp_kind : string;  (** e.g. ["exec"], ["barrier"], ["cache.lock.wait"] *)
  sp_t0 : int;  (** begin tick, ns since the timeline was enabled *)
  sp_t1 : int;  (** end tick, ns *)
}

type t = {
  events : int;
  census : (string * int) list;  (** kind → count, sorted by kind *)
  unknown_kinds : (string * int) list;  (** skipped kinds, sorted *)
  malformed : int;
  target : string option;
  budget : int option;
  seed : int option;
  nprocs0 : int option;
  curve : (int * int) list;  (** (iteration, cumulative covered), ascending *)
  iterations : int;
  final_covered : int option;
  final_reachable : int option;
  bugs : int;
  wall_s : float option;
  exec_s : float;
  solve_s : float;
  solver_calls : int;
  solver_sat : int;
  solver_unsat : int;
  solver_unknown : int;
  solver_time_s : float;
  solver_nodes : int;
  cache_hits : int;
  cache_misses : int;
  cache_evictions : int;
  lineage : lineage_node list;  (** ascending test id *)
  branches : branch_stat list;  (** ascending branch id *)
  matrix : ((int * int) * int) list;  (** (src, dst) → delivered messages *)
  rank_sends : (int * int) list;  (** rank → send posts *)
  rank_recvs : (int * int) list;  (** rank → completed receives *)
  rank_colls : (int * int) list;  (** rank → collectives joined *)
  rank_blocked : (int * int) list;  (** rank → blocking episodes *)
  collectives : ((int * string) * int) list;  (** (comm, signature) → count *)
  deadlocks : int;
  schedule_choices : int;  (** wildcard match decisions served *)
  schedule_forks : int;  (** choice points with more than one eligible source *)
  schedule_emitted : int;  (** alternative prescriptions the enumerator queued *)
  schedule_pruned : int;  (** alternatives dropped by POR or the depth budget *)
  witness : (witness_edge * int) list;  (** deduplicated wait-for edges *)
  faults : (int * int * string * string) list;  (** iter, rank, kind, detail *)
  restarts : (string * int) list;  (** reason → count *)
  spans : span list;  (** timeline spans, sorted by (t0, domain, t1, kind) *)
}

(** {2 Incremental fold}

    The fold is a state machine: [init] an empty state, [step] each
    event (or [step_line] each raw trace line) as it arrives, [finish]
    whenever a report is wanted. [finish] only reads the state, so a
    live consumer — [compi-cli watch] tailing a growing trace — can
    finish, render, step more lines, and finish again; each [finish] is
    byte-identical to a batch [fold] of the same prefix. *)

type state

val init : unit -> state

val step : state -> Event.t -> state
(** Absorb one event (mutates and returns the same state, so it slots
    into [List.fold_left]). *)

val step_line : state -> string -> state
(** [classify_line] one raw line and absorb it: events are [step]ped,
    unknown kinds and malformed lines are counted. *)

val finish : state -> t
(** Snapshot the aggregate for the events absorbed so far. Read-only:
    the state remains valid for further [step]s. *)

val fold : Event.t list -> t
(** [finish (List.fold_left step (init ()) events)] — aggregate an
    already-parsed stream ([unknown_kinds] and [malformed] are
    empty/0). *)

val of_lines : string list -> t
(** [classify_line] each line, fold the events, and count the skips. *)

(** {2 Lineage queries} *)

val node : t -> int -> lineage_node option

val chain : t -> int -> lineage_node list
(** Causal chain of a test: the node itself first, then its parent, up
    to the root. Cycle-safe (stops on a repeated id). *)

val first_test_for_branch : t -> int -> int option
(** First test whose producing negation targeted the branch. *)

val lineage_errors : t -> string list
(** Structural invariant violations: duplicate ids, missing or
    non-ancestral parents (parent must be < test), roots that are not
    seeds/restarts, negated nodes without a branch. Empty = healthy. *)

val witness_cycle : t -> int list option
(** A wait-for cycle among the deadlock-witness edges, as the list of
    ranks in traversal order (the last waits on the first again);
    [None] when no directed cycle exists (e.g. a collective deadlock
    whose edges point at absent ranks). *)

(** {2 Renderers} *)

val ascii_curve : ?width:int -> ?height:int -> (int * int) list -> string

val to_text : ?stable:bool -> ?branch_label:(int -> string) -> t -> string
(** The full ASCII report. [stable] drops wall-clock-derived lines and
    worker/checkpoint census rows so output is byte-identical across
    [--jobs] values; [branch_label] renders branch ids (default
    [string_of_int]). *)

val to_html : ?stable:bool -> ?branch_label:(int -> string) -> t -> string
(** Self-contained HTML report (inline CSS + SVG, no scripts, no
    timestamps): coverage curve, solver/cache breakdown, per-branch hit
    table, comm-matrix heatmap, lineage summary, deadlock witnesses. *)

(** {2 Profile fold}

    Everything below is a pure function of {!t}[.spans]: where the
    campaign's nanoseconds went, per domain and per round. *)

val span_wait_kind : string -> bool
(** Time a domain provably spent not working: ["idle"], ["queue.wait"]
    (the pipelined engine's main domain parked on the next in-order
    result), ["join"], and — from traces of older builds — ["barrier"]
    and ["cache.lock.wait"]. *)

val span_busy_kind : string -> bool
(** Work kinds this build understands (["task"], ["exec"], ["solve"],
    ["round"], …). A span kind that is neither busy nor wait comes from
    a newer producer and is skipped-and-counted. *)

type domain_prof = {
  dp_domain : int;
  dp_spans : int;  (** spans recorded on this domain *)
  dp_busy_ns : int;
      (** exclusive busy: union(busy) minus union(wait); structural
          umbrella spans ([round], [campaign], [inflight]) are
          excluded *)
  dp_wait_ns : int;  (** union of wait intervals *)
  dp_util : float;  (** busy / global wall; always in [0, 1] *)
}

type round_prof = {
  rp_index : int;  (** 1-based round number *)
  rp_wall_ns : int;
  rp_crit_ns : int;  (** longest single-domain exclusive-busy in the round *)
  rp_crit_domain : int;  (** the domain carrying the critical path *)
  rp_stall_ns : int;  (** wall − crit: latency no schedule could hide *)
}

type profile = {
  pf_spans : int;  (** known-kind spans folded *)
  pf_unknown : (string * int) list;  (** skipped kinds, sorted *)
  pf_wall_ns : int;  (** global extent: max t1 − min t0 (≥ 1) *)
  pf_kinds : (string * (int * int)) list;
      (** kind → (count, total ns), descending by total *)
  pf_domains : domain_prof list;  (** ascending domain id *)
  pf_barrier_ns : int;
      (** main waiting on a whole-batch merge barrier — only present in
          traces of pre-pipeline builds; 0 for current campaigns *)
  pf_queue_wait_ns : int;
      (** main parked on the next in-order pipeline result *)
  pf_queue_waits : int;  (** number of such waits *)
  pf_idle_ns : int;  (** workers parked with nothing claimable *)
  pf_join_ns : int;
  pf_lock_wait_ns : int;
      (** solver-cache lock acquisition wait — legacy traces only; the
          sharded cache takes no lock *)
  pf_lock_hold_ns : int;
  pf_lock_acqs : int;
  pf_probe_ns : int;
  pf_probes : int;
  pf_lock_hist : (int * int) list;
      (** lock-wait histogram: power-of-two exponent → count; bucket [e]
          is the smallest e ≥ 1 with wait ≤ 2^e ns, bucket 0 holds ≤ 0 *)
  pf_rounds : round_prof list;
  pf_attributed_pct : float;
      (** % of wall covered by named spans on the main domain — the
          instrumentation-completeness gauge *)
}

val profile : t -> profile
(** Pure and deterministic; an empty span list yields a zeroed profile
    (with [pf_unknown] still populated). *)

val profile_text : ?stable:bool -> t -> string
(** Text breakdown: per-kind totals, per-worker utilization bars,
    pipeline queue wait, merge-barrier stall (legacy traces),
    cache-lock wait histogram, per-round critical
    path. Under [stable], absolute durations collapse to power-of-two
    buckets and percentages to whole points, so reruns over the same
    trace are byte-identical and shapes are comparable across hosts. *)

val profile_html : ?stable:bool -> t -> string
(** Self-contained HTML profile: utilization bars, stall table, SVG
    Gantt timeline (one row per domain, colored by kind), per-kind
    totals. No scripts, no timestamps. *)
