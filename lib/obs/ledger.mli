(** Persistent run ledger: one versioned JSONL summary record appended
    per campaign, the longitudinal store behind [compi-cli history]
    (per-target trends) and [compi-cli compare] (coverage/bug/perf
    deltas between two runs).

    Forward compatibility mirrors the trace: a record whose version
    this build does not know is skipped and counted at [load], never an
    error, so old readers survive new writers. *)

val version : int
(** Schema version this build writes (1). *)

type bug = {
  bug_test : int;  (** lineage/test id of the failing iteration *)
  bug_rank : int;
  bug_kind : string;
}

type record = {
  run : string;  (** unique id ["<target>#<seq>"], assigned by [append] *)
  target : string;
  fingerprint : string;  (** settings [digest] *)
  exec_mode : string;  (** ["interp"] or ["compiled"] *)
  jobs : int;
  seed : int;
  budget : int;
  executed : int;
  rounds : int;
  covered : int;
  reachable : int;
  bugs : bug list;
  curve : (int * int) list;  (** final coverage curve, ascending *)
  wall_s : float;
  solver_calls : int;
  cache_hits : int;
  cache_misses : int;
  schedule_forks : int;
}

val digest : (string * string) list -> string
(** FNV-1a 64-bit hex digest of a settings fingerprint (key order
    preserved): identical settings give identical digests across runs
    and builds, without storing every key in every record. *)

val to_json : record -> Json.t

val of_json : Json.t -> (record, string) result
(** [Error "unknown ledger version N"] for records from newer
    producers — [load] counts those as skips, not corruption. *)

type store = {
  records : record list;  (** file order = append order *)
  skipped : int;  (** records of unknown (newer) version *)
  malformed : int;
}

val load : string -> (store, string) result
(** Read a ledger file; [Error] only when the file itself is
    unreadable. *)

val append : string -> record -> record
(** Append to the JSONL store (creating it if absent), assigning
    [run = "<target>#<seq>"] where [seq] counts the existing lines.
    Returns the record as written. *)

val find : store -> string -> record option
(** Run selector: an integer selects by position ([-1] = latest,
    negative from the end), anything else matches a [run] id exactly. *)

type delta = {
  d_covered : int;
  d_reachable : int;
  d_bugs : int;
  d_executed : int;
  d_wall_s : float;
  d_solver_calls : int;
  d_hit_rate : float;
  same_settings : bool;  (** the two fingerprints are equal *)
  regression : bool;
      (** coverage dropped by more than the tolerance — the only gated
          dimension; perf deltas are informational *)
}

val hit_rate : record -> float

val diff : ?tolerance:int -> record -> record -> delta
(** Delta of the second run relative to the first. [regression] iff
    covered dropped by more than [tolerance] (default 0) branches, so
    two identical-settings runs always yield a zero-delta,
    no-regression comparison regardless of timing noise. *)
