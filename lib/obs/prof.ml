(* Nestable wall-clock phase timers. [time "solve" f] inside
   [time "iteration" g] attributes the elapsed seconds to both phases'
   totals; self-time subtracts the children, so the totals table reads
   like a flat profile even with nesting. State is process-wide and the
   frame stack is inherently per-thread (fibers run synchronously inside
   the scheduler), so a plain stack suffices — on the main domain.
   Campaign worker domains run the same instrumented code paths
   (runner, scheduler); there [time] degrades to a plain call so the
   shared stack is never touched concurrently. Phase totals thus account
   main-domain work only; cross-domain work is visible through the
   worker_task events and the campaign's own wall-clock accounting.

   Every timed phase also records a {!Timeline} span under the phase
   name — on any domain, since span buffers are per-domain — so when
   the timeline is enabled the existing phase vocabulary ("exec",
   "solve", "schedule", …) shows up on the profile Gantt without
   touching the instrumented call sites. *)

type entry = { mutable total : float; mutable self : float; mutable count : int }
type frame = { fname : string; start : float; mutable child : float }

let table : (string, entry) Hashtbl.t = Hashtbl.create 16
let stack : frame list ref = ref []
let now = Unix.gettimeofday

let entry name =
  match Hashtbl.find_opt table name with
  | Some e -> e
  | None ->
    let e = { total = 0.0; self = 0.0; count = 0 } in
    Hashtbl.replace table name e;
    e

let time name f =
  if not (Domain.is_main_domain ()) then Timeline.span name f
  else begin
  let fr = { fname = name; start = now (); child = 0.0 } in
  stack := fr :: !stack;
  Fun.protect
    ~finally:(fun () ->
      let elapsed = now () -. fr.start in
      (match !stack with
      | top :: rest when top == fr -> stack := rest
      | _ -> stack := List.filter (fun g -> g != fr) !stack);
      (match !stack with
      | parent :: _ -> parent.child <- parent.child +. elapsed
      | [] -> ());
      let e = entry name in
      e.total <- e.total +. elapsed;
      e.self <- e.self +. Float.max 0.0 (elapsed -. fr.child);
      e.count <- e.count + 1)
    (fun () -> Timeline.span name f)
  end

let totals () =
  Hashtbl.fold (fun name e acc -> (name, e.total, e.self, e.count) :: acc) table []
  |> List.sort (fun (a, _, _, _) (b, _, _, _) -> String.compare a b)

let total name =
  match Hashtbl.find_opt table name with Some e -> e.total | None -> 0.0

let reset () =
  Hashtbl.reset table;
  stack := []

let snapshot_json () =
  Json.Obj
    (List.map
       (fun (name, total, self, count) ->
         ( name,
           Json.Obj
             [
               ("total_s", Json.Float total);
               ("self_s", Json.Float self);
               ("count", Json.Int count);
             ] ))
       (totals ()))
