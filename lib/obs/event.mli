(** The structured telemetry vocabulary: everything a campaign does that
    is worth a line in a trace.

    One constructor per occurrence kind, carrying only scalars — every
    layer of the engine (solver, scheduler, interpreter, driver) can
    build these without new dependencies, and a JSONL consumer gets flat
    objects. [to_json]/[of_json] round-trip exactly (see test_obs). *)

type solver_outcome = Sat | Unsat | Unknown

val outcome_name : solver_outcome -> string

type t =
  | Campaign_start of { target : string; iterations : int; seed : int; nprocs : int }
  | Compile of { target : string; funcs : int; conds : int; slots : int; time_s : float }
      (** the target was compiled to closures (once per campaign):
          [funcs]/[conds]/[slots] are compiled-program sizes, [time_s]
          the compile cost that [compi-cli profile] attributes to the
          ["compile"] phase rather than to run time *)
  | Campaign_end of {
      iterations_run : int;
      covered : int;
      reachable : int;
      bugs : int;
      wall_s : float;
    }
  | Iter_start of { iteration : int; nprocs : int; focus : int }
  | Iter_end of {
      iteration : int;
      covered : int;
      reachable : int;
      cs_size : int;
      faults : int;
      restarted : bool;
      exec_s : float;
      solve_s : float;
    }
  | Solver_call of {
      incremental : bool;
      outcome : solver_outcome;
      nodes : int;  (** search nodes expended (bounded by the budget) *)
      vars : int;  (** variables in the (closure of the) solved set *)
      constraints : int;
      time_s : float;
    }
  | Negation of { iteration : int; index : int; sat : bool }
      (** one attempt to negate the focus path constraint at [index] *)
  | Restart of { iteration : int; reason : string }
      (** [reason] is one of ["stagnation"], ["exhausted"],
          ["platform-limit"] *)
  | Sched_step of { kind : string; rank : int; comm : int; detail : string }
      (** scheduler progress: [kind] is ["send"], ["recv"],
          ["collective"], or ["finished"] *)
  | Sched_deadlock of { ranks : int list }
  | Fault of { iteration : int; rank : int; kind : string; detail : string }
  | Coverage_delta of { iteration : int; covered_before : int; covered_after : int }
  | Worker_spawn of { worker : int }
      (** a campaign worker domain came up ([worker] 0 is the main
          domain, which also executes tasks) *)
  | Worker_task of { worker : int; task : int; time_s : float }
      (** one pool task (speculative solve+execute) finished on
          [worker]; [task] is the pool-wide dispatch sequence number *)
  | Worker_exit of { worker : int; tasks : int }
      (** a worker domain drained and joined after running [tasks] tasks *)
  | Cache_lookup of { hit : bool; constraints : int; entries : int }
      (** one solver-cache probe: [constraints] is the size of the
          canonicalized closure looked up, [entries] the cache
          population at probe time *)
  | Cache_evict of { dropped : int; entries : int }
      (** the solver cache dropped [dropped] oldest entries to respect
          its capacity *)
  | Checkpoint_write of { iteration : int; path : string; bytes : int }
      (** a campaign snapshot was committed (atomically) to [path] after
          iteration [iteration]; [bytes] is the serialized payload size *)
  | Checkpoint_load of { iteration : int; path : string }
      (** a campaign resumed from the snapshot at [path], continuing
          after iteration [iteration] — the stitch point in a trace *)
  | Lineage_test of {
      test : int;
      parent : int;
      origin : string;
      branch : int;
      index : int;
      cached : bool;
    }
      (** provenance of test case [test]: [origin] is ["seed"],
          ["negated"], ["restart"], or ["schedule"]; for negated tests
          [parent] is the test whose path was negated, [branch] the
          branch id the negation targeted, [index] the constraint-set
          position, and [cached] whether the producing verdict was a
          cache replay. For schedule tests [parent] is the run whose
          recorded choices were forked, [index] the flipped choice
          point, and [branch] the alternative source delivered. Seeds
          and restarts carry [parent]=[branch]=[index]=-1. *)
  | Lineage_negation of {
      parent : int;
      index : int;
      branch : int;
      outcome : solver_outcome;
      cached : bool;
    }
      (** one negation attempt against test [parent]'s path at [index],
          targeting [branch]; recorded for every attempt (including
          Unsat/Unknown ones that produce no test) so plateaus are
          diagnosable from the trace alone *)
  | Msg_matched of { src : int; dst : int; comm : int; tag : int }
      (** a point-to-point message was delivered: global sender [src] to
          global receiver [dst] — the communication-matrix source *)
  | Coll_done of { comm : int; signature : string; ranks : int list }
      (** a collective completed on [comm] with the listed global
          participants *)
  | Rank_blocked of { rank : int; comm : int; kind : string; peer : int }
      (** global [rank] blocked: [kind] is ["recv"], ["wait"], or
          ["collective"]; [peer] is the global rank it waits on (-1 for
          wildcard receives and collectives) *)
  | Deadlock_witness of { rank : int; comm : int; kind : string; peer : int }
      (** one wait-for edge of a proven deadlock: blocked [rank] waits
          on [peer] (a missing collective participant, or the sender it
          receives/waits from; -1 when unknowable). The full set of
          witness edges names the wait-for cycle. *)
  | Schedule_choice of {
      rank : int;
      comm : int;
      tag : int;
      chosen : int;
      alts : int list;
      point : int;
    }
      (** schedule mode: the [point]-th wildcard choice point of a run
          delivered the message from local source [chosen] (tag [tag])
          to global receiver [rank]; [alts] is the sorted set of local
          sources that were eligible — the schedule forked here when
          [alts] has more than one entry *)
  | Schedule_enum of { parent : int; points : int; emitted : int; pruned : int }
      (** the schedule enumerator processed test [parent]'s recorded
          choices: [points] choice points were examined, [emitted]
          alternative prescriptions were queued as schedule candidates,
          and [pruned] alternatives were dropped by partial-order
          reduction (prescribed-prefix rule) or the depth budget *)
  | Span of { domain : int; kind : string; t0 : int; t1 : int }
      (** one timed interval from the {!Timeline}: work of [kind] ran on
          [domain] (pool worker index; 0 = main) from monotonic tick
          [t0] to [t1], in nanoseconds since the timeline was enabled.
          The profile fold ([compi-cli profile]) is built entirely from
          these. *)
  | Status_snapshot of {
      rounds : int;
      executed : int;
      covered : int;
      reachable : int;
      bugs : int;
      queue : int;
      path : string;
    }
      (** the campaign published a live status snapshot to [path]
          (see {!Status}): [rounds] merge rounds completed, [executed]
          tests run, [queue] the work-queue depth at the publish point.
          Emitted at most once per publish, so the trace records when
          (and how often) the dashboard data refreshed. *)
  | Ledger_append of { path : string; run : string; covered : int; reachable : int; bugs : int }
      (** the campaign appended run [run]'s summary record to the
          ledger store at [path] (see {!Ledger}) — the longitudinal
          cross-campaign record behind [compi-cli history]/[compare] *)

val kind_name : t -> string
(** The wire name, i.e. the ["ev"] field of the JSON encoding. *)

val to_json : ?t:float -> t -> Json.t
(** Flat object [{"ev": kind, ("t": seconds)?, field…}]. [t] is the
    emission timestamp relative to sink installation. *)

val of_json : Json.t -> (t, string) result
(** Inverse of [to_json] (the ["t"] field is ignored). *)
