(* Live campaign status snapshot: the compact JSON document the engine
   atomically publishes at merge points, and `compi-cli status`/`watch`
   read back. One flat object per file, versioned, so a newer producer
   can add fields without breaking an older reader. *)

let version = 1

type t = {
  target : string;
  budget : int;
  rounds : int;
  executed : int;
  covered : int;
  reachable : int;
  bugs : int;
  queue_depth : int;
  utilization : float;
  cache_hit_rate : float;
  schedule_forks : int;
  plateau : bool;
  eta_iterations : int;  (* -1 = no estimate *)
  finished : bool;
}

(* Coverage-curve slope over the trailing [window] iterations: the
   plateau/ETA estimate the dashboard shows. The curve is ascending
   (iteration, cumulative covered). *)
let estimate ?(window = 20) ~reachable curve =
  match List.rev curve with
  | [] -> (false, -1)
  | (_, c1) :: _ when c1 >= reachable && reachable > 0 -> (false, 0)
  | (i1, c1) :: older -> (
    let rec back = function
      | [] -> None
      | (i0, c0) :: rest -> if i1 - i0 >= window then Some (i0, c0) else back rest
    in
    match back older with
    | None -> (false, -1) (* not enough history for a slope *)
    | Some (i0, c0) ->
      let gained = c1 - c0 in
      if gained <= 0 then (true, -1)
      else
        let slope = float_of_int gained /. float_of_int (i1 - i0) in
        let remaining = max 0 (reachable - c1) in
        (false, int_of_float (ceil (float_of_int remaining /. slope))))

let to_json t =
  Json.Obj
    [
      ("v", Json.Int version);
      ("target", Json.Str t.target);
      ("budget", Json.Int t.budget);
      ("rounds", Json.Int t.rounds);
      ("executed", Json.Int t.executed);
      ("covered", Json.Int t.covered);
      ("reachable", Json.Int t.reachable);
      ("bugs", Json.Int t.bugs);
      ("queue_depth", Json.Int t.queue_depth);
      ("utilization", Json.Float t.utilization);
      ("cache_hit_rate", Json.Float t.cache_hit_rate);
      ("schedule_forks", Json.Int t.schedule_forks);
      ("plateau", Json.Bool t.plateau);
      ("eta_iterations", Json.Int t.eta_iterations);
      ("finished", Json.Bool t.finished);
    ]

let of_json j =
  let str name =
    match Option.bind (Json.member name j) Json.to_str with
    | Some s -> Ok s
    | None -> Error (Printf.sprintf "missing string field %s" name)
  in
  let int name =
    match Option.bind (Json.member name j) Json.to_int with
    | Some n -> Ok n
    | None -> Error (Printf.sprintf "missing int field %s" name)
  in
  let flt name =
    match Option.bind (Json.member name j) Json.to_float with
    | Some x -> Ok x
    | None -> Error (Printf.sprintf "missing float field %s" name)
  in
  let bool name =
    match Option.bind (Json.member name j) Json.to_bool with
    | Some b -> Ok b
    | None -> Error (Printf.sprintf "missing bool field %s" name)
  in
  let ( let* ) = Result.bind in
  let* v = int "v" in
  (* forward-compat: a newer producer may add fields, never remove —
     read the v1 core regardless, refuse only when it is absent *)
  if v < 1 then Error (Printf.sprintf "bad status version %d" v)
  else
    let* target = str "target" in
    let* budget = int "budget" in
    let* rounds = int "rounds" in
    let* executed = int "executed" in
    let* covered = int "covered" in
    let* reachable = int "reachable" in
    let* bugs = int "bugs" in
    let* queue_depth = int "queue_depth" in
    let* utilization = flt "utilization" in
    let* cache_hit_rate = flt "cache_hit_rate" in
    let* schedule_forks = int "schedule_forks" in
    let* plateau = bool "plateau" in
    let* eta_iterations = int "eta_iterations" in
    let* finished = bool "finished" in
    Ok
      {
        target;
        budget;
        rounds;
        executed;
        covered;
        reachable;
        bugs;
        queue_depth;
        utilization;
        cache_hit_rate;
        schedule_forks;
        plateau;
        eta_iterations;
        finished;
      }

(* Atomic publish: write-to-temp then rename, so a concurrent reader
   sees either the previous snapshot or this one, never a torn file. *)
let publish path t =
  let tmp = path ^ ".tmp" in
  let oc = open_out tmp in
  output_string oc (Json.to_string (to_json t));
  output_char oc '\n';
  close_out oc;
  Sys.rename tmp path

let read path =
  match open_in path with
  | exception Sys_error e -> Error e
  | ic ->
    let raw = really_input_string ic (in_channel_length ic) in
    close_in ic;
    (match Json.parse (String.trim raw) with
    | Error e -> Error (Printf.sprintf "%s: %s" path e)
    | Ok j -> of_json j)
