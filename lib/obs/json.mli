(** Minimal JSON document type with an emitter and a parser.

    Deliberately dependency-free: the telemetry layer must be loadable
    from every library in the tree (smt, minic, mpisim, core) without
    creating cycles or pulling in an external JSON package. Strings are
    byte sequences; anything outside printable ASCII is passed through
    verbatim on emission (control characters are [\uXXXX]-escaped), so a
    valid-UTF-8 input stays valid UTF-8. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

val to_string : t -> string
(** Compact single-line rendering. Floats round-trip exactly
    (shortest-form [%g] checked against re-parsing); non-finite floats
    render as [null]. *)

val parse : string -> (t, string) result
(** Parse one complete JSON document. Rejects trailing garbage. *)

val member : string -> t -> t option
(** Field of an [Obj], else [None]. *)

val to_int : t -> int option
val to_float : t -> float option
(** [to_float] also accepts [Int]. *)

val to_str : t -> string option
val to_bool : t -> bool option
val to_list : t -> t list option
