(** Globally-installable JSONL sink for {!Event} emission.

    Exactly one sink is installed at a time (the engine is a single
    process; per-campaign scoping is the caller's job via
    [install]/[uninstall] or [with_sink]). With no sink — or the
    [Null_sink] — installed, [emit] is one ref read; emitting sites that
    build large events should guard with [active ()].

    [emit] may be called from any domain: writes are serialized so each
    event lands as one whole JSONL line. [install]/[uninstall] remain
    main-domain operations (per-campaign scoping, not concurrency). *)

type target =
  | Null_sink  (** counts as installed but drops everything *)
  | Buffer_sink of Buffer.t
  | Channel_sink of out_channel

val install : target -> unit
(** Replaces any previous sink (flushing it if it was a channel) and
    restarts the relative-timestamp clock. *)

val uninstall : unit -> unit
(** Flushes a channel sink. Does not close the channel — the opener
    owns it. *)

val set_autoflush : ?events:int -> ?seconds:float -> unit -> unit
(** Periodic flush policy for channel sinks, so a live consumer tailing
    the trace file sees events before the process exits. Flush after
    every [events] emissions and/or whenever [seconds] have elapsed
    since the last flush — whichever fires first. Omitting both (the
    default) disables autoflush: tests and the span-overhead microbench
    see no extra flushes. The existing [flush_now]/[at_exit]/SIGINT
    semantics are unchanged. *)

val flush_now : unit -> unit
(** Push a channel sink's buffered bytes to the OS without uninstalling
    it. No-op for other targets. Serialized against concurrent [emit]s,
    so it never tears a line; [install] registers it with [at_exit] so
    abnormal exits still leave a replayable trace. Safe to call from
    signal handlers that park the process. *)

val active : unit -> bool
(** [true] iff events are currently being written ([Null_sink] and
    no-sink both answer [false]). *)

val installed : unit -> bool
(** [true] iff any sink, including [Null_sink], is installed. *)

val emit : Event.t -> unit
(** Append one JSONL line [{"ev":…,"t":…,…}] to the active sink;
    no-op otherwise. [t] is seconds since the sink was installed. *)

val with_sink : target -> (unit -> 'a) -> 'a
(** Scoped install; restores the previously-installed sink (if any)
    afterwards. *)
