(* Globally-installable JSONL event sink. The no-sink fast path is a
   single ref read, so emitting layers may call [emit] (or guard event
   construction with [active ()]) unconditionally on hot paths.

   Emission is domain-safe: campaign worker domains emit concurrently
   (solver calls, worker/cache events), so the actual write is serialized
   under a mutex — one event is always one whole line, never interleaved
   bytes. The unlocked [is_active] fast path stays a single ref read. *)

type target = Null_sink | Buffer_sink of Buffer.t | Channel_sink of out_channel

type installed = { target : target; t0 : float }

let current : installed option ref = ref None
let is_active = ref false
let mu = Mutex.create ()

(* Park path: whatever bytes a channel sink has buffered must reach the
   OS even when the process dies without unwinding (uncaught exception,
   exit after a SIGINT park). Registered once, on the first install, so
   a crashed campaign still leaves a trace replayable up to the last
   complete line. *)
let flush_channel () =
  Mutex.lock mu;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock mu)
    (fun () ->
      match !current with
      | Some { target = Channel_sink oc; _ } -> ( try flush oc with Sys_error _ -> ())
      | Some _ | None -> ())

let at_exit_registered = ref false

(* Autoflush policy: off by default (tests and the microbench span gate
   see zero extra flushes); a live consumer turns it on so the trace
   tail reaches the filesystem while the campaign runs, not only at
   exit. Both thresholds are checked under the emit mutex, so the
   decision never races the write it accounts for. *)
let af_events : int option ref = ref None
let af_seconds : float option ref = ref None
let af_pending = ref 0
let af_last = ref 0.0

let set_autoflush ?events ?seconds () =
  Mutex.lock mu;
  af_events := events;
  af_seconds := seconds;
  af_pending := 0;
  af_last := Unix.gettimeofday ();
  Mutex.unlock mu

let install target =
  (match !current with
  | Some { target = Channel_sink oc; _ } -> flush oc
  | Some _ | None -> ());
  if not !at_exit_registered then begin
    at_exit_registered := true;
    at_exit flush_channel
  end;
  af_pending := 0;
  af_last := Unix.gettimeofday ();
  current := Some { target; t0 = Unix.gettimeofday () };
  is_active := (match target with Null_sink -> false | Buffer_sink _ | Channel_sink _ -> true)

let uninstall () =
  (match !current with
  | Some { target = Channel_sink oc; _ } -> flush oc
  | Some _ | None -> ());
  current := None;
  is_active := false

let flush_now = flush_channel

let active () = !is_active

let installed () = Option.is_some !current

let emit ev =
  if !is_active then
    match !current with
    | None -> ()
    | Some { target; t0 } -> (
      let line = Json.to_string (Event.to_json ~t:(Unix.gettimeofday () -. t0) ev) in
      Mutex.lock mu;
      Fun.protect
        ~finally:(fun () -> Mutex.unlock mu)
        (fun () ->
          match target with
          | Null_sink -> ()
          | Buffer_sink buf ->
            Buffer.add_string buf line;
            Buffer.add_char buf '\n'
          | Channel_sink oc ->
            output_string oc line;
            output_char oc '\n';
            if !af_events <> None || !af_seconds <> None then begin
              af_pending := !af_pending + 1;
              let due_count =
                match !af_events with Some n -> !af_pending >= n | None -> false
              in
              let due_time =
                match !af_seconds with
                | Some s -> Unix.gettimeofday () -. !af_last >= s
                | None -> false
              in
              if due_count || due_time then begin
                (try flush oc with Sys_error _ -> ());
                af_pending := 0;
                af_last := Unix.gettimeofday ()
              end
            end))

let with_sink target f =
  let saved = !current in
  install target;
  Fun.protect
    ~finally:(fun () ->
      uninstall ();
      match saved with
      | Some { target; _ } -> install target
      | None -> ())
    f
