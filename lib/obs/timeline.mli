(** Per-domain span buffers: the low-overhead timing layer of the
    performance observatory.

    Every domain appends (kind, begin, end) spans to its own fixed-size
    chunk list — no lock, no reallocation on the hot path — and the main
    domain periodically {!drain}s all buffers into the global {!Sink}
    as [span] events. Ticks are integer nanoseconds since {!enable}.

    When the timeline is off (the default), {!span} is a single ref
    read before a tail call of its argument — zero allocation — and
    {!record} is a no-op, so instrumentation can stay in place
    unconditionally on hot paths. *)

val enable : unit -> unit
(** Start the clock (tick 0 = now) and discard undrained spans. Call on
    the main domain before worker domains spawn, so every domain shares
    the epoch. *)

val disable : unit -> unit

val on : unit -> bool
(** One ref read; guard hand-rolled instrumentation with this. *)

val tick : unit -> int
(** Nanoseconds since {!enable}. Meaningless (but harmless) when off —
    callers on hot paths should guard with {!on} to skip the clock
    read. *)

val span : string -> (unit -> 'a) -> 'a
(** [span kind f] runs [f] and, when enabled, records its extent as one
    [kind] span on the calling domain. Exception-safe: a raising [f]
    still records. Disabled, this is exactly [f ()]. *)

val record : kind:string -> t0:int -> t1:int -> unit
(** Record a span from explicit {!tick} readings — for intervals a
    closure cannot wrap, like a mutex acquisition. No-op when off. *)

val set_domain : int -> unit
(** Set the calling domain's reporting id (the pool worker index; the
    main domain defaults to 0). *)

val drain : unit -> unit
(** Emit every undrained span of every domain to the {!Sink} as
    {!Event.Span} lines. Main-domain only; safe while workers are
    parked at a pool barrier (recording and draining never touch the
    same entry). *)

val pending : unit -> int
(** Spans recorded but not yet drained, across all domains. *)
