(** Live campaign status snapshot.

    The campaign engine publishes one of these (atomically: temp file +
    rename) at every merge point when a status file is configured;
    [compi-cli status] and [compi-cli watch] read it back. The document
    is a single flat JSON object with a version field, so a newer
    producer can add fields without breaking an older reader — the v1
    core is always readable. *)

val version : int
(** Schema version this build writes (1). *)

type t = {
  target : string;
  budget : int;  (** iteration budget of the run *)
  rounds : int;  (** merge rounds completed *)
  executed : int;  (** iteration ids assigned (merged executions) *)
  covered : int;
  reachable : int;
  bugs : int;
  queue_depth : int;  (** peak claimed-but-unmerged pipeline depth *)
  utilization : float;  (** worker busy time / (wall × jobs), in [0, 1] *)
  cache_hit_rate : float;  (** solver-cache hits / probes, 0 when off *)
  schedule_forks : int;  (** alternative schedules enumerated so far *)
  plateau : bool;  (** no coverage gained over the trailing window *)
  eta_iterations : int;
      (** iterations to full reachable coverage at the current
          coverage-curve slope; -1 when no estimate is possible, 0 when
          already fully covered *)
  finished : bool;  (** the campaign wrote its final snapshot *)
}

val estimate : ?window:int -> reachable:int -> (int * int) list -> bool * int
(** [(plateau, eta_iterations)] from an ascending coverage curve
    [(iteration, covered)]: the slope over the trailing [window]
    (default 20) iterations extrapolated to [reachable]. A window with
    zero gain is a plateau; too little history gives [(false, -1)]. *)

val to_json : t -> Json.t

val of_json : Json.t -> (t, string) result
(** Reads the v1 core fields; extra fields from newer producers are
    ignored. *)

val publish : string -> t -> unit
(** Atomic write: the snapshot is written to [path ^ ".tmp"] and
    renamed over [path], so a concurrent reader never sees a torn
    document. *)

val read : string -> (t, string) result
