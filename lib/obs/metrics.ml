(* Process-wide registry of named counters, gauges, and log-scale
   histograms. Creation is idempotent (a name resolves to one instance
   for the process lifetime), so hot modules bind their instruments at
   init time and pay one mutable-field update per observation. [reset]
   zeroes values in place — instrument handles cached by other modules
   stay valid across resets.

   Observations are domain-safe: campaign workers bump counters and
   histograms concurrently, so every update takes a (process-wide,
   uncontended in the common case) mutex — lost updates would silently
   skew cache hit rates and solver accounting. *)

let mu = Mutex.create ()

let locked f =
  Mutex.lock mu;
  Fun.protect ~finally:(fun () -> Mutex.unlock mu) f

type counter = { mutable c : int }
type gauge = { mutable g : float }

(* Histogram buckets are powers of two: bucket 0 collects v <= 0, bucket
   i >= 1 collects 2^(emin+i-1) <= v < 2^(emin+i). The exponent range
   [emin, emax] spans nanoseconds-in-seconds (2^-30 ~ 1e-9) up past
   float max_int (2^62), so both solver latencies and step counts fit
   without configuration. *)
let emin = -30
let emax = 63
let n_buckets = emax - emin + 2

type histogram = {
  mutable count : int;
  mutable sum : float;
  mutable vmin : float;
  mutable vmax : float;
  buckets : int array;
}

type metric = Counter of counter | Gauge of gauge | Histogram of histogram

let registry : (string, metric) Hashtbl.t = Hashtbl.create 32

let kind_name = function
  | Counter _ -> "counter"
  | Gauge _ -> "gauge"
  | Histogram _ -> "histogram"

let register name make =
  locked (fun () ->
      match Hashtbl.find_opt registry name with
      | Some m -> m
      | None ->
        let m = make () in
        Hashtbl.replace registry name m;
        m)

let counter name =
  match register name (fun () -> Counter { c = 0 }) with
  | Counter c -> c
  | m -> invalid_arg (Printf.sprintf "metric %s is a %s, not a counter" name (kind_name m))

let gauge name =
  match register name (fun () -> Gauge { g = 0.0 }) with
  | Gauge g -> g
  | m -> invalid_arg (Printf.sprintf "metric %s is a %s, not a gauge" name (kind_name m))

let fresh_histogram () =
  {
    count = 0;
    sum = 0.0;
    vmin = Float.infinity;
    vmax = Float.neg_infinity;
    buckets = Array.make n_buckets 0;
  }

let histogram name =
  match register name (fun () -> Histogram (fresh_histogram ())) with
  | Histogram h -> h
  | m ->
    invalid_arg (Printf.sprintf "metric %s is a %s, not a histogram" name (kind_name m))

let incr ?(by = 1) c = locked (fun () -> c.c <- c.c + by)
let value c = c.c
let set g x = locked (fun () -> g.g <- x)
let gauge_value g = g.g

let bucket_index v =
  if not (v > 0.0) then 0
  else
    let e = int_of_float (Float.floor (Float.log2 v)) in
    let e = if e < emin then emin else if e > emax then emax else e in
    e - emin + 1

let bucket_bounds i =
  if i = 0 then (Float.neg_infinity, 0.0)
  else (Float.pow 2.0 (float_of_int (emin + i - 1)), Float.pow 2.0 (float_of_int (emin + i)))

let observe h v =
  locked (fun () ->
      h.count <- h.count + 1;
      h.sum <- h.sum +. v;
      if v < h.vmin then h.vmin <- v;
      if v > h.vmax then h.vmax <- v;
      let i = bucket_index v in
      h.buckets.(i) <- h.buckets.(i) + 1)

let observe_int h n = observe h (float_of_int n)
let histogram_count h = h.count
let histogram_sum h = h.sum

let reset () =
  locked (fun () ->
      Hashtbl.iter
        (fun _ m ->
          match m with
          | Counter c -> c.c <- 0
          | Gauge g -> g.g <- 0.0
          | Histogram h ->
            h.count <- 0;
            h.sum <- 0.0;
            h.vmin <- Float.infinity;
            h.vmax <- Float.neg_infinity;
            Array.fill h.buckets 0 n_buckets 0)
        registry)

let histogram_json h =
  let buckets = ref [] in
  for i = n_buckets - 1 downto 0 do
    if h.buckets.(i) > 0 then begin
      let lo, hi = bucket_bounds i in
      buckets :=
        Json.Obj
          [
            ("lo", if Float.is_finite lo then Json.Float lo else Json.Null);
            ("hi", Json.Float hi);
            ("n", Json.Int h.buckets.(i));
          ]
        :: !buckets
    end
  done;
  Json.Obj
    [
      ("type", Json.Str "histogram");
      ("count", Json.Int h.count);
      ("sum", Json.Float h.sum);
      ("mean", Json.Float (if h.count = 0 then 0.0 else h.sum /. float_of_int h.count));
      ("min", if h.count = 0 then Json.Null else Json.Float h.vmin);
      ("max", if h.count = 0 then Json.Null else Json.Float h.vmax);
      ("buckets", Json.List !buckets);
    ]

let snapshot_json () =
  let metrics =
    Hashtbl.fold
      (fun name m acc ->
        let j =
          match m with
          | Counter c -> Json.Int c.c
          | Gauge g -> Json.Float g.g
          | Histogram h -> histogram_json h
        in
        (name, j) :: acc)
      registry []
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)
  in
  Json.Obj [ ("metrics", Json.Obj metrics); ("phases", Prof.snapshot_json ()) ]
