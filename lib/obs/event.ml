type solver_outcome = Sat | Unsat | Unknown

let outcome_name = function Sat -> "sat" | Unsat -> "unsat" | Unknown -> "unknown"

let outcome_of_name = function
  | "sat" -> Some Sat
  | "unsat" -> Some Unsat
  | "unknown" -> Some Unknown
  | _ -> None

type t =
  | Campaign_start of { target : string; iterations : int; seed : int; nprocs : int }
  | Compile of { target : string; funcs : int; conds : int; slots : int; time_s : float }
  | Campaign_end of {
      iterations_run : int;
      covered : int;
      reachable : int;
      bugs : int;
      wall_s : float;
    }
  | Iter_start of { iteration : int; nprocs : int; focus : int }
  | Iter_end of {
      iteration : int;
      covered : int;
      reachable : int;
      cs_size : int;
      faults : int;
      restarted : bool;
      exec_s : float;
      solve_s : float;
    }
  | Solver_call of {
      incremental : bool;
      outcome : solver_outcome;
      nodes : int;
      vars : int;
      constraints : int;
      time_s : float;
    }
  | Negation of { iteration : int; index : int; sat : bool }
  | Restart of { iteration : int; reason : string }
  | Sched_step of { kind : string; rank : int; comm : int; detail : string }
  | Sched_deadlock of { ranks : int list }
  | Fault of { iteration : int; rank : int; kind : string; detail : string }
  | Coverage_delta of { iteration : int; covered_before : int; covered_after : int }
  | Worker_spawn of { worker : int }
  | Worker_task of { worker : int; task : int; time_s : float }
  | Worker_exit of { worker : int; tasks : int }
  | Cache_lookup of { hit : bool; constraints : int; entries : int }
  | Cache_evict of { dropped : int; entries : int }
  | Checkpoint_write of { iteration : int; path : string; bytes : int }
  | Checkpoint_load of { iteration : int; path : string }
  | Lineage_test of {
      test : int;
      parent : int;
      origin : string;
      branch : int;
      index : int;
      cached : bool;
    }
  | Lineage_negation of {
      parent : int;
      index : int;
      branch : int;
      outcome : solver_outcome;
      cached : bool;
    }
  | Msg_matched of { src : int; dst : int; comm : int; tag : int }
  | Coll_done of { comm : int; signature : string; ranks : int list }
  | Rank_blocked of { rank : int; comm : int; kind : string; peer : int }
  | Deadlock_witness of { rank : int; comm : int; kind : string; peer : int }
  | Schedule_choice of {
      rank : int;
      comm : int;
      tag : int;
      chosen : int;
      alts : int list;
      point : int;
    }
  | Schedule_enum of { parent : int; points : int; emitted : int; pruned : int }
  | Span of { domain : int; kind : string; t0 : int; t1 : int }
  | Status_snapshot of {
      rounds : int;
      executed : int;
      covered : int;
      reachable : int;
      bugs : int;
      queue : int;
      path : string;
    }
  | Ledger_append of { path : string; run : string; covered : int; reachable : int; bugs : int }

let kind_name = function
  | Campaign_start _ -> "campaign_start"
  | Compile _ -> "compile"
  | Campaign_end _ -> "campaign_end"
  | Iter_start _ -> "iter_start"
  | Iter_end _ -> "iter_end"
  | Solver_call _ -> "solver_call"
  | Negation _ -> "negation"
  | Restart _ -> "restart"
  | Sched_step _ -> "sched_step"
  | Sched_deadlock _ -> "sched_deadlock"
  | Fault _ -> "fault"
  | Coverage_delta _ -> "coverage_delta"
  | Worker_spawn _ -> "worker_spawn"
  | Worker_task _ -> "worker_task"
  | Worker_exit _ -> "worker_exit"
  | Cache_lookup _ -> "cache_lookup"
  | Cache_evict _ -> "cache_evict"
  | Checkpoint_write _ -> "checkpoint_write"
  | Checkpoint_load _ -> "checkpoint_load"
  | Lineage_test _ -> "lineage_test"
  | Lineage_negation _ -> "lineage_negation"
  | Msg_matched _ -> "msg_matched"
  | Coll_done _ -> "coll_done"
  | Rank_blocked _ -> "rank_blocked"
  | Deadlock_witness _ -> "deadlock_witness"
  | Schedule_choice _ -> "schedule_choice"
  | Schedule_enum _ -> "schedule_enum"
  | Span _ -> "span"
  | Status_snapshot _ -> "status_snapshot"
  | Ledger_append _ -> "ledger_append"

let fields = function
  | Campaign_start { target; iterations; seed; nprocs } ->
    [
      ("target", Json.Str target);
      ("iterations", Json.Int iterations);
      ("seed", Json.Int seed);
      ("nprocs", Json.Int nprocs);
    ]
  | Compile { target; funcs; conds; slots; time_s } ->
    [
      ("target", Json.Str target);
      ("funcs", Json.Int funcs);
      ("conds", Json.Int conds);
      ("slots", Json.Int slots);
      ("time_s", Json.Float time_s);
    ]
  | Campaign_end { iterations_run; covered; reachable; bugs; wall_s } ->
    [
      ("iterations_run", Json.Int iterations_run);
      ("covered", Json.Int covered);
      ("reachable", Json.Int reachable);
      ("bugs", Json.Int bugs);
      ("wall_s", Json.Float wall_s);
    ]
  | Iter_start { iteration; nprocs; focus } ->
    [
      ("iteration", Json.Int iteration);
      ("nprocs", Json.Int nprocs);
      ("focus", Json.Int focus);
    ]
  | Iter_end { iteration; covered; reachable; cs_size; faults; restarted; exec_s; solve_s }
    ->
    [
      ("iteration", Json.Int iteration);
      ("covered", Json.Int covered);
      ("reachable", Json.Int reachable);
      ("cs_size", Json.Int cs_size);
      ("faults", Json.Int faults);
      ("restarted", Json.Bool restarted);
      ("exec_s", Json.Float exec_s);
      ("solve_s", Json.Float solve_s);
    ]
  | Solver_call { incremental; outcome; nodes; vars; constraints; time_s } ->
    [
      ("incremental", Json.Bool incremental);
      ("outcome", Json.Str (outcome_name outcome));
      ("nodes", Json.Int nodes);
      ("vars", Json.Int vars);
      ("constraints", Json.Int constraints);
      ("time_s", Json.Float time_s);
    ]
  | Negation { iteration; index; sat } ->
    [ ("iteration", Json.Int iteration); ("index", Json.Int index); ("sat", Json.Bool sat) ]
  | Restart { iteration; reason } ->
    [ ("iteration", Json.Int iteration); ("reason", Json.Str reason) ]
  | Sched_step { kind; rank; comm; detail } ->
    [
      ("kind", Json.Str kind);
      ("rank", Json.Int rank);
      ("comm", Json.Int comm);
      ("detail", Json.Str detail);
    ]
  | Sched_deadlock { ranks } ->
    [ ("ranks", Json.List (List.map (fun r -> Json.Int r) ranks)) ]
  | Fault { iteration; rank; kind; detail } ->
    [
      ("iteration", Json.Int iteration);
      ("rank", Json.Int rank);
      ("kind", Json.Str kind);
      ("detail", Json.Str detail);
    ]
  | Coverage_delta { iteration; covered_before; covered_after } ->
    [
      ("iteration", Json.Int iteration);
      ("covered_before", Json.Int covered_before);
      ("covered_after", Json.Int covered_after);
    ]
  | Worker_spawn { worker } -> [ ("worker", Json.Int worker) ]
  | Worker_task { worker; task; time_s } ->
    [
      ("worker", Json.Int worker);
      ("task", Json.Int task);
      ("time_s", Json.Float time_s);
    ]
  | Worker_exit { worker; tasks } ->
    [ ("worker", Json.Int worker); ("tasks", Json.Int tasks) ]
  | Cache_lookup { hit; constraints; entries } ->
    [
      ("hit", Json.Bool hit);
      ("constraints", Json.Int constraints);
      ("entries", Json.Int entries);
    ]
  | Cache_evict { dropped; entries } ->
    [ ("dropped", Json.Int dropped); ("entries", Json.Int entries) ]
  | Checkpoint_write { iteration; path; bytes } ->
    [
      ("iteration", Json.Int iteration);
      ("path", Json.Str path);
      ("bytes", Json.Int bytes);
    ]
  | Checkpoint_load { iteration; path } ->
    [ ("iteration", Json.Int iteration); ("path", Json.Str path) ]
  | Lineage_test { test; parent; origin; branch; index; cached } ->
    [
      ("test", Json.Int test);
      ("parent", Json.Int parent);
      ("origin", Json.Str origin);
      ("branch", Json.Int branch);
      ("index", Json.Int index);
      ("cached", Json.Bool cached);
    ]
  | Lineage_negation { parent; index; branch; outcome; cached } ->
    [
      ("parent", Json.Int parent);
      ("index", Json.Int index);
      ("branch", Json.Int branch);
      ("outcome", Json.Str (outcome_name outcome));
      ("cached", Json.Bool cached);
    ]
  | Msg_matched { src; dst; comm; tag } ->
    [
      ("src", Json.Int src);
      ("dst", Json.Int dst);
      ("comm", Json.Int comm);
      ("tag", Json.Int tag);
    ]
  | Coll_done { comm; signature; ranks } ->
    [
      ("comm", Json.Int comm);
      ("signature", Json.Str signature);
      ("ranks", Json.List (List.map (fun r -> Json.Int r) ranks));
    ]
  | Rank_blocked { rank; comm; kind; peer } ->
    [
      ("rank", Json.Int rank);
      ("comm", Json.Int comm);
      ("kind", Json.Str kind);
      ("peer", Json.Int peer);
    ]
  | Deadlock_witness { rank; comm; kind; peer } ->
    [
      ("rank", Json.Int rank);
      ("comm", Json.Int comm);
      ("kind", Json.Str kind);
      ("peer", Json.Int peer);
    ]
  | Schedule_choice { rank; comm; tag; chosen; alts; point } ->
    [
      ("rank", Json.Int rank);
      ("comm", Json.Int comm);
      ("tag", Json.Int tag);
      ("chosen", Json.Int chosen);
      ("alts", Json.List (List.map (fun r -> Json.Int r) alts));
      ("point", Json.Int point);
    ]
  | Schedule_enum { parent; points; emitted; pruned } ->
    [
      ("parent", Json.Int parent);
      ("points", Json.Int points);
      ("emitted", Json.Int emitted);
      ("pruned", Json.Int pruned);
    ]
  | Span { domain; kind; t0; t1 } ->
    [
      ("domain", Json.Int domain);
      ("kind", Json.Str kind);
      ("t0", Json.Int t0);
      ("t1", Json.Int t1);
    ]
  | Status_snapshot { rounds; executed; covered; reachable; bugs; queue; path } ->
    [
      ("rounds", Json.Int rounds);
      ("executed", Json.Int executed);
      ("covered", Json.Int covered);
      ("reachable", Json.Int reachable);
      ("bugs", Json.Int bugs);
      ("queue", Json.Int queue);
      ("path", Json.Str path);
    ]
  | Ledger_append { path; run; covered; reachable; bugs } ->
    [
      ("path", Json.Str path);
      ("run", Json.Str run);
      ("covered", Json.Int covered);
      ("reachable", Json.Int reachable);
      ("bugs", Json.Int bugs);
    ]

let to_json ?t ev =
  let time_field = match t with Some x -> [ ("t", Json.Float x) ] | None -> [] in
  Json.Obj ((("ev", Json.Str (kind_name ev)) :: time_field) @ fields ev)

(* Field accessors that fail with a descriptive message: of_json is used
   by `compi-cli replay` on user-supplied files. *)
let of_json j =
  let str name =
    match Option.bind (Json.member name j) Json.to_str with
    | Some s -> Ok s
    | None -> Error (Printf.sprintf "missing string field %s" name)
  in
  let int name =
    match Option.bind (Json.member name j) Json.to_int with
    | Some n -> Ok n
    | None -> Error (Printf.sprintf "missing int field %s" name)
  in
  let flt name =
    match Option.bind (Json.member name j) Json.to_float with
    | Some x -> Ok x
    | None -> Error (Printf.sprintf "missing float field %s" name)
  in
  let bool name =
    match Option.bind (Json.member name j) Json.to_bool with
    | Some b -> Ok b
    | None -> Error (Printf.sprintf "missing bool field %s" name)
  in
  let ( let* ) = Result.bind in
  let* ev = str "ev" in
  match ev with
  | "campaign_start" ->
    let* target = str "target" in
    let* iterations = int "iterations" in
    let* seed = int "seed" in
    let* nprocs = int "nprocs" in
    Ok (Campaign_start { target; iterations; seed; nprocs })
  | "compile" ->
    let* target = str "target" in
    let* funcs = int "funcs" in
    let* conds = int "conds" in
    let* slots = int "slots" in
    let* time_s = flt "time_s" in
    Ok (Compile { target; funcs; conds; slots; time_s })
  | "campaign_end" ->
    let* iterations_run = int "iterations_run" in
    let* covered = int "covered" in
    let* reachable = int "reachable" in
    let* bugs = int "bugs" in
    let* wall_s = flt "wall_s" in
    Ok (Campaign_end { iterations_run; covered; reachable; bugs; wall_s })
  | "iter_start" ->
    let* iteration = int "iteration" in
    let* nprocs = int "nprocs" in
    let* focus = int "focus" in
    Ok (Iter_start { iteration; nprocs; focus })
  | "iter_end" ->
    let* iteration = int "iteration" in
    let* covered = int "covered" in
    let* reachable = int "reachable" in
    let* cs_size = int "cs_size" in
    let* faults = int "faults" in
    let* restarted = bool "restarted" in
    let* exec_s = flt "exec_s" in
    let* solve_s = flt "solve_s" in
    Ok (Iter_end { iteration; covered; reachable; cs_size; faults; restarted; exec_s; solve_s })
  | "solver_call" ->
    let* incremental = bool "incremental" in
    let* outcome_s = str "outcome" in
    let* outcome =
      match outcome_of_name outcome_s with
      | Some o -> Ok o
      | None -> Error (Printf.sprintf "bad solver outcome %s" outcome_s)
    in
    let* nodes = int "nodes" in
    let* vars = int "vars" in
    let* constraints = int "constraints" in
    let* time_s = flt "time_s" in
    Ok (Solver_call { incremental; outcome; nodes; vars; constraints; time_s })
  | "negation" ->
    let* iteration = int "iteration" in
    let* index = int "index" in
    let* sat = bool "sat" in
    Ok (Negation { iteration; index; sat })
  | "restart" ->
    let* iteration = int "iteration" in
    let* reason = str "reason" in
    Ok (Restart { iteration; reason })
  | "sched_step" ->
    let* kind = str "kind" in
    let* rank = int "rank" in
    let* comm = int "comm" in
    let* detail = str "detail" in
    Ok (Sched_step { kind; rank; comm; detail })
  | "sched_deadlock" -> (
    match Option.bind (Json.member "ranks" j) Json.to_list with
    | None -> Error "missing list field ranks"
    | Some xs -> (
      let ranks = List.filter_map Json.to_int xs in
      if List.length ranks = List.length xs then Ok (Sched_deadlock { ranks })
      else Error "non-integer rank in ranks"))
  | "fault" ->
    let* iteration = int "iteration" in
    let* rank = int "rank" in
    let* kind = str "kind" in
    let* detail = str "detail" in
    Ok (Fault { iteration; rank; kind; detail })
  | "coverage_delta" ->
    let* iteration = int "iteration" in
    let* covered_before = int "covered_before" in
    let* covered_after = int "covered_after" in
    Ok (Coverage_delta { iteration; covered_before; covered_after })
  | "worker_spawn" ->
    let* worker = int "worker" in
    Ok (Worker_spawn { worker })
  | "worker_task" ->
    let* worker = int "worker" in
    let* task = int "task" in
    let* time_s = flt "time_s" in
    Ok (Worker_task { worker; task; time_s })
  | "worker_exit" ->
    let* worker = int "worker" in
    let* tasks = int "tasks" in
    Ok (Worker_exit { worker; tasks })
  | "cache_lookup" ->
    let* hit = bool "hit" in
    let* constraints = int "constraints" in
    let* entries = int "entries" in
    Ok (Cache_lookup { hit; constraints; entries })
  | "cache_evict" ->
    let* dropped = int "dropped" in
    let* entries = int "entries" in
    Ok (Cache_evict { dropped; entries })
  | "checkpoint_write" ->
    let* iteration = int "iteration" in
    let* path = str "path" in
    let* bytes = int "bytes" in
    Ok (Checkpoint_write { iteration; path; bytes })
  | "checkpoint_load" ->
    let* iteration = int "iteration" in
    let* path = str "path" in
    Ok (Checkpoint_load { iteration; path })
  | "lineage_test" ->
    let* test = int "test" in
    let* parent = int "parent" in
    let* origin = str "origin" in
    let* branch = int "branch" in
    let* index = int "index" in
    let* cached = bool "cached" in
    Ok (Lineage_test { test; parent; origin; branch; index; cached })
  | "lineage_negation" ->
    let* parent = int "parent" in
    let* index = int "index" in
    let* branch = int "branch" in
    let* outcome_s = str "outcome" in
    let* outcome =
      match outcome_of_name outcome_s with
      | Some o -> Ok o
      | None -> Error (Printf.sprintf "bad solver outcome %s" outcome_s)
    in
    let* cached = bool "cached" in
    Ok (Lineage_negation { parent; index; branch; outcome; cached })
  | "msg_matched" ->
    let* src = int "src" in
    let* dst = int "dst" in
    let* comm = int "comm" in
    let* tag = int "tag" in
    Ok (Msg_matched { src; dst; comm; tag })
  | "coll_done" -> (
    let* comm = int "comm" in
    let* signature = str "signature" in
    match Option.bind (Json.member "ranks" j) Json.to_list with
    | None -> Error "missing list field ranks"
    | Some xs ->
      let ranks = List.filter_map Json.to_int xs in
      if List.length ranks = List.length xs then Ok (Coll_done { comm; signature; ranks })
      else Error "non-integer rank in ranks")
  | "rank_blocked" ->
    let* rank = int "rank" in
    let* comm = int "comm" in
    let* kind = str "kind" in
    let* peer = int "peer" in
    Ok (Rank_blocked { rank; comm; kind; peer })
  | "deadlock_witness" ->
    let* rank = int "rank" in
    let* comm = int "comm" in
    let* kind = str "kind" in
    let* peer = int "peer" in
    Ok (Deadlock_witness { rank; comm; kind; peer })
  | "schedule_choice" -> (
    let* rank = int "rank" in
    let* comm = int "comm" in
    let* tag = int "tag" in
    let* chosen = int "chosen" in
    let* point = int "point" in
    match Option.bind (Json.member "alts" j) Json.to_list with
    | None -> Error "missing list field alts"
    | Some xs ->
      let alts = List.filter_map Json.to_int xs in
      if List.length alts = List.length xs then
        Ok (Schedule_choice { rank; comm; tag; chosen; alts; point })
      else Error "non-integer source in alts")
  | "schedule_enum" ->
    let* parent = int "parent" in
    let* points = int "points" in
    let* emitted = int "emitted" in
    let* pruned = int "pruned" in
    Ok (Schedule_enum { parent; points; emitted; pruned })
  | "span" ->
    let* domain = int "domain" in
    let* kind = str "kind" in
    let* t0 = int "t0" in
    let* t1 = int "t1" in
    Ok (Span { domain; kind; t0; t1 })
  | "status_snapshot" ->
    let* rounds = int "rounds" in
    let* executed = int "executed" in
    let* covered = int "covered" in
    let* reachable = int "reachable" in
    let* bugs = int "bugs" in
    let* queue = int "queue" in
    let* path = str "path" in
    Ok (Status_snapshot { rounds; executed; covered; reachable; bugs; queue; path })
  | "ledger_append" ->
    let* path = str "path" in
    let* run = str "run" in
    let* covered = int "covered" in
    let* reachable = int "reachable" in
    let* bugs = int "bugs" in
    Ok (Ledger_append { path; run; covered; reachable; bugs })
  | other -> Error (Printf.sprintf "unknown event kind %s" other)
