(** Nestable wall-time phase timers: the per-phase breakdown
    ([exec] / [solve] / [schedule] / [strategy] / [report]) behind the
    metrics snapshot.

    Process-wide, main-domain only: called off the main domain (a
    campaign worker), [time] runs its argument untimed rather than
    corrupt the shared frame stack. Timers nest: a phase entered inside
    another contributes to both phases' [total_s], while [self_s]
    excludes time spent in nested phases. *)

val time : string -> (unit -> 'a) -> 'a
(** [time phase f] runs [f] and charges its wall time to [phase].
    Exception-safe; re-entrant (recursive phases accumulate). When the
    {!Timeline} is enabled, additionally records a [phase] span on the
    calling domain — on worker domains too, where the phase-total
    accounting itself is skipped. *)

val totals : unit -> (string * float * float * int) list
(** [(phase, total_s, self_s, count)] sorted by phase name. *)

val total : string -> float
(** Accumulated total seconds for one phase (0 if never entered). *)

val reset : unit -> unit

val snapshot_json : unit -> Json.t
(** [{"phase": {"total_s":…,"self_s":…,"count":…}, …}] *)
