(** Constraints over linear integer expressions: [e rel 0].

    Path constraints recorded by the concolic engine and the inherent
    MPI-semantics constraints of COMPI (section III-B of the paper) are
    all of this form. *)

type rel = Eq | Ne | Lt | Le | Gt | Ge

type t = { exp : Linexp.t; rel : rel }

val make : Linexp.t -> rel -> t

val cmp : Linexp.t -> rel -> Linexp.t -> t
(** [cmp a rel b] is the constraint [a rel b], stored as [a - b rel 0]. *)

val negate : t -> t
(** Logical negation: [not (e < 0)] is [e >= 0], etc. *)

val holds : (Varid.t -> int) -> t -> bool
(** [holds lookup c] evaluates [c] under a concrete assignment. *)

val vars : t -> Varid.Set.t

val trivial : t -> bool option
(** [trivial c] is [Some b] when [c] mentions no variable and evaluates
    to [b]; [None] otherwise. *)

val normalize : t -> [ `Constr of t | `True | `False ]
(** Divide through by the gcd of the coefficients, tightening integer
    inequalities ([2x <= 5] becomes [x <= 2]) and deciding divisibility
    for (dis)equalities ([2x = 5] is [`False], [2x <> 5] is [`True]).
    Solution sets over the integers are preserved exactly. *)

val equal : t -> t -> bool
val compare : t -> t -> int

val hash : t -> int
(** Structural hash consistent with [equal] (see {!Linexp.hash}). *)

val pp : Format.formatter -> t -> unit
val rel_to_string : rel -> string

val dependency_closure : seed:Varid.Set.t -> t list -> t list * Varid.Set.t
(** [dependency_closure ~seed cs] returns the subset of [cs] transitively
    sharing a variable with [seed], together with all variables those
    constraints mention. This is the unit of work for incremental solving:
    only the closure of the negated constraint is re-solved, all other
    variables keep their previous (stale) values — the property COMPI's
    conflict resolution relies on (section III-C). *)
