(** Linear integer expressions [sum_i c_i * x_i + k].

    This is the only expression form the symbolic shadow ever produces:
    CREST-style concolic execution concretizes every non-linear operation,
    so the solver (like Yices in the original COMPI) only needs linear
    integer arithmetic. *)

type t

val const : int -> t
val var : Varid.t -> t

val of_terms : (int * Varid.t) list -> int -> t
(** [of_terms [(c0, x0); ...] k] builds [c0*x0 + ... + k]. Zero
    coefficients are dropped; repeated variables are summed. *)

val add : t -> t -> t
val sub : t -> t -> t
val neg : t -> t
val scale : int -> t -> t
val add_const : int -> t -> t

val is_const : t -> int option
(** [is_const e] is [Some k] iff [e] mentions no variable. *)

val coeff : Varid.t -> t -> int
(** Coefficient of a variable (0 if absent). *)

val constant : t -> int
(** The constant term [k]. *)

val terms : t -> (int * Varid.t) list
(** Non-zero terms in increasing variable order. *)

val vars : t -> Varid.Set.t
val mem : Varid.t -> t -> bool

val eval : (Varid.t -> int) -> t -> int
(** [eval lookup e] evaluates [e] under the assignment [lookup]. *)

val equal : t -> t -> bool
val compare : t -> t -> int

val hash : t -> int
(** Structural hash, consistent with [equal] — the basis of the solver
    cache's canonical constraint keys. *)

val pp : Format.formatter -> t -> unit
