(** Finite-domain solver for linear integer constraints.

    Stands in for the Yices SMT solver used by CREST/COMPI. Two entry
    points matter:

    - {!solve} decides a full constraint set (interval propagation to a
      fixpoint, then complete search by endpoint enumeration and domain
      splitting, under a node budget);
    - {!solve_incremental} reproduces Yices' incremental-solving property
      that COMPI exploits (paper section III-C): only the dependency
      closure of the negated constraint is re-solved, every other
      variable keeps its previous (stale) value, and the caller learns
      exactly which variables were re-solved and which changed. *)

type outcome =
  | Sat of Model.t
  | Unsat
  | Unknown  (** node budget exhausted before a decision *)

val default_budget : int

val solve :
  ?budget:int ->
  ?domains:Domain.t Varid.Map.t ->
  ?prefer:Model.t ->
  Constr.t list ->
  outcome
(** [solve cs] finds a model of [cs] over the variables appearing in
    [cs]. [domains] supplies per-variable intervals (default
    {!Domain.full}); [prefer] biases the search to keep previous values
    when possible. The returned model binds exactly the variables of
    [cs]. *)

type incremental_result = {
  model : Model.t;  (** merged model: re-solved variables over [prev] *)
  fresh : Model.t;
      (** the re-solved bindings alone, before merging with [prev] —
          what the solver cache stores and replays (CREST-style
          counterexample caching) *)
  resolved : Varid.Set.t;  (** variables the solver actually re-solved *)
  changed : Varid.Set.t;
      (** re-solved variables whose value differs from [prev] — COMPI's
          "most up-to-date" values *)
}

val solve_incremental :
  ?budget:int ->
  ?domains:Domain.t Varid.Map.t ->
  ?canonical:bool ->
  prev:Model.t ->
  target:Constr.t ->
  Constr.t list ->
  (incremental_result, [ `Unsat | `Unknown ]) Stdlib.result
(** [solve_incremental ~prev ~target cs] solves the dependency closure of
    [target] within [cs] (which must already contain [target], i.e. the
    negated constraint plus its path prefix and the inherent MPI
    constraints). Variables outside the closure keep their binding in
    [prev].

    By default the search prefers the bindings in [prev] (CREST's
    keep-previous-values heuristic), so the model found depends on
    [prev]. With [~canonical:true] the closure is canonicalized
    (sorted, deduplicated) and solved with {e no} preference model: the
    verdict and the [fresh] bindings are then a pure function of the
    closure set and [domains] — the invariant {!Cache} replay relies
    on. [prev] still supplies the values of out-of-closure variables in
    [model] and the baseline for [changed]. *)

val solve_prepared :
  ?budget:int ->
  ?domains:Domain.t Varid.Map.t ->
  prev:Model.t ->
  closure:Constr.t list ->
  vars:Varid.Set.t ->
  unit ->
  (incremental_result, [ `Unsat | `Unknown ]) Stdlib.result
(** Exactly [solve_incremental ~canonical:true], for a caller that has
    already computed the canonical closure and its variable set — e.g.
    while building the {!Cache} key for the same solve. [closure] must
    be the sorted, deduplicated dependency closure of the negated
    constraint ({!Cache.key_constrs} of its key) and [vars] the
    variables that closure mentions; given those, the verdict is
    identical to the canonical entry point's, with no second closure
    traversal or sort. The cache-on campaign path uses this so a miss
    costs one canonicalization, not two. *)

val holds_all : Model.t -> Constr.t list -> bool
(** [holds_all m cs] checks every constraint under [m] (unbound variables
    read as 0). Used by tests as the soundness oracle. *)
