type outcome = Sat of Model.t | Unsat | Unknown

let default_budget = 50_000

exception Exhausted
exception Contradiction

(* Floor/ceil division with a positive divisor. *)
let fdiv a b = if a >= 0 then a / b else -((-a + b - 1) / b)
let cdiv a b = if a >= 0 then (a + b - 1) / b else -(-a / b)

type state = { mutable doms : Domain.t Varid.Map.t; mutable dirty : bool }

let dom st v =
  match Varid.Map.find_opt v st.doms with Some d -> d | None -> Domain.full

let update st v d =
  let old = dom st v in
  if not (Domain.equal old d) then begin
    st.doms <- Varid.Map.add v d st.doms;
    st.dirty <- true
  end

let narrow st v f =
  match f (dom st v) with
  | None -> raise Contradiction
  | Some d -> update st v d

(* Enforce [sum terms <= bound] by interval reasoning on each term. *)
let enforce_le st terms bound =
  let term_min (c, v) =
    let d = dom st v in
    if c > 0 then c * d.Domain.lo else c * d.Domain.hi
  in
  let total_min = List.fold_left (fun acc t -> acc + term_min t) 0 terms in
  if total_min > bound then raise Contradiction;
  let tighten (c, v) =
    let margin = bound - (total_min - term_min (c, v)) in
    if c > 0 then narrow st v (Domain.clamp_hi (fdiv margin c))
    else narrow st v (Domain.clamp_lo (cdiv (-margin) (-c)))
  in
  List.iter tighten terms

(* Disequality [sum terms + k <> 0]: only prunes endpoint values once a
   single variable remains unfixed. *)
let enforce_ne st terms k =
  let fixed, unfixed =
    List.partition (fun (_, v) -> Domain.is_singleton (dom st v) <> None) terms
  in
  let rest =
    List.fold_left
      (fun acc (c, v) ->
        match Domain.is_singleton (dom st v) with
        | Some x -> acc + (c * x)
        | None -> acc)
      k fixed
  in
  match unfixed with
  | [] -> if rest = 0 then raise Contradiction
  | [ (c, v) ] ->
    if rest mod c = 0 then narrow st v (Domain.remove (-rest / c))
  | _ :: _ :: _ -> ()

let propagate_one st (c : Constr.t) =
  let terms = Linexp.terms c.Constr.exp in
  let k = Linexp.constant c.Constr.exp in
  let neg_terms = List.map (fun (co, v) -> (-co, v)) terms in
  match c.Constr.rel with
  | Constr.Le -> enforce_le st terms (-k)
  | Constr.Lt -> enforce_le st terms (-k - 1)
  | Constr.Ge -> enforce_le st neg_terms k
  | Constr.Gt -> enforce_le st neg_terms (k - 1)
  | Constr.Eq ->
    enforce_le st terms (-k);
    enforce_le st neg_terms k
  | Constr.Ne -> enforce_ne st terms k

let max_passes = 500

let propagate st cs =
  let rec loop pass =
    st.dirty <- false;
    List.iter (propagate_one st) cs;
    if st.dirty && pass < max_passes then loop (pass + 1)
  in
  loop 0

let model_of_doms st active =
  Varid.Set.fold
    (fun v m ->
      match Domain.is_singleton (dom st v) with
      | Some x -> Model.set v x m
      | None -> assert false)
    active Model.empty

let holds_all m cs =
  List.for_all (Constr.holds (Model.lookup_fn ~default:0 m)) cs

(* Complete search: try preferred value and both endpoints of the chosen
   variable, then split the remaining interval. Each step strictly
   shrinks a domain, so the search terminates; [budget] bounds it.
   [nodes] reports the nodes actually expended to the telemetry layer. *)
let search ~budget ~nodes ~prefer cs doms0 active =
  let remaining = ref budget in
  let pick st =
    let best = ref None in
    let consider v =
      let d = dom st v in
      match Domain.is_singleton d with
      | Some _ -> ()
      | None -> (
        match !best with
        | Some (_, size) when size <= Domain.size d -> ()
        | Some _ | None -> best := Some (v, Domain.size d))
    in
    Varid.Set.iter consider active;
    Option.map fst !best
  in
  let rec go st =
    decr remaining;
    incr nodes;
    if !remaining < 0 then raise Exhausted;
    match propagate st cs with
    | exception Contradiction -> None
    | () -> (
      match pick st with
      | None ->
        let m = model_of_doms st active in
        if holds_all m cs then Some m else None
      | Some v -> branch st v)
  and branch st v =
    let d = dom st v in
    let try_value x =
      let st' = { doms = Varid.Map.add v (Domain.singleton x) st.doms; dirty = false } in
      go st'
    in
    let candidates =
      let pref =
        match Model.find v prefer with
        | Some x when Domain.mem x d -> [ x ]
        | Some _ | None -> []
      in
      let base = [ d.Domain.lo; d.Domain.hi ] in
      let zero = if Domain.mem 0 d then [ 0 ] else [] in
      List.sort_uniq Int.compare (pref @ zero @ base)
      |> List.sort (fun a b ->
             (* preferred first, then magnitude order for stable small values *)
             let score x =
               if List.mem x pref then (0, 0) else (1, abs x)
             in
             Stdlib.compare (score a) (score b))
    in
    let rec try_candidates = function
      | [] -> split_rest ()
      | x :: rest -> (
        match try_value x with Some m -> Some m | None -> try_candidates rest)
    and split_rest () =
      (* lo and hi have been refuted as endpoints; shrink and split. *)
      match Domain.remove d.Domain.lo d with
      | None -> None
      | Some d1 -> (
        match Domain.remove d.Domain.hi d1 with
        | None -> None
        | Some d2 -> (
          match Domain.split d2 with
          | None ->
            (* single interior value left *)
            (match Domain.is_singleton d2 with
            | Some x -> try_value x
            | None -> None)
          | Some (left, right) ->
            let recurse half =
              let st' = { doms = Varid.Map.add v (half : Domain.t) st.doms; dirty = false } in
              go st'
            in
            (match recurse left with Some m -> Some m | None -> recurse right)))
    in
    try_candidates candidates
  in
  go { doms = doms0; dirty = false }

let solve_raw ~budget ~domains ~prefer ~nodes cs =
  (* Normalize: drop trivially-true constraints, fail fast on trivially
     false ones, and divide every remaining constraint by its coefficient
     gcd (tightening integer bounds and deciding divisibility). *)
  let exception Trivially_unsat in
  match
    List.filter_map
      (fun c ->
        match Constr.normalize c with
        | `True -> None
        | `False -> raise Trivially_unsat
        | `Constr c' -> Some c')
      cs
  with
  | exception Trivially_unsat -> Unsat
  | cs -> (
    let active =
      List.fold_left (fun acc c -> Varid.Set.union acc (Constr.vars c)) Varid.Set.empty cs
    in
    if Varid.Set.is_empty active then Sat Model.empty
    else
      match search ~budget ~nodes ~prefer cs domains active with
      | Some m -> Sat m
      | None -> Unsat
      | exception Exhausted -> Unknown)

(* --- telemetry ---------------------------------------------------- *)

let m_calls = Obs.Metrics.counter "solver.calls"
let m_sat = Obs.Metrics.counter "solver.sat"
let m_unsat = Obs.Metrics.counter "solver.unsat"
let m_unknown = Obs.Metrics.counter "solver.unknown"
let m_latency = Obs.Metrics.histogram "solver.latency_s"
let m_nodes = Obs.Metrics.histogram "solver.nodes"

let count_vars cs =
  Varid.Set.cardinal
    (List.fold_left (fun acc c -> Varid.Set.union acc (Constr.vars c)) Varid.Set.empty cs)

(* Wrap one solver entry with latency/outcome accounting and, when a
   trace sink is live, a [Solver_call] event. The timeline span kind is
   "solver.call", distinct from the campaign's enclosing "solve" phase:
   the difference between the two is key-construction and bookkeeping
   overhead around the actual search. *)
let instrumented ~incremental cs f =
  let tk0 = if Obs.Timeline.on () then Obs.Timeline.tick () else 0 in
  let t0 = Unix.gettimeofday () in
  let nodes = ref 0 in
  let outcome = f nodes in
  let dt = Unix.gettimeofday () -. t0 in
  if Obs.Timeline.on () then
    Obs.Timeline.record ~kind:"solver.call" ~t0:tk0 ~t1:(Obs.Timeline.tick ());
  Obs.Metrics.incr m_calls;
  Obs.Metrics.observe m_latency dt;
  Obs.Metrics.observe_int m_nodes !nodes;
  let obs_outcome =
    match outcome with
    | Sat _ ->
      Obs.Metrics.incr m_sat;
      Obs.Event.Sat
    | Unsat ->
      Obs.Metrics.incr m_unsat;
      Obs.Event.Unsat
    | Unknown ->
      Obs.Metrics.incr m_unknown;
      Obs.Event.Unknown
  in
  if Obs.Sink.active () then
    Obs.Sink.emit
      (Obs.Event.Solver_call
         {
           incremental;
           outcome = obs_outcome;
           nodes = !nodes;
           vars = count_vars cs;
           constraints = List.length cs;
           time_s = dt;
         });
  outcome

let solve ?(budget = default_budget) ?(domains = Varid.Map.empty) ?(prefer = Model.empty) cs =
  instrumented ~incremental:false cs (fun nodes ->
      solve_raw ~budget ~domains ~prefer ~nodes cs)

type incremental_result = {
  model : Model.t;
  fresh : Model.t;
  resolved : Varid.Set.t;
  changed : Varid.Set.t;
}

let finish_incremental ~prev ~vars outcome =
  match outcome with
  | Unsat -> Error `Unsat
  | Unknown -> Error `Unknown
  | Sat m ->
    let resolved = vars in
    let solved_only =
      Varid.Set.fold
        (fun v acc ->
          match Model.find v m with
          | Some x -> Model.set v x acc
          | None -> acc)
        resolved Model.empty
    in
    let changed = Model.changed_vars ~before:prev ~after:solved_only in
    Ok
      {
        model = Model.union_prefer_left solved_only prev;
        fresh = solved_only;
        resolved;
        changed;
      }

let solve_incremental ?(budget = default_budget) ?(domains = Varid.Map.empty)
    ?(canonical = false) ~prev ~target cs =
  let closure, vars = Constr.dependency_closure ~seed:(Constr.vars target) cs in
  (* In canonical mode the solve must be a pure function of the closure
     as a set plus [domains] — the identity a solver cache keys on — so
     the closure is sorted/deduplicated and [prev] is not offered to the
     value search (it still anchors the merge and the [changed] diff). *)
  let closure = if canonical then List.sort_uniq Constr.compare closure else closure in
  let prefer = if canonical then Model.empty else prev in
  instrumented ~incremental:true closure (fun nodes ->
      solve_raw ~budget ~domains ~prefer ~nodes closure)
  |> finish_incremental ~prev ~vars

let solve_prepared ?(budget = default_budget) ?(domains = Varid.Map.empty) ~prev
    ~closure ~vars () =
  (* The canonical-mode tail of [solve_incremental] for a caller that
     already holds the sorted, deduplicated dependency closure and its
     variable set (e.g. from building a cache key): same verdict, no
     second closure computation or sort. *)
  instrumented ~incremental:true closure (fun nodes ->
      solve_raw ~budget ~domains ~prefer:Model.empty ~nodes closure)
  |> finish_incremental ~prev ~vars
