type rel = Eq | Ne | Lt | Le | Gt | Ge

type t = { exp : Linexp.t; rel : rel }

let make exp rel = { exp; rel }
let cmp a rel b = { exp = Linexp.sub a b; rel }

let negate c =
  let rel =
    match c.rel with
    | Eq -> Ne
    | Ne -> Eq
    | Lt -> Ge
    | Le -> Gt
    | Gt -> Le
    | Ge -> Lt
  in
  { c with rel }

let rel_holds rel v =
  match rel with
  | Eq -> v = 0
  | Ne -> v <> 0
  | Lt -> v < 0
  | Le -> v <= 0
  | Gt -> v > 0
  | Ge -> v >= 0

let holds lookup c = rel_holds c.rel (Linexp.eval lookup c.exp)
let vars c = Linexp.vars c.exp

let trivial c =
  match Linexp.is_const c.exp with
  | Some k -> Some (rel_holds c.rel k)
  | None -> None

let rec gcd a b = if b = 0 then abs a else gcd b (a mod b)

(* floor division with positive divisor *)
let fdiv a b = if a >= 0 then a / b else -((-a + b - 1) / b)

let normalize c =
  match trivial c with
  | Some true -> `True
  | Some false -> `False
  | None ->
    let terms = Linexp.terms c.exp in
    let k = Linexp.constant c.exp in
    let g = List.fold_left (fun acc (coeff, _) -> gcd acc coeff) 0 terms in
    if g <= 1 then `Constr c
    else begin
      let divided = List.map (fun (coeff, var) -> (coeff / g, var)) terms in
      let exact = k mod g = 0 in
      match c.rel with
      | Eq ->
        (* sum(g*ci'*xi) + k = 0 needs g | k *)
        if exact then `Constr { exp = Linexp.of_terms divided (k / g); rel = Eq }
        else `False
      | Ne ->
        if exact then `Constr { exp = Linexp.of_terms divided (k / g); rel = Ne }
        else `True
      | Le ->
        (* g*S + k <= 0  <=>  S <= floor(-k / g)  <=>  S + ceil(k/g) <= 0 *)
        `Constr { exp = Linexp.of_terms divided (-fdiv (-k) g); rel = Le }
      | Lt ->
        (* g*S + k < 0  <=>  g*S <= -k - 1  <=>  S <= floor((-k - 1) / g) *)
        `Constr { exp = Linexp.of_terms divided (-fdiv (-k - 1) g); rel = Le }
      | Ge ->
        (* g*S + k >= 0  <=>  S >= ceil(-k / g)  <=>  S - ceil(-k/g) >= 0 *)
        `Constr { exp = Linexp.of_terms divided (fdiv k g); rel = Ge }
      | Gt ->
        (* g*S + k > 0  <=>  g*S >= 1 - k  <=>  S >= ceil((1 - k) / g) *)
        `Constr { exp = Linexp.of_terms divided (fdiv (k - 1) g); rel = Ge }
    end

let rel_equal a b =
  match (a, b) with
  | Eq, Eq | Ne, Ne | Lt, Lt | Le, Le | Gt, Gt | Ge, Ge -> true
  | (Eq | Ne | Lt | Le | Gt | Ge), _ -> false

let rel_rank = function Eq -> 0 | Ne -> 1 | Lt -> 2 | Le -> 3 | Gt -> 4 | Ge -> 5
let equal a b = rel_equal a.rel b.rel && Linexp.equal a.exp b.exp
let hash c = (Linexp.hash c.exp * 31) + rel_rank c.rel

let compare a b =
  let c = Int.compare (rel_rank a.rel) (rel_rank b.rel) in
  if c <> 0 then c else Linexp.compare a.exp b.exp

let rel_to_string = function
  | Eq -> "="
  | Ne -> "!="
  | Lt -> "<"
  | Le -> "<="
  | Gt -> ">"
  | Ge -> ">="

let pp ppf c =
  Format.fprintf ppf "%a %s 0" Linexp.pp c.exp (rel_to_string c.rel)

let dependency_closure ~seed cs =
  (* Fixpoint: repeatedly absorb constraints that intersect the var set. *)
  let rec grow vars included pending =
    let hit, miss =
      List.partition (fun c -> not (Varid.Set.disjoint (Linexp.vars c.exp) vars)) pending
    in
    match hit with
    | [] -> (List.rev included, vars)
    | _ :: _ ->
      let vars =
        List.fold_left (fun acc c -> Varid.Set.union acc (Linexp.vars c.exp)) vars hit
      in
      grow vars (List.rev_append hit included) miss
  in
  grow seed [] cs
