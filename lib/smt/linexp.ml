type t = { coeffs : int Varid.Map.t; k : int }

let normalize coeffs = Varid.Map.filter (fun _ c -> c <> 0) coeffs
let const k = { coeffs = Varid.Map.empty; k }
let var v = { coeffs = Varid.Map.singleton v 1; k = 0 }

let of_terms terms k =
  let add_term acc (c, v) =
    Varid.Map.update v
      (function None -> Some c | Some c' -> Some (c + c'))
      acc
  in
  { coeffs = normalize (List.fold_left add_term Varid.Map.empty terms); k }

let merge f a b =
  let coeffs =
    Varid.Map.merge
      (fun _ ca cb -> Some (f (Option.value ca ~default:0) (Option.value cb ~default:0)))
      a.coeffs b.coeffs
  in
  { coeffs = normalize coeffs; k = f a.k b.k }

let add a b = merge ( + ) a b
let sub a b = merge ( - ) a b
let neg a = { coeffs = Varid.Map.map (fun c -> -c) a.coeffs; k = -a.k }

let scale s a =
  if s = 0 then const 0
  else { coeffs = Varid.Map.map (fun c -> s * c) a.coeffs; k = s * a.k }

let add_const k a = { a with k = a.k + k }
let is_const a = if Varid.Map.is_empty a.coeffs then Some a.k else None
let coeff v a = match Varid.Map.find_opt v a.coeffs with Some c -> c | None -> 0
let constant a = a.k
let terms a = Varid.Map.fold (fun v c acc -> (c, v) :: acc) a.coeffs [] |> List.rev
let vars a = Varid.Map.fold (fun v _ acc -> Varid.Set.add v acc) a.coeffs Varid.Set.empty
let mem v a = Varid.Map.mem v a.coeffs

let eval lookup a =
  Varid.Map.fold (fun v c acc -> acc + (c * lookup v)) a.coeffs a.k

(* Structural hash for constraint-cache keys: fold the (sorted) terms
   with a multiplicative mix. Must agree with [equal]. *)
let hash a =
  let mix acc x = (acc * 0x01000193) lxor (x land max_int) in
  Varid.Map.fold (fun v c acc -> mix (mix acc v) c) a.coeffs (mix 0x811c9dc5 a.k)
  land max_int

let equal a b = a.k = b.k && Varid.Map.equal Int.equal a.coeffs b.coeffs

let compare a b =
  let c = Int.compare a.k b.k in
  if c <> 0 then c else Varid.Map.compare Int.compare a.coeffs b.coeffs

let pp ppf a =
  let pp_term ppf (c, v) =
    if c = 1 then Varid.pp ppf v
    else if c = -1 then Format.fprintf ppf "-%a" Varid.pp v
    else Format.fprintf ppf "%d*%a" c Varid.pp v
  in
  match terms a with
  | [] -> Format.fprintf ppf "%d" a.k
  | t :: ts ->
    pp_term ppf t;
    List.iter (fun (c, v) -> Format.fprintf ppf " + %a" pp_term (c, v)) ts;
    if a.k <> 0 then Format.fprintf ppf " + %d" a.k
