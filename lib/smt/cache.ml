(* CREST-style counterexample cache in front of the solver.

   A key canonicalizes one solve: the dependency closure of the negated
   constraint (sorted, deduplicated — path order and duplicates don't
   change the solution set) plus the interval domain of every variable
   it mentions. Because variable ids are numbered per execution by the
   run's own symbol table, two structurally identical runs — the common
   case after a restart re-explores a path — produce the *same* key,
   which is what makes repeats hit.

   A hit replays the previously found model (or the UNSAT verdict)
   without touching the solver; the replayed model satisfies the set by
   construction even when the current run's concrete inputs differ.
   For the replay to equal what a live solve would have returned, the
   cached verdict must itself be a pure function of the key — solve in
   canonical mode (Solver.solve_incremental ~canonical:true), which
   drops the prefer-previous-values heuristic whose input (the run's
   concrete model) is deliberately not part of the key.
   Unknown outcomes (budget exhaustion) are never cached: a later
   attempt under the same budget is equally cheap to re-refuse, and a
   raised budget should get its chance.

   Ownership: [find]/[add] are serialized under one process-wide mutex.
   The parallel campaign engine still probes/updates only from the main
   domain at deterministic points (candidate dispatch and ordered
   merge) — that scheduling discipline, not the lock, is what makes
   campaigns reproducible regardless of worker count — but the lock
   makes the structure safe for any caller and lets the timeline
   account acquisition wait against hold time (the contention numbers
   [compi-cli profile] reports). The mutex lives at module level, not
   in [t]: campaign snapshots marshal the whole cache record
   (Checkpoint.save), and Marshal rejects the custom block a Mutex.t
   is. One global lock is exact for the single shared cache a campaign
   owns, and merely coarser when tests build several. *)

type outcome = Sat of Model.t | Unsat

type key = {
  khash : int;
  kconstrs : Constr.t list;  (* sorted, deduplicated *)
  kdoms : (Varid.t * int * int) list;  (* domains of the vars, in var order *)
}

let key ~domains cs =
  let kconstrs = List.sort_uniq Constr.compare cs in
  let vars =
    List.fold_left (fun acc c -> Varid.Set.union acc (Constr.vars c)) Varid.Set.empty cs
  in
  let kdoms =
    Varid.Set.fold
      (fun v acc ->
        let d =
          match Varid.Map.find_opt v domains with Some d -> d | None -> Domain.full
        in
        (v, d.Domain.lo, d.Domain.hi) :: acc)
      vars []
    |> List.rev
  in
  let mix acc x = (acc * 0x01000193) lxor (x land max_int) in
  let khash =
    List.fold_left (fun acc c -> mix acc (Constr.hash c)) 0x811c9dc5 kconstrs
  in
  let khash =
    List.fold_left (fun acc (v, lo, hi) -> mix (mix (mix acc v) lo) hi) khash kdoms
    land max_int
  in
  { khash; kconstrs; kdoms }

let key_size k = List.length k.kconstrs

module Tbl = Hashtbl.Make (struct
  type t = key

  let hash k = k.khash

  let equal a b =
    a.khash = b.khash
    && (try List.for_all2 Constr.equal a.kconstrs b.kconstrs
        with Invalid_argument _ -> false)
    && a.kdoms = b.kdoms
end)

type t = {
  capacity : int;
  table : outcome Tbl.t;
  order : key Queue.t;  (* insertion order, for FIFO eviction *)
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
}

type stats = { hits : int; misses : int; evictions : int; entries : int }

let m_hits = Obs.Metrics.counter "cache.hits"
let m_misses = Obs.Metrics.counter "cache.misses"
let m_evictions = Obs.Metrics.counter "cache.evictions"
let g_entries = Obs.Metrics.gauge "cache.entries"

let default_capacity = 4096

let create ?(capacity = default_capacity) () =
  {
    capacity = max 1 capacity;
    table = Tbl.create 256;
    order = Queue.create ();
    hits = 0;
    misses = 0;
    evictions = 0;
  }

let entries t = Tbl.length t.table

let lock = Mutex.create ()

let locked f =
  if Obs.Timeline.on () then begin
    let t0 = Obs.Timeline.tick () in
    Mutex.lock lock;
    let t1 = Obs.Timeline.tick () in
    Obs.Timeline.record ~kind:"cache.lock.wait" ~t0 ~t1;
    Fun.protect
      ~finally:(fun () ->
        Obs.Timeline.record ~kind:"cache.lock.hold" ~t0:t1
          ~t1:(Obs.Timeline.tick ());
        Mutex.unlock lock)
      f
  end
  else begin
    Mutex.lock lock;
    Fun.protect ~finally:(fun () -> Mutex.unlock lock) f
  end

let find t k =
  locked @@ fun () ->
  let r = Obs.Timeline.span "cache.probe" (fun () -> Tbl.find_opt t.table k) in
  (match r with
  | Some _ ->
    t.hits <- t.hits + 1;
    Obs.Metrics.incr m_hits
  | None ->
    t.misses <- t.misses + 1;
    Obs.Metrics.incr m_misses);
  if Obs.Sink.active () then
    Obs.Sink.emit
      (Obs.Event.Cache_lookup
         { hit = r <> None; constraints = key_size k; entries = entries t });
  r

let add t k outcome =
  locked @@ fun () ->
  if not (Tbl.mem t.table k) then begin
    let dropped = ref 0 in
    while Tbl.length t.table >= t.capacity && not (Queue.is_empty t.order) do
      let oldest = Queue.pop t.order in
      if Tbl.mem t.table oldest then begin
        Tbl.remove t.table oldest;
        incr dropped
      end
    done;
    if !dropped > 0 then begin
      t.evictions <- t.evictions + !dropped;
      Obs.Metrics.incr ~by:!dropped m_evictions;
      if Obs.Sink.active () then
        Obs.Sink.emit (Obs.Event.Cache_evict { dropped = !dropped; entries = entries t })
    end;
    Tbl.replace t.table k outcome;
    Queue.push k t.order;
    Obs.Metrics.set g_entries (float_of_int (entries t))
  end

let stats (t : t) =
  { hits = t.hits; misses = t.misses; evictions = t.evictions; entries = entries t }

let hit_rate (t : t) =
  let total = t.hits + t.misses in
  if total = 0 then 0.0 else float_of_int t.hits /. float_of_int total
