(* CREST-style counterexample cache in front of the solver.

   A key canonicalizes one solve: the dependency closure of the negated
   constraint (sorted, deduplicated — path order and duplicates don't
   change the solution set) plus the interval domain of every variable
   it mentions. Because variable ids are numbered per execution by the
   run's own symbol table, two structurally identical runs — the common
   case after a restart re-explores a path — produce the *same* key,
   which is what makes repeats hit.

   A hit replays the previously found model (or the UNSAT verdict)
   without touching the solver; the replayed model satisfies the set by
   construction even when the current run's concrete inputs differ.
   For the replay to equal what a live solve would have returned, the
   cached verdict must itself be a pure function of the key — solve in
   canonical mode (Solver.solve_incremental ~canonical:true), which
   drops the prefer-previous-values heuristic whose input (the run's
   concrete model) is deliberately not part of the key.
   Unknown outcomes (budget exhaustion) are never cached: a later
   attempt under the same budget is equally cheap to re-refuse, and a
   raised budget should get its chance.

   Ownership: the table is split into [khash]-indexed shards and holds
   no lock at all. The pipelined campaign engine is the single writer
   and only mutates from the main domain at deterministic points —
   probes at candidate dispatch, verdict publication at the ordered
   merge — so every cache state transition happens at a work-list
   position that is identical at any [--jobs], which is what makes
   campaigns reproducible regardless of worker count. (The earlier
   design kept a module-level mutex "just in case"; profile data showed
   it as pure overhead — cache.lock.wait/hold spans — protecting a
   structure that was already single-domain by protocol. Concurrent
   multi-domain mutation was never supported and still is not.)
   Sharding keeps per-shard FIFO queues short so eviction scans stay
   O(shard) instead of O(table), and gives the checkpoint a layout that
   still marshals directly (no mutex custom block to strip).

   The shard count is derived from capacity — one shard per 256 slots,
   clamped to [1, 16] and rounded down to a power of two — so small
   caches (tests use capacity 2) keep the exact global-FIFO eviction
   order of the unsharded design, while the default 4096-slot cache
   gets 16 × 256-slot shards. *)

type outcome = Sat of Model.t | Unsat

type key = {
  khash : int;
  kconstrs : Constr.t list;  (* sorted, deduplicated *)
  kdoms : (Varid.t * int * int) list;  (* domains of the vars, in var order *)
}

let key ?vars ~domains cs =
  let kconstrs = List.sort_uniq Constr.compare cs in
  (* [vars] lets a caller that just walked the dependency closure (and
     so already holds its variable set) skip re-unioning it here — the
     set folds are a measurable share of key construction. *)
  let vars =
    match vars with
    | Some vs -> vs
    | None ->
      List.fold_left
        (fun acc c -> Varid.Set.union acc (Constr.vars c))
        Varid.Set.empty cs
  in
  let kdoms =
    Varid.Set.fold
      (fun v acc ->
        let d =
          match Varid.Map.find_opt v domains with Some d -> d | None -> Domain.full
        in
        (v, d.Domain.lo, d.Domain.hi) :: acc)
      vars []
    |> List.rev
  in
  let mix acc x = (acc * 0x01000193) lxor (x land max_int) in
  let khash =
    List.fold_left (fun acc c -> mix acc (Constr.hash c)) 0x811c9dc5 kconstrs
  in
  let khash =
    List.fold_left (fun acc (v, lo, hi) -> mix (mix (mix acc v) lo) hi) khash kdoms
    land max_int
  in
  { khash; kconstrs; kdoms }

let key_size k = List.length k.kconstrs
let key_constrs k = k.kconstrs

module Tbl = Hashtbl.Make (struct
  type t = key

  let hash k = k.khash

  let equal a b =
    a.khash = b.khash
    && (try List.for_all2 Constr.equal a.kconstrs b.kconstrs
        with Invalid_argument _ -> false)
    && a.kdoms = b.kdoms
end)

type shard = {
  table : outcome Tbl.t;
  order : key Queue.t;  (* insertion order, for per-shard FIFO eviction *)
}

type t = {
  capacity : int;
  shard_capacity : int;
  mask : int;  (* nshards - 1; nshards is a power of two *)
  shards : shard array;
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
}

type stats = { hits : int; misses : int; evictions : int; entries : int }

let m_hits = Obs.Metrics.counter "cache.hits"
let m_misses = Obs.Metrics.counter "cache.misses"
let m_evictions = Obs.Metrics.counter "cache.evictions"
let g_entries = Obs.Metrics.gauge "cache.entries"
let g_shards = Obs.Metrics.gauge "cache.shards"
let g_shard_max = Obs.Metrics.gauge "cache.shard_entries.max"

let default_capacity = 4096

(* largest power of two <= n, for n >= 1 *)
let pow2_floor n =
  let p = ref 1 in
  while !p * 2 <= n do
    p := !p * 2
  done;
  !p

let create ?(capacity = default_capacity) () =
  let capacity = max 1 capacity in
  let nshards = pow2_floor (max 1 (min 16 (capacity / 256))) in
  Obs.Metrics.set g_shards (float_of_int nshards);
  {
    capacity;
    shard_capacity = max 1 (capacity / nshards);
    mask = nshards - 1;
    shards =
      Array.init nshards (fun _ ->
          { table = Tbl.create 256; order = Queue.create () });
    hits = 0;
    misses = 0;
    evictions = 0;
  }

let nshards t = Array.length t.shards

let shard_of t k = t.shards.(k.khash land t.mask)

let entries t =
  Array.fold_left (fun acc s -> acc + Tbl.length s.table) 0 t.shards

let shard_entries_max t =
  Array.fold_left (fun acc s -> max acc (Tbl.length s.table)) 0 t.shards

let find t k =
  let s = shard_of t k in
  let r = Obs.Timeline.span "cache.probe" (fun () -> Tbl.find_opt s.table k) in
  (match r with
  | Some _ ->
    t.hits <- t.hits + 1;
    Obs.Metrics.incr m_hits
  | None ->
    t.misses <- t.misses + 1;
    Obs.Metrics.incr m_misses);
  if Obs.Sink.active () then
    Obs.Sink.emit
      (Obs.Event.Cache_lookup
         { hit = r <> None; constraints = key_size k; entries = entries t });
  r

let add t k outcome =
  let s = shard_of t k in
  if not (Tbl.mem s.table k) then begin
    let dropped = ref 0 in
    while Tbl.length s.table >= t.shard_capacity && not (Queue.is_empty s.order) do
      let oldest = Queue.pop s.order in
      if Tbl.mem s.table oldest then begin
        Tbl.remove s.table oldest;
        incr dropped
      end
    done;
    if !dropped > 0 then begin
      t.evictions <- t.evictions + !dropped;
      Obs.Metrics.incr ~by:!dropped m_evictions;
      if Obs.Sink.active () then
        Obs.Sink.emit (Obs.Event.Cache_evict { dropped = !dropped; entries = entries t })
    end;
    Tbl.replace s.table k outcome;
    Queue.push k s.order;
    Obs.Metrics.set g_entries (float_of_int (entries t));
    Obs.Metrics.set g_shard_max (float_of_int (shard_entries_max t))
  end

let stats (t : t) =
  { hits = t.hits; misses = t.misses; evictions = t.evictions; entries = entries t }

let hit_rate (t : t) =
  let total = t.hits + t.misses in
  if total = 0 then 0.0 else float_of_int t.hits /. float_of_int total
