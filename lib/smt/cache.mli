(** Counterexample cache in front of the solver (CREST-style).

    Maps the canonical form of one incremental solve — the sorted,
    deduplicated dependency closure of the negated constraint plus the
    interval domains of its variables — to the solver's verdict: the
    model found, or UNSAT. A hit replays the verdict without re-solving;
    Unknown (budget-exhausted) outcomes are never cached. Per-run
    variable numbering (each execution's symbol table counts from 0)
    makes structurally identical runs produce identical keys, so paths
    re-explored after a restart hit.

    Probes and insertions feed the [cache.hits]/[cache.misses]/
    [cache.evictions] counters, the [cache.entries]/[cache.shards]/
    [cache.shard_entries.max] gauges, and — when a sink is active — the
    [cache_lookup]/[cache_evict] events.

    The table is split into hash-indexed shards and is lock-free:
    [find]/[add] take no mutex at all. The pipelined campaign engine is
    the single writer — it probes at candidate dispatch and publishes
    verdicts at the ordered merge, both on the main domain — so every
    cache state transition happens at a work-list position that is
    identical at any [--jobs]. That protocol, not a lock, is what keeps
    campaign results independent of the worker count; concurrent
    multi-domain mutation is not supported. Each probe records a
    [cache.probe] span when the {!Obs.Timeline} is enabled. The shard
    count is derived from capacity (one shard per 256 slots, clamped to
    [1, 16], power of two), so small caches behave exactly like the old
    single-table design, including its global FIFO eviction order. *)

type outcome = Sat of Model.t | Unsat

type key

val key :
  ?vars:Varid.Set.t -> domains:Domain.t Varid.Map.t -> Constr.t list -> key
(** Canonicalize a constraint set: sort and deduplicate, then attach the
    domain interval of every variable mentioned. Constraint order and
    duplicates do not affect the key. [vars], when given, must be the
    set of variables the constraints mention (e.g. from
    [Constr.dependency_closure]) and saves recomputing it. *)

val key_size : key -> int
(** Number of distinct constraints under the key. *)

val key_constrs : key -> Constr.t list
(** The canonical (sorted, deduplicated) constraint set under the key —
    exactly the closure a canonical solve of this key's problem runs
    on, so a miss can feed it straight to
    [Solver.solve_prepared] without recomputing or re-sorting it. *)

type t

val default_capacity : int
(** 4096 entries. *)

val create : ?capacity:int -> unit -> t

val nshards : t -> int
(** Number of shards the capacity was split into. *)

val find : t -> key -> outcome option
(** Counts a hit or a miss, and emits a [cache_lookup] event when a sink
    is active. *)

val add : t -> key -> outcome -> unit
(** First verdict wins: re-adding an existing key is a no-op. At shard
    capacity, the oldest entries of that shard are evicted FIFO. *)

val entries : t -> int

type stats = { hits : int; misses : int; evictions : int; entries : int }

val stats : t -> stats

val hit_rate : t -> float
(** [hits / (hits + misses)]; 0 before the first probe. *)
