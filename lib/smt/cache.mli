(** Counterexample cache in front of the solver (CREST-style).

    Maps the canonical form of one incremental solve — the sorted,
    deduplicated dependency closure of the negated constraint plus the
    interval domains of its variables — to the solver's verdict: the
    model found, or UNSAT. A hit replays the verdict without re-solving;
    Unknown (budget-exhausted) outcomes are never cached. Per-run
    variable numbering (each execution's symbol table counts from 0)
    makes structurally identical runs produce identical keys, so paths
    re-explored after a restart hit.

    Probes and insertions feed the [cache.hits]/[cache.misses]/
    [cache.evictions] counters, the [cache.entries] gauge, and — when a
    sink is active — the [cache_lookup]/[cache_evict] events.

    [find]/[add] are serialized under a process-wide mutex (module
    level, so snapshots of the cache record stay marshallable). The
    parallel campaign engine still touches the cache only from the main
    domain at deterministic points (dispatch and ordered merge) — that
    discipline, not the lock, keeps campaign results independent of the
    worker count. When the {!Obs.Timeline} is enabled, each acquisition
    records [cache.lock.wait]/[cache.lock.hold] spans and each probe a
    [cache.probe] span — the contention numbers [compi-cli profile]
    reports. *)

type outcome = Sat of Model.t | Unsat

type key

val key : domains:Domain.t Varid.Map.t -> Constr.t list -> key
(** Canonicalize a constraint set: sort and deduplicate, then attach the
    domain interval of every variable mentioned. Constraint order and
    duplicates do not affect the key. *)

val key_size : key -> int
(** Number of distinct constraints under the key. *)

type t

val default_capacity : int
(** 4096 entries. *)

val create : ?capacity:int -> unit -> t

val find : t -> key -> outcome option
(** Counts a hit or a miss, and emits a [cache_lookup] event when a sink
    is active. *)

val add : t -> key -> outcome -> unit
(** First verdict wins: re-adding an existing key is a no-op. At
    capacity, the oldest entries are evicted FIFO. *)

val entries : t -> int

type stats = { hits : int; misses : int; evictions : int; entries : int }

val stats : t -> stats

val hit_rate : t -> float
(** [hits / (hits + misses)]; 0 before the first probe. *)
