(* Closure compiler for Mini-C: the once-per-campaign counterpart of the
   tree-walking interpreter.

   [compile] turns the checked, instrumented AST into two closure trees
   (one per instrumentation mode) ahead of time: variable names resolve
   to dense frame slots, function names and arities to [cfunc] records,
   branch ids and per-operator arithmetic dispatch to captured values.
   Statements compile in CPS — each statement closure ends by invoking
   the closure for the rest of its block — so straight-line code runs
   with no per-statement dispatch at all.

   The symbolic shadow is resolved at compile time where possible:

   - the light tree carries no shadow code whatsoever (not even the
     [None] writes the interpreter's shared code paths pay for);
   - in the heavy tree, subexpressions whose shadows the interpreter
     provably discards (array indices, [Lognot] operands, operands of
     non-linear binops, array sizes, float-decl right-hand sides,
     assert conditions, exit codes, every MPI operand) compile through
     the light expression compiler.

   Heavy expression closures return the concrete [Value.t] and leave the
   shadow in [ctx.sh] as their final action — a shadow register instead
   of a tuple allocation per node.

   Every observable — fault constructor and message, operand evaluation
   order (including the right-to-left record-field order the interpreter
   inherits from OCaml), step counting, hook invocations, MPI requests —
   is byte-identical to [Interp]; test/test_compile.ml holds the
   differential proof. *)

type frame = {
  vals : Value.t array;
  shs : Smt.Linexp.t option array;  (* heavy frames only; [||] in light *)
  bnd : bool array;  (* slot currently bound? (interp: name in hashtable) *)
}

type ctx = {
  hooks : Interp.hooks;
  mutable steps : int;
  mutable func : string;  (* current function, for fault reports *)
  mutable sh : Smt.Linexp.t option;  (* heavy shadow register *)
  mutable cs : Smt.Constr.t option;
      (* heavy branch-constraint register: written by every heavy
         condition closure, read by If/While right after — a register
         rather than a tuple return so the light build's hot path
         allocates nothing per branch *)
  mutable ret : (Value.t * Smt.Linexp.t option) option;
  mutable returning : bool;
      (* return register: a [return] statement stores its value and
         sets the flag instead of raising. Every statement closure
         invokes its continuation in tail position, so simply {e not}
         invoking it unwinds the whole closure chain back to the
         call site, which consumes the flag — same control flow the
         old Return_exn bought, minus the exception raise (and its
         allocation) on the hot path *)
  pools : frame list array;
      (* per-function free lists of recycled frames, indexed by
         [cf_index]. Per-run state: the compiled program is shared
         read-only across domains, so frames must never hang off a
         [cfunc] *)
}

type ecode = ctx -> frame -> Value.t
type ccode = ctx -> frame -> bool
type scode = ctx -> frame -> unit

exception Exit_exn of int

type cfunc = {
  cf_index : int;  (* position in the variant's function table, keys [pools] *)
  cf_params : (int * Ast.ctype) list;  (* slot of each parameter, in order *)
  cf_nslots : int;
  cf_slots : (string, int) Hashtbl.t;
  mutable cf_body : scode;  (* patched after all functions register *)
}

type env = {
  heavy : bool;
  slots : (string, int) Hashtbl.t;  (* current function's name -> slot *)
  funcs : (string, cfunc) Hashtbl.t;
}

let light env = if env.heavy then { env with heavy = false } else env

(* ------------------------------------------------------------------ *)
(* Runtime helpers (identical observable behaviour to Interp's)        *)
(* ------------------------------------------------------------------ *)

let fault f = raise (Fault.Fault f)

let type_error c message =
  fault (Fault.Runtime_type_error { message; func = c.func })

let tick c =
  c.steps <- c.steps + 1;
  if c.steps > c.hooks.Interp.step_limit then
    fault (Fault.Step_limit_exceeded { steps = c.steps })

let as_int c = function
  | Value.Vint n -> n
  | Value.Vfloat _ | Value.Varr_int _ | Value.Varr_float _ ->
    (type_error c "expected an int" : int)

let as_float c = function
  | Value.Vfloat x -> x
  | Value.Vint n -> float_of_int n
  | Value.Varr_int _ | Value.Varr_float _ -> (type_error c "expected a float" : float)

(* Vint is immutable, so boolean results share two preallocated cells
   instead of boxing a fresh int on every comparison. *)
let vtrue = Value.Vint 1
let vfalse = Value.Vint 0
let bool_to_value b = if b then vtrue else vfalse

let soc value shadow =
  match shadow with Some e -> e | None -> Smt.Linexp.const value

let zero_value ctype n =
  match ctype with
  | Ast.Tint -> Value.Varr_int (Array.make n 0)
  | Ast.Tfloat -> Value.Varr_float (Array.make n 0.0)

let coerce c ctype value =
  match (ctype, value) with
  | Ast.Tint, Value.Vint _ -> value
  | Ast.Tint, Value.Vfloat x -> Value.Vint (int_of_float x)
  | Ast.Tfloat, Value.Vfloat _ -> value
  | Ast.Tfloat, Value.Vint n -> Value.Vfloat (float_of_int n)
  | (Ast.Tint | Ast.Tfloat), (Value.Varr_int _ | Value.Varr_float _) ->
    type_error c "cannot store array into scalar"

let no_shadows : Smt.Linexp.t option array = [||]

let make_frame heavy n =
  {
    vals = Array.make n (Value.Vint 0);
    shs = (if heavy then Array.make n None else no_shadows);
    bnd = Array.make n false;
  }

let slot env name =
  match Hashtbl.find_opt env.slots name with
  | Some i -> i
  | None -> invalid_arg ("Compile: no slot for variable " ^ name)

(* ------------------------------------------------------------------ *)
(* Slot assignment: every name a function's code can touch             *)
(* ------------------------------------------------------------------ *)

let collect_slots (fn : Ast.func) =
  let tbl = Hashtbl.create 32 in
  let next = ref 0 in
  let add name =
    if not (Hashtbl.mem tbl name) then begin
      Hashtbl.add tbl name !next;
      incr next
    end
  in
  List.iter (fun (p, _) -> add p) fn.Ast.params;
  let rec expr = function
    | Ast.Int _ | Ast.Float _ -> ()
    | Ast.Var n | Ast.Len n -> add n
    | Ast.Idx (n, e) ->
      add n;
      expr e
    | Ast.Unop (_, e) -> expr e
    | Ast.Binop (_, a, b) ->
      expr a;
      expr b
  in
  let eopt = Option.iter expr in
  let lval = function
    | Ast.Lvar n -> add n
    | Ast.Lidx (n, e) ->
      add n;
      expr e
  in
  let comm = function Ast.World -> () | Ast.Comm_var n -> add n in
  let mpi = function
    | Ast.Comm_rank (c, v) | Ast.Comm_size (c, v) ->
      comm c;
      add v
    | Ast.Comm_split { comm = c; color; key; into } ->
      comm c;
      expr color;
      expr key;
      add into
    | Ast.Barrier c -> comm c
    | Ast.Send { comm = c; dest; tag; data } ->
      comm c;
      expr dest;
      expr tag;
      expr data
    | Ast.Recv { comm = c; src; tag; into } ->
      comm c;
      eopt src;
      eopt tag;
      lval into
    | Ast.Isend { comm = c; dest; tag; data; req } ->
      comm c;
      expr dest;
      expr tag;
      expr data;
      add req
    | Ast.Irecv { comm = c; src; tag; req } ->
      comm c;
      eopt src;
      eopt tag;
      add req
    | Ast.Wait { req; into } ->
      expr req;
      Option.iter lval into
    | Ast.Bcast { comm = c; root; data } ->
      comm c;
      expr root;
      lval data
    | Ast.Reduce { comm = c; op = _; root; data; into } ->
      comm c;
      expr root;
      expr data;
      lval into
    | Ast.Allreduce { comm = c; op = _; data; into } ->
      comm c;
      expr data;
      lval into
    | Ast.Gather { comm = c; root; data; into } ->
      comm c;
      expr root;
      expr data;
      add into
    | Ast.Scatter { comm = c; root; data; into } ->
      comm c;
      expr root;
      add data;
      lval into
    | Ast.Allgather { comm = c; data; into } ->
      comm c;
      expr data;
      add into
    | Ast.Alltoall { comm = c; data; into } ->
      comm c;
      add data;
      add into
  in
  let rec stmt = function
    | Ast.Nop | Ast.Abort _ -> ()
    | Ast.Decl (n, _, e) | Ast.Decl_arr (n, _, e) ->
      add n;
      expr e
    | Ast.Assign (lv, e) ->
      lval lv;
      expr e
    | Ast.If { cond; then_; else_; _ } ->
      expr cond;
      List.iter stmt then_;
      List.iter stmt else_
    | Ast.While { cond; body; _ } ->
      expr cond;
      List.iter stmt body
    | Ast.Call (_, args) -> List.iter expr args
    | Ast.Call_assign (dst, _, args) ->
      add dst;
      List.iter expr args
    | Ast.Return e -> eopt e
    | Ast.Assert (e, _) -> expr e
    | Ast.Exit e -> expr e
    | Ast.Input d -> add d.Ast.iname
    | Ast.Mpi m -> mpi m
  in
  List.iter stmt fn.Ast.body;
  (tbl, !next)

(* ------------------------------------------------------------------ *)
(* Expressions                                                         *)
(* ------------------------------------------------------------------ *)

(* Per-operator concrete arithmetic, resolved at compile time. Mirrors
   Interp.eval_int_binop / eval_float_binop case for case. *)
let int_op : Ast.binop -> ctx -> int -> int -> Value.t = function
  | Ast.Add -> fun _ x y -> Value.Vint (x + y)
  | Ast.Sub -> fun _ x y -> Value.Vint (x - y)
  | Ast.Mul -> fun _ x y -> Value.Vint (x * y)
  | Ast.Div ->
    fun c x y ->
      if y = 0 then fault (Fault.Fpe { func = c.func });
      Value.Vint (x / y)
  | Ast.Mod ->
    fun c x y ->
      if y = 0 then fault (Fault.Fpe { func = c.func });
      Value.Vint (x mod y)
  | Ast.Eq -> fun _ x y -> bool_to_value (x = y)
  | Ast.Ne -> fun _ x y -> bool_to_value (x <> y)
  | Ast.Lt -> fun _ x y -> bool_to_value (x < y)
  | Ast.Le -> fun _ x y -> bool_to_value (x <= y)
  | Ast.Gt -> fun _ x y -> bool_to_value (x > y)
  | Ast.Ge -> fun _ x y -> bool_to_value (x >= y)
  | Ast.Logand -> fun _ x y -> bool_to_value (x <> 0 && y <> 0)
  | Ast.Logor -> fun _ x y -> bool_to_value (x <> 0 || y <> 0)
  | Ast.Bitand -> fun _ x y -> Value.Vint (x land y)
  | Ast.Bitor -> fun _ x y -> Value.Vint (x lor y)
  | Ast.Bitxor -> fun _ x y -> Value.Vint (x lxor y)
  | Ast.Shl -> fun _ x y -> Value.Vint (x lsl (y land 62))
  | Ast.Shr -> fun _ x y -> Value.Vint (x asr (y land 62))

let float_op : Ast.binop -> ctx -> float -> float -> Value.t = function
  | Ast.Add -> fun _ x y -> Value.Vfloat (x +. y)
  | Ast.Sub -> fun _ x y -> Value.Vfloat (x -. y)
  | Ast.Mul -> fun _ x y -> Value.Vfloat (x *. y)
  | Ast.Div -> fun _ x y -> Value.Vfloat (x /. y)  (* IEEE: no FPE on floats *)
  | Ast.Mod -> fun _ x y -> Value.Vfloat (Float.rem x y)
  | Ast.Eq -> fun _ x y -> bool_to_value (Float.equal x y)
  | Ast.Ne -> fun _ x y -> bool_to_value (not (Float.equal x y))
  | Ast.Lt -> fun _ x y -> bool_to_value (x < y)
  | Ast.Le -> fun _ x y -> bool_to_value (x <= y)
  | Ast.Gt -> fun _ x y -> bool_to_value (x > y)
  | Ast.Ge -> fun _ x y -> bool_to_value (x >= y)
  | Ast.Logand -> fun _ x y -> bool_to_value (x <> 0.0 && y <> 0.0)
  | Ast.Logor -> fun _ x y -> bool_to_value (x <> 0.0 || y <> 0.0)
  | Ast.Bitand | Ast.Bitor | Ast.Bitxor | Ast.Shl | Ast.Shr ->
    fun c _ _ -> type_error c "bitwise operation on floats"

(* Shadow builder for the linear ops (the only ones whose result shadow
   depends on operand shadows). *)
let lin_shadow : Ast.binop -> (int -> Smt.Linexp.t option -> int -> Smt.Linexp.t option -> Smt.Linexp.t) option
    = function
  | Ast.Add -> Some (fun x sa y sb -> Smt.Linexp.add (soc x sa) (soc y sb))
  | Ast.Sub -> Some (fun x sa y sb -> Smt.Linexp.sub (soc x sa) (soc y sb))
  | Ast.Mul ->
    Some
      (fun x sa y sb ->
        (* CREST-style linearization: scale the symbolic side by the
           other side's concrete value; two symbolic sides concretize
           the right one. *)
        match (sa, sb) with
        | Some ea, (Some _ | None) -> Smt.Linexp.scale y ea
        | None, Some eb -> Smt.Linexp.scale x eb
        | None, None -> Smt.Linexp.const (x * y))
  | Ast.Div | Ast.Mod | Ast.Eq | Ast.Ne | Ast.Lt | Ast.Le | Ast.Gt | Ast.Ge
  | Ast.Logand | Ast.Logor | Ast.Bitand | Ast.Bitor | Ast.Bitxor | Ast.Shl
  | Ast.Shr ->
    None

(* Wrap a shadow-free closure for use in the heavy tree: the result
   shadow of these nodes is always [None]. *)
let nosh env (lc : ecode) : ecode =
  if env.heavy then fun c f ->
    let v = lc c f in
    c.sh <- None;
    v
  else lc

(* Operand shapes for the light tree.  Constants and variables fuse
   straight into the consuming operator closure — no per-leaf closure,
   no indirect call; anything else falls back to a compiled [ecode]. *)
type operand =
  | Oconst of Value.t
  | Oslot of int * string  (* slot, "undefined variable" message *)
  | Ocode of ecode

(* Fused-node arithmetic: [op] is a compile-time constant in every
   caller, so both inner matches compile to jump tables — no closure
   call per node.  Case-for-case identical to [int_op]/[float_op]. *)
let apply2 (op : Ast.binop) c va vb =
  match (va, vb) with
  | Value.Vint x, Value.Vint y -> (
    match op with
    | Ast.Add -> Value.Vint (x + y)
    | Ast.Sub -> Value.Vint (x - y)
    | Ast.Mul -> Value.Vint (x * y)
    | Ast.Div ->
      if y = 0 then fault (Fault.Fpe { func = c.func });
      Value.Vint (x / y)
    | Ast.Mod ->
      if y = 0 then fault (Fault.Fpe { func = c.func });
      Value.Vint (x mod y)
    | Ast.Eq -> bool_to_value (x = y)
    | Ast.Ne -> bool_to_value (x <> y)
    | Ast.Lt -> bool_to_value (x < y)
    | Ast.Le -> bool_to_value (x <= y)
    | Ast.Gt -> bool_to_value (x > y)
    | Ast.Ge -> bool_to_value (x >= y)
    | Ast.Logand -> bool_to_value (x <> 0 && y <> 0)
    | Ast.Logor -> bool_to_value (x <> 0 || y <> 0)
    | Ast.Bitand -> Value.Vint (x land y)
    | Ast.Bitor -> Value.Vint (x lor y)
    | Ast.Bitxor -> Value.Vint (x lxor y)
    | Ast.Shl -> Value.Vint (x lsl (y land 62))
    | Ast.Shr -> Value.Vint (x asr (y land 62)))
  | (Value.Vfloat _ | Value.Vint _), (Value.Vfloat _ | Value.Vint _) -> (
    let x = as_float c va and y = as_float c vb in
    match op with
    | Ast.Add -> Value.Vfloat (x +. y)
    | Ast.Sub -> Value.Vfloat (x -. y)
    | Ast.Mul -> Value.Vfloat (x *. y)
    | Ast.Div -> Value.Vfloat (x /. y)  (* IEEE: no FPE on floats *)
    | Ast.Mod -> Value.Vfloat (Float.rem x y)
    | Ast.Eq -> bool_to_value (Float.equal x y)
    | Ast.Ne -> bool_to_value (not (Float.equal x y))
    | Ast.Lt -> bool_to_value (x < y)
    | Ast.Le -> bool_to_value (x <= y)
    | Ast.Gt -> bool_to_value (x > y)
    | Ast.Ge -> bool_to_value (x >= y)
    | Ast.Logand -> bool_to_value (x <> 0.0 && y <> 0.0)
    | Ast.Logor -> bool_to_value (x <> 0.0 || y <> 0.0)
    | Ast.Bitand | Ast.Bitor | Ast.Bitxor | Ast.Shl | Ast.Shr ->
      type_error c "bitwise operation on floats")
  | (Value.Varr_int _ | Value.Varr_float _), _
  | _, (Value.Varr_int _ | Value.Varr_float _) ->
    type_error c "arithmetic on array value"

let rec compile_expr env (e : Ast.expr) : ecode =
  match e with
  | Ast.Int n ->
    let v = Value.Vint n in
    if env.heavy then fun c _f ->
      c.sh <- None;
      v
    else fun _c _f -> v
  | Ast.Float x ->
    let v = Value.Vfloat x in
    if env.heavy then fun c _f ->
      c.sh <- None;
      v
    else fun _c _f -> v
  | Ast.Var name ->
    let i = slot env name in
    let msg = "undefined variable " ^ name in
    if env.heavy then fun c f ->
      if f.bnd.(i) then begin
        c.sh <- f.shs.(i);
        f.vals.(i)
      end
      else type_error c msg
    else fun c f -> if f.bnd.(i) then f.vals.(i) else type_error c msg
  | Ast.Len name ->
    let i = slot env name in
    let msg = "undefined variable " ^ name in
    nosh env (fun c f ->
        let v = if f.bnd.(i) then f.vals.(i) else type_error c msg in
        match v with
        | Value.Varr_int a -> Value.Vint (Array.length a)
        | Value.Varr_float a -> Value.Vint (Array.length a)
        | Value.Vint _ | Value.Vfloat _ -> type_error c "len of a scalar")
  | Ast.Idx (name, ie) ->
    let i = slot env name in
    let msg = "undefined variable " ^ name in
    let not_arr = name ^ " is not an array" in
    (* index shadow is discarded; simple index shapes fuse like binop
       operands (the array lookup still happens first: Interp's order) *)
    let fetch_index : ctx -> frame -> int =
      match operand (light env) ie with
      | Oconst v ->
        fun c _f -> as_int c v
      | Oslot (ii, mi) ->
        fun c f -> as_int c (if f.bnd.(ii) then f.vals.(ii) else type_error c mi)
      | Ocode ci -> fun c f -> as_int c (ci c f)
    in
    nosh env (fun c f ->
        (* lookup first, index second: Interp.eval's order *)
        let v = if f.bnd.(i) then f.vals.(i) else type_error c msg in
        let index = fetch_index c f in
        let check len =
          if index < 0 || index >= len then
            fault (Fault.Segfault { array = name; index; length = len; func = c.func })
        in
        match v with
        | Value.Varr_int a ->
          check (Array.length a);
          Value.Vint a.(index)
        | Value.Varr_float a ->
          check (Array.length a);
          Value.Vfloat a.(index)
        | Value.Vint _ | Value.Vfloat _ -> type_error c not_arr)
  | Ast.Unop (Ast.Neg, e1) ->
    let ce = compile_expr env e1 in
    if env.heavy then fun c f ->
      match ce c f with
      | Value.Vint n ->
        c.sh <- Option.map Smt.Linexp.neg c.sh;
        Value.Vint (-n)
      | Value.Vfloat x ->
        c.sh <- None;
        Value.Vfloat (-.x)
      | Value.Varr_int _ | Value.Varr_float _ -> type_error c "negation of array"
    else fun c f ->
      (match ce c f with
      | Value.Vint n -> Value.Vint (-n)
      | Value.Vfloat x -> Value.Vfloat (-.x)
      | Value.Varr_int _ | Value.Varr_float _ -> type_error c "negation of array")
  | Ast.Unop (Ast.Lognot, e1) ->
    let ce = compile_expr (light env) e1 in  (* operand shadow is discarded *)
    nosh env (fun c f ->
        match ce c f with
        | Value.Vint n -> bool_to_value (n = 0)
        | Value.Vfloat x -> bool_to_value (x = 0.0)
        | Value.Varr_int _ | Value.Varr_float _ -> type_error c "lognot of array")
  | Ast.Binop (op, ea, eb) -> (
    let iop = int_op op and fop = float_op op in
    match (lin_shadow op, env.heavy) with
    | Some mk, true ->
      let ca = compile_expr env ea and cb = compile_expr env eb in
      fun c f ->
        let va = ca c f in
        let sa = c.sh in
        let vb = cb c f in
        let sb = c.sh in
        (match (va, vb) with
        | Value.Vint x, Value.Vint y ->
          let r = iop c x y in
          c.sh <- Some (mk x sa y sb);
          r
        | (Value.Vfloat _ | Value.Vint _), (Value.Vfloat _ | Value.Vint _) ->
          let r = fop c (as_float c va) (as_float c vb) in
          c.sh <- None;
          r
        | (Value.Varr_int _ | Value.Varr_float _), _
        | _, (Value.Varr_int _ | Value.Varr_float _) ->
          type_error c "arithmetic on array value")
    | (Some _ | None), _ ->
      (* non-linear result shadow is always None: operands compile
         light, and simple operand shapes fuse into the operator
         closure (left operand still evaluated first, so fault order
         matches the interpreter's) *)
      let le = light env in
      let fused =
        match (operand le ea, operand le eb) with
        | Ocode ca, Ocode cb ->
          fun c f ->
            let va = ca c f in
            let vb = cb c f in
            apply2 op c va vb
        | Ocode ca, Oconst vb -> fun c f -> apply2 op c (ca c f) vb
        | Ocode ca, Oslot (ib, mb) ->
          fun c f ->
            let va = ca c f in
            let vb = if f.bnd.(ib) then f.vals.(ib) else type_error c mb in
            apply2 op c va vb
        | Oconst va, Ocode cb ->
          fun c f ->
            let vb = cb c f in
            apply2 op c va vb
        | Oconst va, Oconst vb -> fun c _f -> apply2 op c va vb
        | Oconst va, Oslot (ib, mb) ->
          fun c f ->
            let vb = if f.bnd.(ib) then f.vals.(ib) else type_error c mb in
            apply2 op c va vb
        | Oslot (ia, ma), Ocode cb ->
          fun c f ->
            let va = if f.bnd.(ia) then f.vals.(ia) else type_error c ma in
            let vb = cb c f in
            apply2 op c va vb
        | Oslot (ia, ma), Oconst vb ->
          fun c f ->
            let va = if f.bnd.(ia) then f.vals.(ia) else type_error c ma in
            apply2 op c va vb
        | Oslot (ia, ma), Oslot (ib, mb) ->
          fun c f ->
            let va = if f.bnd.(ia) then f.vals.(ia) else type_error c ma in
            let vb = if f.bnd.(ib) then f.vals.(ib) else type_error c mb in
            apply2 op c va vb
      in
      nosh env fused)

and operand env (e : Ast.expr) : operand =
  match e with
  | Ast.Int n -> Oconst (Value.Vint n)
  | Ast.Float x -> Oconst (Value.Vfloat x)
  | Ast.Var name -> Oslot (slot env name, "undefined variable " ^ name)
  | Ast.Len _ | Ast.Idx _ | Ast.Unop _ | Ast.Binop _ -> Ocode (compile_expr env e)

(* ------------------------------------------------------------------ *)
(* Conditions                                                          *)
(* ------------------------------------------------------------------ *)

let rel_of_binop = function
  | Ast.Eq -> Some Smt.Constr.Eq
  | Ast.Ne -> Some Smt.Constr.Ne
  | Ast.Lt -> Some Smt.Constr.Lt
  | Ast.Le -> Some Smt.Constr.Le
  | Ast.Gt -> Some Smt.Constr.Gt
  | Ast.Ge -> Some Smt.Constr.Ge
  | Ast.Add | Ast.Sub | Ast.Mul | Ast.Div | Ast.Mod | Ast.Logand | Ast.Logor
  | Ast.Bitand | Ast.Bitor | Ast.Bitxor | Ast.Shl | Ast.Shr ->
    None

(* Direct comparisons for condition position: same truth value as
   routing through [int_op]/[float_op], without boxing the result.
   Only defined for the ops [rel_of_binop] accepts. *)
let int_rel : Ast.binop -> int -> int -> bool = function
  | Ast.Eq -> ( = )
  | Ast.Ne -> ( <> )
  | Ast.Lt -> ( < )
  | Ast.Le -> ( <= )
  | Ast.Gt -> ( > )
  | Ast.Ge -> ( >= )
  | _ -> invalid_arg "Compile.int_rel"

let float_rel : Ast.binop -> float -> float -> bool = function
  | Ast.Eq -> Float.equal
  | Ast.Ne -> fun x y -> not (Float.equal x y)
  | Ast.Lt -> ( < )
  | Ast.Le -> ( <= )
  | Ast.Gt -> ( > )
  | Ast.Ge -> ( >= )
  | _ -> invalid_arg "Compile.float_rel"

(* Fused-condition comparison: like [apply2], [op] is a compile-time
   constant at every caller (always relational, guarded by
   [rel_of_binop]), so the matches compile to jump tables.  Truth
   values are identical to routing through [int_rel]/[float_rel]. *)
let rel_apply (op : Ast.binop) c va vb =
  match (va, vb) with
  | Value.Vint x, Value.Vint y -> (
    match op with
    | Ast.Eq -> x = y
    | Ast.Ne -> x <> y
    | Ast.Lt -> x < y
    | Ast.Le -> x <= y
    | Ast.Gt -> x > y
    | Ast.Ge -> x >= y
    | _ -> invalid_arg "Compile.rel_apply")
  | (Value.Vfloat _ | Value.Vint _), (Value.Vfloat _ | Value.Vint _) -> (
    let x = as_float c va and y = as_float c vb in
    match op with
    | Ast.Eq -> Float.equal x y
    | Ast.Ne -> not (Float.equal x y)
    | Ast.Lt -> x < y
    | Ast.Le -> x <= y
    | Ast.Gt -> x > y
    | Ast.Ge -> x >= y
    | _ -> invalid_arg "Compile.rel_apply")
  | (Value.Varr_int _ | Value.Varr_float _), _
  | _, (Value.Varr_int _ | Value.Varr_float _) ->
    type_error c "arithmetic on array value"

(* Heavy condition closures leave their branch constraint in [c.cs];
   light ones never touch it (the statement layer passes [None]). *)
let rec compile_cond env (e : Ast.expr) : ccode =
  match e with
  | Ast.Binop (op, ea, eb) when rel_of_binop op <> None ->
    let rel = Option.get (rel_of_binop op) in
    let irel = int_rel op and frel = float_rel op in
    if env.heavy then begin
      let ca = compile_expr env ea and cb = compile_expr env eb in
      fun c f ->
        let va = ca c f in
        let sa = c.sh in
        let vb = cb c f in
        let sb = c.sh in
        match (va, vb) with
        | Value.Vint x, Value.Vint y ->
          let taken = irel x y in
          c.cs <-
            (let cns = Smt.Constr.cmp (soc x sa) rel (soc y sb) in
             (* constants on both sides: a concrete branch, no constraint *)
             if Smt.Varid.Set.is_empty (Smt.Constr.vars cns) then None
             else Some (if taken then cns else Smt.Constr.negate cns));
          taken
        | (Value.Vfloat _ | Value.Vint _), (Value.Vfloat _ | Value.Vint _) ->
          (* float comparisons: concrete only (Interp re-evaluates the
             whole pure expression here; values are identical) *)
          c.cs <- None;
          frel (as_float c va) (as_float c vb)
        | (Value.Varr_int _ | Value.Varr_float _), _
        | _, (Value.Varr_int _ | Value.Varr_float _) ->
          type_error c "arithmetic on array value"
    end
    else begin
      (* light conditions fuse simple operands exactly like light
         binops (left fetched first for interp fault order) *)
      let le = light env in
      match (operand le ea, operand le eb) with
      | Ocode ca, Ocode cb ->
        fun c f ->
          let va = ca c f in
          let vb = cb c f in
          rel_apply op c va vb
      | Ocode ca, Oconst vb -> fun c f -> rel_apply op c (ca c f) vb
      | Ocode ca, Oslot (ib, mb) ->
        fun c f ->
          let va = ca c f in
          let vb = if f.bnd.(ib) then f.vals.(ib) else type_error c mb in
          rel_apply op c va vb
      | Oconst va, Ocode cb ->
        fun c f ->
          let vb = cb c f in
          rel_apply op c va vb
      | Oconst va, Oconst vb -> fun c _f -> rel_apply op c va vb
      | Oconst va, Oslot (ib, mb) ->
        fun c f ->
          let vb = if f.bnd.(ib) then f.vals.(ib) else type_error c mb in
          rel_apply op c va vb
      | Oslot (ia, ma), Ocode cb ->
        fun c f ->
          let va = if f.bnd.(ia) then f.vals.(ia) else type_error c ma in
          let vb = cb c f in
          rel_apply op c va vb
      | Oslot (ia, ma), Oconst vb ->
        fun c f ->
          let va = if f.bnd.(ia) then f.vals.(ia) else type_error c ma in
          rel_apply op c va vb
      | Oslot (ia, ma), Oslot (ib, mb) ->
        fun c f ->
          let va = if f.bnd.(ia) then f.vals.(ia) else type_error c ma in
          let vb = if f.bnd.(ib) then f.vals.(ib) else type_error c mb in
          rel_apply op c va vb
    end
  | Ast.Unop (Ast.Lognot, inner) ->
    (* the inner constraint already holds for the values that were
       observed; negation flips only the boolean outcome *)
    let cc = compile_cond env inner in
    fun c f -> not (cc c f)
  | Ast.Int _ | Ast.Float _ | Ast.Var _ | Ast.Idx _ | Ast.Len _
  | Ast.Unop (Ast.Neg, _) | Ast.Binop _ ->
    (* C semantics: if (e) means e != 0 *)
    let ce = compile_expr env e in
    if env.heavy then fun c f ->
      match ce c f with
      | Value.Vint n ->
        let taken = n <> 0 in
        c.cs <-
          (match c.sh with
          | Some exp when not (Smt.Varid.Set.is_empty (Smt.Linexp.vars exp)) ->
            let cns = Smt.Constr.make exp Smt.Constr.Ne in
            Some (if taken then cns else Smt.Constr.negate cns)
          | Some _ | None -> None);
        taken
      | Value.Vfloat x ->
        c.cs <- None;
        x <> 0.0
      | Value.Varr_int _ | Value.Varr_float _ -> type_error c "array used as condition"
    else fun c f ->
      (match ce c f with
      | Value.Vint n -> n <> 0
      | Value.Vfloat x -> x <> 0.0
      | Value.Varr_int _ | Value.Varr_float _ -> type_error c "array used as condition")

(* ------------------------------------------------------------------ *)
(* MPI plumbing                                                        *)
(* ------------------------------------------------------------------ *)

let expect_int c = function
  | Mpi_iface.Rint n -> n
  | Mpi_iface.Runit | Mpi_iface.Rvalue _ | Mpi_iface.Rvalues _ | Mpi_iface.Rnone ->
    type_error c "MPI reply: expected an int"

let expect_value c = function
  | Mpi_iface.Rvalue v -> v
  | Mpi_iface.Runit | Mpi_iface.Rint _ | Mpi_iface.Rvalues _ | Mpi_iface.Rnone ->
    type_error c "MPI reply: expected a value"

let compile_comm env = function
  | Ast.World -> fun _c _f -> Mpi_iface.world
  | Ast.Comm_var name ->
    let i = slot env name in
    let msg = "undefined variable " ^ name in
    fun c f -> as_int c (if f.bnd.(i) then f.vals.(i) else type_error c msg)

(* MPI operand shadows are always discarded by the interpreter, so every
   operand compiles through the light expression compiler. *)
let cint env e =
  let ce = compile_expr (light env) e in
  fun c f -> as_int c (ce c f)

let cint_opt env = function
  | None -> fun _c _f -> None
  | Some e ->
    let ci = cint env e in
    fun c f -> Some (ci c f)

let expr_of_lval = function
  | Ast.Lvar name -> Ast.Var name
  | Ast.Lidx (name, e) -> Ast.Idx (name, e)

(* Store a scalar-or-array MPI payload into an lval: Interp.store_lval.
   The Lidx case mirrors the interpreter's synthetic [Assign (Lidx _)]:
   the array-payload error fires before the synthetic statement's tick,
   and the tick precedes the index evaluation. *)
let compile_store env (lv : Ast.lval) : ctx -> frame -> Value.t -> unit =
  match lv with
  | Ast.Lvar name ->
    let i = slot env name in
    if env.heavy then fun c f value ->
      if f.bnd.(i) then begin
        f.vals.(i) <-
          (match f.vals.(i) with
          | Value.Vint _ -> coerce c Ast.Tint value
          | Value.Vfloat _ -> coerce c Ast.Tfloat value
          | Value.Varr_int _ | Value.Varr_float _ -> value);
        f.shs.(i) <- None
      end
      else begin
        f.vals.(i) <- value;
        f.shs.(i) <- None;
        f.bnd.(i) <- true
      end
    else fun c f value ->
      if f.bnd.(i) then
        f.vals.(i) <-
          (match f.vals.(i) with
          | Value.Vint _ -> coerce c Ast.Tint value
          | Value.Vfloat _ -> coerce c Ast.Tfloat value
          | Value.Varr_int _ | Value.Varr_float _ -> value)
      else begin
        f.vals.(i) <- value;
        f.bnd.(i) <- true
      end
  | Ast.Lidx (name, ie) ->
    let i = slot env name in
    let msg = "undefined variable " ^ name in
    let not_arr = name ^ " is not an array" in
    let ci = compile_expr (light env) ie in
    fun c f value ->
      (match value with
      | Value.Varr_int _ | Value.Varr_float _ ->
        type_error c "cannot store array into array cell"
      | Value.Vint _ | Value.Vfloat _ -> ());
      tick c;  (* the synthetic Assign statement's tick *)
      let index = as_int c (ci c f) in
      if not f.bnd.(i) then type_error c msg;
      let check len =
        if index < 0 || index >= len then
          fault (Fault.Segfault { array = name; index; length = len; func = c.func })
      in
      match f.vals.(i) with
      | Value.Varr_int a ->
        check (Array.length a);
        a.(index) <- as_int c value
      | Value.Varr_float a ->
        check (Array.length a);
        a.(index) <- as_float c value
      | Value.Vint _ | Value.Vfloat _ -> type_error c not_arr

(* Bind a fresh slot the way Hashtbl.replace binds a fresh name. *)
let set_slot env i =
  if env.heavy then fun f value shadow ->
    f.vals.(i) <- value;
    f.shs.(i) <- shadow;
    f.bnd.(i) <- true
  else fun f value _shadow ->
    f.vals.(i) <- value;
    f.bnd.(i) <- true

(* Operand evaluation order below follows the interpreter exactly — and
   the interpreter builds Mpi_iface request records inline, so it
   inherits OCaml's right-to-left record-field evaluation. Each compiled
   case spells that order out with explicit lets. *)
let compile_mpi env (m : Ast.mpi) : scode =
  match m with
  | Ast.Comm_rank (cref, var) ->
    let ch = compile_comm env cref in
    let set = set_slot env (slot env var) in
    let is_world = cref = Ast.World in
    if env.heavy then fun c f ->
      let comm = ch c f in
      let rank = expect_int c (c.hooks.Interp.mpi (Mpi_iface.Rank comm)) in
      let kind = if is_world then Interp.Rank_world else Interp.Rank_comm comm in
      let shadow = c.hooks.Interp.on_mpi_sem kind rank in
      set f (Value.Vint rank) shadow
    else fun c f ->
      let comm = ch c f in
      let rank = expect_int c (c.hooks.Interp.mpi (Mpi_iface.Rank comm)) in
      set f (Value.Vint rank) None
  | Ast.Comm_size (cref, var) ->
    let ch = compile_comm env cref in
    let set = set_slot env (slot env var) in
    let is_world = cref = Ast.World in
    if env.heavy then fun c f ->
      let comm = ch c f in
      let size = expect_int c (c.hooks.Interp.mpi (Mpi_iface.Size comm)) in
      let kind = if is_world then Interp.Size_world else Interp.Size_comm comm in
      let shadow = c.hooks.Interp.on_mpi_sem kind size in
      set f (Value.Vint size) shadow
    else fun c f ->
      let comm = ch c f in
      let size = expect_int c (c.hooks.Interp.mpi (Mpi_iface.Size comm)) in
      set f (Value.Vint size) None
  | Ast.Comm_split { comm; color; key; into } ->
    let ch = compile_comm env comm in
    let ccolor = cint env color in
    let ckey = cint env key in
    let set = set_slot env (slot env into) in
    fun c f ->
      let key = ckey c f in
      let color = ccolor c f in
      let comm = ch c f in
      let reply = c.hooks.Interp.mpi (Mpi_iface.Split { comm; color; key }) in
      set f (Value.Vint (expect_int c reply)) None
  | Ast.Barrier comm ->
    let ch = compile_comm env comm in
    fun c f ->
      let _ = c.hooks.Interp.mpi (Mpi_iface.Barrier (ch c f)) in
      ()
  | Ast.Send { comm; dest; tag; data } ->
    let cd = compile_expr (light env) data in
    let ctag = cint env tag in
    let cdest = cint env dest in
    let ch = compile_comm env comm in
    fun c f ->
      let v = cd c f in
      let tag = ctag c f in
      let dest = cdest c f in
      let comm = ch c f in
      let _ =
        c.hooks.Interp.mpi (Mpi_iface.Send { comm; dest; tag; data = Value.copy v })
      in
      ()
  | Ast.Recv { comm; src; tag; into } ->
    let ctag = cint_opt env tag in
    let csrc = cint_opt env src in
    let ch = compile_comm env comm in
    let store = compile_store env into in
    fun c f ->
      let tag = ctag c f in
      let src = csrc c f in
      let comm = ch c f in
      let reply = c.hooks.Interp.mpi (Mpi_iface.Recv { comm; src; tag }) in
      store c f (expect_value c reply)
  | Ast.Isend { comm; dest; tag; data; req } ->
    let cd = compile_expr (light env) data in
    let ctag = cint env tag in
    let cdest = cint env dest in
    let ch = compile_comm env comm in
    let set = set_slot env (slot env req) in
    fun c f ->
      let v = cd c f in
      let tag = ctag c f in
      let dest = cdest c f in
      let comm = ch c f in
      let reply =
        c.hooks.Interp.mpi (Mpi_iface.Isend { comm; dest; tag; data = Value.copy v })
      in
      set f (Value.Vint (expect_int c reply)) None
  | Ast.Irecv { comm; src; tag; req } ->
    let ctag = cint_opt env tag in
    let csrc = cint_opt env src in
    let ch = compile_comm env comm in
    let set = set_slot env (slot env req) in
    fun c f ->
      let tag = ctag c f in
      let src = csrc c f in
      let comm = ch c f in
      let reply = c.hooks.Interp.mpi (Mpi_iface.Irecv { comm; src; tag }) in
      set f (Value.Vint (expect_int c reply)) None
  | Ast.Wait { req; into } -> (
    let creq = cint env req in
    match into with
    | Some lv ->
      let store = compile_store env lv in
      fun c f -> (
        match c.hooks.Interp.mpi (Mpi_iface.Wait (creq c f)) with
        | Mpi_iface.Runit -> ()  (* completed isend *)
        | Mpi_iface.Rvalue v -> store c f v
        | Mpi_iface.Rint _ | Mpi_iface.Rvalues _ | Mpi_iface.Rnone ->
          type_error c "MPI reply: bad wait reply")
    | None ->
      fun c f -> (
        match c.hooks.Interp.mpi (Mpi_iface.Wait (creq c f)) with
        | Mpi_iface.Runit | Mpi_iface.Rvalue _ -> ()
        | Mpi_iface.Rint _ | Mpi_iface.Rvalues _ | Mpi_iface.Rnone ->
          type_error c "MPI reply: bad wait reply"))
  | Ast.Bcast { comm; root; data } ->
    let ch = compile_comm env comm in
    let croot = cint env root in
    let cpayload = compile_expr (light env) (expr_of_lval data) in
    let store = compile_store env data in
    fun c f ->
      let comm_h = ch c f in
      let root_v = croot c f in
      let my_rank = expect_int c (c.hooks.Interp.mpi (Mpi_iface.Rank comm_h)) in
      let payload =
        if my_rank = root_v then Some (Value.copy (cpayload c f)) else None
      in
      let reply =
        c.hooks.Interp.mpi
          (Mpi_iface.Bcast { comm = comm_h; root = root_v; data = payload })
      in
      store c f (expect_value c reply)
  | Ast.Reduce { comm; op; root; data; into } ->
    let cd = compile_expr (light env) data in
    let croot = cint env root in
    let ch = compile_comm env comm in
    let mop = Mpi_iface.reduce_op_of_ast op in
    let store = compile_store env into in
    fun c f -> (
      let v = cd c f in
      let root = croot c f in
      let comm = ch c f in
      let reply =
        c.hooks.Interp.mpi
          (Mpi_iface.Reduce { comm; op = mop; root; data = Value.copy v })
      in
      match reply with
      | Mpi_iface.Rnone -> ()  (* non-root *)
      | Mpi_iface.Rvalue result -> store c f result
      | Mpi_iface.Runit | Mpi_iface.Rint _ | Mpi_iface.Rvalues _ ->
        type_error c "MPI reply: bad reduce reply")
  | Ast.Allreduce { comm; op; data; into } ->
    let cd = compile_expr (light env) data in
    let ch = compile_comm env comm in
    let mop = Mpi_iface.reduce_op_of_ast op in
    let store = compile_store env into in
    fun c f ->
      let v = cd c f in
      let comm = ch c f in
      let reply =
        c.hooks.Interp.mpi (Mpi_iface.Allreduce { comm; op = mop; data = Value.copy v })
      in
      store c f (expect_value c reply)
  | Ast.Gather { comm; root; data; into } ->
    let cd = compile_expr (light env) data in
    let croot = cint env root in
    let ch = compile_comm env comm in
    let set = set_slot env (slot env into) in
    fun c f -> (
      let v = cd c f in
      let root = croot c f in
      let comm = ch c f in
      let reply =
        c.hooks.Interp.mpi (Mpi_iface.Gather { comm; root; data = Value.copy v })
      in
      match reply with
      | Mpi_iface.Rnone -> ()
      | Mpi_iface.Rvalue arr -> set f arr None
      | Mpi_iface.Runit | Mpi_iface.Rint _ | Mpi_iface.Rvalues _ ->
        type_error c "MPI reply: bad gather reply")
  | Ast.Scatter { comm; root; data; into } ->
    let ch = compile_comm env comm in
    let croot = cint env root in
    let i_data = slot env data in
    let data_msg = "undefined variable " ^ data in
    let store = compile_store env into in
    fun c f ->
      let comm_h = ch c f in
      let root_v = croot c f in
      let my_rank = expect_int c (c.hooks.Interp.mpi (Mpi_iface.Rank comm_h)) in
      let payload =
        if my_rank = root_v then
          Some
            (Value.copy
               (if f.bnd.(i_data) then f.vals.(i_data) else type_error c data_msg))
        else None
      in
      let reply =
        c.hooks.Interp.mpi
          (Mpi_iface.Scatter { comm = comm_h; root = root_v; data = payload })
      in
      store c f (expect_value c reply)
  | Ast.Allgather { comm; data; into } ->
    let cd = compile_expr (light env) data in
    let ch = compile_comm env comm in
    let set = set_slot env (slot env into) in
    fun c f ->
      let v = cd c f in
      let comm = ch c f in
      let reply =
        c.hooks.Interp.mpi (Mpi_iface.Allgather { comm; data = Value.copy v })
      in
      set f (expect_value c reply) None
  | Ast.Alltoall { comm; data; into } ->
    let i_data = slot env data in
    let data_msg = "undefined variable " ^ data in
    let ch = compile_comm env comm in
    let set = set_slot env (slot env into) in
    fun c f ->
      let v =
        Value.copy (if f.bnd.(i_data) then f.vals.(i_data) else type_error c data_msg)
      in
      let comm = ch c f in
      let reply = c.hooks.Interp.mpi (Mpi_iface.Alltoall { comm; data = v }) in
      set f (expect_value c reply) None

(* ------------------------------------------------------------------ *)
(* Statements (CPS: each closure ends by running the rest of the block) *)
(* ------------------------------------------------------------------ *)

let rec compile_block env block (k : scode) : scode =
  List.fold_right (compile_stmt env) block k

and compile_stmt env (stmt : Ast.stmt) (k : scode) : scode =
  match stmt with
  | Ast.Nop ->
    fun c f ->
      tick c;
      k c f
  | Ast.Decl (name, Ast.Tint, e) ->
    let i = slot env name in
    let ce = compile_expr env e in
    if env.heavy then fun c f ->
      tick c;
      let value = coerce c Ast.Tint (ce c f) in
      f.vals.(i) <- value;
      f.shs.(i) <- c.sh;
      f.bnd.(i) <- true;
      k c f
    else fun c f ->
      tick c;
      f.vals.(i) <- coerce c Ast.Tint (ce c f);
      f.bnd.(i) <- true;
      k c f
  | Ast.Decl (name, Ast.Tfloat, e) ->
    (* a float's shadow is always None: the rhs compiles light *)
    let i = slot env name in
    let ce = compile_expr (light env) e in
    if env.heavy then fun c f ->
      tick c;
      f.vals.(i) <- coerce c Ast.Tfloat (ce c f);
      f.shs.(i) <- None;
      f.bnd.(i) <- true;
      k c f
    else fun c f ->
      tick c;
      f.vals.(i) <- coerce c Ast.Tfloat (ce c f);
      f.bnd.(i) <- true;
      k c f
  | Ast.Decl_arr (name, ctype, size_e) ->
    let i = slot env name in
    let cs = compile_expr (light env) size_e in
    let set = set_slot env i in
    fun c f ->
      tick c;
      let n = as_int c (cs c f) in
      if n < 0 then
        fault (Fault.Segfault { array = name; index = n; length = 0; func = c.func });
      set f (zero_value ctype n) None;
      k c f
  | Ast.Assign (Ast.Lvar name, e) ->
    let i = slot env name in
    let msg = "undefined variable " ^ name in
    let ce = compile_expr env e in
    if env.heavy then fun c f ->
      tick c;
      let v = ce c f in
      let s = c.sh in
      if not f.bnd.(i) then type_error c msg;  (* lookup after rhs eval *)
      let value =
        match f.vals.(i) with
        | Value.Vint _ -> coerce c Ast.Tint v
        | Value.Vfloat _ -> coerce c Ast.Tfloat v
        | Value.Varr_int _ | Value.Varr_float _ -> (
          (* whole-array assignment: only from another array *)
          match v with
          | Value.Varr_int _ | Value.Varr_float _ -> v
          | Value.Vint _ | Value.Vfloat _ -> type_error c "scalar into array variable")
      in
      f.vals.(i) <- value;
      f.shs.(i) <- (match value with Value.Vint _ -> s | _ -> None);
      k c f
    else fun c f ->
      tick c;
      let v = ce c f in
      if not f.bnd.(i) then type_error c msg;
      f.vals.(i) <-
        (match f.vals.(i) with
        | Value.Vint _ -> coerce c Ast.Tint v
        | Value.Vfloat _ -> coerce c Ast.Tfloat v
        | Value.Varr_int _ | Value.Varr_float _ -> (
          match v with
          | Value.Varr_int _ | Value.Varr_float _ -> v
          | Value.Vint _ | Value.Vfloat _ -> type_error c "scalar into array variable"));
      k c f
  | Ast.Assign (Ast.Lidx (name, ie), e) ->
    (* index and rhs shadows are both discarded: compile light *)
    let i = slot env name in
    let msg = "undefined variable " ^ name in
    let not_arr = name ^ " is not an array" in
    let le = light env in
    let ci = compile_expr le ie in
    let ce = compile_expr le e in
    fun c f ->
      tick c;
      let index = as_int c (ci c f) in
      let v = ce c f in
      if not f.bnd.(i) then type_error c msg;
      let check len =
        if index < 0 || index >= len then
          fault (Fault.Segfault { array = name; index; length = len; func = c.func })
      in
      (match f.vals.(i) with
      | Value.Varr_int a ->
        check (Array.length a);
        a.(index) <- as_int c v
      | Value.Varr_float a ->
        check (Array.length a);
        a.(index) <- as_float c v
      | Value.Vint _ | Value.Vfloat _ -> type_error c not_arr);
      k c f
  | Ast.If { id; cond; then_; else_ } ->
    let cc = compile_cond env cond in
    let ct = compile_block env then_ k in
    let ce = compile_block env else_ k in
    if env.heavy then fun c f ->
      tick c;
      let taken = cc c f in
      c.hooks.Interp.on_branch ~id ~taken ~constr:c.cs;
      if taken then ct c f else ce c f
    else fun c f ->
      tick c;
      let taken = cc c f in
      c.hooks.Interp.on_branch ~id ~taken ~constr:None;
      if taken then ct c f else ce c f
  | Ast.While { id; cond; body } ->
    let cc = compile_cond env cond in
    let body_ref = ref (fun _c _f -> ()) in
    let loop =
      if env.heavy then fun c f ->
        tick c;
        let taken = cc c f in
        c.hooks.Interp.on_branch ~id ~taken ~constr:c.cs;
        if taken then !body_ref c f else k c f
      else fun c f ->
        tick c;
        let taken = cc c f in
        c.hooks.Interp.on_branch ~id ~taken ~constr:None;
        if taken then !body_ref c f else k c f
    in
    body_ref := compile_block env body loop;
    fun c f ->
      tick c;  (* the While statement's own tick; loop ticks per iteration *)
      loop c f
  | Ast.Call (name, args) ->
    let call = compile_call env name args in
    fun c f ->
      tick c;
      let _ = call c f in
      k c f
  | Ast.Call_assign (dst, name, args) ->
    let call = compile_call env name args in
    let i = slot env dst in
    let msg = "undefined variable " ^ dst in
    let none_msg = name ^ " returned no value" in
    if env.heavy then fun c f ->
      tick c;
      (match call c f with
      | Some (v, s) ->
        if not f.bnd.(i) then type_error c msg;
        f.vals.(i) <-
          (match f.vals.(i) with
          | Value.Vint _ -> coerce c Ast.Tint v
          | Value.Vfloat _ -> coerce c Ast.Tfloat v
          | Value.Varr_int _ | Value.Varr_float _ -> v);
        f.shs.(i) <- (match f.vals.(i) with Value.Vint _ -> s | _ -> None)
      | None -> type_error c none_msg);
      k c f
    else fun c f ->
      tick c;
      (match call c f with
      | Some (v, _) ->
        if not f.bnd.(i) then type_error c msg;
        f.vals.(i) <-
          (match f.vals.(i) with
          | Value.Vint _ -> coerce c Ast.Tint v
          | Value.Vfloat _ -> coerce c Ast.Tfloat v
          | Value.Varr_int _ | Value.Varr_float _ -> v)
      | None -> type_error c none_msg);
      k c f
  | Ast.Return None ->
    (* set the return register and fall off the closure chain (no [k]):
       every enclosing statement's continuation call is in tail
       position, so control lands back at the call site *)
    fun c _f ->
      tick c;
      c.ret <- None;
      c.returning <- true
  | Ast.Return (Some e) ->
    let ce = compile_expr env e in
    if env.heavy then fun c f ->
      tick c;
      let v = ce c f in
      c.ret <- Some (v, c.sh);
      c.returning <- true
    else fun c f ->
      tick c;
      c.ret <- Some (ce c f, None);
      c.returning <- true
  | Ast.Assert (cond, message) ->
    (* the constraint is discarded, so even the heavy tree uses the
       light condition compiler (shadow computation is pure) *)
    let cc = compile_cond (light env) cond in
    fun c f ->
      tick c;
      if not (cc c f) then fault (Fault.Assert_fail { message; func = c.func });
      k c f
  | Ast.Abort message ->
    fun c _f ->
      tick c;
      fault (Fault.Abort_called { message; func = c.func })
  | Ast.Exit code ->
    let ce = compile_expr (light env) code in
    fun c f ->
      tick c;
      raise (Exit_exn (as_int c (ce c f)))
  | Ast.Input decl ->
    let set = set_slot env (slot env decl.Ast.iname) in
    if env.heavy then fun c f ->
      tick c;
      let concrete = c.hooks.Interp.input_value decl in
      let shadow = c.hooks.Interp.on_input decl concrete in
      set f (Value.Vint concrete) shadow;
      k c f
    else fun c f ->
      tick c;
      set f (Value.Vint (c.hooks.Interp.input_value decl)) None;
      k c f
  | Ast.Mpi m ->
    let cm = compile_mpi env m in
    fun c f ->
      tick c;
      cm c f;
      k c f

and compile_call env name args : ctx -> frame -> (Value.t * Smt.Linexp.t option) option
    =
  match Hashtbl.find_opt env.funcs name with
  | None ->
    (* resolved at compile time; faults at run time like the interpreter,
       before any argument is evaluated *)
    let msg = Printf.sprintf "undefined function %s" name in
    fun c _f -> type_error c msg
  | Some cf ->
    if List.length cf.cf_params <> List.length args then begin
      let msg = Printf.sprintf "arity mismatch calling %s" name in
      fun c _f -> type_error c msg
    end
    else begin
      let binders =
        Array.of_list
          (List.map2
             (fun (pslot, ctype) arg ->
               let ca = compile_expr env arg in
               if env.heavy then fun c f nf ->
                 let v = ca c f in
                 let s = c.sh in
                 let value =
                   match v with
                   | Value.Vint _ | Value.Vfloat _ -> coerce c ctype v
                   | Value.Varr_int _ | Value.Varr_float _ -> v
                   (* arrays pass by reference *)
                 in
                 nf.vals.(pslot) <- value;
                 nf.shs.(pslot) <- (match value with Value.Vint _ -> s | _ -> None);
                 nf.bnd.(pslot) <- true
               else fun c f nf ->
                 let v = ca c f in
                 nf.vals.(pslot) <-
                   (match v with
                   | Value.Vint _ | Value.Vfloat _ -> coerce c ctype v
                   | Value.Varr_int _ | Value.Varr_float _ -> v);
                 nf.bnd.(pslot) <- true)
             cf.cf_params args)
      in
      let heavy = env.heavy in
      let idx = cf.cf_index in
      let nslots = cf.cf_nslots in
      fun c f ->
        let nf =
          match c.pools.(idx) with
          | fr :: rest ->
            c.pools.(idx) <- rest;
            fr
          | [] -> make_frame heavy nslots
        in
        Array.iter (fun b -> b c f nf) binders;
        let saved = c.func in
        c.func <- name;
        c.hooks.Interp.on_func_enter name;
        cf.cf_body c nf;
        let result =
          if c.returning then begin
            c.returning <- false;
            let r = c.ret in
            c.ret <- None;
            r
          end
          else None
        in
        (* not restored on a fault, matching the interpreter's reports;
           a fault (or exit) also skips the frame recycle below — the
           execution is over, the frame is garbage *)
        c.func <- saved;
        (* recycle: clearing [bnd] is enough to make the frame fresh —
           every read is bnd-guarded and every bind rewrites val (and
           shadow, in heavy frames) before setting its bit *)
        Array.fill nf.bnd 0 nslots false;
        c.pools.(idx) <- nf :: c.pools.(idx);
        result
    end

(* ------------------------------------------------------------------ *)
(* Whole-program compilation                                           *)
(* ------------------------------------------------------------------ *)

type entrycode = ctx -> unit

let compile_variant ~heavy (program : Ast.program) : entrycode * int * int =
  let funcs = Hashtbl.create 16 in
  (* pass 1: register every function (first definition wins, matching
     Ast.find_func) so calls resolve regardless of definition order *)
  let next_index = ref 0 in
  let uniq =
    List.filter_map
      (fun fn ->
        if Hashtbl.mem funcs fn.Ast.fname then None
        else begin
          let cf_slots, cf_nslots = collect_slots fn in
          let cf_params =
            List.map (fun (p, ty) -> (Hashtbl.find cf_slots p, ty)) fn.Ast.params
          in
          (* definition order is stable across the heavy and light
             passes, so [cf_index] means the same function in both
             variants and one per-run [pools] array serves either *)
          let cf_index = !next_index in
          incr next_index;
          let cf =
            { cf_index; cf_params; cf_nslots; cf_slots; cf_body = (fun _c _f -> ()) }
          in
          Hashtbl.add funcs fn.Ast.fname cf;
          Some (fn, cf)
        end)
      program.Ast.funcs
  in
  (* pass 2: compile bodies (recursion and forward references resolve
     through the mutable cf_body field) *)
  List.iter
    (fun (fn, cf) ->
      let env = { heavy; slots = cf.cf_slots; funcs } in
      cf.cf_body <- compile_block env fn.Ast.body (fun _c _f -> ()))
    uniq;
  let n_slots = List.fold_left (fun n (_, cf) -> n + cf.cf_nslots) 0 uniq in
  let entry =
    match Ast.find_func program program.Ast.entry with
    | None ->
      let msg = Printf.sprintf "no entry function %s" program.Ast.entry in
      fun c -> type_error c msg
    | Some fn ->
      if fn.Ast.params <> [] then fun c ->
        type_error c "entry function takes no parameters"
      else begin
        let cf = Hashtbl.find funcs fn.Ast.fname in
        let fname = fn.Ast.fname in
        fun c ->
          c.hooks.Interp.on_func_enter fname;
          let f = make_frame heavy cf.cf_nslots in
          (try cf.cf_body c f with Exit_exn _ -> ());
          (* a top-level [return] just ends the run *)
          c.returning <- false;
          c.ret <- None
      end
  in
  (entry, List.length uniq, n_slots)

type t = {
  t_program : Ast.program;
  heavy_entry : entrycode;
  light_entry : entrycode;
  t_funcs : int;
  t_conds : int;
  t_slots : int;
}

let compile (program : Ast.program) : t =
  let heavy_entry, n_funcs, n_slots = compile_variant ~heavy:true program in
  let light_entry, _, _ = compile_variant ~heavy:false program in
  {
    t_program = program;
    heavy_entry;
    light_entry;
    t_funcs = n_funcs;
    t_conds = Ast.conditionals_in_program program;
    t_slots = n_slots;
  }

let program t = t.t_program
let funcs t = t.t_funcs
let conds t = t.t_conds
let slots t = t.t_slots

(* ------------------------------------------------------------------ *)
(* Entry point                                                         *)
(* ------------------------------------------------------------------ *)

let m_runs = Obs.Metrics.counter "compiled.runs"
let m_faults = Obs.Metrics.counter "compiled.faults"
let m_steps = Obs.Metrics.histogram "compiled.steps_per_run"

let run t (hooks : Interp.hooks) =
  (* same span discipline as Interp.run: one "compiled" span per
     simulated process, covering suspensions at MPI calls *)
  let tk0 = if Obs.Timeline.on () then Obs.Timeline.tick () else 0 in
  let c =
    {
      hooks;
      steps = 0;
      func = t.t_program.Ast.entry;
      sh = None;
      cs = None;
      ret = None;
      returning = false;
      pools = Array.make (max 1 t.t_funcs) [];
    }
  in
  let entry =
    match hooks.Interp.mode with
    | Interp.Heavy -> t.heavy_entry
    | Interp.Light -> t.light_entry
  in
  let result =
    match entry c with () -> Ok () | exception Fault.Fault f -> Error f
  in
  Obs.Metrics.incr m_runs;
  Obs.Metrics.observe_int m_steps c.steps;
  if Result.is_error result then Obs.Metrics.incr m_faults;
  if Obs.Timeline.on () then
    Obs.Timeline.record ~kind:"compiled" ~t0:tk0 ~t1:(Obs.Timeline.tick ());
  result
