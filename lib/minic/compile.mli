(** One-shot compiler from the checked, instrumented AST to OCaml
    closures.

    [compile program] is run once per campaign; the resulting {!t} is
    immutable and safe to share read-only across worker domains.  All
    per-execution state lives in a per-run frame allocated by {!run},
    so repeated runs against the same compiled program are independent.

    The compiled executor is observationally byte-identical to
    {!Interp.run}: same values, same faults (same messages, same
    ordering of operand evaluation), same step accounting against
    [step_limit], same [on_branch] / [on_input] / [on_func_enter] /
    [on_mpi_sem] hook invocations in the same order, and the same MPI
    calls issued through the same {!Interp.mpi_iface}.  The qcheck
    differential suite in [test/test_compile.ml] enforces this.

    What is resolved at compile time: variable names to frame slots,
    function names and arities, entry-point lookup, per-operator
    arithmetic dispatch, branch ids, and — in the light variant — the
    entire symbolic shadow layer (light closures carry no shadow code
    at all; heavy closures drop shadow tracking for subexpressions
    whose shadows the interpreter provably discards). *)

type t
(** A compiled program: the two closure trees (heavy and light
    instrumentation variants) plus the source program and size
    statistics.  Immutable after construction. *)

val compile : Ast.program -> t
(** Compile every function of [program] in both heavy and light
    variants.  Raises [Invalid_argument] only on compiler bugs; all
    program-level errors (undefined functions, arity mismatches, bad
    entry point) are compiled into closures that fault exactly like the
    interpreter would at run time. *)

val run : t -> Interp.hooks -> (unit, Fault.t) result
(** Execute the compiled program under [hooks] — the same signature and
    semantics as {!Interp.run}.  Picks the heavy or light closure tree
    from [hooks.mode].  Emits a ["compiled"] timeline span and
    [compiled.runs] / [compiled.faults] / [compiled.steps_per_run]
    metrics (the interpreter's [interp.*] counterparts). *)

val program : t -> Ast.program
(** The source AST the program was compiled from. *)

val funcs : t -> int
(** Number of functions compiled. *)

val conds : t -> int
(** Number of conditional sites (branch ids pre-resolved). *)

val slots : t -> int
(** Total frame slots across all functions (compile-time name
    resolution replaces the interpreter's per-run hashtable frames). *)
