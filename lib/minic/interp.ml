type mode = Heavy | Light

type sem_kind =
  | Rank_world
  | Rank_comm of Mpi_iface.comm
  | Size_world
  | Size_comm of Mpi_iface.comm

type hooks = {
  mode : mode;
  input_value : Ast.input_decl -> int;
  on_input : Ast.input_decl -> int -> Smt.Linexp.t option;
  on_mpi_sem : sem_kind -> int -> Smt.Linexp.t option;
  on_branch : id:int -> taken:bool -> constr:Smt.Constr.t option -> unit;
  on_func_enter : string -> unit;
  mpi : Mpi_iface.handler;
  step_limit : int;
}

let null_mpi : Mpi_iface.handler = function
  | Mpi_iface.Rank _ -> Mpi_iface.Rint 0
  | Mpi_iface.Size _ -> Mpi_iface.Rint 1
  | Mpi_iface.Split _ -> Mpi_iface.Rint 1
  | Mpi_iface.Barrier _ -> Mpi_iface.Runit
  | Mpi_iface.Send _ | Mpi_iface.Recv _ | Mpi_iface.Isend _ | Mpi_iface.Irecv _
  | Mpi_iface.Wait _ ->
    raise
      (Fault.Fault
         (Fault.Mpi_error
            { message = "point-to-point not available on 1 process"; func = "<mpi>" }))
  | Mpi_iface.Bcast { data = Some v; _ } -> Mpi_iface.Rvalue v
  | Mpi_iface.Bcast { data = None; _ } ->
    raise
      (Fault.Fault
         (Fault.Mpi_error { message = "bcast without root data"; func = "<mpi>" }))
  | Mpi_iface.Reduce { data; _ } -> Mpi_iface.Rvalue data
  | Mpi_iface.Allreduce { data; _ } -> Mpi_iface.Rvalue data
  | Mpi_iface.Gather { data = Value.Vint n; _ } -> Mpi_iface.Rvalue (Value.Varr_int [| n |])
  | Mpi_iface.Gather { data = Value.Vfloat x; _ } ->
    Mpi_iface.Rvalue (Value.Varr_float [| x |])
  | Mpi_iface.Gather _ ->
    raise (Fault.Fault (Fault.Mpi_error { message = "gather of array"; func = "<mpi>" }))
  | Mpi_iface.Scatter { data = Some (Value.Varr_int a); _ } when Array.length a >= 1 ->
    Mpi_iface.Rvalue (Value.Vint a.(0))
  | Mpi_iface.Scatter { data = Some (Value.Varr_float a); _ } when Array.length a >= 1 ->
    Mpi_iface.Rvalue (Value.Vfloat a.(0))
  | Mpi_iface.Scatter _ ->
    raise (Fault.Fault (Fault.Mpi_error { message = "bad scatter"; func = "<mpi>" }))
  | Mpi_iface.Allgather { data = Value.Vint n; _ } ->
    Mpi_iface.Rvalue (Value.Varr_int [| n |])
  | Mpi_iface.Allgather { data = Value.Vfloat x; _ } ->
    Mpi_iface.Rvalue (Value.Varr_float [| x |])
  | Mpi_iface.Allgather _ ->
    raise (Fault.Fault (Fault.Mpi_error { message = "allgather of array"; func = "<mpi>" }))
  | Mpi_iface.Alltoall { data = Value.Varr_int a; _ } when Array.length a >= 1 ->
    Mpi_iface.Rvalue (Value.Varr_int [| a.(0) |])
  | Mpi_iface.Alltoall { data = Value.Varr_float a; _ } when Array.length a >= 1 ->
    Mpi_iface.Rvalue (Value.Varr_float [| a.(0) |])
  | Mpi_iface.Alltoall _ ->
    raise (Fault.Fault (Fault.Mpi_error { message = "bad alltoall"; func = "<mpi>" }))

let plain_hooks ?(step_limit = 5_000_000) ?(mpi = null_mpi) () =
  {
    mode = Light;
    input_value = (fun d -> d.Ast.default);
    on_input = (fun _ _ -> None);
    on_mpi_sem = (fun _ _ -> None);
    on_branch = (fun ~id:_ ~taken:_ ~constr:_ -> ());
    on_func_enter = (fun _ -> ());
    mpi;
    step_limit;
  }

(* ------------------------------------------------------------------ *)
(* Interpreter state                                                   *)
(* ------------------------------------------------------------------ *)

type binding = { mutable value : Value.t; mutable shadow : Smt.Linexp.t option }

type state = {
  hooks : hooks;
  program : Ast.program;
  mutable steps : int;
  mutable func : string;  (* current function, for fault reports *)
}

exception Return_exn of (Value.t * Smt.Linexp.t option) option
exception Exit_exn of int

let fault f = raise (Fault.Fault f)

let type_error st message =
  fault (Fault.Runtime_type_error { message; func = st.func })

let tick st =
  st.steps <- st.steps + 1;
  if st.steps > st.hooks.step_limit then
    fault (Fault.Step_limit_exceeded { steps = st.steps })

let lookup st frame name =
  match Hashtbl.find_opt frame name with
  | Some b -> b
  | None -> type_error st (Printf.sprintf "undefined variable %s" name)

let as_int st = function
  | Value.Vint n -> n
  | Value.Vfloat _ | Value.Varr_int _ | Value.Varr_float _ ->
    (type_error st "expected an int" : int)

let as_float st = function
  | Value.Vfloat x -> x
  | Value.Vint n -> float_of_int n
  | Value.Varr_int _ | Value.Varr_float _ -> (type_error st "expected a float" : float)

let heavy st = st.hooks.mode = Heavy

(* Shadow of a possibly-concrete operand: concrete ints lift to constant
   linear expressions when the other side is symbolic. *)
let shadow_or_const value shadow =
  match shadow with
  | Some e -> e
  | None -> Smt.Linexp.const value

(* ------------------------------------------------------------------ *)
(* Expressions                                                         *)
(* ------------------------------------------------------------------ *)

let bool_to_value b = Value.Vint (if b then 1 else 0)

let rec eval st frame (e : Ast.expr) : Value.t * Smt.Linexp.t option =
  match e with
  | Ast.Int n -> (Value.Vint n, None)
  | Ast.Float x -> (Value.Vfloat x, None)
  | Ast.Var name ->
    let b = lookup st frame name in
    (b.value, if heavy st then b.shadow else None)
  | Ast.Len name -> (
    let b = lookup st frame name in
    match b.value with
    | Value.Varr_int a -> (Value.Vint (Array.length a), None)
    | Value.Varr_float a -> (Value.Vint (Array.length a), None)
    | Value.Vint _ | Value.Vfloat _ -> type_error st "len of a scalar")
  | Ast.Idx (name, ie) -> (
    let b = lookup st frame name in
    let index = as_int st (fst (eval st frame ie)) in
    let check len =
      if index < 0 || index >= len then
        fault (Fault.Segfault { array = name; index; length = len; func = st.func })
    in
    match b.value with
    | Value.Varr_int a ->
      check (Array.length a);
      (Value.Vint a.(index), None)
    | Value.Varr_float a ->
      check (Array.length a);
      (Value.Vfloat a.(index), None)
    | Value.Vint _ | Value.Vfloat _ -> type_error st (name ^ " is not an array"))
  | Ast.Unop (op, e1) -> eval_unop st frame op e1
  | Ast.Binop (op, a, b) -> eval_binop st frame op a b

and eval_unop st frame op e1 =
  let v, s = eval st frame e1 in
  match op with
  | Ast.Neg -> (
    match v with
    | Value.Vint n -> (Value.Vint (-n), if heavy st then Option.map Smt.Linexp.neg s else None)
    | Value.Vfloat x -> (Value.Vfloat (-.x), None)
    | Value.Varr_int _ | Value.Varr_float _ -> type_error st "negation of array")
  | Ast.Lognot -> (
    match v with
    | Value.Vint n -> (bool_to_value (n = 0), None)
    | Value.Vfloat x -> (bool_to_value (x = 0.0), None)
    | Value.Varr_int _ | Value.Varr_float _ -> type_error st "lognot of array")

and eval_binop st frame op ea eb =
  let va, sa = eval st frame ea in
  let vb, sb = eval st frame eb in
  match (va, vb) with
  | Value.Vint x, Value.Vint y -> eval_int_binop st op x y sa sb
  | (Value.Vfloat _ | Value.Vint _), (Value.Vfloat _ | Value.Vint _) ->
    (eval_float_binop st op (as_float st va) (as_float st vb), None)
  | (Value.Varr_int _ | Value.Varr_float _), _ | _, (Value.Varr_int _ | Value.Varr_float _)
    ->
    type_error st "arithmetic on array value"

and eval_int_binop st op x y sa sb =
  (* Heavy instrumentation pays for the symbolic shadow on EVERY integer
     expression, exactly like CREST's per-expression instrumentation —
     concrete operands are carried as constant linear expressions. This
     cost difference is what two-way instrumentation saves on non-focus
     processes (paper Table IV). *)
  let symbolic = heavy st in
  let lin f = if symbolic then Some (f (shadow_or_const x sa) (shadow_or_const y sb)) else None in
  match op with
  | Ast.Add -> (Value.Vint (x + y), lin Smt.Linexp.add)
  | Ast.Sub -> (Value.Vint (x - y), lin Smt.Linexp.sub)
  | Ast.Mul ->
    (* CREST-style: keep linearity by multiplying the symbolic side by
       the other side's concrete value; two symbolic sides concretize
       the right one. *)
    let shadow =
      if not symbolic then None
      else
        match (sa, sb) with
        | Some ea, (Some _ | None) -> Some (Smt.Linexp.scale y ea)
        | None, Some eb -> Some (Smt.Linexp.scale x eb)
        | None, None -> Some (Smt.Linexp.const (x * y))
    in
    (Value.Vint (x * y), shadow)
  | Ast.Div ->
    if y = 0 then fault (Fault.Fpe { func = st.func });
    (Value.Vint (x / y), None)
  | Ast.Mod ->
    if y = 0 then fault (Fault.Fpe { func = st.func });
    (Value.Vint (x mod y), None)
  | Ast.Eq -> (bool_to_value (x = y), None)
  | Ast.Ne -> (bool_to_value (x <> y), None)
  | Ast.Lt -> (bool_to_value (x < y), None)
  | Ast.Le -> (bool_to_value (x <= y), None)
  | Ast.Gt -> (bool_to_value (x > y), None)
  | Ast.Ge -> (bool_to_value (x >= y), None)
  | Ast.Logand -> (bool_to_value (x <> 0 && y <> 0), None)
  | Ast.Logor -> (bool_to_value (x <> 0 || y <> 0), None)
  | Ast.Bitand -> (Value.Vint (x land y), None)
  | Ast.Bitor -> (Value.Vint (x lor y), None)
  | Ast.Bitxor -> (Value.Vint (x lxor y), None)
  | Ast.Shl -> (Value.Vint (x lsl (y land 62)), None)
  | Ast.Shr -> (Value.Vint (x asr (y land 62)), None)

and eval_float_binop st op x y =
  match op with
  | Ast.Add -> Value.Vfloat (x +. y)
  | Ast.Sub -> Value.Vfloat (x -. y)
  | Ast.Mul -> Value.Vfloat (x *. y)
  | Ast.Div -> Value.Vfloat (x /. y)  (* IEEE semantics: no FPE on floats *)
  | Ast.Mod -> Value.Vfloat (Float.rem x y)
  | Ast.Eq -> bool_to_value (Float.equal x y)
  | Ast.Ne -> bool_to_value (not (Float.equal x y))
  | Ast.Lt -> bool_to_value (x < y)
  | Ast.Le -> bool_to_value (x <= y)
  | Ast.Gt -> bool_to_value (x > y)
  | Ast.Ge -> bool_to_value (x >= y)
  | Ast.Logand -> bool_to_value (x <> 0.0 && y <> 0.0)
  | Ast.Logor -> bool_to_value (x <> 0.0 || y <> 0.0)
  | Ast.Bitand | Ast.Bitor | Ast.Bitxor | Ast.Shl | Ast.Shr ->
    type_error st "bitwise operation on floats"

(* Condition evaluation: returns the concrete boolean plus, in heavy
   mode, a linear constraint that holds for the *taken* direction. *)
let rel_of_binop = function
  | Ast.Eq -> Some Smt.Constr.Eq
  | Ast.Ne -> Some Smt.Constr.Ne
  | Ast.Lt -> Some Smt.Constr.Lt
  | Ast.Le -> Some Smt.Constr.Le
  | Ast.Gt -> Some Smt.Constr.Gt
  | Ast.Ge -> Some Smt.Constr.Ge
  | Ast.Add | Ast.Sub | Ast.Mul | Ast.Div | Ast.Mod | Ast.Logand | Ast.Logor
  | Ast.Bitand | Ast.Bitor | Ast.Bitxor | Ast.Shl | Ast.Shr ->
    None

let rec eval_cond st frame (e : Ast.expr) : bool * Smt.Constr.t option =
  match e with
  | Ast.Binop (op, ea, eb) when rel_of_binop op <> None -> (
    let rel = Option.get (rel_of_binop op) in
    let va, sa = eval st frame ea in
    let vb, sb = eval st frame eb in
    match (va, vb) with
    | Value.Vint x, Value.Vint y ->
      let taken = as_int st (fst (eval_int_binop st op x y None None)) <> 0 in
      let constr =
        if heavy st then
          let c = Smt.Constr.cmp (shadow_or_const x sa) rel (shadow_or_const y sb) in
          (* constants on both sides: a concrete branch, no constraint *)
          if Smt.Varid.Set.is_empty (Smt.Constr.vars c) then None
          else Some (if taken then c else Smt.Constr.negate c)
        else None
      in
      (taken, constr)
    | (Value.Vint _ | Value.Vfloat _ | Value.Varr_int _ | Value.Varr_float _), _ ->
      (* float comparisons: concrete only (COMPI does not handle floats
         symbolically) *)
      let v, _ = eval st frame e in
      (as_int st v <> 0, None))
  | Ast.Unop (Ast.Lognot, inner) ->
    (* the inner constraint already holds for the values that were
       observed; negation flips only the boolean outcome *)
    let taken, constr = eval_cond st frame inner in
    (not taken, constr)
  | Ast.Int _ | Ast.Float _ | Ast.Var _ | Ast.Idx _ | Ast.Len _ | Ast.Unop (Ast.Neg, _)
  | Ast.Binop _ -> (
    (* C semantics: if (e) means e != 0 *)
    let v, s = eval st frame e in
    match v with
    | Value.Vint n ->
      let taken = n <> 0 in
      let constr =
        match (heavy st, s) with
        | true, Some exp when not (Smt.Varid.Set.is_empty (Smt.Linexp.vars exp)) ->
          let c = Smt.Constr.make exp Smt.Constr.Ne in
          Some (if taken then c else Smt.Constr.negate c)
        | true, (Some _ | None) | false, _ -> None
      in
      (taken, constr)
    | Value.Vfloat x -> (x <> 0.0, None)
    | Value.Varr_int _ | Value.Varr_float _ -> type_error st "array used as condition")

(* ------------------------------------------------------------------ *)
(* Statements                                                          *)
(* ------------------------------------------------------------------ *)

let zero_value ctype n =
  match ctype with
  | Ast.Tint -> Value.Varr_int (Array.make n 0)
  | Ast.Tfloat -> Value.Varr_float (Array.make n 0.0)

let coerce st ctype value =
  match (ctype, value) with
  | Ast.Tint, Value.Vint _ -> value
  | Ast.Tint, Value.Vfloat x -> Value.Vint (int_of_float x)
  | Ast.Tfloat, Value.Vfloat _ -> value
  | Ast.Tfloat, Value.Vint n -> Value.Vfloat (float_of_int n)
  | (Ast.Tint | Ast.Tfloat), (Value.Varr_int _ | Value.Varr_float _) ->
    type_error st "cannot store array into scalar"

let rec exec_block st frame block = List.iter (exec_stmt st frame) block

and exec_stmt st frame (stmt : Ast.stmt) =
  tick st;
  match stmt with
  | Ast.Nop -> ()
  | Ast.Decl (name, ctype, e) ->
    let v, s = eval st frame e in
    let value = coerce st ctype v in
    let shadow = match ctype with Ast.Tint -> s | Ast.Tfloat -> None in
    Hashtbl.replace frame name { value; shadow }
  | Ast.Decl_arr (name, ctype, size_e) ->
    let n = as_int st (fst (eval st frame size_e)) in
    if n < 0 then fault (Fault.Segfault { array = name; index = n; length = 0; func = st.func });
    Hashtbl.replace frame name { value = zero_value ctype n; shadow = None }
  | Ast.Assign (Ast.Lvar name, e) ->
    let v, s = eval st frame e in
    let b = lookup st frame name in
    let value =
      match b.value with
      | Value.Vint _ -> coerce st Ast.Tint v
      | Value.Vfloat _ -> coerce st Ast.Tfloat v
      | Value.Varr_int _ | Value.Varr_float _ -> (
        (* whole-array assignment: only from another array *)
        match v with
        | Value.Varr_int _ | Value.Varr_float _ -> v
        | Value.Vint _ | Value.Vfloat _ -> type_error st "scalar into array variable")
    in
    b.value <- value;
    b.shadow <- (match value with Value.Vint _ -> s | _ -> None)
  | Ast.Assign (Ast.Lidx (name, ie), e) -> (
    let index = as_int st (fst (eval st frame ie)) in
    let v, _ = eval st frame e in
    let b = lookup st frame name in
    let check len =
      if index < 0 || index >= len then
        fault (Fault.Segfault { array = name; index; length = len; func = st.func })
    in
    match b.value with
    | Value.Varr_int a ->
      check (Array.length a);
      a.(index) <- as_int st v
    | Value.Varr_float a ->
      check (Array.length a);
      a.(index) <- as_float st v
    | Value.Vint _ | Value.Vfloat _ -> type_error st (name ^ " is not an array"))
  | Ast.If { id; cond; then_; else_ } ->
    let taken, constr = eval_cond st frame cond in
    st.hooks.on_branch ~id ~taken ~constr;
    exec_block st frame (if taken then then_ else else_)
  | Ast.While { id; cond; body } ->
    let rec loop () =
      tick st;
      let taken, constr = eval_cond st frame cond in
      st.hooks.on_branch ~id ~taken ~constr;
      if taken then begin
        exec_block st frame body;
        loop ()
      end
    in
    loop ()
  | Ast.Call (name, args) ->
    let _ = call_function st frame name args in
    ()
  | Ast.Call_assign (dst, name, args) -> (
    match call_function st frame name args with
    | Some (v, s) ->
      let b = lookup st frame dst in
      b.value <-
        (match b.value with
        | Value.Vint _ -> coerce st Ast.Tint v
        | Value.Vfloat _ -> coerce st Ast.Tfloat v
        | Value.Varr_int _ | Value.Varr_float _ -> v);
      b.shadow <- (match b.value with Value.Vint _ -> s | _ -> None)
    | None -> type_error st (name ^ " returned no value"))
  | Ast.Return e_opt ->
    let result = Option.map (eval st frame) e_opt in
    raise (Return_exn result)
  | Ast.Assert (cond, message) ->
    let taken, _ = eval_cond st frame cond in
    if not taken then fault (Fault.Assert_fail { message; func = st.func })
  | Ast.Abort message -> fault (Fault.Abort_called { message; func = st.func })
  | Ast.Exit code -> raise (Exit_exn (as_int st (fst (eval st frame code))))
  | Ast.Input decl ->
    let concrete = st.hooks.input_value decl in
    let shadow = if heavy st then st.hooks.on_input decl concrete else None in
    Hashtbl.replace frame decl.Ast.iname { value = Value.Vint concrete; shadow }
  | Ast.Mpi m -> exec_mpi st frame m

and call_function st frame name args =
  match Ast.find_func st.program name with
  | None -> type_error st (Printf.sprintf "undefined function %s" name)
  | Some fn ->
    if List.length fn.Ast.params <> List.length args then
      type_error st (Printf.sprintf "arity mismatch calling %s" name);
    let callee_frame = Hashtbl.create 16 in
    List.iter2
      (fun (pname, ctype) arg ->
        let v, s = eval st frame arg in
        let value =
          match v with
          | Value.Vint _ | Value.Vfloat _ -> coerce st ctype v
          | Value.Varr_int _ | Value.Varr_float _ -> v  (* arrays pass by reference *)
        in
        let shadow = match value with Value.Vint _ -> s | _ -> None in
        Hashtbl.replace callee_frame pname { value; shadow })
      fn.Ast.params args;
    let saved = st.func in
    st.func <- name;
    st.hooks.on_func_enter name;
    let result =
      match exec_block st callee_frame fn.Ast.body with
      | () -> None
      | exception Return_exn r -> r
    in
    st.func <- saved;
    result

(* ------------------------------------------------------------------ *)
(* MPI statements                                                      *)
(* ------------------------------------------------------------------ *)

and comm_handle st frame = function
  | Ast.World -> Mpi_iface.world
  | Ast.Comm_var name -> as_int st (lookup st frame name).value

and expect_int st = function
  | Mpi_iface.Rint n -> n
  | Mpi_iface.Runit | Mpi_iface.Rvalue _ | Mpi_iface.Rvalues _ | Mpi_iface.Rnone ->
    type_error st "MPI reply: expected an int"

and expect_value st = function
  | Mpi_iface.Rvalue v -> v
  | Mpi_iface.Runit | Mpi_iface.Rint _ | Mpi_iface.Rvalues _ | Mpi_iface.Rnone ->
    type_error st "MPI reply: expected a value"

and store_lval st frame lv value =
  match lv with
  | Ast.Lvar name ->
    (match Hashtbl.find_opt frame name with
    | Some b ->
      b.value <-
        (match (b.value, value) with
        | Value.Vint _, _ -> coerce st Ast.Tint value
        | Value.Vfloat _, _ -> coerce st Ast.Tfloat value
        | (Value.Varr_int _ | Value.Varr_float _), _ -> value);
      b.shadow <- None
    | None -> Hashtbl.replace frame name { value; shadow = None })
  | Ast.Lidx (name, ie) ->
    exec_stmt st frame
      (Ast.Assign
         ( Ast.Lidx (name, ie),
           match value with
           | Value.Vint n -> Ast.Int n
           | Value.Vfloat x -> Ast.Float x
           | Value.Varr_int _ | Value.Varr_float _ ->
             type_error st "cannot store array into array cell" ))

and exec_mpi st frame (m : Ast.mpi) =
  let handle = comm_handle st frame in
  let int_of e = as_int st (fst (eval st frame e)) in
  match m with
  | Ast.Comm_rank (cref, var) ->
    let comm = handle cref in
    let rank = expect_int st (st.hooks.mpi (Mpi_iface.Rank comm)) in
    let kind = if cref = Ast.World then Rank_world else Rank_comm comm in
    let shadow = if heavy st then st.hooks.on_mpi_sem kind rank else None in
    Hashtbl.replace frame var { value = Value.Vint rank; shadow }
  | Ast.Comm_size (cref, var) ->
    let comm = handle cref in
    let size = expect_int st (st.hooks.mpi (Mpi_iface.Size comm)) in
    let kind = if cref = Ast.World then Size_world else Size_comm comm in
    let shadow = if heavy st then st.hooks.on_mpi_sem kind size else None in
    Hashtbl.replace frame var { value = Value.Vint size; shadow }
  | Ast.Comm_split { comm; color; key; into } ->
    let reply =
      st.hooks.mpi
        (Mpi_iface.Split { comm = handle comm; color = int_of color; key = int_of key })
    in
    Hashtbl.replace frame into { value = Value.Vint (expect_int st reply); shadow = None }
  | Ast.Barrier comm ->
    let _ = st.hooks.mpi (Mpi_iface.Barrier (handle comm)) in
    ()
  | Ast.Send { comm; dest; tag; data } ->
    let v, _ = eval st frame data in
    let _ =
      st.hooks.mpi
        (Mpi_iface.Send
           { comm = handle comm; dest = int_of dest; tag = int_of tag; data = Value.copy v })
    in
    ()
  | Ast.Recv { comm; src; tag; into } ->
    let reply =
      st.hooks.mpi
        (Mpi_iface.Recv
           {
             comm = handle comm;
             src = Option.map int_of src;
             tag = Option.map int_of tag;
           })
    in
    store_lval st frame into (expect_value st reply)
  | Ast.Isend { comm; dest; tag; data; req } ->
    let v, _ = eval st frame data in
    let reply =
      st.hooks.mpi
        (Mpi_iface.Isend
           { comm = handle comm; dest = int_of dest; tag = int_of tag; data = Value.copy v })
    in
    Hashtbl.replace frame req { value = Value.Vint (expect_int st reply); shadow = None }
  | Ast.Irecv { comm; src; tag; req } ->
    let reply =
      st.hooks.mpi
        (Mpi_iface.Irecv
           {
             comm = handle comm;
             src = Option.map int_of src;
             tag = Option.map int_of tag;
           })
    in
    Hashtbl.replace frame req { value = Value.Vint (expect_int st reply); shadow = None }
  | Ast.Wait { req; into } -> (
    let reply = st.hooks.mpi (Mpi_iface.Wait (int_of req)) in
    match (reply, into) with
    | Mpi_iface.Runit, _ -> ()  (* completed isend *)
    | Mpi_iface.Rvalue v, Some lv -> store_lval st frame lv v
    | Mpi_iface.Rvalue _, None -> ()
    | (Mpi_iface.Rint _ | Mpi_iface.Rvalues _ | Mpi_iface.Rnone), _ ->
      type_error st "MPI reply: bad wait reply")
  | Ast.Bcast { comm; root; data } ->
    let comm_h = handle comm in
    let root_v = int_of root in
    let my_rank = expect_int st (st.hooks.mpi (Mpi_iface.Rank comm_h)) in
    let payload =
      if my_rank = root_v then
        Some (Value.copy (fst (eval st frame (expr_of_lval st data))))
      else None
    in
    let reply = st.hooks.mpi (Mpi_iface.Bcast { comm = comm_h; root = root_v; data = payload }) in
    store_lval st frame data (expect_value st reply)
  | Ast.Reduce { comm; op; root; data; into } -> (
    let v, _ = eval st frame data in
    let reply =
      st.hooks.mpi
        (Mpi_iface.Reduce
           {
             comm = handle comm;
             op = Mpi_iface.reduce_op_of_ast op;
             root = int_of root;
             data = Value.copy v;
           })
    in
    match reply with
    | Mpi_iface.Rnone -> ()  (* non-root *)
    | Mpi_iface.Rvalue result -> store_lval st frame into result
    | Mpi_iface.Runit | Mpi_iface.Rint _ | Mpi_iface.Rvalues _ ->
      type_error st "MPI reply: bad reduce reply")
  | Ast.Allreduce { comm; op; data; into } ->
    let v, _ = eval st frame data in
    let reply =
      st.hooks.mpi
        (Mpi_iface.Allreduce
           { comm = handle comm; op = Mpi_iface.reduce_op_of_ast op; data = Value.copy v })
    in
    store_lval st frame into (expect_value st reply)
  | Ast.Gather { comm; root; data; into } -> (
    let v, _ = eval st frame data in
    let reply =
      st.hooks.mpi
        (Mpi_iface.Gather { comm = handle comm; root = int_of root; data = Value.copy v })
    in
    match reply with
    | Mpi_iface.Rnone -> ()
    | Mpi_iface.Rvalue arr ->
      Hashtbl.replace frame into { value = arr; shadow = None }
    | Mpi_iface.Runit | Mpi_iface.Rint _ | Mpi_iface.Rvalues _ ->
      type_error st "MPI reply: bad gather reply")
  | Ast.Scatter { comm; root; data; into } ->
    let comm_h = handle comm in
    let root_v = int_of root in
    let my_rank = expect_int st (st.hooks.mpi (Mpi_iface.Rank comm_h)) in
    let payload =
      if my_rank = root_v then Some (Value.copy (lookup st frame data).value) else None
    in
    let reply =
      st.hooks.mpi (Mpi_iface.Scatter { comm = comm_h; root = root_v; data = payload })
    in
    store_lval st frame into (expect_value st reply)
  | Ast.Allgather { comm; data; into } ->
    let v, _ = eval st frame data in
    let reply = st.hooks.mpi (Mpi_iface.Allgather { comm = handle comm; data = Value.copy v }) in
    Hashtbl.replace frame into { value = expect_value st reply; shadow = None }
  | Ast.Alltoall { comm; data; into } ->
    let v = Value.copy (lookup st frame data).value in
    let reply = st.hooks.mpi (Mpi_iface.Alltoall { comm = handle comm; data = v }) in
    Hashtbl.replace frame into { value = expect_value st reply; shadow = None }

and expr_of_lval _st = function
  | Ast.Lvar name -> Ast.Var name
  | Ast.Lidx (name, e) -> Ast.Idx (name, e)

(* ------------------------------------------------------------------ *)
(* Entry point                                                         *)
(* ------------------------------------------------------------------ *)

let m_runs = Obs.Metrics.counter "interp.runs"
let m_faults = Obs.Metrics.counter "interp.faults"
let m_steps = Obs.Metrics.histogram "interp.steps_per_run"

let run hooks (program : Ast.program) =
  (* Timed as one "interp" span per simulated process. The interpreter
     runs inside a scheduler fiber, so the interval covers the process
     lifetime including suspensions at MPI calls; spans of concurrently
     scheduled ranks overlap on the same domain, which the profile's
     interval-union accounting handles. *)
  let tk0 = if Obs.Timeline.on () then Obs.Timeline.tick () else 0 in
  let st = { hooks; program; steps = 0; func = program.Ast.entry } in
  let result =
    match
      match Ast.find_func program program.Ast.entry with
      | None -> type_error st (Printf.sprintf "no entry function %s" program.Ast.entry)
      | Some fn ->
        if fn.Ast.params <> [] then type_error st "entry function takes no parameters";
        st.hooks.on_func_enter fn.Ast.fname;
        (try exec_block st (Hashtbl.create 16) fn.Ast.body with
        | Return_exn _ -> ()
        | Exit_exn _ -> ())
    with
    | () -> Ok ()
    | exception Fault.Fault f -> Error f
  in
  Obs.Metrics.incr m_runs;
  Obs.Metrics.observe_int m_steps st.steps;
  if Result.is_error result then Obs.Metrics.incr m_faults;
  if Obs.Timeline.on () then
    Obs.Timeline.record ~kind:"interp" ~t0:tk0 ~t1:(Obs.Timeline.tick ());
  result
