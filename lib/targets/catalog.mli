(** The target catalogue: every evaluation program by name. *)

val all : unit -> Registry.t list
(** toy-fig1, toy-fig2, susy-hmc, hpl, imb-mpi1, heat2d, npb-cg. *)

(** [find name] also accepts a few short aliases (e.g. ["toy"] for
    ["toy-fig2"]). *)
val find : string -> Registry.t option
val find_exn : string -> Registry.t
val names : unit -> string list
