let all () =
  [
    Toy.fig1; Toy.fig2; Susy_hmc.target; Hpl.target; Imb_mpi1.target; Heat2d.target;
    Npb_cg.target; Wildcard.target;
  ]
(* Short names accepted anywhere a target is named on the CLI. *)
let aliases = [ ("toy", "toy-fig2") ]

let find name =
  let name = match List.assoc_opt name aliases with Some n -> n | None -> name in
  List.find_opt (fun (t : Registry.t) -> t.Registry.name = name) (all ())

let find_exn name =
  match find name with
  | Some t -> t
  | None -> invalid_arg (Printf.sprintf "unknown target %s" name)

let names () = List.map (fun (t : Registry.t) -> t.Registry.name) (all ())
