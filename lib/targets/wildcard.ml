(* A wildcard-receive race with a schedule-dependent deadlock.

   Ranks 1 and 2 each send one message to rank 0; rank 0 first receives
   with MPI_ANY_SOURCE, then — only when the marked input [x] is 7 AND
   the wildcard happened to deliver rank 2's message first — posts a
   second receive pinned to source 2. Rank 2 has already spent its only
   send, so that receive can never complete: deadlock.

   The bug is a genuine (input, schedule) pair:

   - input: the guard [x == 7] must hold, which concolic negation
     derives from the path constraint;
   - schedule: the wildcard must match rank 2 before rank 1. Under the
     simulator's deterministic eager matching rank 1's send always
     arrives (and matches) first, so with [--schedules off] the deadlock
     is unreachable at ANY input — only the schedule enumerator's
     alternative prescription exposes it.

   The protocol is guarded on [size >= 3] so framework-derived process
   counts below 3 run (and terminate) cleanly. *)

open Minic
open Builder

let target =
  Registry.make ~name:"wc-race"
    ~description:"wildcard-receive race: deadlock only under an alternative schedule"
    ~tuning:
      {
        Registry.dfs_phase = 4;
        depth_bound = 50;
        key_input = "x";
        default_cap = 16;
        initial_nprocs = 3;
        step_limit = 100_000;
      }
    (program
       [
         func "main" []
           [
             input "x" ~lo:0 ~cap:16 ~default:0;
             decl "rank" (i 0);
             decl "size" (i 0);
             comm_rank Ast.World "rank";
             comm_size Ast.World "size";
             if_
               (v "size" >=: i 3)
               [
                 if_
                   (v "rank" =: i 0)
                   [
                     decl "m1" (i 0);
                     decl "m2" (i 0);
                     (* wildcard: either sender can match here *)
                     recv ~into:(Ast.Lvar "m1") ();
                     if_
                       (v "x" =: i 7)
                       [
                         if_
                           (v "m1" =: i 2)
                           [
                             (* rank 2 already consumed by the wildcard:
                                this receive never completes *)
                             recv ~src:(i 2) ~into:(Ast.Lvar "m2") ();
                           ]
                           [ recv ~into:(Ast.Lvar "m2") () ];
                       ]
                       [ recv ~into:(Ast.Lvar "m2") () ];
                   ]
                   [
                     if_
                       (v "rank" <=: i 2)
                       [ send ~dest:(i 0) ~tag:(v "rank") (v "rank") ]
                       [];
                   ];
               ]
               [];
           ];
       ])
