(* Fixed pool of worker domains for the parallel campaign engine.

   One pool serves many batches. [map] publishes an array of thunks;
   every worker — the spawned domains plus the calling (main) domain,
   which participates as worker 0 — claims indices from a shared cursor
   under the pool mutex, runs the thunk outside the lock, and stores the
   outcome at its index. Results therefore come back in submission
   order no matter which worker ran what, which is the property the
   campaign's deterministic merge builds on.

   With [jobs = 1] no domain is ever spawned and [map] degenerates to a
   plain in-order loop on the caller — the sequential baseline shares
   every line of this code path except the locking. *)

type outcome = Done of Obj.t | Raised of exn * Printexc.raw_backtrace

type batch = {
  thunks : (unit -> Obj.t) array;
  results : outcome option array;
  mutable cursor : int;  (* next unclaimed index *)
  mutable completed : int;
}

type t = {
  jobs : int;
  mu : Mutex.t;
  work_cv : Condition.t;  (* workers wait here for a batch or stop *)
  done_cv : Condition.t;  (* the caller waits here for batch completion *)
  mutable batch : batch option;
  mutable stop : bool;
  mutable task_seq : int;  (* pool-lifetime task counter, for telemetry *)
  mutable domains : unit Domain.t list;
}

let jobs t = t.jobs

let run_claimed t ~worker ~tasks_run b i =
  let seq = t.task_seq in
  t.task_seq <- seq + 1;
  Mutex.unlock t.mu;
  let t0 = Unix.gettimeofday () in
  let tk0 = if Obs.Timeline.on () then Obs.Timeline.tick () else 0 in
  let outcome =
    match b.thunks.(i) () with
    | v -> Done v
    | exception e -> Raised (e, Printexc.get_raw_backtrace ())
  in
  if Obs.Timeline.on () then
    Obs.Timeline.record ~kind:"task" ~t0:tk0 ~t1:(Obs.Timeline.tick ());
  let dt = Unix.gettimeofday () -. t0 in
  incr tasks_run;
  if Obs.Sink.active () then
    Obs.Sink.emit (Obs.Event.Worker_task { worker; task = seq; time_s = dt });
  Mutex.lock t.mu;
  b.results.(i) <- Some outcome;
  b.completed <- b.completed + 1;
  if b.completed = Array.length b.thunks then Condition.broadcast t.done_cv

let worker_loop t ~worker =
  (* spans from this domain carry the pool worker index, not the raw
     (reused) Domain.self id, so profiles line up with worker_* events *)
  Obs.Timeline.set_domain worker;
  let tasks_run = ref 0 in
  Mutex.lock t.mu;
  let rec loop () =
    if t.stop then Mutex.unlock t.mu
    else
      match t.batch with
      | Some b when b.cursor < Array.length b.thunks ->
        let i = b.cursor in
        b.cursor <- i + 1;
        run_claimed t ~worker ~tasks_run b i;
        loop ()
      | Some _ | None ->
        let tk0 = if Obs.Timeline.on () then Obs.Timeline.tick () else 0 in
        Condition.wait t.work_cv t.mu;
        if Obs.Timeline.on () then
          Obs.Timeline.record ~kind:"idle" ~t0:tk0 ~t1:(Obs.Timeline.tick ());
        loop ()
  in
  loop ();
  if Obs.Sink.active () then
    Obs.Sink.emit (Obs.Event.Worker_exit { worker; tasks = !tasks_run })

let create ~jobs =
  let jobs = max 1 jobs in
  let t =
    {
      jobs;
      mu = Mutex.create ();
      work_cv = Condition.create ();
      done_cv = Condition.create ();
      batch = None;
      stop = false;
      task_seq = 0;
      domains = [];
    }
  in
  for worker = 1 to jobs - 1 do
    if Obs.Sink.active () then Obs.Sink.emit (Obs.Event.Worker_spawn { worker });
    t.domains <- Domain.spawn (fun () -> worker_loop t ~worker) :: t.domains
  done;
  t

let map t f xs =
  let items = Array.of_list xs in
  let n = Array.length items in
  if n = 0 then []
  else begin
    let b =
      {
        thunks = Array.map (fun x () -> Obj.repr (f x)) items;
        results = Array.make n None;
        cursor = 0;
        completed = 0;
      }
    in
    let tasks_run = ref 0 in
    Mutex.lock t.mu;
    t.batch <- Some b;
    Condition.broadcast t.work_cv;
    (* the caller is worker 0: claim alongside the pool, then wait out
       whatever is still in flight elsewhere *)
    while b.cursor < n do
      let i = b.cursor in
      b.cursor <- i + 1;
      run_claimed t ~worker:0 ~tasks_run b i
    done;
    let tk0 = if Obs.Timeline.on () then Obs.Timeline.tick () else 0 in
    while b.completed < n do
      Condition.wait t.done_cv t.mu
    done;
    if Obs.Timeline.on () then
      Obs.Timeline.record ~kind:"barrier" ~t0:tk0 ~t1:(Obs.Timeline.tick ());
    t.batch <- None;
    Mutex.unlock t.mu;
    Array.to_list b.results
    |> List.map (function
         | Some (Done v) -> Obj.obj v
         | Some (Raised (e, bt)) -> Printexc.raise_with_backtrace e bt
         | None -> assert false)
  end

let shutdown t =
  Mutex.lock t.mu;
  t.stop <- true;
  Condition.broadcast t.work_cv;
  Mutex.unlock t.mu;
  Obs.Timeline.span "join" (fun () -> List.iter Domain.join t.domains);
  t.domains <- []
