(* Fixed pool of worker domains for the parallel campaign engine.

   One pool serves many batches. [stream] publishes an array of thunks;
   every spawned worker claims indices from a shared cursor under the
   pool mutex, runs the thunk outside the lock, and stores the outcome
   at its index. [next] hands results back strictly in submission order
   no matter which worker ran what — the property the campaign's
   deterministic merge builds on — and it hands each result back {e as
   soon as it is ready}: the caller merges item k while the pool is
   still executing items k+1, k+2, … There is no per-batch barrier
   anywhere; the only wait is the in-order consumer blocking on the one
   index it needs next, recorded as a ["queue.wait"] span.

   The caller participates as worker 0, but only from [next] and only
   when the index it needs is still unclaimed — so a caller that merges
   slower than the pool executes never steals work it would then sit
   on, and with [jobs = 1] (no spawned domains) [next] degenerates to
   running each task inline, in order, interleaved with the caller's
   per-item processing.

   [map] is [stream] consumed to exhaustion and survives for callers
   that want the whole batch at once. *)

type outcome = Done of Obj.t | Raised of exn * Printexc.raw_backtrace

type batch = {
  thunks : (unit -> Obj.t) array;
  results : outcome option array;
  mutable cursor : int;  (* next unclaimed index *)
  mutable completed : int;
  mutable consumed : int;  (* next index [next] will hand out *)
  mutable max_inflight : int;  (* peak claimed-but-unconsumed depth *)
}

type t = {
  jobs : int;
  mu : Mutex.t;
  work_cv : Condition.t;  (* workers wait here for a batch or stop *)
  done_cv : Condition.t;  (* the consumer waits here for the next index *)
  mutable batch : batch option;
  mutable stop : bool;
  mutable task_seq : int;  (* pool-lifetime task counter, for telemetry *)
  mutable busy_s : float;  (* pool-lifetime sum of task wall times *)
  mutable domains : unit Domain.t list;
}

type 'a stream = { st_pool : t; st_batch : batch option }

let jobs t = t.jobs

let busy_seconds t =
  Mutex.lock t.mu;
  let s = t.busy_s in
  Mutex.unlock t.mu;
  s

let claim_depth b =
  let d = b.cursor - b.consumed in
  if d > b.max_inflight then b.max_inflight <- d

let run_claimed t ~worker ~tasks_run b i =
  let seq = t.task_seq in
  t.task_seq <- seq + 1;
  claim_depth b;
  Mutex.unlock t.mu;
  let t0 = Unix.gettimeofday () in
  let tk0 = if Obs.Timeline.on () then Obs.Timeline.tick () else 0 in
  let outcome =
    match b.thunks.(i) () with
    | v -> Done v
    | exception e -> Raised (e, Printexc.get_raw_backtrace ())
  in
  if Obs.Timeline.on () then
    Obs.Timeline.record ~kind:"task" ~t0:tk0 ~t1:(Obs.Timeline.tick ());
  let dt = Unix.gettimeofday () -. t0 in
  incr tasks_run;
  if Obs.Sink.active () then
    Obs.Sink.emit (Obs.Event.Worker_task { worker; task = seq; time_s = dt });
  Mutex.lock t.mu;
  t.busy_s <- t.busy_s +. dt;
  b.results.(i) <- Some outcome;
  b.completed <- b.completed + 1;
  (* wake the in-order consumer: it may be parked on exactly this index *)
  Condition.broadcast t.done_cv

let worker_loop t ~worker =
  (* spans from this domain carry the pool worker index, not the raw
     (reused) Domain.self id, so profiles line up with worker_* events *)
  Obs.Timeline.set_domain worker;
  let tasks_run = ref 0 in
  Mutex.lock t.mu;
  let rec loop () =
    if t.stop then Mutex.unlock t.mu
    else
      match t.batch with
      | Some b when b.cursor < Array.length b.thunks ->
        let i = b.cursor in
        b.cursor <- i + 1;
        run_claimed t ~worker ~tasks_run b i;
        loop ()
      | Some _ | None ->
        let tk0 = if Obs.Timeline.on () then Obs.Timeline.tick () else 0 in
        Condition.wait t.work_cv t.mu;
        if Obs.Timeline.on () then
          Obs.Timeline.record ~kind:"idle" ~t0:tk0 ~t1:(Obs.Timeline.tick ());
        loop ()
  in
  loop ();
  if Obs.Sink.active () then
    Obs.Sink.emit (Obs.Event.Worker_exit { worker; tasks = !tasks_run })

let create ~jobs =
  let jobs = max 1 jobs in
  let t =
    {
      jobs;
      mu = Mutex.create ();
      work_cv = Condition.create ();
      done_cv = Condition.create ();
      batch = None;
      stop = false;
      task_seq = 0;
      busy_s = 0.0;
      domains = [];
    }
  in
  for worker = 1 to jobs - 1 do
    if Obs.Sink.active () then Obs.Sink.emit (Obs.Event.Worker_spawn { worker });
    t.domains <- Domain.spawn (fun () -> worker_loop t ~worker) :: t.domains
  done;
  t

let stream (type a) t (thunks : (unit -> a) list) : a stream =
  match thunks with
  | [] -> { st_pool = t; st_batch = None }
  | _ :: _ ->
    let b =
      {
        thunks = Array.of_list (List.map (fun f () -> Obj.repr (f ())) thunks);
        results = Array.make (List.length thunks) None;
        cursor = 0;
        completed = 0;
        consumed = 0;
        max_inflight = 0;
      }
    in
    Mutex.lock t.mu;
    t.batch <- Some b;
    Condition.broadcast t.work_cv;
    Mutex.unlock t.mu;
    { st_pool = t; st_batch = Some b }

(* Consume index [b.consumed] — run it inline if nobody claimed it yet,
   otherwise wait for the claiming worker. Called with the mutex held;
   returns with it held. *)
let rec await_next t ~tasks_run b i =
  match b.results.(i) with
  | Some r -> r
  | None ->
    if b.cursor <= i then begin
      (* the index we need (or an earlier one) is unclaimed: the caller
         runs it itself as worker 0 — this is the whole execution path
         when [jobs = 1] *)
      let j = b.cursor in
      b.cursor <- j + 1;
      run_claimed t ~worker:0 ~tasks_run b j
    end
    else begin
      (* claimed but still running on a worker: the only wait in the
         pipeline, visible to the profiler as queue.wait *)
      let tk0 = if Obs.Timeline.on () then Obs.Timeline.tick () else 0 in
      Condition.wait t.done_cv t.mu;
      if Obs.Timeline.on () then
        Obs.Timeline.record ~kind:"queue.wait" ~t0:tk0 ~t1:(Obs.Timeline.tick ())
    end;
    await_next t ~tasks_run b i

let next (type a) (st : a stream) : a option =
  match st.st_batch with
  | None -> None
  | Some b ->
    let t = st.st_pool in
    let n = Array.length b.thunks in
    if b.consumed >= n then None
    else begin
      let tasks_run = ref 0 in
      Mutex.lock t.mu;
      let r = await_next t ~tasks_run b b.consumed in
      b.consumed <- b.consumed + 1;
      if b.consumed = n then t.batch <- None;
      Mutex.unlock t.mu;
      match r with
      | Done v -> Some (Obj.obj v)
      | Raised (e, bt) ->
        (* drain the rest of the batch so the pool is quiescent and
           reusable, then surface the first (submission-order) failure *)
        Mutex.lock t.mu;
        while b.consumed < n do
          ignore (await_next t ~tasks_run b b.consumed);
          b.consumed <- b.consumed + 1
        done;
        t.batch <- None;
        Mutex.unlock t.mu;
        Printexc.raise_with_backtrace e bt
    end

let max_inflight (st : _ stream) =
  match st.st_batch with None -> 0 | Some b -> b.max_inflight

let map t f xs =
  let st = stream t (List.map (fun x () -> f x) xs) in
  let rec go acc =
    match next st with None -> List.rev acc | Some v -> go (v :: acc)
  in
  go []

let shutdown t =
  Mutex.lock t.mu;
  t.stop <- true;
  Condition.broadcast t.work_cv;
  Mutex.unlock t.mu;
  Obs.Timeline.span "join" (fun () -> List.iter Domain.join t.domains);
  t.domains <- []
