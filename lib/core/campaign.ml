open Minic
open Concolic

(* Parallel campaign engine.

   The sequential driver interleaves "execute the pending test" and
   "derive the next test" in one loop, so each iteration depends on the
   previous one. This engine restructures the campaign into a
   deterministic pipeline: each round's work list of independent items
   — fresh tests to execute, or branch negations to attempt — is
   published to a {!Taskpool} of persistent worker domains, and the
   main domain consumes results {e in work-list order as they stream
   in}, merging item k while the pool is still solving/executing items
   k+1, k+2, … Iteration ids are assigned at the merge. There is no
   round barrier: the only wait is the in-order consumer blocking on
   the single result it needs next (the [queue.wait] span). Because the
   work list of every round is a pure function of the merged state
   (strategy, coverage, RNG) and the merge order ignores completion
   order, the campaign trajectory is identical for any worker count:
   [--jobs] buys wall-clock time, never different results. Determinism
   holds under an iteration budget; a wall-clock [time_budget] cuts
   rounds off at a machine-speed-dependent point.

   The solver cache lives on the main domain only. Each negation is
   probed at dispatch (before its task is queued) and verdicts are
   inserted at merge, so cache state transitions also happen at
   deterministic points. Within one round two structurally identical
   negations both miss and both solve; the merge inserts the first
   verdict and drops the duplicate (first-verdict-wins).

   Negations are solved in {e canonical} mode (sorted closure, no
   preference model) whether the cache is on or off: the verdict is
   then a pure function of the cache key, so a hit replays exactly what
   a live solve would have returned even though the verdict was found
   under a different run's concrete model, and cache on/off cannot
   change the trajectory. (The sequential driver keeps CREST's
   prefer-previous-values heuristic; it never replays across runs.)

   Checkpointing piggybacks on the same structure. Every state mutation
   happens on the main domain at a merge position — after item k of the
   round, before item k+1 — so a {!Checkpoint.snapshot} taken there
   (merged state + the un-merged tail as work items) is a point the
   uninterrupted run also passes through with identical state. A resume
   re-dispatches the tail: executions are pure functions of their
   pending record and canonical verdicts are pure functions of their
   cache key, so the resumed trajectory — and the final coverage
   report — is byte-identical to the uninterrupted run's, at any
   worker count. (A tail negation may hit the cache where the original
   run solved live; canonical mode makes the replay equal to the solve,
   which is exactly the PR-2 invariant.) Snapshots are also taken when
   the iteration budget or a SIGINT/SIGTERM cuts the merge short, so a
   budget-capped run leaves a checkpoint a longer resume can continue
   from mid-round. *)

type settings = {
  base : Driver.settings;
  jobs : int;  (* worker domains, >= 1; main participates *)
  batch : int;  (* candidates drawn per round — NOT tied to [jobs] *)
  solver_cache : bool;
  cache_capacity : int;
  checkpoint : string option;  (* snapshot directory; None = no checkpointing *)
  checkpoint_every : int;  (* periodic snapshot cadence in iterations *)
  resume : bool;  (* load the snapshot under [checkpoint] before running *)
  status_file : string option;  (* live status snapshot path; None = off *)
  ledger : string option;  (* run-ledger JSONL store; None = off *)
}

let default_settings =
  {
    base = Driver.default_settings;
    jobs = 1;
    batch = 4;
    solver_cache = true;
    cache_capacity = Smt.Cache.default_capacity;
    checkpoint = None;
    checkpoint_every = 50;
    resume = false;
    status_file = None;
    ledger = None;
  }

type result = {
  summary : Driver.result;
  rounds : int;
  executed : int;  (* merged test executions *)
  speculated : int;  (* executions completed but dropped at the budget edge *)
  solver_calls : int;  (* live solves whose verdicts merged into the trajectory *)
  cache : Smt.Cache.stats option;
  interrupted : bool;  (* a SIGINT/SIGTERM stopped the campaign early *)
  checkpoints_written : int;
  queue_depth : int;  (* peak claimed-but-unmerged pipeline depth *)
  worker_busy_s : float;  (* cumulative task wall time across all domains *)
}

(* --- work items and task outcomes --------------------------------- *)

type exec_result = (Runner.result, [ `Platform_limit of int ]) Stdlib.result

(* The work-item type is owned by {!Checkpoint} so snapshots can carry
   the un-merged tail of a round. *)
type work = Checkpoint.work =
  | W_fresh of Driver.pending
  | W_negate of Strategy.candidate

type negated_outcome =
  | N_unsat
  | N_unknown
  | N_sat of { fresh : Smt.Model.t; next : Driver.pending; run : exec_result }

type done_item =
  | D_fresh of Driver.pending * exec_result
  | D_negated of {
      index : int;  (* negated path position, for the negation event *)
      solved : bool;  (* live solver call (miss), as opposed to a cached replay *)
      key : Smt.Cache.key option;  (* insert verdict at merge when present *)
      solve_s : float;
      outcome : negated_outcome;
    }

(* --- telemetry (same instruments as the sequential driver) --------- *)

let m_iterations = Obs.Metrics.counter "driver.iterations"
let m_restarts = Obs.Metrics.counter "driver.restarts"
let m_faults = Obs.Metrics.counter "driver.faults"
let m_checkpoints = Obs.Metrics.counter "campaign.checkpoints"
let m_cs_size = Obs.Metrics.histogram "driver.constraint_set"
let g_covered = Obs.Metrics.gauge "driver.covered"
let g_reachable = Obs.Metrics.gauge "driver.reachable"

let emit_restart ~iteration reason =
  Obs.Metrics.incr m_restarts;
  Obs.Sink.emit (Obs.Event.Restart { iteration; reason })

(* Derive the next test from a SAT negation — the driver's input- and
   process-derivation step (conflict resolution included). Pure with
   respect to shared state, so workers run it. *)
let derive (s : Driver.settings) ~cached (cand : Strategy.candidate)
    (sr : Smt.Solver.incremental_result) =
  let record = cand.Strategy.record in
  let decision =
    Conflict.resolve ~prev_nprocs:record.Execution.nprocs
      ~prev_focus:record.Execution.focus ~mapping:record.Execution.mapping
      ~symtab:record.Execution.symtab ~result:sr
  in
  let inputs = Symtab.input_values record.Execution.symtab sr.Smt.Solver.model in
  let nprocs, focus =
    if not s.Driver.framework then (s.Driver.initial_nprocs, s.Driver.initial_focus)
    else if s.Driver.resolve_conflicts then
      (decision.Conflict.nprocs, decision.Conflict.focus)
    else
      (decision.Conflict.nprocs, min record.Execution.focus (decision.Conflict.nprocs - 1))
  in
  {
    Driver.p_inputs = inputs;
    p_nprocs = nprocs;
    p_focus = focus;
    p_depth = cand.Strategy.index + 1;
    p_origin =
      Driver.O_negated
        {
          parent = record.Execution.exec_id;
          branch = Execution.branch_at record cand.Strategy.index lxor 1;
          index = cand.Strategy.index;
          cached;
        };
    (* the child replays its parent's wildcard-match prescription, so
       the negation varies only the input coordinate of the
       (input, schedule) pair *)
    p_schedule = record.Execution.exec_schedule;
  }

let run ?(settings = default_settings) ?(label = "") (info : Branchinfo.t) =
  let s = settings.base in
  let fp =
    Checkpoint.fingerprint ~label ~batch:settings.batch
      ~solver_cache:settings.solver_cache ~cache_capacity:settings.cache_capacity s
  in
  (* Load the snapshot up front: a resume that cannot proceed must fail
     before any campaign state (or telemetry) exists. *)
  let resumed =
    if not settings.resume then None
    else
      match settings.checkpoint with
      | None ->
        raise
          (Checkpoint.Load_error
             (Checkpoint.Corrupt "resume requested without a checkpoint directory"))
      | Some dir -> (
        match Checkpoint.load ~dir with
        | Error e -> raise (Checkpoint.Load_error e)
        | Ok snap -> (
          match Checkpoint.mismatches ~stored:snap.Checkpoint.ck_fingerprint ~current:fp with
          | [] -> Some (dir, snap)
          | ms -> raise (Checkpoint.Load_error (Checkpoint.Settings_mismatch ms))))
  in
  let snap_field f default = match resumed with Some (_, sn) -> f sn | None -> default in
  let rng = snap_field (fun sn -> sn.Checkpoint.ck_rng) (Random.State.make [| s.Driver.seed |]) in
  let program = info.Branchinfo.program in
  let coverage = snap_field (fun sn -> sn.Checkpoint.ck_coverage) (Coverage.create ()) in
  let strategy =
    ref (snap_field (fun sn -> sn.Checkpoint.ck_strategy) (Driver.make_strategy s info))
  in
  let base_runner =
    {
      (Runner.default_config ~info) with
      Runner.reduce = s.Driver.reduce;
      two_way = s.Driver.two_way;
      mark_mpi_sem = s.Driver.framework;
      record_all = s.Driver.framework;
      nprocs_cap = s.Driver.nprocs_cap;
      cap_overrides = s.Driver.cap_overrides;
      step_limit = s.Driver.step_limit;
      max_procs = s.Driver.max_procs;
      (* compiled once here, then shared read-only by every worker
         domain; per-run state lives in per-run frames. Deliberately NOT
         part of the checkpoint fingerprint: the two exec modes are
         observationally identical, so a snapshot written under either
         resumes under either. *)
      compiled = Runner.prepare ~target:label s.Driver.exec_mode info;
    }
  in
  let cache =
    if not settings.solver_cache then None
    else
      match snap_field (fun sn -> sn.Checkpoint.ck_cache) None with
      | Some c -> Some c
      | None -> Some (Smt.Cache.create ~capacity:settings.cache_capacity ())
  in
  (* The campaign owns the span timeline unless the caller (CLI, test
     harness) already enabled it. Enabling must precede pool creation so
     the worker domains' spans share the epoch, and only makes sense
     against an installed sink — spans are drained into it. *)
  let tl_owner = Obs.Sink.active () && not (Obs.Timeline.on ()) in
  if tl_owner then Obs.Timeline.enable ();
  let campaign_tk = if Obs.Timeline.on () then Obs.Timeline.tick () else 0 in
  let pool = Taskpool.create ~jobs:settings.jobs in
  (* A stop request from SIGINT/SIGTERM parks the campaign at the next
     merge position — the same cut the iteration budget uses — so the
     final flush below leaves a checkpoint a resume can continue from.
     Handlers are installed only when checkpointing is on; otherwise
     Ctrl-C keeps its default meaning. *)
  let stop = ref false in
  let old_handlers =
    match settings.checkpoint with
    | None -> []
    | Some _ ->
      List.filter_map
        (fun sg ->
          match Sys.signal sg (Sys.Signal_handle (fun _ -> stop := true)) with
          | old -> Some (sg, old)
          | exception (Invalid_argument _ | Sys_error _) -> None)
        [ Sys.sigint; Sys.sigterm ]
  in
  (* Any exception out of a round (a worker failure re-raised by
     Taskpool.next, a solver bug on the main domain) must still stop and
     join the spawned domains — otherwise they block on the pool's
     condition variable forever and the runtime hangs at exit waiting
     for them. *)
  Fun.protect
    ~finally:(fun () ->
      List.iter (fun (sg, old) -> try Sys.set_signal sg old with Invalid_argument _ | Sys_error _ -> ()) old_handlers;
      Taskpool.shutdown pool;
      (* one umbrella "campaign" span closes over setup, every round
         and the teardown just done, so the profile can attribute the
         engine's full extent even where no finer span runs; then flush
         whatever the workers buffered (shutdown's join has already
         fenced them) and release the timeline if we own it *)
      if Obs.Timeline.on () then begin
        Obs.Timeline.record ~kind:"campaign" ~t0:campaign_tk
          ~t1:(Obs.Timeline.tick ());
        Obs.Timeline.drain ()
      end;
      if tl_owner then Obs.Timeline.disable ())
  @@ fun () ->
  (match resumed with
  | Some (dir, sn) ->
    Obs.Sink.emit
      (Obs.Event.Checkpoint_load
         { iteration = sn.Checkpoint.ck_iter; path = Checkpoint.file ~dir })
  | None -> ());
  Obs.Sink.emit
    (Obs.Event.Campaign_start
       {
         target = label;
         iterations = s.Driver.iterations;
         seed = s.Driver.seed;
         nprocs = s.Driver.initial_nprocs;
       });
  let t_start = Unix.gettimeofday () in
  let elapsed () = Unix.gettimeofday () -. t_start in
  let time_ok () =
    match s.Driver.time_budget with Some b -> elapsed () < b | None -> true
  in
  let stats = ref (snap_field (fun sn -> sn.Checkpoint.ck_stats) []) in
  let bugs = ref (snap_field (fun sn -> sn.Checkpoint.ck_bugs) []) in
  let max_cs = ref (snap_field (fun sn -> sn.Checkpoint.ck_max_cs) 0) in
  let derived_bound = ref (snap_field (fun sn -> sn.Checkpoint.ck_derived_bound) None) in
  let iter = ref (snap_field (fun sn -> sn.Checkpoint.ck_iter) 0) in
  let best_covered = ref (snap_field (fun sn -> sn.Checkpoint.ck_best_covered) 0) in
  let last_improvement = ref (snap_field (fun sn -> sn.Checkpoint.ck_last_improvement) 0) in
  (* consecutive failed negations since a SAT one *)
  let barren = ref (snap_field (fun sn -> sn.Checkpoint.ck_barren) 0) in
  let last_np =
    ref
      (snap_field
         (fun sn -> sn.Checkpoint.ck_last_np)
         (s.Driver.initial_nprocs, s.Driver.initial_focus))
  in
  let rounds = ref (snap_field (fun sn -> sn.Checkpoint.ck_rounds) 0) in
  let executed = ref (snap_field (fun sn -> sn.Checkpoint.ck_executed) 0) in
  let speculated = ref (snap_field (fun sn -> sn.Checkpoint.ck_speculated) 0) in
  let solver_calls = ref (snap_field (fun sn -> sn.Checkpoint.ck_solver_calls) 0) in
  (* restart tests queued during the merge; consumed (and cleared) by
     the scheduling step, so mid-round snapshots carry exactly the
     items accumulated since the last schedule *)
  let forced = ref (snap_field (fun sn -> sn.Checkpoint.ck_forced) []) in
  let stagnated_round = ref (snap_field (fun sn -> sn.Checkpoint.ck_stagnated_round) false) in
  (* schedule forks enumerated during merges; consumed (and cleared) by
     the scheduling step, mirroring [forced] *)
  let schedules_q = ref (snap_field (fun sn -> sn.Checkpoint.ck_schedules) []) in
  let checkpoints_written = ref 0 in
  (* peak pipeline depth across rounds, for the result record *)
  let max_depth = ref 0 in
  (* live-status accumulators: last reachable count seen at a merge (a
     resumed run re-seeds it from the newest checkpointed stat), and
     total alternative schedules enumerated *)
  let last_reachable =
    ref (match !stats with s :: _ -> s.Driver.reachable_after | [] -> 0)
  in
  let sched_total = ref 0 in
  let fresh_strategy () =
    match (s.Driver.strategy, !derived_bound) with
    | Driver.Two_phase_dfs, Some bound ->
      Strategy.create ~seed:(s.Driver.seed + !iter) (Strategy.Bounded_dfs bound)
    | (Driver.Two_phase_dfs | Driver.Fixed_strategy _ | Driver.Cfg_strategy), _ ->
      Driver.make_strategy s info
  in
  let fresh_pending ~origin ~nprocs ~focus () =
    {
      Driver.p_inputs = Driver.random_inputs rng s program;
      p_nprocs = nprocs;
      p_focus = focus;
      p_depth = 0;
      p_origin = origin;
      p_schedule = [];
    }
  in
  let exec (p : Driver.pending) =
    let nprocs = min p.Driver.p_nprocs s.Driver.max_procs in
    Runner.run
      {
        base_runner with
        Runner.inputs = p.Driver.p_inputs;
        nprocs;
        focus = min p.Driver.p_focus (nprocs - 1);
        schedule = (if s.Driver.schedules then Some p.Driver.p_schedule else None);
      }
  in
  (* Merge one completed execution: assigns the next iteration id and
     feeds every accumulator the sequential driver feeds. *)
  let merge_exec (p : Driver.pending) ~solve_s (res : exec_result) =
    let nprocs = min p.Driver.p_nprocs s.Driver.max_procs in
    let focus = min p.Driver.p_focus (nprocs - 1) in
    if Obs.Sink.active () then
      Obs.Sink.emit (Obs.Event.Iter_start { iteration = !iter; nprocs; focus });
    (match res with
    | Error (`Platform_limit _) ->
      emit_restart ~iteration:!iter "platform-limit";
      forced :=
        fresh_pending ~origin:Driver.O_restart ~nprocs:s.Driver.initial_nprocs
          ~focus:s.Driver.initial_focus ()
        :: !forced
    | Ok r ->
      incr executed;
      (* assign the campaign-wide test id before the strategy observes
         the execution, so every candidate carries a valid parent *)
      r.Runner.execution.Execution.exec_id <- !iter;
      Driver.emit_lineage_test ~test:!iter p.Driver.p_origin;
      (* schedule enumeration: fork this run's recorded wildcard
         decisions into alternative prescriptions (POR-pruned — only
         non-prescribed choice points with >1 eligible source fork).
         Runs at the merge position, so the fork set and its order are
         a pure function of the merged trajectory: identical at any
         worker count. *)
      if s.Driver.schedules then begin
        let prefix_len = List.length p.Driver.p_schedule in
        let choices = r.Runner.choices in
        let alts =
          Mpisim.Schedule.alternatives ~depth:s.Driver.schedule_depth ~prefix_len
            choices
        in
        List.iter
          (fun (a : Mpisim.Schedule.alt) ->
            schedules_q :=
              {
                Driver.p_inputs = p.Driver.p_inputs;
                p_nprocs = p.Driver.p_nprocs;
                p_focus = p.Driver.p_focus;
                p_depth = p.Driver.p_depth;
                p_origin =
                  Driver.O_schedule
                    {
                      parent = !iter;
                      point = a.Mpisim.Schedule.alt_point;
                      source = a.Mpisim.Schedule.alt_source;
                    };
                p_schedule = a.Mpisim.Schedule.alt_prescription;
              }
              :: !schedules_q)
          alts;
        let st =
          Mpisim.Schedule.stats ~depth:s.Driver.schedule_depth ~prefix_len choices
        in
        sched_total := !sched_total + st.Mpisim.Schedule.st_emitted;
        if st.Mpisim.Schedule.st_points > 0 && Obs.Sink.active () then
          Obs.Sink.emit
            (Obs.Event.Schedule_enum
               {
                 parent = !iter;
                 points = st.Mpisim.Schedule.st_points;
                 emitted = st.Mpisim.Schedule.st_emitted;
                 pruned = st.Mpisim.Schedule.st_pruned;
               })
      end;
      Coverage.absorb ~into:coverage r.Runner.coverage;
      max_cs := max !max_cs r.Runner.constraint_set_size;
      Obs.Metrics.observe_int m_cs_size r.Runner.constraint_set_size;
      last_np := (p.Driver.p_nprocs, p.Driver.p_focus);
      let faults = Runner.faults r in
      List.iter
        (fun (rank, fault) ->
          Obs.Metrics.incr m_faults;
          if Obs.Sink.active () then
            Obs.Sink.emit
              (Obs.Event.Fault
                 {
                   iteration = !iter;
                   rank;
                   kind = Fault.kind_name fault;
                   detail = Fault.to_string fault;
                 });
          bugs :=
            {
              Driver.bug_iteration = !iter;
              bug_rank = rank;
              bug_fault = fault;
              bug_inputs = p.Driver.p_inputs;
              bug_nprocs = nprocs;
              bug_focus = focus;
              bug_context = r.Runner.focus_tail;
            }
            :: !bugs)
        faults;
      Obs.Prof.time "strategy" (fun () ->
          Strategy.observe !strategy ~depth:p.Driver.p_depth r.Runner.execution);
      (* two-phase bound derivation, exactly as in the driver *)
      (match s.Driver.strategy with
      | Driver.Two_phase_dfs when !iter + 1 = s.Driver.dfs_phase_iters ->
        let bound =
          match s.Driver.depth_bound with
          | Some b -> b
          | None -> (!max_cs * 6 / 5) + 10
        in
        derived_bound := Some bound;
        let st =
          Strategy.create ~seed:(s.Driver.seed + 1) (Strategy.Bounded_dfs bound)
        in
        Strategy.observe st ~depth:0 r.Runner.execution;
        strategy := st
      | Driver.Two_phase_dfs | Driver.Fixed_strategy _ | Driver.Cfg_strategy -> ());
      let covered_now = Coverage.covered_branches coverage in
      if covered_now > !best_covered then begin
        if Obs.Sink.active () then
          Obs.Sink.emit
            (Obs.Event.Coverage_delta
               {
                 iteration = !iter;
                 covered_before = !best_covered;
                 covered_after = covered_now;
               });
        best_covered := covered_now;
        last_improvement := !iter
      end;
      let stagnated =
        match s.Driver.stagnation_restart with
        | Some k -> !iter - !last_improvement >= k
        | None -> false
      in
      if stagnated then begin
        emit_restart ~iteration:!iter "stagnation";
        last_improvement := !iter;
        strategy := fresh_strategy ();
        stagnated_round := true
      end;
      let reachable =
        Branchinfo.reachable_branches info ~encountered:(Coverage.encountered coverage)
      in
      last_reachable := reachable;
      Obs.Metrics.incr m_iterations;
      Obs.Metrics.set g_covered (float_of_int covered_now);
      Obs.Metrics.set g_reachable (float_of_int reachable);
      if Obs.Sink.active () then
        Obs.Sink.emit
          (Obs.Event.Iter_end
             {
               iteration = !iter;
               covered = covered_now;
               reachable;
               cs_size = r.Runner.constraint_set_size;
               faults = List.length faults;
               restarted = stagnated;
               exec_s = r.Runner.wall_time;
               solve_s;
             });
      stats :=
        {
          Driver.iteration = !iter;
          nprocs;
          focus;
          constraint_set_size = r.Runner.constraint_set_size;
          covered_after = covered_now;
          reachable_after = reachable;
          faults_seen = List.length faults;
          restarted = stagnated;
          exec_time = r.Runner.wall_time;
          solve_time = solve_s;
        }
        :: !stats);
    incr iter
  in
  let budget_left () = !iter < s.Driver.iterations && time_ok () in
  let continue_ok () = budget_left () && not !stop in
  let work =
    ref
      (match resumed with
      | Some (_, sn) -> sn.Checkpoint.ck_work
      | None ->
        [
          W_fresh
            (fresh_pending ~origin:Driver.O_seed ~nprocs:s.Driver.initial_nprocs
               ~focus:s.Driver.initial_focus ());
        ])
  in
  (* Items of the current round not yet merged — the tail a snapshot
     records. Maintained at every merge position, and reset to the new
     work list by the scheduling step. *)
  let work_remaining = ref !work in
  (* Schedule the next round from the merged state. [forced] and
     [stagnated_round] are consumed here so a later snapshot never
     replays them twice. Always yields at least one item (the restart
     fallback), so the main loop exits only on budget or stop. *)
  let schedule () =
    let forced_items = List.rev_map (fun p -> W_fresh p) !forced in
    (* enumerated schedule forks, in enumeration order: they interleave
       with the input-negation candidates of the same round *)
    let sched_items = List.rev_map (fun p -> W_fresh p) !schedules_q in
    let restart_test () =
      let nprocs, focus = !last_np in
      W_fresh (fresh_pending ~origin:Driver.O_restart ~nprocs ~focus ())
    in
    work :=
      (if !stagnated_round then
         (* fresh search tree: redo the testing from random inputs
            (queued schedule forks stay valid — they re-run concrete
            tests and need no search tree) *)
         forced_items @ sched_items @ [ restart_test () ]
       else if !barren >= s.Driver.max_solve_attempts then begin
         emit_restart ~iteration:!iter "exhausted";
         barren := 0;
         forced_items @ sched_items @ [ restart_test () ]
       end
       else
         match
           (sched_items, Strategy.next_batch !strategy ~coverage ~max:settings.batch)
         with
         | [], [] ->
           emit_restart ~iteration:!iter "exhausted";
           barren := 0;
           forced_items @ [ restart_test () ]
         | sched, cands ->
           forced_items @ sched @ List.map (fun c -> W_negate c) cands);
    forced := [];
    schedules_q := [];
    stagnated_round := false;
    work_remaining := !work
  in
  (* An interrupted run cut exactly at a round boundary snapshots an
     empty tail (the cut happens before scheduling, which the longer
     uninterrupted run would have performed from this very state) — so
     a resume with budget left performs that scheduling now. *)
  if !work = [] && budget_left () && not !stop then schedule ();
  let write_checkpoint dir =
    let snap =
      {
        Checkpoint.ck_fingerprint = fp;
        ck_iter = !iter;
        ck_rounds = !rounds;
        ck_executed = !executed;
        ck_speculated = !speculated;
        ck_solver_calls = !solver_calls;
        ck_max_cs = !max_cs;
        ck_best_covered = !best_covered;
        ck_last_improvement = !last_improvement;
        ck_barren = !barren;
        ck_last_np = !last_np;
        ck_derived_bound = !derived_bound;
        ck_rng = rng;
        ck_strategy = !strategy;
        ck_coverage = coverage;
        ck_cache = cache;
        ck_stats = !stats;
        ck_bugs = !bugs;
        ck_forced = !forced;
        ck_stagnated_round = !stagnated_round;
        ck_schedules = !schedules_q;
        ck_work = !work_remaining;
      }
    in
    let bytes = Obs.Prof.time "checkpoint" (fun () -> Checkpoint.save ~dir ~target:label snap) in
    incr checkpoints_written;
    Obs.Metrics.incr m_checkpoints;
    Obs.Sink.emit
      (Obs.Event.Checkpoint_write
         { iteration = !iter; path = Checkpoint.file ~dir; bytes })
  in
  let every = settings.checkpoint_every in
  let next_due =
    ref (if every > 0 then ((!iter / every) + 1) * every else max_int)
  in
  let maybe_checkpoint () =
    match settings.checkpoint with
    | Some dir when !iter >= !next_due ->
      write_checkpoint dir;
      next_due := ((!iter / every) + 1) * every
    | Some _ | None -> ()
  in
  (* Live status: an atomic snapshot published at every merge position
     (and once more, finished, at campaign end). Everything quoted is
     main-domain merge state, so the snapshot sequence — like the
     trajectory itself — is invariant across [jobs]. *)
  let publish_status ~finished () =
    match settings.status_file with
    | None -> ()
    | Some path ->
      let bug_count = List.length !bugs in
      let curve =
        (* trailing slice of the coverage curve, oldest first, feeding
           the plateau/ETA estimate *)
        let rec take n = function
          | [] -> []
          | x :: tl -> if n = 0 then [] else x :: take (n - 1) tl
        in
        List.rev_map
          (fun st -> (st.Driver.iteration, st.Driver.covered_after))
          (take 64 !stats)
      in
      let plateau, eta =
        Obs.Status.estimate ~reachable:!last_reachable curve
      in
      let hits, misses =
        match cache with
        | None -> (0, 0)
        | Some c ->
          let cs = Smt.Cache.stats c in
          (cs.Smt.Cache.hits, cs.Smt.Cache.misses)
      in
      let probes = hits + misses in
      let wall = elapsed () in
      let utilization =
        if wall <= 0.0 then 0.0
        else
          Float.min 1.0
            (Taskpool.busy_seconds pool
            /. (wall *. float_of_int (max 1 settings.jobs)))
      in
      Obs.Status.publish path
        {
          Obs.Status.target = label;
          budget = s.Driver.iterations;
          rounds = !rounds;
          executed = !iter;
          covered = !best_covered;
          reachable = !last_reachable;
          bugs = bug_count;
          queue_depth = !max_depth;
          utilization;
          cache_hit_rate =
            (if probes = 0 then 0.0
             else float_of_int hits /. float_of_int probes);
          schedule_forks = !sched_total;
          plateau;
          eta_iterations = eta;
          finished;
        };
      if Obs.Sink.active () then
        Obs.Sink.emit
          (Obs.Event.Status_snapshot
             {
               rounds = !rounds;
               executed = !iter;
               covered = !best_covered;
               reachable = !last_reachable;
               bugs = bug_count;
               queue = !max_depth;
               path;
             })
  in
  while !work <> [] && continue_ok () do
    incr rounds;
    let round_tk = if Obs.Timeline.on () then Obs.Timeline.tick () else 0 in
    (* dispatch: probe the cache on the main domain, then build one
       fused task per work item *)
    let classified =
      Obs.Timeline.span "dispatch" @@ fun () ->
      List.map
        (fun w ->
          match w with
          | W_fresh p -> `Fresh p
          | W_negate cand -> (
            match cache with
            | None -> `Miss (cand, None)
            | Some c -> (
              (* one canonicalization per candidate: the prepared value
                 carries the key for the probe below AND the closure the
                 miss-path solve / hit-path replay run on *)
              let p = Execution.prepare_negation cand.Strategy.record cand.Strategy.index in
              match Smt.Cache.find c (Execution.prepared_key p) with
              | Some outcome -> `Hit (cand, p, outcome)
              | None -> `Miss (cand, Some p))))
        !work
    in
    let thunks =
      List.map
        (fun w () ->
          match w with
          | `Fresh p -> D_fresh (p, exec p)
          | `Hit (cand, p, outcome) -> (
            (* replay the cached verdict; no solver call *)
            let index = cand.Strategy.index in
            match Execution.apply_prepared cand.Strategy.record p outcome with
            | Error (`Unsat | `Unknown) ->
              D_negated
                { index; solved = false; key = None; solve_s = 0.0; outcome = N_unsat }
            | Ok sr ->
              let next = derive s ~cached:true cand sr in
              D_negated
                {
                  index;
                  solved = false;
                  key = None;
                  solve_s = 0.0;
                  outcome = N_sat { fresh = sr.Smt.Solver.fresh; next; run = exec next };
                })
          | `Miss (cand, prep) -> (
            let index = cand.Strategy.index in
            let key = Option.map Execution.prepared_key prep in
            let t0 = Unix.gettimeofday () in
            let outcome =
              Obs.Prof.time "solve" (fun () ->
                  match prep with
                  | Some p ->
                    (* cache on: the dispatch-time key already holds the
                       canonical closure — solve it directly *)
                    Execution.solve_prepared ~budget:s.Driver.solver_budget
                      cand.Strategy.record p
                  | None ->
                    Execution.solve_negation ~budget:s.Driver.solver_budget
                      ~canonical:true cand.Strategy.record index)
            in
            let solve_s = Unix.gettimeofday () -. t0 in
            match outcome with
            | Error `Unsat ->
              D_negated { index; solved = true; key; solve_s; outcome = N_unsat }
            | Error `Unknown ->
              (* never cache an unknown: a later, luckier attempt or a
                 raised budget should get its chance *)
              D_negated { index; solved = true; key = None; solve_s; outcome = N_unknown }
            | Ok sr ->
              let next = derive s ~cached:false cand sr in
              D_negated
                {
                  index;
                  solved = true;
                  key;
                  solve_s;
                  outcome = N_sat { fresh = sr.Smt.Solver.fresh; next; run = exec next };
                }))
        classified
    in
    (* pipeline: publish the batch and merge results in work-list order
       as they stream in — the merge of item k overlaps the
       solve/execute of items k+1, k+2, … still running on the pool.
       [solver_calls] is counted at merge, not dispatch, so the stat
       covers exactly the solves whose verdicts entered the merged
       trajectory — results discarded at the budget edge only show up
       in [speculated]. A budget (or stop-request) cut records the
       un-merged tail in [work_remaining] so the final checkpoint can
       resume mid-round; the tail's tasks are still drained to
       completion (executions there count as speculated) so the pool is
       quiescent and the tally matches the old round-barrier engine's
       at every cut point. *)
    let inflight_tk = if Obs.Timeline.on () then Obs.Timeline.tick () else 0 in
    let st = Taskpool.stream pool thunks in
    let merge_one w item =
      match item with
      | D_fresh (p, res) -> merge_exec p ~solve_s:0.0 res
      | D_negated { index; solved; key; solve_s; outcome } -> (
        if solved then incr solver_calls;
        (* D_negated always pairs with W_negate: recover the candidate
           for the lineage record *)
        (match w with
        | W_negate cand ->
          let o =
            match outcome with
            | N_unsat -> Obs.Event.Unsat
            | N_unknown -> Obs.Event.Unknown
            | N_sat _ -> Obs.Event.Sat
          in
          Driver.emit_lineage_negation ~cand ~outcome:o ~cached:(not solved)
        | W_fresh _ -> ());
        (* verdicts publish here, on the main domain at the ordered
           merge position — the cache's single-writer protocol *)
        let insert verdict =
          match (cache, key) with
          | Some c, Some k -> Smt.Cache.add c k verdict
          | (Some _ | None), _ -> ()
        in
        match outcome with
        | N_unsat ->
          insert Smt.Cache.Unsat;
          if Obs.Sink.active () then
            Obs.Sink.emit
              (Obs.Event.Negation { iteration = !iter; index; sat = false });
          incr barren
        | N_unknown ->
          if Obs.Sink.active () then
            Obs.Sink.emit
              (Obs.Event.Negation { iteration = !iter; index; sat = false });
          incr barren
        | N_sat { fresh; next; run } ->
          insert (Smt.Cache.Sat fresh);
          if Obs.Sink.active () then
            Obs.Sink.emit
              (Obs.Event.Negation { iteration = !iter; index; sat = true });
          barren := 0;
          merge_exec next ~solve_s run)
    in
    let count_speculated = function
      | D_fresh (_, Ok _) | D_negated { outcome = N_sat { run = Ok _; _ }; _ } ->
        incr speculated
      | D_fresh (_, Error _) | D_negated _ -> ()
    in
    let rec merge_stream = function
      | [] -> work_remaining := []
      | w :: rest -> (
        match Taskpool.next st with
        | None -> assert false (* stream has exactly one item per work entry *)
        | Some item ->
          if not (continue_ok ()) then begin
            work_remaining := w :: rest;
            count_speculated item;
            let rec drain () =
              match Taskpool.next st with
              | Some it ->
                count_speculated it;
                drain ()
              | None -> ()
            in
            drain ()
          end
          else begin
            Obs.Timeline.span "merge" (fun () -> merge_one w item);
            work_remaining := rest;
            maybe_checkpoint ();
            if Taskpool.max_inflight st > !max_depth then
              max_depth := Taskpool.max_inflight st;
            publish_status ~finished:false ();
            merge_stream rest
          end)
    in
    merge_stream !work;
    if Taskpool.max_inflight st > !max_depth then
      max_depth := Taskpool.max_inflight st;
    (* one umbrella per round over the streaming window: publication of
       the batch through consumption of its last result *)
    if Obs.Timeline.on () then
      Obs.Timeline.record ~kind:"inflight" ~t0:inflight_tk
        ~t1:(Obs.Timeline.tick ());
    if continue_ok () then schedule () else work := [];
    (* drain first, then record the round span: the drain cost itself
       lands inside this round's window (it is flushed by the next
       round's drain, or the final one), so round spans tile the loop
       and the profile can attribute ~all wall time to named spans *)
    if Obs.Timeline.on () then begin
      Obs.Timeline.drain ();
      Obs.Timeline.record ~kind:"round" ~t0:round_tk ~t1:(Obs.Timeline.tick ())
    end
  done;
  (* final flush: whatever stopped the campaign — budget, signal, or a
     drained work list — leave a snapshot the next run can pick up *)
  (match settings.checkpoint with Some dir -> write_checkpoint dir | None -> ());
  let reachable =
    Obs.Prof.time "report" (fun () ->
        Branchinfo.reachable_branches info ~encountered:(Coverage.encountered coverage))
  in
  let covered = Coverage.covered_branches coverage in
  Obs.Sink.emit
    (Obs.Event.Campaign_end
       {
         iterations_run = !iter;
         covered;
         reachable;
         bugs = List.length !bugs;
         wall_s = elapsed ();
       });
  last_reachable := reachable;
  publish_status ~finished:true ();
  (match settings.ledger with
  | None -> ()
  | Some path ->
    let hits, misses =
      match cache with
      | None -> (0, 0)
      | Some c ->
        let cs = Smt.Cache.stats c in
        (cs.Smt.Cache.hits, cs.Smt.Cache.misses)
    in
    let record =
      {
        Obs.Ledger.run = "";
        (* assigned by append *)
        target = label;
        fingerprint = Obs.Ledger.digest fp;
        exec_mode = Runner.exec_mode_name s.Driver.exec_mode;
        jobs = settings.jobs;
        seed = s.Driver.seed;
        budget = s.Driver.iterations;
        executed = !iter;
        rounds = !rounds;
        covered;
        reachable;
        bugs =
          List.rev_map
            (fun b ->
              {
                Obs.Ledger.bug_test = b.Driver.bug_iteration;
                bug_rank = b.Driver.bug_rank;
                bug_kind = Fault.kind_name b.Driver.bug_fault;
              })
            !bugs;
        curve =
          List.rev_map
            (fun st -> (st.Driver.iteration, st.Driver.covered_after))
            !stats;
        wall_s = elapsed ();
        solver_calls = !solver_calls;
        cache_hits = hits;
        cache_misses = misses;
        schedule_forks = !sched_total;
      }
    in
    let written = Obs.Ledger.append path record in
    if Obs.Sink.active () then
      Obs.Sink.emit
        (Obs.Event.Ledger_append
           {
             path;
             run = written.Obs.Ledger.run;
             covered;
             reachable;
             bugs = List.length !bugs;
           }));
  {
    summary =
      {
        Driver.coverage;
        stats = List.rev !stats;
        bugs = List.rev !bugs;
        total_branches = info.Branchinfo.total_branches;
        reachable_branches = reachable;
        covered_branches = covered;
        coverage_rate =
          (if reachable = 0 then 0.0 else float_of_int covered /. float_of_int reachable);
        iterations_run = !iter;
        wall_time = elapsed ();
        max_constraint_set = !max_cs;
        derived_bound = !derived_bound;
      };
    rounds = !rounds;
    executed = !executed;
    speculated = !speculated;
    solver_calls = !solver_calls;
    cache = Option.map Smt.Cache.stats cache;
    interrupted = !stop;
    checkpoints_written = !checkpoints_written;
    queue_depth = !max_depth;
    worker_busy_s = Taskpool.busy_seconds pool;
  }

(* Canonical, timing-free rendering of a campaign outcome. Two runs of
   the same campaign — at any worker count, interrupted-and-resumed or
   not — must produce byte-equal reports; the determinism test and the
   CI diff steps compare exactly this string. *)
let coverage_report (r : result) =
  let b = Buffer.create 512 in
  let s = r.summary in
  Buffer.add_string b (Printf.sprintf "iterations %d\n" s.Driver.iterations_run);
  Buffer.add_string b
    (Printf.sprintf "covered %d reachable %d total %d\n" s.Driver.covered_branches
       s.Driver.reachable_branches s.Driver.total_branches);
  (match s.Driver.derived_bound with
  | Some bound -> Buffer.add_string b (Printf.sprintf "bound %d\n" bound)
  | None -> Buffer.add_string b "bound none\n");
  Buffer.add_string b (Coverage.report s.Driver.coverage);
  Buffer.add_string b (Printf.sprintf "bugs %d:" (List.length s.Driver.bugs));
  List.iter
    (fun bug ->
      Buffer.add_string b
        (Printf.sprintf " %d:%s" bug.Driver.bug_iteration (Driver.bug_key bug)))
    s.Driver.bugs;
  Buffer.add_char b '\n';
  Buffer.contents b
