open Minic
open Concolic

(* Parallel campaign engine.

   The sequential driver interleaves "execute the pending test" and
   "derive the next test" in one loop, so each iteration depends on the
   previous one. This engine restructures the campaign into rounds: a
   work list of independent items — fresh tests to execute, or branch
   negations to attempt — is mapped over a {!Taskpool} of worker
   domains, and the results are merged back on the main domain {e in
   work-list order}, which is where iteration ids are assigned. Because
   the work list of every round is a pure function of the merged state
   (strategy, coverage, RNG) and the merge ignores completion order,
   the campaign trajectory is identical for any worker count: [--jobs]
   buys wall-clock time, never different results. Determinism holds
   under an iteration budget; a wall-clock [time_budget] cuts rounds
   off at a machine-speed-dependent point.

   The solver cache lives on the main domain only. Each negation is
   probed at dispatch (before its task is queued) and verdicts are
   inserted at merge, so cache state transitions also happen at
   deterministic points. Within one round two structurally identical
   negations both miss and both solve; the merge inserts the first
   verdict and drops the duplicate (first-verdict-wins).

   Negations are solved in {e canonical} mode (sorted closure, no
   preference model) whether the cache is on or off: the verdict is
   then a pure function of the cache key, so a hit replays exactly what
   a live solve would have returned even though the verdict was found
   under a different run's concrete model, and cache on/off cannot
   change the trajectory. (The sequential driver keeps CREST's
   prefer-previous-values heuristic; it never replays across runs.) *)

type settings = {
  base : Driver.settings;
  jobs : int;  (* worker domains, >= 1; main participates *)
  batch : int;  (* candidates drawn per round — NOT tied to [jobs] *)
  solver_cache : bool;
  cache_capacity : int;
}

let default_settings =
  {
    base = Driver.default_settings;
    jobs = 1;
    batch = 4;
    solver_cache = true;
    cache_capacity = Smt.Cache.default_capacity;
  }

type result = {
  summary : Driver.result;
  rounds : int;
  executed : int;  (* merged test executions *)
  speculated : int;  (* executions completed but dropped at the budget edge *)
  solver_calls : int;  (* live solves whose verdicts merged into the trajectory *)
  cache : Smt.Cache.stats option;
}

(* --- work items and task outcomes --------------------------------- *)

type exec_result = (Runner.result, [ `Platform_limit of int ]) Stdlib.result

type work = W_fresh of Driver.pending | W_negate of Strategy.candidate

type negated_outcome =
  | N_unsat
  | N_unknown
  | N_sat of { fresh : Smt.Model.t; next : Driver.pending; run : exec_result }

type done_item =
  | D_fresh of Driver.pending * exec_result
  | D_negated of {
      index : int;  (* negated path position, for the negation event *)
      solved : bool;  (* live solver call (miss), as opposed to a cached replay *)
      key : Smt.Cache.key option;  (* insert verdict at merge when present *)
      solve_s : float;
      outcome : negated_outcome;
    }

(* --- telemetry (same instruments as the sequential driver) --------- *)

let m_iterations = Obs.Metrics.counter "driver.iterations"
let m_restarts = Obs.Metrics.counter "driver.restarts"
let m_faults = Obs.Metrics.counter "driver.faults"
let m_cs_size = Obs.Metrics.histogram "driver.constraint_set"
let g_covered = Obs.Metrics.gauge "driver.covered"
let g_reachable = Obs.Metrics.gauge "driver.reachable"

let emit_restart ~iteration reason =
  Obs.Metrics.incr m_restarts;
  Obs.Sink.emit (Obs.Event.Restart { iteration; reason })

(* Derive the next test from a SAT negation — the driver's input- and
   process-derivation step (conflict resolution included). Pure with
   respect to shared state, so workers run it. *)
let derive (s : Driver.settings) (cand : Strategy.candidate)
    (sr : Smt.Solver.incremental_result) =
  let record = cand.Strategy.record in
  let decision =
    Conflict.resolve ~prev_nprocs:record.Execution.nprocs
      ~prev_focus:record.Execution.focus ~mapping:record.Execution.mapping
      ~symtab:record.Execution.symtab ~result:sr
  in
  let inputs = Symtab.input_values record.Execution.symtab sr.Smt.Solver.model in
  let nprocs, focus =
    if not s.Driver.framework then (s.Driver.initial_nprocs, s.Driver.initial_focus)
    else if s.Driver.resolve_conflicts then
      (decision.Conflict.nprocs, decision.Conflict.focus)
    else
      (decision.Conflict.nprocs, min record.Execution.focus (decision.Conflict.nprocs - 1))
  in
  {
    Driver.p_inputs = inputs;
    p_nprocs = nprocs;
    p_focus = focus;
    p_depth = cand.Strategy.index + 1;
  }

let run ?(settings = default_settings) ?(label = "") (info : Branchinfo.t) =
  let s = settings.base in
  let rng = Random.State.make [| s.Driver.seed |] in
  let program = info.Branchinfo.program in
  let coverage = Coverage.create () in
  let strategy = ref (Driver.make_strategy s info) in
  let base_runner =
    {
      (Runner.default_config ~info) with
      Runner.reduce = s.Driver.reduce;
      two_way = s.Driver.two_way;
      mark_mpi_sem = s.Driver.framework;
      record_all = s.Driver.framework;
      nprocs_cap = s.Driver.nprocs_cap;
      cap_overrides = s.Driver.cap_overrides;
      step_limit = s.Driver.step_limit;
      max_procs = s.Driver.max_procs;
    }
  in
  let cache =
    if settings.solver_cache then
      Some (Smt.Cache.create ~capacity:settings.cache_capacity ())
    else None
  in
  let pool = Taskpool.create ~jobs:settings.jobs in
  (* Any exception out of a round (a worker failure re-raised by
     Taskpool.map, a solver bug on the main domain) must still stop and
     join the spawned domains — otherwise they block on the pool's
     condition variable forever and the runtime hangs at exit waiting
     for them. *)
  Fun.protect ~finally:(fun () -> Taskpool.shutdown pool) @@ fun () ->
  Obs.Sink.emit
    (Obs.Event.Campaign_start
       {
         target = label;
         iterations = s.Driver.iterations;
         seed = s.Driver.seed;
         nprocs = s.Driver.initial_nprocs;
       });
  let t_start = Unix.gettimeofday () in
  let elapsed () = Unix.gettimeofday () -. t_start in
  let time_ok () =
    match s.Driver.time_budget with Some b -> elapsed () < b | None -> true
  in
  let stats = ref [] in
  let bugs = ref [] in
  let max_cs = ref 0 in
  let derived_bound = ref None in
  let iter = ref 0 in
  let best_covered = ref 0 in
  let last_improvement = ref 0 in
  let barren = ref 0 in  (* consecutive failed negations since a SAT one *)
  let last_np = ref (s.Driver.initial_nprocs, s.Driver.initial_focus) in
  let rounds = ref 0 in
  let executed = ref 0 in
  let speculated = ref 0 in
  let solver_calls = ref 0 in
  let forced = ref [] in  (* restart tests queued during the merge *)
  let stagnated_round = ref false in
  let fresh_strategy () =
    match (s.Driver.strategy, !derived_bound) with
    | Driver.Two_phase_dfs, Some bound ->
      Strategy.create ~seed:(s.Driver.seed + !iter) (Strategy.Bounded_dfs bound)
    | (Driver.Two_phase_dfs | Driver.Fixed_strategy _ | Driver.Cfg_strategy), _ ->
      Driver.make_strategy s info
  in
  let fresh_pending ~nprocs ~focus () =
    {
      Driver.p_inputs = Driver.random_inputs rng s program;
      p_nprocs = nprocs;
      p_focus = focus;
      p_depth = 0;
    }
  in
  let exec (p : Driver.pending) =
    let nprocs = min p.Driver.p_nprocs s.Driver.max_procs in
    Runner.run
      {
        base_runner with
        Runner.inputs = p.Driver.p_inputs;
        nprocs;
        focus = min p.Driver.p_focus (nprocs - 1);
      }
  in
  (* Merge one completed execution: assigns the next iteration id and
     feeds every accumulator the sequential driver feeds. *)
  let merge_exec (p : Driver.pending) ~solve_s (res : exec_result) =
    let nprocs = min p.Driver.p_nprocs s.Driver.max_procs in
    let focus = min p.Driver.p_focus (nprocs - 1) in
    if Obs.Sink.active () then
      Obs.Sink.emit (Obs.Event.Iter_start { iteration = !iter; nprocs; focus });
    (match res with
    | Error (`Platform_limit _) ->
      emit_restart ~iteration:!iter "platform-limit";
      forced :=
        fresh_pending ~nprocs:s.Driver.initial_nprocs ~focus:s.Driver.initial_focus ()
        :: !forced
    | Ok r ->
      incr executed;
      Coverage.absorb ~into:coverage r.Runner.coverage;
      max_cs := max !max_cs r.Runner.constraint_set_size;
      Obs.Metrics.observe_int m_cs_size r.Runner.constraint_set_size;
      last_np := (p.Driver.p_nprocs, p.Driver.p_focus);
      let faults = Runner.faults r in
      List.iter
        (fun (rank, fault) ->
          Obs.Metrics.incr m_faults;
          if Obs.Sink.active () then
            Obs.Sink.emit
              (Obs.Event.Fault
                 {
                   iteration = !iter;
                   rank;
                   kind = Fault.kind_name fault;
                   detail = Fault.to_string fault;
                 });
          bugs :=
            {
              Driver.bug_iteration = !iter;
              bug_rank = rank;
              bug_fault = fault;
              bug_inputs = p.Driver.p_inputs;
              bug_nprocs = nprocs;
              bug_focus = focus;
              bug_context = r.Runner.focus_tail;
            }
            :: !bugs)
        faults;
      Obs.Prof.time "strategy" (fun () ->
          Strategy.observe !strategy ~depth:p.Driver.p_depth r.Runner.execution);
      (* two-phase bound derivation, exactly as in the driver *)
      (match s.Driver.strategy with
      | Driver.Two_phase_dfs when !iter + 1 = s.Driver.dfs_phase_iters ->
        let bound =
          match s.Driver.depth_bound with
          | Some b -> b
          | None -> (!max_cs * 6 / 5) + 10
        in
        derived_bound := Some bound;
        let st =
          Strategy.create ~seed:(s.Driver.seed + 1) (Strategy.Bounded_dfs bound)
        in
        Strategy.observe st ~depth:0 r.Runner.execution;
        strategy := st
      | Driver.Two_phase_dfs | Driver.Fixed_strategy _ | Driver.Cfg_strategy -> ());
      let covered_now = Coverage.covered_branches coverage in
      if covered_now > !best_covered then begin
        if Obs.Sink.active () then
          Obs.Sink.emit
            (Obs.Event.Coverage_delta
               {
                 iteration = !iter;
                 covered_before = !best_covered;
                 covered_after = covered_now;
               });
        best_covered := covered_now;
        last_improvement := !iter
      end;
      let stagnated =
        match s.Driver.stagnation_restart with
        | Some k -> !iter - !last_improvement >= k
        | None -> false
      in
      if stagnated then begin
        emit_restart ~iteration:!iter "stagnation";
        last_improvement := !iter;
        strategy := fresh_strategy ();
        stagnated_round := true
      end;
      let reachable =
        Branchinfo.reachable_branches info ~encountered:(Coverage.encountered coverage)
      in
      Obs.Metrics.incr m_iterations;
      Obs.Metrics.set g_covered (float_of_int covered_now);
      Obs.Metrics.set g_reachable (float_of_int reachable);
      if Obs.Sink.active () then
        Obs.Sink.emit
          (Obs.Event.Iter_end
             {
               iteration = !iter;
               covered = covered_now;
               reachable;
               cs_size = r.Runner.constraint_set_size;
               faults = List.length faults;
               restarted = stagnated;
               exec_s = r.Runner.wall_time;
               solve_s;
             });
      stats :=
        {
          Driver.iteration = !iter;
          nprocs;
          focus;
          constraint_set_size = r.Runner.constraint_set_size;
          covered_after = covered_now;
          reachable_after = reachable;
          faults_seen = List.length faults;
          restarted = stagnated;
          exec_time = r.Runner.wall_time;
          solve_time = solve_s;
        }
        :: !stats);
    incr iter
  in
  let budget_left () = !iter < s.Driver.iterations && time_ok () in
  let work =
    ref
      [
        W_fresh
          (fresh_pending ~nprocs:s.Driver.initial_nprocs ~focus:s.Driver.initial_focus ());
      ]
  in
  while !work <> [] && budget_left () do
    incr rounds;
    forced := [];
    stagnated_round := false;
    (* dispatch: probe the cache on the main domain, then build one
       fused task per work item *)
    let classified =
      List.map
        (fun w ->
          match w with
          | W_fresh p -> `Fresh p
          | W_negate cand -> (
            match cache with
            | None -> `Miss (cand, None)
            | Some c -> (
              let k = Execution.negation_key cand.Strategy.record cand.Strategy.index in
              match Smt.Cache.find c k with
              | Some outcome -> `Hit (cand, outcome)
              | None -> `Miss (cand, Some k))))
        !work
    in
    let thunks =
      List.map
        (fun w () ->
          match w with
          | `Fresh p -> D_fresh (p, exec p)
          | `Hit (cand, outcome) -> (
            (* replay the cached verdict; no solver call *)
            let index = cand.Strategy.index in
            match Execution.apply_cached cand.Strategy.record index outcome with
            | Error (`Unsat | `Unknown) ->
              D_negated
                { index; solved = false; key = None; solve_s = 0.0; outcome = N_unsat }
            | Ok sr ->
              let next = derive s cand sr in
              D_negated
                {
                  index;
                  solved = false;
                  key = None;
                  solve_s = 0.0;
                  outcome = N_sat { fresh = sr.Smt.Solver.fresh; next; run = exec next };
                })
          | `Miss (cand, key) -> (
            let index = cand.Strategy.index in
            let t0 = Unix.gettimeofday () in
            let outcome =
              Obs.Prof.time "solve" (fun () ->
                  Execution.solve_negation ~budget:s.Driver.solver_budget ~canonical:true
                    cand.Strategy.record index)
            in
            let solve_s = Unix.gettimeofday () -. t0 in
            match outcome with
            | Error `Unsat ->
              D_negated { index; solved = true; key; solve_s; outcome = N_unsat }
            | Error `Unknown ->
              (* never cache an unknown: a later, luckier attempt or a
                 raised budget should get its chance *)
              D_negated { index; solved = true; key = None; solve_s; outcome = N_unknown }
            | Ok sr ->
              let next = derive s cand sr in
              D_negated
                {
                  index;
                  solved = true;
                  key;
                  solve_s;
                  outcome = N_sat { fresh = sr.Smt.Solver.fresh; next; run = exec next };
                }))
        classified
    in
    let results = Taskpool.map pool (fun f -> f ()) thunks in
    (* merge: work-list order, budget-gated. [solver_calls] is counted
       here, not at dispatch, so the stat covers exactly the solves
       whose verdicts entered the merged trajectory — results discarded
       at the budget edge only show up in [speculated]. *)
    List.iter
      (fun item ->
        if not (budget_left ()) then begin
          match item with
          | D_fresh (_, Ok _) | D_negated { outcome = N_sat { run = Ok _; _ }; _ } ->
            incr speculated
          | D_fresh (_, Error _) | D_negated _ -> ()
        end
        else
          match item with
          | D_fresh (p, res) -> merge_exec p ~solve_s:0.0 res
          | D_negated { index; solved; key; solve_s; outcome } -> (
            if solved then incr solver_calls;
            let insert verdict =
              match (cache, key) with
              | Some c, Some k -> Smt.Cache.add c k verdict
              | (Some _ | None), _ -> ()
            in
            match outcome with
            | N_unsat ->
              insert Smt.Cache.Unsat;
              if Obs.Sink.active () then
                Obs.Sink.emit
                  (Obs.Event.Negation { iteration = !iter; index; sat = false });
              incr barren
            | N_unknown ->
              if Obs.Sink.active () then
                Obs.Sink.emit
                  (Obs.Event.Negation { iteration = !iter; index; sat = false });
              incr barren
            | N_sat { fresh; next; run } ->
              insert (Smt.Cache.Sat fresh);
              if Obs.Sink.active () then
                Obs.Sink.emit
                  (Obs.Event.Negation { iteration = !iter; index; sat = true });
              barren := 0;
              merge_exec next ~solve_s run))
      results;
    (* schedule the next round *)
    work :=
      (if not (budget_left ()) then []
       else begin
         let forced_items = List.rev_map (fun p -> W_fresh p) !forced in
         let restart_test () =
           let nprocs, focus = !last_np in
           W_fresh (fresh_pending ~nprocs ~focus ())
         in
         if !stagnated_round then
           (* fresh search tree: redo the testing from random inputs *)
           forced_items @ [ restart_test () ]
         else if !barren >= s.Driver.max_solve_attempts then begin
           emit_restart ~iteration:!iter "exhausted";
           barren := 0;
           forced_items @ [ restart_test () ]
         end
         else
           match Strategy.next_batch !strategy ~coverage ~max:settings.batch with
           | [] ->
             emit_restart ~iteration:!iter "exhausted";
             barren := 0;
             forced_items @ [ restart_test () ]
           | cands -> forced_items @ List.map (fun c -> W_negate c) cands
       end)
  done;
  let reachable =
    Obs.Prof.time "report" (fun () ->
        Branchinfo.reachable_branches info ~encountered:(Coverage.encountered coverage))
  in
  let covered = Coverage.covered_branches coverage in
  Obs.Sink.emit
    (Obs.Event.Campaign_end
       {
         iterations_run = !iter;
         covered;
         reachable;
         bugs = List.length !bugs;
         wall_s = elapsed ();
       });
  {
    summary =
      {
        Driver.coverage;
        stats = List.rev !stats;
        bugs = List.rev !bugs;
        total_branches = info.Branchinfo.total_branches;
        reachable_branches = reachable;
        covered_branches = covered;
        coverage_rate =
          (if reachable = 0 then 0.0 else float_of_int covered /. float_of_int reachable);
        iterations_run = !iter;
        wall_time = elapsed ();
        max_constraint_set = !max_cs;
        derived_bound = !derived_bound;
      };
    rounds = !rounds;
    executed = !executed;
    speculated = !speculated;
    solver_calls = !solver_calls;
    cache = Option.map Smt.Cache.stats cache;
  }

(* Canonical, timing-free rendering of a campaign outcome. Two runs of
   the same campaign — at any worker count — must produce byte-equal
   reports; the determinism test and the CI diff step compare exactly
   this string. *)
let coverage_report (r : result) =
  let b = Buffer.create 512 in
  let s = r.summary in
  Buffer.add_string b (Printf.sprintf "iterations %d\n" s.Driver.iterations_run);
  Buffer.add_string b
    (Printf.sprintf "covered %d reachable %d total %d\n" s.Driver.covered_branches
       s.Driver.reachable_branches s.Driver.total_branches);
  (match s.Driver.derived_bound with
  | Some bound -> Buffer.add_string b (Printf.sprintf "bound %d\n" bound)
  | None -> Buffer.add_string b "bound none\n");
  Buffer.add_string b (Coverage.report s.Driver.coverage);
  Buffer.add_string b (Printf.sprintf "bugs %d:" (List.length s.Driver.bugs));
  List.iter
    (fun bug ->
      Buffer.add_string b
        (Printf.sprintf " %d:%s" bug.Driver.bug_iteration (Driver.bug_key bug)))
    s.Driver.bugs;
  Buffer.add_char b '\n';
  Buffer.contents b
