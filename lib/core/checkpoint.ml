(* Crash-safe campaign snapshots.

   Layout of campaign.ckpt:

     COMPI-CKPT <version>\n
     <md5-hex-of-payload> <payload-length>\n
     <payload: Marshal of snapshot>

   The payload is one Marshal call over the whole snapshot record, which
   preserves physical sharing between the strategy's pending candidates
   and the work-list tail — Strategy.next_batch deduplicates by record
   identity, so losing that sharing would change the trajectory after a
   resume. Marshal rejects closures, which doubles as a guard against
   accidentally snapshotting something callback-bearing.

   Durability: write to a temp file in the same directory, then rename.
   POSIX rename is atomic within a filesystem, so a SIGKILL leaves
   either the old snapshot or the new one. The header digest catches the
   remaining failure modes (torn writes on non-POSIX filesystems,
   bit rot, hand-edited files): load never trusts a payload it cannot
   re-hash to the header's MD5. *)

type work =
  | W_fresh of Driver.pending
  | W_negate of Concolic.Strategy.candidate

type snapshot = {
  ck_fingerprint : (string * string) list;
  ck_iter : int;
  ck_rounds : int;
  ck_executed : int;
  ck_speculated : int;
  ck_solver_calls : int;
  ck_max_cs : int;
  ck_best_covered : int;
  ck_last_improvement : int;
  ck_barren : int;
  ck_last_np : int * int;
  ck_derived_bound : int option;
  ck_rng : Random.State.t;
  ck_strategy : Concolic.Strategy.t;
  ck_coverage : Concolic.Coverage.t;
  ck_cache : Smt.Cache.t option;
  ck_stats : Driver.iter_stat list;
  ck_bugs : Driver.bug list;
  ck_forced : Driver.pending list;
  ck_stagnated_round : bool;
  ck_schedules : Driver.pending list;
  ck_work : work list;
}

(* version 2: [Driver.pending] gained [p_origin] and [Execution.t]
   gained [exec_id] — v1 snapshots marshal a different layout.
   version 3: [Smt.Cache.t] became a sharded table (array of shard
   records instead of one table/queue pair), so [ck_cache] marshals a
   different layout than v2.
   version 4: schedule-space exploration — [Driver.pending] gained
   [p_schedule], [Execution.t] gained [exec_schedule], and the snapshot
   gained [ck_schedules] (enumerated-but-unexecuted schedule forks) *)
let version = 4
let magic = "COMPI-CKPT"
let file ~dir = Filename.concat dir "campaign.ckpt"
let corpus_file ~dir = Filename.concat dir "corpus.txt"

type error =
  | No_checkpoint of string
  | Bad_magic of string
  | Version_mismatch of { found : int; expected : int }
  | Truncated of { expected : int; actual : int }
  | Checksum_mismatch
  | Corrupt of string
  | Settings_mismatch of (string * string * string) list

exception Load_error of error

let error_to_string = function
  | No_checkpoint dir -> Printf.sprintf "no checkpoint found under %s" dir
  | Bad_magic head ->
    Printf.sprintf "not a COMPI checkpoint (file starts with %S)" head
  | Version_mismatch { found; expected } ->
    Printf.sprintf
      "checkpoint format version %d, this build reads version %d — re-run the \
       original campaign to produce a fresh checkpoint"
      found expected
  | Truncated { expected; actual } ->
    Printf.sprintf "checkpoint truncated: header declares %d payload bytes, found %d"
      expected actual
  | Checksum_mismatch -> "checkpoint payload does not match its checksum"
  | Corrupt detail -> Printf.sprintf "checkpoint unreadable: %s" detail
  | Settings_mismatch ms ->
    "checkpoint was written under different settings:"
    ^ String.concat ""
        (List.map
           (fun (key, stored, current) ->
             Printf.sprintf "\n  %s: checkpoint has %s, this run has %s" key stored
               current)
           ms)

(* --- settings fingerprint ------------------------------------------ *)

let fingerprint ~label ~batch ~solver_cache ~cache_capacity (s : Driver.settings) =
  let b = string_of_bool in
  let i = string_of_int in
  let opt_i = function Some n -> string_of_int n | None -> "none" in
  [
    ("target", label);
    ("seed", i s.Driver.seed);
    ("strategy", Driver.strategy_choice_name s.Driver.strategy);
    ("dfs_phase_iters", i s.Driver.dfs_phase_iters);
    ("depth_bound", opt_i s.Driver.depth_bound);
    ("initial_nprocs", i s.Driver.initial_nprocs);
    ("initial_focus", i s.Driver.initial_focus);
    ("nprocs_cap", i s.Driver.nprocs_cap);
    ("reduce", b s.Driver.reduce);
    ("two_way", b s.Driver.two_way);
    ("framework", b s.Driver.framework);
    ("step_limit", i s.Driver.step_limit);
    ( "cap_overrides",
      String.concat ","
        (List.map (fun (k, v) -> Printf.sprintf "%s=%d" k v) s.Driver.cap_overrides) );
    ("max_procs", i s.Driver.max_procs);
    ("solver_budget", i s.Driver.solver_budget);
    ("max_solve_attempts", i s.Driver.max_solve_attempts);
    ("random_lo", i s.Driver.random_lo);
    ("random_hi", i s.Driver.random_hi);
    ("stagnation_restart", opt_i s.Driver.stagnation_restart);
    ("resolve_conflicts", b s.Driver.resolve_conflicts);
    ("batch", i batch);
    ("solver_cache", b solver_cache);
    ("cache_capacity", i cache_capacity);
    ("schedules", b s.Driver.schedules);
    ("schedule_depth", i s.Driver.schedule_depth);
  ]

let mismatches ~stored ~current =
  let absent = "<absent>" in
  let value k l = Option.value (List.assoc_opt k l) ~default:absent in
  let keys =
    List.sort_uniq String.compare (List.map fst stored @ List.map fst current)
  in
  List.filter_map
    (fun k ->
      let s = value k stored and c = value k current in
      if s = c then None else Some (k, s, c))
    keys

(* --- write --------------------------------------------------------- *)

let rec mkdir_p dir =
  if dir <> "" && dir <> "/" && dir <> "." && not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

(* Commit [content] at [path] via a same-directory temp file + rename. *)
let write_atomic ~path content =
  let tmp =
    Printf.sprintf "%s.tmp.%d" path (Unix.getpid ())
  in
  let oc = open_out_bin tmp in
  (try
     output_string oc content;
     close_out oc
   with e ->
     close_out_noerr oc;
     (try Sys.remove tmp with Sys_error _ -> ());
     raise e);
  Sys.rename tmp path

let save ~dir ~target snap =
  mkdir_p dir;
  let payload = Marshal.to_string snap [] in
  let header =
    Printf.sprintf "%s %d\n%s %d\n" magic version
      (Digest.to_hex (Digest.string payload))
      (String.length payload)
  in
  write_atomic ~path:(file ~dir) (header ^ payload);
  let corpus =
    let buf = Buffer.create 256 in
    List.iteri
      (fun k bug ->
        if k > 0 then Buffer.add_char buf '\n';
        Buffer.add_string buf (Testcase.to_string (Testcase.of_bug ~target bug)))
      (List.rev snap.ck_bugs);
    Buffer.contents buf
  in
  write_atomic ~path:(corpus_file ~dir) corpus;
  String.length payload

(* --- read ---------------------------------------------------------- *)

let load ~dir =
  let path = file ~dir in
  match In_channel.with_open_bin path In_channel.input_all with
  | exception Sys_error _ -> Error (No_checkpoint dir)
  | raw -> (
    let line_end from =
      match String.index_from_opt raw from '\n' with
      | Some k -> Ok k
      | None ->
        (* no complete header: junk, or a file cut before the payload *)
        if String.length raw >= String.length magic
           && String.sub raw 0 (String.length magic) = magic
        then Error (Corrupt "incomplete header")
        else Error (Bad_magic (String.sub raw 0 (min 16 (String.length raw))))
    in
    let ( let* ) = Result.bind in
    let* e1 = line_end 0 in
    let l1 = String.sub raw 0 e1 in
    let* found_version =
      match String.split_on_char ' ' l1 with
      | [ m; v ] when m = magic -> (
        match int_of_string_opt v with
        | Some n -> Ok n
        | None -> Error (Corrupt (Printf.sprintf "bad version field %S" v)))
      | _ -> Error (Bad_magic (String.sub l1 0 (min 16 (String.length l1))))
    in
    if found_version <> version then
      Error (Version_mismatch { found = found_version; expected = version })
    else
      let* e2 = line_end (e1 + 1) in
      let l2 = String.sub raw (e1 + 1) (e2 - e1 - 1) in
      let* digest, declared =
        match String.split_on_char ' ' l2 with
        | [ d; n ] -> (
          match int_of_string_opt n with
          | Some len when String.length d = 32 -> Ok (d, len)
          | Some _ | None -> Error (Corrupt (Printf.sprintf "bad digest line %S" l2)))
        | _ -> Error (Corrupt (Printf.sprintf "bad digest line %S" l2))
      in
      let actual = String.length raw - e2 - 1 in
      if actual <> declared then Error (Truncated { expected = declared; actual })
      else
        let payload = String.sub raw (e2 + 1) declared in
        if Digest.to_hex (Digest.string payload) <> digest then Error Checksum_mismatch
        else
          match (Marshal.from_string payload 0 : snapshot) with
          | snap -> Ok snap
          | exception (Failure msg | Invalid_argument msg) -> Error (Corrupt msg))
