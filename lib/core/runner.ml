open Minic
open Concolic

(* How each simulated process executes the target: the closure-compiled
   program (default; compiled once per campaign via [prepare]) or the
   tree-walking interpreter (the differential oracle). *)
type exec_mode = Exec_interp | Exec_compiled

let exec_mode_name = function Exec_interp -> "interp" | Exec_compiled -> "compiled"

let exec_mode_of_name = function
  | "interp" -> Some Exec_interp
  | "compiled" -> Some Exec_compiled
  | _ -> None

type config = {
  info : Branchinfo.t;
  inputs : (string * int) list;
  nprocs : int;
  focus : int;
  reduce : bool;
  two_way : bool;
  mark_mpi_sem : bool;
  record_all : bool;
  nprocs_cap : int;
  cap_overrides : (string * int) list;
  step_limit : int;
  max_procs : int;
  symbolic : bool;
      (* false: every process runs light instrumentation — pure random
         testing needs no symbolic execution at all *)
  compiled : Compile.t option;
      (* closure-compiled program shared read-only across runs (and
         worker domains); None runs the interpreter. Built once per
         campaign by [prepare]. *)
  schedule : Mpisim.Schedule.prescription option;
      (* Some p: run in schedule mode — wildcard receives are served at
         quiescence under prescription [p] and every decision is
         recorded. None: legacy eager matching. *)
  on_event : Mpisim.Trace.event -> unit;
}

let default_config ~info =
  {
    info;
    inputs = [];
    nprocs = 8;
    focus = 0;
    reduce = true;
    two_way = true;
    mark_mpi_sem = true;
    record_all = true;
    nprocs_cap = 16;
    cap_overrides = [];
    step_limit = 2_000_000;
    max_procs = Mpisim.Scheduler.default_max_procs;
    symbolic = true;
    compiled = None;
    schedule = None;
    on_event = (fun _ -> ());
  }

(* Compile the target once, under the "compile" profile phase, so
   `compi-cli profile` attributes compile cost separately from run
   cost. Returns the value to put in [config.compiled]. *)
let prepare ?(target = "") mode (info : Branchinfo.t) =
  match mode with
  | Exec_interp -> None
  | Exec_compiled ->
    let t0 = Unix.gettimeofday () in
    let cp =
      Obs.Prof.time "compile" (fun () -> Compile.compile info.Branchinfo.program)
    in
    let time_s = Unix.gettimeofday () -. t0 in
    if Obs.Sink.active () then
      Obs.Sink.emit
        (Obs.Event.Compile
           {
             target;
             funcs = Compile.funcs cp;
             conds = Compile.conds cp;
             slots = Compile.slots cp;
             time_s;
           });
    Some cp

type result = {
  execution : Execution.t;
  coverage : Coverage.t;
  outcomes : (unit, Fault.t) Stdlib.result array;
  deadlocked : int list;
  leaked_messages : int;
  focus_tail : (int * bool) list;
  focus_log_bytes : int;
  nonfocus_log_bytes : int;
  mapping : (int * int array) list;
  constraint_set_size : int;
  wall_time : float;
  choices : Mpisim.Schedule.choice list;
}

let faults r =
  let acc = ref [] in
  Array.iteri
    (fun rank outcome ->
      match outcome with Ok () -> () | Error f -> acc := (rank, f) :: !acc)
    r.outcomes;
  List.rev !acc

let input_value config (d : Ast.input_decl) =
  match List.assoc_opt d.Ast.iname config.inputs with
  | Some v -> v
  | None -> d.Ast.default

let effective_cap config (d : Ast.input_decl) =
  match List.assoc_opt d.Ast.iname config.cap_overrides with
  | Some cap -> Some cap
  | None -> d.Ast.cap

(* Heavy-instrumentation hooks for a process: symbolic shadow, automatic
   marking, constraint logging. Non-focus heavy processes (one-way mode)
   use the same machinery with their results discarded. *)
let heavy_hooks config ~mpi ~symtab ~log ~cover =
  {
    Interp.mode = Interp.Heavy;
    input_value = (fun d -> input_value config d);
    on_input =
      (fun d concrete ->
        let var =
          Symtab.fresh_input symtab ~name:d.Ast.iname ?lo:d.Ast.lo
            ?hi:(effective_cap config d) ~concrete ()
        in
        Some (Smt.Linexp.var var));
    on_mpi_sem =
      (fun kind concrete ->
        if not config.mark_mpi_sem then None
        else
          let mk k ?comm_size () =
            Some (Smt.Linexp.var (Symtab.fresh_sem symtab ~kind:k ?comm_size ~concrete ()))
          in
          match kind with
          | Interp.Rank_world -> mk Symtab.Rank_world ()
          | Interp.Size_world -> mk Symtab.Size_world ()
          | Interp.Rank_comm comm ->
            (* observe the communicator's size for the y_i < s_i
               constraint: ask the scheduler from inside the fiber *)
            let comm_size =
              match mpi (Mpi_iface.Size comm) with
              | Mpi_iface.Rint s -> Some s
              | Mpi_iface.Runit | Mpi_iface.Rvalue _ | Mpi_iface.Rvalues _
              | Mpi_iface.Rnone ->
                None
            in
            mk (Symtab.Rank_comm comm) ?comm_size ()
          | Interp.Size_comm comm -> mk (Symtab.Size_comm comm) ());
    on_branch =
      (fun ~id ~taken ~constr ->
        Pathlog.record log ~cond_id:id ~taken ~constr;
        Coverage.add_branch cover (Branchinfo.branch_of_cond id taken));
    on_func_enter = (fun fn -> Coverage.add_func cover fn);
    mpi;
    step_limit = config.step_limit;
  }

(* Light instrumentation: branch ids and functions only. *)
let light_hooks config ~mpi ~cover =
  {
    Interp.mode = Interp.Light;
    input_value = (fun d -> input_value config d);
    on_input = (fun _ _ -> None);
    on_mpi_sem = (fun _ _ -> None);
    on_branch =
      (fun ~id ~taken ~constr:_ ->
        Coverage.add_branch cover (Branchinfo.branch_of_cond id taken));
    on_func_enter = (fun fn -> Coverage.add_func cover fn);
    mpi;
    step_limit = config.step_limit;
  }

let m_runs = Obs.Metrics.counter "runner.runs"
let m_cs_size = Obs.Metrics.histogram "runner.constraint_set"
let m_log_bytes = Obs.Metrics.histogram "runner.focus_log_bytes"

let run_raw config =
  let program = config.info.Branchinfo.program in
  let exec =
    match config.compiled with
    | Some cp -> fun hooks -> Compile.run cp hooks
    | None -> fun hooks -> Interp.run hooks program
  in
  let focus = config.focus in
  let symtab = Symtab.create () in
  let focus_log = Pathlog.create ~reduce:config.reduce in
  let covers = Array.init config.nprocs (fun _ -> Coverage.create ()) in
  (* per-process heavy logs for the one-way cost model *)
  let heavy_logs = Array.make config.nprocs None in
  let t0 = Unix.gettimeofday () in
  match
    Mpisim.Scheduler.run ~max_procs:config.max_procs ~on_event:config.on_event
      ?schedule:config.schedule ~nprocs:config.nprocs (fun ~rank ~mpi ->
        let hooks =
          if not config.symbolic then light_hooks config ~mpi ~cover:covers.(rank)
          else if rank = focus then
            heavy_hooks config ~mpi ~symtab ~log:focus_log ~cover:covers.(rank)
          else if config.two_way then light_hooks config ~mpi ~cover:covers.(rank)
          else begin
            (* one-way: everyone pays for symbolic execution *)
            let shadow_tab = Symtab.create () in
            let log = Pathlog.create ~reduce:config.reduce in
            heavy_logs.(rank) <- Some log;
            heavy_hooks
              { config with mark_mpi_sem = false }
              ~mpi ~symtab:shadow_tab ~log ~cover:covers.(rank)
          end
        in
        exec hooks)
  with
  | exception Mpisim.Scheduler.Platform_limit n -> Error (`Platform_limit n)
  | sched ->
    (* CREST's per-iteration log round trip: the focus writes its full
       symbolic log and the search reads it back. This is real work
       proportional to the constraint-set size — the cost that
       constraint-set reduction exists to shrink (paper section IV-C).
       One-way runs pay it once per heavy process. *)
    let focus_serialized = Pathlog.serialize focus_log in
    let _ = Pathlog.parse_count focus_serialized in
    Array.iter
      (function
        | Some log -> ignore (Pathlog.parse_count (Pathlog.serialize log))
        | None -> ())
      heavy_logs;
    let wall_time = Unix.gettimeofday () -. t0 in
    let coverage = Coverage.create () in
    if config.record_all then
      Array.iter (fun c -> Coverage.absorb ~into:coverage c) covers
    else Coverage.absorb ~into:coverage covers.(focus);
    let mapping =
      Mpisim.Rankmap.mapping_table sched.Mpisim.Scheduler.registry ~global:focus
    in
    let execution =
      {
        Execution.constraints = Pathlog.constraints focus_log;
        symtab;
        model = Symtab.model symtab;
        domains = Symtab.domains symtab;
        extra = Mpi_sem.constraints ~nprocs_cap:config.nprocs_cap symtab;
        nprocs = config.nprocs;
        focus;
        mapping;
        exec_id = -1;
        exec_schedule = Option.value config.schedule ~default:[];
      }
    in
    let nonfocus_log_bytes =
      if config.nprocs <= 1 then 0
      else begin
        let total = ref 0 in
        for rank = 0 to config.nprocs - 1 do
          if rank <> focus then
            total :=
              !total
              +
              match heavy_logs.(rank) with
              | Some log -> Pathlog.heavy_bytes log
              | None ->
                (* light processes ship their covered-branch list *)
                64 + (8 * Coverage.covered_branches covers.(rank))
        done;
        !total / (config.nprocs - 1)
      end
    in
    Obs.Metrics.observe_int m_cs_size (Pathlog.constraint_count focus_log);
    Obs.Metrics.observe_int m_log_bytes (String.length focus_serialized);
    Ok
      {
        execution;
        coverage;
        outcomes = sched.Mpisim.Scheduler.outcomes;
        deadlocked = sched.Mpisim.Scheduler.deadlocked;
        leaked_messages = List.length sched.Mpisim.Scheduler.leaked;
        focus_tail = Pathlog.tail focus_log;
        focus_log_bytes = String.length focus_serialized;
        nonfocus_log_bytes;
        mapping;
        constraint_set_size = Pathlog.constraint_count focus_log;
        wall_time;
        choices = sched.Mpisim.Scheduler.choices;
      }

let run config =
  Obs.Metrics.incr m_runs;
  (* Prof.time also records an "exec" timeline span — on campaign worker
     domains too — so every concolic execution shows on the profile
     Gantt without further instrumentation here. *)
  Obs.Prof.time "exec" (fun () -> run_raw config)
