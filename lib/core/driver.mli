(** The COMPI campaign driver: iterative concolic testing.

    Implements the paper's testing phase (section II-A): run the
    instrumented program, negate one path constraint according to the
    search strategy, solve the updated set incrementally, derive the
    next test's inputs — including the number of processes and the focus
    process from the MPI-semantics variables — and repeat until the
    iteration or time budget is exhausted.

    The default strategy is the paper's two-phase scheme (section II-B):
    pure DFS for the first [dfs_phase_iters] iterations to observe the
    maximal constraint-set size, then BoundedDFS with a bound slightly
    above the observed maximum.

    Ablation switches reproduce the paper's baselines: [reduce] (Table
    V), [two_way] (Table IV), [framework] (No_Fwk of Table VI),
    [strategy] (Figure 4), [cap_overrides] (Figures 6 and 8). *)

type strategy_choice =
  | Two_phase_dfs
  | Fixed_strategy of Concolic.Strategy.kind
  | Cfg_strategy  (** CFG-directed search built from the target's CFG *)

type settings = {
  iterations : int;
  time_budget : float option;  (** seconds of wall clock, whichever first *)
  dfs_phase_iters : int;
  depth_bound : int option;  (** [None]: derive from the DFS phase *)
  strategy : strategy_choice;
  initial_nprocs : int;
  initial_focus : int;
  nprocs_cap : int;
  reduce : bool;
  two_way : bool;
  framework : bool;
  seed : int;
  step_limit : int;
  cap_overrides : (string * int) list;
  max_procs : int;
  solver_budget : int;
  max_solve_attempts : int;  (** failed negations per iteration before a restart *)
  random_lo : int;  (** random-value range for unmarked bounds *)
  random_hi : int;
  stagnation_restart : int option;
      (** restart with fresh random inputs and a fresh search tree after
          this many iterations without new coverage — the paper's
          "we just redo the testing" escape hatch (section VI) *)
  resolve_conflicts : bool;
      (** ablation hook: disable the section III-C conflict resolution so
          the focus never follows derived rank values *)
  exec_mode : Runner.exec_mode;
      (** [Exec_compiled] (default): compile the target to closures once
          per campaign; [Exec_interp] keeps the tree-walking interpreter
          as the differential oracle *)
  schedules : bool;
      (** explore the schedule dimension: runs execute in schedule mode
          (wildcard receives served at quiescence under a prescription)
          and the campaign enumerates POR-pruned alternative match
          orders alongside input negations. Campaign-only; the
          sequential driver ignores it. *)
  schedule_depth : int;
      (** only the first [schedule_depth] wildcard choice points of a
          run may fork alternative schedules — the schedule-space
          analogue of the DFS depth bound *)
}

val default_settings : settings

val strategy_choice_name : strategy_choice -> string
(** Stable textual name (including any bound parameter) — part of the
    {!Checkpoint} settings fingerprint, so renaming a strategy
    invalidates old checkpoints rather than silently mis-resuming. *)

type bug = {
  bug_iteration : int;
  bug_rank : int;
  bug_fault : Minic.Fault.t;
  bug_inputs : (string * int) list;
  bug_nprocs : int;
  bug_focus : int;
  bug_context : (int * bool) list;
      (** the focus's last branch decisions (conditional id, direction)
          in the faulting run — failure context for triage *)
}

val bug_key : bug -> string
(** Deduplication key: distinct keys are distinct defects. *)

type iter_stat = {
  iteration : int;
  nprocs : int;
  focus : int;
  constraint_set_size : int;
  covered_after : int;
  reachable_after : int;
  faults_seen : int;
  restarted : bool;
  exec_time : float;
  solve_time : float;
}

type result = {
  coverage : Concolic.Coverage.t;
  stats : iter_stat list;  (** chronological *)
  bugs : bug list;  (** chronological, not deduplicated *)
  total_branches : int;
  reachable_branches : int;
  covered_branches : int;
  coverage_rate : float;  (** covered / reachable *)
  iterations_run : int;
  wall_time : float;
  max_constraint_set : int;
  derived_bound : int option;
}

val distinct_bugs : result -> bug list
(** First occurrence of each {!bug_key}. *)

type origin =
  | O_seed  (** fresh random inputs at campaign start *)
  | O_restart  (** fresh random inputs after exhaustion/stagnation/limit *)
  | O_negated of { parent : int; branch : int; index : int; cached : bool }
      (** derived by negating [parent]'s path constraint at [index],
          targeting [branch]; [cached] when the verdict was a solver-cache
          replay *)
  | O_schedule of { parent : int; point : int; source : int }
      (** schedule fork: same inputs as test [parent], but wildcard
          choice point [point] delivers from local source [source]
          instead — the (input, schedule) pair's second coordinate *)
(** Provenance of a pending test — threaded from the negation that
    produced it to the merge point that runs it, then emitted as a
    [lineage_test] event. *)

type pending = {
  p_inputs : (string * int) list;
  p_nprocs : int;
  p_focus : int;
  p_depth : int;  (** depth to report to the strategy after the run *)
  p_origin : origin;
  p_schedule : int list;
      (** wildcard-match prescription to run under ([[]]: default
          arrival order at every choice point) *)
}
(** What the next test should run with — the unit of work the parallel
    campaign engine ({!Campaign}) queues and executes. *)

val emit_lineage_test : test:int -> origin -> unit
(** Emit the [lineage_test] event for a merged test case (no-op without
    an active sink). Shared with {!Campaign}. *)

val emit_lineage_negation :
  cand:Concolic.Strategy.candidate -> outcome:Obs.Event.solver_outcome -> cached:bool -> unit
(** Emit the [lineage_negation] event for one negation attempt against
    [cand] (no-op without an active sink). Shared with {!Campaign}. *)

val make_strategy : settings -> Minic.Branchinfo.t -> Concolic.Strategy.t
(** The strategy the settings select (phase one of the two-phase scheme
    when [strategy = Two_phase_dfs]). Shared with {!Campaign}. *)

val run : ?settings:settings -> ?label:string -> Minic.Branchinfo.t -> result
(** [label] names the target in the telemetry stream (the
    [campaign_start] event); it does not affect the campaign. When an
    {!Obs.Sink} is installed the driver emits the full event vocabulary
    (campaign/iteration boundaries, negation attempts, restarts, faults,
    coverage deltas) and always feeds the [driver.*] metrics and the
    [exec]/[solve]/[strategy]/[report] phase timers. *)

val random_inputs :
  Random.State.t -> settings -> Minic.Ast.program -> (string * int) list
(** The random input generator (also used by the Random baseline):
    uniform within each marked input's capped range. *)
