(** Parallel campaign engine: a deterministic pipeline of concurrent
    test execution with an in-order streaming merge.

    Restructures the sequential {!Driver} loop into pipelined rounds.
    Each round the strategy yields a batch of negation candidates (plus
    any queued restart tests); every item becomes one fused task —
    solve the negation if needed, derive the next test, execute it —
    published to a {!Taskpool} of persistent worker domains. The main
    domain consumes results {e in work-list order as they stream in},
    merging item k while the pool is still working on items k+1, k+2, …
    — there is no round barrier. Iteration ids, coverage, bugs,
    strategy observations and restart decisions are all assigned at the
    merge, so the campaign trajectory is a pure function of the
    settings, not of the worker count or completion order. [--jobs 4]
    and [--jobs 1] produce byte-identical {!coverage_report}s (under an
    iteration budget; a wall-clock budget cuts off at a
    machine-dependent point).

    A {!Smt.Cache} in front of the solver lives on the main domain:
    probed when a candidate is dispatched, verdict inserted when it is
    merged — also deterministic points. Negations are solved in
    canonical mode (see {!Smt.Solver.solve_incremental}) whether the
    cache is on or off, so a verdict is a pure function of its cache
    key and a hit replays exactly what a live solve would return:
    [--solver-cache] changes solver work, never the trajectory.
    Unknown (budget-exhausted) solver outcomes are never cached.

    The per-iteration semantics differ from the sequential driver in
    one deliberate way: the driver charges an iteration's [solve_time]
    to deriving the {e next} test, while here each merged execution
    carries the solve that {e produced it} (0 for fresh random tests).
    See DESIGN.md, "Parallel campaigns".

    Campaigns are resumable: with [checkpoint] set, the engine writes a
    crash-safe {!Checkpoint.snapshot} every [checkpoint_every]
    iterations, on SIGINT/SIGTERM and at exit, always at a merge
    position — so an interrupted campaign resumed with [resume] (and a
    larger budget) continues on exactly the trajectory the
    uninterrupted run would have taken. See DESIGN.md, "Checkpoint and
    resume". *)

type settings = {
  base : Driver.settings;
  jobs : int;  (** worker domains (main participates); clamped to >= 1 *)
  batch : int;
      (** negation candidates drawn per round. A setting, {e not}
          derived from [jobs] — changing [jobs] must not change the
          trajectory. Default 4. *)
  solver_cache : bool;
  cache_capacity : int;
  checkpoint : string option;
      (** snapshot directory; [None] (the default) disables
          checkpointing entirely *)
  checkpoint_every : int;
      (** periodic snapshot cadence in merged iterations (default 50);
          [0] keeps only the final at-exit snapshot *)
  resume : bool;
      (** load the snapshot under [checkpoint] before running; raises
          {!Checkpoint.Load_error} if it is missing, damaged, from
          another format version, or fingerprint-incompatible *)
  status_file : string option;
      (** publish an {!Obs.Status} snapshot (atomic temp-file + rename)
          to this path at every merge position and once more, with
          [finished = true], when the campaign ends; [None] (the
          default) disables live status entirely *)
  ledger : string option;
      (** append an {!Obs.Ledger} summary record to this JSONL store
          when the campaign ends; [None] (the default) keeps no
          longitudinal record *)
}

val default_settings : settings
(** [Driver.default_settings], 1 job, batch 4, cache on at
    {!Smt.Cache.default_capacity}, checkpointing off
    ([checkpoint_every = 50] once a directory is supplied), no status
    file, no ledger. *)

type result = {
  summary : Driver.result;  (** same shape the sequential driver reports *)
  rounds : int;
  executed : int;  (** test executions merged into the campaign *)
  speculated : int;
      (** executions that completed but fell past the iteration budget
          and were dropped at the merge *)
  solver_calls : int;
      (** live solves (cache misses) whose verdicts merged into the
          trajectory — counted at merge, so the stat is invariant
          across [jobs] for a given merged result; solves discarded at
          the budget edge are only visible in [speculated] *)
  cache : Smt.Cache.stats option;  (** [None] when the cache is off *)
  interrupted : bool;
      (** a SIGINT/SIGTERM stopped the campaign before its budget; the
          final checkpoint (when enabled) holds the cut point *)
  checkpoints_written : int;  (** snapshots committed this run *)
  queue_depth : int;
      (** peak pipeline depth: the most tasks ever claimed by the pool
          but not yet merged, across all rounds — 0 when nothing ran *)
  worker_busy_s : float;
      (** cumulative wall time spent inside tasks across all domains;
          [worker_busy_s / (wall_time * pool size)] is the pool
          utilization bench reports quote *)
}

val run : ?settings:settings -> ?label:string -> Minic.Branchinfo.t -> result
(** Emits the driver's full event vocabulary plus the worker, cache and
    checkpoint events, and feeds the same [driver.*] metrics. Raises
    {!Checkpoint.Load_error} when [resume] is set and the checkpoint
    cannot be used (never partially applies one). *)

val coverage_report : result -> string
(** Canonical timing-free rendering — iteration count, coverage
    numbers, derived bound, sorted branch/function lists, chronological
    bug keys. The determinism guarantee is stated over this string:
    equal settings imply byte-equal reports at any [jobs], and a
    kill-and-resume sequence reproduces the uninterrupted run's report
    byte for byte. *)
