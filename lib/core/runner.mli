(** Execute one test: the program under N simulated processes with
    two-way instrumentation.

    The focus process runs the heavily-instrumented build (full symbolic
    shadow, constraint logging, automatic rw/rc/sw marking); every other
    process runs the light build (branch recording only) — unless
    [two_way] is off, in which case non-focus processes also pay the
    heavy instrumentation cost, reproducing the paper's one-way baseline
    of Table IV. Branch coverage is recorded across all processes
    ("one focus and all recorders"). *)

type exec_mode = Exec_interp | Exec_compiled
(** How each simulated process executes the target: the tree-walking
    interpreter (the differential oracle) or the closure-compiled
    executor (default; see [lib/minic/compile.ml] and
    docs/INTERNALS.md). *)

val exec_mode_name : exec_mode -> string
(** ["interp"] / ["compiled"] — the [--exec-mode] vocabulary. *)

val exec_mode_of_name : string -> exec_mode option

type config = {
  info : Minic.Branchinfo.t;  (** instrumented program *)
  inputs : (string * int) list;  (** marked program-input values *)
  nprocs : int;
  focus : int;
  reduce : bool;  (** constraint-set reduction, section IV-C *)
  two_way : bool;  (** two-way instrumentation, section IV-B *)
  mark_mpi_sem : bool;  (** automatic rw/rc/sw marking (off = No_Fwk) *)
  record_all : bool;  (** all-recorders (off = focus coverage only) *)
  nprocs_cap : int;  (** cap fed into the inherent sw constraint *)
  cap_overrides : (string * int) list;  (** per-input cap replacements *)
  step_limit : int;
  max_procs : int;  (** hard platform limit *)
  symbolic : bool;
      (** [false]: every process runs the light build — used by the pure
          random-testing baseline, which needs no symbolic execution *)
  compiled : Minic.Compile.t option;
      (** closure-compiled program, shared read-only across runs and
          worker domains; [None] executes through the interpreter.
          Build it once per campaign with {!prepare}. *)
  schedule : Mpisim.Schedule.prescription option;
      (** [Some p]: run in schedule mode — wildcard receives are served
          at quiescence under prescription [p] and every match decision
          is recorded in {!result.choices}. [None] (default): legacy
          eager matching, byte-identical to previous releases. *)
  on_event : Mpisim.Trace.event -> unit;
      (** communication-trace sink (default: ignore) *)
}

val default_config : info:Minic.Branchinfo.t -> config
(** 8 processes, focus 0, reduction and two-way on, framework on,
    process cap 16 — the paper's defaults. [compiled] is [None]; cheap
    one-off runs (unit tests) interpret, campaigns call {!prepare}. *)

val prepare : ?target:string -> exec_mode -> Minic.Branchinfo.t -> Minic.Compile.t option
(** Compile the target once for a campaign (the [Exec_compiled] mode);
    [Exec_interp] returns [None]. Compilation is timed under the
    ["compile"] {!Obs.Prof} phase and emits an {!Obs.Event.Compile}
    event, so compile cost is attributed separately from run cost. *)

type result = {
  execution : Concolic.Execution.t;  (** the focus's concolic record *)
  coverage : Concolic.Coverage.t;  (** union over recording processes *)
  outcomes : (unit, Minic.Fault.t) Stdlib.result array;
  deadlocked : int list;
  leaked_messages : int;  (** sends no receive consumed (message leaks) *)
  focus_tail : (int * bool) list;
      (** the focus's last branch decisions — failure context *)
  focus_log_bytes : int;
  nonfocus_log_bytes : int;  (** average per non-focus process *)
  mapping : (int * int array) list;  (** focus's Table II *)
  constraint_set_size : int;
  wall_time : float;
  choices : Mpisim.Schedule.choice list;
      (** wildcard match decisions in service order; empty unless the
          run executed in schedule mode *)
}

val faults : result -> (int * Minic.Fault.t) list
(** [(rank, fault)] for every process that faulted. *)

val run : config -> (result, [ `Platform_limit of int ]) Stdlib.result
