(** Crash-safe campaign checkpoints: versioned on-disk snapshots of
    everything a {!Campaign} needs to continue after process death.

    A snapshot captures the campaign at a {e merge position} — the main
    domain has merged some prefix of the current round's results and the
    rest of the round is recorded as un-merged work items. Because every
    test execution is a pure function of its {!Driver.pending} (and
    every canonical solve a pure function of its cache key), a resumed
    campaign re-dispatches the recorded tail and continues on exactly
    the trajectory the uninterrupted run would have taken: the final
    {!Campaign.coverage_report} is byte-identical, at any [--jobs]
    value. The CI kill-and-resume matrix enforces this.

    On disk a checkpoint directory holds:

    - [campaign.ckpt] — header line ([COMPI-CKPT <version>]), digest
      line (MD5 of the payload plus its length), then the marshalled
      {!snapshot}. Writes go to a temp file in the same directory and
      are committed with an atomic rename, so a SIGKILL at any moment
      leaves either the previous snapshot or the new one — never a
      torn file. {!load} verifies magic, version, length and digest and
      rejects anything else with a diagnostic ({!error}).
    - [corpus.txt] — the accumulated bug corpus rendered as
      {!Testcase} blocks (blank-line separated), also written via
      temp-and-rename. Human-readable and re-loadable with
      {!Testcase.load}; purely informational on resume (the
      authoritative corpus is inside the snapshot).

    The snapshot embeds a settings {!fingerprint}; {!mismatches}
    compares it against the resuming run's settings so a checkpoint can
    never be silently resumed under a different seed, strategy, batch
    size or cap set. Budgets ([iterations], [time_budget]) and [jobs]
    are deliberately {e not} fingerprinted — raising the budget is how
    a resume continues, and the worker count never affects the
    trajectory. *)

type work =
  | W_fresh of Driver.pending  (** execute a fresh test *)
  | W_negate of Concolic.Strategy.candidate  (** attempt a negation *)

type snapshot = {
  ck_fingerprint : (string * string) list;
  ck_iter : int;  (** iterations merged so far *)
  ck_rounds : int;
  ck_executed : int;
  ck_speculated : int;
  ck_solver_calls : int;
  ck_max_cs : int;
  ck_best_covered : int;
  ck_last_improvement : int;
  ck_barren : int;  (** consecutive failed negations since a SAT one *)
  ck_last_np : int * int;  (** last merged (nprocs, focus) *)
  ck_derived_bound : int option;
  ck_rng : Random.State.t;
  ck_strategy : Concolic.Strategy.t;  (** negation work-list / frontier *)
  ck_coverage : Concolic.Coverage.t;
  ck_cache : Smt.Cache.t option;
  ck_stats : Driver.iter_stat list;  (** reverse chronological *)
  ck_bugs : Driver.bug list;  (** reverse chronological *)
  ck_forced : Driver.pending list;  (** restart tests queued mid-round *)
  ck_stagnated_round : bool;
  ck_schedules : Driver.pending list;
      (** schedule forks enumerated but not yet dispatched (reverse
          accumulation order; the scheduler re-sorts deterministically) *)
  ck_work : work list;
      (** items of the current round not yet merged; re-executed
          deterministically on resume, then scheduling continues *)
}

val version : int
(** Current snapshot format version; {!load} rejects any other. *)

val file : dir:string -> string
(** [dir ^ "/campaign.ckpt"]. *)

val corpus_file : dir:string -> string
(** [dir ^ "/corpus.txt"]. *)

type error =
  | No_checkpoint of string  (** no [campaign.ckpt] under the directory *)
  | Bad_magic of string  (** not a COMPI checkpoint (first bytes shown) *)
  | Version_mismatch of { found : int; expected : int }
  | Truncated of { expected : int; actual : int }
      (** payload shorter (or longer) than the header declares *)
  | Checksum_mismatch  (** payload bytes do not match the MD5 header *)
  | Corrupt of string  (** header or payload unreadable *)
  | Settings_mismatch of (string * string * string) list
      (** [(key, stored, current)] for every fingerprint divergence *)

exception Load_error of error
(** Raised by {!Campaign.run} when [resume] is set and the checkpoint
    cannot be used. *)

val error_to_string : error -> string

val fingerprint :
  label:string ->
  batch:int ->
  solver_cache:bool ->
  cache_capacity:int ->
  Driver.settings ->
  (string * string) list
(** Every trajectory-relevant setting, rendered as stable strings.
    Excludes [iterations], [time_budget] and the worker count. *)

val mismatches :
  stored:(string * string) list ->
  current:(string * string) list ->
  (string * string * string) list
(** [(key, stored_value, current_value)] for keys whose values differ
    (missing keys render as ["<absent>"]). Empty means compatible. *)

val save : dir:string -> target:string -> snapshot -> int
(** Atomically commit [campaign.ckpt] (and [corpus.txt], rendered for
    [target]) under [dir], creating the directory if needed. Returns the
    serialized payload size in bytes. *)

val load : dir:string -> (snapshot, error) result
(** Never raises on malformed input: a directory left by a killed run
    either loads or is rejected with a diagnostic {!error}. *)
