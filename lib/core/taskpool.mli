(** Fixed pool of worker domains with in-order streaming results.

    Each worker is an OCaml 5 domain with its own stacks, so the
    effect-handler runtimes of the MPI scheduler and the interpreter —
    created per test execution — never cross domains. The calling
    domain participates as worker 0.

    There is no batch barrier: {!stream} publishes tasks and {!next}
    hands each result back strictly in submission order {e as soon as
    it is ready}, while the pool is still executing later items. The
    only wait is the in-order consumer blocking on the single index it
    needs next, recorded as a ["queue.wait"] span on the consumer's
    domain. This is what lets the campaign merge item k while item k+1
    is still solving/executing.

    Telemetry: spawning emits one [worker_spawn] event per domain,
    every task emits [worker_task] (pool-lifetime sequence number and
    wall time), and {!shutdown} drives one [worker_exit] per domain. *)

type t

val create : jobs:int -> t
(** Spawn [jobs - 1] domains ([jobs] is clamped to at least 1). *)

val jobs : t -> int

type 'a stream
(** An in-flight batch whose results are consumed in submission order. *)

val stream : t -> (unit -> 'a) list -> 'a stream
(** [stream t thunks] publishes [thunks] to the pool and returns a
    handle for in-order consumption. Workers start claiming tasks
    immediately. Not reentrant: one stream (or {!map}) at a time per
    pool, and a stream must be consumed to exhaustion before the next
    one is opened. *)

val next : 'a stream -> 'a option
(** [next st] blocks until the earliest unconsumed task has finished
    and returns its result; [None] once the batch is exhausted. If the
    needed task is still unclaimed, the caller runs it inline (worker
    0) instead of waiting — with [jobs = 1] this makes consumption
    exactly the sequential in-order execution of the batch. If a task
    raised, [next] first drains the remaining tasks (keeping the pool
    reusable), then re-raises the first exception in submission
    order. *)

val max_inflight : 'a stream -> int
(** Peak number of claimed-but-unconsumed tasks observed so far — the
    effective pipeline depth of the batch. *)

val busy_seconds : t -> float
(** Cumulative wall time spent inside tasks across all domains since
    [create] — utilization numerator for bench reports. *)

val map : t -> ('a -> 'b) -> 'a list -> 'b list
(** [map t f xs] is {!stream} consumed to exhaustion: run [f] over
    every element and return the results in input order. If any task
    raised, the first such exception (in input order) is re-raised on
    the caller after the whole batch settles. Not reentrant: one [map]
    at a time per pool. *)

val shutdown : t -> unit
(** Stop and join every worker domain. The pool must be idle. *)
