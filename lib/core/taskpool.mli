(** Fixed pool of worker domains for the parallel campaign engine.

    Each worker is an OCaml 5 domain with its own stacks, so the
    effect-handler runtimes of the MPI scheduler and the interpreter —
    created per test execution — never cross domains. The calling
    domain participates as worker 0.

    {!map} is order-preserving: results come back in submission order
    regardless of completion order, which is what the campaign's
    deterministic merge relies on. With [jobs = 1] no domain is spawned
    and [map] runs the tasks inline, in order, on the caller.

    Telemetry: spawning emits one [worker_spawn] event per domain,
    every task emits [worker_task] (pool-lifetime sequence number and
    wall time), and {!shutdown} drives one [worker_exit] per domain. *)

type t

val create : jobs:int -> t
(** Spawn [jobs - 1] domains ([jobs] is clamped to at least 1). *)

val jobs : t -> int

val map : t -> ('a -> 'b) -> 'a list -> 'b list
(** Run [f] over every element on the pool and return the results in
    input order. If any task raised, the first such exception (in input
    order) is re-raised on the caller after the whole batch settles.
    Not reentrant: one [map] at a time per pool. *)

val shutdown : t -> unit
(** Stop and join every worker domain. The pool must be idle. *)
