open Minic
open Concolic

type strategy_choice =
  | Two_phase_dfs
  | Fixed_strategy of Strategy.kind
  | Cfg_strategy

type settings = {
  iterations : int;
  time_budget : float option;
  dfs_phase_iters : int;
  depth_bound : int option;
  strategy : strategy_choice;
  initial_nprocs : int;
  initial_focus : int;
  nprocs_cap : int;
  reduce : bool;
  two_way : bool;
  framework : bool;
  seed : int;
  step_limit : int;
  cap_overrides : (string * int) list;
  max_procs : int;
  solver_budget : int;
  max_solve_attempts : int;
  random_lo : int;
  random_hi : int;
  stagnation_restart : int option;
      (* "We just redo the testing" (paper section VI): after this many
         iterations without new coverage, restart with fresh random
         inputs and a fresh search tree *)
  resolve_conflicts : bool;
      (* ablation hook for section III-C: when false the focus never
         follows re-solved rank variables (process count still follows
         sw), so derived rank values are silently dropped *)
  exec_mode : Runner.exec_mode;
      (* compiled (default) or interpreted execution; the interpreter
         stays available as the differential oracle *)
  schedules : bool;
      (* explore the schedule dimension: runs execute in schedule mode
         and the campaign enumerates alternative wildcard-match orders
         (POR-pruned) alongside input negations. Campaign-only; the
         sequential driver ignores it. *)
  schedule_depth : int;
      (* only the first [schedule_depth] wildcard choice points of a run
         are eligible for forking — the schedule-space analogue of the
         DFS depth bound *)
}

let default_settings =
  {
    iterations = 500;
    time_budget = None;
    dfs_phase_iters = 50;
    depth_bound = None;
    strategy = Two_phase_dfs;
    initial_nprocs = 8;
    initial_focus = 0;
    nprocs_cap = 16;
    reduce = true;
    two_way = true;
    framework = true;
    seed = 42;
    step_limit = 2_000_000;
    cap_overrides = [];
    max_procs = Mpisim.Scheduler.default_max_procs;
    solver_budget = Smt.Solver.default_budget;
    max_solve_attempts = 200;
    random_lo = -8;
    random_hi = 64;
    stagnation_restart = Some 250;
    resolve_conflicts = true;
    exec_mode = Runner.Exec_compiled;
    schedules = false;
    schedule_depth = 8;
  }

type bug = {
  bug_iteration : int;
  bug_rank : int;
  bug_fault : Fault.t;
  bug_inputs : (string * int) list;
  bug_nprocs : int;
  bug_focus : int;
  bug_context : (int * bool) list;
      (* the focus's last branch decisions in the faulting run *)
}

let bug_key b =
  match b.bug_fault with
  | Fault.Segfault { array; func; _ } -> Printf.sprintf "segfault:%s:%s" func array
  | Fault.Fpe { func } -> Printf.sprintf "fpe:%s" func
  | Fault.Assert_fail { message; func } -> Printf.sprintf "assert:%s:%s" func message
  | Fault.Abort_called { message; func } -> Printf.sprintf "abort:%s:%s" func message
  | Fault.Step_limit_exceeded _ -> "timeout"
  | Fault.Mpi_error { message; func } -> Printf.sprintf "mpi:%s:%s" func message
  | Fault.Runtime_type_error { message; func } -> Printf.sprintf "type:%s:%s" func message

type iter_stat = {
  iteration : int;
  nprocs : int;
  focus : int;
  constraint_set_size : int;
  covered_after : int;
  reachable_after : int;
  faults_seen : int;
  restarted : bool;
  exec_time : float;
  solve_time : float;
}

type result = {
  coverage : Coverage.t;
  stats : iter_stat list;
  bugs : bug list;
  total_branches : int;
  reachable_branches : int;
  covered_branches : int;
  coverage_rate : float;
  iterations_run : int;
  wall_time : float;
  max_constraint_set : int;
  derived_bound : int option;
}

let strategy_choice_name = function
  | Two_phase_dfs -> "two-phase-dfs"
  | Fixed_strategy (Strategy.Bounded_dfs b) -> Printf.sprintf "bounded-dfs(%d)" b
  | Fixed_strategy Strategy.Random_branch -> "random-branch"
  | Fixed_strategy Strategy.Uniform_random -> "uniform-random"
  | Fixed_strategy (Strategy.Cfg_directed _) -> "cfg-directed"
  | Fixed_strategy (Strategy.Generational b) -> Printf.sprintf "generational(%d)" b
  | Cfg_strategy -> "cfg-strategy"

let distinct_bugs r =
  let seen = Hashtbl.create 8 in
  List.filter
    (fun b ->
      let key = bug_key b in
      if Hashtbl.mem seen key then false
      else begin
        Hashtbl.replace seen key ();
        true
      end)
    r.bugs

let random_inputs rng settings (program : Ast.program) =
  List.map
    (fun (d : Ast.input_decl) ->
      let hi =
        match List.assoc_opt d.Ast.iname settings.cap_overrides with
        | Some cap -> cap
        | None -> Option.value d.Ast.cap ~default:settings.random_hi
      in
      let lo = Option.value d.Ast.lo ~default:settings.random_lo in
      let lo = min lo hi in
      (d.Ast.iname, lo + Random.State.int rng (hi - lo + 1)))
    (Ast.inputs_of_program program)

(* Where a test came from — the lineage record threaded from the
   negation that produced it to the merge point that runs it. *)
type origin =
  | O_seed
  | O_restart
  | O_negated of { parent : int; branch : int; index : int; cached : bool }
  | O_schedule of { parent : int; point : int; source : int }
      (* schedule fork: same inputs as [parent], but choice point
         [point] delivers from local source [source] instead *)

(* What the next test should run with. *)
type pending = {
  p_inputs : (string * int) list;
  p_nprocs : int;
  p_focus : int;
  p_depth : int;  (* depth to report to the strategy after the run *)
  p_origin : origin;
  p_schedule : int list;  (* wildcard-match prescription ([] = default order) *)
}

let origin_fields = function
  | O_seed -> ("seed", -1, -1, -1, false)
  | O_restart -> ("restart", -1, -1, -1, false)
  | O_negated { parent; branch; index; cached } -> ("negated", parent, branch, index, cached)
  | O_schedule { parent; point; source } ->
    (* reuse the lineage slots: index = flipped choice point, branch =
       alternative source delivered *)
    ("schedule", parent, source, point, false)

let emit_lineage_test ~test origin =
  if Obs.Sink.active () then begin
    let origin, parent, branch, index, cached = origin_fields origin in
    Obs.Sink.emit (Obs.Event.Lineage_test { test; parent; origin; branch; index; cached })
  end

let emit_lineage_negation ~(cand : Strategy.candidate) ~outcome ~cached =
  if Obs.Sink.active () then
    Obs.Sink.emit
      (Obs.Event.Lineage_negation
         {
           parent = cand.Strategy.record.Execution.exec_id;
           index = cand.Strategy.index;
           (* the *negated* branch: the flipped side of the conditional *)
           branch = Execution.branch_at cand.Strategy.record cand.Strategy.index lxor 1;
           outcome;
           cached;
         })

let make_strategy settings (info : Branchinfo.t) =
  match settings.strategy with
  | Two_phase_dfs -> Strategy.create ~seed:settings.seed (Strategy.Bounded_dfs max_int)
  | Fixed_strategy kind -> Strategy.create ~seed:settings.seed kind
  | Cfg_strategy ->
    Strategy.create ~seed:settings.seed (Strategy.Cfg_directed (Cfg.build info))

(* --- telemetry ---------------------------------------------------- *)

let m_iterations = Obs.Metrics.counter "driver.iterations"
let m_restarts = Obs.Metrics.counter "driver.restarts"
let m_faults = Obs.Metrics.counter "driver.faults"
let m_solve_attempts = Obs.Metrics.histogram "driver.solve_attempts"
let m_cs_size = Obs.Metrics.histogram "driver.constraint_set"
let g_covered = Obs.Metrics.gauge "driver.covered"
let g_reachable = Obs.Metrics.gauge "driver.reachable"

let emit_restart ~iteration reason =
  Obs.Metrics.incr m_restarts;
  Obs.Sink.emit (Obs.Event.Restart { iteration; reason })

let run ?(settings = default_settings) ?(label = "") (info : Branchinfo.t) =
  let rng = Random.State.make [| settings.seed |] in
  let program = info.Branchinfo.program in
  let coverage = Coverage.create () in
  let strategy = ref (make_strategy settings info) in
  let base_runner =
    {
      (Runner.default_config ~info) with
      Runner.reduce = settings.reduce;
      two_way = settings.two_way;
      mark_mpi_sem = settings.framework;
      record_all = settings.framework;
      nprocs_cap = settings.nprocs_cap;
      cap_overrides = settings.cap_overrides;
      step_limit = settings.step_limit;
      max_procs = settings.max_procs;
      compiled = Runner.prepare ~target:label settings.exec_mode info;
    }
  in
  Obs.Sink.emit
    (Obs.Event.Campaign_start
       {
         target = label;
         iterations = settings.iterations;
         seed = settings.seed;
         nprocs = settings.initial_nprocs;
       });
  let t_start = Unix.gettimeofday () in
  let elapsed () = Unix.gettimeofday () -. t_start in
  let time_ok () =
    match settings.time_budget with Some b -> elapsed () < b | None -> true
  in
  let stats = ref [] in
  let bugs = ref [] in
  let max_cs = ref 0 in
  let derived_bound = ref None in
  let pending =
    ref
      {
        p_inputs = random_inputs rng settings program;
        p_nprocs = settings.initial_nprocs;
        p_focus = settings.initial_focus;
        p_depth = 0;
        p_origin = O_seed;
        p_schedule = [];
      }
  in
  let iter = ref 0 in
  let finished = ref false in
  let best_covered = ref 0 in
  let last_improvement = ref 0 in
  (* re-arm the search after a stagnation restart: keep the derived
     BoundedDFS bound once phase two has started *)
  let fresh_strategy () =
    match (settings.strategy, !derived_bound) with
    | Two_phase_dfs, Some bound ->
      Strategy.create ~seed:(settings.seed + !iter) (Strategy.Bounded_dfs bound)
    | (Two_phase_dfs | Fixed_strategy _ | Cfg_strategy), _ -> make_strategy settings info
  in
  while (not !finished) && !iter < settings.iterations && time_ok () do
    let p = !pending in
    let config =
      {
        base_runner with
        Runner.inputs = p.p_inputs;
        nprocs = min p.p_nprocs settings.max_procs;
        focus = min p.p_focus (min p.p_nprocs settings.max_procs - 1);
      }
    in
    if Obs.Sink.active () then
      Obs.Sink.emit
        (Obs.Event.Iter_start
           {
             iteration = !iter;
             nprocs = config.Runner.nprocs;
             focus = config.Runner.focus;
           });
    match Runner.run config with
    | Error (`Platform_limit _) ->
      (* should be prevented by the sw cap; recover with a fresh test *)
      emit_restart ~iteration:!iter "platform-limit";
      pending :=
        {
          p_inputs = random_inputs rng settings program;
          p_nprocs = settings.initial_nprocs;
          p_focus = settings.initial_focus;
          p_depth = 0;
          p_origin = O_restart;
          p_schedule = [];
        };
      incr iter
    | Ok res ->
      res.Runner.execution.Execution.exec_id <- !iter;
      emit_lineage_test ~test:!iter p.p_origin;
      Coverage.absorb ~into:coverage res.Runner.coverage;
      max_cs := max !max_cs res.Runner.constraint_set_size;
      Obs.Metrics.observe_int m_cs_size res.Runner.constraint_set_size;
      let faults = Runner.faults res in
      List.iter
        (fun (rank, fault) ->
          Obs.Metrics.incr m_faults;
          if Obs.Sink.active () then
            Obs.Sink.emit
              (Obs.Event.Fault
                 {
                   iteration = !iter;
                   rank;
                   kind = Fault.kind_name fault;
                   detail = Fault.to_string fault;
                 });
          bugs :=
            {
              bug_iteration = !iter;
              bug_rank = rank;
              bug_fault = fault;
              bug_inputs = p.p_inputs;
              bug_nprocs = config.Runner.nprocs;
              bug_focus = config.Runner.focus;
              bug_context = res.Runner.focus_tail;
            }
            :: !bugs)
        faults;
      Obs.Prof.time "strategy" (fun () ->
          Strategy.observe !strategy ~depth:p.p_depth res.Runner.execution);
      (* two-phase bound derivation *)
      (match settings.strategy with
      | Two_phase_dfs when !iter + 1 = settings.dfs_phase_iters ->
        let bound =
          match settings.depth_bound with
          | Some b -> b
          | None -> (!max_cs * 6 / 5) + 10
        in
        derived_bound := Some bound;
        let s = Strategy.create ~seed:(settings.seed + 1) (Strategy.Bounded_dfs bound) in
        Strategy.observe s ~depth:0 res.Runner.execution;
        strategy := s
      | Two_phase_dfs | Fixed_strategy _ | Cfg_strategy -> ());
      (* stagnation restart: redo the testing with a fresh tree *)
      let covered_now = Coverage.covered_branches coverage in
      if covered_now > !best_covered then begin
        if Obs.Sink.active () then
          Obs.Sink.emit
            (Obs.Event.Coverage_delta
               {
                 iteration = !iter;
                 covered_before = !best_covered;
                 covered_after = covered_now;
               });
        best_covered := covered_now;
        last_improvement := !iter
      end;
      let stagnated =
        match settings.stagnation_restart with
        | Some k -> !iter - !last_improvement >= k
        | None -> false
      in
      if stagnated then begin
        emit_restart ~iteration:!iter "stagnation";
        last_improvement := !iter;
        strategy := fresh_strategy ()
      end;
      (* derive the next test *)
      let t_solve = Unix.gettimeofday () in
      let next = ref None in
      let attempts = ref 0 in
      let exhausted = ref stagnated in
      Obs.Prof.time "solve" (fun () ->
      while !next = None && (not !exhausted) && !attempts < settings.max_solve_attempts do
        match Obs.Prof.time "strategy" (fun () -> Strategy.next !strategy ~coverage) with
        | None -> exhausted := true
        | Some cand -> (
          incr attempts;
          (* set COMPI_DEBUG=1 to trace every negation attempt *)
          let debug = Sys.getenv_opt "COMPI_DEBUG" <> None in
          if debug then
            Printf.eprintf "[%d] neg idx=%d/%d %s => " !iter cand.Strategy.index
              (Execution.length cand.Strategy.record)
              (Format.asprintf "%a" Smt.Constr.pp
                 (Execution.constr_at cand.Strategy.record cand.Strategy.index));
          let emit_negation sat =
            if Obs.Sink.active () then
              Obs.Sink.emit
                (Obs.Event.Negation
                   { iteration = !iter; index = cand.Strategy.index; sat })
          in
          match
            Execution.solve_negation ~budget:settings.solver_budget cand.Strategy.record
              cand.Strategy.index
          with
          | Error ((`Unsat | `Unknown) as verdict) ->
            emit_negation false;
            emit_lineage_negation ~cand
              ~outcome:
                (match verdict with
                | `Unsat -> Obs.Event.Unsat
                | `Unknown -> Obs.Event.Unknown)
              ~cached:false;
            if debug then Printf.eprintf "unsat\n%!"
          | Ok solver_result ->
            emit_negation true;
            emit_lineage_negation ~cand ~outcome:Obs.Event.Sat ~cached:false;
            if debug then Printf.eprintf "sat\n%!";
            let record = cand.Strategy.record in
            let decision =
              Conflict.resolve ~prev_nprocs:record.Execution.nprocs
                ~prev_focus:record.Execution.focus ~mapping:record.Execution.mapping
                ~symtab:record.Execution.symtab ~result:solver_result
            in
            let inputs =
              Symtab.input_values record.Execution.symtab solver_result.Smt.Solver.model
            in
            let nprocs, focus =
              if not settings.framework then
                (settings.initial_nprocs, settings.initial_focus)
              else if settings.resolve_conflicts then
                (decision.Conflict.nprocs, decision.Conflict.focus)
              else
                ( decision.Conflict.nprocs,
                  min record.Execution.focus (decision.Conflict.nprocs - 1) )
            in
            next :=
              Some
                {
                  p_inputs = inputs;
                  p_nprocs = nprocs;
                  p_focus = focus;
                  p_depth = cand.Strategy.index + 1;
                  p_origin =
                    O_negated
                      {
                        parent = record.Execution.exec_id;
                        branch =
                          Execution.branch_at record cand.Strategy.index lxor 1;
                        index = cand.Strategy.index;
                        cached = false;
                      };
                  p_schedule = record.Execution.exec_schedule;
                })
      done);
      let solve_time = Unix.gettimeofday () -. t_solve in
      let restarted = !next = None in
      Obs.Metrics.observe_int m_solve_attempts !attempts;
      if restarted && not stagnated then emit_restart ~iteration:!iter "exhausted";
      (pending :=
         match !next with
         | Some nx -> nx
         | None ->
           {
             p_inputs = random_inputs rng settings program;
             p_nprocs = p.p_nprocs;
             p_focus = p.p_focus;
             p_depth = 0;
             p_origin = O_restart;
             p_schedule = [];
           });
      let reachable =
        Branchinfo.reachable_branches info ~encountered:(Coverage.encountered coverage)
      in
      Obs.Metrics.incr m_iterations;
      Obs.Metrics.set g_covered (float_of_int (Coverage.covered_branches coverage));
      Obs.Metrics.set g_reachable (float_of_int reachable);
      if Obs.Sink.active () then
        Obs.Sink.emit
          (Obs.Event.Iter_end
             {
               iteration = !iter;
               covered = Coverage.covered_branches coverage;
               reachable;
               cs_size = res.Runner.constraint_set_size;
               faults = List.length faults;
               restarted;
               exec_s = res.Runner.wall_time;
               solve_s = solve_time;
             });
      stats :=
        {
          iteration = !iter;
          nprocs = config.Runner.nprocs;
          focus = config.Runner.focus;
          constraint_set_size = res.Runner.constraint_set_size;
          covered_after = Coverage.covered_branches coverage;
          reachable_after = reachable;
          faults_seen = List.length faults;
          restarted;
          exec_time = res.Runner.wall_time;
          solve_time;
        }
        :: !stats;
      incr iter
  done;
  let reachable =
    Obs.Prof.time "report" (fun () ->
        Branchinfo.reachable_branches info ~encountered:(Coverage.encountered coverage))
  in
  let covered = Coverage.covered_branches coverage in
  Obs.Sink.emit
    (Obs.Event.Campaign_end
       {
         iterations_run = !iter;
         covered;
         reachable;
         bugs = List.length !bugs;
         wall_s = elapsed ();
       });
  {
    coverage;
    stats = List.rev !stats;
    bugs = List.rev !bugs;
    total_branches = info.Branchinfo.total_branches;
    reachable_branches = reachable;
    covered_branches = covered;
    coverage_rate = (if reachable = 0 then 0.0 else float_of_int covered /. float_of_int reachable);
    iterations_run = !iter;
    wall_time = elapsed ();
    max_constraint_set = !max_cs;
    derived_bound = !derived_bound;
  }
