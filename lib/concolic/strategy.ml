type candidate = { record : Execution.t; index : int }

type kind =
  | Bounded_dfs of int
  | Random_branch
  | Uniform_random
  | Cfg_directed of Minic.Cfg.t
  | Generational of int
      (* SAGE-style generational search (beyond the paper): every
         position of each new path becomes a candidate, and candidates
         whose flipped branch side is still uncovered are served first.
         The argument bounds how many positions of one path expand. *)

type t = {
  kind : kind;
  rng : Random.State.t;
  stack : candidate Stack.t;  (* DFS *)
  mutable pool : candidate list;  (* generational *)
  mutable latest : Execution.t option;  (* stateless strategies *)
}

let create ?(seed = 0x5EED) kind =
  {
    kind;
    rng = Random.State.make [| seed |];
    stack = Stack.create ();
    pool = [];
    latest = None;
  }

let kind_name t =
  match t.kind with
  | Bounded_dfs bound -> Printf.sprintf "bounded-dfs(%d)" bound
  | Random_branch -> "random-branch"
  | Uniform_random -> "uniform-random"
  | Cfg_directed _ -> "cfg-directed"
  | Generational bound -> Printf.sprintf "generational(%d)" bound

let observe t ~depth record =
  match t.kind with
  | Bounded_dfs bound ->
    (* CREST's DFS order: within one path, positions are negated from
       shallow to deep, and each new execution is descended into before
       its siblings (its candidates land on top of the stack). Pushing
       deepest-first makes the shallowest new position pop first. *)
    let limit = min (Execution.length record) bound in
    for index = limit - 1 downto depth do
      Stack.push { record; index } t.stack
    done
  | Generational bound ->
    let limit = min (Execution.length record) bound in
    let fresh = List.init (max 0 (limit - depth)) (fun k -> { record; index = depth + k }) in
    t.pool <- List.rev_append fresh t.pool
  | Random_branch | Uniform_random | Cfg_directed _ -> t.latest <- Some record

let pick_random_branch t record =
  (* Choose among distinct conditionals on the path, then negate the
     last occurrence of the chosen one. *)
  let n = Execution.length record in
  if n = 0 then None
  else begin
    let last_of = Hashtbl.create 32 in
    for i = 0 to n - 1 do
      Hashtbl.replace last_of (Execution.branch_at record i / 2) i
    done;
    let conds = Hashtbl.fold (fun c _ acc -> c :: acc) last_of [] in
    let conds = List.sort Int.compare conds in
    let chosen = List.nth conds (Random.State.int t.rng (List.length conds)) in
    Some { record; index = Hashtbl.find last_of chosen }
  end

let pick_uniform t record =
  let n = Execution.length record in
  if n = 0 then None else Some { record; index = Random.State.int t.rng n }

let pick_cfg t g record ~coverage =
  let n = Execution.length record in
  if n = 0 then None
  else begin
    let dist =
      Minic.Cfg.distances g ~uncovered:(fun b -> not (Coverage.mem_branch coverage b))
    in
    let nbranches = Array.length dist in
    let score i =
      let b = Execution.branch_at record i in
      let flipped = if b mod 2 = 0 then b + 1 else b - 1 in
      if flipped < nbranches then dist.(flipped) else max_int
    in
    let best = ref max_int in
    for i = 0 to n - 1 do
      let s = score i in
      if s < !best then best := s
    done;
    if !best = max_int then pick_uniform t record
    else begin
      let mins = ref [] in
      for i = 0 to n - 1 do
        if score i = !best then mins := i :: !mins
      done;
      let mins = Array.of_list !mins in
      Some { record; index = mins.(Random.State.int t.rng (Array.length mins)) }
    end
  end

(* A candidate is promising when the other side of its branch is still
   uncovered — flipping it would pay immediately. *)
let promising coverage c =
  let b = Execution.branch_at c.record c.index in
  let flipped = if b mod 2 = 0 then b + 1 else b - 1 in
  not (Coverage.mem_branch coverage flipped)

let pick_generational t ~coverage =
  let rec take acc = function
    | [] -> (None, List.rev acc)
    | c :: rest when promising coverage c -> (Some c, List.rev_append acc rest)
    | c :: rest -> take (c :: acc) rest
  in
  match take [] t.pool with
  | Some c, rest ->
    t.pool <- rest;
    Some c
  | None, _ -> (
    (* no promising candidate: fall back to the newest pending one *)
    match t.pool with
    | c :: rest ->
      t.pool <- rest;
      Some c
    | [] -> None)

let next t ~coverage =
  match t.kind with
  | Bounded_dfs _ -> if Stack.is_empty t.stack then None else Some (Stack.pop t.stack)
  | Generational _ -> pick_generational t ~coverage
  | Random_branch -> Option.bind t.latest (pick_random_branch t)
  | Uniform_random -> Option.bind t.latest (pick_uniform t)
  | Cfg_directed g -> Option.bind t.latest (fun r -> pick_cfg t g r ~coverage)

let next_batch t ~coverage ~max =
  (* Draw up to [max] candidates, skipping duplicates of earlier draws
     in this batch (stateless strategies can re-pick the same position
     from the same record; executing it twice in one round is waste).
     Draws happen in a fixed order on the caller's domain, so the RNG
     trajectory — and hence the batch — is independent of how many
     workers later execute it. *)
  let same a b = a.record == b.record && a.index = b.index in
  let rec go acc n =
    if n <= 0 then List.rev acc
    else
      match next t ~coverage with
      | None -> List.rev acc
      | Some c ->
        if List.exists (same c) acc then go acc (n - 1)
        else go (c :: acc) (n - 1)
  in
  go [] (Stdlib.max 0 max)

let stack_size t =
  match t.kind with
  | Bounded_dfs _ -> Stack.length t.stack
  | Generational _ -> List.length t.pool
  | Random_branch | Uniform_random | Cfg_directed _ -> (
    match t.latest with Some _ -> 1 | None -> 0)
