(** Search strategies: which constraint to negate next.

    The four strategies of CREST that the paper evaluates in Figure 4:

    - {b BoundedDFS} — systematic depth-first exploration of the
      execution tree, ignoring constraints deeper than the bound. The
      only strategy that reliably passes deep sanity checks, hence
      COMPI's default (paper section II-B).
    - {b Random branch} — negate the last occurrence of a uniformly
      chosen conditional on the current path.
    - {b Uniform random} — negate a uniformly chosen position of the
      current path.
    - {b CFG-directed} — negate the position whose flipped side has the
      smallest static distance to an uncovered branch.

    The driver protocol: after every execution call {!observe} (with
    [depth] = position after the negation that produced it, 0 for a
    fresh random run); call {!next} to get the next negation candidate;
    [None] means the strategy is exhausted and the driver should restart
    with fresh random inputs. *)

type candidate = { record : Execution.t; index : int }

type kind =
  | Bounded_dfs of int  (** depth bound; CREST's default bound is 1_000_000 *)
  | Random_branch
  | Uniform_random
  | Cfg_directed of Minic.Cfg.t
  | Generational of int
      (** beyond the paper: SAGE-style generational search — every
          position (up to the bound) of each new path joins a candidate
          pool, and candidates whose flipped branch side is still
          uncovered are served first *)

type t

val create : ?seed:int -> kind -> t
val kind_name : t -> string

val observe : t -> depth:int -> Execution.t -> unit

val next : t -> coverage:Coverage.t -> candidate option

val next_batch : t -> coverage:Coverage.t -> max:int -> candidate list
(** Up to [max] candidates drawn by repeated {!next} calls, with
    within-batch duplicates (same record, same index) dropped. Drawing
    is sequential on the caller's domain, so the batch is a pure
    function of strategy state — the parallel campaign engine relies on
    this for worker-count-independent results. Returns fewer than [max]
    (possibly none) when the strategy runs dry. *)

val stack_size : t -> int
(** Pending candidates (DFS only; 0 or 1 for the stateless strategies). *)
