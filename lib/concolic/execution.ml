type t = {
  constraints : (int * Smt.Constr.t) array;
  symtab : Symtab.t;
  model : Smt.Model.t;
  domains : Smt.Domain.t Smt.Varid.Map.t;
  extra : Smt.Constr.t list;
  nprocs : int;
  focus : int;
  mapping : (int * int array) list;
  mutable exec_id : int;
  mutable exec_schedule : int list;
}

let length t = Array.length t.constraints

let prefix t i =
  let rec go k acc = if k < 0 then acc else go (k - 1) (snd t.constraints.(k) :: acc) in
  go (i - 1) []

let constr_at t i = snd t.constraints.(i)
let branch_at t i = fst t.constraints.(i)

let negation_problem t i =
  let negated = Smt.Constr.negate (constr_at t i) in
  (negated, negated :: List.rev_append (List.rev (prefix t i)) t.extra)

let solve_negation ?budget ?canonical t i =
  let negated, cs = negation_problem t i in
  Smt.Solver.solve_incremental ?budget ?canonical ~domains:t.domains ~prev:t.model
    ~target:negated cs

(* The canonical identity of the solve that [solve_negation t i] would
   perform, computed once: the dependency closure of the negated
   constraint — exactly what the incremental solver re-solves — keyed
   with the run's domains, plus the closure's variable set. Building the
   closure and sorting it dominate the cost of the cheap incremental
   solves, so the campaign derives the key, the miss-path solve, and the
   hit-path replay all from this one value. *)
type prepared = { p_key : Smt.Cache.key; p_vars : Smt.Varid.Set.t }

let prepare_negation t i =
  let negated, cs = negation_problem t i in
  let closure, vars =
    Smt.Constr.dependency_closure ~seed:(Smt.Constr.vars negated) cs
  in
  { p_key = Smt.Cache.key ~vars ~domains:t.domains closure; p_vars = vars }

let prepared_key p = p.p_key

let solve_prepared ?budget t p =
  Smt.Solver.solve_prepared ?budget ~domains:t.domains ~prev:t.model
    ~closure:(Smt.Cache.key_constrs p.p_key) ~vars:p.p_vars ()

let negation_key t i = (prepare_negation t i).p_key

let replay ~vars t outcome =
  match (outcome : Smt.Cache.outcome) with
  | Smt.Cache.Unsat -> Error `Unsat
  | Smt.Cache.Sat cached ->
    (* Reconstruct what a canonical solve_negation would have returned:
       [cached] is a pure function of the key, so merging it over this
       run's concrete model and diffing against it reproduces the live
       result even though the verdict was found under another run. *)
    let resolved = vars in
    let fresh =
      Smt.Varid.Set.fold
        (fun v acc ->
          match Smt.Model.find v cached with
          | Some x -> Smt.Model.set v x acc
          | None -> acc)
        resolved Smt.Model.empty
    in
    let changed = Smt.Model.changed_vars ~before:t.model ~after:fresh in
    Ok
      {
        Smt.Solver.model = Smt.Model.union_prefer_left fresh t.model;
        fresh;
        resolved;
        changed;
      }

let apply_prepared t p outcome = replay ~vars:p.p_vars t outcome

let apply_cached t i outcome = replay ~vars:(prepare_negation t i).p_vars t outcome
