(** Branch coverage accounting — COMPI's "all recorders".

    One store accumulates over a whole testing campaign: branch ids
    covered by {e any} process (focus or not) and the set of functions
    ever entered. The latter drives the paper's reachable-branch
    denominator (sum of branches of encountered functions, CREST FAQ
    convention). *)

type t

val create : unit -> t
val add_branch : t -> int -> unit
val add_func : t -> string -> unit
val mem_branch : t -> int -> bool
val covered_branches : t -> int
val branch_list : t -> int list

val encountered : t -> string -> bool
val encountered_functions : t -> string list

val absorb : into:t -> t -> unit
(** Union a per-run recorder into the campaign store. *)

val copy : t -> t

val report : t -> string
(** Canonical two-line rendering (sorted branch ids, then sorted
    function names). Equal coverage — however accumulated — yields
    byte-identical text; the campaign determinism check diffs this. *)
