(** One concolic execution of the focus process, as seen by the search.

    Bundles the constraint path with everything needed to derive the
    next inputs from it: the run's symbol table, its concrete model
    (the solver's "previous inputs"), capping domains and the extra
    constraint set (inherent MPI-semantics constraints plus any campaign
    caps) that must hold in every solve. *)

type t = {
  constraints : (int * Smt.Constr.t) array;
      (** [(branch_id, constraint)] in path order *)
  symtab : Symtab.t;
  model : Smt.Model.t;
  domains : Smt.Domain.t Smt.Varid.Map.t;
  extra : Smt.Constr.t list;
  nprocs : int;  (** launch context of this run *)
  focus : int;
  mapping : (int * int array) list;
      (** local-to-global rank table of this run (paper Table II) *)
  mutable exec_id : int;
      (** campaign-wide test-case id of this run, assigned at merge
          time (the iteration number); -1 until observed. Candidates
          derived from this run inherit it as their lineage parent. *)
  mutable exec_schedule : int list;
      (** schedule prescription this run executed under ([[]] in eager
          mode). Input-negation candidates derived from this run replay
          the same prescription, so the (input, schedule) pair stays a
          coherent test identity. *)
}

val length : t -> int

val prefix : t -> int -> Smt.Constr.t list
(** Constraints strictly before position [i]. *)

val constr_at : t -> int -> Smt.Constr.t
val branch_at : t -> int -> int

val solve_negation :
  ?budget:int ->
  ?canonical:bool ->
  t ->
  int ->
  (Smt.Solver.incremental_result, [ `Unsat | `Unknown ]) result
(** [solve_negation t i] negates the constraint at position [i], keeps
    the path prefix before it plus [t.extra], and solves incrementally
    against the run's model (CREST's input-derivation step). By default
    the solver prefers this run's concrete values, so the model depends
    on [t.model]; with [~canonical:true] the verdict and [fresh]
    bindings are a pure function of {!negation_key} — required wherever
    the result may be cached and replayed into a different run. *)

type prepared
(** The canonical identity of one negation solve, computed once: the
    {!Smt.Cache.key} plus the dependency closure's variable set. The
    closure walk and canonicalizing sort dominate the cost of the cheap
    incremental solves, so the cache-on campaign path prepares each
    candidate once and derives the probe, the miss solve, and the hit
    replay from the same value instead of recomputing the closure for
    each. *)

val prepare_negation : t -> int -> prepared
(** Negate the constraint at position [i], take the dependency closure
    within the path prefix plus [t.extra], and canonicalize it with the
    run's domains. *)

val prepared_key : prepared -> Smt.Cache.key

val solve_prepared :
  ?budget:int ->
  t ->
  prepared ->
  (Smt.Solver.incremental_result, [ `Unsat | `Unknown ]) result
(** Exactly [solve_negation ~canonical:true] for the prepared candidate,
    reusing its closure — no second dependency walk or sort. *)

val apply_prepared :
  t ->
  prepared ->
  Smt.Cache.outcome ->
  (Smt.Solver.incremental_result, [ `Unsat | `Unknown ]) result
(** {!apply_cached} for a prepared candidate, reusing its variable set. *)

val negation_key : t -> int -> Smt.Cache.key
(** [prepared_key (prepare_negation t i)] — the cache identity of the
    solve [solve_negation t i] performs: the dependency closure of the
    negated constraint within the path prefix and [t.extra],
    canonicalized with the run's domains. Two executions with
    structurally identical paths produce equal keys. *)

val apply_cached :
  t ->
  int ->
  Smt.Cache.outcome ->
  (Smt.Solver.incremental_result, [ `Unsat | `Unknown ]) result
(** Replay a cached verdict as if [solve_negation ~canonical:true t i]
    had produced it: the cached model's bindings for the closure
    variables are merged over this run's concrete model, and [changed]
    is recomputed against it. Sound only for verdicts obtained from a
    {e canonical} solve — those are pure functions of the key, so the
    replay equals what a live solve in this run would return even when
    the runs' concrete models differ. Never returns [Error `Unknown]
    (unknowns are not cached). *)
