module Iset = Set.Make (Int)
module Sset = Set.Make (String)

type t = { mutable branches : Iset.t; mutable funcs : Sset.t }

let create () = { branches = Iset.empty; funcs = Sset.empty }
let add_branch t b = t.branches <- Iset.add b t.branches
let add_func t fn = t.funcs <- Sset.add fn t.funcs
let mem_branch t b = Iset.mem b t.branches
let covered_branches t = Iset.cardinal t.branches
let branch_list t = Iset.elements t.branches
let encountered t fn = Sset.mem fn t.funcs
let encountered_functions t = Sset.elements t.funcs

let absorb ~into t =
  into.branches <- Iset.union into.branches t.branches;
  into.funcs <- Sset.union into.funcs t.funcs

let copy t = { branches = t.branches; funcs = t.funcs }

let report t =
  (* Canonical, timing-free rendering: sets print in sorted element
     order, so equal coverage yields byte-equal text. *)
  let buf = Buffer.create 256 in
  Buffer.add_string buf
    (Printf.sprintf "branches %d:" (Iset.cardinal t.branches));
  Iset.iter (fun b -> Buffer.add_string buf (Printf.sprintf " %d" b)) t.branches;
  Buffer.add_char buf '\n';
  Buffer.add_string buf
    (Printf.sprintf "functions %d:" (Sset.cardinal t.funcs));
  Sset.iter (fun fn -> Buffer.add_char buf ' '; Buffer.add_string buf fn) t.funcs;
  Buffer.add_char buf '\n';
  Buffer.contents buf
