(** Communication traces: a stream of scheduler events and a text
    timeline renderer.

    Pass {!collector} as [on_event] to {!Scheduler.run} to capture what
    the simulated communication actually did — useful when debugging a
    target, and the backbone of `compi-cli exec --trace`. *)

type event =
  | Send of { from_rank : int; to_local : int; comm : int; tag : int }
      (** a send was posted ([from_rank] global, [to_local] in [comm]) *)
  | Recv_matched of { rank : int; src_local : int; tag : int; comm : int }
      (** a blocking receive completed on global [rank] *)
  | Matched of { src : int; dst : int; comm : int; tag : int }
      (** a point-to-point message was delivered; both ranks global —
          the communication-matrix observable *)
  | Collective of { comm : int; signature : string; ranks : int list }
      (** a collective completed with the listed global participants *)
  | Blocked of { rank : int; comm : int; kind : string; peer : int }
      (** global [rank] blocked in ["recv"], ["wait"], or a collective;
          [peer] is the global rank it waits on, -1 when unknown *)
  | Finished of { rank : int; ok : bool }
  | Deadlock of { ranks : int list }
  | Witness of { rank : int; comm : int; kind : string; peer : int }
      (** one wait-for edge recorded when the scheduler proves a
          deadlock — the set of witness edges names the cycle *)
  | Schedule_choice of {
      rank : int;
      comm : int;
      tag : int;
      chosen : int;
      alts : int list;
      point : int;
    }
      (** schedule mode only: the [point]-th wildcard choice point of
          the run delivered the message from local source [chosen] (tag
          [tag]) to global [rank]; [alts] is the sorted set of eligible
          sources the scheduler could have picked instead *)

val pp_event : Format.formatter -> event -> unit

type t

val create : unit -> t
val collector : t -> event -> unit
val events : t -> event list
(** In emission order. *)

val length : t -> int

val summary : t -> (string * int) list
(** Event counts by kind, alphabetical. *)

val timeline : ?limit:int -> t -> string
(** One line per event, capped at [limit] (default 200). When the cap
    truncates, the last line states how many events were elided and the
    full count. *)

val to_obs_event : event -> Obs.Event.t
(** The {!Obs.Event} this trace event corresponds to — the same value
    the scheduler emits to the live sink, so captured and live traces
    share one vocabulary (and one replay path). *)

val to_jsonl : t -> string
(** One JSON object per line in the {!Obs.Event} wire format plus a
    [seq] field (emission index) — each line parses with
    [Obs.Event.of_json], so `compi-cli replay`/`report` consume these
    traces exactly like [--trace-events] ones. *)
