(** Communication traces: a stream of scheduler events and a text
    timeline renderer.

    Pass {!collector} as [on_event] to {!Scheduler.run} to capture what
    the simulated communication actually did — useful when debugging a
    target, and the backbone of `compi-cli exec --trace`. *)

type event =
  | Send of { from_rank : int; to_local : int; comm : int; tag : int }
  | Recv_matched of { rank : int; src_local : int; tag : int; comm : int }
  | Collective of { comm : int; signature : string; participants : int }
  | Finished of { rank : int; ok : bool }
  | Deadlock of { ranks : int list }

val pp_event : Format.formatter -> event -> unit

type t

val create : unit -> t
val collector : t -> event -> unit
val events : t -> event list
(** In emission order. *)

val length : t -> int

val summary : t -> (string * int) list
(** Event counts by kind, alphabetical. *)

val timeline : ?limit:int -> t -> string
(** One line per event, capped at [limit] (default 200). When the cap
    truncates, the last line states how many events were elided and the
    full count. *)

val to_jsonl : t -> string
(** One JSON object per line ([{"ev":…,"seq":…,…}]), built on the
    {!Obs.Json} emitter — machine-readable counterpart of {!timeline}. *)
