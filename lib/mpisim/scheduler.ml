open Minic

exception Platform_limit of int

let default_max_procs = 512

type _ Effect.t += Mpi_call : Mpi_iface.request -> Mpi_iface.reply Effect.t

let mpi_handler : Mpi_iface.handler = fun req -> Effect.perform (Mpi_call req)

type step =
  | Done of (unit, Fault.t) result
  | Paused of Mpi_iface.request * (Mpi_iface.reply, step) Effect.Deep.continuation

let start_fiber body =
  Effect.Deep.match_with body ()
    {
      Effect.Deep.retc = (fun r -> Done r);
      exnc =
        (function
        (* a fault injected while the fiber was blocked (deadlock, bad
           request) may escape bodies that do not run under Interp.run *)
        | Fault.Fault f -> Done (Error f)
        | e -> raise e);
      effc =
        (fun (type a) (eff : a Effect.t) ->
          match eff with
          | Mpi_call req ->
            Some
              (fun (k : (a, step) Effect.Deep.continuation) -> Paused (req, k))
          | _ -> None);
    }

type leaked_message = { leak_comm : int; leak_dest : int; leak_tag : int }

type run_result = {
  outcomes : (unit, Fault.t) result array;
  deadlocked : int list;
  registry : Rankmap.t;
  leaked : leaked_message list;
      (* messages still sitting in mailboxes after every process
         finished: sends that no receive ever consumed — the message-leak
         diagnostic of MPI correctness checkers (UMPIRE/MARMOT family) *)
  choices : Schedule.choice list;
      (* wildcard match decisions taken, in service order; empty unless
         the run executed in schedule mode *)
}

(* A message sitting in a mailbox. [src_global] is remembered so the
   delivery event can name the sender globally however late the match
   happens. *)
type message = { src_local : int; src_global : int; tag : int; data : Value.t }

(* A receive that could not be matched yet. *)
type pending_recv = {
  recv_rank : int;  (* global *)
  src_filter : int option;
  tag_filter : int option;
  recv_k : (Mpi_iface.reply, step) Effect.Deep.continuation;
}

(* Non-blocking request state, per owning rank. Isends complete eagerly
   (the simulator buffers sends), so only receives can be outstanding. *)
type nb_status =
  | Nb_send_done
  | Nb_recv_posted of { comm : int; local : int; src_filter : int option; tag_filter : int option }
  | Nb_recv_done of Value.t

type nb_table = { mutable next_handle : int; statuses : (int, nb_status) Hashtbl.t }

(* A fiber blocked in MPI_Wait. *)
type pending_wait = {
  wait_rank : int;
  wait_handle : int;
  wait_k : (Mpi_iface.reply, step) Effect.Deep.continuation;
}

(* One collective in progress on a communicator. *)
type arrival = {
  arr_local : int;
  arr_rank : int;  (* global *)
  arr_req : Mpi_iface.request;
  arr_k : (Mpi_iface.reply, step) Effect.Deep.continuation;
}

type site = { signature : string; mutable arrivals : arrival list }

(* Collectives are compatible only if their signature (operation plus
   root/op parameters) agrees across participants. *)
let op_name = function
  | Mpi_iface.Rsum -> "sum"
  | Mpi_iface.Rprod -> "prod"
  | Mpi_iface.Rmax -> "max"
  | Mpi_iface.Rmin -> "min"

let coll_signature (req : Mpi_iface.request) =
  match req with
  | Mpi_iface.Barrier _ -> Some "barrier"
  | Mpi_iface.Split _ -> Some "split"
  | Mpi_iface.Bcast { root; _ } -> Some (Printf.sprintf "bcast:%d" root)
  | Mpi_iface.Reduce { op; root; _ } ->
    Some (Printf.sprintf "reduce:%s:%d" (op_name op) root)
  | Mpi_iface.Allreduce { op; _ } -> Some (Printf.sprintf "allreduce:%s" (op_name op))
  | Mpi_iface.Gather { root; _ } -> Some (Printf.sprintf "gather:%d" root)
  | Mpi_iface.Scatter { root; _ } -> Some (Printf.sprintf "scatter:%d" root)
  | Mpi_iface.Allgather _ -> Some "allgather"
  | Mpi_iface.Alltoall _ -> Some "alltoall"
  | Mpi_iface.Rank _ | Mpi_iface.Size _ | Mpi_iface.Send _ | Mpi_iface.Recv _
  | Mpi_iface.Isend _ | Mpi_iface.Irecv _ | Mpi_iface.Wait _ ->
    None

let mpi_fault message = Fault.Fault (Fault.Mpi_error { message; func = "<mpi>" })

(* --- telemetry ---------------------------------------------------- *)

let m_runs = Obs.Metrics.counter "sched.runs"
let m_messages = Obs.Metrics.counter "sched.messages"
let m_collectives = Obs.Metrics.counter "sched.collectives"
let m_deadlocks = Obs.Metrics.counter "sched.deadlocks"
let m_msgs_per_run = Obs.Metrics.histogram "sched.messages_per_run"

type sched = {
  nprocs : int;
  registry : Rankmap.t;
  results : (unit, Fault.t) result option array;
  runq : (int * (unit -> step)) Queue.t;
  mailboxes : (int * int, message Queue.t) Hashtbl.t;  (* (comm, dest local) *)
  pending_recvs : (int * int, pending_recv) Hashtbl.t;  (* (comm, local) *)
  sites : (int, site) Hashtbl.t;  (* per communicator *)
  nb_tables : nb_table array;  (* per global rank *)
  pending_waits : (int, pending_wait) Hashtbl.t;  (* per waiting rank *)
  on_event : Trace.event -> unit;
  mutable deadlocked : int list;
  mutable msg_count : int;
  lazy_wildcards : bool;
      (* schedule mode: wildcard-source receives never match eagerly;
         they are served one per quiescent round by [serve_choice] *)
  mutable presc : Schedule.prescription;  (* unconsumed prescription tail *)
  mutable choices_rev : Schedule.choice list;
  mutable choice_points : int;
}

(* Every observable scheduler occurrence goes through here: the caller's
   collector and the live telemetry sink see the same event, rendered by
   the one [Trace.to_obs_event] vocabulary bridge. *)
let notify s ev =
  s.on_event ev;
  if Obs.Sink.active () then Obs.Sink.emit (Trace.to_obs_event ev)

let resume s rank k reply = Queue.push (rank, fun () -> Effect.Deep.continue k reply) s.runq

let crash s rank k message =
  Queue.push (rank, fun () -> Effect.Deep.discontinue k (mpi_fault message)) s.runq

let mailbox s key =
  match Hashtbl.find_opt s.mailboxes key with
  | Some q -> q
  | None ->
    let q = Queue.create () in
    Hashtbl.replace s.mailboxes key q;
    q

let matches ~src_filter ~tag_filter (m : message) =
  (match src_filter with Some src -> src = m.src_local | None -> true)
  && match tag_filter with Some tag -> tag = m.tag | None -> true

(* Pull the first matching message out of a mailbox, preserving order. *)
let take_matching q ~src_filter ~tag_filter =
  let rec go acc =
    if Queue.is_empty q then begin
      List.iter (fun m -> Queue.push m q) (List.rev acc);
      None
    end
    else
      let m = Queue.pop q in
      if matches ~src_filter ~tag_filter m then begin
        (* put the skipped prefix back in front *)
        let rest = List.of_seq (Queue.to_seq q) in
        Queue.clear q;
        List.iter (fun x -> Queue.push x q) (List.rev_append acc rest);
        Some m
      end
      else go (m :: acc)
  in
  go []

(* ------------------------------------------------------------------ *)
(* Collective completion                                               *)
(* ------------------------------------------------------------------ *)

let payload_of_arrival (a : arrival) =
  match a.arr_req with
  | Mpi_iface.Reduce { data; _ }
  | Mpi_iface.Allreduce { data; _ }
  | Mpi_iface.Gather { data; _ }
  | Mpi_iface.Allgather { data; _ }
  | Mpi_iface.Alltoall { data; _ } ->
    Some data
  | Mpi_iface.Bcast { data; _ } -> data
  | Mpi_iface.Scatter { data; _ } -> data
  | Mpi_iface.Barrier _ | Mpi_iface.Split _ | Mpi_iface.Rank _ | Mpi_iface.Size _
  | Mpi_iface.Send _ | Mpi_iface.Recv _ | Mpi_iface.Isend _ | Mpi_iface.Irecv _
  | Mpi_iface.Wait _ ->
    None

let crash_all s arrivals message =
  List.iter (fun a -> crash s a.arr_rank a.arr_k message) arrivals

let complete_collective s comm (site : site) =
  Obs.Metrics.incr m_collectives;
  let arrivals = List.sort (fun a b -> Int.compare a.arr_local b.arr_local) site.arrivals in
  notify s
    (Trace.Collective
       {
         comm;
         signature = site.signature;
         ranks = List.map (fun a -> a.arr_rank) arrivals;
       });
  let payloads () = List.map (fun a -> Option.get (payload_of_arrival a)) arrivals in
  let reply_each f = List.iter (fun a -> resume s a.arr_rank a.arr_k (f a)) arrivals in
  let reply_root root make_root_reply =
    List.iter
      (fun a ->
        if a.arr_local = root then resume s a.arr_rank a.arr_k (make_root_reply ())
        else resume s a.arr_rank a.arr_k Mpi_iface.Rnone)
      arrivals
  in
  let first = List.hd arrivals in
  match first.arr_req with
  | Mpi_iface.Barrier _ -> reply_each (fun _ -> Mpi_iface.Runit)
  | Mpi_iface.Bcast { root; _ } -> (
    match List.find_opt (fun a -> a.arr_local = root) arrivals with
    | None -> crash_all s arrivals "bcast root outside communicator"
    | Some root_a -> (
      match payload_of_arrival root_a with
      | Some v -> reply_each (fun _ -> Mpi_iface.Rvalue (Value.copy v))
      | None -> crash_all s arrivals "bcast root supplied no data"))
  | Mpi_iface.Reduce { op; root; _ } -> (
    match Collectives.reduce op (payloads ()) with
    | Ok v ->
      if List.exists (fun a -> a.arr_local = root) arrivals then
        reply_root root (fun () -> Mpi_iface.Rvalue v)
      else crash_all s arrivals "reduce root outside communicator"
    | Error e -> crash_all s arrivals e)
  | Mpi_iface.Allreduce { op; _ } -> (
    match Collectives.reduce op (payloads ()) with
    | Ok v -> reply_each (fun _ -> Mpi_iface.Rvalue (Value.copy v))
    | Error e -> crash_all s arrivals e)
  | Mpi_iface.Gather { root; _ } -> (
    match Collectives.gather (payloads ()) with
    | Ok v ->
      if List.exists (fun a -> a.arr_local = root) arrivals then
        reply_root root (fun () -> Mpi_iface.Rvalue v)
      else crash_all s arrivals "gather root outside communicator"
    | Error e -> crash_all s arrivals e)
  | Mpi_iface.Allgather _ -> (
    match Collectives.gather (payloads ()) with
    | Ok v -> reply_each (fun _ -> Mpi_iface.Rvalue (Value.copy v))
    | Error e -> crash_all s arrivals e)
  | Mpi_iface.Scatter { root; _ } -> (
    match List.find_opt (fun a -> a.arr_local = root) arrivals with
    | None -> crash_all s arrivals "scatter root outside communicator"
    | Some root_a -> (
      match payload_of_arrival root_a with
      | None -> crash_all s arrivals "scatter root supplied no data"
      | Some src -> (
        match Collectives.scatter src (List.length arrivals) with
        | Ok parts ->
          List.iter2
            (fun a part -> resume s a.arr_rank a.arr_k (Mpi_iface.Rvalue part))
            arrivals parts
        | Error e -> crash_all s arrivals e)))
  | Mpi_iface.Alltoall _ -> (
    match Collectives.alltoall (payloads ()) with
    | Ok parts ->
      List.iter2
        (fun a part -> resume s a.arr_rank a.arr_k (Mpi_iface.Rvalue part))
        arrivals parts
    | Error e -> crash_all s arrivals e)
  | Mpi_iface.Split _ ->
    let decisions =
      List.map
        (fun a ->
          match a.arr_req with
          | Mpi_iface.Split { color; key; _ } -> (a.arr_rank, color, key)
          | _ -> assert false)
        arrivals
    in
    let handles = Rankmap.split s.registry ~parent:comm decisions in
    List.iter
      (fun a ->
        let handle = List.assoc a.arr_rank handles in
        resume s a.arr_rank a.arr_k (Mpi_iface.Rint handle))
      arrivals
  | Mpi_iface.Rank _ | Mpi_iface.Size _ | Mpi_iface.Send _ | Mpi_iface.Recv _
  | Mpi_iface.Isend _ | Mpi_iface.Irecv _ | Mpi_iface.Wait _ ->
    assert false

(* ------------------------------------------------------------------ *)
(* Non-blocking request bookkeeping                                    *)
(* ------------------------------------------------------------------ *)

let fresh_handle table status =
  let h = table.next_handle in
  table.next_handle <- h + 1;
  Hashtbl.replace table.statuses h status;
  h

(* Complete a posted receive on [rank]; wake its waiter if any. *)
let complete_posted s ~rank ~handle ~data =
  Hashtbl.replace s.nb_tables.(rank).statuses handle (Nb_recv_done data);
  match Hashtbl.find_opt s.pending_waits rank with
  | Some w when w.wait_handle = handle ->
    Hashtbl.remove s.pending_waits rank;
    Hashtbl.remove s.nb_tables.(rank).statuses handle;
    resume s rank w.wait_k (Mpi_iface.Rvalue data)
  | Some _ | None -> ()

(* Earliest matching posted receive of the destination, if any. *)
let find_posted s ~dest_rank ~comm ~dest_local (m : message) =
  let best = ref None in
  Hashtbl.iter
    (fun handle status ->
      match status with
      | Nb_recv_posted p
        when p.comm = comm && p.local = dest_local
             && matches ~src_filter:p.src_filter ~tag_filter:p.tag_filter m -> (
        match !best with
        | Some h when h <= handle -> ()
        | Some _ | None -> best := Some handle)
      | Nb_recv_posted _ | Nb_send_done | Nb_recv_done _ -> ())
    s.nb_tables.(dest_rank).statuses;
  !best

(* ------------------------------------------------------------------ *)
(* Request dispatch                                                    *)
(* ------------------------------------------------------------------ *)

let comm_of_request (req : Mpi_iface.request) =
  match req with
  | Mpi_iface.Rank comm
  | Mpi_iface.Size comm
  | Mpi_iface.Barrier comm
  | Mpi_iface.Split { comm; _ }
  | Mpi_iface.Send { comm; _ }
  | Mpi_iface.Recv { comm; _ }
  | Mpi_iface.Isend { comm; _ }
  | Mpi_iface.Irecv { comm; _ }
  | Mpi_iface.Bcast { comm; _ }
  | Mpi_iface.Reduce { comm; _ }
  | Mpi_iface.Allreduce { comm; _ }
  | Mpi_iface.Gather { comm; _ }
  | Mpi_iface.Scatter { comm; _ }
  | Mpi_iface.Allgather { comm; _ }
  | Mpi_iface.Alltoall { comm; _ } ->
    comm
  | Mpi_iface.Wait _ -> Mpi_iface.world

let handle_request s rank req k =
  let comm = comm_of_request req in
  match Rankmap.local_rank s.registry ~comm ~global:rank with
  | None ->
    crash s rank k
      (Printf.sprintf "%s on communicator %d which rank %d does not belong to"
         (Mpi_iface.request_name req) comm rank)
  | Some my_local -> (
    match req with
    | Mpi_iface.Rank _ -> resume s rank k (Mpi_iface.Rint my_local)
    | Mpi_iface.Size _ ->
      resume s rank k
        (Mpi_iface.Rint (Option.get (Rankmap.size s.registry ~comm)))
    | Mpi_iface.Send { dest; tag; data; _ } | Mpi_iface.Isend { dest; tag; data; _ } -> (
      let size = Option.get (Rankmap.size s.registry ~comm) in
      if dest < 0 || dest >= size then
        crash s rank k (Printf.sprintf "send to invalid rank %d (size %d)" dest size)
      else begin
        let msg = { src_local = my_local; src_global = rank; tag; data } in
        s.msg_count <- s.msg_count + 1;
        Obs.Metrics.incr m_messages;
        notify s (Trace.Send { from_rank = rank; to_local = dest; comm; tag });
        (* matching priority: a blocked Recv first, then posted Irecvs in
           post order, then the mailbox. (Strict MPI interleaves blocked
           and posted receives by posting time; a blocked receive and an
           overlapping outstanding Irecv on one process is already
           ambiguous code, so the simpler rule is acceptable here.) *)
        (match Hashtbl.find_opt s.pending_recvs (comm, dest) with
        | Some pr
          when matches ~src_filter:pr.src_filter ~tag_filter:pr.tag_filter msg
               && not (s.lazy_wildcards && pr.src_filter = None) ->
          Hashtbl.remove s.pending_recvs (comm, dest);
          notify s
            (Trace.Recv_matched { rank = pr.recv_rank; src_local = my_local; tag; comm });
          notify s (Trace.Matched { src = rank; dst = pr.recv_rank; comm; tag });
          resume s pr.recv_rank pr.recv_k (Mpi_iface.Rvalue data)
        | Some _ | None -> (
          let dest_rank = Option.get (Rankmap.global_of_local s.registry ~comm ~local:dest) in
          match find_posted s ~dest_rank ~comm ~dest_local:dest msg with
          | Some handle ->
            notify s (Trace.Matched { src = rank; dst = dest_rank; comm; tag });
            complete_posted s ~rank:dest_rank ~handle ~data
          | None -> Queue.push msg (mailbox s (comm, dest))));
        match req with
        | Mpi_iface.Isend _ ->
          let handle = fresh_handle s.nb_tables.(rank) Nb_send_done in
          resume s rank k (Mpi_iface.Rint handle)
        | _ -> resume s rank k Mpi_iface.Runit
      end)
    | Mpi_iface.Irecv { src; tag; _ } -> (
      let table = s.nb_tables.(rank) in
      match take_matching (mailbox s (comm, my_local)) ~src_filter:src ~tag_filter:tag with
      | Some m ->
        notify s (Trace.Matched { src = m.src_global; dst = rank; comm; tag = m.tag });
        let handle = fresh_handle table (Nb_recv_done m.data) in
        resume s rank k (Mpi_iface.Rint handle)
      | None ->
        let handle =
          fresh_handle table
            (Nb_recv_posted { comm; local = my_local; src_filter = src; tag_filter = tag })
        in
        resume s rank k (Mpi_iface.Rint handle))
    | Mpi_iface.Wait handle -> (
      let table = s.nb_tables.(rank) in
      match Hashtbl.find_opt table.statuses handle with
      | None -> crash s rank k (Printf.sprintf "wait on unknown request %d" handle)
      | Some Nb_send_done ->
        Hashtbl.remove table.statuses handle;
        resume s rank k Mpi_iface.Runit
      | Some (Nb_recv_done data) ->
        Hashtbl.remove table.statuses handle;
        resume s rank k (Mpi_iface.Rvalue data)
      | Some (Nb_recv_posted p) ->
        if Hashtbl.mem s.pending_waits rank then
          crash s rank k "second simultaneous wait on one process"
        else begin
          let peer =
            match p.src_filter with
            | Some sl ->
              Option.value
                (Rankmap.global_of_local s.registry ~comm:p.comm ~local:sl)
                ~default:(-1)
            | None -> -1
          in
          notify s (Trace.Blocked { rank; comm = p.comm; kind = "wait"; peer });
          Hashtbl.replace s.pending_waits rank
            { wait_rank = rank; wait_handle = handle; wait_k = k }
        end)
    | Mpi_iface.Recv { src; tag; _ } -> (
      (match src with
      | Some sl ->
        let size = Option.get (Rankmap.size s.registry ~comm) in
        if sl < 0 || sl >= size then
          crash s rank k (Printf.sprintf "recv from invalid rank %d (size %d)" sl size)
      | None -> ());
      let eager =
        (* schedule mode defers every wildcard-source match to the
           quiescence server, even when the mailbox could satisfy it now *)
        if s.lazy_wildcards && src = None then None
        else take_matching (mailbox s (comm, my_local)) ~src_filter:src ~tag_filter:tag
      in
      match eager with
      | Some m ->
        notify s (Trace.Recv_matched { rank; src_local = m.src_local; tag = m.tag; comm });
        notify s (Trace.Matched { src = m.src_global; dst = rank; comm; tag = m.tag });
        resume s rank k (Mpi_iface.Rvalue m.data)
      | None ->
        if Hashtbl.mem s.pending_recvs (comm, my_local) then
          crash s rank k "second simultaneous recv on one process"
        else begin
          let peer =
            match src with
            | Some sl ->
              Option.value (Rankmap.global_of_local s.registry ~comm ~local:sl)
                ~default:(-1)
            | None -> -1
          in
          notify s (Trace.Blocked { rank; comm; kind = "recv"; peer });
          Hashtbl.replace s.pending_recvs (comm, my_local)
            { recv_rank = rank; src_filter = src; tag_filter = tag; recv_k = k }
        end)
    | Mpi_iface.Barrier _ | Mpi_iface.Split _ | Mpi_iface.Bcast _ | Mpi_iface.Reduce _
    | Mpi_iface.Allreduce _ | Mpi_iface.Gather _ | Mpi_iface.Scatter _
    | Mpi_iface.Allgather _ | Mpi_iface.Alltoall _ -> (
      let signature = Option.get (coll_signature req) in
      let arrival = { arr_local = my_local; arr_rank = rank; arr_req = req; arr_k = k } in
      let size = Option.get (Rankmap.size s.registry ~comm) in
      match Hashtbl.find_opt s.sites comm with
      | Some site when site.signature <> signature ->
        crash s rank k
          (Printf.sprintf "collective mismatch on communicator %d: %s vs %s" comm
             site.signature signature)
      | Some site ->
        site.arrivals <- arrival :: site.arrivals;
        if List.length site.arrivals = size then begin
          Hashtbl.remove s.sites comm;
          complete_collective s comm site
        end
        else notify s (Trace.Blocked { rank; comm; kind = "collective"; peer = -1 })
      | None ->
        if size = 1 then
          complete_collective s comm { signature; arrivals = [ arrival ] }
        else begin
          notify s (Trace.Blocked { rank; comm; kind = "collective"; peer = -1 });
          Hashtbl.replace s.sites comm { signature; arrivals = [ arrival ] }
        end))

(* ------------------------------------------------------------------ *)
(* Main loop                                                           *)
(* ------------------------------------------------------------------ *)

let drain s =
  while not (Queue.is_empty s.runq) do
    let rank, thunk = Queue.pop s.runq in
    match thunk () with
    | Done r ->
      notify s (Trace.Finished { rank; ok = Result.is_ok r });
      s.results.(rank) <- Some r
    | Paused (req, k) -> handle_request s rank req k
  done

(* Schedule mode: serve one wildcard match decision at quiescence.

   Among all blocked wildcard-source receives whose mailbox holds at
   least one eligible message, the one on the lowest global rank is
   served; the prescription picks the source (falling back to the first
   eligible message in arrival order when exhausted or infeasible), and
   the decision is recorded and emitted. Serving exactly one choice per
   quiescent round gives a canonical service order, so interleavings of
   independent deliveries collapse to a single representative and only
   the per-point source pick forks the schedule space. Returns false
   when no wildcard receive is serviceable — the caller then falls
   through to deadlock detection exactly as in eager mode. *)
let serve_choice s =
  s.lazy_wildcards
  &&
  let best = ref None in
  Hashtbl.iter
    (fun (comm, local) pr ->
      if pr.src_filter = None then begin
        let sources =
          Queue.fold
            (fun acc (m : message) ->
              if
                matches ~src_filter:None ~tag_filter:pr.tag_filter m
                && not (List.mem m.src_local acc)
              then m.src_local :: acc
              else acc)
            []
            (mailbox s (comm, local))
        in
        if sources <> [] then
          match !best with
          | Some (r, _, _, _, _) when r <= pr.recv_rank -> ()
          | Some _ | None ->
            best := Some (pr.recv_rank, comm, local, pr, List.sort Int.compare sources)
      end)
    s.pending_recvs;
  match !best with
  | None -> false
  | Some (rank, comm, local, pr, alts) ->
    let q = mailbox s (comm, local) in
    let default () =
      let found = ref None in
      Queue.iter
        (fun (m : message) ->
          if !found = None && matches ~src_filter:None ~tag_filter:pr.tag_filter m then
            found := Some m.src_local)
        q;
      Option.get !found
    in
    let chosen =
      match s.presc with
      | [] -> default ()
      | p :: rest ->
        s.presc <- rest;
        if List.mem p alts then p else default ()
    in
    let m =
      Option.get (take_matching q ~src_filter:(Some chosen) ~tag_filter:pr.tag_filter)
    in
    Hashtbl.remove s.pending_recvs (comm, local);
    let point = s.choice_points in
    s.choice_points <- point + 1;
    s.choices_rev <-
      {
        Schedule.ch_rank = rank;
        ch_comm = comm;
        ch_tag = m.tag;
        ch_chosen = chosen;
        ch_alts = alts;
      }
      :: s.choices_rev;
    notify s (Trace.Schedule_choice { rank; comm; tag = m.tag; chosen; alts; point });
    notify s (Trace.Recv_matched { rank; src_local = m.src_local; tag = m.tag; comm });
    notify s (Trace.Matched { src = m.src_global; dst = rank; comm; tag = m.tag });
    resume s rank pr.recv_k (Mpi_iface.Rvalue m.data);
    true

(* Terminate every blocked fiber with a deadlock fault and record it,
   first emitting one wait-for witness edge per blocked dependency so
   the trace names the cycle, not just the stuck ranks. *)
let break_deadlock s =
  let blocked = ref [] in
  let edges = ref [] in
  let edge ~rank ~comm ~kind ~peer = edges := (rank, kind, peer, comm) :: !edges in
  let global_peer ~comm = function
    | Some sl ->
      Option.value (Rankmap.global_of_local s.registry ~comm ~local:sl) ~default:(-1)
    | None -> -1
  in
  Hashtbl.iter
    (fun (comm, _) pr ->
      edge ~rank:pr.recv_rank ~comm ~kind:"recv" ~peer:(global_peer ~comm pr.src_filter);
      blocked := (pr.recv_rank, pr.recv_k) :: !blocked)
    s.pending_recvs;
  Hashtbl.reset s.pending_recvs;
  Hashtbl.iter
    (fun _ w ->
      (match Hashtbl.find_opt s.nb_tables.(w.wait_rank).statuses w.wait_handle with
      | Some (Nb_recv_posted p) ->
        edge ~rank:w.wait_rank ~comm:p.comm ~kind:"wait"
          ~peer:(global_peer ~comm:p.comm p.src_filter)
      | Some Nb_send_done | Some (Nb_recv_done _) | None ->
        edge ~rank:w.wait_rank ~comm:Mpi_iface.world ~kind:"wait" ~peer:(-1));
      blocked := (w.wait_rank, w.wait_k) :: !blocked)
    s.pending_waits;
  Hashtbl.reset s.pending_waits;
  Hashtbl.iter
    (fun comm site ->
      let arrived = List.map (fun a -> a.arr_rank) site.arrivals in
      let missing =
        match Rankmap.members s.registry ~comm with
        | Some members ->
          Array.to_list members |> List.filter (fun r -> not (List.mem r arrived))
        | None -> []
      in
      let kind = "collective:" ^ site.signature in
      List.iter
        (fun a ->
          (* each arrived rank waits on every member still missing *)
          (match missing with
          | [] -> edge ~rank:a.arr_rank ~comm ~kind ~peer:(-1)
          | missing -> List.iter (fun peer -> edge ~rank:a.arr_rank ~comm ~kind ~peer) missing);
          blocked := (a.arr_rank, a.arr_k) :: !blocked)
        site.arrivals)
    s.sites;
  Hashtbl.reset s.sites;
  if !blocked <> [] then begin
    Obs.Metrics.incr m_deadlocks;
    List.iter
      (fun (rank, kind, peer, comm) -> notify s (Trace.Witness { rank; comm; kind; peer }))
      (List.sort compare !edges);
    notify s (Trace.Deadlock { ranks = List.map fst !blocked })
  end;
  List.iter
    (fun (rank, k) ->
      s.deadlocked <- rank :: s.deadlocked;
      crash s rank k "deadlock: all unfinished processes are blocked")
    !blocked

let run ?(max_procs = default_max_procs) ?(on_event = fun (_ : Trace.event) -> ())
    ?schedule ~nprocs body =
  if nprocs < 1 || nprocs > max_procs then raise (Platform_limit nprocs);
  let s =
    {
      on_event;
      nprocs;
      registry = Rankmap.create ~nprocs;
      results = Array.make nprocs None;
      runq = Queue.create ();
      mailboxes = Hashtbl.create 16;
      pending_recvs = Hashtbl.create 16;
      sites = Hashtbl.create 8;
      nb_tables =
        Array.init nprocs (fun _ -> { next_handle = 1; statuses = Hashtbl.create 8 });
      pending_waits = Hashtbl.create 8;
      deadlocked = [];
      msg_count = 0;
      lazy_wildcards = schedule <> None;
      presc = Option.value schedule ~default:[];
      choices_rev = [];
      choice_points = 0;
    }
  in
  Obs.Metrics.incr m_runs;
  for rank = 0 to nprocs - 1 do
    Queue.push (rank, fun () -> start_fiber (fun () -> body ~rank ~mpi:mpi_handler)) s.runq
  done;
  let rec settle () =
    drain s;
    if Array.exists Option.is_none s.results then
      if serve_choice s then settle ()
      else begin
        break_deadlock s;
        if Queue.is_empty s.runq then
          (* blocked set was empty yet fibers unfinished: impossible unless
             a fiber was lost; fail loudly rather than spin *)
          invalid_arg "Scheduler.run: stuck with no blocked fibers"
        else settle ()
      end
  in
  Obs.Prof.time "schedule" settle;
  Obs.Metrics.observe_int m_msgs_per_run s.msg_count;
  let leaked =
    Hashtbl.fold
      (fun (comm, dest) q acc ->
        Queue.fold
          (fun acc (m : message) ->
            { leak_comm = comm; leak_dest = dest; leak_tag = m.tag } :: acc)
          acc q)
      s.mailboxes []
  in
  {
    outcomes = Array.map Option.get s.results;
    deadlocked = List.sort Int.compare s.deadlocked;
    registry = s.registry;
    leaked;
    choices = List.rev s.choices_rev;
  }
