(* Schedule prescriptions for wildcard receives.

   A run of a program with MPI_ANY_SOURCE receives is not a single
   behaviour but a tree of them: each time a wildcard receive could
   match messages from more than one sender, the scheduler must pick
   one. A [prescription] pins those picks — entry k names the local
   source rank to deliver at the k-th wildcard match point — so a
   schedule is replayable exactly like a test case, and a bug becomes
   an (input, schedule) pair.

   The enumeration below is the schedule-space analogue of constraint
   negation: from one executed run it derives every sibling schedule
   obtained by flipping a single recorded choice, restricted to choice
   points at or beyond the run's prescribed prefix (points inside the
   prefix were already forked when an ancestor run was enumerated).
   Partial-order reduction falls out of two structural facts rather
   than an explicit independence check:

   - choice points only exist where a wildcard receive has more than
     one eligible sender, so independent (single-candidate) matches
     never fork;
   - the scheduler serves choices in a canonical order (lowest blocked
     receiver first, one per quiescent round), so interleavings of
     *independent* deliveries collapse to one representative and only
     genuinely conflicting matches multiply. *)

type prescription = int list

(* One recorded wildcard match decision. [ch_alts] is the sorted set of
   local source ranks that were eligible when the choice was served;
   [ch_chosen] is the one delivered (always a member of [ch_alts]). *)
type choice = {
  ch_rank : int;  (* global receiving rank *)
  ch_comm : int;
  ch_tag : int;  (* tag of the delivered message *)
  ch_chosen : int;  (* local source rank delivered *)
  ch_alts : int list;
}

let empty : prescription = []

let to_string = function
  | [] -> "-"
  | p -> String.concat "." (List.map string_of_int p)

let of_string = function
  | "-" | "" -> []
  | s -> List.map int_of_string (String.split_on_char '.' s)

(* An alternative prescription derived from a recorded run. *)
type alt = {
  alt_prescription : prescription;
  alt_point : int;  (* index of the flipped choice point *)
  alt_source : int;  (* the source delivered instead *)
}

let alternatives ~depth ~prefix_len (choices : choice list) : alt list =
  let arr = Array.of_list choices in
  let alts = ref [] in
  let bound = min (Array.length arr) depth in
  for point = bound - 1 downto max 0 prefix_len do
    let c = arr.(point) in
    let keep = List.init point (fun k -> arr.(k).ch_chosen) in
    List.iter
      (fun src ->
        if src <> c.ch_chosen then
          alts :=
            { alt_prescription = keep @ [ src ]; alt_point = point; alt_source = src }
            :: !alts)
      (List.rev c.ch_alts)
  done;
  !alts

(* Enumeration accounting for one run, for the schedule_enum event:
   how many choice points were examined, how many forks emitted, and
   how many alternatives the depth budget or prefix pruned. *)
type stats = { st_points : int; st_emitted : int; st_pruned : int }

let stats ~depth ~prefix_len (choices : choice list) =
  let n = List.length choices in
  let total_alts =
    List.fold_left (fun acc c -> acc + List.length c.ch_alts - 1) 0 choices
  in
  let emitted =
    List.length (alternatives ~depth ~prefix_len choices)
  in
  { st_points = n; st_emitted = emitted; st_pruned = total_alts - emitted }
