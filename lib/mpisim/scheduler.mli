(** Deterministic cooperative MPI scheduler.

    Each simulated process runs as an OCaml-5 effect fiber; every MPI
    request suspends the fiber and is matched here. Point-to-point sends
    are eager (buffered); receives and collectives block until matched.
    Scheduling is FIFO and fully deterministic, which the test suite
    relies on.

    A run that reaches a state where unfinished processes are all blocked
    is declared deadlocked: the blocked processes are terminated with an
    [Fault.Mpi_error] mentioning "deadlock" and the result is flagged. *)

exception Platform_limit of int
(** Raised when a test demands more processes than the platform cap —
    the simulator's version of the paper's anecdote about COMPI freezing
    the machine by launching hundreds of thousands of processes. *)

val default_max_procs : int

type leaked_message = { leak_comm : int; leak_dest : int; leak_tag : int }

type run_result = {
  outcomes : (unit, Minic.Fault.t) result array;  (** per global rank *)
  deadlocked : int list;  (** ranks terminated by deadlock detection *)
  registry : Rankmap.t;  (** communicator registry after the run *)
  leaked : leaked_message list;
      (** sends that no receive consumed — the message-leak diagnostic of
          the UMPIRE/MARMOT family of MPI checkers *)
  choices : Schedule.choice list;
      (** wildcard match decisions taken in service order — empty unless
          the run executed in schedule mode ([?schedule]) *)
}

val mpi_handler : Minic.Mpi_iface.handler
(** The handler a process body must use: performs the scheduling
    effect. Only valid while running under {!run}. *)

val run :
  ?max_procs:int ->
  ?on_event:(Trace.event -> unit) ->
  ?schedule:Schedule.prescription ->
  nprocs:int ->
  (rank:int -> mpi:Minic.Mpi_iface.handler -> (unit, Minic.Fault.t) result) ->
  run_result
(** [run ~nprocs body] executes [body ~rank ~mpi] for every rank as a
    fiber and schedules them to completion. [body] must not let
    exceptions escape (return faults as [Error]); an escaped exception
    aborts the whole run.

    With [?schedule] the run executes in {e schedule mode}: wildcard
    ([MPI_ANY_SOURCE]) receives never match eagerly; each is served at
    quiescence — lowest blocked rank first, one per round — by
    consulting the prescription (default: first eligible message in
    arrival order, also used when the prescription is exhausted or
    names an ineligible source). Every decision is recorded in
    [choices] and emitted as a [Schedule_choice] trace event. Without
    [?schedule] the legacy eager matching is byte-identical to previous
    releases. *)
