(** Schedule prescriptions for wildcard receives.

    When {!Scheduler.run} executes in schedule mode, every
    [MPI_ANY_SOURCE] receive that could match more than one sender is a
    {e choice point}: the scheduler consults a [prescription] — entry k
    names the local source rank to deliver at the k-th choice point —
    and records the decision it actually took (prescribed or default)
    as a {!choice}. A schedule is thereby replayable exactly like a
    test case, and a bug is named by an (input, schedule) pair.

    Scope: blocking wildcard receives are the only choice points.
    Wildcard [Irecv]s still match eagerly (in posting order), and
    tag-only wildcards with a fixed source are deterministic under MPI
    non-overtaking, so neither forks the schedule space. *)

type prescription = int list
(** Local source ranks to deliver, one per wildcard choice point in
    service order. Points beyond the list fall back to the default
    (first eligible message in arrival order). *)

type choice = {
  ch_rank : int;  (** global receiving rank *)
  ch_comm : int;
  ch_tag : int;  (** tag of the delivered message *)
  ch_chosen : int;  (** local source rank delivered *)
  ch_alts : int list;  (** sorted eligible local sources (≥ 1 entry) *)
}
(** One recorded wildcard match decision. *)

val empty : prescription

val to_string : prescription -> string
(** Dotted rendering ("1.0.2"); the empty prescription prints as "-". *)

val of_string : string -> prescription
(** Inverse of {!to_string}. Raises [Failure] on malformed input. *)

type alt = {
  alt_prescription : prescription;
  alt_point : int;  (** index of the flipped choice point *)
  alt_source : int;  (** the source delivered instead *)
}

val alternatives : depth:int -> prefix_len:int -> choice list -> alt list
(** All sibling prescriptions of a recorded run, flipping one choice
    each: for every choice point at index >= [prefix_len] (points inside
    the run's prescribed prefix were forked when an ancestor was
    enumerated) and < [depth], and every eligible source other than the
    one delivered, the prescription replaying the chosen prefix up to
    that point and then the alternative. Single-candidate points emit
    nothing — the on-the-fly partial-order reduction. *)

type stats = { st_points : int; st_emitted : int; st_pruned : int }

val stats : depth:int -> prefix_len:int -> choice list -> stats
(** Accounting for the same enumeration: choice points recorded, forks
    {!alternatives} would emit, and alternatives pruned (by the prefix
    rule, the depth budget, or single-candidate points). *)
