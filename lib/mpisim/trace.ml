type event =
  | Send of { from_rank : int; to_local : int; comm : int; tag : int }
  | Recv_matched of { rank : int; src_local : int; tag : int; comm : int }
  | Matched of { src : int; dst : int; comm : int; tag : int }
  | Collective of { comm : int; signature : string; ranks : int list }
  | Blocked of { rank : int; comm : int; kind : string; peer : int }
  | Finished of { rank : int; ok : bool }
  | Deadlock of { ranks : int list }
  | Witness of { rank : int; comm : int; kind : string; peer : int }
  | Schedule_choice of {
      rank : int;
      comm : int;
      tag : int;
      chosen : int;
      alts : int list;
      point : int;
    }

let pp_event ppf = function
  | Send { from_rank; to_local; comm; tag } ->
    Format.fprintf ppf "send   rank %d -> local %d (comm %d, tag %d)" from_rank to_local
      comm tag
  | Recv_matched { rank; src_local; tag; comm } ->
    Format.fprintf ppf "recv   rank %d <- local %d (comm %d, tag %d)" rank src_local comm
      tag
  | Matched { src; dst; comm; tag } ->
    Format.fprintf ppf "match  rank %d => rank %d (comm %d, tag %d)" src dst comm tag
  | Collective { comm; signature; ranks } ->
    Format.fprintf ppf "coll   %s on comm %d (%d participants)" signature comm
      (List.length ranks)
  | Blocked { rank; comm; kind; peer } ->
    if peer >= 0 then
      Format.fprintf ppf "block  rank %d in %s on rank %d (comm %d)" rank kind peer comm
    else Format.fprintf ppf "block  rank %d in %s (comm %d)" rank kind comm
  | Finished { rank; ok } ->
    Format.fprintf ppf "done   rank %d (%s)" rank (if ok then "ok" else "fault")
  | Deadlock { ranks } ->
    Format.fprintf ppf "DEADLOCK ranks [%s]"
      (String.concat "; " (List.map string_of_int ranks))
  | Witness { rank; comm; kind; peer } ->
    if peer >= 0 then
      Format.fprintf ppf "wait-for rank %d --%s--> rank %d (comm %d)" rank kind peer comm
    else Format.fprintf ppf "wait-for rank %d --%s--> ? (comm %d)" rank kind comm
  | Schedule_choice { rank; comm; tag; chosen; alts; point } ->
    Format.fprintf ppf "choice rank %d <- local %d of {%s} (comm %d, tag %d, point %d)"
      rank chosen
      (String.concat "," (List.map string_of_int alts))
      comm tag point

type t = { mutable events_rev : event list; mutable n : int }

let create () = { events_rev = []; n = 0 }

let collector t ev =
  t.events_rev <- ev :: t.events_rev;
  t.n <- t.n + 1

let events t = List.rev t.events_rev
let length t = t.n

let kind_name = function
  | Send _ -> "send"
  | Recv_matched _ -> "recv"
  | Matched _ -> "match"
  | Collective _ -> "collective"
  | Blocked _ -> "blocked"
  | Finished _ -> "finished"
  | Deadlock _ -> "deadlock"
  | Witness _ -> "witness"
  | Schedule_choice _ -> "choice"

let summary t =
  let table = Hashtbl.create 8 in
  List.iter
    (fun ev ->
      let k = kind_name ev in
      Hashtbl.replace table k (1 + Option.value (Hashtbl.find_opt table k) ~default:0))
    (events t);
  Hashtbl.fold (fun k n acc -> (k, n) :: acc) table []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let timeline ?(limit = 200) t =
  let buf = Buffer.create 4096 in
  List.iteri
    (fun k ev ->
      if k < limit then
        Buffer.add_string buf (Format.asprintf "%4d  %a\n" k pp_event ev))
    (events t);
  if length t > limit then
    Buffer.add_string buf
      (Printf.sprintf "... (%d of %d events elided by limit %d)\n" (length t - limit)
         (length t) limit);
  Buffer.contents buf

(* The single vocabulary bridge: a scheduler trace event rendered as the
   Obs event the live sink would have emitted for the same occurrence.
   [Scheduler] routes its live emissions through this too, so traces
   written by [to_jsonl] and traces captured by --trace-events parse
   through the one [Obs.Event.of_json] replay path. *)
let to_obs_event : event -> Obs.Event.t = function
  | Send { from_rank; to_local; comm; tag } ->
    Obs.Event.Sched_step
      {
        kind = "send";
        rank = from_rank;
        comm;
        detail = Printf.sprintf "dest=%d tag=%d" to_local tag;
      }
  | Recv_matched { rank; src_local; tag; comm } ->
    Obs.Event.Sched_step
      {
        kind = "recv";
        rank;
        comm;
        detail = Printf.sprintf "src=%d tag=%d" src_local tag;
      }
  | Matched { src; dst; comm; tag } -> Obs.Event.Msg_matched { src; dst; comm; tag }
  | Collective { comm; signature; ranks } ->
    Obs.Event.Coll_done { comm; signature; ranks }
  | Blocked { rank; comm; kind; peer } -> Obs.Event.Rank_blocked { rank; comm; kind; peer }
  | Finished { rank; ok } ->
    Obs.Event.Sched_step
      { kind = "finished"; rank; comm = 0; detail = (if ok then "ok" else "fault") }
  | Deadlock { ranks } -> Obs.Event.Sched_deadlock { ranks }
  | Witness { rank; comm; kind; peer } ->
    Obs.Event.Deadlock_witness { rank; comm; kind; peer }
  | Schedule_choice { rank; comm; tag; chosen; alts; point } ->
    Obs.Event.Schedule_choice { rank; comm; tag; chosen; alts; point }

(* JSONL rendering through the shared Obs vocabulary, plus a [seq] field
   giving the emission index within this trace. Consumers parse each
   line with [Obs.Event.of_json] (extra fields are ignored), so one
   replay path covers live traces and these captured ones. *)
let event_to_json k ev =
  match Obs.Event.to_json (to_obs_event ev) with
  | Obs.Json.Obj (("ev", kind) :: rest) ->
    Obs.Json.Obj (("ev", kind) :: ("seq", Obs.Json.Int k) :: rest)
  | j -> j

let to_jsonl t =
  let buf = Buffer.create 4096 in
  List.iteri
    (fun k ev ->
      Buffer.add_string buf (Obs.Json.to_string (event_to_json k ev));
      Buffer.add_char buf '\n')
    (events t);
  Buffer.contents buf
