type event =
  | Send of { from_rank : int; to_local : int; comm : int; tag : int }
  | Recv_matched of { rank : int; src_local : int; tag : int; comm : int }
  | Collective of { comm : int; signature : string; participants : int }
  | Finished of { rank : int; ok : bool }
  | Deadlock of { ranks : int list }

let pp_event ppf = function
  | Send { from_rank; to_local; comm; tag } ->
    Format.fprintf ppf "send   rank %d -> local %d (comm %d, tag %d)" from_rank to_local
      comm tag
  | Recv_matched { rank; src_local; tag; comm } ->
    Format.fprintf ppf "recv   rank %d <- local %d (comm %d, tag %d)" rank src_local comm
      tag
  | Collective { comm; signature; participants } ->
    Format.fprintf ppf "coll   %s on comm %d (%d participants)" signature comm participants
  | Finished { rank; ok } ->
    Format.fprintf ppf "done   rank %d (%s)" rank (if ok then "ok" else "fault")
  | Deadlock { ranks } ->
    Format.fprintf ppf "DEADLOCK ranks [%s]"
      (String.concat "; " (List.map string_of_int ranks))

type t = { mutable events_rev : event list; mutable n : int }

let create () = { events_rev = []; n = 0 }

let collector t ev =
  t.events_rev <- ev :: t.events_rev;
  t.n <- t.n + 1

let events t = List.rev t.events_rev
let length t = t.n

let kind_name = function
  | Send _ -> "send"
  | Recv_matched _ -> "recv"
  | Collective _ -> "collective"
  | Finished _ -> "finished"
  | Deadlock _ -> "deadlock"

let summary t =
  let table = Hashtbl.create 8 in
  List.iter
    (fun ev ->
      let k = kind_name ev in
      Hashtbl.replace table k (1 + Option.value (Hashtbl.find_opt table k) ~default:0))
    (events t);
  Hashtbl.fold (fun k n acc -> (k, n) :: acc) table []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let timeline ?(limit = 200) t =
  let buf = Buffer.create 4096 in
  List.iteri
    (fun k ev ->
      if k < limit then
        Buffer.add_string buf (Format.asprintf "%4d  %a\n" k pp_event ev))
    (events t);
  if length t > limit then
    Buffer.add_string buf
      (Printf.sprintf "... (%d of %d events elided by limit %d)\n" (length t - limit)
         (length t) limit);
  Buffer.contents buf

(* JSONL rendering on the shared telemetry JSON emitter: the same shape
   as the scheduler's live [sched_step]/[sched_deadlock] stream, plus a
   [seq] field giving the emission index within this trace. *)
let event_to_json k ev =
  let obj kind fields = Obs.Json.Obj (("ev", Obs.Json.Str kind) :: ("seq", Obs.Json.Int k) :: fields) in
  match ev with
  | Send { from_rank; to_local; comm; tag } ->
    obj "send"
      [
        ("from_rank", Obs.Json.Int from_rank);
        ("to_local", Obs.Json.Int to_local);
        ("comm", Obs.Json.Int comm);
        ("tag", Obs.Json.Int tag);
      ]
  | Recv_matched { rank; src_local; tag; comm } ->
    obj "recv"
      [
        ("rank", Obs.Json.Int rank);
        ("src_local", Obs.Json.Int src_local);
        ("tag", Obs.Json.Int tag);
        ("comm", Obs.Json.Int comm);
      ]
  | Collective { comm; signature; participants } ->
    obj "collective"
      [
        ("comm", Obs.Json.Int comm);
        ("signature", Obs.Json.Str signature);
        ("participants", Obs.Json.Int participants);
      ]
  | Finished { rank; ok } ->
    obj "finished" [ ("rank", Obs.Json.Int rank); ("ok", Obs.Json.Bool ok) ]
  | Deadlock { ranks } ->
    obj "deadlock"
      [ ("ranks", Obs.Json.List (List.map (fun r -> Obs.Json.Int r) ranks)) ]

let to_jsonl t =
  let buf = Buffer.create 4096 in
  List.iteri
    (fun k ev ->
      Buffer.add_string buf (Obs.Json.to_string (event_to_json k ev));
      Buffer.add_char buf '\n')
    (events t);
  Buffer.contents buf
