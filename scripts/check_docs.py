#!/usr/bin/env python3
"""Documentation consistency checker.

Fails (exit 1) when README.md, docs/*.md, or DESIGN.md reference things
that don't exist:

  1. markdown links `[text](path)` whose target file is missing
     (external URLs and #anchors are skipped);
  2. inline-code file references like `lib/core/campaign.ml` that don't
     resolve (globs like `examples/programs/*.mc` must match something);
  3. CLI flags like `--jobs` that bin/compi_cli.ml does not define.

Run from the repository root: python3 scripts/check_docs.py
"""

import glob
import os
import re
import sys

ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

DOC_FILES = [
    os.path.join(ROOT, "README.md"),
    os.path.join(ROOT, "DESIGN.md"),
] + sorted(glob.glob(os.path.join(ROOT, "docs", "*.md")))

# Extensions that make an inline-code token a checkable file reference.
FILE_EXTS = (".ml", ".mli", ".mc", ".md", ".json", ".jsonl", ".py", ".yml")

FENCE_RE = re.compile(r"^```.*?^```", re.M | re.S)
LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
CODE_RE = re.compile(r"`([^`\n]+)`")
FLAG_RE = re.compile(r"(?<![\w-])(--[a-z][a-z0-9-]*)")

# Flags cmdliner generates for every command.
BUILTIN_FLAGS = {"--help", "--version"}


def cli_flags():
    """Flags defined in bin/compi_cli.ml via `info [ "name"; ... ]`."""
    src = open(os.path.join(ROOT, "bin", "compi_cli.ml")).read()
    flags = set(BUILTIN_FLAGS)
    for group in re.findall(r"info\s*\[([^\]]*)\]", src):
        for name in re.findall(r'"([^"]+)"', group):
            flags.add(("--" if len(name) > 1 else "-") + name)
    return flags


def check_file(path, flags, errors):
    rel = os.path.relpath(path, ROOT)
    text = open(path).read()
    base = os.path.dirname(path)

    prose = FENCE_RE.sub("", text)

    for target in LINK_RE.findall(prose):
        if target.startswith(("http://", "https://", "#", "mailto:")):
            continue
        target = target.split("#")[0]
        if target and not os.path.exists(os.path.join(base, target)):
            errors.append(f"{rel}: broken link: {target}")

    for token in CODE_RE.findall(prose):
        token = token.strip()
        # only repo-relative paths: must contain a separator, no spaces,
        # a known extension, and not be absolute (/tmp/... examples)
        if (
            "/" not in token
            or " " in token
            or token.startswith(("/", "http", "$"))
            or not token.endswith(FILE_EXTS)
        ):
            continue
        # resolve repo-relative first, then relative to the doc itself
        # (docs/*.md referring to ../DESIGN.md)
        if not glob.glob(os.path.join(ROOT, token)) and not glob.glob(
            os.path.join(base, token)
        ):
            errors.append(f"{rel}: referenced file does not exist: {token}")

    for flag in FLAG_RE.findall(text):
        if flag not in flags:
            errors.append(f"{rel}: documented flag not defined by the CLI: {flag}")


def main():
    flags = cli_flags()
    errors = []
    for path in DOC_FILES:
        if os.path.exists(path):
            check_file(path, flags, errors)
        else:
            errors.append(
                f"missing documentation file: {os.path.relpath(path, ROOT)}"
            )
    if errors:
        for e in errors:
            print(f"error: {e}", file=sys.stderr)
        print(f"{len(errors)} documentation error(s)", file=sys.stderr)
        return 1
    print(f"ok: {len(DOC_FILES)} files checked against {len(flags)} CLI flags")
    return 0


if __name__ == "__main__":
    sys.exit(main())
