#!/usr/bin/env python3
"""Documentation consistency checker.

Fails (exit 1) when README.md, docs/*.md, or DESIGN.md reference things
that don't exist:

  1. markdown links `[text](path)` whose target file is missing
     (external URLs and #anchors are skipped);
  2. inline-code file references like `lib/core/campaign.ml` that don't
     resolve (globs like `examples/programs/*.mc` must match something);
  3. CLI flags like `--jobs` that bin/compi_cli.ml does not define;
  4. telemetry vocabulary drift: every event kind `lib/obs/event.ml`
     can emit must have a `### `kind`` section in docs/TELEMETRY.md,
     and every `Obs.Prof.time "phase"` string used by lib/ or bin/
     must appear in TELEMETRY.md's phase list.

With `--exe PATH` (a built compi_cli executable) it additionally runs
`PATH <cmd> --help` for each audited subcommand (run, explain, report,
profile, status, watch, history, compare)
and cross-checks the live help text: the checkpoint/resume,
observatory and live-monitor/ledger flags must exist in the binary AND
be documented, and every flag the help mentions must also be found by
the source-level regex (so the regex cannot silently rot).

Run from the repository root: python3 scripts/check_docs.py
"""

import argparse
import glob
import os
import re
import subprocess
import sys

ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

DOC_FILES = [
    os.path.join(ROOT, "README.md"),
    os.path.join(ROOT, "DESIGN.md"),
] + sorted(glob.glob(os.path.join(ROOT, "docs", "*.md")))

# Extensions that make an inline-code token a checkable file reference.
FILE_EXTS = (".ml", ".mli", ".mc", ".md", ".json", ".jsonl", ".py", ".yml")

FENCE_RE = re.compile(r"^```.*?^```", re.M | re.S)
LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
CODE_RE = re.compile(r"`([^`\n]+)`")
FLAG_RE = re.compile(r"(?<![\w-])(--[a-z][a-z0-9-]*)")

# Flags cmdliner generates for every command.
BUILTIN_FLAGS = {"--help", "--version"}

# Per-subcommand flags that must exist in the built binary and be
# documented — the checkpoint/resume surface the CI matrix exercises,
# and the observatory surface the explain/report smoke job drives.
REQUIRED_FLAGS = {
    "run": {"--checkpoint", "--checkpoint-every", "--resume", "--trace-events",
            "--exec-mode", "--schedules", "--schedule-depth",
            "--status-file", "--ledger"},
    "explain": {"--branch", "--testcase", "--target"},
    "report": {"--out", "--stable", "--target"},
    "profile": {"--out", "--stable"},
    "status": {"--json"},
    "watch": {"--interval", "--once", "--trace"},
    "history": {"--target"},
    "compare": {"--ledger", "--tolerance"},
}


def event_kinds():
    """Kind strings the `kind_name` function in lib/obs/event.ml emits."""
    src = open(os.path.join(ROOT, "lib", "obs", "event.ml")).read()
    m = re.search(r"let kind_name = function\n(.*?)\n\n", src, re.S)
    if not m:
        return None
    return set(re.findall(r'->\s*"([a-z_]+)"', m.group(1)))


def prof_phases():
    """Phase strings passed to Obs.Prof.time anywhere in lib/ or bin/."""
    phases = set()
    for pat in ("lib/**/*.ml", "bin/**/*.ml"):
        for path in glob.glob(os.path.join(ROOT, pat), recursive=True):
            src = open(path).read()
            phases.update(re.findall(r'Prof\.time\s+"([a-z._]+)"', src))
    return phases


def check_telemetry_vocab(errors):
    """TELEMETRY.md must document every event kind and profile phase."""
    path = os.path.join(ROOT, "docs", "TELEMETRY.md")
    if not os.path.exists(path):
        errors.append("missing documentation file: docs/TELEMETRY.md")
        return
    text = open(path).read()
    kinds = event_kinds()
    if kinds is None:
        errors.append("cannot parse kind_name from lib/obs/event.ml "
                      "(audit regex rotted)")
    else:
        headings = set(re.findall(r"^### `([a-z_]+)`", text, re.M))
        for kind in sorted(kinds - headings):
            errors.append(
                f"docs/TELEMETRY.md: event kind {kind!r} (lib/obs/event.ml) "
                f"has no `### `{kind}`` section")
        for kind in sorted(headings - kinds):
            errors.append(
                f"docs/TELEMETRY.md: documents event kind {kind!r} that "
                f"lib/obs/event.ml cannot emit")
        count = re.search(r"one of the (\d+) names", text)
        if count and int(count.group(1)) != len(kinds):
            errors.append(
                f"docs/TELEMETRY.md: says 'one of the {count.group(1)} names' "
                f"but lib/obs/event.ml defines {len(kinds)} kinds")
    phase_doc = re.search(r"^Phases: (.*?)(?:^\n|\Z)", text, re.M | re.S)
    doc_phases = set(re.findall(r"`([a-z._]+)`", phase_doc.group(1))) \
        if phase_doc else set()
    if not phase_doc:
        errors.append("docs/TELEMETRY.md: no 'Phases:' list to audit")
    for phase in sorted(prof_phases() - doc_phases):
        errors.append(
            f"docs/TELEMETRY.md: profile phase {phase!r} (Obs.Prof.time "
            f"call site) missing from the Phases list")


def cli_flags():
    """Flags defined in bin/compi_cli.ml via `info [ "name"; ... ]`."""
    src = open(os.path.join(ROOT, "bin", "compi_cli.ml")).read()
    flags = set(BUILTIN_FLAGS)
    for group in re.findall(r"info\s*\[([^\]]*)\]", src):
        for name in re.findall(r'"([^"]+)"', group):
            flags.add(("--" if len(name) > 1 else "-") + name)
    return flags


def help_flags(exe, cmd):
    """Flags `EXE <cmd> --help` actually reports (live binary truth)."""
    out = subprocess.run(
        [exe, cmd, "--help"],
        capture_output=True,
        text=True,
        check=True,
        env={**os.environ, "TERM": "dumb"},
    ).stdout
    return set(FLAG_RE.findall(out))


def check_cmd_help(exe, cmd, required, source_flags, doc_flags, errors):
    try:
        live = help_flags(exe, cmd)
    except (OSError, subprocess.CalledProcessError) as e:
        errors.append(f"{exe}: cannot query `{cmd} --help`: {e}")
        return
    for flag in sorted(required - live):
        errors.append(f"{exe}: `{cmd} --help` does not list {flag}")
    for flag in sorted(required - doc_flags):
        errors.append(f"documentation never mentions required flag {flag}")
    # drift guard: anything the binary advertises must be visible to the
    # source-level regex, or the static check is quietly incomplete
    for flag in sorted(live - source_flags):
        errors.append(f"{exe}: `{cmd} --help` lists {flag}, source scan does not")


def check_file(path, flags, errors, doc_flags):
    rel = os.path.relpath(path, ROOT)
    text = open(path).read()
    base = os.path.dirname(path)

    prose = FENCE_RE.sub("", text)

    for target in LINK_RE.findall(prose):
        if target.startswith(("http://", "https://", "#", "mailto:")):
            continue
        target = target.split("#")[0]
        if target and not os.path.exists(os.path.join(base, target)):
            errors.append(f"{rel}: broken link: {target}")

    for token in CODE_RE.findall(prose):
        token = token.strip()
        # only repo-relative paths: must contain a separator, no spaces,
        # a known extension, and not be absolute (/tmp/... examples)
        if (
            "/" not in token
            or " " in token
            or token.startswith(("/", "http", "$"))
            or not token.endswith(FILE_EXTS)
        ):
            continue
        # resolve repo-relative first, then relative to the doc itself
        # (docs/*.md referring to ../DESIGN.md)
        if not glob.glob(os.path.join(ROOT, token)) and not glob.glob(
            os.path.join(base, token)
        ):
            errors.append(f"{rel}: referenced file does not exist: {token}")

    for flag in FLAG_RE.findall(text):
        doc_flags.add(flag)
        if flag not in flags:
            errors.append(f"{rel}: documented flag not defined by the CLI: {flag}")


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--exe",
        metavar="PATH",
        help="built compi_cli executable; cross-check per-subcommand --help output",
    )
    args = parser.parse_args()

    flags = cli_flags()
    errors = []
    doc_flags = set()
    for path in DOC_FILES:
        if os.path.exists(path):
            check_file(path, flags, errors, doc_flags)
        else:
            errors.append(
                f"missing documentation file: {os.path.relpath(path, ROOT)}"
            )
    check_telemetry_vocab(errors)
    if args.exe:
        for cmd, required in sorted(REQUIRED_FLAGS.items()):
            check_cmd_help(args.exe, cmd, required, flags, doc_flags, errors)
    if errors:
        for e in errors:
            print(f"error: {e}", file=sys.stderr)
        print(f"{len(errors)} documentation error(s)", file=sys.stderr)
        return 1
    live = " + live --help of " + "/".join(sorted(REQUIRED_FLAGS)) if args.exe else ""
    print(f"ok: {len(DOC_FILES)} files checked against {len(flags)} CLI flags{live}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
