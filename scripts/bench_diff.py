#!/usr/bin/env python3
"""Perf-regression gate over two BENCH_*.json files.

    python3 scripts/bench_diff.py OLD.json NEW.json [--tolerance 0.25]

Compares a baseline bench document against a freshly generated one and
exits non-zero when NEW regresses beyond the tolerance. Two shapes are
understood, sniffed from the document itself:

  * BENCH_parallel.json — a top-level "configs" list. Rows are matched
    on (target, jobs, solver_cache) — baselines from before the bench
    grew multiple targets (rows without a "target" field) fall back to
    matching on (jobs, solver_cache) against the NEW document's first
    target. A regression is wall_s beyond the tolerance, a cache
    hit-rate drop of more than 0.10 absolute, or a row whose
    identical_report flag went false (the determinism invariant is
    never a matter of tolerance). Rows flagged "oversubscribed" (the
    requested --jobs exceeded the host's cores, so the pool was
    clamped) skip the timing gates: their walls measure the clamp, not
    the engine.

    The parallel shape also carries blocking intra-NEW gates that need
    no baseline at all: a non-oversubscribed jobs>=2 row whose
    speedup_vs_jobs1 is below 1.0 means adding workers made the engine
    slower; a non-oversubscribed jobs>=4 row must additionally clear
    the half-linear multi-core floor (speedup >= jobs/2 — the ROADMAP
    item 1 exit criterion, blocking rather than informational since the
    bench is regenerated on the multi-core CI runner; on hosts with
    fewer cores the row is flagged oversubscribed and the floor does
    not apply, because its wall measures the clamp, not the engine —
    but if EVERY jobs>=4 row is oversubscribed the gate fails outright
    instead of passing vacuously, since "ok" must mean the floor was
    actually checked; rows carry a per-row "cores" field so this can
    be judged without the document header);
    and a jobs-1 cache-on row slower than its target's cache-off row by
    more than the noise allowance means the solver cache costs more
    than it saves. All hard-fail.
  * BENCH_microbench.json — a top-level "metrics" object. Every
    bench.*.ns_per_run gauge present in both documents is compared
    against the tolerance (this covers the bench.interp.* /
    bench.compiled.* executor pair), bench.span_overhead.ratio (when
    recorded) must stay within its own 1.05x budget, and
    bench.exec_mode.speedup carries the compiled-executor gate: hard
    regression below 2x, an informational warning below the 5x target.

Timing noise is real: the default tolerance is deliberately loose, and
speedups are reported but never gated (a faster NEW is not an error).
Structural mismatches — a config present in OLD but gone from NEW, or
documents of different shapes — are errors too: silently comparing
nothing must not pass.
"""

import argparse
import json
import sys

HIT_RATE_DROP = 0.10
SPAN_OVERHEAD_BUDGET = 1.05
EXEC_SPEEDUP_FLOOR = 2.0   # hard gate, mirrors bench/microbench.ml
EXEC_SPEEDUP_TARGET = 5.0  # informational target per ROADMAP
# Cache-on may not be slower than cache-off (same target, jobs=1) beyond
# this factor. The allowance absorbs timing noise on targets whose
# individual solves are so cheap that the cache's win is marginal; a
# genuine "the cache costs more than it saves" regression lands well
# outside it.
CACHE_ON_ALLOWANCE = 1.10
# A non-oversubscribed row with this many jobs or more must reach at
# least MULTICORE_SPEEDUP_FRACTION * jobs speedup over jobs=1: the
# half-linear floor under the ROADMAP's near-linear exit criterion,
# leaving headroom for merge serialization and shared-runner noise.
MULTICORE_GATE_MIN_JOBS = 4
MULTICORE_SPEEDUP_FRACTION = 0.5
# Set by --allow-vacuous-floor: downgrade the "every jobs>=4 row is
# oversubscribed, so the floor was never checked" refusal to a warning.
ALLOW_VACUOUS_FLOOR = False


def load(path):
    try:
        with open(path) as f:
            return json.load(f)
    except (OSError, ValueError) as e:
        sys.exit(f"error: cannot load {path}: {e}")


def shape(doc):
    if isinstance(doc, dict) and isinstance(doc.get("configs"), list):
        return "parallel"
    if isinstance(doc, dict) and isinstance(doc.get("metrics"), dict):
        return "microbench"
    return None


def fmt_delta(old, new):
    if old <= 0:
        return "n/a"
    return f"{100.0 * (new - old) / old:+.1f}%"


def parallel_row_key(c):
    return (c.get("target"), c.get("jobs"), c.get("solver_cache"))


def parallel_label(key):
    target, jobs, cache = key
    prefix = f"{target} " if target is not None else ""
    return f"{prefix}jobs={jobs} cache={'on' if cache else 'off'}"


def diff_parallel(old, new, tol, out):
    regressions = []
    old_rows = {parallel_row_key(c): c for c in old["configs"]}
    new_rows = {parallel_row_key(c): c for c in new["configs"]}
    # Baselines written before the bench grew a "target" field carry
    # key (None, jobs, cache); match them against the first target in
    # the NEW document (its rows come first in config order).
    fallback = {}
    for c in new["configs"]:
        fallback.setdefault((c.get("jobs"), c.get("solver_cache")), c)
    out.append(f"{'config':>26} {'old wall':>10} {'new wall':>10} {'delta':>8} "
               f"{'old hit':>8} {'new hit':>8}")
    for key in sorted(old_rows, key=lambda k: (str(k[0]), str(k[1]), str(k[2]))):
        label = parallel_label(key)
        target, jobs, cache = key
        if key in new_rows:
            n = new_rows[key]
        elif target is None and (jobs, cache) in fallback:
            n = fallback[(jobs, cache)]
        else:
            regressions.append(f"config {label} missing from NEW")
            continue
        o = old_rows[key]
        oversub = o.get("oversubscribed", False) or n.get("oversubscribed", False)
        ow, nw = o.get("wall_s", 0.0), n.get("wall_s", 0.0)
        oh, nh = o.get("cache_hit_rate", 0.0), n.get("cache_hit_rate", 0.0)
        out.append(f"{label:>26} {ow:>9.3f}s {nw:>9.3f}s {fmt_delta(ow, nw):>8} "
                   f"{100 * oh:>7.1f}% {100 * nh:>7.1f}%"
                   + ("  (oversubscribed: timing not gated)" if oversub else ""))
        if not oversub and ow > 0 and nw > ow * (1.0 + tol):
            regressions.append(
                f"{label}: wall_s {ow:.3f} -> {nw:.3f} "
                f"({fmt_delta(ow, nw)} > +{100 * tol:.0f}% tolerance)")
        if oh - nh > HIT_RATE_DROP:
            regressions.append(
                f"{label}: cache hit rate dropped {oh:.2f} -> {nh:.2f} "
                f"(more than {HIT_RATE_DROP:.2f} absolute)")
        if not n.get("identical_report", False):
            regressions.append(f"{label}: identical_report is false in NEW")
    if not new.get("identical_reports", False):
        regressions.append("NEW identical_reports flag is false")
    regressions.extend(gate_parallel_new(new, out))
    return regressions


def gate_parallel_new(new, out):
    """Blocking gates evaluated on NEW alone (no baseline required)."""
    failures = []
    floor_candidates = 0
    floor_evaluated = 0
    row_cores = set()
    for c in new["configs"]:
        key = parallel_row_key(c)
        jobs = c.get("jobs") or 0
        speedup = c.get("speedup_vs_jobs1")
        if isinstance(c.get("cores"), int):
            row_cores.add(c["cores"])
        if (jobs >= 2 and not c.get("oversubscribed", False)
                and isinstance(speedup, (int, float)) and speedup < 1.0):
            failures.append(
                f"{parallel_label(key)}: speedup_vs_jobs1 {speedup:.2f} < 1.0 "
                f"on a non-oversubscribed row — extra workers made it slower")
        if jobs >= MULTICORE_GATE_MIN_JOBS:
            floor_candidates += 1
        if (jobs >= MULTICORE_GATE_MIN_JOBS and not c.get("oversubscribed", False)
                and isinstance(speedup, (int, float))):
            floor_evaluated += 1
            floor = MULTICORE_SPEEDUP_FRACTION * jobs
            if speedup < floor:
                failures.append(
                    f"{parallel_label(key)}: speedup_vs_jobs1 {speedup:.2f} is "
                    f"below the half-linear multi-core floor {floor:.1f} "
                    f"(jobs={jobs} on a non-oversubscribed host)")
            else:
                out.append(
                    f"multi-core gate: {parallel_label(key)} speedup "
                    f"{speedup:.2f} >= floor {floor:.1f}: ok")
    # The floor gate must never pass vacuously: if the document has
    # jobs>=4 rows but every one of them was oversubscribed (the bench
    # ran on a small host), nothing above was checked — refusing here
    # beats reporting "ok" for a gate that never ran. A caller that
    # knows a dedicated multi-core job carries the live floor can
    # downgrade the refusal to a warning with --allow-vacuous-floor.
    if floor_candidates and not floor_evaluated:
        cores_note = (
            f" (host reported {sorted(row_cores)[0]} core(s))"
            if len(row_cores) == 1 else "")
        msg = (
            f"multi-core floor gate is vacuous: all {floor_candidates} "
            f"jobs>={MULTICORE_GATE_MIN_JOBS} row(s) are oversubscribed"
            f"{cores_note} — regenerate the bench on a host with at least "
            f"{MULTICORE_GATE_MIN_JOBS} cores")
        if ALLOW_VACUOUS_FLOOR:
            out.append(f"warn: {msg} (waived by --allow-vacuous-floor)")
        else:
            failures.append(msg)
    jobs1 = {}
    for c in new["configs"]:
        if c.get("jobs") == 1:
            jobs1.setdefault(c.get("target"), {})[bool(c.get("solver_cache"))] = c
    for target in sorted(jobs1, key=str):
        pair = jobs1[target]
        if True in pair and False in pair:
            on = pair[True].get("wall_s", 0.0)
            off = pair[False].get("wall_s", 0.0)
            label = f"{target} " if target is not None else ""
            if off > 0 and on > off * CACHE_ON_ALLOWANCE:
                failures.append(
                    f"{label}jobs=1: cache-on wall {on:.3f}s is more than "
                    f"{CACHE_ON_ALLOWANCE:.2f}x the cache-off wall {off:.3f}s "
                    f"— the solver cache costs more than it saves")
            else:
                out.append(
                    f"cache gate: {label}cache-on {on:.3f}s vs "
                    f"cache-off {off:.3f}s (allowance {CACHE_ON_ALLOWANCE:.2f}x): ok")
    return failures


def diff_microbench(old, new, tol, out):
    regressions = []
    om, nm = old["metrics"], new["metrics"]
    gauges = sorted(
        k for k in om
        if k.startswith("bench.") and k.endswith(".ns_per_run")
        and isinstance(om[k], (int, float)))
    if not gauges:
        regressions.append("OLD has no bench.*.ns_per_run gauges to compare")
    out.append(f"{'gauge':<52} {'old':>12} {'new':>12} {'delta':>8}")
    for k in gauges:
        if k not in nm or not isinstance(nm[k], (int, float)):
            regressions.append(f"gauge {k} missing from NEW")
            continue
        o, n = float(om[k]), float(nm[k])
        out.append(f"{k:<52} {o:>10.0f}ns {n:>10.0f}ns {fmt_delta(o, n):>8}")
        if o > 0 and n > o * (1.0 + tol):
            regressions.append(
                f"{k}: {o:.0f}ns -> {n:.0f}ns "
                f"({fmt_delta(o, n)} > +{100 * tol:.0f}% tolerance)")
    ratio = nm.get("bench.span_overhead.ratio")
    if isinstance(ratio, (int, float)):
        out.append(f"{'bench.span_overhead.ratio':<52} "
                   f"{'':>12} {ratio:>11.3f}x {'':>8}")
        if ratio > SPAN_OVERHEAD_BUDGET:
            regressions.append(
                f"span overhead ratio {ratio:.3f} exceeds the "
                f"{SPAN_OVERHEAD_BUDGET}x budget")
    speedup = nm.get("bench.exec_mode.speedup")
    if isinstance(speedup, (int, float)):
        out.append(f"{'bench.exec_mode.speedup':<52} "
                   f"{'':>12} {speedup:>11.1f}x {'':>8}")
        if speedup < EXEC_SPEEDUP_FLOOR:
            regressions.append(
                f"compiled executor speedup {speedup:.2f}x is below the "
                f"{EXEC_SPEEDUP_FLOOR}x floor")
        elif speedup < EXEC_SPEEDUP_TARGET:
            out.append(
                f"warn: compiled executor speedup {speedup:.1f}x is below "
                f"the {EXEC_SPEEDUP_TARGET}x target (not gated)")
    return regressions


def main():
    parser = argparse.ArgumentParser(
        description=__doc__, formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("old", help="baseline BENCH_*.json")
    parser.add_argument("new", help="freshly generated BENCH_*.json")
    parser.add_argument(
        "--tolerance", type=float, default=0.25, metavar="FRAC",
        help="allowed fractional slowdown before a timing counts as a "
             "regression (default 0.25 = +25%%)")
    parser.add_argument(
        "--allow-vacuous-floor", action="store_true",
        help="warn instead of failing when every jobs>=4 row is "
             "oversubscribed (for small hosts whose multi-core floor is "
             "gated by a dedicated job elsewhere)")
    args = parser.parse_args()
    global ALLOW_VACUOUS_FLOOR
    ALLOW_VACUOUS_FLOOR = args.allow_vacuous_floor

    old, new = load(args.old), load(args.new)
    os_, ns_ = shape(old), shape(new)
    if os_ is None or ns_ is None or os_ != ns_:
        sys.exit(f"error: cannot compare shapes {os_!r} ({args.old}) and "
                 f"{ns_!r} ({args.new})")

    out = [f"bench_diff: {args.old} vs {args.new} "
           f"({os_}, tolerance +{100 * args.tolerance:.0f}%)"]
    diff = diff_parallel if os_ == "parallel" else diff_microbench
    regressions = diff(old, new, args.tolerance, out)
    print("\n".join(out))
    if regressions:
        for r in regressions:
            print(f"REGRESSION: {r}", file=sys.stderr)
        print(f"{len(regressions)} regression(s)", file=sys.stderr)
        return 1
    print("ok: no regressions")
    return 0


if __name__ == "__main__":
    sys.exit(main())
