#!/usr/bin/env python3
"""Perf-regression gate over two BENCH_*.json files.

    python3 scripts/bench_diff.py OLD.json NEW.json [--tolerance 0.25]

Compares a baseline bench document against a freshly generated one and
exits non-zero when NEW regresses beyond the tolerance. Two shapes are
understood, sniffed from the document itself:

  * BENCH_parallel.json — a top-level "configs" list. Rows are matched
    on (jobs, solver_cache); a regression is wall_s beyond the
    tolerance, a cache hit-rate drop of more than 0.10 absolute, or a
    row whose identical_report flag went false (the determinism
    invariant is never a matter of tolerance).
  * BENCH_microbench.json — a top-level "metrics" object. Every
    bench.*.ns_per_run gauge present in both documents is compared
    against the tolerance (this covers the bench.interp.* /
    bench.compiled.* executor pair), bench.span_overhead.ratio (when
    recorded) must stay within its own 1.05x budget, and
    bench.exec_mode.speedup carries the compiled-executor gate: hard
    regression below 2x, an informational warning below the 5x target.

Timing noise is real: the default tolerance is deliberately loose, and
speedups are reported but never gated (a faster NEW is not an error).
Structural mismatches — a config present in OLD but gone from NEW, or
documents of different shapes — are errors too: silently comparing
nothing must not pass.
"""

import argparse
import json
import sys

HIT_RATE_DROP = 0.10
SPAN_OVERHEAD_BUDGET = 1.05
EXEC_SPEEDUP_FLOOR = 2.0   # hard gate, mirrors bench/microbench.ml
EXEC_SPEEDUP_TARGET = 5.0  # informational target per ROADMAP


def load(path):
    try:
        with open(path) as f:
            return json.load(f)
    except (OSError, ValueError) as e:
        sys.exit(f"error: cannot load {path}: {e}")


def shape(doc):
    if isinstance(doc, dict) and isinstance(doc.get("configs"), list):
        return "parallel"
    if isinstance(doc, dict) and isinstance(doc.get("metrics"), dict):
        return "microbench"
    return None


def fmt_delta(old, new):
    if old <= 0:
        return "n/a"
    return f"{100.0 * (new - old) / old:+.1f}%"


def diff_parallel(old, new, tol, out):
    regressions = []
    old_rows = {(c.get("jobs"), c.get("solver_cache")): c for c in old["configs"]}
    new_rows = {(c.get("jobs"), c.get("solver_cache")): c for c in new["configs"]}
    out.append(f"{'config':>14} {'old wall':>10} {'new wall':>10} {'delta':>8} "
               f"{'old hit':>8} {'new hit':>8}")
    for key in sorted(old_rows, key=lambda k: (str(k[0]), str(k[1]))):
        label = f"jobs={key[0]} cache={'on' if key[1] else 'off'}"
        if key not in new_rows:
            regressions.append(f"config {label} missing from NEW")
            continue
        o, n = old_rows[key], new_rows[key]
        ow, nw = o.get("wall_s", 0.0), n.get("wall_s", 0.0)
        oh, nh = o.get("cache_hit_rate", 0.0), n.get("cache_hit_rate", 0.0)
        out.append(f"{label:>14} {ow:>9.3f}s {nw:>9.3f}s {fmt_delta(ow, nw):>8} "
                   f"{100 * oh:>7.1f}% {100 * nh:>7.1f}%")
        if ow > 0 and nw > ow * (1.0 + tol):
            regressions.append(
                f"{label}: wall_s {ow:.3f} -> {nw:.3f} "
                f"({fmt_delta(ow, nw)} > +{100 * tol:.0f}% tolerance)")
        if oh - nh > HIT_RATE_DROP:
            regressions.append(
                f"{label}: cache hit rate dropped {oh:.2f} -> {nh:.2f} "
                f"(more than {HIT_RATE_DROP:.2f} absolute)")
        if not n.get("identical_report", False):
            regressions.append(f"{label}: identical_report is false in NEW")
    if not new.get("identical_reports", False):
        regressions.append("NEW identical_reports flag is false")
    return regressions


def diff_microbench(old, new, tol, out):
    regressions = []
    om, nm = old["metrics"], new["metrics"]
    gauges = sorted(
        k for k in om
        if k.startswith("bench.") and k.endswith(".ns_per_run")
        and isinstance(om[k], (int, float)))
    if not gauges:
        regressions.append("OLD has no bench.*.ns_per_run gauges to compare")
    out.append(f"{'gauge':<52} {'old':>12} {'new':>12} {'delta':>8}")
    for k in gauges:
        if k not in nm or not isinstance(nm[k], (int, float)):
            regressions.append(f"gauge {k} missing from NEW")
            continue
        o, n = float(om[k]), float(nm[k])
        out.append(f"{k:<52} {o:>10.0f}ns {n:>10.0f}ns {fmt_delta(o, n):>8}")
        if o > 0 and n > o * (1.0 + tol):
            regressions.append(
                f"{k}: {o:.0f}ns -> {n:.0f}ns "
                f"({fmt_delta(o, n)} > +{100 * tol:.0f}% tolerance)")
    ratio = nm.get("bench.span_overhead.ratio")
    if isinstance(ratio, (int, float)):
        out.append(f"{'bench.span_overhead.ratio':<52} "
                   f"{'':>12} {ratio:>11.3f}x {'':>8}")
        if ratio > SPAN_OVERHEAD_BUDGET:
            regressions.append(
                f"span overhead ratio {ratio:.3f} exceeds the "
                f"{SPAN_OVERHEAD_BUDGET}x budget")
    speedup = nm.get("bench.exec_mode.speedup")
    if isinstance(speedup, (int, float)):
        out.append(f"{'bench.exec_mode.speedup':<52} "
                   f"{'':>12} {speedup:>11.1f}x {'':>8}")
        if speedup < EXEC_SPEEDUP_FLOOR:
            regressions.append(
                f"compiled executor speedup {speedup:.2f}x is below the "
                f"{EXEC_SPEEDUP_FLOOR}x floor")
        elif speedup < EXEC_SPEEDUP_TARGET:
            out.append(
                f"warn: compiled executor speedup {speedup:.1f}x is below "
                f"the {EXEC_SPEEDUP_TARGET}x target (not gated)")
    return regressions


def main():
    parser = argparse.ArgumentParser(
        description=__doc__, formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("old", help="baseline BENCH_*.json")
    parser.add_argument("new", help="freshly generated BENCH_*.json")
    parser.add_argument(
        "--tolerance", type=float, default=0.25, metavar="FRAC",
        help="allowed fractional slowdown before a timing counts as a "
             "regression (default 0.25 = +25%%)")
    args = parser.parse_args()

    old, new = load(args.old), load(args.new)
    os_, ns_ = shape(old), shape(new)
    if os_ is None or ns_ is None or os_ != ns_:
        sys.exit(f"error: cannot compare shapes {os_!r} ({args.old}) and "
                 f"{ns_!r} ({args.new})")

    out = [f"bench_diff: {args.old} vs {args.new} "
           f"({os_}, tolerance +{100 * args.tolerance:.0f}%)"]
    diff = diff_parallel if os_ == "parallel" else diff_microbench
    regressions = diff(old, new, args.tolerance, out)
    print("\n".join(out))
    if regressions:
        for r in regressions:
            print(f"REGRESSION: {r}", file=sys.stderr)
        print(f"{len(regressions)} regression(s)", file=sys.stderr)
        return 1
    print("ok: no regressions")
    return 0


if __name__ == "__main__":
    sys.exit(main())
