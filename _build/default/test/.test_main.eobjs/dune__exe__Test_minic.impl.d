test/test_minic.ml: Alcotest Array Ast Branchinfo Builder Cfg Check Fault Format Gen Hashtbl Interp List Minic Opt Pretty Printf QCheck QCheck_alcotest Smt String
