test/test_main.ml: Alcotest List Test_compi Test_concolic Test_minic Test_mpisim Test_parse Test_smt Test_targets
