test/test_compi.ml: Alcotest Ast Branchinfo Builder Check Compi Concolic Coverage Execution Filename Int Lazy List Minic Smt String Symtab Sys Targets Unix
