test/test_targets.ml: Alcotest Branchinfo Check Compi Concolic Fault List Minic Pretty Printf Targets
