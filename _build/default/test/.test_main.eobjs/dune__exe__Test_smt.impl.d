test/test_smt.ml: Alcotest Constr Domain Fmt Linexp List Model Option QCheck QCheck_alcotest Smt Solver Varid
