test/test_mpisim.ml: Alcotest Array Ast Branchinfo Builder Check Collectives Fault Gen Int Interp List Minic Mpi_iface Mpisim QCheck QCheck_alcotest Rankmap Scheduler String Trace Value
