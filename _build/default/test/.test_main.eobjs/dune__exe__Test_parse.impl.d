test/test_parse.ml: Alcotest Array Ast Branchinfo Check Compi Concolic Fault Filename Format In_channel Interp List Minic Mpisim Parse Pretty Sys Targets
