test/test_concolic.ml: Alcotest Array Branchinfo Builder Cfg Check Concolic Coverage Execution Gen Hashtbl List Minic Pathlog QCheck QCheck_alcotest Smt Strategy String Symtab
