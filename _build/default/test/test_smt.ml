(* Tests for the Yices-substitute solver: linear expressions, constraint
   algebra, interval domains, full and incremental solving. *)

open Smt

let lookup_of_list bindings v =
  match List.assoc_opt v bindings with Some x -> x | None -> 0

(* ------------------------------------------------------------------ *)
(* Linexp                                                              *)
(* ------------------------------------------------------------------ *)

let test_linexp_const () =
  let e = Linexp.const 42 in
  Alcotest.(check (option int)) "const" (Some 42) (Linexp.is_const e);
  Alcotest.(check int) "eval" 42 (Linexp.eval (fun _ -> 0) e)

let test_linexp_combine () =
  (* 2x + 3y + 1  minus  x + 1  =  x + 3y *)
  let e1 = Linexp.of_terms [ (2, 0); (3, 1) ] 1 in
  let e2 = Linexp.of_terms [ (1, 0) ] 1 in
  let d = Linexp.sub e1 e2 in
  Alcotest.(check int) "coeff x" 1 (Linexp.coeff 0 d);
  Alcotest.(check int) "coeff y" 3 (Linexp.coeff 1 d);
  Alcotest.(check int) "const" 0 (Linexp.constant d);
  Alcotest.(check int) "eval" 35 (Linexp.eval (lookup_of_list [ (0, 5); (1, 10) ]) d)

let test_linexp_cancellation () =
  let e = Linexp.sub (Linexp.var 3) (Linexp.var 3) in
  Alcotest.(check (option int)) "x - x = 0" (Some 0) (Linexp.is_const e);
  Alcotest.(check bool) "no vars" true (Varid.Set.is_empty (Linexp.vars e))

let test_linexp_scale () =
  let e = Linexp.scale (-2) (Linexp.of_terms [ (1, 0) ] 3) in
  Alcotest.(check int) "coeff" (-2) (Linexp.coeff 0 e);
  Alcotest.(check int) "const" (-6) (Linexp.constant e);
  Alcotest.(check (option int)) "scale 0" (Some 0)
    (Linexp.is_const (Linexp.scale 0 (Linexp.var 1)))

let test_linexp_duplicate_terms () =
  let e = Linexp.of_terms [ (2, 0); (3, 0) ] 0 in
  Alcotest.(check int) "summed" 5 (Linexp.coeff 0 e)

(* ------------------------------------------------------------------ *)
(* Constr                                                              *)
(* ------------------------------------------------------------------ *)

let all_rels = [ Constr.Eq; Constr.Ne; Constr.Lt; Constr.Le; Constr.Gt; Constr.Ge ]

let test_negate_involutive () =
  let e = Linexp.of_terms [ (1, 0); (-1, 1) ] 2 in
  List.iter
    (fun rel ->
      let c = Constr.make e rel in
      Alcotest.(check bool)
        (Constr.rel_to_string rel) true
        (Constr.equal c (Constr.negate (Constr.negate c))))
    all_rels

let test_negate_flips_holds () =
  let e = Linexp.of_terms [ (1, 0) ] (-5) in
  let lookups = [ lookup_of_list [ (0, 4) ]; lookup_of_list [ (0, 5) ]; lookup_of_list [ (0, 6) ] ] in
  List.iter
    (fun rel ->
      let c = Constr.make e rel in
      List.iter
        (fun l ->
          Alcotest.(check bool)
            "negation flips" (not (Constr.holds l c))
            (Constr.holds l (Constr.negate c)))
        lookups)
    all_rels

let test_trivial () =
  Alcotest.(check (option bool)) "0 = 0" (Some true)
    (Constr.trivial (Constr.make (Linexp.const 0) Constr.Eq));
  Alcotest.(check (option bool)) "3 < 0" (Some false)
    (Constr.trivial (Constr.make (Linexp.const 3) Constr.Lt));
  Alcotest.(check (option bool)) "x = 0 not trivial" None
    (Constr.trivial (Constr.make (Linexp.var 0) Constr.Eq))

let test_normalize_tightens () =
  (* 2x <= 5 normalizes to x <= 2 *)
  let c = Constr.cmp (Linexp.of_terms [ (2, 0) ] 0) Constr.Le (Linexp.const 5) in
  (match Constr.normalize c with
  | `Constr c' ->
    Alcotest.(check int) "coeff 1" 1 (Linexp.coeff 0 c'.Constr.exp);
    Alcotest.(check bool) "x=2 ok" true (Constr.holds (fun _ -> 2) c');
    Alcotest.(check bool) "x=3 not" false (Constr.holds (fun _ -> 3) c')
  | `True | `False -> Alcotest.fail "should stay a constraint");
  (* 3x > 4 normalizes to x >= 2 *)
  let c2 = Constr.cmp (Linexp.of_terms [ (3, 0) ] 0) Constr.Gt (Linexp.const 4) in
  match Constr.normalize c2 with
  | `Constr c' ->
    Alcotest.(check bool) "x=2 ok" true (Constr.holds (fun _ -> 2) c');
    Alcotest.(check bool) "x=1 not" false (Constr.holds (fun _ -> 1) c')
  | `True | `False -> Alcotest.fail "should stay a constraint"

let test_normalize_divisibility () =
  (* 2x = 5 is unsatisfiable over the integers; 2x <> 5 is a tautology *)
  let eq = Constr.cmp (Linexp.of_terms [ (2, 0) ] 0) Constr.Eq (Linexp.const 5) in
  (match Constr.normalize eq with
  | `False -> ()
  | `True | `Constr _ -> Alcotest.fail "2x = 5 must be False");
  let ne = Constr.cmp (Linexp.of_terms [ (2, 0) ] 0) Constr.Ne (Linexp.const 5) in
  (match Constr.normalize ne with
  | `True -> ()
  | `False | `Constr _ -> Alcotest.fail "2x <> 5 must be True");
  (* and through the solver *)
  (match Solver.solve [ eq ] with
  | Solver.Unsat -> ()
  | Solver.Sat _ | Solver.Unknown -> Alcotest.fail "solver must reject 2x = 5");
  match Solver.solve [ ne ] with
  | Solver.Sat _ -> ()
  | Solver.Unsat | Solver.Unknown -> Alcotest.fail "solver must accept 2x <> 5"

let prop_normalize_preserves_solutions =
  QCheck.Test.make ~name:"constr: normalize preserves integer solutions" ~count:1000
    (QCheck.make
       QCheck.Gen.(
         let* c1 = int_range (-6) 6 in
         let* c2 = int_range (-6) 6 in
         let* k = int_range (-30) 30 in
         let* rel =
           oneofl [ Constr.Eq; Constr.Ne; Constr.Lt; Constr.Le; Constr.Gt; Constr.Ge ]
         in
         let* x = int_range (-20) 20 in
         let* y = int_range (-20) 20 in
         return (c1, c2, k, rel, x, y)))
    (fun (c1, c2, k, rel, x, y) ->
      let c = Constr.make (Linexp.of_terms [ (c1, 0); (c2, 1) ] k) rel in
      let lookup var = if var = 0 then x else y in
      let before = Constr.holds lookup c in
      match Constr.normalize c with
      | `True -> before
      | `False -> not before
      | `Constr c' -> Constr.holds lookup c' = before)

let test_dependency_closure () =
  (* c0: x0 < x1,  c1: x1 = x2,  c2: x3 > 0 — seed {x0} pulls c0, c1. *)
  let c0 = Constr.cmp (Linexp.var 0) Constr.Lt (Linexp.var 1) in
  let c1 = Constr.cmp (Linexp.var 1) Constr.Eq (Linexp.var 2) in
  let c2 = Constr.make (Linexp.var 3) Constr.Gt in
  let closure, vars =
    Constr.dependency_closure ~seed:(Varid.Set.singleton 0) [ c0; c1; c2 ]
  in
  Alcotest.(check int) "two constraints" 2 (List.length closure);
  Alcotest.(check bool) "x2 reached" true (Varid.Set.mem 2 vars);
  Alcotest.(check bool) "x3 not reached" false (Varid.Set.mem 3 vars)

let test_dependency_closure_empty_seed () =
  let c0 = Constr.make (Linexp.var 0) Constr.Ge in
  let closure, vars = Constr.dependency_closure ~seed:Varid.Set.empty [ c0 ] in
  Alcotest.(check int) "nothing pulled" 0 (List.length closure);
  Alcotest.(check bool) "no vars" true (Varid.Set.is_empty vars)

(* ------------------------------------------------------------------ *)
(* Domain                                                              *)
(* ------------------------------------------------------------------ *)

let test_domain_basics () =
  let d = Domain.make ~lo:(-3) ~hi:7 in
  Alcotest.(check int) "size" 11 (Domain.size d);
  Alcotest.(check bool) "mem" true (Domain.mem 0 d);
  Alcotest.(check bool) "not mem" false (Domain.mem 8 d);
  Alcotest.(check (option int)) "singleton" (Some 5)
    (Domain.is_singleton (Domain.singleton 5))

let test_domain_clamp () =
  let d = Domain.make ~lo:0 ~hi:10 in
  (match Domain.clamp_lo 4 d with
  | Some d' -> Alcotest.(check int) "lo" 4 d'.Domain.lo
  | None -> Alcotest.fail "clamp_lo emptied");
  Alcotest.(check bool) "empty clamp" true (Domain.clamp_lo 11 d = None);
  Alcotest.(check bool) "empty clamp hi" true (Domain.clamp_hi (-1) d = None)

let test_domain_inter () =
  let a = Domain.make ~lo:0 ~hi:10 and b = Domain.make ~lo:5 ~hi:20 in
  (match Domain.inter a b with
  | Some d ->
    Alcotest.(check int) "lo" 5 d.Domain.lo;
    Alcotest.(check int) "hi" 10 d.Domain.hi
  | None -> Alcotest.fail "non-empty intersection");
  Alcotest.(check bool) "disjoint" true
    (Domain.inter a (Domain.make ~lo:11 ~hi:12) = None)

let test_solver_unknown_on_tiny_budget () =
  (* a 6-variable all-different-style system cannot be decided in 1 node *)
  let cs =
    List.concat_map
      (fun i ->
        List.filter_map
          (fun j ->
            if i < j then Some (Constr.cmp (Linexp.var i) Constr.Ne (Linexp.var j))
            else None)
          [ 0; 1; 2; 3; 4; 5 ])
      [ 0; 1; 2; 3; 4; 5 ]
  in
  let doms =
    List.fold_left
      (fun acc v -> Varid.Map.add v (Domain.make ~lo:0 ~hi:5) acc)
      Varid.Map.empty [ 0; 1; 2; 3; 4; 5 ]
  in
  match Solver.solve ~budget:1 ~domains:doms cs with
  | Solver.Unknown -> ()
  | Solver.Sat _ -> Alcotest.fail "cannot decide in one node"
  | Solver.Unsat -> Alcotest.fail "the system is satisfiable"

let test_domain_remove_split () =
  let d = Domain.make ~lo:0 ~hi:1 in
  (match Domain.remove 0 d with
  | Some d' -> Alcotest.(check (option int)) "left 1" (Some 1) (Domain.is_singleton d')
  | None -> Alcotest.fail "remove emptied pair");
  Alcotest.(check bool) "remove last" true (Domain.remove 5 (Domain.singleton 5) = None);
  (match Domain.split (Domain.make ~lo:0 ~hi:9) with
  | Some (a, b) ->
    Alcotest.(check int) "left hi" 4 a.Domain.hi;
    Alcotest.(check int) "right lo" 5 b.Domain.lo
  | None -> Alcotest.fail "split failed");
  Alcotest.(check bool) "split singleton" true (Domain.split (Domain.singleton 2) = None)

(* ------------------------------------------------------------------ *)
(* Model                                                               *)
(* ------------------------------------------------------------------ *)

let test_model_merge () =
  let stale = Model.of_bindings [ (0, 1); (1, 2) ] in
  let fresh = Model.of_bindings [ (1, 9) ] in
  let m = Model.union_prefer_left fresh stale in
  Alcotest.(check (option int)) "kept" (Some 1) (Model.find 0 m);
  Alcotest.(check (option int)) "overridden" (Some 9) (Model.find 1 m)

let test_model_changed_vars () =
  let before = Model.of_bindings [ (0, 1); (1, 2) ] in
  let after = Model.of_bindings [ (0, 1); (1, 3); (2, 4) ] in
  let changed = Model.changed_vars ~before ~after in
  Alcotest.(check bool) "same not changed" false (Varid.Set.mem 0 changed);
  Alcotest.(check bool) "diff changed" true (Varid.Set.mem 1 changed);
  Alcotest.(check bool) "new changed" true (Varid.Set.mem 2 changed)

(* ------------------------------------------------------------------ *)
(* Solver                                                              *)
(* ------------------------------------------------------------------ *)

let check_sat name cs =
  match Solver.solve cs with
  | Solver.Sat m ->
    Alcotest.(check bool) (name ^ ": model satisfies") true (Solver.holds_all m cs);
    m
  | Solver.Unsat -> Alcotest.failf "%s: unexpectedly unsat" name
  | Solver.Unknown -> Alcotest.failf "%s: unexpectedly unknown" name

let check_unsat ?doms name cs =
  let domains = Option.value doms ~default:Varid.Map.empty in
  match Solver.solve ~domains cs with
  | Solver.Unsat -> ()
  | Solver.Sat _ -> Alcotest.failf "%s: unexpectedly sat" name
  | Solver.Unknown -> Alcotest.failf "%s: unexpectedly unknown" name

let test_solver_simple_eq () =
  (* x = 100 *)
  let cs = [ Constr.cmp (Linexp.var 0) Constr.Eq (Linexp.const 100) ] in
  let m = check_sat "x=100" cs in
  Alcotest.(check (option int)) "value" (Some 100) (Model.find 0 m)

let test_solver_paper_example () =
  (* Figure 1 of the paper: negate x <> 100 under x/2 + y <= 200 — we use
     the linearized form x + 2y <= 400. *)
  let cs =
    [
      Constr.cmp (Linexp.var 0) Constr.Eq (Linexp.const 100);
      Constr.cmp (Linexp.of_terms [ (1, 0); (2, 1) ] 0) Constr.Le (Linexp.const 400);
    ]
  in
  let m = check_sat "paper fig1" cs in
  Alcotest.(check (option int)) "x" (Some 100) (Model.find 0 m)

let test_solver_unsat_pair () =
  let cs =
    [
      Constr.cmp (Linexp.var 0) Constr.Gt (Linexp.const 10);
      Constr.cmp (Linexp.var 0) Constr.Lt (Linexp.const 5);
    ]
  in
  check_unsat "x>10 & x<5" cs

let test_solver_chain () =
  (* x0 < x1 < x2 < x3, all in [0,3] forces 0,1,2,3. *)
  let doms =
    List.fold_left
      (fun acc v -> Varid.Map.add v (Domain.make ~lo:0 ~hi:3) acc)
      Varid.Map.empty [ 0; 1; 2; 3 ]
  in
  let cs =
    [
      Constr.cmp (Linexp.var 0) Constr.Lt (Linexp.var 1);
      Constr.cmp (Linexp.var 1) Constr.Lt (Linexp.var 2);
      Constr.cmp (Linexp.var 2) Constr.Lt (Linexp.var 3);
    ]
  in
  match Solver.solve ~domains:doms cs with
  | Solver.Sat m ->
    List.iteri
      (fun i v -> Alcotest.(check (option int)) "forced" (Some i) (Model.find v m))
      [ 0; 1; 2; 3 ]
  | Solver.Unsat | Solver.Unknown -> Alcotest.fail "chain should be sat"

let test_solver_equalities_system () =
  (* x + y = 10 and x - y = 4  =>  x = 7, y = 3. *)
  let cs =
    [
      Constr.cmp (Linexp.add (Linexp.var 0) (Linexp.var 1)) Constr.Eq (Linexp.const 10);
      Constr.cmp (Linexp.sub (Linexp.var 0) (Linexp.var 1)) Constr.Eq (Linexp.const 4);
    ]
  in
  let m = check_sat "system" cs in
  Alcotest.(check (option int)) "x" (Some 7) (Model.find 0 m);
  Alcotest.(check (option int)) "y" (Some 3) (Model.find 1 m)

let test_solver_disequality () =
  let doms = Varid.Map.singleton 0 (Domain.make ~lo:5 ~hi:5) in
  check_unsat ~doms "x=5 dom & x<>5"
    [ Constr.cmp (Linexp.var 0) Constr.Ne (Linexp.const 5) ]

let test_solver_prefers_previous () =
  let prefer = Model.of_bindings [ (0, 42) ] in
  let cs = [ Constr.cmp (Linexp.var 0) Constr.Ge (Linexp.const 10) ] in
  match Solver.solve ~prefer cs with
  | Solver.Sat m -> Alcotest.(check (option int)) "kept 42" (Some 42) (Model.find 0 m)
  | Solver.Unsat | Solver.Unknown -> Alcotest.fail "should be sat"

let test_solver_caps_as_domains () =
  (* Input capping: x <= 300 as a domain bound plus x >= 250. *)
  let doms = Varid.Map.singleton 0 (Domain.make ~lo:0 ~hi:300) in
  let cs = [ Constr.cmp (Linexp.var 0) Constr.Ge (Linexp.const 250) ] in
  match Solver.solve ~domains:doms cs with
  | Solver.Sat m ->
    let x = Model.get 0 ~default:(-1) m in
    Alcotest.(check bool) "within cap" true (x >= 250 && x <= 300)
  | Solver.Unsat | Solver.Unknown -> Alcotest.fail "should be sat"

let test_solver_incremental_stale () =
  (* Constraints: x0 >= 0 (indep), x1 = x2 (linked). Negating within the
     x1/x2 component must not touch x0. *)
  let prev = Model.of_bindings [ (0, 7); (1, 1); (2, 1) ] in
  let target = Constr.cmp (Linexp.var 1) Constr.Eq (Linexp.const 3) in
  let cs =
    [
      Constr.make (Linexp.var 0) Constr.Ge;
      Constr.cmp (Linexp.var 1) Constr.Eq (Linexp.var 2);
      target;
    ]
  in
  match Solver.solve_incremental ~prev ~target cs with
  | Ok r ->
    Alcotest.(check (option int)) "x0 stale" (Some 7) (Model.find 0 r.Solver.model);
    Alcotest.(check (option int)) "x1 fresh" (Some 3) (Model.find 1 r.Solver.model);
    Alcotest.(check (option int)) "x2 follows" (Some 3) (Model.find 2 r.Solver.model);
    Alcotest.(check bool) "x0 not resolved" false (Varid.Set.mem 0 r.Solver.resolved);
    Alcotest.(check bool) "x1 changed" true (Varid.Set.mem 1 r.Solver.changed)
  | Error `Unsat -> Alcotest.fail "unexpectedly unsat"
  | Error `Unknown -> Alcotest.fail "unexpectedly unknown"

let test_solver_incremental_unsat () =
  let prev = Model.of_bindings [ (0, 1) ] in
  let target = Constr.cmp (Linexp.var 0) Constr.Lt (Linexp.const 0) in
  let cs = [ Constr.make (Linexp.var 0) Constr.Ge; target ] in
  match Solver.solve_incremental ~prev ~target cs with
  | Error `Unsat -> ()
  | Ok _ -> Alcotest.fail "should be unsat"
  | Error `Unknown -> Alcotest.fail "should be unsat, got unknown"

let test_solver_trivial_sets () =
  (match Solver.solve [] with
  | Solver.Sat _ -> ()
  | Solver.Unsat | Solver.Unknown -> Alcotest.fail "empty set is sat");
  check_unsat "trivially false" [ Constr.make (Linexp.const 1) Constr.Eq ]

let test_solver_negative_coefficients () =
  (* -3x + 2y = 5 and x = 1  =>  y = 4 *)
  let cs =
    [
      Constr.cmp (Linexp.of_terms [ (-3, 0); (2, 1) ] 0) Constr.Eq (Linexp.const 5);
      Constr.cmp (Linexp.var 0) Constr.Eq (Linexp.const 1);
    ]
  in
  let m = check_sat "neg coeff" cs in
  Alcotest.(check (option int)) "y" (Some 4) (Model.find 1 m)

let test_solver_ne_at_bounds () =
  (* x in [5, 6] and x <> 5 forces 6 *)
  let doms = Varid.Map.singleton 0 (Domain.make ~lo:5 ~hi:6) in
  let cs = [ Constr.cmp (Linexp.var 0) Constr.Ne (Linexp.const 5) ] in
  match Solver.solve ~domains:doms cs with
  | Solver.Sat m -> Alcotest.(check (option int)) "forced" (Some 6) (Model.find 0 m)
  | Solver.Unsat | Solver.Unknown -> Alcotest.fail "should be sat"

let test_solver_incremental_transitive () =
  (* chain x0 = x1, x1 = x2: negating something about x0 re-solves x2 *)
  let prev = Model.of_bindings [ (0, 1); (1, 1); (2, 1); (5, 9) ] in
  let target = Constr.cmp (Linexp.var 0) Constr.Eq (Linexp.const 4) in
  let cs =
    [
      Constr.cmp (Linexp.var 0) Constr.Eq (Linexp.var 1);
      Constr.cmp (Linexp.var 1) Constr.Eq (Linexp.var 2);
      Constr.make (Linexp.var 5) Constr.Ge;
      target;
    ]
  in
  match Solver.solve_incremental ~prev ~target cs with
  | Ok r ->
    Alcotest.(check (option int)) "x2 follows chain" (Some 4) (Model.find 2 r.Solver.model);
    Alcotest.(check bool) "x5 untouched" false (Varid.Set.mem 5 r.Solver.resolved);
    Alcotest.(check (option int)) "x5 stale" (Some 9) (Model.find 5 r.Solver.model)
  | Error _ -> Alcotest.fail "should be sat"

let test_solver_equality_and_strict_chain () =
  (* x < y, y < z, z <= 3, x >= 1: forces x=1,y=2,z=3 *)
  let cs =
    [
      Constr.cmp (Linexp.var 0) Constr.Lt (Linexp.var 1);
      Constr.cmp (Linexp.var 1) Constr.Lt (Linexp.var 2);
      Constr.cmp (Linexp.var 2) Constr.Le (Linexp.const 3);
      Constr.cmp (Linexp.var 0) Constr.Ge (Linexp.const 1);
    ]
  in
  let m = check_sat "strict chain" cs in
  Alcotest.(check (option int)) "x" (Some 1) (Model.find 0 m);
  Alcotest.(check (option int)) "y" (Some 2) (Model.find 1 m);
  Alcotest.(check (option int)) "z" (Some 3) (Model.find 2 m)

let prop_prefer_stable =
  (* if the previous model already satisfies the set, the solver keeps it *)
  QCheck.Test.make ~name:"solver: satisfied prefer model is kept" ~count:200
    (QCheck.make
       QCheck.Gen.(
         let* x = int_range (-50) 50 in
         let* k = int_range (-50) 50 in
         return (x, k)))
    (fun (x, k) ->
      let c = Constr.cmp (Linexp.var 0) Constr.Ge (Linexp.const k) in
      let prefer = Model.of_bindings [ (0, x) ] in
      match Solver.solve ~prefer [ c ] with
      | Solver.Sat m -> if x >= k then Model.find 0 m = Some x else true
      | Solver.Unsat | Solver.Unknown -> false)

(* ------------------------------------------------------------------ *)
(* Property tests                                                      *)
(* ------------------------------------------------------------------ *)

let gen_linexp =
  QCheck.Gen.(
    let* n = int_range 1 4 in
    let* terms =
      list_repeat n (pair (int_range (-5) 5) (int_range 0 4))
    in
    let* k = int_range (-50) 50 in
    return (Linexp.of_terms (List.map (fun (c, v) -> (c, v)) terms) k))

let gen_rel =
  QCheck.Gen.oneofl [ Constr.Eq; Constr.Ne; Constr.Lt; Constr.Le; Constr.Gt; Constr.Ge ]

let gen_constr =
  QCheck.Gen.(
    let* e = gen_linexp in
    let* r = gen_rel in
    return (Constr.make e r))

let arb_constrs =
  QCheck.make
    ~print:(fun cs -> Fmt.str "%a" (Fmt.list ~sep:Fmt.comma Constr.pp) cs)
    QCheck.Gen.(int_range 1 6 >>= fun n -> list_repeat n gen_constr)

let prop_solver_sound =
  QCheck.Test.make ~name:"solver: Sat models satisfy all constraints" ~count:300
    arb_constrs (fun cs ->
      match Solver.solve ~budget:20_000 cs with
      | Solver.Sat m -> Solver.holds_all m cs
      | Solver.Unsat | Solver.Unknown -> true)

let prop_solver_unsat_no_small_model =
  (* If the solver says Unsat, brute force over a small box finds nothing. *)
  QCheck.Test.make ~name:"solver: Unsat confirmed by brute force on small box" ~count:25
    arb_constrs (fun cs ->
      let box = Domain.make ~lo:(-6) ~hi:6 in
      let doms =
        List.fold_left
          (fun acc v -> Varid.Map.add v box acc)
          Varid.Map.empty [ 0; 1; 2; 3; 4 ]
      in
      match Solver.solve ~budget:50_000 ~domains:doms cs with
      | Solver.Sat _ | Solver.Unknown -> true
      | Solver.Unsat ->
        (* exhaustive check over vars actually used *)
        let vars =
          Varid.Set.elements
            (List.fold_left
               (fun acc c -> Varid.Set.union acc (Constr.vars c))
               Varid.Set.empty cs)
        in
        let rec enum assigned = function
          | [] -> not (Solver.holds_all (Model.of_bindings assigned) cs)
          | v :: rest ->
            let ok = ref true in
            for x = -6 to 6 do
              if !ok then ok := enum ((v, x) :: assigned) rest
            done;
            !ok
        in
        enum [] vars)

let prop_negate_flips =
  QCheck.Test.make ~name:"constr: negation flips under random assignments" ~count:500
    (QCheck.make
       QCheck.Gen.(
         let* c = gen_constr in
         let* xs = list_repeat 5 (int_range (-100) 100) in
         return (c, xs)))
    (fun (c, xs) ->
      let lookup v = List.nth xs (v mod 5) in
      Constr.holds lookup c <> Constr.holds lookup (Constr.negate c))

let prop_linexp_eval_homomorphic =
  QCheck.Test.make ~name:"linexp: eval distributes over add/sub/scale" ~count:500
    (QCheck.make
       QCheck.Gen.(
         let* a = gen_linexp in
         let* b = gen_linexp in
         let* s = int_range (-4) 4 in
         let* xs = list_repeat 5 (int_range (-100) 100) in
         return (a, b, s, xs)))
    (fun (a, b, s, xs) ->
      let l v = List.nth xs (v mod 5) in
      Linexp.eval l (Linexp.add a b) = Linexp.eval l a + Linexp.eval l b
      && Linexp.eval l (Linexp.sub a b) = Linexp.eval l a - Linexp.eval l b
      && Linexp.eval l (Linexp.scale s a) = s * Linexp.eval l a
      && Linexp.eval l (Linexp.neg a) = -Linexp.eval l a)

let prop_incremental_preserves_untouched =
  QCheck.Test.make ~name:"solver: incremental solve keeps disjoint vars stale" ~count:200
    (QCheck.make
       QCheck.Gen.(
         let* k = int_range (-20) 20 in
         let* stale = int_range (-100) 100 in
         return (k, stale)))
    (fun (k, stale) ->
      (* var 9 never interacts with var 0's constraints *)
      let prev = Model.of_bindings [ (0, 0); (9, stale) ] in
      let target = Constr.cmp (Linexp.var 0) Constr.Eq (Linexp.const k) in
      let cs = [ Constr.make (Linexp.var 9) Constr.Ge; target ] in
      match Solver.solve_incremental ~prev ~target cs with
      | Ok r ->
        Model.find 9 r.Solver.model = Some stale
        && Model.find 0 r.Solver.model = Some k
        && not (Varid.Set.mem 9 r.Solver.resolved)
      | Error _ -> false)

let unit_tests =
  [
    ("linexp const", `Quick, test_linexp_const);
    ("linexp combine", `Quick, test_linexp_combine);
    ("linexp cancellation", `Quick, test_linexp_cancellation);
    ("linexp scale", `Quick, test_linexp_scale);
    ("linexp duplicate terms", `Quick, test_linexp_duplicate_terms);
    ("constr negate involutive", `Quick, test_negate_involutive);
    ("constr negate flips holds", `Quick, test_negate_flips_holds);
    ("constr trivial", `Quick, test_trivial);
    ("constr normalize tightens", `Quick, test_normalize_tightens);
    ("constr normalize divisibility", `Quick, test_normalize_divisibility);
    ("constr dependency closure", `Quick, test_dependency_closure);
    ("constr closure empty seed", `Quick, test_dependency_closure_empty_seed);
    ("domain basics", `Quick, test_domain_basics);
    ("domain clamp", `Quick, test_domain_clamp);
    ("domain inter", `Quick, test_domain_inter);
    ("solver unknown on tiny budget", `Quick, test_solver_unknown_on_tiny_budget);
    ("domain remove/split", `Quick, test_domain_remove_split);
    ("model merge", `Quick, test_model_merge);
    ("model changed vars", `Quick, test_model_changed_vars);
    ("solver simple eq", `Quick, test_solver_simple_eq);
    ("solver paper fig1", `Quick, test_solver_paper_example);
    ("solver unsat pair", `Quick, test_solver_unsat_pair);
    ("solver ordering chain", `Quick, test_solver_chain);
    ("solver equality system", `Quick, test_solver_equalities_system);
    ("solver disequality", `Quick, test_solver_disequality);
    ("solver prefers previous", `Quick, test_solver_prefers_previous);
    ("solver caps as domains", `Quick, test_solver_caps_as_domains);
    ("solver incremental stale", `Quick, test_solver_incremental_stale);
    ("solver incremental unsat", `Quick, test_solver_incremental_unsat);
    ("solver trivial sets", `Quick, test_solver_trivial_sets);
    ("solver negative coefficients", `Quick, test_solver_negative_coefficients);
    ("solver ne at bounds", `Quick, test_solver_ne_at_bounds);
    ("solver incremental transitive", `Quick, test_solver_incremental_transitive);
    ("solver strict chain", `Quick, test_solver_equality_and_strict_chain);
  ]

let property_tests =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_solver_sound;
      prop_solver_unsat_no_small_model;
      prop_negate_flips;
      prop_linexp_eval_homomorphic;
      prop_incremental_preserves_untouched;
      prop_prefer_stable;
      prop_normalize_preserves_solutions;
    ]

let suite = [ ("smt:unit", unit_tests); ("smt:property", property_tests) ]
