(* Tests for the Mini-C substrate: builder, instrumentation pass,
   checker, interpreter semantics (including fault classes and the
   heavy/light symbolic shadow), pretty-printer, and static CFG. *)

open Minic
open Builder

let instrument program = (Branchinfo.instrument (Check.check_exn program)).Branchinfo.program

let run_light ?(inputs = []) program =
  let hooks = Interp.plain_hooks () in
  let hooks =
    {
      hooks with
      Interp.input_value =
        (fun d ->
          match List.assoc_opt d.Ast.iname inputs with
          | Some v -> v
          | None -> d.Ast.default);
    }
  in
  Interp.run hooks (instrument program)

let check_ok name result =
  match result with
  | Ok () -> ()
  | Error fault -> Alcotest.failf "%s: unexpected fault %s" name (Fault.to_string fault)

let check_fault name expected_kind result =
  match result with
  | Ok () -> Alcotest.failf "%s: expected %s, got success" name expected_kind
  | Error fault ->
    Alcotest.(check string) name expected_kind (Fault.kind_name fault)

(* ------------------------------------------------------------------ *)
(* Interpreter semantics                                               *)
(* ------------------------------------------------------------------ *)

let test_arith () =
  (* (3 + 4) * 2 - 5 = 9; 9 / 2 = 4; 9 mod 2 = 1 *)
  let p =
    program
      [
        func "main" []
          [
            decl "a" ((i 3 +: i 4) *: i 2 -: i 5);
            assert_ (v "a" =: i 9) "a";
            decl "q" (v "a" /: i 2);
            assert_ (v "q" =: i 4) "q";
            decl "r" (v "a" %: i 2);
            assert_ (v "r" =: i 1) "r";
          ];
      ]
  in
  check_ok "arith" (run_light p)

let test_float_arith () =
  let p =
    program
      [
        func "main" []
          [
            declf "x" (f 1.5 +: f 2.5);
            assert_ (v "x" =: f 4.0) "float add";
            declf "y" (v "x" /: f 0.0);
            (* IEEE: no fault, infinity *)
            assert_ (v "y" >: f 1000000.0) "inf";
          ];
      ]
  in
  check_ok "float" (run_light p)

let test_control_flow () =
  let p =
    program
      [
        func "main" []
          ([
             decl "sum" (i 0);
           ]
          @ for_ "k" (i 0) (i 10) [ assign "sum" (v "sum" +: v "k") ]
          @ [ assert_ (v "sum" =: i 45) "sum 0..9" ]);
      ]
  in
  check_ok "loop" (run_light p)

let test_functions () =
  let p =
    program
      [
        func "add" [ ("a", Ast.Tint); ("b", Ast.Tint) ] [ ret (v "a" +: v "b") ];
        func "main" []
          [
            decl "r" (i 0);
            call_assign "r" "add" [ i 20; i 22 ];
            assert_ (v "r" =: i 42) "call result";
          ];
      ]
  in
  check_ok "functions" (run_light p)

let test_recursion () =
  let p =
    program
      [
        func "fact" [ ("n", Ast.Tint) ]
          [
            if_ (v "n" <=: i 1) [ ret (i 1) ] [];
            decl "r" (i 0);
            call_assign "r" "fact" [ v "n" -: i 1 ];
            ret (v "n" *: v "r");
          ];
        func "main" []
          [
            decl "r" (i 0);
            call_assign "r" "fact" [ i 6 ];
            assert_ (v "r" =: i 720) "6!";
          ];
      ]
  in
  check_ok "recursion" (run_light p)

let test_arrays_by_reference () =
  let p =
    program
      [
        func "fill" [ ("a", Ast.Tint) ]
          (for_ "k" (i 0) (len "a") [ aset "a" (v "k") (v "k" *: v "k") ]);
        func "main" []
          [
            decl_arr "a" (i 5);
            call "fill" [ v "a" ];
            assert_ (idx "a" (i 4) =: i 16) "shared mutation";
          ];
      ]
  in
  check_ok "array ref" (run_light p)

let test_segfault_read () =
  let p =
    program [ func "main" [] [ decl_arr "a" (i 3); decl "x" (idx "a" (i 3)) ] ]
  in
  check_fault "oob read" "segfault" (run_light p)

let test_segfault_write () =
  let p = program [ func "main" [] [ decl_arr "a" (i 3); aset "a" (i (-1)) (i 0) ] ] in
  check_fault "oob write" "segfault" (run_light p)

let test_malloc_bug_shape () =
  (* The SUSY-HMC bug shape: allocate nroot elements where nroot*4 are
     needed, then write through the full intended range. *)
  let p =
    program
      [
        func "main" []
          ([ decl "nroot" (i 3); decl_arr "src" (v "nroot") ]
          @ for_ "k" (i 0) (v "nroot" *: i 4) [ aset "src" (v "k") (i 7) ]);
      ]
  in
  check_fault "malloc bug" "segfault" (run_light p)

let test_fpe () =
  let p =
    program
      [ func "main" [] [ decl "d" (i 0); decl "x" (i 10 /: v "d") ] ]
  in
  check_fault "div by zero" "floating-point-exception" (run_light p)

let test_mod_zero () =
  let p = program [ func "main" [] [ decl "d" (i 0); decl "x" (i 10 %: v "d") ] ] in
  check_fault "mod by zero" "floating-point-exception" (run_light p)

let test_assert_fail () =
  let p = program [ func "main" [] [ assert_ (i 1 =: i 2) "nope" ] ] in
  check_fault "assert" "abort" (run_light p)

let test_infinite_loop_detected () =
  let p = program [ func "main" [] [ while_ (i 1) [ Ast.Nop ] ] ] in
  let hooks = Interp.plain_hooks ~step_limit:10_000 () in
  match Interp.run hooks (instrument p) with
  | Error (Fault.Step_limit_exceeded _) -> ()
  | Error fault -> Alcotest.failf "wrong fault: %s" (Fault.to_string fault)
  | Ok () -> Alcotest.fail "expected timeout"

let test_logical_and_bitwise () =
  let p =
    program
      [
        func "main" []
          [
            decl "a" ((i 3 &&: i 0) +: (i 2 ||: i 0));  (* 0 + 1 *)
            assert_ (v "a" =: i 1) "logical";
            decl "b" (Ast.Binop (Ast.Bitand, i 12, i 10));
            assert_ (v "b" =: i 8) "bitand";
            decl "c" (Ast.Binop (Ast.Bitxor, i 12, i 10));
            assert_ (v "c" =: i 6) "bitxor";
            decl "d" (Ast.Binop (Ast.Shl, i 3, i 4));
            assert_ (v "d" =: i 48) "shl";
            decl "e" (Ast.Binop (Ast.Shr, i (-16), i 2));
            assert_ (v "e" =: i (-4)) "arithmetic shr";
          ];
      ]
  in
  check_ok "bitwise" (run_light p)

let test_scalar_params_by_value () =
  (* integer parameters are copies: callee mutation is invisible *)
  let p =
    program
      [
        func "mutate" [ ("a", Ast.Tint) ] [ assign "a" (i 999); ret (v "a") ];
        func "main" []
          [
            decl "x" (i 5);
            decl "r" (i 0);
            call_assign "r" "mutate" [ v "x" ];
            assert_ (v "x" =: i 5) "caller unchanged";
            assert_ (v "r" =: i 999) "callee saw the copy";
          ];
      ]
  in
  check_ok "by value" (run_light p)

let test_function_locals_do_not_leak () =
  let p =
    program
      [
        func "helper" [] [ decl "secret" (i 42); ret (i 0) ];
        func "main" []
          [
            decl "r" (i 0);
            call_assign "r" "helper" [];
            decl "x" (v "secret");  (* undefined here *)
          ];
      ]
  in
  (* the checker flags it statically ... *)
  Alcotest.(check bool) "checker catches leak" true (Check.check p <> []);
  (* ... and the interpreter faults dynamically *)
  let info = Branchinfo.instrument p in
  match Interp.run (Interp.plain_hooks ()) info.Branchinfo.program with
  | Error (Fault.Runtime_type_error _) -> ()
  | Error f -> Alcotest.failf "wrong fault %s" (Fault.to_string f)
  | Ok () -> Alcotest.fail "expected undefined-variable fault"

let test_float_array_coercion () =
  let p =
    program
      [
        func "main" []
          [
            decl_arrf "a" (i 3);
            aset "a" (i 0) (i 7);  (* int stored into float array *)
            declf "x" (idx "a" (i 0) +: f 0.5);
            assert_ (v "x" >: f 7.4) "coerced";
            assert_ (v "x" <: f 7.6) "coerced upper";
          ];
      ]
  in
  check_ok "float arrays" (run_light p)

let test_exit_is_clean () =
  let p =
    program
      [ func "main" [] [ exit_ (i 1); abort "never reached" ] ]
  in
  check_ok "exit is not a fault" (run_light p)

let test_len_expression () =
  let p =
    program
      [
        func "main" []
          [
            decl "n" (i 7);
            decl_arr "a" (v "n" +: i 3);
            assert_ (len "a" =: i 10) "len";
          ];
      ]
  in
  check_ok "len" (run_light p)

let test_inputs () =
  let p =
    program
      [
        func "main" []
          [
            input "n" ~cap:100 ~default:7;
            assert_ (v "n" =: i 33) "driver value used";
          ];
      ]
  in
  check_ok "inputs" (run_light ~inputs:[ ("n", 33) ] p)

(* ------------------------------------------------------------------ *)
(* Instrumentation pass                                                *)
(* ------------------------------------------------------------------ *)

let test_branch_ids () =
  let p =
    program
      [
        func "helper" [ ("x", Ast.Tint) ] [ if_ (v "x" >: i 0) [] []; ret (i 0) ];
        func "main" [] [ decl "y" (i 1); if_ (v "y" =: i 1) [ while_ (i 0) [] ] [] ];
      ]
  in
  let info = Branchinfo.instrument p in
  Alcotest.(check int) "conditionals" 3 info.Branchinfo.total_conditionals;
  Alcotest.(check int) "branches" 6 info.Branchinfo.total_branches;
  Alcotest.(check string) "owner of 0" "helper" info.Branchinfo.func_of_cond.(0);
  Alcotest.(check string) "owner of 1" "main" info.Branchinfo.func_of_cond.(1);
  Alcotest.(check int) "helper branches" 2 (Branchinfo.branches_of_func info "helper");
  Alcotest.(check int) "reachable main only" 4
    (Branchinfo.reachable_branches info ~encountered:(String.equal "main"))

let test_branch_of_cond_roundtrip () =
  for c = 0 to 20 do
    List.iter
      (fun taken ->
        let b = Branchinfo.branch_of_cond c taken in
        Alcotest.(check (pair int bool)) "roundtrip" (c, taken) (Branchinfo.cond_of_branch b))
      [ true; false ]
  done

let test_branch_hook_sees_all () =
  let p =
    program
      [
        func "main" []
          ([ decl "hits" (i 0) ]
          @ for_ "k" (i 0) (i 3) [ if_ (v "k" =: i 1) [ assign "hits" (v "hits" +: i 1) ] [] ]
          );
      ]
  in
  let seen = ref [] in
  let hooks = Interp.plain_hooks () in
  let hooks =
    {
      hooks with
      Interp.on_branch = (fun ~id ~taken ~constr:_ -> seen := (id, taken) :: !seen);
    }
  in
  check_ok "run" (Interp.run hooks (instrument p));
  (* loop cond: T,T,T,F = 4 events; inner if: F,T,F = 3 events *)
  Alcotest.(check int) "branch events" 7 (List.length !seen)

(* ------------------------------------------------------------------ *)
(* Checker                                                             *)
(* ------------------------------------------------------------------ *)

let test_check_catches_undefined_var () =
  let p = program [ func "main" [] [ decl "x" (v "nope") ] ] in
  Alcotest.(check bool) "error found" true (Check.check p <> [])

let test_check_catches_bad_call () =
  let p = program [ func "main" [] [ call "ghost" [] ] ] in
  Alcotest.(check bool) "error found" true (Check.check p <> []);
  let p2 =
    program
      [ func "f" [ ("a", Ast.Tint) ] []; func "main" [] [ call "f" [ i 1; i 2 ] ] ]
  in
  Alcotest.(check bool) "arity error" true (Check.check p2 <> [])

let test_check_missing_entry () =
  let p = program ~entry:"main" [ func "other" [] [] ] in
  Alcotest.(check bool) "no entry" true (Check.check p <> [])

let test_check_accepts_valid () =
  let p =
    program
      [
        func "main" []
          [
            input "n" ~default:1;
            decl "r" (i 0);
            comm_rank Ast.World "r";
            if_ (v "r" =: i 0) [ decl "x" (v "n" +: i 1) ] [];
          ];
      ]
  in
  Alcotest.(check (list string)) "clean" [] (Check.check p)

(* ------------------------------------------------------------------ *)
(* Symbolic shadow (heavy mode)                                        *)
(* ------------------------------------------------------------------ *)

(* Heavy hooks with one symbolic variable per input, recording branch
   constraints. *)
let heavy_run ?(inputs = []) program =
  let gen = Smt.Varid.make_gen () in
  let vars = Hashtbl.create 8 in
  let constraints = ref [] in
  let hooks = Interp.plain_hooks () in
  let hooks =
    {
      hooks with
      Interp.mode = Interp.Heavy;
      input_value =
        (fun d ->
          match List.assoc_opt d.Ast.iname inputs with
          | Some value -> value
          | None -> d.Ast.default);
      on_input =
        (fun d _ ->
          let id = Smt.Varid.fresh gen in
          Hashtbl.replace vars d.Ast.iname id;
          Some (Smt.Linexp.var id));
      on_branch =
        (fun ~id:_ ~taken:_ ~constr ->
          match constr with Some c -> constraints := c :: !constraints | None -> ());
    }
  in
  let result = Interp.run hooks (instrument program) in
  (result, vars, List.rev !constraints)

let test_shadow_linear_propagation () =
  (* y = 2*n + 3; branch y > 10 with n = 7 must produce the constraint
     2n + 3 > 10 in terms of the symbolic var. *)
  let p =
    program
      [
        func "main" []
          [
            input "n" ~default:7;
            decl "y" ((i 2 *: v "n") +: i 3);
            if_ (v "y" >: i 10) [] [];
          ];
      ]
  in
  let result, vars, constraints = heavy_run p in
  check_ok "run" result;
  let n_id = Hashtbl.find vars "n" in
  (match constraints with
  | [ c ] ->
    (* taken direction: 2n + 3 > 10, i.e. 2n - 7 > 0 *)
    Alcotest.(check int) "coeff" 2 (Smt.Linexp.coeff n_id c.Smt.Constr.exp);
    Alcotest.(check int) "const" (-7) (Smt.Linexp.constant c.Smt.Constr.exp);
    Alcotest.(check string) "rel" ">" (Smt.Constr.rel_to_string c.Smt.Constr.rel);
    Alcotest.(check bool) "holds at n=7" true
      (Smt.Constr.holds (fun _ -> 7) c)
  | cs -> Alcotest.failf "expected 1 constraint, got %d" (List.length cs))

let test_shadow_taken_direction () =
  (* With n = 3, branch n > 10 is not taken: constraint must be the
     negation and must hold for n = 3. *)
  let p =
    program
      [ func "main" [] [ input "n" ~default:3; if_ (v "n" >: i 10) [] [] ] ]
  in
  let result, _, constraints = heavy_run p in
  check_ok "run" result;
  match constraints with
  | [ c ] -> Alcotest.(check bool) "holds at 3" true (Smt.Constr.holds (fun _ -> 3) c)
  | cs -> Alcotest.failf "expected 1 constraint, got %d" (List.length cs)

let test_shadow_nonlinear_concretizes () =
  (* n*n is non-linear: the branch must report no constraint. *)
  let p =
    program
      [
        func "main" []
          [ input "n" ~default:4; decl "sq" (v "n" *: v "n"); if_ (v "sq" >: i 10) [] [] ];
      ]
  in
  let result, _, constraints = heavy_run p in
  check_ok "run" result;
  (* CREST-style: one side concretized, so a constraint IS produced but
     linear (coeff = concrete n). *)
  match constraints with
  | [ c ] ->
    Alcotest.(check bool) "linear" true
      (Smt.Varid.Set.cardinal (Smt.Constr.vars c) <= 1)
  | cs -> Alcotest.failf "expected 1 constraint, got %d" (List.length cs)

let test_shadow_through_call () =
  (* symbolic value flows through a function parameter and return *)
  let p =
    program
      [
        func "twice" [ ("a", Ast.Tint) ] [ ret (v "a" +: v "a") ];
        func "main" []
          [
            input "n" ~default:5;
            decl "d" (i 0);
            call_assign "d" "twice" [ v "n" ];
            if_ (v "d" =: i 10) [] [];
          ];
      ]
  in
  let result, vars, constraints = heavy_run p in
  check_ok "run" result;
  let n_id = Hashtbl.find vars "n" in
  match constraints with
  | [ c ] -> Alcotest.(check int) "coeff 2n" 2 (Smt.Linexp.coeff n_id c.Smt.Constr.exp)
  | cs -> Alcotest.failf "expected 1 constraint, got %d" (List.length cs)

let test_light_mode_no_constraints () =
  let p =
    program [ func "main" [] [ input "n" ~default:3; if_ (v "n" >: i 1) [] [] ] ]
  in
  let got_constr = ref false in
  let hooks = Interp.plain_hooks () in
  let hooks =
    {
      hooks with
      Interp.on_branch =
        (fun ~id:_ ~taken:_ ~constr -> if constr <> None then got_constr := true);
    }
  in
  check_ok "run" (Interp.run hooks (instrument p));
  Alcotest.(check bool) "light mode emits no constraints" false !got_constr

(* ------------------------------------------------------------------ *)
(* Pretty printer and CFG                                              *)
(* ------------------------------------------------------------------ *)

let test_pretty_roundtrip_smoke () =
  let p =
    program
      [
        func "main" []
          [
            input "n" ~cap:10 ~default:1;
            decl_arr "a" (v "n");
            if_ (v "n" >: i 0) [ aset "a" (i 0) (i 1) ] [ abort "bad n" ];
          ];
      ]
  in
  let contains hay needle =
    let nh = String.length hay and nn = String.length needle in
    let rec go k = k + nn <= nh && (String.sub hay k nn = needle || go (k + 1)) in
    go 0
  in
  let text = Pretty.program_to_string (instrument p) in
  Alcotest.(check bool) "mentions malloc" true (contains text "malloc");
  Alcotest.(check bool) "some lines" true (Pretty.source_lines p > 3)

let test_pretty_constructs () =
  let contains hay needle =
    let nh = String.length hay and nn = String.length needle in
    let rec go k = k + nn <= nh && (String.sub hay k nn = needle || go (k + 1)) in
    go 0
  in
  let render stmt = Format.asprintf "%a" Pretty.pp_stmt stmt in
  List.iter
    (fun (stmt, needle) ->
      Alcotest.(check bool) needle true (contains (render stmt) needle))
    [
      (decl "x" (i 1), "int x = 1;");
      (declf "y" (f 2.5), "double y = 2.5;");
      (assign "x" (v "x" +: i 1), "x = (x + 1);");
      (aset "a" (i 0) (i 9), "a[0] = 9;");
      (exit_ (i 1), "exit(1);");
      (abort "boom", "abort()");
      (input "n" ~cap:50, "COMPI_int_with_limit(&n, 50);");
      (comm_rank Ast.World "r", "MPI_Comm_rank(MPI_COMM_WORLD, &r);");
      (barrier Ast.World, "MPI_Barrier(MPI_COMM_WORLD);");
      (send ~dest:(i 1) ~tag:(i 0) (v "x"), "MPI_Send");
      (recv ~src:(i 0) ~into:(Ast.Lvar "b") (), "MPI_Recv");
      (isend ~dest:(i 1) ~tag:(i 0) ~req:"rq" (v "x"), "MPI_Isend");
      (irecv ~req:"rq" (), "MPI_Irecv");
      (wait (v "rq"), "MPI_Wait");
      (allreduce ~op:Ast.Op_sum (v "x") ~into:(Ast.Lvar "t"), "MPI_Allreduce");
      (scatter ~root:(i 0) "sb" ~into:(Ast.Lvar "b"), "MPI_Scatter");
    ]

let test_builder_operator_precedence () =
  (* `%:` binds like `*`, `+:` like `+` *)
  (match v "a" %: i 10 +: i 1 with
  | Ast.Binop (Ast.Add, Ast.Binop (Ast.Mod, _, _), Ast.Int 1) -> ()
  | _ -> Alcotest.fail "mod must bind tighter than add");
  match v "a" +: v "b" *: i 2 with
  | Ast.Binop (Ast.Add, Ast.Var "a", Ast.Binop (Ast.Mul, _, _)) -> ()
  | _ -> Alcotest.fail "mul must bind tighter than add"

let test_cfg_distances () =
  (* if (a) { if (b) {} } — cond 1 is inside cond 0's true arm. *)
  let p =
    program
      [
        func "main" []
          [
            decl "a" (i 1);
            decl "b" (i 1);
            if_ (v "a" >: i 0) [ if_ (v "b" >: i 0) [] [] ] [];
          ];
      ]
  in
  let info = Branchinfo.instrument (Check.check_exn p) in
  let g = Cfg.build info in
  Alcotest.(check (list int)) "succ true of 0" [ 1 ] (Cfg.successors g ~cond:0 ~taken:true);
  Alcotest.(check (list int)) "succ false of 0" [] (Cfg.successors g ~cond:0 ~taken:false);
  (* only branch 2 (cond 1 true) uncovered *)
  let dist = Cfg.distances g ~uncovered:(fun b -> b = 2) in
  Alcotest.(check int) "uncovered itself" 0 dist.(2);
  Alcotest.(check int) "one hop" 1 dist.(0);
  Alcotest.(check bool) "false side blocked" true (dist.(1) = max_int)

let test_cfg_loop_edge () =
  let p =
    program
      [ func "main" [] ([ decl "s" (i 0) ] @ for_ "k" (i 0) (i 3) [ if_ (v "s" =: i 0) [] [] ]) ]
  in
  let info = Branchinfo.instrument (Check.check_exn p) in
  let g = Cfg.build info in
  (* cond 0 = while, cond 1 = if; if's successors loop back to while *)
  Alcotest.(check (list int)) "while true enters if" [ 1 ]
    (Cfg.successors g ~cond:0 ~taken:true);
  Alcotest.(check (list int)) "if loops back" [ 0 ] (Cfg.successors g ~cond:1 ~taken:true)

(* ------------------------------------------------------------------ *)
(* Optimization pass                                                   *)
(* ------------------------------------------------------------------ *)

let test_opt_folds_literals () =
  let e = (i 3 +: i 4) *: i 2 -: i 5 in
  Alcotest.(check bool) "folded" true (Opt.fold_expr e = i 9);
  Alcotest.(check bool) "comparison folds" true (Opt.fold_expr (i 3 <: i 4) = i 1);
  Alcotest.(check bool) "lognot folds" true (Opt.fold_expr (lognot (i 0)) = i 1)

let test_opt_preserves_trapping_division () =
  let e = i 1 /: i 0 in
  (match Opt.fold_expr e with
  | Ast.Binop (Ast.Div, Ast.Int 1, Ast.Int 0) -> ()
  | _ -> Alcotest.fail "division by literal zero must survive folding");
  let e2 = i 1 %: i 0 in
  match Opt.fold_expr e2 with
  | Ast.Binop (Ast.Mod, Ast.Int 1, Ast.Int 0) -> ()
  | _ -> Alcotest.fail "mod by literal zero must survive folding"

let test_opt_does_not_fold_variables () =
  let e = v "x" *: i 0 in
  (* x * 0 is NOT folded: minic folding is literal-only *)
  match Opt.fold_expr e with
  | Ast.Binop (Ast.Mul, Ast.Var "x", Ast.Int 0) -> ()
  | _ -> Alcotest.fail "variable expressions must not fold"

let test_opt_removes_dead_branches () =
  let p =
    program
      [
        func "main" []
          [
            if_ (i 1) [ decl "alive" (i 1) ] [ decl "dead" (i 0) ];
            if_ (i 0) [ decl "dead2" (i 0) ] [ decl "alive2" (i 1) ];
            while_ (i 0) [ decl "dead3" (i 0) ];
          ];
      ]
  in
  let simplified = Opt.simplify_program p in
  Alcotest.(check int) "no conditionals left" 0 (Ast.conditionals_in_program simplified);
  (* the surviving declarations are the live ones *)
  let names =
    Ast.fold_program
      (fun acc stmt -> match stmt with Ast.Decl (n, _, _) -> n :: acc | _ -> acc)
      [] simplified
  in
  Alcotest.(check (list string)) "live decls" [ "alive2"; "alive" ] names

let test_opt_keeps_infinite_loop () =
  let p = program [ func "main" [] [ while_ (i 1) [ Ast.Nop ] ] ] in
  Alcotest.(check int) "loop kept" 1
    (Ast.conditionals_in_program (Opt.simplify_program p))

let prop_opt_preserves_outcome =
  (* simplification must not change the run's outcome *)
  QCheck.Test.make ~name:"opt: simplify preserves program outcome" ~count:200
    QCheck.(
      make
        Gen.(
          let* a = int_range (-20) 20 in
          let* b = int_range (-20) 20 in
          let* c = int_range 0 3 in
          return (a, b, c)))
    (fun (a, b, c) ->
      let p =
        program
          [
            func "main" []
              [
                input "n" ~default:a;
                decl "x" (i a +: (i b *: i 2));
                if_ (i b >: i 0) [ assign "x" (v "x" +: v "n") ] [ assign "x" (v "x" -: v "n") ];
                if_ (v "x" %: i (c + 1) =: i 0) [ decl "d" (i 1) ] [];
                decl_arr "arr" (i 3);
                aset "arr" (i (abs b mod 3)) (v "x");
              ];
          ]
      in
      let outcome prog =
        match run_light ~inputs:[ ("n", a) ] prog with
        | Ok () -> "ok"
        | Error f -> Fault.kind_name f
      in
      outcome p = outcome (Opt.simplify_program p))

(* ------------------------------------------------------------------ *)
(* Property tests                                                      *)
(* ------------------------------------------------------------------ *)

let prop_interp_deterministic =
  QCheck.Test.make ~name:"interp: deterministic across runs" ~count:50
    QCheck.(make Gen.(list_size (int_range 1 6) (int_range (-50) 50)))
    (fun xs ->
      let body =
        List.concat
          (List.mapi
             (fun k x ->
               [ decl (Printf.sprintf "v%d" k) (i x) ]
               @ for_
                   (Printf.sprintf "k%d" k)
                   (i 0) (i (abs x mod 7))
                   [
                     assign (Printf.sprintf "v%d" k) (v (Printf.sprintf "v%d" k) +: i 1);
                   ])
             xs)
      in
      let p = program [ func "main" [] body ] in
      let events run_id =
        ignore run_id;
        let seen = ref [] in
        let hooks = Interp.plain_hooks () in
        let hooks =
          { hooks with Interp.on_branch = (fun ~id ~taken ~constr:_ -> seen := (id, taken) :: !seen) }
        in
        (match Interp.run hooks (instrument p) with
        | Ok () -> ()
        | Error _ -> ());
        !seen
      in
      events 0 = events 1)

let prop_shadow_matches_concrete =
  (* For straight-line integer programs over one input, the symbolic
     shadow evaluated at the input value equals the concrete result. *)
  QCheck.Test.make ~name:"interp: shadow evaluates to concrete value" ~count:200
    QCheck.(make Gen.(pair (int_range (-20) 20) (list_size (int_range 1 5) (pair (int_range 0 2) (int_range (-9) 9)))))
    (fun (n0, ops) ->
      (* y starts as the input; apply ops: 0: y+c, 1: y-c, 2: y*c *)
      let apply e (kind, c) =
        match kind with
        | 0 -> e +: i c
        | 1 -> e -: i c
        | _ -> e *: i c
      in
      let expr = List.fold_left apply (v "n") ops in
      let p =
        program
          [
            func "main" []
              [ input "n" ~default:n0; decl "y" expr; if_ (v "y" >=: i 0) [] [] ];
          ]
      in
      let result, vars, constraints = heavy_run ~inputs:[ ("n", n0) ] p in
      match (result, constraints) with
      | Ok (), [ c ] ->
        let n_id = Hashtbl.find vars "n" in
        let lookup var = if var = n_id then n0 else 0 in
        Smt.Constr.holds lookup c
      | Ok (), [] ->
        (* a multiplication by zero can collapse the shadow to a
           constant, in which case the branch is concrete: legitimate *)
        List.exists (fun (kind, c) -> kind = 2 && c = 0) ops
      | Ok (), _ :: _ :: _ -> false
      | Error _, _ -> false)

let unit_tests =
  [
    ("arith", `Quick, test_arith);
    ("float arith", `Quick, test_float_arith);
    ("control flow", `Quick, test_control_flow);
    ("functions", `Quick, test_functions);
    ("recursion", `Quick, test_recursion);
    ("arrays by reference", `Quick, test_arrays_by_reference);
    ("segfault read", `Quick, test_segfault_read);
    ("segfault write", `Quick, test_segfault_write);
    ("malloc-bug shape", `Quick, test_malloc_bug_shape);
    ("fpe div", `Quick, test_fpe);
    ("fpe mod", `Quick, test_mod_zero);
    ("assert fail", `Quick, test_assert_fail);
    ("infinite loop timeout", `Quick, test_infinite_loop_detected);
    ("logical and bitwise ops", `Quick, test_logical_and_bitwise);
    ("scalar params by value", `Quick, test_scalar_params_by_value);
    ("locals do not leak", `Quick, test_function_locals_do_not_leak);
    ("float array coercion", `Quick, test_float_array_coercion);
    ("exit is clean", `Quick, test_exit_is_clean);
    ("len expression", `Quick, test_len_expression);
    ("inputs from driver", `Quick, test_inputs);
    ("branch ids", `Quick, test_branch_ids);
    ("branch id roundtrip", `Quick, test_branch_of_cond_roundtrip);
    ("branch hook count", `Quick, test_branch_hook_sees_all);
    ("check undefined var", `Quick, test_check_catches_undefined_var);
    ("check bad call", `Quick, test_check_catches_bad_call);
    ("check missing entry", `Quick, test_check_missing_entry);
    ("check valid program", `Quick, test_check_accepts_valid);
    ("shadow linear", `Quick, test_shadow_linear_propagation);
    ("shadow taken direction", `Quick, test_shadow_taken_direction);
    ("shadow nonlinear", `Quick, test_shadow_nonlinear_concretizes);
    ("shadow through call", `Quick, test_shadow_through_call);
    ("light mode", `Quick, test_light_mode_no_constraints);
    ("pretty smoke", `Quick, test_pretty_roundtrip_smoke);
    ("cfg distances", `Quick, test_cfg_distances);
    ("cfg loop edge", `Quick, test_cfg_loop_edge);
    ("pretty constructs", `Quick, test_pretty_constructs);
    ("builder precedence", `Quick, test_builder_operator_precedence);
    ("opt folds literals", `Quick, test_opt_folds_literals);
    ("opt keeps trapping div", `Quick, test_opt_preserves_trapping_division);
    ("opt literal-only", `Quick, test_opt_does_not_fold_variables);
    ("opt dead branches", `Quick, test_opt_removes_dead_branches);
    ("opt keeps infinite loop", `Quick, test_opt_keeps_infinite_loop);
  ]

let property_tests =
  List.map QCheck_alcotest.to_alcotest
    [ prop_interp_deterministic; prop_shadow_matches_concrete; prop_opt_preserves_outcome ]

let suite = [ ("minic:unit", unit_tests); ("minic:property", property_tests) ]
