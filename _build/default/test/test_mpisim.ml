(* Tests for the MPI simulator: rank maps, collective semantics, the
   scheduler (point-to-point, collectives, splits, deadlock detection),
   and integration with the Mini-C interpreter. *)

open Minic
open Mpisim

(* ------------------------------------------------------------------ *)
(* Rankmap                                                             *)
(* ------------------------------------------------------------------ *)

let test_rankmap_world () =
  let t = Rankmap.create ~nprocs:4 in
  Alcotest.(check int) "world size" 4 (Rankmap.world_size t);
  Alcotest.(check (option int)) "size" (Some 4) (Rankmap.size t ~comm:Mpi_iface.world);
  Alcotest.(check (option int)) "local of 2" (Some 2)
    (Rankmap.local_rank t ~comm:Mpi_iface.world ~global:2);
  Alcotest.(check (option int)) "global of 3" (Some 3)
    (Rankmap.global_of_local t ~comm:Mpi_iface.world ~local:3);
  Alcotest.(check (option int)) "unknown comm" None (Rankmap.size t ~comm:99)

let test_rankmap_split () =
  let t = Rankmap.create ~nprocs:5 in
  (* colors: evens vs odds; key = -global to reverse order within color *)
  let decisions = List.init 5 (fun g -> (g, g mod 2, -g)) in
  let handles = Rankmap.split t ~parent:Mpi_iface.world decisions in
  let h0 = List.assoc 0 handles and h1 = List.assoc 1 handles in
  Alcotest.(check bool) "distinct comms" true (h0 <> h1);
  Alcotest.(check bool) "same color same comm" true (List.assoc 2 handles = h0);
  (* evens reversed by key: members = [4;2;0] *)
  (match Rankmap.members t ~comm:h0 with
  | Some ms -> Alcotest.(check (list int)) "key order" [ 4; 2; 0 ] (Array.to_list ms)
  | None -> Alcotest.fail "missing comm");
  Alcotest.(check (option int)) "local rank of 0 in evens" (Some 2)
    (Rankmap.local_rank t ~comm:h0 ~global:0)

let test_rankmap_split_undefined_color () =
  let t = Rankmap.create ~nprocs:3 in
  let handles = Rankmap.split t ~parent:Mpi_iface.world [ (0, -1, 0); (1, 0, 0); (2, 0, 0) ] in
  Alcotest.(check int) "undefined color handle" (-1) (List.assoc 0 handles);
  Alcotest.(check bool) "others joined" true (List.assoc 1 handles >= 1)

let test_rankmap_mapping_table () =
  (* Paper Table II: rows of global ranks per local communicator. *)
  let t = Rankmap.create ~nprocs:5 in
  let _ = Rankmap.split t ~parent:Mpi_iface.world (List.init 5 (fun g -> (g, g mod 2, 0))) in
  let table = Rankmap.mapping_table t ~global:0 in
  Alcotest.(check int) "one non-world comm for rank 0" 1 (List.length table);
  let _, row = List.hd table in
  Alcotest.(check (list int)) "row" [ 0; 2; 4 ] (Array.to_list row)

(* ------------------------------------------------------------------ *)
(* Collectives semantics                                               *)
(* ------------------------------------------------------------------ *)

let value = Alcotest.testable Value.pp Value.equal

let test_reduce_ops () =
  let vs = [ Value.Vint 3; Value.Vint (-1); Value.Vint 5 ] in
  let check op expected =
    match Collectives.reduce op vs with
    | Ok got -> Alcotest.check value "reduce" (Value.Vint expected) got
    | Error e -> Alcotest.fail e
  in
  check Mpi_iface.Rsum 7;
  check Mpi_iface.Rprod (-15);
  check Mpi_iface.Rmax 5;
  check Mpi_iface.Rmin (-1)

let test_reduce_arrays_elementwise () =
  let vs = [ Value.Varr_int [| 1; 2 |]; Value.Varr_int [| 10; 20 |] ] in
  match Collectives.reduce Mpi_iface.Rsum vs with
  | Ok got -> Alcotest.check value "elementwise" (Value.Varr_int [| 11; 22 |]) got
  | Error e -> Alcotest.fail e

let test_reduce_mismatch () =
  match Collectives.reduce Mpi_iface.Rsum [ Value.Vint 1; Value.Vfloat 2.0 ] with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "expected mismatch error"

let test_gather_scatter_alltoall () =
  (match Collectives.gather [ Value.Vint 5; Value.Vint 6 ] with
  | Ok got -> Alcotest.check value "gather" (Value.Varr_int [| 5; 6 |]) got
  | Error e -> Alcotest.fail e);
  (match Collectives.scatter (Value.Varr_int [| 7; 8; 9 |]) 2 with
  | Ok [ a; b ] ->
    Alcotest.check value "scatter0" (Value.Vint 7) a;
    Alcotest.check value "scatter1" (Value.Vint 8) b
  | Ok _ -> Alcotest.fail "wrong arity"
  | Error e -> Alcotest.fail e);
  match
    Collectives.alltoall [ Value.Varr_int [| 1; 2 |]; Value.Varr_int [| 3; 4 |] ]
  with
  | Ok [ r0; r1 ] ->
    Alcotest.check value "alltoall0" (Value.Varr_int [| 1; 3 |]) r0;
    Alcotest.check value "alltoall1" (Value.Varr_int [| 2; 4 |]) r1
  | Ok _ -> Alcotest.fail "wrong arity"
  | Error e -> Alcotest.fail e

(* ------------------------------------------------------------------ *)
(* Scheduler                                                           *)
(* ------------------------------------------------------------------ *)

let ok_body f ~rank ~mpi =
  f ~rank ~mpi;
  Ok ()

let all_ok name (r : Scheduler.run_result) =
  Array.iteri
    (fun rank outcome ->
      match outcome with
      | Ok () -> ()
      | Error fault ->
        Alcotest.failf "%s: rank %d faulted: %s" name rank (Fault.to_string fault))
    r.Scheduler.outcomes

let test_sched_rank_size () =
  let seen = Array.make 4 (-1) in
  let r =
    Scheduler.run ~nprocs:4
      (ok_body (fun ~rank ~mpi ->
           match mpi (Mpi_iface.Rank Mpi_iface.world) with
           | Mpi_iface.Rint l ->
             seen.(rank) <- l;
             (match mpi (Mpi_iface.Size Mpi_iface.world) with
             | Mpi_iface.Rint 4 -> ()
             | _ -> failwith "bad size")
           | _ -> failwith "bad rank reply"))
  in
  all_ok "rank/size" r;
  Alcotest.(check (list int)) "ranks" [ 0; 1; 2; 3 ] (Array.to_list seen)

let test_sched_ring () =
  (* Each rank sends to (rank+1) mod n and receives from the left. *)
  let n = 5 in
  let received = Array.make n (-1) in
  let r =
    Scheduler.run ~nprocs:n
      (ok_body (fun ~rank ~mpi ->
           let _ =
             mpi
               (Mpi_iface.Send
                  {
                    comm = Mpi_iface.world;
                    dest = (rank + 1) mod n;
                    tag = 7;
                    data = Value.Vint (100 + rank);
                  })
           in
           match mpi (Mpi_iface.Recv { comm = Mpi_iface.world; src = None; tag = Some 7 }) with
           | Mpi_iface.Rvalue (Value.Vint got) -> received.(rank) <- got
           | _ -> failwith "bad recv"))
  in
  all_ok "ring" r;
  List.iteri
    (fun rank got ->
      Alcotest.(check int) "ring value" (100 + ((rank + n - 1) mod n)) got)
    (Array.to_list received)

let test_sched_recv_by_source () =
  (* rank 0 receives specifically from rank 2 then from rank 1. *)
  let order = ref [] in
  let r =
    Scheduler.run ~nprocs:3
      (ok_body (fun ~rank ~mpi ->
           if rank = 0 then begin
             (match mpi (Mpi_iface.Recv { comm = Mpi_iface.world; src = Some 2; tag = None }) with
             | Mpi_iface.Rvalue (Value.Vint x) -> order := x :: !order
             | _ -> failwith "bad");
             match mpi (Mpi_iface.Recv { comm = Mpi_iface.world; src = Some 1; tag = None }) with
             | Mpi_iface.Rvalue (Value.Vint x) -> order := x :: !order
             | _ -> failwith "bad"
           end
           else
             ignore
               (mpi
                  (Mpi_iface.Send
                     { comm = Mpi_iface.world; dest = 0; tag = 0; data = Value.Vint rank }))))
  in
  all_ok "recv by source" r;
  Alcotest.(check (list int)) "selective order" [ 1; 2 ] !order

let test_sched_allreduce () =
  let results = Array.make 6 0 in
  let r =
    Scheduler.run ~nprocs:6
      (ok_body (fun ~rank ~mpi ->
           match
             mpi
               (Mpi_iface.Allreduce
                  { comm = Mpi_iface.world; op = Mpi_iface.Rsum; data = Value.Vint rank })
           with
           | Mpi_iface.Rvalue (Value.Vint s) -> results.(rank) <- s
           | _ -> failwith "bad allreduce"))
  in
  all_ok "allreduce" r;
  Array.iter (fun s -> Alcotest.(check int) "sum 0..5" 15 s) results

let test_sched_bcast_and_reduce_root () =
  let got = Array.make 4 (-1) in
  let root_sum = ref (-1) in
  let r =
    Scheduler.run ~nprocs:4
      (ok_body (fun ~rank ~mpi ->
           (match
              mpi
                (Mpi_iface.Bcast
                   {
                     comm = Mpi_iface.world;
                     root = 2;
                     data = (if rank = 2 then Some (Value.Vint 77) else None);
                   })
            with
           | Mpi_iface.Rvalue (Value.Vint x) -> got.(rank) <- x
           | _ -> failwith "bad bcast");
           match
             mpi
               (Mpi_iface.Reduce
                  {
                    comm = Mpi_iface.world;
                    op = Mpi_iface.Rmax;
                    root = 1;
                    data = Value.Vint (10 * rank);
                  })
           with
           | Mpi_iface.Rvalue (Value.Vint s) ->
             if rank <> 1 then failwith "non-root got a reduce value";
             root_sum := s
           | Mpi_iface.Rnone -> if rank = 1 then failwith "root got no value"
           | _ -> failwith "bad reduce"))
  in
  all_ok "bcast+reduce" r;
  Array.iter (fun x -> Alcotest.(check int) "bcast value" 77 x) got;
  Alcotest.(check int) "reduce max" 30 !root_sum

let test_sched_split_then_collective () =
  (* Split into evens/odds, allreduce within each group. *)
  let sums = Array.make 6 0 in
  let r =
    Scheduler.run ~nprocs:6
      (ok_body (fun ~rank ~mpi ->
           match
             mpi
               (Mpi_iface.Split
                  { comm = Mpi_iface.world; color = rank mod 2; key = rank })
           with
           | Mpi_iface.Rint sub when sub >= 0 -> (
             match
               mpi
                 (Mpi_iface.Allreduce
                    { comm = sub; op = Mpi_iface.Rsum; data = Value.Vint rank })
             with
             | Mpi_iface.Rvalue (Value.Vint s) -> sums.(rank) <- s
             | _ -> failwith "bad sub allreduce")
           | _ -> failwith "bad split"))
  in
  all_ok "split" r;
  (* evens: 0+2+4 = 6, odds: 1+3+5 = 9 *)
  List.iteri
    (fun rank s -> Alcotest.(check int) "group sum" (if rank mod 2 = 0 then 6 else 9) s)
    (Array.to_list sums)

let test_sched_deadlock_detected () =
  let r =
    Scheduler.run ~nprocs:2 (fun ~rank ~mpi ->
        ignore rank;
        match mpi (Mpi_iface.Recv { comm = Mpi_iface.world; src = None; tag = None }) with
        | _ -> Ok ())
  in
  Alcotest.(check (list int)) "both deadlocked" [ 0; 1 ] r.Scheduler.deadlocked;
  Array.iter
    (fun outcome ->
      match outcome with
      | Error (Fault.Mpi_error _) -> ()
      | Error fault -> Alcotest.failf "wrong fault %s" (Fault.to_string fault)
      | Ok () -> Alcotest.fail "expected deadlock fault")
    r.Scheduler.outcomes

let test_sched_partial_deadlock () =
  (* rank 0 finishes; ranks 1 and 2 wait on each other's barrier vs recv. *)
  let r =
    Scheduler.run ~nprocs:3 (fun ~rank ~mpi ->
        if rank = 0 then Ok ()
        else if rank = 1 then
          match mpi (Mpi_iface.Recv { comm = Mpi_iface.world; src = Some 2; tag = None }) with
          | _ -> Ok ()
        else
          match mpi (Mpi_iface.Recv { comm = Mpi_iface.world; src = Some 1; tag = None }) with
          | _ -> Ok ())
  in
  Alcotest.(check (list int)) "two deadlocked" [ 1; 2 ] r.Scheduler.deadlocked;
  (match r.Scheduler.outcomes.(0) with
  | Ok () -> ()
  | Error _ -> Alcotest.fail "rank 0 should finish")

let test_sched_collective_mismatch () =
  let r =
    Scheduler.run ~nprocs:2 (fun ~rank ~mpi ->
        if rank = 0 then match mpi (Mpi_iface.Barrier Mpi_iface.world) with _ -> Ok ()
        else
          match
            mpi
              (Mpi_iface.Allreduce
                 { comm = Mpi_iface.world; op = Mpi_iface.Rsum; data = Value.Vint 1 })
          with
          | _ -> Ok ())
  in
  let faults =
    Array.to_list r.Scheduler.outcomes
    |> List.filter (function Error _ -> true | Ok () -> false)
  in
  Alcotest.(check bool) "at least one fault" true (faults <> [])

let test_sched_platform_limit () =
  match Scheduler.run ~max_procs:8 ~nprocs:9 (fun ~rank:_ ~mpi:_ -> Ok ()) with
  | exception Scheduler.Platform_limit 9 -> ()
  | _ -> Alcotest.fail "expected Platform_limit"

let test_sched_send_invalid_rank () =
  let r =
    Scheduler.run ~nprocs:2 (fun ~rank ~mpi ->
        if rank = 0 then
          match
            mpi
              (Mpi_iface.Send
                 { comm = Mpi_iface.world; dest = 5; tag = 0; data = Value.Vint 1 })
          with
          | _ -> Ok ()
        else Ok ())
  in
  match r.Scheduler.outcomes.(0) with
  | Error (Fault.Mpi_error _) -> ()
  | Error fault -> Alcotest.failf "wrong fault %s" (Fault.to_string fault)
  | Ok () -> Alcotest.fail "expected invalid-rank fault"

(* ------------------------------------------------------------------ *)
(* Non-blocking point-to-point                                         *)
(* ------------------------------------------------------------------ *)

let test_nb_basic_exchange () =
  (* both ranks post irecv, then isend, then wait: the classic pattern
     that deadlocks with blocking calls *)
  let n = 2 in
  let got = Array.make n (-1) in
  let r =
    Scheduler.run ~nprocs:n
      (ok_body (fun ~rank ~mpi ->
           let peer = 1 - rank in
           let rh =
             match mpi (Mpi_iface.Irecv { comm = Mpi_iface.world; src = Some peer; tag = None }) with
             | Mpi_iface.Rint h -> h
             | _ -> failwith "bad irecv"
           in
           let sh =
             match
               mpi
                 (Mpi_iface.Isend
                    { comm = Mpi_iface.world; dest = peer; tag = 5; data = Value.Vint (70 + rank) })
             with
             | Mpi_iface.Rint h -> h
             | _ -> failwith "bad isend"
           in
           (match mpi (Mpi_iface.Wait rh) with
           | Mpi_iface.Rvalue (Value.Vint x) -> got.(rank) <- x
           | _ -> failwith "bad wait recv");
           match mpi (Mpi_iface.Wait sh) with
           | Mpi_iface.Runit -> ()
           | _ -> failwith "bad wait send"))
  in
  all_ok "nb exchange" r;
  Alcotest.(check int) "rank 0 got" 71 got.(0);
  Alcotest.(check int) "rank 1 got" 70 got.(1)

let test_nb_wait_before_send () =
  (* rank 0 waits on an irecv posted before the matching send exists *)
  let got = ref (-1) in
  let r =
    Scheduler.run ~nprocs:2 (fun ~rank ~mpi ->
        if rank = 0 then begin
          let h =
            match mpi (Mpi_iface.Irecv { comm = Mpi_iface.world; src = None; tag = Some 9 }) with
            | Mpi_iface.Rint h -> h
            | _ -> failwith "bad irecv"
          in
          (match mpi (Mpi_iface.Wait h) with
          | Mpi_iface.Rvalue (Value.Vint x) -> got := x
          | _ -> failwith "bad wait");
          Ok ()
        end
        else begin
          ignore
            (mpi
               (Mpi_iface.Send
                  { comm = Mpi_iface.world; dest = 0; tag = 9; data = Value.Vint 123 }));
          Ok ()
        end)
  in
  all_ok "wait before send" r;
  Alcotest.(check int) "payload" 123 !got

let test_nb_message_already_in_mailbox () =
  (* the send happens long before the irecv is posted *)
  let got = ref (-1) in
  let r2 =
    Scheduler.run ~nprocs:2 (fun ~rank ~mpi ->
        if rank = 1 then begin
          ignore
            (mpi
               (Mpi_iface.Send
                  { comm = Mpi_iface.world; dest = 0; tag = 3; data = Value.Vint 55 }));
          ignore (mpi (Mpi_iface.Barrier Mpi_iface.world));
          Ok ()
        end
        else begin
          ignore (mpi (Mpi_iface.Barrier Mpi_iface.world));
          let h =
            match mpi (Mpi_iface.Irecv { comm = Mpi_iface.world; src = Some 1; tag = Some 3 }) with
            | Mpi_iface.Rint h -> h
            | _ -> failwith "bad irecv"
          in
          (match mpi (Mpi_iface.Wait h) with
          | Mpi_iface.Rvalue (Value.Vint x) -> got := x
          | _ -> failwith "bad wait");
          Ok ()
        end)
  in
  all_ok "mailbox then irecv" r2;
  Alcotest.(check int) "payload" 55 !got

let test_nb_posted_order () =
  (* two irecvs posted; two sends with distinct tags complete them in
     post order when filters allow either *)
  let first = ref (-1) and second = ref (-1) in
  let r =
    Scheduler.run ~nprocs:2 (fun ~rank ~mpi ->
        if rank = 0 then begin
          let h1 =
            match mpi (Mpi_iface.Irecv { comm = Mpi_iface.world; src = None; tag = None }) with
            | Mpi_iface.Rint h -> h
            | _ -> failwith "bad"
          in
          let h2 =
            match mpi (Mpi_iface.Irecv { comm = Mpi_iface.world; src = None; tag = None }) with
            | Mpi_iface.Rint h -> h
            | _ -> failwith "bad"
          in
          (match mpi (Mpi_iface.Wait h1) with
          | Mpi_iface.Rvalue (Value.Vint x) -> first := x
          | _ -> failwith "bad");
          (match mpi (Mpi_iface.Wait h2) with
          | Mpi_iface.Rvalue (Value.Vint x) -> second := x
          | _ -> failwith "bad");
          Ok ()
        end
        else begin
          ignore
            (mpi (Mpi_iface.Send { comm = Mpi_iface.world; dest = 0; tag = 1; data = Value.Vint 10 }));
          ignore
            (mpi (Mpi_iface.Send { comm = Mpi_iface.world; dest = 0; tag = 2; data = Value.Vint 20 }));
          Ok ()
        end)
  in
  all_ok "posted order" r;
  Alcotest.(check int) "first irecv gets first send" 10 !first;
  Alcotest.(check int) "second irecv gets second send" 20 !second

let test_nb_unmatched_wait_deadlocks () =
  let r =
    Scheduler.run ~nprocs:2 (fun ~rank ~mpi ->
        if rank = 0 then begin
          let h =
            match mpi (Mpi_iface.Irecv { comm = Mpi_iface.world; src = Some 1; tag = Some 42 }) with
            | Mpi_iface.Rint h -> h
            | _ -> failwith "bad"
          in
          match mpi (Mpi_iface.Wait h) with _ -> Ok ()
        end
        else Ok ())
  in
  Alcotest.(check (list int)) "waiter deadlocked" [ 0 ] r.Scheduler.deadlocked

let test_nb_wait_unknown_handle () =
  let r =
    Scheduler.run ~nprocs:1 (fun ~rank:_ ~mpi ->
        match mpi (Mpi_iface.Wait 999) with _ -> Ok ())
  in
  match r.Scheduler.outcomes.(0) with
  | Error (Fault.Mpi_error _) -> ()
  | Error f -> Alcotest.failf "wrong fault %s" (Fault.to_string f)
  | Ok () -> Alcotest.fail "expected fault"

(* ------------------------------------------------------------------ *)
(* Interp + scheduler integration                                      *)
(* ------------------------------------------------------------------ *)

open Builder

let run_spmd ~nprocs program =
  let instrumented = (Branchinfo.instrument (Check.check_exn program)).Branchinfo.program in
  Scheduler.run ~nprocs (fun ~rank:_ ~mpi ->
      Interp.run (Interp.plain_hooks ~mpi ()) instrumented)

let test_spmd_pi_style_reduction () =
  (* Figure-2-shaped program: rank 0 coordinates, all reduce a sum. *)
  let p =
    program
      [
        func "main" []
          [
            decl "rank" (i 0);
            decl "size" (i 0);
            comm_rank Ast.World "rank";
            comm_size Ast.World "size";
            decl "contrib" ((v "rank" +: i 1) *: i 10);
            decl "total" (i 0);
            allreduce ~op:Ast.Op_sum (v "contrib") ~into:(Ast.Lvar "total");
            (* with 4 procs: 10+20+30+40 = 100 *)
            assert_ (v "total" =: i 100) "reduced total";
            if_ (v "rank" =: i 0)
              [ assert_ (v "size" =: i 4) "size seen by root" ]
              [];
          ];
      ]
  in
  let r = run_spmd ~nprocs:4 p in
  all_ok "spmd allreduce" r

let test_spmd_master_worker () =
  let p =
    program
      [
        func "main" []
          [
            decl "rank" (i 0);
            decl "size" (i 0);
            comm_rank Ast.World "rank";
            comm_size Ast.World "size";
            if_
              (v "rank" =: i 0)
              ([ decl "acc" (i 0); decl "tmp" (i 0) ]
              @ for_ "src" (i 1) (v "size")
                  [
                    recv ~src:(v "src") ~tag:(i 1) ~into:(Ast.Lvar "tmp") ();
                    assign "acc" (v "acc" +: v "tmp");
                  ]
              @ [ assert_ (v "acc" =: i 6) "1+2+3" ])
              [ send ~dest:(i 0) ~tag:(i 1) (v "rank") ];
          ];
      ]
  in
  all_ok "master worker" (run_spmd ~nprocs:4 p)

let test_spmd_fault_isolated_to_one_rank () =
  (* Only rank 1 dereferences out of bounds; others complete or deadlock
     on the collective with it gone. *)
  let p =
    program
      [
        func "main" []
          [
            decl "rank" (i 0);
            comm_rank Ast.World "rank";
            decl_arr "a" (i 2);
            if_ (v "rank" =: i 1) [ aset "a" (i 5) (i 1) ] [];
          ];
      ]
  in
  let r = run_spmd ~nprocs:3 p in
  (match r.Scheduler.outcomes.(1) with
  | Error (Fault.Segfault _) -> ()
  | Error fault -> Alcotest.failf "wrong fault %s" (Fault.to_string fault)
  | Ok () -> Alcotest.fail "rank 1 should segfault");
  (match r.Scheduler.outcomes.(0) with
  | Ok () -> ()
  | Error _ -> Alcotest.fail "rank 0 should finish")

let test_sched_root_is_local_rank () =
  (* MPI semantics: the root argument of a collective is a LOCAL rank.
     Split with reversed keys so local rank 0 is global rank 2, then
     gather to "root 0" and check global 2 received. *)
  let holder = ref (-1) in
  let r =
    Scheduler.run ~nprocs:3
      (ok_body (fun ~rank ~mpi ->
           match
             mpi (Mpi_iface.Split { comm = Mpi_iface.world; color = 0; key = -rank })
           with
           | Mpi_iface.Rint sub -> (
             match
               mpi (Mpi_iface.Gather { comm = sub; root = 0; data = Value.Vint rank })
             with
             | Mpi_iface.Rvalue (Value.Varr_int a) ->
               holder := rank;
               (* local order is reversed: [2; 1; 0] *)
               if Array.to_list a <> [ 2; 1; 0 ] then failwith "wrong gather order"
             | Mpi_iface.Rnone -> ()
             | _ -> failwith "bad gather")
           | _ -> failwith "bad split"))
  in
  all_ok "root local" r;
  Alcotest.(check int) "root is global 2" 2 !holder

let test_sched_tag_wildcard_recv () =
  (* recv with no tag filter takes the first arrival regardless of tag;
     the barrier guarantees both messages are queued before receiving *)
  let got = ref [] in
  let r2 =
    Scheduler.run ~nprocs:2 (fun ~rank ~mpi ->
        if rank = 1 then begin
          ignore
            (mpi (Mpi_iface.Send { comm = Mpi_iface.world; dest = 0; tag = 5; data = Value.Vint 50 }));
          ignore
            (mpi (Mpi_iface.Send { comm = Mpi_iface.world; dest = 0; tag = 9; data = Value.Vint 90 }));
          ignore (mpi (Mpi_iface.Barrier Mpi_iface.world));
          Ok ()
        end
        else begin
          ignore (mpi (Mpi_iface.Barrier Mpi_iface.world));
          got := [];
          for _ = 1 to 2 do
            match mpi (Mpi_iface.Recv { comm = Mpi_iface.world; src = None; tag = None }) with
            | Mpi_iface.Rvalue (Value.Vint x) -> got := x :: !got
            | _ -> failwith "bad recv"
          done;
          Ok ()
        end)
  in
  all_ok "wildcard" r2;
  Alcotest.(check (list int)) "arrival order preserved" [ 90; 50 ] !got

let test_sched_reduce_on_subcomm () =
  (* reduce within each split half, root = local rank 0 *)
  let roots = Array.make 6 (-1) in
  let r =
    Scheduler.run ~nprocs:6
      (ok_body (fun ~rank ~mpi ->
           match
             mpi (Mpi_iface.Split { comm = Mpi_iface.world; color = rank / 3; key = rank })
           with
           | Mpi_iface.Rint sub -> (
             match
               mpi
                 (Mpi_iface.Reduce
                    { comm = sub; op = Mpi_iface.Rsum; root = 0; data = Value.Vint 1 })
             with
             | Mpi_iface.Rvalue (Value.Vint s) -> roots.(rank) <- s
             | Mpi_iface.Rnone -> ()
             | _ -> failwith "bad reduce")
           | _ -> failwith "bad split"))
  in
  all_ok "reduce subcomm" r;
  (* local roots are global 0 and 3; each group has 3 members *)
  Alcotest.(check int) "group A count" 3 roots.(0);
  Alcotest.(check int) "group B count" 3 roots.(3);
  Alcotest.(check int) "non-root untouched" (-1) roots.(1)

let test_sched_split_of_split () =
  (* nested splits: quarters via two halvings *)
  let sizes = Array.make 8 0 in
  let r =
    Scheduler.run ~nprocs:8
      (ok_body (fun ~rank ~mpi ->
           let sub =
             match
               mpi (Mpi_iface.Split { comm = Mpi_iface.world; color = rank / 4; key = rank })
             with
             | Mpi_iface.Rint h -> h
             | _ -> failwith "bad split"
           in
           let subrank =
             match mpi (Mpi_iface.Rank sub) with
             | Mpi_iface.Rint l -> l
             | _ -> failwith "bad rank"
           in
           match mpi (Mpi_iface.Split { comm = sub; color = subrank / 2; key = subrank }) with
           | Mpi_iface.Rint subsub -> (
             match mpi (Mpi_iface.Size subsub) with
             | Mpi_iface.Rint s -> sizes.(rank) <- s
             | _ -> failwith "bad size")
           | _ -> failwith "bad second split"))
  in
  all_ok "split of split" r;
  Array.iter (fun s -> Alcotest.(check int) "quarter size" 2 s) sizes

let prop_split_partitions =
  (* split partitions the parent: every member lands in exactly one new
     comm, groups have matching colors, key order respected *)
  QCheck.Test.make ~name:"rankmap: split partitions members" ~count:100
    QCheck.(
      make
        Gen.(
          let* n = int_range 1 10 in
          let* colors = list_repeat n (int_range (-1) 3) in
          let* keys = list_repeat n (int_range (-5) 5) in
          return (n, colors, keys)))
    (fun (n, colors, keys) ->
      let t = Rankmap.create ~nprocs:n in
      let decisions = List.init n (fun g -> (g, List.nth colors g, List.nth keys g)) in
      let handles = Rankmap.split t ~parent:Mpi_iface.world decisions in
      List.for_all
        (fun (g, color, _) ->
          let h = List.assoc g handles in
          if color < 0 then h = -1
          else
            match Rankmap.members t ~comm:h with
            | None -> false
            | Some ms ->
              (* contains g exactly once, same-color members only *)
              Array.to_list ms |> List.filter (( = ) g) |> List.length = 1
              && Array.for_all (fun g' -> List.nth colors g' = color) ms
              &&
              (* keys non-decreasing along the row *)
              let ks = Array.map (fun g' -> List.nth keys g') ms in
              Array.for_all (fun ok -> ok)
                (Array.mapi (fun k _ -> k = 0 || ks.(k - 1) <= ks.(k)) ks))
        decisions)

(* ------------------------------------------------------------------ *)
(* Trace                                                               *)
(* ------------------------------------------------------------------ *)

let test_trace_ring_events () =
  let n = 4 in
  let tracer = Trace.create () in
  let r =
    Scheduler.run ~on_event:(Trace.collector tracer) ~nprocs:n
      (ok_body (fun ~rank ~mpi ->
           ignore
             (mpi
                (Mpi_iface.Send
                   { comm = Mpi_iface.world; dest = (rank + 1) mod n; tag = 7;
                     data = Value.Vint rank }));
           match mpi (Mpi_iface.Recv { comm = Mpi_iface.world; src = None; tag = Some 7 }) with
           | _ -> ()))
  in
  all_ok "ring" r;
  let summary = Trace.summary tracer in
  Alcotest.(check (option int)) "n sends" (Some n) (List.assoc_opt "send" summary);
  Alcotest.(check (option int)) "n matches" (Some n) (List.assoc_opt "recv" summary);
  Alcotest.(check (option int)) "n finishes" (Some n) (List.assoc_opt "finished" summary);
  Alcotest.(check bool) "timeline renders" true (String.length (Trace.timeline tracer) > 0)

let test_trace_deadlock_event () =
  let tracer = Trace.create () in
  let _ =
    Scheduler.run ~on_event:(Trace.collector tracer) ~nprocs:2 (fun ~rank:_ ~mpi ->
        match mpi (Mpi_iface.Recv { comm = Mpi_iface.world; src = None; tag = None }) with
        | _ -> Ok ())
  in
  Alcotest.(check bool) "deadlock event" true
    (List.exists
       (function Trace.Deadlock { ranks } -> ranks = [ 0; 1 ] || ranks = [ 1; 0 ] | _ -> false)
       (Trace.events tracer))

(* ------------------------------------------------------------------ *)
(* Properties                                                          *)
(* ------------------------------------------------------------------ *)

let prop_allreduce_sum =
  QCheck.Test.make ~name:"scheduler: allreduce sum over random vectors" ~count:50
    QCheck.(make Gen.(list_size (int_range 1 8) (int_range (-100) 100)))
    (fun xs ->
      let n = List.length xs in
      let data = Array.of_list xs in
      let expected = List.fold_left ( + ) 0 xs in
      let results = Array.make n min_int in
      let r =
        Scheduler.run ~nprocs:n
          (ok_body (fun ~rank ~mpi ->
               match
                 mpi
                   (Mpi_iface.Allreduce
                      {
                        comm = Mpi_iface.world;
                        op = Mpi_iface.Rsum;
                        data = Value.Vint data.(rank);
                      })
               with
               | Mpi_iface.Rvalue (Value.Vint s) -> results.(rank) <- s
               | _ -> failwith "bad"))
      in
      Array.for_all (function Ok () -> true | Error _ -> false) r.Scheduler.outcomes
      && Array.for_all (Int.equal expected) results)

let prop_gather_order =
  QCheck.Test.make ~name:"scheduler: gather preserves rank order" ~count:50
    QCheck.(make Gen.(int_range 1 10))
    (fun n ->
      let gathered = ref [||] in
      let r =
        Scheduler.run ~nprocs:n
          (ok_body (fun ~rank ~mpi ->
               match
                 mpi
                   (Mpi_iface.Gather
                      { comm = Mpi_iface.world; root = 0; data = Value.Vint (rank * rank) })
               with
               | Mpi_iface.Rvalue (Value.Varr_int a) when rank = 0 -> gathered := a
               | Mpi_iface.Rnone when rank <> 0 -> ()
               | _ -> failwith "bad gather"))
      in
      Array.for_all (function Ok () -> true | Error _ -> false) r.Scheduler.outcomes
      && Array.to_list !gathered = List.init n (fun k -> k * k))

let unit_tests =
  [
    ("rankmap world", `Quick, test_rankmap_world);
    ("rankmap split", `Quick, test_rankmap_split);
    ("rankmap undefined color", `Quick, test_rankmap_split_undefined_color);
    ("rankmap mapping table", `Quick, test_rankmap_mapping_table);
    ("reduce ops", `Quick, test_reduce_ops);
    ("reduce arrays", `Quick, test_reduce_arrays_elementwise);
    ("reduce mismatch", `Quick, test_reduce_mismatch);
    ("gather/scatter/alltoall", `Quick, test_gather_scatter_alltoall);
    ("sched rank/size", `Quick, test_sched_rank_size);
    ("sched ring", `Quick, test_sched_ring);
    ("sched recv by source", `Quick, test_sched_recv_by_source);
    ("sched allreduce", `Quick, test_sched_allreduce);
    ("sched bcast+reduce", `Quick, test_sched_bcast_and_reduce_root);
    ("sched split", `Quick, test_sched_split_then_collective);
    ("sched deadlock", `Quick, test_sched_deadlock_detected);
    ("sched partial deadlock", `Quick, test_sched_partial_deadlock);
    ("sched collective mismatch", `Quick, test_sched_collective_mismatch);
    ("sched platform limit", `Quick, test_sched_platform_limit);
    ("sched invalid dest", `Quick, test_sched_send_invalid_rank);
    ("root is local rank", `Quick, test_sched_root_is_local_rank);
    ("tag wildcard recv", `Quick, test_sched_tag_wildcard_recv);
    ("reduce on subcomm", `Quick, test_sched_reduce_on_subcomm);
    ("split of split", `Quick, test_sched_split_of_split);
    ("nb exchange", `Quick, test_nb_basic_exchange);
    ("nb wait before send", `Quick, test_nb_wait_before_send);
    ("nb mailbox then irecv", `Quick, test_nb_message_already_in_mailbox);
    ("nb posted order", `Quick, test_nb_posted_order);
    ("nb unmatched wait deadlocks", `Quick, test_nb_unmatched_wait_deadlocks);
    ("nb wait unknown handle", `Quick, test_nb_wait_unknown_handle);
    ("trace ring events", `Quick, test_trace_ring_events);
    ("trace deadlock event", `Quick, test_trace_deadlock_event);
    ("spmd allreduce", `Quick, test_spmd_pi_style_reduction);
    ("spmd master/worker", `Quick, test_spmd_master_worker);
    ("spmd isolated fault", `Quick, test_spmd_fault_isolated_to_one_rank);
  ]

let property_tests =
  List.map QCheck_alcotest.to_alcotest
    [ prop_allreduce_sum; prop_gather_order; prop_split_partitions ]

let suite = [ ("mpisim:unit", unit_tests); ("mpisim:property", property_tests) ]
