(* Tests for the Mini-C surface parser, including the strongest check we
   have: every catalogue target pretty-prints to text that parses back
   into a program with the same branch structure and the same runtime
   behaviour. *)

open Minic

let parse_ok src =
  match Parse.program src with
  | Ok p -> p
  | Error e -> Alcotest.failf "parse error: %s" (Format.asprintf "%a" Parse.pp_error e)

let expr_ok src =
  match Parse.expr src with
  | Ok e -> e
  | Error e -> Alcotest.failf "parse error: %s" (Format.asprintf "%a" Parse.pp_error e)

(* ------------------------------------------------------------------ *)
(* Expressions                                                         *)
(* ------------------------------------------------------------------ *)

let eval_int e =
  (* closed integer expressions only *)
  let rec go (e : Ast.expr) =
    match e with
    | Ast.Int n -> n
    | Ast.Unop (Ast.Neg, e1) -> -go e1
    | Ast.Unop (Ast.Lognot, e1) -> if go e1 = 0 then 1 else 0
    | Ast.Binop (op, a, b) -> (
      let x = go a and y = go b in
      match op with
      | Ast.Add -> x + y
      | Ast.Sub -> x - y
      | Ast.Mul -> x * y
      | Ast.Div -> x / y
      | Ast.Mod -> x mod y
      | Ast.Eq -> if x = y then 1 else 0
      | Ast.Ne -> if x <> y then 1 else 0
      | Ast.Lt -> if x < y then 1 else 0
      | Ast.Le -> if x <= y then 1 else 0
      | Ast.Gt -> if x > y then 1 else 0
      | Ast.Ge -> if x >= y then 1 else 0
      | Ast.Logand -> if x <> 0 && y <> 0 then 1 else 0
      | Ast.Logor -> if x <> 0 || y <> 0 then 1 else 0
      | Ast.Bitand -> x land y
      | Ast.Bitor -> x lor y
      | Ast.Bitxor -> x lxor y
      | Ast.Shl -> x lsl y
      | Ast.Shr -> x asr y)
    | Ast.Float _ | Ast.Var _ | Ast.Idx _ | Ast.Len _ -> Alcotest.fail "not closed"
  in
  go e

let test_expr_precedence () =
  List.iter
    (fun (src, expected) ->
      Alcotest.(check int) src expected (eval_int (expr_ok src)))
    [
      ("1 + 2 * 3", 7);
      ("(1 + 2) * 3", 9);
      ("10 - 4 - 3", 3);  (* left associative *)
      ("7 % 4 + 1", 4);
      ("1 < 2 && 3 < 2", 0);
      ("1 < 2 || 3 < 2", 1);
      ("6 & 3", 2);
      ("6 ^ 3", 5);
      ("1 << 4", 16);
      ("-8 >> 1", -4);
      ("!(3 < 1)", 1);
      ("-(2 + 3)", -5);
      ("2 < 3 == 1", 1);
    ]

let test_expr_errors () =
  List.iter
    (fun src ->
      match Parse.expr src with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "should reject %S" src)
    [ "1 +"; "(1"; "a["; "*3"; "1 2" ]

(* ------------------------------------------------------------------ *)
(* Statements and programs                                             *)
(* ------------------------------------------------------------------ *)

let test_parse_simple_program () =
  let p =
    parse_ok
      {|
      int helper(int a) {
        if (a > 10) { return a - 10; }
        return a;
      }
      int main() {
        COMPI_int_with_limit(&n, 100);
        int x = 0;
        x = helper(n);
        int *buf = malloc(x + 1);
        buf[0] = 42;
        while (x > 0) { x = x - 1; }
        for (int k = 0; k < 3; k++) { buf[0] = buf[0] + k; }
        sanity(n >= 0);
        assert(buf[0] >= 42);
      }
      |}
  in
  Alcotest.(check (list string)) "validates" [] (Check.check p);
  let info = Branchinfo.instrument p in
  (* helper: 1 if; main: while + for-while + sanity-if = 3
     (Assert is a runtime check, not a branch) *)
  Alcotest.(check int) "conditionals" 4 info.Branchinfo.total_conditionals;
  let inputs = Ast.inputs_of_program p in
  (match inputs with
  | [ d ] ->
    Alcotest.(check string) "input name" "n" d.Ast.iname;
    Alcotest.(check (option int)) "cap" (Some 100) d.Ast.cap
  | _ -> Alcotest.fail "expected one input");
  (* runs cleanly *)
  match Interp.run (Interp.plain_hooks ()) info.Branchinfo.program with
  | Ok () -> ()
  | Error f -> Alcotest.failf "fault: %s" (Fault.to_string f)

let test_parse_mpi_program () =
  let p =
    parse_ok
      {|
      int main() {
        int rank = 0;
        int size = 0;
        MPI_Comm_rank(MPI_COMM_WORLD, &rank);
        MPI_Comm_size(MPI_COMM_WORLD, &size);
        int sub = 0;
        MPI_Comm_split(MPI_COMM_WORLD, rank % 2, rank, &sub);
        int total = 0;
        MPI_Allreduce(rank, &total, MPI_SUM, MPI_COMM_WORLD);
        if (rank == 0) {
          MPI_Send(total, 1, 7, MPI_COMM_WORLD);
        } else {
          if (rank == 1) {
            int got = 0;
            MPI_Recv(&got, 0, 7, MPI_COMM_WORLD);
            assert(got == total);
          }
        }
        MPI_Barrier(MPI_COMM_WORLD);
      }
      |}
  in
  Alcotest.(check (list string)) "validates" [] (Check.check p);
  let info = Branchinfo.instrument p in
  let r =
    Mpisim.Scheduler.run ~nprocs:4 (fun ~rank:_ ~mpi ->
        Interp.run (Interp.plain_hooks ~mpi ()) info.Branchinfo.program)
  in
  Array.iter
    (fun outcome ->
      match outcome with
      | Ok () -> ()
      | Error f -> Alcotest.failf "fault: %s" (Fault.to_string f))
    r.Mpisim.Scheduler.outcomes

let test_parse_nonblocking () =
  let p =
    parse_ok
      {|
      int main() {
        int rank = 0;
        MPI_Comm_rank(MPI_COMM_WORLD, &rank);
        int buf = 0;
        int rq = 0;
        int sq = 0;
        if (rank < 2) {
          MPI_Irecv(1 - rank, MPI_ANY, MPI_COMM_WORLD, &rq);
          MPI_Isend(rank + 40, 1 - rank, 3, MPI_COMM_WORLD, &sq);
          MPI_Wait(&rq -> &buf);
          MPI_Wait(&sq);
          assert(buf == 41 - rank);
        }
      }
      |}
  in
  let info = Branchinfo.instrument (Check.check_exn p) in
  let r =
    Mpisim.Scheduler.run ~nprocs:2 (fun ~rank:_ ~mpi ->
        Interp.run (Interp.plain_hooks ~mpi ()) info.Branchinfo.program)
  in
  Array.iter
    (fun outcome ->
      match outcome with
      | Ok () -> ()
      | Error f -> Alcotest.failf "fault: %s" (Fault.to_string f))
    r.Mpisim.Scheduler.outcomes

let test_parse_rejects_garbage () =
  List.iter
    (fun src ->
      match Parse.program src with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "should reject %S" src)
    [
      "int main( {}";
      "int main() { int x = ; }";
      "int main() { if (1) }";
      "int main() { MPI_Reduce(1, &x, MPI_BOGUS, 0, MPI_COMM_WORLD); }";
      "int main() { x = 1 }";
      "no_type main() {}";
    ]

let test_parse_error_has_line () =
  match Parse.program "int main() {\n  int x = ;\n}" with
  | Error e -> Alcotest.(check int) "line 2" 2 e.Parse.line
  | Ok _ -> Alcotest.fail "should fail"

(* ------------------------------------------------------------------ *)
(* Round trip: pretty -> parse preserves structure and behaviour        *)
(* ------------------------------------------------------------------ *)

let census (p : Ast.program) =
  List.map
    (fun (fn : Ast.func) -> (fn.Ast.fname, Ast.conditionals_in_func fn))
    p.Ast.funcs

let fixed_inputs (p : Ast.program) =
  List.map (fun (d : Ast.input_decl) -> (d.Ast.iname, max 1 (abs d.Ast.default))) (Ast.inputs_of_program p)

let behaviour info ~inputs ~nprocs =
  let config =
    {
      (Compi.Runner.default_config ~info) with
      Compi.Runner.nprocs;
      inputs;
      step_limit = 20_000_000;
    }
  in
  match Compi.Runner.run config with
  | Ok res ->
    ( List.sort compare (Concolic.Coverage.branch_list res.Compi.Runner.coverage),
      Array.to_list res.Compi.Runner.outcomes
      |> List.map (function Ok () -> "ok" | Error f -> Fault.kind_name f) )
  | Error (`Platform_limit _) -> Alcotest.fail "platform limit"

let test_roundtrip_all_targets () =
  List.iter
    (fun (t : Targets.Registry.t) ->
      let original = t.Targets.Registry.program in
      let reparsed = parse_ok (Pretty.program_to_string original) in
      Alcotest.(check (list (pair string int)))
        (t.Targets.Registry.name ^ ": conditional census")
        (census original) (census reparsed);
      Alcotest.(check (list string))
        (t.Targets.Registry.name ^ ": reparsed validates")
        [] (Check.check reparsed))
    (Targets.Catalog.all ())

let test_roundtrip_behaviour () =
  (* concrete behaviour identical on a fixed run for the MPI targets *)
  List.iter
    (fun name ->
      let t = Targets.Catalog.find_exn name in
      let original = t.Targets.Registry.program in
      let reparsed = parse_ok (Pretty.program_to_string original) in
      let inputs = fixed_inputs original in
      let a = behaviour (Branchinfo.instrument original) ~inputs ~nprocs:4 in
      let b = behaviour (Branchinfo.instrument reparsed) ~inputs ~nprocs:4 in
      Alcotest.(check (pair (list int) (list string)))
        (name ^ ": identical behaviour")
        a b)
    [ "toy-fig2"; "heat2d"; "imb-mpi1" ]

(* ------------------------------------------------------------------ *)
(* The .mc corpus shipped under examples/programs                       *)
(* ------------------------------------------------------------------ *)

let corpus_dir =
  (* dune runs tests from the build sandbox; walk up to the source root *)
  let rec find dir =
    let candidate = Filename.concat dir "examples/programs" in
    if Sys.file_exists candidate then Some candidate
    else
      let parent = Filename.dirname dir in
      if parent = dir then None else find parent
  in
  find (Sys.getcwd ())

let campaign_on src ~iterations =
  let program = parse_ok src in
  let info = Branchinfo.instrument (Check.check_exn program) in
  let settings =
    {
      Compi.Driver.default_settings with
      Compi.Driver.iterations;
      dfs_phase_iters = 20;
      initial_nprocs = 4;
      seed = 9;
    }
  in
  Compi.Driver.run ~settings info

let test_corpus () =
  match corpus_dir with
  | None -> Alcotest.skip ()
  | Some dir ->
    let read name = In_channel.with_open_text (Filename.concat dir name) In_channel.input_all in
    (* token_ring: out-of-bounds owner table *)
    let tr = campaign_on (read "token_ring.mc") ~iterations:300 in
    Alcotest.(check bool) "token_ring: segfault found" true
      (List.exists
         (fun (b : Compi.Driver.bug) ->
           match b.Compi.Driver.bug_fault with Fault.Segfault _ -> true | _ -> false)
         tr.Compi.Driver.bugs);
    (* pi_reduce: conservation assertion *)
    let pi = campaign_on (read "pi_reduce.mc") ~iterations:200 in
    Alcotest.(check bool) "pi_reduce: assertion found" true
      (List.exists
         (fun (b : Compi.Driver.bug) ->
           match b.Compi.Driver.bug_fault with Fault.Assert_fail _ -> true | _ -> false)
         pi.Compi.Driver.bugs);
    (* prefix_sum: stride bug deadlocks *)
    let ps = campaign_on (read "prefix_sum.mc") ~iterations:200 in
    Alcotest.(check bool) "prefix_sum: deadlock found" true
      (List.exists
         (fun (b : Compi.Driver.bug) ->
           match b.Compi.Driver.bug_fault with Fault.Mpi_error _ -> true | _ -> false)
         ps.Compi.Driver.bugs);
    (* halo_average: clean *)
    let ha = campaign_on (read "halo_average.mc") ~iterations:200 in
    Alcotest.(check int) "halo_average: no defects" 0
      (List.length (Compi.Driver.distinct_bugs ha));
    (* oddeven_sort: wrong-direction comparator violates sortedness *)
    let oe = campaign_on (read "oddeven_sort.mc") ~iterations:200 in
    Alcotest.(check bool) "oddeven_sort: assertion found" true
      (List.exists
         (fun (b : Compi.Driver.bug) ->
           match b.Compi.Driver.bug_fault with Fault.Assert_fail _ -> true | _ -> false)
         oe.Compi.Driver.bugs)

let unit_tests =
  [
    ("expr precedence", `Quick, test_expr_precedence);
    ("expr errors", `Quick, test_expr_errors);
    ("simple program", `Quick, test_parse_simple_program);
    ("mpi program", `Quick, test_parse_mpi_program);
    ("nonblocking program", `Quick, test_parse_nonblocking);
    ("rejects garbage", `Quick, test_parse_rejects_garbage);
    ("error carries line", `Quick, test_parse_error_has_line);
    ("roundtrip all targets", `Quick, test_roundtrip_all_targets);
    ("roundtrip behaviour", `Quick, test_roundtrip_behaviour);
    ("mc corpus", `Quick, test_corpus);
  ]

let suite = [ ("parse:unit", unit_tests) ]
