(* compi-cli: command-line front end for the COMPI reproduction.

     compi-cli list                          targets and their tuning
     compi-cli show susy-hmc                 pretty-print a target
     compi-cli test hpl --iterations 500     run a COMPI campaign
     compi-cli random hpl --time 10          random-testing baseline
     compi-cli exec susy-hmc -n 4 -i nt=4    one concrete run *)

open Cmdliner

let target_conv =
  let parse s =
    match Targets.Catalog.find s with
    | Some t -> Ok t
    | None ->
      Error
        (`Msg
          (Printf.sprintf "unknown target %s (try: %s)" s
             (String.concat ", " (Targets.Catalog.names ()))))
  in
  let print ppf (t : Targets.Registry.t) = Format.fprintf ppf "%s" t.Targets.Registry.name in
  Arg.conv (parse, print)

let kv_conv =
  let parse s =
    match String.index_opt s '=' with
    | Some k ->
      let key = String.sub s 0 k in
      let value = String.sub s (k + 1) (String.length s - k - 1) in
      (try Ok (key, int_of_string value) with Failure _ -> Error (`Msg "bad value"))
    | None -> Error (`Msg (Printf.sprintf "expected key=value, got %s" s))
  in
  let print ppf (k, v) = Format.fprintf ppf "%s=%d" k v in
  Arg.conv (parse, print)

let target_arg =
  Arg.(required & pos 0 (some target_conv) None & info [] ~docv:"TARGET")

(* ------------------------------------------------------------------ *)
(* list                                                                *)
(* ------------------------------------------------------------------ *)

let list_cmd =
  let run () =
    Printf.printf "%-10s %8s %8s %6s %6s  %s\n" "name" "branches" "sloc" "dfs-x"
      "bound" "description";
    List.iter
      (fun (t : Targets.Registry.t) ->
        let info = Targets.Registry.instrument t in
        let tn = t.Targets.Registry.tuning in
        Printf.printf "%-10s %8d %8d %6d %6d  %s\n" t.Targets.Registry.name
          info.Minic.Branchinfo.total_branches
          (Minic.Pretty.source_lines t.Targets.Registry.program)
          tn.Targets.Registry.dfs_phase tn.Targets.Registry.depth_bound
          t.Targets.Registry.description)
      (Targets.Catalog.all ())
  in
  Cmd.v (Cmd.info "list" ~doc:"List the available targets")
    Term.(const run $ const ())

(* ------------------------------------------------------------------ *)
(* show                                                                *)
(* ------------------------------------------------------------------ *)

let show_cmd =
  let run (t : Targets.Registry.t) =
    let info = Targets.Registry.instrument t in
    print_endline (Minic.Pretty.program_to_string info.Minic.Branchinfo.program)
  in
  Cmd.v (Cmd.info "show" ~doc:"Pretty-print a target program (C-flavoured)")
    Term.(const run $ target_arg)

(* ------------------------------------------------------------------ *)
(* test / random                                                       *)
(* ------------------------------------------------------------------ *)

let iterations_arg =
  Arg.(value & opt int 500 & info [ "iterations"; "I" ] ~docv:"N" ~doc:"Iteration budget")

let time_arg =
  Arg.(
    value
    & opt (some float) None
    & info [ "time" ] ~docv:"SECONDS" ~doc:"Wall-clock budget (overrides iterations)")

let seed_arg = Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED" ~doc:"Random seed")

let nprocs_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "nprocs"; "n" ] ~docv:"N" ~doc:"Initial number of processes")

let cap_arg =
  Arg.(
    value & opt_all kv_conv []
    & info [ "cap" ] ~docv:"INPUT=CAP" ~doc:"Override an input's cap (repeatable)")

let no_reduce_arg =
  Arg.(value & flag & info [ "no-reduce" ] ~doc:"Disable constraint-set reduction")

let one_way_arg =
  Arg.(value & flag & info [ "one-way" ] ~doc:"Disable two-way instrumentation")

let no_fwk_arg =
  Arg.(
    value & flag
    & info [ "no-fwk" ]
        ~doc:"Disable the MPI framework: fixed focus and process count, focus-only coverage")

let strategy_arg =
  let choices =
    Arg.enum
      [
        ("dfs", `Dfs); ("random-branch", `Random_branch); ("uniform", `Uniform);
        ("cfg", `Cfg); ("generational", `Generational);
      ]
  in
  Arg.(value & opt choices `Dfs & info [ "strategy" ] ~docv:"STRATEGY"
         ~doc:"Search strategy: $(b,dfs) (two-phase BoundedDFS, the COMPI default), \
               $(b,random-branch), $(b,uniform), $(b,cfg), or $(b,generational) \
               (SAGE-style, beyond the paper)")

let settings_of (t : Targets.Registry.t) iterations time seed nprocs caps no_reduce one_way
    no_fwk strategy =
  let tn = t.Targets.Registry.tuning in
  let info = Targets.Registry.instrument t in
  let strategy =
    match strategy with
    | `Dfs -> Compi.Driver.Two_phase_dfs
    | `Random_branch -> Compi.Driver.Fixed_strategy Concolic.Strategy.Random_branch
    | `Uniform -> Compi.Driver.Fixed_strategy Concolic.Strategy.Uniform_random
    | `Cfg ->
      Compi.Driver.Fixed_strategy (Concolic.Strategy.Cfg_directed (Minic.Cfg.build info))
    | `Generational ->
      Compi.Driver.Fixed_strategy
        (Concolic.Strategy.Generational tn.Targets.Registry.depth_bound)
  in
  ( info,
    {
      Compi.Driver.default_settings with
      Compi.Driver.iterations = (if time = None then iterations else max_int);
      time_budget = time;
      dfs_phase_iters = tn.Targets.Registry.dfs_phase;
      initial_nprocs = Option.value nprocs ~default:tn.Targets.Registry.initial_nprocs;
      step_limit = tn.Targets.Registry.step_limit;
      cap_overrides = caps;
      reduce = not no_reduce;
      two_way = not one_way;
      framework = not no_fwk;
      strategy;
      seed;
    } )

let report (r : Compi.Driver.result) =
  Printf.printf "iterations      %d\n" r.Compi.Driver.iterations_run;
  Printf.printf "covered         %d / %d reachable (%.1f%%), %d total\n"
    r.Compi.Driver.covered_branches r.Compi.Driver.reachable_branches
    (100.0 *. r.Compi.Driver.coverage_rate)
    r.Compi.Driver.total_branches;
  Printf.printf "max constraint  %d%s\n" r.Compi.Driver.max_constraint_set
    (match r.Compi.Driver.derived_bound with
    | Some b -> Printf.sprintf " (derived BoundedDFS bound %d)" b
    | None -> "");
  Printf.printf "wall time       %.2fs\n" r.Compi.Driver.wall_time;
  let bugs = Compi.Driver.distinct_bugs r in
  Printf.printf "distinct bugs   %d\n" (List.length bugs);
  List.iter
    (fun (b : Compi.Driver.bug) ->
      Printf.printf "  [iter %d, np %d] %s\n" b.Compi.Driver.bug_iteration
        b.Compi.Driver.bug_nprocs
        (Minic.Fault.to_string b.Compi.Driver.bug_fault);
      Printf.printf "     inputs: %s\n"
        (String.concat ", "
           (List.map (fun (k, x) -> Printf.sprintf "%s=%d" k x) b.Compi.Driver.bug_inputs));
      if b.Compi.Driver.bug_context <> [] then
        Printf.printf "     focus path tail: %s\n"
          (String.concat " -> "
             (List.map
                (fun (cond, taken) ->
                  Printf.sprintf "%d%s" cond (if taken then "T" else "F"))
                b.Compi.Driver.bug_context)))
    bugs

let save_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "save-bugs" ] ~docv:"PATH" ~doc:"Save error-inducing inputs as test cases")

let csv_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "csv" ] ~docv:"PATH" ~doc:"Dump per-iteration statistics as CSV")

let curve_arg =
  Arg.(value & flag & info [ "curve" ] ~doc:"Print an ASCII coverage curve")

let uncovered_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "uncovered" ] ~docv:"N" ~doc:"List up to N still-uncovered branches")

let annotate_arg =
  Arg.(
    value & flag
    & info [ "annotate" ] ~doc:"Print the program with per-branch coverage markers")

let test_cmd =
  let run t iterations time seed nprocs caps no_reduce one_way no_fwk strategy save_bugs
      csv curve uncovered_n annotate =
    let info, settings =
      settings_of t iterations time seed nprocs caps no_reduce one_way no_fwk strategy
    in
    let result = Compi.Driver.run ~settings info in
    report result;
    if curve then print_string (Compi.Report.ascii_curve result);
    (match uncovered_n with
    | Some n ->
      let misses = Compi.Report.uncovered info result.Compi.Driver.coverage in
      Printf.printf "\nuncovered branches (%d total):\n" (List.length misses);
      List.iteri
        (fun k (cond, dir, func) ->
          if k < n then
            Printf.printf "  cond %d %s side in %s\n" cond (if dir then "T" else "F") func)
        misses
    | None -> ());
    if annotate then
      print_string (Compi.Report.annotate info result.Compi.Driver.coverage);
    (match csv with
    | Some path ->
      Out_channel.with_open_text path (fun oc ->
          Out_channel.output_string oc (Compi.Report.stats_csv result));
      Printf.printf "statistics written to %s\n" path
    | None -> ());
    match save_bugs with
    | Some path ->
      let cases =
        List.map
          (Compi.Testcase.of_bug ~target:t.Targets.Registry.name)
          (Compi.Driver.distinct_bugs result)
      in
      Compi.Testcase.save ~path cases;
      Printf.printf "%d test case(s) written to %s\n" (List.length cases) path
    | None -> ()
  in
  Cmd.v
    (Cmd.info "test" ~doc:"Run a COMPI concolic-testing campaign on a target")
    Term.(
      const run $ target_arg $ iterations_arg $ time_arg $ seed_arg $ nprocs_arg $ cap_arg
      $ no_reduce_arg $ one_way_arg $ no_fwk_arg $ strategy_arg $ save_arg $ csv_arg
      $ curve_arg $ uncovered_arg $ annotate_arg)

let replay_cmd =
  let path_arg = Arg.(required & pos 0 (some string) None & info [] ~docv:"PATH") in
  let run path =
    match Compi.Testcase.load ~path with
    | Error e ->
      Printf.eprintf "cannot load %s: %s\n" path e;
      exit 1
    | Ok cases ->
      List.iteri
        (fun k (c : Compi.Testcase.t) ->
          match Targets.Catalog.find c.Compi.Testcase.target with
          | None -> Printf.printf "case %d: unknown target %s\n" k c.Compi.Testcase.target
          | Some t -> (
            let info = Targets.Registry.instrument t in
            Printf.printf "case %d (%s, np=%d):\n" k c.Compi.Testcase.target
              c.Compi.Testcase.nprocs;
            match Compi.Testcase.replay c ~info () with
            | Error (`Platform_limit n) -> Printf.printf "  platform limit (%d procs)\n" n
            | Ok [] -> Printf.printf "  clean run (bug did not reproduce)\n"
            | Ok faults ->
              List.iter
                (fun (rank, f) ->
                  Printf.printf "  rank %d: %s\n" rank (Minic.Fault.to_string f))
                faults))
        cases
  in
  Cmd.v
    (Cmd.info "replay" ~doc:"Replay saved test cases (bug reproduction)")
    Term.(const run $ path_arg)

let random_cmd =
  let run t iterations time seed nprocs caps =
    let info, settings =
      settings_of t iterations time seed nprocs caps false false false `Dfs
    in
    report (Compi.Random_testing.run ~settings info)
  in
  Cmd.v
    (Cmd.info "random" ~doc:"Run the random-testing baseline on a target")
    Term.(
      const run $ target_arg $ iterations_arg $ time_arg $ seed_arg $ nprocs_arg $ cap_arg)

(* ------------------------------------------------------------------ *)
(* exec: one concrete run                                              *)
(* ------------------------------------------------------------------ *)

let exec_inputs_arg =
  Arg.(
    value & opt_all kv_conv []
    & info [ "input"; "i" ] ~docv:"NAME=VALUE" ~doc:"Set a marked input (repeatable)")

let trace_arg =
  Arg.(value & flag & info [ "trace" ] ~doc:"Print the communication timeline")

let exec_cmd =
  let run (t : Targets.Registry.t) nprocs inputs trace =
    let info = Targets.Registry.instrument t in
    let tracer = Mpisim.Trace.create () in
    let config =
      {
        (Compi.Runner.default_config ~info) with
        Compi.Runner.nprocs = Option.value nprocs ~default:4;
        inputs;
        step_limit = t.Targets.Registry.tuning.Targets.Registry.step_limit;
        on_event = (if trace then Mpisim.Trace.collector tracer else fun _ -> ());
      }
    in
    match Compi.Runner.run config with
    | Error (`Platform_limit n) -> Printf.printf "platform limit: %d processes\n" n
    | Ok res ->
      Printf.printf "covered %d branches across %d processes in %.1fms\n"
        (Concolic.Coverage.covered_branches res.Compi.Runner.coverage)
        config.Compi.Runner.nprocs
        (1000.0 *. res.Compi.Runner.wall_time);
      (match Compi.Runner.faults res with
      | [] -> Printf.printf "all processes completed cleanly\n"
      | faults ->
        List.iter
          (fun (rank, f) ->
            Printf.printf "rank %d: %s\n" rank (Minic.Fault.to_string f))
          faults);
      if res.Compi.Runner.deadlocked <> [] then
        Printf.printf "deadlocked ranks: %s\n"
          (String.concat ", " (List.map string_of_int res.Compi.Runner.deadlocked));
      if trace then begin
        Printf.printf "\ncommunication trace (%d events):\n" (Mpisim.Trace.length tracer);
        List.iter
          (fun (kind, n) -> Printf.printf "  %-12s %d\n" kind n)
          (Mpisim.Trace.summary tracer);
        print_string (Mpisim.Trace.timeline ~limit:60 tracer)
      end
  in
  Cmd.v
    (Cmd.info "exec" ~doc:"Execute a target once with concrete inputs")
    Term.(const run $ target_arg $ nprocs_arg $ exec_inputs_arg $ trace_arg)

(* ------------------------------------------------------------------ *)
(* test-file: campaigns on Mini-C source files                          *)
(* ------------------------------------------------------------------ *)

let test_file_cmd =
  let path_arg = Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE.mc") in
  let run path iterations time seed nprocs caps =
    let src = In_channel.with_open_text path In_channel.input_all in
    match Minic.Parse.program src with
    | Error e ->
      Printf.eprintf "%s: %s\n" path (Format.asprintf "%a" Minic.Parse.pp_error e);
      exit 1
    | Ok program -> (
      match Minic.Check.check program with
      | _ :: _ as errors ->
        List.iter (fun err -> Printf.eprintf "%s: %s\n" path err) errors;
        exit 1
      | [] ->
        let info = Minic.Branchinfo.instrument (Minic.Opt.simplify_program program) in
        Printf.printf "%s: %d branches across %d functions\n\n" path
          info.Minic.Branchinfo.total_branches
          (List.length info.Minic.Branchinfo.funcs);
        let settings =
          {
            Compi.Driver.default_settings with
            Compi.Driver.iterations = (if time = None then iterations else max_int);
            time_budget = time;
            dfs_phase_iters = max 10 (iterations / 10);
            initial_nprocs = Option.value nprocs ~default:4;
            cap_overrides = caps;
            seed;
          }
        in
        report (Compi.Driver.run ~settings info))
  in
  Cmd.v
    (Cmd.info "test-file"
       ~doc:"Parse a Mini-C source file and run a COMPI campaign on it")
    Term.(
      const run $ path_arg $ iterations_arg $ time_arg $ seed_arg $ nprocs_arg $ cap_arg)

let () =
  let default = Term.(ret (const (`Help (`Pager, None)))) in
  let info =
    Cmd.info "compi-cli" ~version:"1.0"
      ~doc:"COMPI: concolic testing for MPI applications (OCaml reproduction)"
  in
  exit
    (Cmd.eval
       (Cmd.group ~default info
          [ list_cmd; show_cmd; test_cmd; random_cmd; exec_cmd; replay_cmd; test_file_cmd ]))
