(* census: print every catalogue target's static complexity (the raw
   numbers behind Table III).   dune exec bin/census.exe *)

let () =
  Printf.printf "%-12s %6s %10s %8s\n" "target" "conds" "branches" "sloc";
  List.iter
    (fun (t : Targets.Registry.t) ->
      let info = Targets.Registry.instrument t in
      Printf.printf "%-12s %6d %10d %8d\n" t.Targets.Registry.name
        info.Minic.Branchinfo.total_conditionals info.Minic.Branchinfo.total_branches
        (Minic.Pretty.source_lines t.Targets.Registry.program))
    (Targets.Catalog.all ())
