(* Table IV: one-way vs two-way instrumentation. Simulated testing with
   fixed default inputs (input derivation disabled, as in the paper) for
   10 iterations per configuration; reports wall time and the average
   non-focus log size. Expectations: two-way saves roughly half the time
   on the symbolic-heavy programs and shrinks non-focus logs from MB to
   KB. *)

let susy_inputs n =
  [
    ("nx", n); ("ny", n); ("nz", max 1 (n - 1)); ("nt", 4); ("nroot", 2);
    ("warms", 2); ("trajecs", 5); ("nsteps", 6); ("nsrc", 1); ("seed", 17);
    ("tol_exp", 4); ("gauge_iter", 3); ("multi_mass", 1);
  ]

let imb_inputs n =
  [
    ("iters", n); ("minexp", 0); ("maxexp", 4); ("npmin", 2);
    ("run_pingpong", 1); ("run_pingping", 1); ("run_sendrecv", 1);
    ("run_exchange", 1); ("run_bcast", 1); ("run_allreduce", 1);
    ("run_reduce", 1); ("run_reduce_scatter", 1); ("run_allgather", 1);
    ("run_gather", 1); ("run_scatter", 1);
  ]

let human_bytes b =
  if b >= 1_048_576 then Printf.sprintf "%.1fM" (float_of_int b /. 1_048_576.0)
  else if b >= 1024 then Printf.sprintf "%.1fK" (float_of_int b /. 1024.0)
  else Printf.sprintf "%dB" b

let bench_config ~info ~inputs ~step_limit ~two_way =
  {
    (Compi.Runner.default_config ~info) with
    Compi.Runner.nprocs = 8;
    inputs;
    two_way;
    step_limit;
  }

let measure config iterations =
  let t0 = Unix.gettimeofday () in
  let log_bytes = ref 0 in
  for _ = 1 to iterations do
    match Compi.Runner.run config with
    | Ok res -> log_bytes := res.Compi.Runner.nonfocus_log_bytes
    | Error (`Platform_limit _) -> ()
  done;
  (Unix.gettimeofday () -. t0, !log_bytes)

let run (scale : Util.scale) =
  Util.print_header "Table IV: one-way vs two-way instrumentation";
  let iterations = max 3 (Util.scaled_iters scale 10) in
  Printf.printf "%-10s %6s | %9s %9s %7s | %10s %10s\n" "Program" "N" "1-way(s)"
    "2-way(s)" "saving" "1-way log" "2-way log";
  let rows =
    [
      ("susy-hmc", susy_inputs, [ 2; 4 ]);
      ("hpl", Exp_fig6.hpl_defaults, [ 300; 600 ]);
      ("imb-mpi1", imb_inputs, [ 100; 400 ]);
    ]
  in
  let savings = ref [] in
  List.iter
    (fun (name, mk_inputs, ns) ->
      let t = Util.target name in
      let info = Targets.Registry.instrument t in
      let step_limit = 50_000_000 in
      List.iter
        (fun n ->
          let inputs = mk_inputs n in
          let t1, log1 =
            measure (bench_config ~info ~inputs ~step_limit ~two_way:false) iterations
          in
          let t2, log2 =
            measure (bench_config ~info ~inputs ~step_limit ~two_way:true) iterations
          in
          let saving = 100.0 *. (1.0 -. (t2 /. Float.max 1e-9 t1)) in
          savings := (name, saving) :: !savings;
          Printf.printf "%-10s %6d | %9.2f %9.2f %6.1f%% | %10s %10s\n%!" name n t1 t2
            saving (human_bytes log1) (human_bytes log2))
        ns)
    rows;
  let best name =
    List.fold_left
      (fun acc (n, s) -> if n = name then Float.max acc s else acc)
      neg_infinity !savings
  in
  Util.compare_line ~label:"SUSY-HMC best saving" ~paper:"47-53%"
    ~measured:(Printf.sprintf "%.0f%%" (best "susy-hmc"));
  Util.compare_line ~label:"HPL best saving" ~paper:"62-67%"
    ~measured:(Printf.sprintf "%.0f%%" (best "hpl"));
  Util.compare_line ~label:"IMB-MPI1 best saving" ~paper:"0-12.5%"
    ~measured:(Printf.sprintf "%.0f%%" (best "imb-mpi1"));
  Util.compare_line ~label:"non-focus logs" ~paper:"MBs -> a few KB"
    ~measured:"(see log columns)"
