(* Ablations beyond the paper's tables, exercising the design decisions
   DESIGN.md calls out:

   1. incremental vs whole-set solving (section III-C's substrate);
   2. the BoundedDFS depth bound (two-phase derivation vs fixed guesses);
   3. the stagnation-restart escape hatch;
   4. conflict resolution (section III-C): with it disabled the focus
      never moves, so rank-gated branches stay uncovered. *)

let time f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, Unix.gettimeofday () -. t0)

(* 1: incremental solving — same negations solved with and without the
   dependency-closure optimization. *)
let ablate_incremental () =
  Printf.printf "\n-- incremental vs whole-set solving --\n";
  (* a 30-variable chain plus independent singletons: the closure of a
     negation touches 3 variables, the whole set touches 30 *)
  let chain =
    List.init 9 (fun k ->
        Smt.Constr.cmp
          (Smt.Linexp.var (3 * k))
          Smt.Constr.Lt
          (Smt.Linexp.var (3 * (k + 1))))
  in
  let singles =
    List.init 30 (fun k -> Smt.Constr.make (Smt.Linexp.var k) Smt.Constr.Ge)
  in
  let cs = chain @ singles in
  let prev =
    Smt.Model.of_bindings (List.init 30 (fun k -> (k, k)))
  in
  let target = Smt.Constr.cmp (Smt.Linexp.var 0) Smt.Constr.Ge (Smt.Linexp.const 1) in
  let reps = 2000 in
  let (), t_inc =
    time (fun () ->
        for _ = 1 to reps do
          match Smt.Solver.solve_incremental ~prev ~target (target :: cs) with
          | Ok _ -> ()
          | Error _ -> failwith "unexpected unsat"
        done)
  in
  let (), t_full =
    time (fun () ->
        for _ = 1 to reps do
          match Smt.Solver.solve ~prefer:prev (target :: cs) with
          | Smt.Solver.Sat _ -> ()
          | Smt.Solver.Unsat | Smt.Solver.Unknown -> failwith "unexpected unsat"
        done)
  in
  Printf.printf "  incremental: %6.1f us/solve   whole-set: %6.1f us/solve   (%.1fx)\n%!"
    (1e6 *. t_inc /. float_of_int reps)
    (1e6 *. t_full /. float_of_int reps)
    (t_full /. t_inc)

(* 2: BoundedDFS bound choice on HPL. *)
let ablate_bound scale =
  Printf.printf "\n-- BoundedDFS bound choice (HPL, %d iterations) --\n"
    (Util.scaled_iters scale 400);
  let t = Util.target "hpl" in
  let info = Targets.Registry.instrument t in
  let iters = Util.scaled_iters scale 400 in
  List.iter
    (fun (label, strategy, bound) ->
      let settings =
        {
          (Util.settings_for t) with
          Compi.Driver.iterations = iters;
          strategy;
          depth_bound = bound;
          seed = 77;
        }
      in
      let r = Compi.Driver.run ~settings info in
      Printf.printf "  %-18s covered %4d (bound %s)\n%!" label
        r.Compi.Driver.covered_branches
        (match r.Compi.Driver.derived_bound with
        | Some b -> "derived " ^ string_of_int b
        | None -> (
          match bound with Some b -> string_of_int b | None -> "-"))
    )
    [
      ("two-phase", Compi.Driver.Two_phase_dfs, None);
      ( "fixed 50",
        Compi.Driver.Fixed_strategy (Concolic.Strategy.Bounded_dfs 50),
        Some 50 );
      ( "fixed 600",
        Compi.Driver.Fixed_strategy (Concolic.Strategy.Bounded_dfs 600),
        Some 600 );
      ( "unbounded",
        Compi.Driver.Fixed_strategy (Concolic.Strategy.Bounded_dfs max_int),
        Some max_int );
    ]

(* 3: stagnation restart on/off. *)
let ablate_restart scale =
  Printf.printf "\n-- stagnation restart (HPL, %d iterations) --\n"
    (Util.scaled_iters scale 800);
  let t = Util.target "hpl" in
  let info = Targets.Registry.instrument t in
  List.iter
    (fun (label, stagnation_restart) ->
      let settings =
        {
          (Util.settings_for t) with
          Compi.Driver.iterations = Util.scaled_iters scale 800;
          stagnation_restart;
          seed = 13;
        }
      in
      let r = Compi.Driver.run ~settings info in
      Printf.printf "  %-18s covered %4d\n%!" label r.Compi.Driver.covered_branches)
    [ ("restart @250", Some 250); ("no restart", None) ]

(* 4: conflict resolution. All-recorders hides most focus effects, so
   the probe program hides a needle behind a specific rank: only when
   the focus actually SITS on rank 2 does the needle's constraint reach
   the solver. *)
let conflict_probe =
  let open Minic in
  let open Builder in
  program
    [
      func "main" []
        [
          input "y" ~lo:0 ~cap:10_000 ~default:7;
          decl "rank" (i 0);
          decl "size" (i 0);
          comm_rank Ast.World "rank";
          comm_size Ast.World "size";
          sanity (v "size" >=: i 3);
          if_ (v "rank" =: i 2)
            [ if_ (v "y" =: i 1234) [ decl "needle" (i 1) ] [] ]
            [];
          barrier Ast.World;
        ];
    ]

let ablate_conflict scale =
  Printf.printf "\n-- conflict resolution (rank-2 needle probe) --\n";
  let info = Minic.Branchinfo.instrument (Minic.Check.check_exn conflict_probe) in
  let needle_branch =
    (* cond 2 is the [y = 1234] conditional (0: sanity, 1: rank = 2) *)
    Minic.Branchinfo.branch_of_cond 2 true
  in
  List.iter
    (fun (label, resolve_conflicts) ->
      let settings =
        {
          Compi.Driver.default_settings with
          Compi.Driver.iterations = Util.scaled_iters scale 150;
          dfs_phase_iters = 10;
          initial_nprocs = 4;
          resolve_conflicts;
          seed = 21;
        }
      in
      let r = Compi.Driver.run ~settings info in
      Printf.printf "  %-16s covered %2d / %d   needle (rank 2, y = 1234): %s\n%!" label
        r.Compi.Driver.covered_branches r.Compi.Driver.reachable_branches
        (if Concolic.Coverage.mem_branch r.Compi.Driver.coverage needle_branch then
           "FOUND"
         else "missed"))
    [ ("resolution on", true); ("resolution off", false) ]

let run (scale : Util.scale) =
  Util.print_header "Ablations: design decisions (beyond the paper's tables)";
  ablate_incremental ();
  ablate_bound scale;
  ablate_restart scale;
  ablate_conflict scale
