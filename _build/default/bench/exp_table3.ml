(* Table III: complexity of target programs — SLOC, total branches,
   reachable branches. Reachable is estimated the paper's way: the sum of
   branches of every function encountered during a short campaign. *)

let run (scale : Util.scale) =
  Util.print_header "Table III: complexity of target programs";
  Printf.printf "%-12s %8s %8s %12s %12s\n" "Program" "SLOC" "Funcs" "Total br." "Reachable";
  List.iter
    (fun name ->
      let t = Util.target name in
      let info = Targets.Registry.instrument t in
      let settings =
        {
          (Util.settings_for t) with
          Compi.Driver.iterations = Util.scaled_iters scale 150;
          seed = 3;
        }
      in
      let r = Compi.Driver.run ~settings info in
      Printf.printf "%-12s %8d %8d %12d %12d\n%!" name
        (Minic.Pretty.source_lines t.Targets.Registry.program)
        (List.length info.Minic.Branchinfo.funcs)
        info.Minic.Branchinfo.total_branches r.Compi.Driver.reachable_branches)
    [ "susy-hmc"; "hpl"; "imb-mpi1" ];
  Util.compare_line ~label:"SUSY-HMC total/reachable"
    ~paper:"2870 / 2030" ~measured:"(above; ~1/6 scale)";
  Util.compare_line ~label:"HPL total/reachable" ~paper:"3754 / 3468" ~measured:"(above)";
  Util.compare_line ~label:"IMB-MPI1 total/reachable" ~paper:"1290 / 1114" ~measured:"(above)"
