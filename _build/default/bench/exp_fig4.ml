(* Figure 4: branch coverage of HPL under the four search strategies.
   The paper's point: BoundedDFS (with the default and a hand-picked
   bound) passes the deep sanity check and covers >1100 branches, while
   random-branch, uniform-random and CFG search stall at <= 137. *)

let strategies info =
  [
    ("bounded-dfs(default)", Compi.Driver.Two_phase_dfs);
    ("bounded-dfs(100)", Compi.Driver.Fixed_strategy (Concolic.Strategy.Bounded_dfs 100));
    ("random-branch", Compi.Driver.Fixed_strategy Concolic.Strategy.Random_branch);
    ("uniform-random", Compi.Driver.Fixed_strategy Concolic.Strategy.Uniform_random);
    ("cfg", Compi.Driver.Fixed_strategy (Concolic.Strategy.Cfg_directed (Minic.Cfg.build info)));
    (* beyond the paper: SAGE-style generational search *)
    ("generational", Compi.Driver.Fixed_strategy (Concolic.Strategy.Generational 600));
  ]

let run (scale : Util.scale) =
  Util.print_header "Figure 4: HPL branch coverage per search strategy";
  let t = Util.target "hpl" in
  let info = Targets.Registry.instrument t in
  let iters = Util.scaled_iters scale 500 in
  let reachable = Util.reference_reachable "hpl" in
  Printf.printf "%-22s %10s %10s %10s\n" "Strategy" "Covered" "Reach." "Rate";
  let results =
    List.map
      (fun (label, strategy) ->
        let settings =
          { (Util.settings_for t) with Compi.Driver.iterations = iters; strategy; seed = 11 }
        in
        let r = Compi.Driver.run ~settings info in
        Printf.printf "%-22s %10d %10d %9.1f%%\n%!" label r.Compi.Driver.covered_branches
          reachable (Util.fixed_rate "hpl" r);
        (label, r.Compi.Driver.covered_branches))
      (strategies info)
  in
  let dfs = List.assoc "bounded-dfs(default)" results in
  let worst_nonsys =
    List.fold_left max 0
      (List.filter_map
         (fun (l, c) ->
           if l = "random-branch" || l = "uniform-random" || l = "cfg" then Some c else None)
         results)
  in
  Util.compare_line ~label:"BoundedDFS vs non-systematic"
    ~paper:">1100 vs <=137 branches"
    ~measured:(Printf.sprintf "%d vs <=%d branches" dfs worst_nonsys)
