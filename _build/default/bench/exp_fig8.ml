(* Figure 8: input-capping evaluation. For each program, campaigns with
   increasing caps on the headline input N: larger caps cost several
   times more wall clock for comparable coverage. Paper budgets: 10
   repetitions of 50 iterations (SUSY) / 500 iterations (HPL, IMB); we
   scale both down. *)

(* SUSY's N is the lattice size of each of the four dimensions: the
   paper's cap applies to all of them at once. *)
let capped_inputs name cap =
  match name with
  | "susy-hmc" -> [ ("nx", cap); ("ny", cap); ("nz", cap); ("nt", cap) ]
  | _ ->
    [ ((Util.target name).Targets.Registry.tuning.Targets.Registry.key_input, cap) ]

let run (scale : Util.scale) =
  Util.print_header "Figure 8: input capping (coverage and time per cap)";
  let experiment name caps iters =
    let t = Util.target name in
    let info = Targets.Registry.instrument t in
    let key = t.Targets.Registry.tuning.Targets.Registry.key_input in
    Printf.printf "%s (cap on %s, %d iterations, %d reps):\n" name
      (if name = "susy-hmc" then "all four dims" else key)
      iters scale.Util.reps;
    Printf.printf "  %-8s %10s %12s %12s\n" "cap" "avg cov." "avg t(s)" "max t(s)";
    let times_by_cap =
      List.map
        (fun cap ->
          let runs =
            Util.repeat scale.Util.reps (fun rep ->
                let settings =
                  {
                    (Util.settings_for t) with
                    Compi.Driver.iterations = iters;
                    cap_overrides = capped_inputs name cap;
                    seed = 100 + rep;
                  }
                in
                let r = Compi.Driver.run ~settings info in
                (float_of_int r.Compi.Driver.covered_branches, r.Compi.Driver.wall_time))
          in
          let covs = List.map fst runs and times = List.map snd runs in
          Printf.printf "  %-8d %10.0f %12.2f %12.2f\n%!" cap (Util.mean covs)
            (Util.mean times) (Util.fmax times);
          (cap, Util.mean times))
        caps
    in
    times_by_cap
  in
  let susy =
    experiment "susy-hmc" [ 5; 10 ] (Util.scaled_iters scale 50)
  in
  let hpl =
    experiment "hpl" [ 300; 600; 900; 1200 ] (Util.scaled_iters scale 300)
  in
  let imb =
    experiment "imb-mpi1" [ 50; 100; 200; 400 ] (Util.scaled_iters scale 300)
  in
  let ratio pairs lo hi = List.assoc hi pairs /. List.assoc lo pairs in
  Util.compare_line ~label:"SUSY time cap 10 / cap 5" ~paper:"~4x"
    ~measured:(Printf.sprintf "%.1fx" (ratio susy 5 10));
  Util.compare_line ~label:"HPL time cap 1200 / cap 300" ~paper:"up to ~7x (worst case)"
    ~measured:(Printf.sprintf "%.1fx" (ratio hpl 300 1200));
  Util.compare_line ~label:"IMB time cap 400 / cap 50" ~paper:"~4x (50 -> 400)"
    ~measured:(Printf.sprintf "%.1fx" (ratio imb 50 400))
