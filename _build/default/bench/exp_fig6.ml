(* Figure 6: HPL branch coverage and execution time at matrix sizes
   100..1000, all other inputs default. The paper's point: coverage
   saturates by N = 200 while the time at N = 1000 is ~27x the time at
   N = 200 — large inputs buy nothing. *)

let hpl_defaults n =
  [
    ("ns", 1); ("n", n); ("nbs", 1); ("nb", 16); ("pmap", 0); ("grids", 1);
    ("p", 2); ("q", 2); ("thresh_exp", 4); ("npfacts", 1); ("pfact", 1);
    ("nbmins", 1); ("nbmin", 2); ("ndivs", 1); ("ndiv", 2); ("nrfacts", 1);
    ("rfact", 1); ("nbcasts", 1); ("bcast", 0); ("ndepths", 1); ("depth", 0);
    ("swap", 1); ("swap_thresh", 32); ("l1_trans", 0); ("u_trans", 0);
    ("equil", 1); ("align", 8); ("seed", 1);
  ]

let run (scale : Util.scale) =
  Util.print_header "Figure 6: HPL coverage and time vs matrix size";
  let t = Util.target "hpl" in
  let info = Targets.Registry.instrument t in
  (* repeat each run a few times so the timing is stable *)
  let reps = max 3 scale.Util.reps in
  Printf.printf "%-8s %10s %12s\n" "N" "Covered" "Time (ms)";
  let timings =
    List.map
      (fun n ->
        let config =
          {
            (Compi.Runner.default_config ~info) with
            Compi.Runner.nprocs = 4;
            inputs = hpl_defaults n;
            step_limit = 50_000_000;
          }
        in
        let covered = ref 0 in
        let times =
          Util.repeat reps (fun _ ->
              match Compi.Runner.run config with
              | Ok res ->
                covered := Concolic.Coverage.covered_branches res.Compi.Runner.coverage;
                res.Compi.Runner.wall_time
              | Error (`Platform_limit _) -> 0.0)
        in
        let mean_ms = 1000.0 *. Util.mean times in
        Printf.printf "%-8d %10d %12.2f\n%!" n !covered mean_ms;
        (n, mean_ms))
      [ 100; 200; 300; 400; 500; 600; 700; 800; 900; 1000 ]
  in
  let t200 = List.assoc 200 timings and t1000 = List.assoc 1000 timings in
  Util.compare_line ~label:"time(N=1000) / time(N=200)" ~paper:"27.2x"
    ~measured:(Printf.sprintf "%.1fx" (t1000 /. t200))
