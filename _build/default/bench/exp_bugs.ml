(* Section VI-A: the four SUSY-HMC bugs. Runs a COMPI campaign on the
   synthetic SUSY-HMC until all four distinct defects are found (or the
   iteration budget runs out) and reports each with the error-inducing
   inputs COMPI logged — including the process count, which is the
   point of the FPE bug (2 or 4 processes, never 1 or 3). *)

let expected_bug_sites =
  [ "setup_sources"; "setup_gauge"; "congrad_alloc"; "layout_timeslices" ]

let site_of (b : Compi.Driver.bug) =
  match b.Compi.Driver.bug_fault with
  | Minic.Fault.Segfault { func; _ } -> func
  | Minic.Fault.Fpe { func } -> func
  | Minic.Fault.Assert_fail { func; _ }
  | Minic.Fault.Abort_called { func; _ }
  | Minic.Fault.Mpi_error { func; _ }
  | Minic.Fault.Runtime_type_error { func; _ } ->
    func
  | Minic.Fault.Step_limit_exceeded _ -> "<timeout>"

let run (scale : Util.scale) =
  Util.print_header "Section VI-A: the four SUSY-HMC bugs";
  let t = Util.target "susy-hmc" in
  let info = Targets.Registry.instrument t in
  let settings =
    {
      (Util.settings_for t) with
      Compi.Driver.iterations = Util.scaled_iters scale 800;
      seed = 5;
    }
  in
  let r = Compi.Driver.run ~settings info in
  let bugs = Compi.Driver.distinct_bugs r in
  List.iter
    (fun (b : Compi.Driver.bug) ->
      Printf.printf "  iter %4d  np=%-2d rank=%-2d  %s\n"
        b.Compi.Driver.bug_iteration b.Compi.Driver.bug_nprocs b.Compi.Driver.bug_rank
        (Minic.Fault.to_string b.Compi.Driver.bug_fault);
      Printf.printf "      inputs: %s\n%!"
        (String.concat ", "
           (List.map (fun (k, v) -> Printf.sprintf "%s=%d" k v) b.Compi.Driver.bug_inputs)))
    bugs;
  let found_sites = List.sort_uniq String.compare (List.map site_of bugs) in
  let hit = List.filter (fun s -> List.mem s found_sites) expected_bug_sites in
  Printf.printf "  distinct defects found: %d (sites: %s)\n" (List.length hit)
    (String.concat ", " hit);
  Util.compare_line ~label:"new bugs in SUSY-HMC" ~paper:"4 (3 segfaults + 1 FPE)"
    ~measured:
      (Printf.sprintf "%d of 4 seeded bug sites within %d iterations" (List.length hit)
         r.Compi.Driver.iterations_run);
  (* beyond the paper: the heat2d remainder-row overflow, reachable only
     when the framework varies the process count *)
  let th = Util.target "heat2d" in
  let hinfo = Targets.Registry.instrument th in
  let hsettings =
    {
      (Util.settings_for th) with
      Compi.Driver.iterations = Util.scaled_iters scale 300;
      seed = 5;
    }
  in
  let hr = Compi.Driver.run ~settings:hsettings hinfo in
  let overflow =
    List.find_opt
      (fun (b : Compi.Driver.bug) ->
        match b.Compi.Driver.bug_fault with
        | Minic.Fault.Segfault _ -> true
        | _ -> false)
      (Compi.Driver.distinct_bugs hr)
  in
  match overflow with
  | Some b ->
    Printf.printf
      "  beyond the paper: heat2d remainder overflow found at iter %d with np=%d \
       (ny=%d, ny mod np = %d)\n"
      b.Compi.Driver.bug_iteration b.Compi.Driver.bug_nprocs
      (List.assoc "ny" b.Compi.Driver.bug_inputs)
      (List.assoc "ny" b.Compi.Driver.bug_inputs mod b.Compi.Driver.bug_nprocs)
  | None ->
    Printf.printf "  beyond the paper: heat2d overflow not found in %d iterations\n"
      hr.Compi.Driver.iterations_run
