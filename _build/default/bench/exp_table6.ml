(* Table VI: the COMPI framework against its ablations under a fixed
   time budget:

     Fwk     — COMPI (varies focus and process count, records coverage
               across all processes);
     No_Fwk  — standard concolic testing: fixed focus, fixed 8-process
               launch, coverage of the focus only, no rw/rc/sw marking;
     Random  — pure random testing under the same input caps.

   Paper: SUSY 84.7% vs 3.4% vs 38.3%; HPL 69.4% vs 58.9% vs 2.2%;
   IMB 69.0% vs 64.2% vs 1.8%. *)

let run (scale : Util.scale) =
  Util.print_header "Table VI: framework (Fwk) vs No_Fwk vs Random";
  let budgets = [ ("susy-hmc", 8.0); ("hpl", 12.0); ("imb-mpi1", 6.0) ] in
  Printf.printf "%-10s | %-6s %6s | %-6s %6s | %-6s %6s\n" "Program" "Fwk" "max"
    "No_Fwk" "max" "Random" "max";
  List.iter
    (fun (name, base_budget) ->
      let t = Util.target name in
      let info = Targets.Registry.instrument t in
      let budget = Util.scaled_time scale base_budget in
      let runs mk =
        let rates =
          Util.repeat scale.Util.reps (fun rep -> Util.fixed_rate name (mk (300 + rep)))
        in
        (Util.mean rates, Util.fmax rates)
      in
      let fwk_avg, fwk_max =
        runs (fun seed ->
            let settings =
              {
                (Util.settings_for t) with
                Compi.Driver.iterations = max_int;
                time_budget = Some budget;
                seed;
              }
            in
            Compi.Driver.run ~settings info)
      in
      let nofwk_avg, nofwk_max =
        runs (fun seed ->
            let settings =
              {
                (Util.settings_for t) with
                Compi.Driver.iterations = max_int;
                time_budget = Some budget;
                framework = false;
                seed;
              }
            in
            Compi.Driver.run ~settings info)
      in
      let rnd_avg, rnd_max =
        runs (fun seed ->
            let settings =
              {
                (Util.settings_for t) with
                Compi.Driver.iterations = max_int;
                time_budget = Some budget;
                seed;
              }
            in
            Compi.Random_testing.run ~settings info)
      in
      Printf.printf "%-10s | %5.1f%% %5.1f%% | %5.1f%% %5.1f%% | %5.1f%% %5.1f%%\n%!" name
        fwk_avg fwk_max nofwk_avg nofwk_max rnd_avg rnd_max)
    budgets;
  Util.compare_line ~label:"SUSY Fwk / No_Fwk / Random" ~paper:"84.7 / 3.4 / 38.3 %"
    ~measured:"(rows above)";
  Util.compare_line ~label:"HPL Fwk / No_Fwk / Random" ~paper:"69.4 / 58.9 / 2.2 %"
    ~measured:"(rows above)";
  Util.compare_line ~label:"IMB Fwk / No_Fwk / Random" ~paper:"69.0 / 64.2 / 1.8 %"
    ~measured:"(rows above)"
