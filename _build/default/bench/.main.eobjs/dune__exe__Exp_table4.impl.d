bench/exp_table4.ml: Compi Exp_fig6 Float List Printf Targets Unix Util
