bench/main.ml: Array Exp_ablation Exp_bugs Exp_fig4 Exp_fig6 Exp_fig8 Exp_table3 Exp_table4 Exp_table5 Exp_table6 List Microbench Printf String Sys Util
