bench/exp_fig4.ml: Compi Concolic List Minic Printf Targets Util
