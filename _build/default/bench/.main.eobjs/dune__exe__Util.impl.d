bench/util.ml: Compi Float Hashtbl List Printf Targets
