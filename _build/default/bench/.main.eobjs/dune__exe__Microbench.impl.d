bench/microbench.ml: Analyze Bechamel Benchmark Compi Concolic Hashtbl Instance List Measure Printf Smt Staged String Targets Test Time Toolkit Util
