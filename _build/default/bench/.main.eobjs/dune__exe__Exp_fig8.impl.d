bench/exp_fig8.ml: Compi List Printf Targets Util
