bench/exp_ablation.ml: Ast Builder Compi Concolic List Minic Printf Smt Targets Unix Util
