bench/main.mli:
