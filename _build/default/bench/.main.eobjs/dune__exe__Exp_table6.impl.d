bench/exp_table6.ml: Compi List Printf Targets Util
