bench/exp_bugs.ml: Compi List Minic Printf String Targets Util
