bench/exp_table3.ml: Compi List Minic Printf Targets Util
