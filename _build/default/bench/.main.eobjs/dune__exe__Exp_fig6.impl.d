bench/exp_fig6.ml: Compi Concolic List Printf Targets Util
