bench/exp_table5.ml: Compi Concolic List Printf Targets Util
