(* Table V + Figure 9: constraint-set reduction. Three configurations
   per program under a fixed wall-clock budget:

     R       — COMPI with reduction (default),
     NRBound — no reduction, BoundedDFS with the same depth limit,
     NRUnl   — no reduction, unlimited depth.

   Reports the average/max coverage rate over the repetitions (Table V)
   and the distribution of per-iteration constraint-set sizes
   (Figure 9): with reduction the sets stay small (paper: < 500), while
   without it they explode. *)

type config_result = {
  rates : float list;
  iters : float list;  (* iterations completed within the budget *)
  cs_sizes : int list;  (* per-iteration constraint-set sizes, pooled *)
}

let campaign t info ~budget ~reduce ~bound ~seed =
  let tn = t.Targets.Registry.tuning in
  let settings =
    {
      (Util.settings_for t) with
      Compi.Driver.iterations = max_int;
      time_budget = Some budget;
      reduce;
      depth_bound = bound;
      strategy =
        (match bound with
        | Some b -> Compi.Driver.Fixed_strategy (Concolic.Strategy.Bounded_dfs b)
        | None -> Compi.Driver.Two_phase_dfs);
      dfs_phase_iters = tn.Targets.Registry.dfs_phase;
      seed;
    }
  in
  Compi.Driver.run ~settings info

let histogram sizes =
  let buckets = [ (0, 100); (100, 500); (500, 2000); (2000, max_int) ] in
  List.map
    (fun (lo, hi) ->
      (lo, hi, List.length (List.filter (fun s -> s >= lo && s < hi) sizes)))
    buckets

let pp_hist label sizes =
  let total = max 1 (List.length sizes) in
  Printf.printf "    %-10s" label;
  List.iter
    (fun (lo, hi, n) ->
      let pct = 100.0 *. float_of_int n /. float_of_int total in
      if hi = max_int then Printf.printf "  >=%d: %4.1f%%" lo pct
      else Printf.printf "  [%d,%d): %4.1f%%" lo hi pct)
    (histogram sizes);
  Printf.printf "   (max %d)\n%!" (Util.imax (0 :: sizes))

let run (scale : Util.scale) =
  Util.print_header "Table V + Figure 9: constraint-set reduction";
  let budgets = [ ("susy-hmc", 8.0); ("hpl", 12.0); ("imb-mpi1", 6.0) ] in
  Printf.printf "%-10s | %-9s %7s %7s | %-9s %7s %7s | %-9s %7s %7s\n" "Program" "R" "avg"
    "max" "NRBound" "avg" "max" "NRUnl" "avg" "max";
  List.iter
    (fun (name, base_budget) ->
      let t = Util.target name in
      let info = Targets.Registry.instrument t in
      let budget = Util.scaled_time scale base_budget in
      let bound = t.Targets.Registry.tuning.Targets.Registry.depth_bound in
      let run_config ~reduce ~bound =
        let results =
          Util.repeat scale.Util.reps (fun rep ->
              campaign t info ~budget ~reduce ~bound ~seed:(200 + rep))
        in
        {
          rates = List.map (Util.fixed_rate name) results;
          iters =
            List.map
              (fun (r : Compi.Driver.result) -> float_of_int r.Compi.Driver.iterations_run)
              results;
          cs_sizes =
            List.concat_map
              (fun (r : Compi.Driver.result) ->
                List.map
                  (fun (s : Compi.Driver.iter_stat) -> s.Compi.Driver.constraint_set_size)
                  r.Compi.Driver.stats)
              results;
        }
      in
      let r = run_config ~reduce:true ~bound:None in
      let nrbound = run_config ~reduce:false ~bound:(Some bound) in
      let nrunl = run_config ~reduce:false ~bound:(Some max_int) in
      Printf.printf "%-10s | %-9s %6.1f%% %6.1f%% | %-9s %6.1f%% %6.1f%% | %-9s %6.1f%% %6.1f%%\n%!"
        name "" (Util.mean r.rates) (Util.fmax r.rates) "" (Util.mean nrbound.rates)
        (Util.fmax nrbound.rates) "" (Util.mean nrunl.rates) (Util.fmax nrunl.rates);
      Printf.printf
        "  iterations completed within the budget: R %.0f, NRBound %.0f, NRUnl %.0f\n"
        (Util.mean r.iters) (Util.mean nrbound.iters) (Util.mean nrunl.iters);
      Printf.printf "  Figure 9 constraint-set sizes (%s):\n" name;
      pp_hist "R" r.cs_sizes;
      pp_hist "NRBound" nrbound.cs_sizes;
      pp_hist "NRUnl" nrunl.cs_sizes)
    budgets;
  Util.compare_line ~label:"SUSY: R vs NR coverage" ~paper:"84.7% vs ~80%"
    ~measured:"(rows above)";
  Util.compare_line ~label:"HPL: R vs NR coverage" ~paper:"69.6% vs ~59%"
    ~measured:"(rows above)";
  Util.compare_line ~label:"IMB: all equivalent" ~paper:"~69% everywhere"
    ~measured:"(rows above)";
  Util.compare_line ~label:"Fig 9: R set sizes" ~paper:"always < 500"
    ~measured:"(histograms above)"
