(* Synthetic SUSY-HMC: a lattice RHMC skeleton reproducing the
   control-flow shape of SUSY LATTICE's susy_hmc application (Schaich &
   DeGrand) as used in the paper's evaluation:

   - 13 marked inputs (four lattice dimensions capped at NC = 5, solver
     and trajectory parameters);
   - a deep sanity check, including the gate [nt >= size] that is
     unsatisfiable under a fixed 8-process launch with the dimension cap
     at 5 — exactly why No_Fwk collapses to a few percent coverage on
     this program (Table VI);
   - communicator splits whose local ranks feed branches (rc variables);
   - the paper's four seeded bugs:
       bug 1-3: malloc under-allocation ("sizeof(**src)" pattern) in
                setup_sources / setup_gauge / congrad_alloc, each behind
                a different input guard, causing segfaults;
       bug 4:   a division by zero in layout_timeslices that manifests
                with 2 or 4 processes (given specific lattice inputs)
                but never with 1 or 3;
   - a loop-based RHMC solver phase whose per-dimension force, gather
     and plaquette kernels are generated programmatically, providing the
     loop-generated redundant constraints that constraint-set reduction
     targets (Table V / Figure 9). *)

open Minic
open Builder

let dims = [ "nx"; "ny"; "nz"; "nt" ]

(* Per-dimension sanity: range checks plus parity/divisibility branches. *)
let check_dim_func d =
  func ("check_dim_" ^ d)
    [ (d, Ast.Tint); ("size", Ast.Tint) ]
    [
      sanity (v d >=: i 1);
      sanity (v d <=: i 6);
      if_ (v d %: i 2 =: i 0) [ decl "even_layout" (i 1) ] [ decl "odd_layout" (i 1) ];
      if_ (v d =: i 1) [ decl "degenerate" (i 1) ] [];
      if_ (v d >=: v "size") [ decl "wide" (i 1) ] [ decl "narrow" (i 1) ];
      if_ (v d %: i 3 =: i 0) [ decl "triple" (i 1) ] [];
      ret (v d);
    ]

(* Per-dimension force kernel: boundary and parity branches in a loop. *)
let force_func d =
  let n = "n_" ^ d in
  func ("force_" ^ d)
    [ (n, Ast.Tint); ("parity", Ast.Tint) ]
    ([ decl "acc" (i 0) ]
    @ for_ "s" (i 0) (v n)
        [
          if_ (v "s" =: i 0)
            [ assign "acc" (v "acc" +: i 3) ]
            [
              if_ (v "s" =: v n -: i 1)
                [ assign "acc" (v "acc" +: i 2) ]
                [ assign "acc" (v "acc" +: i 1) ];
            ];
          if_
            ((v "s" +: v "parity") %: i 2 =: i 0)
            [ assign "acc" (v "acc" *: i 1) ]
            [];
        ]
    @ [
        if_ (v "acc" >: i 12) [ ret (v "acc" -: i 12) ] [];
        if_ (v "acc" =: i 0) [ ret (i 1) ] [];
        ret (v "acc");
      ])

(* Per-direction gather kernel (forward/backward per dimension). *)
let gather_func d fb =
  let name = Printf.sprintf "gather_%s_%s" d fb in
  func name
    [ ("extent", Ast.Tint); ("stride", Ast.Tint) ]
    [
      if_ (v "extent" <=: i 1) [ ret (i 0) ] [];
      decl "hops" (i 0);
      if_ (v "stride" >: v "extent") [ assign "hops" (v "extent") ] [ assign "hops" (v "stride") ];
      if_ (v "hops" %: i 2 =: i 1) [ assign "hops" (v "hops" +: i 1) ] [];
      if_ (v "hops" >=: i 6) [ assign "hops" (i 6) ] [];
      ret (v "hops");
    ]

(* Plaquette measurement per plane: nested loop with wrap-around
   branches — a rich source of repeated constraints. *)
let plaquette_func (d1, d2) =
  let name = Printf.sprintf "plaquette_%s%s" d1 d2 in
  func name
    [ ("a", Ast.Tint); ("b", Ast.Tint) ]
    ([ decl "sum" (i 0) ]
    @ for_ "p" (i 0) (v "a")
        ([
           if_ (v "p" =: v "a" -: i 1)
             [ decl "wrap_a" (i 1) ]
             [ decl "inner_a" (i 1) ];
         ]
        @ for_ "q" (i 0) (v "b")
            [
              if_ (v "q" =: v "b" -: i 1)
                [ assign "sum" (v "sum" +: i 2) ]
                [ assign "sum" (v "sum" +: i 1) ];
              if_ ((v "p" +: v "q") %: i 2 =: i 0) [ assign "sum" (v "sum" +: i 1) ] [];
            ])
    @ [
        if_ (v "sum" >: v "a" *: v "b") [ ret (v "sum") ] [];
        if_ (v "sum" =: i 0) [ ret (i 1) ] [];
        ret (v "sum" +: i 1);
      ])

(* Observable moments, one small function per order. *)
let moment_func k =
  let name = Printf.sprintf "moment_%d" k in
  func name
    [ ("val", Ast.Tint) ]
    [
      if_ (v "val" <: i 0) [ ret (i 0) ] [];
      if_ (v "val" %: i (k + 2) =: i 0) [ ret (v "val" /: i (k + 2)) ] [];
      if_ (v "val" >: i (10 * (k + 1))) [ ret (i (10 * (k + 1))) ] [];
      ret (v "val");
    ]

(* BUG 1 (segfault): the paper's "sizeof of a doubly-dereferenced
   pointer" under-allocation — nroot cells allocated where 4*nroot are
   written once nsrc > 2 selects the multi-source path. *)
let setup_sources =
  func "setup_sources"
    [ ("nroot", Ast.Tint); ("nsrc", Ast.Tint) ]
    ([
       decl_arr "src" (v "nroot");  (* intended: nroot * 4 *)
     ]
    @ for_ "k" (i 0) (v "nroot") [ aset "src" (v "k") (v "k") ]
    @ [
        if_
          (v "nsrc" >: i 2)
          (for_ "k2" (i 0) (v "nroot" *: i 4) [ aset "src" (v "k2") (i 0) ])
          [];
        ret (i 0);
      ])

(* BUG 2 (segfault): plaquette buffer sized vol/4 instead of vol; the
   long-measurement path (gauge_iter > 10) writes the full volume. *)
let setup_gauge =
  func "setup_gauge"
    [ ("vol", Ast.Tint); ("gauge_iter", Ast.Tint) ]
    ([
       decl_arr "plaq" ((v "vol" /: i 4) +: i 1);  (* intended: vol *)
     ]
    @ for_ "k" (i 0) ((v "vol" /: i 4) +: i 1) [ aset "plaq" (v "k") (i 1) ]
    @ [
        if_
          (v "gauge_iter" >: i 10)
          (for_ "k2" (i 0) (v "vol") [ aset "plaq" (v "k2") (i 2) ])
          [];
        ret (i 0);
      ])

(* BUG 3 (segfault): multi-mass shift buffer sized nroot instead of
   nroot * multi_mass. *)
let congrad_alloc =
  func "congrad_alloc"
    [ ("nroot", Ast.Tint); ("multi_mass", Ast.Tint) ]
    ([
       decl_arr "shifts" (v "nroot");  (* intended: nroot * multi_mass *)
     ]
    @ for_ "k" (i 0) (v "nroot") [ aset "shifts" (v "k") (v "k" +: i 1) ]
    @ [
        if_
          (v "multi_mass" >: i 1)
          (for_ "k2" (i 0) (v "nroot" *: v "multi_mass") [ aset "shifts" (v "k2") (i 0) ])
          [];
        ret (i 0);
      ])

(* BUG 4 (floating point exception): manifests with 2 or 4 processes
   given specific lattice dimensions, never with 1 or 3 — the paper's
   process-count-dependent division by zero. *)
let layout_timeslices =
  func "layout_timeslices"
    [ ("vol", Ast.Tint); ("nx", Ast.Tint); ("nz", Ast.Tint); ("size", Ast.Tint) ]
    [
      decl "slices" (v "vol");
      if_ (v "size" =: i 2)
        [
          decl "rem2" (v "nx" -: v "nz");
          assign "slices" (v "vol" /: v "rem2");  (* FPE when nx == nz *)
        ]
        [
          if_ (v "size" =: i 4)
            [
              decl "rem4" (v "nz" -: v "nx" -: i 1);
              assign "slices" (v "vol" /: v "rem4");  (* FPE when nz == nx+1 *)
            ]
            [];
        ];
      ret (v "slices");
    ]

(* Gauge-link update per dimension and parity: the leapfrog integrator's
   inner kernel. *)
let link_update_func d parity =
  let name = Printf.sprintf "link_update_%s_%s" d (if parity = 0 then "even" else "odd") in
  func name
    [ ("extent", Ast.Tint); ("eps", Ast.Tint) ]
    ([
       if_ (v "extent" <=: i 0) [ ret (i 0) ] [];
       decl "acc" (i 0);
     ]
    @ for_ "s" (i 0) (v "extent")
        [
          if_ ((v "s" +: i parity) %: i 2 =: i 0)
            [ assign "acc" (v "acc" +: v "eps") ]
            [];
          if_ (v "acc" >: i 1000) [ assign "acc" (v "acc" -: i 1000) ] [];
        ]
    @ [
        if_ (v "eps" >: v "extent") [ ret (v "acc" +: i 1) ] [];
        ret (v "acc");
      ])

(* Gaussian momenta refresh, one kernel per pseudofermion field. *)
let momenta_func k =
  let name = Printf.sprintf "momenta_refresh_%d" k in
  func name
    [ ("seed", Ast.Tint) ]
    [
      decl "g" (((v "seed" *: i (31 + k)) +: i 17) %: i 1024);
      if_ (v "g" <: i 0) [ assign "g" (i 0 -: v "g") ] [];
      if_ (v "g" >: i 512) [ assign "g" (i 1024 -: v "g") ] [];
      if_ (v "g" %: i (k + 2) =: i 0) [ ret (v "g" +: i k) ] [];
      ret (v "g");
    ]

(* Stages of the twisted fermion operator applied during CG. *)
let fermion_op_func stage bias =
  let name = "fermion_op_" ^ stage in
  func name
    [ ("vol", Ast.Tint); ("vec", Ast.Tint) ]
    ([
       decl "norm" (i 0);
       decl "x" (v "vec");
       if_ (v "x" <: i 0) [ assign "x" (i 0 -: v "x") ] [];
     ]
    @ for_ "site" (i 0) ((v "vol" /: i 8) +: i 1)
        [
          assign "x" (((v "x" *: i 5) +: i bias) %: i 8192);
          if_ (v "x" <: i 1024) [ assign "norm" (v "norm" +: i 1) ] [];
          if_ (v "site" %: i 4 =: i 3) [ assign "norm" (v "norm" +: v "x" %: i 3) ] [];
        ]
    @ [
        if_ (v "norm" =: i 0) [ ret (i 1) ] [];
        if_ (v "norm" >: v "vol") [ ret (v "vol") ] [];
        ret (v "norm");
      ])

(* Project links back onto the group after updates. *)
let reunitarize =
  func "reunitarize"
    [ ("vol", Ast.Tint); ("drift", Ast.Tint) ]
    ([ decl "fixed" (i 0); decl "d" (v "drift") ]
    @ for_ "site" (i 0) ((v "vol" /: i 16) +: i 1)
        [
          assign "d" ((v "d" *: i 3) %: i 97);
          if_ (v "d" >: i 48) [ assign "fixed" (v "fixed" +: i 1) ] [];
        ]
    @ [
        if_ (v "fixed" >: v "vol" /: i 2) [ ret (i (-1)) ] [];
        ret (v "fixed");
      ])

(* Landau gauge fixing sweep used by some measurements. *)
let gauge_fix =
  func "gauge_fix"
    [ ("vol", Ast.Tint); ("max_sweeps", Ast.Tint) ]
    [
      decl "theta" (v "vol" *: i 4);
      decl "sweep" (i 0);
      while_
        (v "theta" >: i 8)
        [
          assign "theta" ((v "theta" *: i 5) /: i 8);
          assign "sweep" (v "sweep" +: i 1);
          if_ (v "sweep" >=: v "max_sweeps") [ ret (v "sweep") ] [];
          if_ (v "sweep" %: i 5 =: i 4) [ assign "theta" (v "theta" -: i 1) ] [];
        ];
      ret (v "sweep");
    ]

(* Rational-approximation CG solver: convergence loop with restart
   branches; the dominant source of loop-repeated constraints. *)
let congrad =
  func "congrad"
    [ ("vol", Ast.Tint); ("tol_exp", Ast.Tint); ("seed", Ast.Tint) ]
    [
      decl "resid" (v "vol" *: i 16);
      decl "iter" (i 0);
      decl "rstate" (v "seed");
      decl "vec" (v "seed" +: i 1);
      while_
        (v "resid" >: v "tol_exp")
        [
          (* one application of the fermion operator chain *)
          call_assign "vec" "fermion_op_dplus" [ v "vol"; v "vec" ];
          call_assign "vec" "fermion_op_dminus" [ v "vol"; v "vec" ];
          if_ (v "iter" %: i 4 =: i 0)
            [ call_assign "vec" "fermion_op_dsq" [ v "vol"; v "vec" ] ]
            [];
          assign "rstate" (((v "rstate" *: i 1103) +: i 12345) %: i 1000);
          if_ (v "rstate" <: i 200)
            [ assign "resid" ((v "resid" *: i 2) /: i 3) ]
            [ assign "resid" ((v "resid" *: i 3) /: i 4) ];
          if_ (v "iter" %: i 8 =: i 7) [ assign "resid" (v "resid" -: i 1) ] [];
          assign "iter" (v "iter" +: i 1);
          if_ (v "iter" >=: i 60) [ ret (v "iter") ] [];
        ];
      if_ (v "iter" >: i 30)
        [ decl "rres" (i 0); call_assign "rres" "fermion_op_rational" [ v "vol"; v "vec" ] ]
        [];
      ret (v "iter");
    ]

let accept_reject =
  func "accept_reject"
    [ ("rstate", Ast.Tint); ("step", Ast.Tint) ]
    [
      decl "metric" (((v "rstate" *: i 75) +: v "step") %: i 100);
      if_ (v "metric" <: i 70) [ ret (i 1) ] [];
      if_ (v "metric" >: i 95) [ ret (i (-1)) ] [];
      ret (i 0);
    ]

let planes = [ ("x", "y"); ("x", "z"); ("x", "t"); ("y", "z"); ("y", "t"); ("z", "t") ]

(* Wilson loops of increasing size: one kernel per loop extent. *)
let wilson_loop_func k =
  let name = Printf.sprintf "wilson_loop_%d" k in
  func name
    [ ("extent", Ast.Tint); ("vol", Ast.Tint) ]
    ([
       if_ (v "extent" <: i k) [ ret (i 0) ] [];
       decl "acc" (i 0);
     ]
    @ for_ "step" (i 0) (v "extent" -: i (k - 1))
        [
          if_ (v "step" %: i 2 =: i 0)
            [ assign "acc" (v "acc" +: i k) ]
            [ assign "acc" (v "acc" +: i 1) ];
        ]
    @ [
        if_ (v "acc" >: v "vol") [ ret (v "vol") ] [];
        if_ (v "acc" =: i 0) [ ret (i 1) ] [];
        ret (v "acc");
      ])

(* Fermion boundary exchange per direction: uses real point-to-point
   traffic along a ring when more than one process is present. *)
let fermion_exchange_func d =
  let name = Printf.sprintf "fermion_exchange_%s" d in
  func name
    [ ("rank", Ast.Tint); ("size", Ast.Tint); ("payload", Ast.Tint) ]
    [
      if_ (v "size" <=: i 1) [ ret (v "payload") ] [];
      decl "right" ((v "rank" +: i 1) %: v "size");
      decl "left" ((v "rank" +: v "size" -: i 1) %: v "size");
      decl "buf" (i 0);
      send ~dest:(v "right") ~tag:(i 77) (v "payload");
      recv ~src:(v "left") ~tag:(i 77) ~into:(Ast.Lvar "buf") ();
      if_ (v "buf" <: i 0) [ ret (i 0) ] [];
      if_ (v "buf" >: i 100000) [ ret (i 100000) ] [];
      ret (v "buf");
    ]

(* Checkpointing: branch-rich serialization bookkeeping. *)
let checkpoint_write =
  func "checkpoint_write"
    [ ("traj", Ast.Tint); ("vol", Ast.Tint); ("rank", Ast.Tint) ]
    ([
       decl "records" (i 0);
       if_ (v "rank" <>: i 0) [ ret (i 0) ] [];
       if_ (v "traj" =: i 0) [ decl "fresh_file" (i 1) ] [ decl "append_mode" (i 1) ];
     ]
    @ for_ "blk" (i 0) ((v "vol" /: i 16) +: i 1)
        [
          if_ (v "blk" %: i 4 =: i 3)
            [ assign "records" (v "records" +: i 2) ]
            [ assign "records" (v "records" +: i 1) ];
        ]
    @ [
        if_ (v "records" =: i 0) [ abort "empty checkpoint" ] [];
        ret (v "records");
      ])

let checkpoint_read =
  func "checkpoint_read"
    [ ("records", Ast.Tint); ("vol", Ast.Tint) ]
    [
      if_ (v "records" <=: i 0) [ ret (i (-1)) ] [];
      decl "expected" ((v "vol" /: i 16) +: i 1);
      if_ (v "records" <: v "expected") [ ret (i (-2)) ] [];
      if_ (v "records" >: v "expected" *: i 2) [ ret (i (-3)) ] [];
      ret (i 0);
    ]

(* Eigenvalue measurement: present in the build but only selected when
   multi_mass exceeds its cap — statically counted, never reachable,
   like the paper's configuration-dependent unreachable branches. *)
let eig_measure =
  func "eig_measure"
    [ ("vol", Ast.Tint); ("nev", Ast.Tint) ]
    ([ decl "converged" (i 0); decl "resid" (v "vol") ]
    @ for_ "sweep" (i 0) (v "nev")
        [
          assign "resid" ((v "resid" *: i 7) /: i 8);
          if_ (v "resid" <: v "nev") [ assign "converged" (v "converged" +: i 1) ] [];
          if_ (v "converged" >: i 16) [ ret (v "converged") ] [];
        ]
    @ [
        if_ (v "converged" =: i 0) [ ret (i (-1)) ] [];
        ret (v "converged");
      ])

let dim_var d = v d

let measure =
  func "measure"
    [ ("nx", Ast.Tint); ("ny", Ast.Tint); ("nz", Ast.Tint); ("nt", Ast.Tint); ("nsrc", Ast.Tint) ]
    ([ decl "obs" (i 0); decl "tmp" (i 0) ]
    @ List.concat_map
        (fun (d1, d2) ->
          [
            call_assign "tmp"
              (Printf.sprintf "plaquette_%s%s" d1 d2)
              [ v ("n" ^ d1); v ("n" ^ d2) ];
            assign "obs" (v "obs" +: v "tmp");
          ])
        planes
    @ List.concat_map
        (fun k ->
          [
            call_assign "tmp" (Printf.sprintf "moment_%d" k) [ v "obs" +: i k ];
            assign "obs" (v "obs" +: (v "tmp" %: i 97));
          ])
        [ 0; 1; 2; 3; 4; 5 ]
    @ List.concat_map
        (fun k ->
          [
            call_assign "tmp"
              (Printf.sprintf "wilson_loop_%d" k)
              [ v "nx"; v "nx" *: v "ny" *: v "nz" *: v "nt" ];
            assign "obs" (v "obs" +: v "tmp");
          ])
        [ 1; 2; 3; 4 ]
    @ [
        (* gauge-fixed measurements every fourth source *)
        decl "vol4" (v "nx" *: v "ny" *: v "nz" *: v "nt");
        if_ (v "nsrc" >=: i 2)
          [
            decl "gf" (i 0);
            call_assign "gf" "gauge_fix" [ v "vol4"; v "nsrc" *: i 4 ];
            assign "obs" (v "obs" +: v "gf");
          ]
          [];
        decl "reu" (i 0);
        call_assign "reu" "reunitarize" [ v "vol4"; v "obs" ];
        if_ (v "reu" <: i 0) [ abort "reunitarization diverged" ] [];
        if_ (v "nsrc" >=: i 4) [ assign "obs" (v "obs" *: i 2) ] [];
        ret (v "obs");
      ])

let update_step =
  func "update_step"
    [
      ("nx", Ast.Tint); ("ny", Ast.Tint); ("nz", Ast.Tint); ("nt", Ast.Tint);
      ("nsteps", Ast.Tint); ("rstate0", Ast.Tint);
    ]
    ([ decl "f" (i 0); decl "g" (i 0); decl "action" (i 0); decl "mom" (i 0) ]
    @ List.concat_map
        (fun k ->
          [
            call_assign "mom" (Printf.sprintf "momenta_refresh_%d" k) [ v "rstate0" +: i k ];
            assign "action" (v "action" +: v "mom");
          ])
        [ 0; 1; 2; 3 ]
    @ for_ "step" (i 0) (v "nsteps")
        (List.concat_map
           (fun d ->
             [
               call_assign "f" ("force_" ^ d) [ dim_var ("n" ^ d); v "step" ];
               assign "action" (v "action" +: v "f");
               call_assign "f"
                 (Printf.sprintf "link_update_%s_even" d)
                 [ dim_var ("n" ^ d); v "step" +: i 1 ];
               assign "action" (v "action" +: v "f");
               call_assign "f"
                 (Printf.sprintf "link_update_%s_odd" d)
                 [ dim_var ("n" ^ d); v "step" +: i 2 ];
               assign "action" (v "action" +: v "f");
             ])
           [ "x"; "y"; "z"; "t" ]
        @ List.concat_map
            (fun (d, fb) ->
              [
                call_assign "g"
                  (Printf.sprintf "gather_%s_%s" d fb)
                  [ v ("n" ^ d); v "step" +: i 1 ];
                assign "action" (v "action" +: v "g");
              ])
            [ ("x", "fwd"); ("x", "bwd"); ("y", "fwd"); ("y", "bwd");
              ("z", "fwd"); ("z", "bwd"); ("t", "fwd"); ("t", "bwd") ]
        @ [
            if_ (v "action" %: i 13 =: i 0) [ assign "action" (v "action" +: i 1) ] [];
          ])
    @ [ ret (v "action" +: v "rstate0") ])

let main =
  func "main" []
    ([
       (* 13 marked inputs; dimensions capped at NC = 5 by default *)
       input "nx" ~lo:(-8) ~cap:5 ~default:4;
       input "ny" ~lo:(-8) ~cap:5 ~default:4;
       input "nz" ~lo:(-8) ~cap:5 ~default:4;
       input "nt" ~lo:(-8) ~cap:5 ~default:4;
       input "nroot" ~lo:(-8) ~cap:8 ~default:2;
       input "warms" ~lo:(-8) ~cap:6 ~default:1;
       input "trajecs" ~lo:(-8) ~cap:6 ~default:2;
       input "nsteps" ~lo:(-8) ~cap:6 ~default:2;
       input "nsrc" ~lo:(-8) ~cap:8 ~default:1;
       input "seed" ~lo:(-64) ~cap:1024 ~default:17;
       input "tol_exp" ~lo:(-8) ~cap:12 ~default:4;
       input "gauge_iter" ~lo:(-8) ~cap:20 ~default:3;
       input "multi_mass" ~lo:(-8) ~cap:4 ~default:1;
       decl "rank" (i 0);
       decl "size" (i 0);
       comm_rank Ast.World "rank";
       comm_size Ast.World "size";
       decl "chk" (i 0);
     ]
    (* per-dimension sanity *)
    @ List.concat_map
        (fun d -> [ call_assign "chk" ("check_dim_" ^ d) [ v d; v "size" ] ])
        dims
    @ [
        (* parameter sanity *)
        sanity (v "nroot" >=: i 1);
        sanity (v "warms" >=: i 0);
        sanity (v "trajecs" >=: i 1);
        sanity (v "nsteps" >=: i 1);
        sanity (v "nsrc" >=: i 1);
        sanity (v "seed" >: i 0);
        sanity (v "tol_exp" >=: i 1);
        sanity (v "tol_exp" <=: i 12);
        sanity (v "gauge_iter" >=: i 1);
        sanity (v "multi_mass" >=: i 1);
        (* combination sanity *)
        decl "vol" (v "nx" *: v "ny" *: v "nz" *: v "nt");
        sanity (v "vol" >=: i 1);
        sanity (v "vol" <=: i 2048);
        (* THE framework gate: with the dimension cap at 5, nt >= size is
           unsatisfiable under a fixed 8-process launch *)
        sanity (v "nt" >=: v "size");
        if_ (v "size" =: i 1)
          [ decl "serial" (i 1) ]
          [
            (* concretized divisibility: small sizes make this easy *)
            if_ (v "vol" %: v "size" <>: i 0) [ exit_ (i 1) ] [];
          ];
        (* communicator splits: rc variables and rank-dependent branches *)
        decl "pcomm" (i 0);
        comm_split Ast.World ~color:(v "rank" %: i 2) ~key:(v "rank") ~into:"pcomm";
        decl "prank" (i 0);
        decl "psize" (i 0);
        comm_rank (Ast.Comm_var "pcomm") "prank";
        comm_size (Ast.Comm_var "pcomm") "psize";
        if_ (v "prank" =: i 1) [ decl "parity_leader" (i 1) ] [];
        decl "tcomm" (i 0);
        comm_split Ast.World ~color:(v "rank" /: i 2) ~key:(i 0 -: v "rank") ~into:"tcomm";
        decl "trank" (i 0);
        comm_rank (Ast.Comm_var "tcomm") "trank";
        if_ (v "trank" >: i 0) [ decl "slice_worker" (i 1) ] [];
        (* layout: contains the process-count-dependent FPE (bug 4) *)
        decl "slices" (i 0);
        call_assign "slices" "layout_timeslices" [ v "vol"; v "nx"; v "nz"; v "size" ];
        (* setup: contains the three malloc bugs *)
        call "setup_sources" [ v "nroot"; v "nsrc" ];
        call "setup_gauge" [ v "vol"; v "gauge_iter" ];
        call "congrad_alloc" [ v "nroot"; v "multi_mass" ];
        (* warmup *)
        decl "cg_iters" (i 0);
        decl "rstate" (v "seed");
      ]
    @ for_ "w" (i 0) (v "warms")
        [
          call_assign "cg_iters" "congrad" [ v "vol"; v "tol_exp"; v "rstate" ];
          assign "rstate" ((v "rstate" +: v "cg_iters") %: i 100000 +: i 1);
        ]
    @ [ decl "accepted" (i 0); decl "action" (i 0); decl "verdict" (i 0); decl "obs" (i 0) ]
    @ for_ "traj" (i 0) (v "trajecs")
        [
          call_assign "action" "update_step"
            [ v "nx"; v "ny"; v "nz"; v "nt"; v "nsteps"; v "rstate" ];
          call_assign "cg_iters" "congrad" [ v "vol"; v "tol_exp"; v "rstate" +: v "traj" ];
          call_assign "verdict" "accept_reject" [ v "rstate"; v "traj" ];
          if_ (v "verdict" =: i 1) [ assign "accepted" (v "accepted" +: i 1) ] [];
          if_ (v "verdict" =: i (-1)) [ assign "rstate" (v "rstate" +: i 7) ] [];
          if_
            (v "traj" %: i 2 =: i 0)
            [ call_assign "obs" "measure" [ v "nx"; v "ny"; v "nz"; v "nt"; v "nsrc" ] ]
            [];
          (* boundary exchange along each lattice direction *)
          decl "halo" (v "action");
          call_assign "halo" "fermion_exchange_x" [ v "rank"; v "size"; v "halo" ];
          call_assign "halo" "fermion_exchange_y" [ v "rank"; v "size"; v "halo" ];
          call_assign "halo" "fermion_exchange_z" [ v "rank"; v "size"; v "halo" ];
          call_assign "halo" "fermion_exchange_t" [ v "rank"; v "size"; v "halo" ];
          (* periodic checkpoint *)
          decl "ckpt" (i 0);
          if_
            (v "traj" %: i 3 =: i 2)
            [
              call_assign "ckpt" "checkpoint_write" [ v "traj"; v "vol"; v "rank" ];
              if_ (v "rank" =: i 0)
                [
                  decl "ok" (i 0);
                  call_assign "ok" "checkpoint_read" [ v "ckpt"; v "vol" ];
                  if_ (v "ok" <>: i 0) [ abort "checkpoint verification failed" ] [];
                ]
                [];
            ]
            [];
          (* eigenvalue measurement: requires multi_mass > 4, which input
             capping forbids — statically present, dynamically dead *)
          if_
            (v "multi_mass" >: i 4)
            [ call_assign "obs" "eig_measure" [ v "vol"; v "multi_mass" ] ]
            [];
          assign "rstate" ((v "rstate" *: i 31 +: v "action") %: i 100000 +: i 1);
        ]
    @ [
        (* global observable reduction *)
        decl "gobs" (i 0);
        allreduce ~op:Ast.Op_sum (v "obs" +: v "accepted") ~into:(Ast.Lvar "gobs");
        if_ (v "gobs" <: i 0) [ abort "negative global observable" ] [];
        decl "maxiters" (i 0);
        reduce ~op:Ast.Op_max ~root:(i 0) (v "cg_iters") ~into:(Ast.Lvar "maxiters");
        if_ (v "rank" =: i 0)
          [ if_ (v "maxiters" >=: i 60) [ decl "slow_converge" (i 1) ] [] ]
          [];
      ])

let target =
  Registry.make ~name:"susy-hmc"
    ~description:
      "Synthetic SUSY LATTICE RHMC component: 13 marked inputs, deep sanity check, \
       communicator splits, 4 seeded bugs (3 malloc segfaults, 1 process-count-dependent FPE)"
    ~tuning:
      {
        Registry.dfs_phase = 50;
        depth_bound = 500;
        key_input = "nx";
        default_cap = 5;
        initial_nprocs = 8;
        step_limit = 2_000_000;
      }
    (program
       ([ main ]
       @ List.map check_dim_func dims
       @ List.map force_func [ "x"; "y"; "z"; "t" ]
       @ List.map (fun (d, fb) -> gather_func d fb)
           [ ("x", "fwd"); ("x", "bwd"); ("y", "fwd"); ("y", "bwd");
             ("z", "fwd"); ("z", "bwd"); ("t", "fwd"); ("t", "bwd") ]
       @ List.map plaquette_func planes
       @ List.map moment_func [ 0; 1; 2; 3; 4; 5 ]
       @ List.map wilson_loop_func [ 1; 2; 3; 4 ]
       @ List.map fermion_exchange_func [ "x"; "y"; "z"; "t" ]
       @ List.concat_map
           (fun d -> [ link_update_func d 0; link_update_func d 1 ])
           [ "x"; "y"; "z"; "t" ]
       @ List.map momenta_func [ 0; 1; 2; 3 ]
       @ [
           fermion_op_func "dplus" 11;
           fermion_op_func "dminus" 29;
           fermion_op_func "dsq" 43;
           fermion_op_func "rational" 71;
           reunitarize;
           gauge_fix;
         ]
       @ [
           setup_sources;
           setup_gauge;
           congrad_alloc;
           layout_timeslices;
           congrad;
           accept_reject;
           measure;
           update_step;
           checkpoint_write;
           checkpoint_read;
           eig_measure;
         ]))
