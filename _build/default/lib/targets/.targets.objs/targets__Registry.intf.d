lib/targets/registry.mli: Minic
