lib/targets/imb_mpi1.ml: Ast Builder List Minic Printf Registry
