lib/targets/catalog.ml: Heat2d Hpl Imb_mpi1 List Npb_cg Printf Registry Susy_hmc Toy
