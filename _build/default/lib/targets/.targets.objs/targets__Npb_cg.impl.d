lib/targets/npb_cg.ml: Ast Builder Minic Registry
