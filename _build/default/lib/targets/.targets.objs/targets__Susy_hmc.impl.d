lib/targets/susy_hmc.ml: Ast Builder List Minic Printf Registry
