lib/targets/registry.ml: Minic
