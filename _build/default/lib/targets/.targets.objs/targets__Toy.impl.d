lib/targets/toy.ml: Ast Builder Minic Registry
