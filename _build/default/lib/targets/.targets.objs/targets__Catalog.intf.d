lib/targets/catalog.mli: Registry
