lib/targets/hpl.ml: Ast Builder List Minic Printf Registry
