lib/targets/heat2d.ml: Ast Builder Minic Registry
