(** The target catalogue: every evaluation program by name. *)

val all : unit -> Registry.t list
(** toy-fig1, toy-fig2, susy-hmc, hpl, imb-mpi1, heat2d, npb-cg. *)

val find : string -> Registry.t option
val find_exn : string -> Registry.t
val names : unit -> string list
