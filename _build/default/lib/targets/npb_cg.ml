(* NPB CG-style target (beyond the paper): the NAS conjugate-gradient
   benchmark's shape — generate a sparse symmetric matrix, run niter
   outer iterations each containing an inner CG solve whose dot products
   are global allreduces, update the zeta eigenvalue estimate, and check
   it against the class reference when the problem matches a class size.

   Clean by construction (no seeded bug): used as the well-behaved
   coverage workload, and by the examples as a realistic solver. *)

open Minic
open Builder

let makea =
  func "makea"
    [ ("na", Ast.Tint); ("nonzer", Ast.Tint); ("seed", Ast.Tint) ]
    ([ decl "nnz" (i 0); decl "s" (v "seed") ]
    @ for_ "row" (i 0) ((v "na" /: i 8) +: i 1)
        ([
           assign "s" (((v "s" *: i 1220703125) +: i 1) %: i 33554432);
           if_ (v "s" <: i 0) [ assign "s" (i 0 -: v "s") ] [];
         ]
        @ for_ "e" (i 0) (v "nonzer")
            [
              if_ ((v "s" +: v "e") %: i 3 =: i 0)
                [ assign "nnz" (v "nnz" +: i 2) ]
                [ assign "nnz" (v "nnz" +: i 1) ];
            ]
        @ [
            if_ (v "row" %: i 16 =: i 15) [ assign "nnz" (v "nnz" +: i 1) ] [];
          ])
    @ [
        if_ (v "nnz" <=: i 0) [ ret (i 1) ] [];
        ret (v "nnz");
      ])

let sparse_matvec =
  func "sparse_matvec"
    [ ("rows", Ast.Tint); ("nonzer", Ast.Tint); ("x", Ast.Tint) ]
    ([ decl "y" (i 0) ]
    @ for_ "r" (i 0) (v "rows")
        [
          if_ (v "r" %: i 2 =: i 0)
            [ assign "y" (v "y" +: (v "x" %: i 97)) ]
            [ assign "y" (v "y" +: (v "x" %: i 89) +: v "nonzer") ];
        ]
    @ [
        if_ (v "y" <: i 0) [ ret (i 0) ] [];
        ret (v "y");
      ])

let conj_grad =
  func "conj_grad"
    [ ("rows", Ast.Tint); ("nonzer", Ast.Tint); ("seed", Ast.Tint) ]
    [
      decl "rho" (v "seed" %: i 1000 +: i 1);
      decl "p" (v "rho");
      decl "iter" (i 0);
      decl "rnorm" (v "rows" *: i 4);
      while_
        (v "iter" <: i 25)
        [
          decl "q" (i 0);
          call_assign "q" "sparse_matvec" [ v "rows"; v "nonzer"; v "p" ];
          (* global dot products: d = p.q and rho' = r.r *)
          decl "d" (i 0);
          allreduce ~op:Ast.Op_sum (v "q" %: i 1000) ~into:(Ast.Lvar "d");
          if_ (v "d" =: i 0) [ assign "d" (i 1) ] [];
          decl "alpha" (v "rho" /: v "d");
          decl "rho_new" (i 0);
          allreduce ~op:Ast.Op_sum ((v "rho" +: v "alpha") %: i 997) ~into:(Ast.Lvar "rho_new");
          if_ (v "rho_new" =: i 0) [ assign "rho_new" (i 1) ] [];
          decl "beta" (v "rho_new" /: v "rho");
          assign "p" ((v "p" *: v "beta") %: i 10007 +: i 1);
          assign "rho" (v "rho_new");
          assign "rnorm" ((v "rnorm" *: i 7) /: i 8);
          if_ (v "rnorm" <=: i 1) [ ret (v "iter" +: i 1) ] [];
          assign "iter" (v "iter" +: i 1);
        ];
      ret (i 25);
    ]

let class_reference =
  func "class_reference"
    [ ("na", Ast.Tint) ]
    [
      (* NAS class table, scaled to the capped problem sizes *)
      if_ (v "na" =: i 64) [ ret (i 865) ] [];  (* class S *)
      if_ (v "na" =: i 128) [ ret (i 2510) ] [];  (* class W *)
      if_ (v "na" =: i 256) [ ret (i 4426) ] [];  (* class A *)
      ret (i 0);  (* no reference: verification skipped *)
    ]

let main =
  func "main" []
    [
      input "na" ~lo:(-8) ~cap:256 ~default:64;
      input "nonzer" ~lo:(-8) ~cap:8 ~default:3;
      input "niter" ~lo:(-8) ~cap:10 ~default:3;
      input "shift" ~lo:(-8) ~cap:50 ~default:10;
      input "seed" ~lo:(-8) ~cap:9999 ~default:314;
      decl "rank" (i 0);
      decl "size" (i 0);
      comm_rank Ast.World "rank";
      comm_size Ast.World "size";
      sanity (v "na" >=: i 16);
      sanity (v "nonzer" >=: i 1);
      sanity (v "niter" >=: i 1);
      sanity (v "shift" >=: i 0);
      sanity (v "seed" >: i 0);
      sanity (v "na" >=: v "size");
      (* row-block partition *)
      decl "rows" (v "na" /: v "size");
      if_ (v "rank" <: v "na" %: v "size") [ assign "rows" (v "rows" +: i 1) ] [];
      if_ (v "rows" <: i 1) [ exit_ (i 1) ] [];
      decl "nnz" (i 0);
      call_assign "nnz" "makea" [ v "na"; v "nonzer"; v "seed" +: v "rank" ];
      decl "zeta" (v "shift");
      decl "cg_its" (i 0);
      decl "it" (i 0);
      while_
        (v "it" <: v "niter")
        [
          call_assign "cg_its" "conj_grad" [ v "rows"; v "nonzer"; v "seed" +: v "it" ];
          (* zeta = shift + 1/ (x.z): modelled on capped integers *)
          decl "dot" (i 0);
          allreduce ~op:Ast.Op_sum (v "cg_its" +: v "rank") ~into:(Ast.Lvar "dot");
          if_ (v "dot" =: i 0) [ assign "dot" (i 1) ] [];
          assign "zeta" (v "shift" +: ((v "nnz" %: i 1000) /: v "dot") +: v "it");
          assign "it" (v "it" +: i 1);
        ];
      (* verification against the class table *)
      decl "reference" (i 0);
      call_assign "reference" "class_reference" [ v "na" ];
      if_ (v "reference" >: i 0)
        [
          decl "err" (v "zeta" *: i 100 -: v "reference");
          if_ (v "err" <: i 0) [ assign "err" (i 0 -: v "err") ] [];
          if_ (v "err" <: v "reference")
            [ decl "verified" (i 1) ]
            [ decl "unverified" (i 1) ];
        ]
        [];
      decl "gz" (i 0);
      reduce ~op:Ast.Op_max ~root:(i 0) (v "zeta") ~into:(Ast.Lvar "gz");
      if_ (v "rank" =: i 0)
        [ if_ (v "gz" <: i 0) [ abort "negative eigenvalue estimate" ] [] ]
        [];
    ]

let target =
  Registry.make ~name:"npb-cg"
    ~description:
      "NAS CG-style conjugate-gradient benchmark (beyond the paper): sparse matvec, \
       allreduce dot products, class-table verification; clean workload"
    ~tuning:
      {
        Registry.dfs_phase = 40;
        depth_bound = 300;
        key_input = "na";
        default_cap = 256;
        initial_nprocs = 8;
        step_limit = 4_000_000;
      }
    (program [ main; makea; sparse_matvec; conj_grad; class_reference ])
