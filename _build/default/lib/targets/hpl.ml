(* Synthetic HPL: blocked LU factorization over a P x Q process grid,
   reproducing the control-flow shape of the High-Performance Linpack
   benchmark used in the paper's evaluation:

   - 28 marked input parameters, each range-checked in a deep sanity
     phase, plus combination checks (the trait that makes every search
     strategy except BoundedDFS fail — Figure 4);
   - a panel-factorization phase with three algorithmic variants
     (pfact/rfact: left / Crout / right) and a recursive panel splitting
     controlled by nbmin / ndiv;
   - six broadcast variants (bcast 0..5) mirroring HPL's 1ring/1ringM/
     2ring/2ringM/long/longM topologies, all moving data through real
     simulator collectives;
   - a trailing-matrix update whose work grows ~ N^2 / NB, giving the
     super-linear cost curve of Figure 6;
   - swap variants (bin-exch / spread / mix), backward substitution and
     a residual check. *)

open Minic
open Builder

(* name, lower bound, upper bound, default, cap for marking *)
let params =
  [
    ("ns", 1, 4, 1, 4);
    ("n", 1, 100_000, 64, 300);
    ("nbs", 1, 3, 1, 3);
    ("nb", 1, 64, 16, 64);
    ("pmap", 0, 1, 0, 1);
    ("grids", 1, 2, 1, 2);
    ("p", 1, 16, 2, 16);
    ("q", 1, 16, 2, 16);
    ("thresh_exp", 0, 8, 4, 8);
    ("npfacts", 1, 3, 1, 3);
    ("pfact", 0, 2, 1, 2);
    ("nbmins", 1, 2, 1, 2);
    ("nbmin", 1, 8, 2, 8);
    ("ndivs", 1, 2, 1, 2);
    ("ndiv", 2, 4, 2, 4);
    ("nrfacts", 1, 3, 1, 3);
    ("rfact", 0, 2, 1, 2);
    ("nbcasts", 1, 2, 1, 2);
    ("bcast", 0, 5, 0, 5);
    ("ndepths", 1, 2, 1, 2);
    ("depth", 0, 1, 0, 1);
    ("swap", 0, 2, 1, 2);
    ("swap_thresh", 0, 128, 64, 128);
    ("l1_trans", 0, 1, 0, 1);
    ("u_trans", 0, 1, 0, 1);
    ("equil", 0, 1, 1, 1);
    ("align", 1, 16, 8, 16);
    ("seed", 1, 4096, 1, 4096);
  ]

let () = assert (List.length params = 28)

(* One panel-factorization variant: a loop over the panel's columns with
   pivot-search and scaling branches. The three variants differ in where
   the update happens (left-looking / Crout / right-looking). *)
let pfact_variant name pivot_bias =
  func name
    [ ("m", Ast.Tint); ("nb", Ast.Tint); ("seed", Ast.Tint) ]
    ([ decl "pivots" (i 0); decl "r" (v "seed"); decl "pv" (i 0) ]
    @ for_ "jj" (i 0) (v "nb")
        [
          assign "r" (((v "r" *: i 48271) +: i pivot_bias) %: i 65536);
          if_ (v "r" %: i 7 =: i 0)
            [ assign "pivots" (v "pivots" +: i 1) ]  (* off-diagonal pivot *)
            [];
          (* per-column pivot search, variant picked by the residue *)
          if_ (v "jj" %: i 3 =: i 0)
            [ call_assign "pv" "pivot_full" [ v "m"; v "r" ] ]
            [
              if_ (v "jj" %: i 3 =: i 1)
                [ call_assign "pv" "pivot_tournament" [ v "m"; v "r" ] ]
                [ call_assign "pv" "pivot_threshold" [ v "m"; v "r" ] ];
            ];
          if_ (v "jj" =: i 0) [ decl "first_col" (i 1) ] [];
          if_ (v "jj" >=: v "m") [ ret (v "pivots" +: v "pv") ] [];
          if_ (v "r" %: i 97 =: i 13) [ decl "tiny_pivot" (i 1) ] [];
        ]
    @ [
        if_ (v "pivots" >: v "nb" /: i 2) [ ret (v "pivots" +: i 1) ] [];
        ret (v "pivots");
      ])

(* Recursive panel splitting controlled by nbmin / ndiv. *)
let rpanel =
  func "rpanel"
    [ ("width", Ast.Tint); ("nbmin", Ast.Tint); ("ndiv", Ast.Tint); ("pfact", Ast.Tint);
      ("seed", Ast.Tint) ]
    [
      if_ (v "width" <=: v "nbmin")
        [
          decl "piv" (i 0);
          if_ (v "pfact" =: i 0)
            [ call_assign "piv" "pdfact_left" [ v "width"; v "width"; v "seed" ] ]
            [
              if_ (v "pfact" =: i 1)
                [ call_assign "piv" "pdfact_crout" [ v "width"; v "width"; v "seed" ] ]
                [ call_assign "piv" "pdfact_right" [ v "width"; v "width"; v "seed" ] ];
            ];
          ret (v "piv");
        ]
        [];
      decl "part" (v "width" /: v "ndiv");
      if_ (v "part" <: i 1) [ assign "part" (i 1) ] [];
      decl "left" (i 0);
      decl "right" (i 0);
      call_assign "left" "rpanel" [ v "part"; v "nbmin"; v "ndiv"; v "pfact"; v "seed" ];
      call_assign "right" "rpanel"
        [ v "width" -: v "part"; v "nbmin"; v "ndiv"; v "pfact"; v "seed" +: i 1 ];
      ret (v "left" +: v "right");
    ]

(* Six broadcast variants. Each computes its topology bookkeeping with
   branches, then moves the panel through a real collective. *)
let bcast_variant idx name =
  func name
    [ ("panel", Ast.Tint); ("root_col", Ast.Tint); ("q", Ast.Tint); ("mycol", Ast.Tint) ]
    [
      decl "hops" (i 0);
      if_ (v "q" <=: i 1) [ ret (v "panel") ] [];
      if_ (v "mycol" =: v "root_col")
        [ assign "hops" (i 0) ]
        [
          decl "dist" (v "mycol" -: v "root_col");
          if_ (v "dist" <: i 0) [ assign "dist" (v "dist" +: v "q") ] [];
          (if idx mod 2 = 0 then assign "hops" (v "dist")
           else if_ (v "dist" %: i 2 =: i 0)
               [ assign "hops" (v "dist" /: i 2) ]
               [ assign "hops" ((v "dist" +: i 1) /: i 2) ]);
        ];
      (if idx >= 4 then
         (* "long" variants split the panel *)
         if_ (v "panel" >: i 8)
           [ decl "chunk" (v "panel" /: i 2); decl "rest" (v "panel" -: v "chunk") ]
           [ decl "whole" (v "panel") ]
       else Ast.Nop);
      decl "bval" (v "panel");
      bcast ~root:(i 0) (Ast.Lvar "bval");
      if_ (v "hops" >: v "q") [ ret (v "bval" +: v "q") ] [];
      ret (v "bval" +: v "hops");
    ]

let bcast_names =
  [ "bcast_1ring"; "bcast_1ringm"; "bcast_2ring"; "bcast_2ringm"; "bcast_blong"; "bcast_blongm" ]

(* Row-swap variants: binary-exchange, spread, and the mixed strategy
   selected by swap_thresh. *)
let swap_variant name style =
  func name
    [ ("rows", Ast.Tint); ("p", Ast.Tint); ("myrow", Ast.Tint) ]
    ([ decl "steps" (i 0); decl "left" (v "rows") ]
    @ (match style with
      | `Binexch ->
        [
          while_ (v "left" >: i 1)
            [
              assign "left" ((v "left" +: i 1) /: i 2);
              assign "steps" (v "steps" +: i 1);
              if_ (v "steps" >: i 30) [ ret (v "steps") ] [];
            ];
        ]
      | `Spread ->
        for_ "s" (i 0) (v "p")
          [
            if_ (v "s" <>: v "myrow") [ assign "steps" (v "steps" +: i 1) ] [];
          ]
      | `Mix ->
        [
          if_ (v "rows" >: v "p" *: i 4)
            [ assign "steps" (v "p") ]
            [ assign "steps" (v "rows" /: (v "p" +: i 1)) ];
        ])
    @ [ ret (v "steps") ])

(* Trailing update: the O(N^2 / NB) workhorse that dominates runtime. *)
let pdupdate =
  func "pdupdate"
    [ ("n", Ast.Tint); ("nb", Ast.Tint); ("j", Ast.Tint); ("l1", Ast.Tint); ("u", Ast.Tint) ]
    ([ decl "work" (i 0); decl "acc" (i 0); decl "tf" (i 0) ]
    @ for_ "c" (v "j") (v "n")
        [
          if_ (v "c" %: v "nb" =: i 0) [ assign "work" (v "work" +: i 2) ] [];
          (* rank-k update of one trailing column: dominated by dgemm in
             real HPL, modelled as a fixed bundle of flops per column *)
          assign "acc" ((v "acc" *: i 3) +: v "c");
          assign "acc" (v "acc" -: ((v "acc" /: i 7) *: i 7));
          assign "work" (v "work" +: i 1 +: (v "acc" %: i 2));
        ]
    @ [
        (* tile kernel dispatch on the block residue *)
        call_assign "tf"
          (Printf.sprintf "dgemm_tile_%d" 0)
          [ v "nb"; (v "n" -: v "j") %: i 64 ];
        assign "work" (v "work" +: v "tf");
        if_ (v "l1" =: i 1)
          [
            call_assign "tf" "dgemm_tile_1" [ v "nb"; v "nb" ];
            assign "work" (v "work" +: i 3 +: v "tf");
          ]
          [];
        if_ (v "u" =: i 1)
          [
            call_assign "tf" "dgemm_tile_2" [ v "nb"; v "nb" /: i 2 ];
            assign "work" (v "work" +: i 5 +: v "tf");
          ]
          [];
        ret (v "work");
      ])

(* Backward substitution over blocks. *)
let pdtrsv =
  func "pdtrsv"
    [ ("n", Ast.Tint); ("nb", Ast.Tint) ]
    [
      decl "jb" (v "n");
      decl "ops" (i 0);
      while_ (v "jb" >: i 0)
        [
          decl "w" (v "nb");
          if_ (v "jb" <: v "nb") [ assign "w" (v "jb") ] [];
          assign "ops" (v "ops" +: v "w");
          if_ (v "ops" %: i 1000 =: i 999) [ decl "flush" (i 1) ] [];
          assign "jb" (v "jb" -: v "nb");
        ];
      ret (v "ops");
    ]

(* Tiled dgemm kernels: one per register-blocking shape, dispatched on
   the panel width's residue. *)
let dgemm_tile_func k =
  let name = Printf.sprintf "dgemm_tile_%d" k in
  let tile = 1 + (k mod 3) in
  func name
    [ ("rows", Ast.Tint); ("cols", Ast.Tint) ]
    ([
       if_ (v "rows" <=: i 0) [ ret (i 0) ] [];
       decl "flops" (i 0);
       decl "rr" (v "rows" %: i (tile + 1));
     ]
    @ for_ "b" (i 0) ((v "cols" /: i (tile + 1)) +: i 1)
        [
          if_ (v "b" %: i 2 =: i (k mod 2))
            [ assign "flops" (v "flops" +: i tile) ]
            [ assign "flops" (v "flops" +: i 1) ];
        ]
    @ [
        if_ (v "rr" <>: i 0) [ assign "flops" (v "flops" +: v "rr") ] [];
        if_ (v "flops" >: v "rows" *: v "cols") [ ret (v "rows" *: v "cols") ] [];
        ret (v "flops");
      ])

(* Pivot-search variants: full column, binary-tournament, threshold. *)
let pivot_search_func name style =
  func name
    [ ("m", Ast.Tint); ("seed", Ast.Tint) ]
    ([ decl "best" (i 0); decl "s" (v "seed") ]
    @ (match style with
      | `Full ->
        for_ "r" (i 0) (v "m")
          [
            assign "s" (((v "s" *: i 16807) +: i 3) %: i 4096);
            if_ (v "s" >: v "best") [ assign "best" (v "s") ] [];
          ]
      | `Tournament ->
        [
          decl "span" (v "m");
          while_ (v "span" >: i 1)
            [
              assign "span" ((v "span" +: i 1) /: i 2);
              assign "s" (((v "s" *: i 16807) +: i 7) %: i 4096);
              if_ (v "s" %: i 3 =: i 0) [ assign "best" (v "best" +: i 1) ] [];
              if_ (v "best" >: i 64) [ ret (v "best") ] [];
            ];
        ]
      | `Threshold ->
        [
          assign "s" (((v "s" *: i 16807) +: i 11) %: i 4096);
          if_ (v "s" >: i 2048)
            [ assign "best" (v "s") ]
            [ if_ (v "m" >: i 8) [ assign "best" (v "m") ] [ assign "best" (i 1) ] ];
        ])
    @ [
        if_ (v "best" =: i 0) [ ret (i 1) ] [];
        ret (v "best");
      ])

(* Phase timers with HPL's wall/cpu split and max/min accounting. *)
let timer_func phase bias =
  let name = "timer_" ^ phase in
  func name
    [ ("sample", Ast.Tint) ]
    [
      decl "tick" (((v "sample" *: i bias) +: i 1) %: i 997);
      if_ (v "tick" <: i 0) [ assign "tick" (i 0 -: v "tick") ] [];
      if_ (v "tick" >: i 900) [ ret (i 900) ] [];
      if_ (v "tick" %: i 7 =: i 0) [ ret (v "tick" +: i 1) ] [];
      ret (v "tick");
    ]

(* Random matrix generation, HPL's pdmatgen: per-panel seeding with
   alignment and transposition branches. *)
let pdmatgen =
  func "pdmatgen"
    [ ("n", Ast.Tint); ("nb", Ast.Tint); ("align", Ast.Tint); ("seed", Ast.Tint) ]
    ([ decl "cells" (i 0); decl "s" (v "seed") ]
    @ for_ "panel" (i 0) ((v "n" /: v "nb") +: i 1)
        [
          assign "s" (((v "s" *: i 69069) +: i 1) %: i 65536);
          if_ (v "s" %: i 2 =: i 0) [ assign "cells" (v "cells" +: i 2) ] [];
          if_ (v "panel" %: v "align" =: i 0)
            [ assign "cells" (v "cells" +: v "nb") ]
            [ assign "cells" (v "cells" +: i 1) ];
        ]
    @ [
        if_ (v "cells" <=: i 0) [ ret (i 1) ] [];
        ret (v "cells");
      ])

(* Row/column equilibration, selected by the equil parameter. *)
let equil_scale =
  func "equil_scale"
    [ ("n", Ast.Tint); ("nb", Ast.Tint) ]
    [
      decl "passes" (i 0);
      decl "left" (v "n");
      while_ (v "left" >: v "nb")
        [
          assign "left" (v "left" -: v "nb");
          assign "passes" (v "passes" +: i 1);
          if_ (v "passes" >: i 100) [ ret (v "passes") ] [];
        ];
      if_ (v "left" =: i 0) [ ret (v "passes") ] [];
      ret (v "passes" +: i 1);
    ]

(* Serial fallback: only runs on a single process — unreachable for the
   No_Fwk ablation, which is pinned to an 8-process launch. *)
let serial_lu =
  func "serial_lu"
    [ ("n", Ast.Tint); ("nb", Ast.Tint) ]
    ([ decl "flops" (i 0) ]
    @ for_ "col" (i 0) (v "n")
        [
          if_ (v "col" %: v "nb" =: i 0)
            [ assign "flops" (v "flops" +: i 3) ]
            [ assign "flops" (v "flops" +: i 1) ];
        ]
    @ [
        if_ (v "flops" <: v "n") [ ret (v "n") ] [];
        if_ (v "flops" >: v "n" *: i 4) [ ret (v "n" *: i 4) ] [];
        ret (v "flops");
      ])

(* Wide-machine layout: needs at least 12 processes — beyond the initial
   8-process launch, so only reachable when the framework raises the
   process count toward the cap. *)
let tall_grid_setup =
  func "tall_grid_setup"
    [ ("p", Ast.Tint); ("q", Ast.Tint); ("size", Ast.Tint) ]
    [
      decl "spare" (v "size" -: (v "p" *: v "q"));
      if_ (v "spare" <: i 0) [ ret (i (-1)) ] [];
      if_ (v "spare" >: v "q") [ decl "many_spares" (i 1) ] [];
      if_ (v "p" >: v "q") [ ret (v "p") ] [];
      ret (v "q");
    ]

(* Present in the build, selected by pfact = 3 — but pfact is capped at
   2, so this variant is statically counted yet never reachable. *)
let pdfact_custom = pfact_variant "pdfact_custom" 53

(* Residual check on floats: concrete branches only (COMPI does not
   track floating point symbolically). *)
let residual =
  func "residual"
    [ ("n", Ast.Tint); ("seed", Ast.Tint) ]
    [
      declf "norm" (f 1.0 +: (v "seed" %: i 7));
      declf "resid" (v "n" /: (v "norm" *: f 100.0));
      if_ (v "resid" <: f 16.0) [ ret (i 1) ] [];
      ret (i 0);
    ]

let main =
  func "main" []
    (List.map
       (fun (name, lo, _, default, cap) -> input name ~lo:(min (-8) (lo - 8)) ~cap ~default)
       params
    @ [
        decl "rank" (i 0);
        decl "size" (i 0);
        comm_rank Ast.World "rank";
        comm_size Ast.World "size";
      ]
    (* the famous HPL.dat sanity phase: every parameter range-checked;
       the third check is a parity branch on the concretized value so it
       adds coverage without letting DFS pin parameters to equalities *)
    @ List.concat_map
        (fun (name, lo, hi, _, _) ->
          [
            sanity (v name >=: i lo);
            sanity (v name <=: i hi);
            if_ ((v name -: i lo) %: i 2 =: i 0) [ decl (name ^ "_even") (i 1) ] [];
          ])
        params
    @ [
        (* combination checks *)
        sanity (v "nb" <=: v "n");
        sanity (v "nbmin" <=: v "nb");
        sanity (v "p" <=: v "size");
        sanity (v "q" <=: v "size");
        sanity (v "p" *: v "q" <=: v "size");
        sanity (v "depth" <: v "q");
        sanity (v "swap_thresh" <=: v "n");
        if_ (v "ns" >: i 2) [ decl "many_problems" (i 1) ] [];
        (* process grid *)
        decl "myrow" (i 0);
        decl "mycol" (i 0);
        if_ (v "pmap" =: i 0)
          [ assign "myrow" (v "rank" /: v "q"); assign "mycol" (v "rank" %: v "q") ]
          [ assign "myrow" (v "rank" %: v "p"); assign "mycol" (v "rank" /: v "p") ];
        decl "in_grid" (i 0);
        if_ (v "myrow" <: v "p" &&: (v "mycol" <: v "q")) [ assign "in_grid" (i 1) ] [];
        (* row/col communicators: rc variables for the framework *)
        decl "rowcomm" (i 0);
        comm_split Ast.World ~color:(v "myrow") ~key:(v "mycol") ~into:"rowcomm";
        decl "colcomm" (i 0);
        comm_split Ast.World ~color:(v "mycol") ~key:(v "myrow") ~into:"colcomm";
        decl "rowrank" (i 0);
        comm_rank (Ast.Comm_var "rowcomm") "rowrank";
        decl "colrank" (i 0);
        comm_rank (Ast.Comm_var "colcomm") "colrank";
        if_ (v "rowrank" =: i 0) [ decl "row_leader" (i 1) ] [];
        if_ (v "colrank" >: i 1) [ decl "deep_col" (i 1) ] [];
        (* generation, equilibration, and size-dependent layouts *)
        decl "gen" (i 0);
        call_assign "gen" "pdmatgen" [ v "n"; v "nb"; v "align"; v "seed" ];
        if_ (v "equil" =: i 1)
          [ decl "eqp" (i 0); call_assign "eqp" "equil_scale" [ v "n"; v "nb" ] ]
          [];
        if_ (v "size" =: i 1)
          [ decl "slu" (i 0); call_assign "slu" "serial_lu" [ v "n"; v "nb" ] ]
          [];
        if_ (v "size" >=: i 12)
          [ decl "tg" (i 0); call_assign "tg" "tall_grid_setup" [ v "p"; v "q"; v "size" ] ]
          [];
        if_ (v "pfact" =: i 3)
          [ decl "pc" (i 0); call_assign "pc" "pdfact_custom" [ v "nb"; v "nb"; v "seed" ] ]
          [];
        (* factorization sweep *)
        decl "piv" (i 0);
        decl "bres" (i 0);
        decl "upd" (i 0);
        decl "swaps" (i 0);
        decl "total_work" (i 0);
        decl "j" (i 0);
        while_
          (v "j" <: v "n")
          [
            decl "width" (v "nb");
            if_ (v "n" -: v "j" <: v "nb") [ assign "width" (v "n" -: v "j") ] [];
            call_assign "piv" "rpanel"
              [ v "width"; v "nbmin"; v "ndiv"; v "pfact"; v "seed" +: v "j" ];
            (* broadcast variant dispatch *)
            (let rec dispatch k =
               if k = 5 then
                 call_assign "bres" (List.nth bcast_names 5)
                   [ v "width"; v "mycol"; v "q"; v "mycol" ]
               else
                 if_ (v "bcast" =: i k)
                   [
                     call_assign "bres" (List.nth bcast_names k)
                       [ v "width"; v "mycol"; v "q"; v "mycol" ];
                   ]
                   [ dispatch (k + 1) ]
             in
             dispatch 0);
            (* swap variant dispatch *)
            if_ (v "swap" =: i 0)
              [ call_assign "swaps" "swap_binexch" [ v "width"; v "p"; v "myrow" ] ]
              [
                if_ (v "swap" =: i 1)
                  [ call_assign "swaps" "swap_spread" [ v "width"; v "p"; v "myrow" ] ]
                  [
                    if_ (v "width" >: v "swap_thresh")
                      [ call_assign "swaps" "swap_spread" [ v "width"; v "p"; v "myrow" ] ]
                      [ call_assign "swaps" "swap_mix" [ v "width"; v "p"; v "myrow" ] ];
                  ];
              ];
            call_assign "upd" "pdupdate" [ v "n"; v "nb"; v "j"; v "l1_trans"; v "u_trans" ];
            assign "total_work" (v "total_work" +: v "piv" +: v "bres" +: v "swaps" +: v "upd");
            if_ (v "depth" =: i 1)
              [
                (* look-ahead: factor the next panel early *)
                if_ (v "j" +: v "nb" <: v "n")
                  [
                    call_assign "piv" "rpanel"
                      [ v "nb"; v "nbmin"; v "ndiv"; v "rfact"; v "seed" +: v "j" +: i 1 ];
                  ]
                  [];
              ]
              [];
            assign "j" (v "j" +: v "nb");
          ];
        (* backward substitution, timing and validation *)
        decl "ops" (i 0);
        call_assign "ops" "pdtrsv" [ v "n"; v "nb" ];
        decl "tsum" (i 0);
        decl "tt" (i 0);
        call_assign "tt" "timer_rfact" [ v "total_work" ];
        assign "tsum" (v "tsum" +: v "tt");
        call_assign "tt" "timer_pfact" [ v "total_work" +: i 1 ];
        assign "tsum" (v "tsum" +: v "tt");
        call_assign "tt" "timer_mxswp" [ v "ops" ];
        assign "tsum" (v "tsum" +: v "tt");
        call_assign "tt" "timer_update" [ v "total_work" +: v "ops" ];
        assign "tsum" (v "tsum" +: v "tt");
        call_assign "tt" "timer_laswp" [ v "ops" +: i 2 ];
        assign "tsum" (v "tsum" +: v "tt");
        call_assign "tt" "timer_ptrsv" [ v "ops" +: i 3 ];
        assign "tsum" (v "tsum" +: v "tt");
        if_ (v "tsum" <=: i 0) [ decl "timer_anomaly" (i 1) ] [];
        decl "passed" (i 0);
        call_assign "passed" "residual" [ v "n"; v "seed" ];
        decl "gwork" (i 0);
        allreduce ~op:Ast.Op_sum (v "total_work") ~into:(Ast.Lvar "gwork");
        if_ (v "passed" =: i 1)
          [ if_ (v "equil" =: i 1) [ decl "equilibrated" (i 1) ] [] ]
          [ decl "failed_residual" (i 1) ];
        if_ (v "gwork" <=: i 0) [ abort "no work performed" ] [];
      ])

let target =
  Registry.make ~name:"hpl"
    ~description:
      "Synthetic High-Performance Linpack: 28 marked parameters, deep sanity check, \
       P x Q grid, recursive panel factorization, 6 broadcast variants, O(N^2/NB) update"
    ~tuning:
      {
        Registry.dfs_phase = 200;
        depth_bound = 600;
        key_input = "n";
        default_cap = 300;
        initial_nprocs = 8;
        step_limit = 4_000_000;
      }
    (program
       ([ main; rpanel; pdupdate; pdtrsv; residual ]
       @ [ pdmatgen; equil_scale; serial_lu; tall_grid_setup; pdfact_custom ]
       @ List.map dgemm_tile_func [ 0; 1; 2; 3; 4; 5 ]
       @ [
           pivot_search_func "pivot_full" `Full;
           pivot_search_func "pivot_tournament" `Tournament;
           pivot_search_func "pivot_threshold" `Threshold;
         ]
       @ [
           timer_func "rfact" 13;
           timer_func "pfact" 17;
           timer_func "mxswp" 19;
           timer_func "update" 23;
           timer_func "laswp" 29;
           timer_func "ptrsv" 31;
         ]
       @ [
           pfact_variant "pdfact_left" 11;
           pfact_variant "pdfact_crout" 23;
           pfact_variant "pdfact_right" 37;
         ]
       @ List.mapi bcast_variant bcast_names
       @ [
           swap_variant "swap_binexch" `Binexch;
           swap_variant "swap_spread" `Spread;
           swap_variant "swap_mix" `Mix;
         ]))
