(* Synthetic IMB-MPI1: the Intel MPI Benchmarks MPI-1 suite driver.

   15 marked inputs select which of the benchmarks run, how many
   iterations each performs and over which message-length range; an
   npmin-style sweep re-runs the collectives on sub-communicators of
   decreasing size (a real Comm_split per subset, feeding rc variables).
   Every benchmark moves data through the simulator's point-to-point or
   collective machinery. *)

open Minic
open Builder

(* The per-benchmark inner loops: each returns a checksum so results
   feed a final branch. *)

let bench_pingpong =
  func "bench_pingpong"
    [ ("iters", Ast.Tint); ("msglen", Ast.Tint); ("rank", Ast.Tint); ("size", Ast.Tint) ]
    ([
       if_ (v "size" <: i 2) [ ret (i 0) ] [];
       decl "sum" (i 0);
       decl "buf" (i 0);
     ]
    @ for_ "it" (i 0) (v "iters")
        [
          if_ (v "rank" =: i 0)
            [
              send ~dest:(i 1) ~tag:(i 10) (v "msglen" +: v "it");
              recv ~src:(i 1) ~tag:(i 11) ~into:(Ast.Lvar "buf") ();
              assign "sum" (v "sum" +: v "buf");
            ]
            [
              if_ (v "rank" =: i 1)
                [
                  recv ~src:(i 0) ~tag:(i 10) ~into:(Ast.Lvar "buf") ();
                  send ~dest:(i 0) ~tag:(i 11) (v "buf" +: i 1);
                ]
                [];
            ];
        ]
    @ [ ret (v "sum") ])

let bench_pingping =
  func "bench_pingping"
    [ ("iters", Ast.Tint); ("msglen", Ast.Tint); ("rank", Ast.Tint); ("size", Ast.Tint) ]
    ([
       if_ (v "size" <: i 2) [ ret (i 0) ] [];
       decl "sum" (i 0);
       decl "buf" (i 0);
       decl "peer" (i 0);
       if_ (v "rank" =: i 0) [ assign "peer" (i 1) ] [ assign "peer" (i 0) ];
     ]
    @ for_ "it" (i 0) (v "iters")
        [
          if_ (v "rank" <=: i 1)
            [
              send ~dest:(v "peer") ~tag:(i 20) (v "msglen");
              recv ~src:(v "peer") ~tag:(i 20) ~into:(Ast.Lvar "buf") ();
              assign "sum" (v "sum" +: v "buf");
            ]
            [];
        ]
    @ [ ret (v "sum") ])

let bench_sendrecv =
  func "bench_sendrecv"
    [ ("iters", Ast.Tint); ("msglen", Ast.Tint); ("rank", Ast.Tint); ("size", Ast.Tint) ]
    ([
       if_ (v "size" <: i 2) [ ret (i 0) ] [];
       decl "sum" (i 0);
       decl "buf" (i 0);
       decl "right" ((v "rank" +: i 1) %: v "size");
       decl "left" ((v "rank" +: v "size" -: i 1) %: v "size");
     ]
    @ for_ "it" (i 0) (v "iters")
        [
          send ~dest:(v "right") ~tag:(i 30) (v "msglen" +: v "rank");
          recv ~src:(v "left") ~tag:(i 30) ~into:(Ast.Lvar "buf") ();
          assign "sum" (v "sum" +: v "buf");
        ]
    @ [ ret (v "sum") ])

let bench_exchange =
  (* the real IMB Exchange uses Isend/Irecv/Waitall: post both receives,
     fire both sends, then wait *)
  func "bench_exchange"
    [ ("iters", Ast.Tint); ("msglen", Ast.Tint); ("rank", Ast.Tint); ("size", Ast.Tint) ]
    ([
       if_ (v "size" <: i 2) [ ret (i 0) ] [];
       decl "sum" (i 0);
       decl "buf" (i 0);
       decl "right" ((v "rank" +: i 1) %: v "size");
       decl "left" ((v "rank" +: v "size" -: i 1) %: v "size");
     ]
    @ for_ "it" (i 0) (v "iters")
        [
          irecv ~src:(v "left") ~tag:(i 40) ~req:"rreq_l" ();
          irecv ~src:(v "right") ~tag:(i 41) ~req:"rreq_r" ();
          isend ~dest:(v "right") ~tag:(i 40) ~req:"sreq_r" (v "msglen");
          isend ~dest:(v "left") ~tag:(i 41) ~req:"sreq_l" (v "msglen" +: i 1);
          wait ~into:(Ast.Lvar "buf") (v "rreq_l");
          assign "sum" (v "sum" +: v "buf");
          wait ~into:(Ast.Lvar "buf") (v "rreq_r");
          assign "sum" (v "sum" +: v "buf");
          wait (v "sreq_r");
          wait (v "sreq_l");
        ]
    @ [ ret (v "sum") ])

(* Collective benchmarks share one shape: parameterize by construction. *)
let collective_bench name body_stmts =
  func name
    [ ("iters", Ast.Tint); ("msglen", Ast.Tint); ("rank", Ast.Tint); ("size", Ast.Tint) ]
    ([ decl "sum" (i 0); decl "buf" (i 0) ]
    @ for_ "it" (i 0) (v "iters") body_stmts
    @ [
        if_ (v "sum" <: i 0) [ ret (i 0) ] [];
        ret (v "sum");
      ])

let bench_bcast =
  collective_bench "bench_bcast"
    [
      assign "buf" (v "msglen" +: v "it");
      bcast ~root:(i 0) (Ast.Lvar "buf");
      assign "sum" (v "sum" +: v "buf");
    ]

let bench_allreduce =
  collective_bench "bench_allreduce"
    [
      allreduce ~op:Ast.Op_sum (v "msglen" +: v "rank") ~into:(Ast.Lvar "buf");
      assign "sum" (v "sum" +: v "buf");
    ]

let bench_reduce =
  collective_bench "bench_reduce"
    [
      reduce ~op:Ast.Op_max ~root:(i 0) (v "msglen" +: v "rank") ~into:(Ast.Lvar "buf");
      if_ (v "rank" =: i 0) [ assign "sum" (v "sum" +: v "buf") ] [];
    ]

let bench_reduce_scatter =
  collective_bench "bench_reduce_scatter"
    [
      (* modelled as reduce followed by scatter through an array *)
      allreduce ~op:Ast.Op_sum (v "msglen") ~into:(Ast.Lvar "buf");
      assign "sum" (v "sum" +: (v "buf" /: v "size"));
    ]

let bench_allgather =
  collective_bench "bench_allgather"
    [
      allgather (v "msglen" +: v "rank") ~into:"gbuf";
      assign "sum" (v "sum" +: idx "gbuf" (i 0));
      if_ (len "gbuf" >: i 1) [ assign "sum" (v "sum" +: idx "gbuf" (i 1)) ] [];
    ]

let bench_gather =
  collective_bench "bench_gather"
    [
      gather ~root:(i 0) (v "msglen" +: v "rank") ~into:"gbuf";
      if_ (v "rank" =: i 0) [ assign "sum" (v "sum" +: idx "gbuf" (v "size" -: i 1)) ] [];
    ]

let bench_scatter =
  func "bench_scatter"
    [ ("iters", Ast.Tint); ("msglen", Ast.Tint); ("rank", Ast.Tint); ("size", Ast.Tint) ]
    ([
       decl "sum" (i 0);
       decl "buf" (i 0);
       decl_arr "sbuf" (v "size");
     ]
    @ for_ "k" (i 0) (v "size") [ aset "sbuf" (v "k") (v "msglen" +: v "k") ]
    @ for_ "it" (i 0) (v "iters")
        [
          scatter ~root:(i 0) "sbuf" ~into:(Ast.Lvar "buf");
          assign "sum" (v "sum" +: v "buf");
        ]
    @ [ ret (v "sum") ])

let bench_alltoall =
  func "bench_alltoall"
    [ ("iters", Ast.Tint); ("msglen", Ast.Tint); ("rank", Ast.Tint); ("size", Ast.Tint) ]
    ([
       decl "sum" (i 0);
       decl_arr "sbuf" (v "size");
     ]
    @ for_ "k" (i 0) (v "size") [ aset "sbuf" (v "k") (v "msglen" +: v "rank" +: v "k") ]
    @ for_ "it" (i 0) (v "iters")
        [
          alltoall "sbuf" ~into:"rbuf";
          assign "sum" (v "sum" +: idx "rbuf" (i 0));
        ]
    @ [ ret (v "sum") ])

let bench_barrier =
  collective_bench "bench_barrier"
    [ barrier Ast.World; assign "sum" (v "sum" +: i 1) ]

(* The v-variants: counts differ per rank, modelled by branch-rich count
   computation feeding the regular collective machinery. *)
let vcount_func =
  func "vcount"
    [ ("rank", Ast.Tint); ("size", Ast.Tint); ("msglen", Ast.Tint) ]
    [
      decl "c" (v "msglen");
      if_ (v "rank" =: i 0) [ assign "c" (v "c" +: v "size") ] [];
      if_ (v "rank" %: i 2 =: i 1) [ assign "c" (v "c" +: i 1) ] [];
      if_ (v "c" >: i 4096) [ assign "c" (i 4096) ] [];
      if_ (v "c" <=: i 0) [ assign "c" (i 1) ] [];
      ret (v "c");
    ]

let bench_allgatherv =
  collective_bench "bench_allgatherv"
    [
      decl "cnt" (i 0);
      call_assign "cnt" "vcount" [ v "rank"; v "size"; v "msglen" ];
      allgather (v "cnt") ~into:"gbuf";
      assign "sum" (v "sum" +: idx "gbuf" (v "size" -: i 1));
    ]

let bench_gatherv =
  collective_bench "bench_gatherv"
    [
      decl "cnt" (i 0);
      call_assign "cnt" "vcount" [ v "rank"; v "size"; v "msglen" ];
      gather ~root:(i 0) (v "cnt") ~into:"gbuf";
      if_ (v "rank" =: i 0)
        [
          if_ (len "gbuf" >: i 2)
            [ assign "sum" (v "sum" +: idx "gbuf" (i 2)) ]
            [ assign "sum" (v "sum" +: idx "gbuf" (i 0)) ];
        ]
        [];
    ]

let bench_scatterv =
  func "bench_scatterv"
    [ ("iters", Ast.Tint); ("msglen", Ast.Tint); ("rank", Ast.Tint); ("size", Ast.Tint) ]
    ([
       decl "sum" (i 0);
       decl "buf" (i 0);
       decl_arr "sbuf" (v "size");
     ]
    @ for_ "k" (i 0) (v "size")
        [
          if_ (v "k" %: i 3 =: i 0)
            [ aset "sbuf" (v "k") (v "msglen" *: i 2) ]
            [ aset "sbuf" (v "k") (v "msglen") ];
        ]
    @ for_ "it" (i 0) (v "iters")
        [
          scatter ~root:(i 0) "sbuf" ~into:(Ast.Lvar "buf");
          if_ (v "buf" >: v "msglen") [ assign "sum" (v "sum" +: i 2) ]
            [ assign "sum" (v "sum" +: i 1) ];
        ]
    @ [ ret (v "sum") ])

(* Uniband: a window of outstanding nonblocking sends from even ranks to
   their odd neighbour, measuring one-directional message rate. *)
let bench_uniband =
  func "bench_uniband"
    [ ("iters", Ast.Tint); ("msglen", Ast.Tint); ("rank", Ast.Tint); ("size", Ast.Tint) ]
    ([
       if_ (v "size" <: i 2) [ ret (i 0) ] [];
       if_ (v "rank" >=: i 2) [ ret (i 0) ] [];
       decl "sum" (i 0);
       decl "buf" (i 0);
     ]
    @ for_ "it" (i 0) (v "iters")
        [
          if_ (v "rank" =: i 0)
            [
              isend ~dest:(i 1) ~tag:(i 60) ~req:"w0" (v "msglen");
              isend ~dest:(i 1) ~tag:(i 61) ~req:"w1" (v "msglen" +: i 1);
              wait (v "w0");
              wait (v "w1");
              recv ~src:(i 1) ~tag:(i 62) ~into:(Ast.Lvar "buf") ();
              assign "sum" (v "sum" +: v "buf");
            ]
            [
              irecv ~src:(i 0) ~tag:(i 60) ~req:"r0" ();
              irecv ~src:(i 0) ~tag:(i 61) ~req:"r1" ();
              wait ~into:(Ast.Lvar "buf") (v "r0");
              assign "sum" (v "sum" +: v "buf");
              wait ~into:(Ast.Lvar "buf") (v "r1");
              assign "sum" (v "sum" +: v "buf");
              send ~dest:(i 0) ~tag:(i 62) (v "sum" %: i 1000);
            ];
        ]
    @ [ ret (v "sum") ])

(* Biband: both directions at once, the nonblocking exchange stressed. *)
let bench_biband =
  func "bench_biband"
    [ ("iters", Ast.Tint); ("msglen", Ast.Tint); ("rank", Ast.Tint); ("size", Ast.Tint) ]
    ([
       if_ (v "size" <: i 2) [ ret (i 0) ] [];
       if_ (v "rank" >=: i 2) [ ret (i 0) ] [];
       decl "sum" (i 0);
       decl "buf" (i 0);
       decl "peer" (i 1 -: v "rank");
     ]
    @ for_ "it" (i 0) (v "iters")
        [
          irecv ~src:(v "peer") ~tag:(i 63) ~req:"rr" ();
          isend ~dest:(v "peer") ~tag:(i 63) ~req:"sr" (v "msglen" +: v "rank");
          wait ~into:(Ast.Lvar "buf") (v "rr");
          wait (v "sr");
          assign "sum" (v "sum" +: v "buf");
          if_ (v "sum" >: i 1000000) [ assign "sum" (v "sum" /: i 2) ] [];
        ]
    @ [ ret (v "sum") ])

(* Post-run latency statistics: min/max/avg classification per length. *)
let latency_stats_func k =
  let name = Printf.sprintf "latency_stats_%d" k in
  func name
    [ ("sample", Ast.Tint); ("iters", Ast.Tint) ]
    [
      if_ (v "iters" <=: i 0) [ ret (i 0) ] [];
      decl "avg" (v "sample" /: v "iters");
      if_ (v "avg" <: i k) [ ret (i k) ] [];
      if_ (v "avg" >: i (1000 * (k + 1))) [ ret (i (1000 * (k + 1))) ] [];
      if_ (v "avg" %: i (k + 3) =: i 1) [ ret (v "avg" +: i 1) ] [];
      ret (v "avg");
    ]

(* One-sided benchmarks exist in IMB-RMA, not MPI-1: kept in the build
   behind an impossible guard (iters is capped at 100), statically
   counted but unreachable — the Table III reachable/total gap. *)
let bench_rma_put =
  collective_bench "bench_rma_put"
    [
      allreduce ~op:Ast.Op_max (v "msglen") ~into:(Ast.Lvar "buf");
      if_ (v "buf" >: i 0) [ assign "sum" (v "sum" +: v "buf") ] [];
      if_ (v "it" %: i 16 =: i 15) [ barrier Ast.World ] [];
    ]

let benches =
  [
    ("run_pingpong", "bench_pingpong");
    ("run_pingping", "bench_pingping");
    ("run_sendrecv", "bench_sendrecv");
    ("run_exchange", "bench_exchange");
    ("run_bcast", "bench_bcast");
    ("run_allreduce", "bench_allreduce");
    ("run_reduce", "bench_reduce");
    ("run_reduce_scatter", "bench_reduce_scatter");
    ("run_allgather", "bench_allgather");
    ("run_gather", "bench_gather");
    ("run_scatter", "bench_scatter");
    ("run_alltoall", "bench_alltoall");
  ]

(* benches keyed off derived conditions rather than their own flag *)
let extra_benches =
  [
    ("run_allgather", "bench_allgatherv");
    ("run_gather", "bench_gatherv");
    ("run_scatter", "bench_scatterv");
  ]

let main =
  func "main" []
    ([
       (* 15 marked inputs: iteration count (the paper's N, capped at
          100), message-length exponents, npmin, and 11 benchmark
          selection flags (alltoall is keyed off msgexp parity) *)
       input "iters" ~lo:(-8) ~cap:100 ~default:10;
       input "minexp" ~lo:(-8) ~cap:8 ~default:0;
       input "maxexp" ~lo:(-8) ~cap:12 ~default:4;
       input "npmin" ~lo:(-8) ~cap:16 ~default:2;
     ]
    @ List.map
        (fun (flag, _) -> input flag ~lo:(-8) ~cap:1 ~default:1)
        (List.filteri (fun k _ -> k < 11) benches)
    @ [
        decl "rank" (i 0);
        decl "size" (i 0);
        comm_rank Ast.World "rank";
        comm_size Ast.World "size";
        sanity (v "iters" >=: i 1);
        sanity (v "minexp" >=: i 0);
        sanity (v "maxexp" >=: v "minexp");
        sanity (v "maxexp" <=: i 20);
        sanity (v "npmin" >=: i 1);
        sanity (v "npmin" <=: v "size");
      ]
    @ List.concat_map
        (fun (flag, _) -> [ sanity (v flag >=: i 0); sanity (v flag <=: i 1) ])
        (List.filteri (fun k _ -> k < 11) benches)
    @ [
        decl "checksum" (i 0);
        decl "r" (i 0);
        decl "e" (v "minexp");
        while_
          (v "e" <=: v "maxexp")
          ([
             decl "msglen" (Ast.Binop (Ast.Shl, i 1, v "e"));
           ]
          @ List.concat_map
              (fun (flag, bench) ->
                let guarded call_stmts =
                  if flag = "run_alltoall" then
                    (* alltoall keyed off message-length parity instead of
                       a flag: exactly 11 flags + parity = 12 benches *)
                    [ if_ (v "e" %: i 2 =: i 0) call_stmts [] ]
                  else [ if_ (v flag =: i 1) call_stmts [] ]
                in
                guarded
                  [
                    call_assign "r" bench [ v "iters"; v "msglen"; v "rank"; v "size" ];
                    assign "checksum" (v "checksum" +: v "r");
                  ])
              benches
          @ List.concat_map
              (fun (flag, bench) ->
                (* v-variants run when the flag is set AND the message is
                   large enough to make uneven counts interesting *)
                [
                  if_
                    (v flag =: i 1 &&: (v "e" >=: i 2))
                    [
                      call_assign "r" bench [ v "iters"; v "msglen"; v "rank"; v "size" ];
                      assign "checksum" (v "checksum" +: v "r");
                    ]
                    [];
                ])
              extra_benches
          @ [
              (* IMB-RMA lives in another suite: guard can never hold
                 because iters is capped at 100 *)
              if_
                (v "iters" >: i 100)
                [
                  call_assign "r" "bench_rma_put" [ v "iters"; v "msglen"; v "rank"; v "size" ];
                  assign "checksum" (v "checksum" +: v "r");
                ]
                [];
              assign "e" (v "e" +: i 1);
            ])
        (* npmin sweep: re-run two collectives on shrinking process subsets *);
        decl "active" (v "size");
        while_
          (v "active" >=: v "npmin")
          [
            decl "color" (i 0);
            if_ (v "rank" <: v "active") [ assign "color" (i 1) ] [];
            decl "subcomm" (i 0);
            comm_split Ast.World ~color:(v "color") ~key:(v "rank") ~into:"subcomm";
            if_ (v "color" =: i 1)
              [
                decl "subrank" (i 0);
                decl "subsize" (i 0);
                comm_rank (Ast.Comm_var "subcomm") "subrank";
                comm_size (Ast.Comm_var "subcomm") "subsize";
                decl "gsum" (i 0);
                allreduce ~comm:(Ast.Comm_var "subcomm") ~op:Ast.Op_sum (v "subrank")
                  ~into:(Ast.Lvar "gsum");
                assign "checksum" (v "checksum" +: v "gsum");
                if_ (v "subrank" =: i 0)
                  [ if_ (v "subsize" %: i 2 =: i 1) [ decl "odd_subset" (i 1) ] [] ]
                  [];
              ]
              [];
            assign "active" ((v "active" +: i 1) /: i 2);
            if_ (v "active" <=: i 1) [ assign "active" (v "npmin" -: i 1) ] [];
          ];
        (* bandwidth pair benchmarks when ping-pong was selected *)
        if_ (v "run_pingpong" =: i 1)
          [
            call_assign "r" "bench_uniband" [ v "iters"; i 64; v "rank"; v "size" ];
            assign "checksum" (v "checksum" +: v "r");
            call_assign "r" "bench_biband" [ v "iters"; i 64; v "rank"; v "size" ];
            assign "checksum" (v "checksum" +: v "r");
          ]
          [];
        (* closing barrier benchmark, always run *)
        call_assign "r" "bench_barrier" [ v "iters"; i 0; v "rank"; v "size" ];
        assign "checksum" (v "checksum" +: v "r");
        (* per-length latency classification *)
        decl "lat" (i 0);
        call_assign "lat" "latency_stats_0" [ v "checksum"; v "iters" ];
        call_assign "lat" "latency_stats_1" [ v "checksum" +: v "lat"; v "iters" ];
        call_assign "lat" "latency_stats_2" [ v "checksum" +: v "lat"; v "iters" ];
        call_assign "lat" "latency_stats_3" [ v "checksum" +: v "lat"; v "iters" ];
        if_ (v "lat" <: i 0) [ abort "negative latency" ] [];
        if_ (v "checksum" <: i 0) [ abort "checksum underflow" ] [];
      ])

let target =
  Registry.make ~name:"imb-mpi1"
    ~description:
      "Synthetic Intel MPI Benchmarks (MPI-1): 15 marked inputs, 12 benchmarks over real \
       point-to-point and collective traffic, message-length and npmin sweeps"
    ~tuning:
      {
        Registry.dfs_phase = 100;
        depth_bound = 300;
        key_input = "iters";
        default_cap = 100;
        initial_nprocs = 8;
        step_limit = 4_000_000;
      }
    (program
       [
         main;
         bench_pingpong;
         bench_pingping;
         bench_sendrecv;
         bench_exchange;
         bench_bcast;
         bench_allreduce;
         bench_reduce;
         bench_reduce_scatter;
         bench_allgather;
         bench_gather;
         bench_scatter;
         bench_alltoall;
         bench_barrier;
         vcount_func;
         bench_allgatherv;
         bench_gatherv;
         bench_scatterv;
         bench_rma_put;
         bench_uniband;
         bench_biband;
         latency_stats_func 0;
         latency_stats_func 1;
         latency_stats_func 2;
         latency_stats_func 3;
       ])
