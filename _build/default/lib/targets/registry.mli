(** The evaluation targets and their per-target tuning.

    The tuning mirrors the paper's experiment setup (section VI): the
    pure-DFS phase length, the BoundedDFS depth limit estimated from it,
    the headline input [N] with its default cap, and the initial process
    count. *)

type tuning = {
  dfs_phase : int;  (** x: pure-DFS iterations before BoundedDFS *)
  depth_bound : int;  (** BoundedDFS depth limit *)
  key_input : string;  (** the paper's N for this program *)
  default_cap : int;  (** default cap NC for the key input *)
  initial_nprocs : int;
  step_limit : int;
}

type t = {
  name : string;
  description : string;
  program : Minic.Ast.program;  (** validated, not yet instrumented *)
  tuning : tuning;
}

val make : name:string -> description:string -> tuning:tuning -> Minic.Ast.program -> t
(** Validates the program with {!Minic.Check} (raises on errors). *)

val instrument : t -> Minic.Branchinfo.t

(** The full catalogue lives in {!Catalog} (it must see every target
    module, so it cannot be defined here). *)
