type tuning = {
  dfs_phase : int;
  depth_bound : int;
  key_input : string;
  default_cap : int;
  initial_nprocs : int;
  step_limit : int;
}

type t = {
  name : string;
  description : string;
  program : Minic.Ast.program;
  tuning : tuning;
}

let make ~name ~description ~tuning program =
  { name; description; program = Minic.Check.check_exn program; tuning }

(* CIL-style pipeline: simplify (constant folding, dead branches), then
   assign branch ids. *)
let instrument t = Minic.Branchinfo.instrument (Minic.Opt.simplify_program t.program)
