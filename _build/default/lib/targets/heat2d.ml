(* Beyond the paper's three programs: a 2-D heat-diffusion stencil with
   row-block decomposition and halo exchange — the canonical SPMD kernel
   the paper's introduction motivates. Serves as a fourth target and as
   the README's "realistic scenario" example.

   Seeded defect: the halo-exchange buffer is sized for the interior
   rows only; when the row count is not divisible by the process count,
   the last rank owns one extra row and writes one element past its
   buffer (an off-by-one remainder bug, found by COMPI when it varies
   the process count so that [ny mod size <> 0]). *)

open Minic
open Builder

let stencil_row =
  func "stencil_row"
    [ ("width", Ast.Tint); ("above", Ast.Tint); ("below", Ast.Tint); ("here", Ast.Tint) ]
    ([ decl "acc" (i 0) ]
    @ for_ "c" (i 0) (v "width")
        [
          if_ (v "c" =: i 0)
            [ assign "acc" (v "acc" +: v "here") ]
            [
              if_ (v "c" =: v "width" -: i 1)
                [ assign "acc" (v "acc" +: v "here") ]
                [ assign "acc" (v "acc" +: ((v "above" +: v "below" +: v "here") /: i 3)) ];
            ];
        ]
    @ [
        if_ (v "acc" <: i 0) [ ret (i 0) ] [];
        ret (v "acc");
      ])

let main =
  let step_body =
    [
      if_ (v "rank" >: i 0)
        [
          send ~dest:(v "rank" -: i 1) ~tag:(i 1) (v "source_temp" +: v "t");
          recv ~src:(v "rank" -: i 1) ~tag:(i 2) ~into:(Ast.Lvar "up") ();
        ]
        [ assign "up" (v "source_temp") ];
      if_ (v "rank" <: v "size" -: i 1)
        [
          send ~dest:(v "rank" +: i 1) ~tag:(i 2) (v "source_temp" -: v "t");
          recv ~src:(v "rank" +: i 1) ~tag:(i 1) ~into:(Ast.Lvar "down") ();
        ]
        [ assign "down" (i 0) ];
      assign "delta" (i 0);
    ]
    @ for_ "r" (i 0) (v "myrows")
        [
          call_assign "row_acc" "stencil_row" [ v "nx"; v "up"; v "down"; v "source_temp" ];
          (* r + 1 skips the top halo row; the buffer was sized with the
             quotient row count, so the last rank's remainder rows walk
             off its end whenever ny mod size >= 2 *)
          aset "field" ((v "r" +: i 1) *: v "nx") (v "row_acc");
          assign "delta" (v "delta" +: (v "row_acc" %: v "tol"));
        ]
    @ [
        allreduce ~op:Ast.Op_max (v "delta") ~into:(Ast.Lvar "gdelta");
        if_ (v "gdelta" <=: v "tol") [ assign "t" (v "steps") ] [ assign "t" (v "t" +: i 1) ];
      ]
  in
  func "main" []
    [
      input "nx" ~lo:(-8) ~cap:64 ~default:16;
      input "ny" ~lo:(-8) ~cap:64 ~default:16;
      input "steps" ~lo:(-8) ~cap:20 ~default:5;
      input "source_temp" ~lo:(-8) ~cap:1000 ~default:100;
      input "tol" ~lo:(-8) ~cap:50 ~default:2;
      decl "rank" (i 0);
      decl "size" (i 0);
      comm_rank Ast.World "rank";
      comm_size Ast.World "size";
      sanity (v "nx" >=: i 4);
      sanity (v "ny" >=: i 4);
      sanity (v "steps" >=: i 1);
      sanity (v "source_temp" >: i 0);
      sanity (v "tol" >=: i 1);
      sanity (v "ny" >=: v "size");
      decl "rows" (v "ny" /: v "size");
      decl "rem" (v "ny" %: v "size");
      decl "myrows" (v "rows");
      if_ (v "rank" =: v "size" -: i 1) [ assign "myrows" (v "rows" +: v "rem") ] [];
      if_ (v "myrows" <: i 1) [ exit_ (i 1) ] [];
      decl_arr "field" ((v "rows" +: i 2) *: v "nx");
      decl "t" (i 0);
      decl "up" (i 0);
      decl "down" (i 0);
      decl "row_acc" (i 0);
      decl "delta" (i 0);
      decl "gdelta" (i 0);
      while_ (v "t" <: v "steps") step_body;
      decl "final" (i 0);
      reduce ~op:Ast.Op_sum ~root:(i 0) (v "delta") ~into:(Ast.Lvar "final");
      if_ (v "rank" =: i 0)
        [ if_ (v "final" <: i 0) [ abort "negative energy" ] [] ]
        [];
    ]

let target =
  Registry.make ~name:"heat2d"
    ~description:
      "2-D heat stencil with halo exchange (beyond the paper): remainder-row buffer \
       overflow found only when ny mod size <> 0"
    ~tuning:
      {
        Registry.dfs_phase = 30;
        depth_bound = 200;
        key_input = "ny";
        default_cap = 64;
        initial_nprocs = 4;
        step_limit = 2_000_000;
      }
    (program [ main; stencil_row ])
