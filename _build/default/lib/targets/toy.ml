(* The two illustrative programs of the paper.

   [fig1] is the sequential example of Figure 1: two marked inputs, a
   bug hidden behind [x == 100], and a second branch on x/2 + y
   (linearized as x + 2y so the constraint stays symbolic).

   [fig2] is the MPI skeleton of Figure 2: read inputs, sanity-check
   them (including a combination x*y), distribute work by rank, and run
   a loop-based solver. Branch 4F of the paper — reachable only when a
   non-zero rank sees y >= 100 — is the one standard concolic testing
   misses and COMPI's focus shifting finds. *)

open Minic
open Builder

let fig1 =
  Registry.make ~name:"toy-fig1"
    ~description:"Figure 1: sequential concolic example with a hidden bug"
    ~tuning:
      {
        Registry.dfs_phase = 4;
        depth_bound = 50;
        key_input = "x";
        default_cap = 500;
        initial_nprocs = 1;
        step_limit = 100_000;
      }
    (program
       [
         func "main" []
           [
             input "x" ~lo:(-1000) ~cap:500 ~default:10;
             input "y" ~lo:(-1000) ~cap:500 ~default:50;
             if_ (v "x" =: i 100)
               [ abort "BUG: reached the x == 100 cell" ]  (* 0F *)
               [];
             if_
               (v "x" +: (i 2 *: v "y") >: i 400)  (* 1T *)
               [ decl "w" (v "x" +: v "y") ]
               [ decl "w" (v "x" -: v "y") ];
           ];
       ])

let fig2 =
  Registry.make ~name:"toy-fig2"
    ~description:"Figure 2: SPMD skeleton with rank-dependent branches"
    ~tuning:
      {
        Registry.dfs_phase = 8;
        depth_bound = 100;
        key_input = "x";
        default_cap = 200;
        initial_nprocs = 4;
        step_limit = 200_000;
      }
    (program
       [
         func "solve_step" [ ("x", Ast.Tint); ("k", Ast.Tint) ]
           [
             if_ (v "k" %: i 2 =: i 0) [ ret (v "x" -: i 1) ] [];
             ret (v "x" -: i 2);
           ];
         func "main" []
           [
             input "x" ~lo:0 ~cap:200 ~default:10;
             input "y" ~lo:0 ~cap:200 ~default:50;
             (* sanity check: x, y and their combination *)
             sanity (v "x" >: i 0);  (* 0 *)
             sanity (v "y" >: i 0);  (* 1 *)
             sanity (v "x" *: v "y" <: i 30000);  (* 2 *)
             decl "rank" (i 0);
             decl "size" (i 0);
             comm_rank Ast.World "rank";
             comm_size Ast.World "size";
             if_
               (v "rank" =: i 0)  (* 3 *)
               [ decl "role" (i 1) ]
               [
                 (* 4: only non-zero ranks can see both sides of this *)
                 if_ (v "y" <: i 100) [ decl "light_work" (i 1) ] [ decl "heavy_work" (i 1) ];
               ];
             (* loop-based solver *)
             decl "w" (v "x");
             decl "k" (i 0);
             while_
               (v "w" >: i 0)  (* 5 *)
               [
                 call_assign "w" "solve_step" [ v "w"; v "k" ];
                 assign "k" (v "k" +: i 1);
               ];
             decl "total" (i 0);
             allreduce ~op:Ast.Op_sum (v "k") ~into:(Ast.Lvar "total");
             if_ (v "total" >: i 0) [] [];  (* 6 *)
           ];
       ])
