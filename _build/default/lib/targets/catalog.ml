let all () =
  [
    Toy.fig1; Toy.fig2; Susy_hmc.target; Hpl.target; Imb_mpi1.target; Heat2d.target;
    Npb_cg.target;
  ]
let find name = List.find_opt (fun (t : Registry.t) -> t.Registry.name = name) (all ())

let find_exn name =
  match find name with
  | Some t -> t
  | None -> invalid_arg (Printf.sprintf "unknown target %s" name)

let names () = List.map (fun (t : Registry.t) -> t.Registry.name) (all ())
