(** Concrete assignments of symbolic variables, i.e. solver models and
    the "previous inputs" used by incremental solving. *)

type t

val empty : t
val set : Varid.t -> int -> t -> t
val find : Varid.t -> t -> int option
val get : Varid.t -> default:int -> t -> int
val mem : Varid.t -> t -> bool
val bindings : t -> (Varid.t * int) list
val of_bindings : (Varid.t * int) list -> t

val union_prefer_left : t -> t -> t
(** [union_prefer_left fresh stale] keeps every binding of [fresh] and
    falls back to [stale] elsewhere — how an incremental solve merges
    re-solved variables with previous values. *)

val lookup_fn : default:int -> t -> Varid.t -> int
(** Total lookup function for evaluation. *)

val changed_vars : before:t -> after:t -> Varid.Set.t
(** Variables whose value differs between the two models (present in
    [after] and either absent from [before] or bound differently). These
    are COMPI's "most up-to-date" values (section III-C). *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
