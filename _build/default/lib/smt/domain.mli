(** Integer interval domains used by the finite-domain search.

    Every symbolic variable ranges over a bounded interval; input capping
    (section IV-A of the paper) tightens the upper bound, MPI-semantics
    constraints tighten the lower bound. *)

type t = private { lo : int; hi : int }

val make : lo:int -> hi:int -> t
(** Raises [Invalid_argument] when [lo > hi]. *)

val default_lo : int
val default_hi : int

val full : t
(** The default domain [[default_lo, default_hi]]. *)

val singleton : int -> t
val is_singleton : t -> int option
val size : t -> int
val mem : int -> t -> bool

val clamp_lo : int -> t -> t option
(** [clamp_lo b d] intersects [d] with [[b, +inf)]; [None] if empty. *)

val clamp_hi : int -> t -> t option
val inter : t -> t -> t option

val remove : int -> t -> t option
(** Removing an interior value is a no-op (intervals cannot represent
    holes); removing an endpoint shrinks the interval. [None] if the
    result is empty. *)

val split : t -> (t * t) option
(** [split d] halves a non-singleton domain at its midpoint; [None] for
    singletons. *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
