type t = int Varid.Map.t

let empty = Varid.Map.empty
let set = Varid.Map.add
let find = Varid.Map.find_opt
let get v ~default m = match find v m with Some x -> x | None -> default
let mem = Varid.Map.mem
let bindings = Varid.Map.bindings
let of_bindings bs = List.fold_left (fun m (v, x) -> set v x m) empty bs

let union_prefer_left fresh stale =
  Varid.Map.union (fun _ f _ -> Some f) fresh stale

let lookup_fn ~default m v = get v ~default m

let changed_vars ~before ~after =
  Varid.Map.fold
    (fun v x acc ->
      match find v before with
      | Some x' when x' = x -> acc
      | Some _ | None -> Varid.Set.add v acc)
    after Varid.Set.empty

let equal = Varid.Map.equal Int.equal

let pp ppf m =
  Format.fprintf ppf "{";
  Varid.Map.iter (fun v x -> Format.fprintf ppf " %a=%d" Varid.pp v x) m;
  Format.fprintf ppf " }"
