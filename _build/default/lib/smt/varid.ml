type t = int

let compare = Int.compare
let equal = Int.equal
let pp ppf v = Format.fprintf ppf "x%d" v

module Map = Map.Make (Int)
module Set = Set.Make (Int)

type gen = { mutable next : int }

let make_gen () = { next = 0 }

let fresh g =
  let v = g.next in
  g.next <- v + 1;
  v

let count g = g.next
