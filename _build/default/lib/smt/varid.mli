(** Identifiers for symbolic variables.

    A symbolic variable stands for one marked program input (or one
    MPI-semantics value such as a rank read at a particular call site).
    Identifiers are dense small integers allocated by a {!gen}. *)

type t = int

val compare : t -> t -> int
val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit

module Map : Map.S with type key = t
module Set : Set.S with type elt = t

(** Allocator for fresh variable identifiers. *)
type gen

val make_gen : unit -> gen

val fresh : gen -> t
(** [fresh g] returns the next unused identifier: 0, 1, 2, ... *)

val count : gen -> int
(** [count g] is the number of identifiers allocated so far. *)
