lib/smt/solver.mli: Constr Domain Model Stdlib Varid
