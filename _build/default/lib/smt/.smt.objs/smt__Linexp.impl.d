lib/smt/linexp.ml: Format Int List Option Varid
