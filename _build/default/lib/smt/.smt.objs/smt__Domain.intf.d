lib/smt/domain.mli: Format
