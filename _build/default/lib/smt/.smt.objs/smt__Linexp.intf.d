lib/smt/linexp.mli: Format Varid
