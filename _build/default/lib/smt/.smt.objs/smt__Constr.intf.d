lib/smt/constr.mli: Format Linexp Varid
