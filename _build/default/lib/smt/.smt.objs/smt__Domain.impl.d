lib/smt/domain.ml: Format
