lib/smt/model.ml: Format Int List Varid
