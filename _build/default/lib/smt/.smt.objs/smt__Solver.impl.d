lib/smt/solver.ml: Constr Domain Int Linexp List Model Option Stdlib Varid
