lib/smt/constr.ml: Format Int Linexp List Varid
