lib/smt/varid.ml: Format Int Map Set
