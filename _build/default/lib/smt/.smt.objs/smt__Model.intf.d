lib/smt/model.mli: Format Varid
