lib/smt/varid.mli: Format Map Set
