type t = { lo : int; hi : int }

let make ~lo ~hi =
  if lo > hi then invalid_arg "Domain.make: lo > hi";
  { lo; hi }

let default_lo = -1_000_000
let default_hi = 1_000_000
let full = { lo = default_lo; hi = default_hi }
let singleton v = { lo = v; hi = v }
let is_singleton d = if d.lo = d.hi then Some d.lo else None
let size d = d.hi - d.lo + 1
let mem v d = d.lo <= v && v <= d.hi
let clamp_lo b d = if b > d.hi then None else Some { d with lo = max b d.lo }
let clamp_hi b d = if b < d.lo then None else Some { d with hi = min b d.hi }

let inter a b =
  let lo = max a.lo b.lo and hi = min a.hi b.hi in
  if lo > hi then None else Some { lo; hi }

let remove v d =
  if v = d.lo && v = d.hi then None
  else if v = d.lo then Some { d with lo = v + 1 }
  else if v = d.hi then Some { d with hi = v - 1 }
  else Some d

let split d =
  if d.lo = d.hi then None
  else
    let mid = d.lo + ((d.hi - d.lo) / 2) in
    Some ({ d with hi = mid }, { d with lo = mid + 1 })

let equal a b = a.lo = b.lo && a.hi = b.hi
let pp ppf d = Format.fprintf ppf "[%d, %d]" d.lo d.hi
