(* Abstract syntax of Mini-C, the target-program language.

   Mini-C plays the role of C-plus-CIL in the original COMPI: targets are
   written against this AST (via the Builder DSL), the instrumentation
   pass (Branchinfo) assigns a unique id to every conditional, and the
   interpreter (Interp) executes programs with either heavy (symbolic
   shadow) or light (branch recording only) instrumentation — the paper's
   two-way instrumentation.

   Conditional statements carry a mutable-free [id] field; builders set it
   to [unassigned_id] and {!Branchinfo.instrument} rewrites the program
   with dense ids. A conditional with id [c] owns branches [2c] (true
   side) and [2c+1] (false side). *)

type ctype = Tint | Tfloat

type unop = Neg | Lognot

type binop =
  | Add | Sub | Mul | Div | Mod
  | Eq | Ne | Lt | Le | Gt | Ge
  | Logand | Logor
  | Bitand | Bitor | Bitxor | Shl | Shr

type expr =
  | Int of int
  | Float of float
  | Var of string
  | Idx of string * expr  (* array read: a[e] *)
  | Len of string  (* array length, used by generated harness code *)
  | Unop of unop * expr
  | Binop of binop * expr * expr

type lval = Lvar of string | Lidx of string * expr

(* Reference to a communicator: the MPI_COMM_WORLD constant or a variable
   holding a handle produced by Comm_split. The distinction drives COMPI's
   automatic rw-vs-rc marking (paper section III-A). *)
type comm_ref = World | Comm_var of string

type reduce_op = Op_sum | Op_prod | Op_max | Op_min

type mpi =
  | Comm_rank of comm_ref * string
  | Comm_size of comm_ref * string
  | Comm_split of { comm : comm_ref; color : expr; key : expr; into : string }
  | Barrier of comm_ref
  | Send of { comm : comm_ref; dest : expr; tag : expr; data : expr }
  | Recv of { comm : comm_ref; src : expr option; tag : expr option; into : lval }
  | Isend of { comm : comm_ref; dest : expr; tag : expr; data : expr; req : string }
  | Irecv of { comm : comm_ref; src : expr option; tag : expr option; req : string }
  | Wait of { req : expr; into : lval option }
      (* into receives the payload when the request was an Irecv *)
  | Bcast of { comm : comm_ref; root : expr; data : lval }
  | Reduce of { comm : comm_ref; op : reduce_op; root : expr; data : expr; into : lval }
  | Allreduce of { comm : comm_ref; op : reduce_op; data : expr; into : lval }
  | Gather of { comm : comm_ref; root : expr; data : expr; into : string }
  | Scatter of { comm : comm_ref; root : expr; data : string; into : lval }
  | Allgather of { comm : comm_ref; data : expr; into : string }
  | Alltoall of { comm : comm_ref; data : string; into : string }

(* A marked input variable (paper: developer-marked symbolic input).
   [cap] is the input-capping bound from COMPI_int_with_limit; [lo] is an
   optional lower bound (the marking interface also accepts one so that
   e.g. sizes can be kept non-negative). [default] seeds the very first
   (random) test when the driver has no derived value yet. *)
type input_decl = { iname : string; cap : int option; lo : int option; default : int }

type stmt =
  | Decl of string * ctype * expr
  | Decl_arr of string * ctype * expr  (* malloc(n * sizeof(elt)) *)
  | Assign of lval * expr
  | If of { id : int; cond : expr; then_ : block; else_ : block }
  | While of { id : int; cond : expr; body : block }
  | Call of string * expr list
  | Call_assign of string * string * expr list  (* x = f(args) *)
  | Return of expr option
  | Assert of expr * string
  | Abort of string
  | Exit of expr
      (* clean termination with a status code: how sanity checks reject
         invalid inputs — an unsuccessful run, not a bug *)
  | Input of input_decl
  | Mpi of mpi
  | Nop

and block = stmt list

type func = { fname : string; params : (string * ctype) list; body : block }

type program = { funcs : func list; entry : string }

let unassigned_id = -1

let find_func program name =
  List.find_opt (fun f -> f.fname = name) program.funcs

(* Structural fold over every statement of a block, depth-first. *)
let rec fold_block f acc block = List.fold_left (fold_stmt f) acc block

and fold_stmt f acc stmt =
  let acc = f acc stmt in
  match stmt with
  | If { then_; else_; _ } -> fold_block f (fold_block f acc then_) else_
  | While { body; _ } -> fold_block f acc body
  | Decl _ | Decl_arr _ | Assign _ | Call _ | Call_assign _ | Return _
  | Assert _ | Abort _ | Exit _ | Input _ | Mpi _ | Nop ->
    acc

let fold_program f acc program =
  List.fold_left (fun acc fn -> fold_block f acc fn.body) acc program.funcs

(* Count conditionals in a block / function / program. Total branches is
   twice this, matching CREST's static branch accounting. *)
let conditionals_in_block block =
  fold_block
    (fun n stmt -> match stmt with If _ | While _ -> n + 1 | _ -> n)
    0 block

let conditionals_in_func fn = conditionals_in_block fn.body

let conditionals_in_program program =
  List.fold_left (fun n fn -> n + conditionals_in_func fn) 0 program.funcs

let inputs_of_program program =
  List.rev
    (fold_program
       (fun acc stmt -> match stmt with Input d -> d :: acc | _ -> acc)
       [] program)
