(* Runtime faults a Mini-C execution can produce. These are exactly the
   bug classes COMPI exposes (paper section II-C): assertion violations,
   segmentation faults, floating-point exceptions (division by zero), and
   infinite loops (detected via a step budget, like COMPI's per-test
   timeout). [Mpi_error] covers misuse of the message-passing substrate
   (invalid rank, deadlock participation, ...). *)

type t =
  | Segfault of { array : string; index : int; length : int; func : string }
  | Fpe of { func : string }
  | Assert_fail of { message : string; func : string }
  | Abort_called of { message : string; func : string }
  | Step_limit_exceeded of { steps : int }
  | Mpi_error of { message : string; func : string }
  | Runtime_type_error of { message : string; func : string }

exception Fault of t

let kind_name = function
  | Segfault _ -> "segfault"
  | Fpe _ -> "floating-point-exception"
  | Assert_fail _ -> "assertion-violation"
  | Abort_called _ -> "abort"
  | Step_limit_exceeded _ -> "timeout"
  | Mpi_error _ -> "mpi-error"
  | Runtime_type_error _ -> "type-error"

let pp ppf = function
  | Segfault { array; index; length; func } ->
    Format.fprintf ppf "segfault in %s: %s[%d] with length %d" func array index length
  | Fpe { func } -> Format.fprintf ppf "floating point exception (division by zero) in %s" func
  | Assert_fail { message; func } -> Format.fprintf ppf "assertion failed in %s: %s" func message
  | Abort_called { message; func } -> Format.fprintf ppf "abort in %s: %s" func message
  | Step_limit_exceeded { steps } ->
    Format.fprintf ppf "step limit exceeded after %d steps (possible infinite loop)" steps
  | Mpi_error { message; func } -> Format.fprintf ppf "MPI error in %s: %s" func message
  | Runtime_type_error { message; func } -> Format.fprintf ppf "type error in %s: %s" func message

let to_string t = Format.asprintf "%a" pp t
