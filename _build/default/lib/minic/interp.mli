(** Mini-C interpreter with concolic instrumentation hooks.

    One interpreter instance executes one MPI process. The [hooks] record
    is the two-way instrumentation of the paper (section IV-B):

    - {b heavy} mode maintains a symbolic shadow for every integer
      expression over marked variables and reports a symbolic constraint
      with every branch (this is what the focus process runs);
    - {b light} mode skips all shadow bookkeeping and only reports branch
      ids (what the non-focus processes run).

    Non-linear operations concretize their symbolic side (CREST
    behaviour), so every reported constraint is linear. *)

type mode = Heavy | Light

(** How a value obtained from the MPI environment should be marked
    (paper Table I: rw / rc / sw). *)
type sem_kind =
  | Rank_world
  | Rank_comm of Mpi_iface.comm
  | Size_world
  | Size_comm of Mpi_iface.comm

type hooks = {
  mode : mode;
  input_value : Ast.input_decl -> int;
      (** concrete value for a marked input in this test *)
  on_input : Ast.input_decl -> int -> Smt.Linexp.t option;
      (** symbolic shadow for a marked input (heavy mode only) *)
  on_mpi_sem : sem_kind -> int -> Smt.Linexp.t option;
      (** symbolic shadow for an MPI rank/size read (automatic marking) *)
  on_branch : id:int -> taken:bool -> constr:Smt.Constr.t option -> unit;
      (** every conditional evaluation; [constr] holds for the taken
          direction and is [None] when the condition is concrete or the
          mode is light *)
  on_func_enter : string -> unit;
      (** reachable-function accounting *)
  mpi : Mpi_iface.handler;
  step_limit : int;
}

val null_mpi : Mpi_iface.handler
(** Single-process stand-in: rank 0, size 1, self-sends unsupported.
    Raises [Fault.Fault (Mpi_error _)] for point-to-point requests. *)

val plain_hooks : ?step_limit:int -> ?mpi:Mpi_iface.handler -> unit -> hooks
(** Light-mode hooks that ignore all events; inputs read their declared
    defaults. Convenient for unit tests. *)

val run : hooks -> Ast.program -> (unit, Fault.t) result
(** Execute the program's entry function. All runtime faults are
    captured; exceptions escaping [hooks.mpi] (e.g. scheduler control
    effects) pass through untouched. *)
