type t = {
  program : Ast.program;
  total_conditionals : int;
  total_branches : int;
  funcs : string list;
  conds_of_func : (string, int list) Hashtbl.t;
  func_of_cond : string array;
}

let branch_of_cond c taken = (2 * c) + if taken then 0 else 1
let cond_of_branch b = (b / 2, b mod 2 = 0)

let instrument (program : Ast.program) =
  let next = ref 0 in
  let owners = ref [] in
  let conds_of_func = Hashtbl.create 16 in
  let fresh fname =
    let id = !next in
    incr next;
    owners := fname :: !owners;
    id
  in
  let rec walk_block fname block = List.map (walk_stmt fname) block
  and walk_stmt fname (stmt : Ast.stmt) : Ast.stmt =
    match stmt with
    | Ast.If { id = _; cond; then_; else_ } ->
      let id = fresh fname in
      (* children are numbered after their parent, depth-first *)
      Ast.If { id; cond; then_ = walk_block fname then_; else_ = walk_block fname else_ }
    | Ast.While { id = _; cond; body } ->
      let id = fresh fname in
      Ast.While { id; cond; body = walk_block fname body }
    | Ast.Decl _ | Ast.Decl_arr _ | Ast.Assign _ | Ast.Call _ | Ast.Call_assign _
    | Ast.Return _ | Ast.Assert _ | Ast.Abort _ | Ast.Exit _ | Ast.Input _ | Ast.Mpi _
    | Ast.Nop ->
      stmt
  in
  let funcs =
    List.map
      (fun (fn : Ast.func) ->
        let start = !next in
        let body = walk_block fn.Ast.fname fn.Ast.body in
        let ids = List.init (!next - start) (fun k -> start + k) in
        Hashtbl.replace conds_of_func fn.Ast.fname ids;
        { fn with Ast.body })
      program.Ast.funcs
  in
  let func_of_cond = Array.of_list (List.rev !owners) in
  {
    program = { program with Ast.funcs };
    total_conditionals = !next;
    total_branches = 2 * !next;
    funcs = List.map (fun (fn : Ast.func) -> fn.Ast.fname) funcs;
    conds_of_func;
    func_of_cond;
  }

let branches_of_func t fname =
  match Hashtbl.find_opt t.conds_of_func fname with
  | Some ids -> 2 * List.length ids
  | None -> 0

let reachable_branches t ~encountered =
  List.fold_left
    (fun acc fname -> if encountered fname then acc + branches_of_func t fname else acc)
    0 t.funcs
