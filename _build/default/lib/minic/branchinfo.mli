(** Instrumentation pass: assigns dense ids to every conditional.

    This is the CIL phase of the original COMPI: a static walk over the
    program that numbers each conditional statement and reports the
    static branch census used by the paper's Table III (total branches)
    and by its coverage denominators (reachable branches = sum of the
    branches of every function encountered during testing). A conditional
    with id [c] owns branch [2c] (true side) and [2c+1] (false side). *)

type t = {
  program : Ast.program;  (** same program with ids assigned *)
  total_conditionals : int;
  total_branches : int;
  funcs : string list;  (** in declaration order *)
  conds_of_func : (string, int list) Hashtbl.t;
  func_of_cond : string array;  (** indexed by conditional id *)
}

val instrument : Ast.program -> t

val branch_of_cond : int -> bool -> int
(** [branch_of_cond c taken] is the branch id for direction [taken]. *)

val cond_of_branch : int -> int * bool

val branches_of_func : t -> string -> int
(** Number of branches owned by one function. *)

val reachable_branches : t -> encountered:(string -> bool) -> int
(** The paper's reachable-branch estimate: the sum of all branches of the
    functions for which [encountered] holds. *)
