(** Combinator DSL for constructing Mini-C programs.

    Targets (SUSY-HMC, HPL, IMB-MPI1, the toy examples) are written with
    these combinators; {!Branchinfo.instrument} must be applied before a
    program is executed so every conditional gets a branch id. *)

open Ast

(** {1 Expressions} *)

val i : int -> expr
val f : float -> expr
val v : string -> expr
val idx : string -> expr -> expr
val len : string -> expr

val ( +: ) : expr -> expr -> expr
val ( -: ) : expr -> expr -> expr
val ( *: ) : expr -> expr -> expr
val ( /: ) : expr -> expr -> expr
val ( %: ) : expr -> expr -> expr
val ( =: ) : expr -> expr -> expr
val ( <>: ) : expr -> expr -> expr
val ( <: ) : expr -> expr -> expr
val ( <=: ) : expr -> expr -> expr
val ( >: ) : expr -> expr -> expr
val ( >=: ) : expr -> expr -> expr
val ( &&: ) : expr -> expr -> expr
val ( ||: ) : expr -> expr -> expr
val neg : expr -> expr
val lognot : expr -> expr

(** {1 Statements} *)

val decl : string -> expr -> stmt
val declf : string -> expr -> stmt
val decl_arr : string -> expr -> stmt
val decl_arrf : string -> expr -> stmt
val assign : string -> expr -> stmt
val aset : string -> expr -> expr -> stmt

val if_ : expr -> block -> block -> stmt
(** Fresh conditional with an unassigned branch id. *)

val while_ : expr -> block -> stmt

val for_ : string -> expr -> expr -> block -> block
(** [for_ x lo hi body] declares [x = lo] and loops while [x < hi],
    incrementing [x] after [body] — sugar over [decl] and {!while_}, so
    the loop condition is a real branch. *)

val call : string -> expr list -> stmt
val call_assign : string -> string -> expr list -> stmt
val ret : expr -> stmt
val ret_void : stmt

val assert_ : expr -> string -> stmt
(** Instrumented assertion: desugars to [if (!cond) abort(msg)] so that
    concolic testing can negate its branch and steer into the failure. *)

val abort : string -> stmt

val exit_ : expr -> stmt
(** Clean termination with a status code — an unsuccessful run rather
    than a bug. *)

val sanity : expr -> stmt
(** [sanity cond] rejects the run with [exit(1)] unless [cond] holds —
    the shape of MPI programs' input validation phase. Its conditional
    is a real branch that concolic testing must flip to get past. *)

val input : ?cap:int -> ?lo:int -> ?default:int -> string -> stmt
(** Marked symbolic input (paper: COMPI_int / COMPI_int_with_limit). *)

(** {1 MPI statements} *)

val comm_rank : comm_ref -> string -> stmt
val comm_size : comm_ref -> string -> stmt
val comm_split : comm_ref -> color:expr -> key:expr -> into:string -> stmt
val barrier : comm_ref -> stmt
val send : ?comm:comm_ref -> dest:expr -> tag:expr -> expr -> stmt
val recv : ?comm:comm_ref -> ?src:expr -> ?tag:expr -> into:lval -> unit -> stmt

val isend : ?comm:comm_ref -> dest:expr -> tag:expr -> req:string -> expr -> stmt
(** Non-blocking send; the request handle is stored in variable [req]. *)

val irecv : ?comm:comm_ref -> ?src:expr -> ?tag:expr -> req:string -> unit -> stmt
val wait : ?into:lval -> expr -> stmt
val bcast : ?comm:comm_ref -> root:expr -> lval -> stmt
val reduce : ?comm:comm_ref -> op:reduce_op -> root:expr -> expr -> into:lval -> stmt
val allreduce : ?comm:comm_ref -> op:reduce_op -> expr -> into:lval -> stmt
val gather : ?comm:comm_ref -> root:expr -> expr -> into:string -> stmt
val scatter : ?comm:comm_ref -> root:expr -> string -> into:lval -> stmt
val allgather : ?comm:comm_ref -> expr -> into:string -> stmt
val alltoall : ?comm:comm_ref -> string -> into:string -> stmt

(** {1 Programs} *)

val func : string -> (string * ctype) list -> block -> func
val program : ?entry:string -> func list -> program
