(** Structural validation of Mini-C programs.

    Run at target-construction time (and in the test suite) to catch
    builder mistakes before a campaign starts: missing entry function,
    duplicate functions, calls to undefined functions, arity mismatches,
    reads of variables not defined on any path, and ill-formed input
    declarations. The checks are conservative: a program that passes can
    still fault at runtime (that is the point of testing it), but every
    reported error is a definite defect. *)

val check : Ast.program -> string list
(** Empty list = no problems found. *)

val check_exn : Ast.program -> Ast.program
(** Identity on valid programs; raises [Invalid_argument] with the full
    error list otherwise. *)
