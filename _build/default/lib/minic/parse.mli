(** Parser for the Mini-C surface syntax.

    Accepts the dialect the pretty-printer emits (so
    [parse (Pretty.program_to_string p)] reconstructs [p]'s structure)
    plus hand-writing conveniences: [for] loops (desugared like
    {!Builder.for_}), [sanity(cond);], string-argument [abort], and the
    marking forms [COMPI_int(&x);] / [COMPI_int_with_limit(&x, cap);] /
    [COMPI_int_range(&x, lo, cap, default);].

    Comments ([/* ... */] and [// ...]) are skipped, so the branch-id
    markers in pretty-printed output are ignored; run
    {!Branchinfo.instrument} on the result to assign fresh ids. *)

type error = { line : int; message : string }

val pp_error : Format.formatter -> error -> unit

val program : string -> (Ast.program, error) result
(** Parse a whole program (a sequence of function definitions); the
    entry point is the function named [main]. *)

val program_exn : string -> Ast.program
(** Raises [Invalid_argument] with the rendered error. *)

val expr : string -> (Ast.expr, error) result
(** Parse a single expression (used by tests and the CLI). *)
