lib/minic/opt.ml: Ast List Option
