lib/minic/branchinfo.mli: Ast Hashtbl
