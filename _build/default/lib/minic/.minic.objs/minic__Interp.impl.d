lib/minic/interp.ml: Array Ast Fault Float Hashtbl List Mpi_iface Option Printf Smt Value
