lib/minic/check.ml: Ast Hashtbl List Option Printf Set String
