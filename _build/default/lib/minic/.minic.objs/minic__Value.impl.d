lib/minic/value.ml: Array Float Format
