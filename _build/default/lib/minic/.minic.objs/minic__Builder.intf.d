lib/minic/builder.mli: Ast
