lib/minic/ast.ml: List
