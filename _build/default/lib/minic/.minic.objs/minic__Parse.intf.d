lib/minic/parse.mli: Ast Format
