lib/minic/cfg.mli: Branchinfo
