lib/minic/branchinfo.ml: Array Ast Hashtbl List
