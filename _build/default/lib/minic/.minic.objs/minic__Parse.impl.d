lib/minic/parse.ml: Ast Format List Printf String
