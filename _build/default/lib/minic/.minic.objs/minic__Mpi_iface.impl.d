lib/minic/mpi_iface.ml: Ast Value
