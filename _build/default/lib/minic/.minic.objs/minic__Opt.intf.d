lib/minic/opt.mli: Ast
