lib/minic/fault.ml: Format
