lib/minic/cfg.ml: Array Ast Branchinfo Hashtbl Lazy List Set String
