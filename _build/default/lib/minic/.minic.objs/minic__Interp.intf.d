lib/minic/interp.mli: Ast Fault Mpi_iface Smt
