(* The neutral MPI request/reply protocol between the interpreter and
   whatever runtime hosts it (the mpisim scheduler in production, a
   single-process stub in unit tests). Keeping this in minic avoids a
   dependency from the language on the simulator.

   Communicators are integer handles; [world] is MPI_COMM_WORLD. *)

type comm = int

let world : comm = 0

type reduce_op = Rsum | Rprod | Rmax | Rmin

type request =
  | Rank of comm
  | Size of comm
  | Split of { comm : comm; color : int; key : int }
  | Barrier of comm
  | Send of { comm : comm; dest : int; tag : int; data : Value.t }
  | Recv of { comm : comm; src : int option; tag : int option }
  | Isend of { comm : comm; dest : int; tag : int; data : Value.t }
      (* immediate-mode send: completes eagerly, returns a request handle *)
  | Irecv of { comm : comm; src : int option; tag : int option }
      (* posted receive: returns a request handle without blocking *)
  | Wait of int  (* block until the request handle completes *)
  | Bcast of { comm : comm; root : int; data : Value.t option }
      (* [data] is [Some] only at the root *)
  | Reduce of { comm : comm; op : reduce_op; root : int; data : Value.t }
  | Allreduce of { comm : comm; op : reduce_op; data : Value.t }
  | Gather of { comm : comm; root : int; data : Value.t }
  | Scatter of { comm : comm; root : int; data : Value.t option }
      (* [data] is the whole source array at the root; the scheduler
         hands element [i] to rank [i] *)
  | Allgather of { comm : comm; data : Value.t }
  | Alltoall of { comm : comm; data : Value.t }
      (* whole per-destination array; element [j] goes to rank [j] *)

type reply =
  | Runit
  | Rint of int
  | Rvalue of Value.t
  | Rvalues of Value.t list
  | Rnone  (** e.g. the non-root side of Reduce *)

type handler = request -> reply

let reduce_op_of_ast = function
  | Ast.Op_sum -> Rsum
  | Ast.Op_prod -> Rprod
  | Ast.Op_max -> Rmax
  | Ast.Op_min -> Rmin

let request_name = function
  | Rank _ -> "MPI_Comm_rank"
  | Size _ -> "MPI_Comm_size"
  | Split _ -> "MPI_Comm_split"
  | Barrier _ -> "MPI_Barrier"
  | Send _ -> "MPI_Send"
  | Recv _ -> "MPI_Recv"
  | Isend _ -> "MPI_Isend"
  | Irecv _ -> "MPI_Irecv"
  | Wait _ -> "MPI_Wait"
  | Bcast _ -> "MPI_Bcast"
  | Reduce _ -> "MPI_Reduce"
  | Allreduce _ -> "MPI_Allreduce"
  | Gather _ -> "MPI_Gather"
  | Scatter _ -> "MPI_Scatter"
  | Allgather _ -> "MPI_Allgather"
  | Alltoall _ -> "MPI_Alltoall"
