(* Conservative structural checker. Variable tracking uses a
   "may be defined" set: declarations made anywhere earlier in the
   function body count (the interpreter keeps one flat frame per call),
   and both arms of a conditional contribute their declarations. *)

module Sset = Set.Make (String)

type env = {
  program : Ast.program;
  mutable errors : string list;
  func : string;
}

let report env fmt =
  Printf.ksprintf (fun s -> env.errors <- Printf.sprintf "[%s] %s" env.func s :: env.errors) fmt

let rec expr_vars env defined (e : Ast.expr) =
  match e with
  | Ast.Int _ | Ast.Float _ -> ()
  | Ast.Var name | Ast.Len name ->
    if not (Sset.mem name defined) then report env "read of undefined variable %s" name
  | Ast.Idx (name, ie) ->
    if not (Sset.mem name defined) then report env "read of undefined array %s" name;
    expr_vars env defined ie
  | Ast.Unop (_, e1) -> expr_vars env defined e1
  | Ast.Binop (_, a, b) ->
    expr_vars env defined a;
    expr_vars env defined b

let lval_vars env defined = function
  | Ast.Lvar _ -> ()  (* stores may auto-declare (MPI receives do) *)
  | Ast.Lidx (name, ie) ->
    if not (Sset.mem name defined) then report env "write to undefined array %s" name;
    expr_vars env defined ie

let lval_def defined = function
  | Ast.Lvar name -> Sset.add name defined
  | Ast.Lidx _ -> defined

let comm_vars env defined = function
  | Ast.World -> ()
  | Ast.Comm_var name ->
    if not (Sset.mem name defined) then report env "use of undefined communicator %s" name

let check_call env name args =
  match Ast.find_func env.program name with
  | None -> report env "call to undefined function %s" name
  | Some fn ->
    let want = List.length fn.Ast.params and got = List.length args in
    if want <> got then report env "call to %s with %d args (expects %d)" name got want

let rec check_block env defined block =
  List.fold_left (check_stmt env) defined block

and check_stmt env defined (stmt : Ast.stmt) =
  match stmt with
  | Ast.Nop -> defined
  | Ast.Decl (name, _, e) | Ast.Decl_arr (name, _, e) ->
    expr_vars env defined e;
    Sset.add name defined
  | Ast.Assign (lv, e) ->
    expr_vars env defined e;
    lval_vars env defined lv;
    (match lv with
    | Ast.Lvar name when not (Sset.mem name defined) ->
      report env "assignment to undeclared variable %s" name
    | Ast.Lvar _ | Ast.Lidx _ -> ());
    lval_def defined lv
  | Ast.If { cond; then_; else_; _ } ->
    expr_vars env defined cond;
    let d1 = check_block env defined then_ in
    let d2 = check_block env defined else_ in
    Sset.union d1 d2
  | Ast.While { cond; body; _ } ->
    expr_vars env defined cond;
    check_block env defined body
  | Ast.Call (name, args) ->
    check_call env name args;
    List.iter (expr_vars env defined) args;
    defined
  | Ast.Call_assign (dst, name, args) ->
    check_call env name args;
    List.iter (expr_vars env defined) args;
    if not (Sset.mem dst defined) then
      report env "call result assigned to undeclared variable %s" dst;
    defined
  | Ast.Return e_opt ->
    Option.iter (expr_vars env defined) e_opt;
    defined
  | Ast.Assert (cond, _) ->
    expr_vars env defined cond;
    defined
  | Ast.Abort _ -> defined
  | Ast.Exit e ->
    expr_vars env defined e;
    defined
  | Ast.Input d ->
    (match (d.Ast.lo, d.Ast.cap) with
    | Some lo, Some cap when lo > cap ->
      report env "input %s has lo %d > cap %d" d.Ast.iname lo cap
    | (Some _ | None), (Some _ | None) -> ());
    Sset.add d.Ast.iname defined
  | Ast.Mpi m -> check_mpi env defined m

and check_mpi env defined (m : Ast.mpi) =
  let e = expr_vars env defined in
  match m with
  | Ast.Comm_rank (c, var) | Ast.Comm_size (c, var) ->
    comm_vars env defined c;
    Sset.add var defined
  | Ast.Comm_split { comm; color; key; into } ->
    comm_vars env defined comm;
    e color;
    e key;
    Sset.add into defined
  | Ast.Barrier c ->
    comm_vars env defined c;
    defined
  | Ast.Send { comm; dest; tag; data } ->
    comm_vars env defined comm;
    e dest;
    e tag;
    e data;
    defined
  | Ast.Recv { comm; src; tag; into } ->
    comm_vars env defined comm;
    Option.iter e src;
    Option.iter e tag;
    lval_vars env defined into;
    lval_def defined into
  | Ast.Isend { comm; dest; tag; data; req } ->
    comm_vars env defined comm;
    e dest;
    e tag;
    e data;
    Sset.add req defined
  | Ast.Irecv { comm; src; tag; req } ->
    comm_vars env defined comm;
    Option.iter e src;
    Option.iter e tag;
    Sset.add req defined
  | Ast.Wait { req; into } ->
    e req;
    (match into with
    | Some lv ->
      lval_vars env defined lv;
      lval_def defined lv
    | None -> defined)
  | Ast.Bcast { comm; root; data } ->
    comm_vars env defined comm;
    e root;
    (match data with
    | Ast.Lvar name when not (Sset.mem name defined) ->
      report env "bcast of undefined variable %s" name
    | Ast.Lvar _ | Ast.Lidx _ -> lval_vars env defined data);
    lval_def defined data
  | Ast.Reduce { comm; root; data; into; _ } ->
    comm_vars env defined comm;
    e root;
    e data;
    lval_vars env defined into;
    lval_def defined into
  | Ast.Allreduce { comm; data; into; _ } ->
    comm_vars env defined comm;
    e data;
    lval_vars env defined into;
    lval_def defined into
  | Ast.Gather { comm; root; data; into } ->
    comm_vars env defined comm;
    e root;
    e data;
    Sset.add into defined
  | Ast.Scatter { comm; root; data; into } ->
    comm_vars env defined comm;
    e root;
    if not (Sset.mem data defined) then report env "scatter of undefined array %s" data;
    lval_vars env defined into;
    lval_def defined into
  | Ast.Allgather { comm; data; into } ->
    comm_vars env defined comm;
    e data;
    Sset.add into defined
  | Ast.Alltoall { comm; data; into } ->
    comm_vars env defined comm;
    if not (Sset.mem data defined) then report env "alltoall of undefined array %s" data;
    Sset.add into defined

let check (program : Ast.program) =
  let env = { program; errors = []; func = "<program>" } in
  (match Ast.find_func program program.Ast.entry with
  | None -> report env "entry function %s is not defined" program.Ast.entry
  | Some fn ->
    if fn.Ast.params <> [] then report env "entry function %s must take no parameters" fn.Ast.fname);
  let seen = Hashtbl.create 16 in
  List.iter
    (fun (fn : Ast.func) ->
      if Hashtbl.mem seen fn.Ast.fname then
        report env "duplicate function %s" fn.Ast.fname;
      Hashtbl.replace seen fn.Ast.fname ())
    program.Ast.funcs;
  List.iter
    (fun (fn : Ast.func) ->
      let fenv = { env with func = fn.Ast.fname } in
      let params = List.fold_left (fun acc (p, _) -> Sset.add p acc) Sset.empty fn.Ast.params in
      let _ = check_block fenv params fn.Ast.body in
      env.errors <- fenv.errors)
    program.Ast.funcs;
  List.rev env.errors

let check_exn program =
  match check program with
  | [] -> program
  | errors -> invalid_arg ("Minic.Check: " ^ String.concat "; " errors)
