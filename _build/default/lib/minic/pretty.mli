(** C-flavoured pretty-printer for Mini-C programs.

    Used by the examples (to show what a target looks like), by
    debugging, and by the Table III harness, which measures target size
    in pretty-printed source lines (the analogue of the paper's
    SLOCCount numbers). *)

val pp_expr : Format.formatter -> Ast.expr -> unit
val pp_stmt : Format.formatter -> Ast.stmt -> unit
val pp_func : Format.formatter -> Ast.func -> unit
val pp_program : Format.formatter -> Ast.program -> unit

val program_to_string : Ast.program -> string

val source_lines : Ast.program -> int
(** Non-blank lines of the pretty-printed program. *)
