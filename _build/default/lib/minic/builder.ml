open Ast

let i n = Int n
let f x = Float x
let v name = Var name
let idx name e = Idx (name, e)
let len name = Len name
let ( +: ) a b = Binop (Add, a, b)
let ( -: ) a b = Binop (Sub, a, b)
let ( *: ) a b = Binop (Mul, a, b)
let ( /: ) a b = Binop (Div, a, b)
let ( %: ) a b = Binop (Mod, a, b)
let ( =: ) a b = Binop (Eq, a, b)
let ( <>: ) a b = Binop (Ne, a, b)
let ( <: ) a b = Binop (Lt, a, b)
let ( <=: ) a b = Binop (Le, a, b)
let ( >: ) a b = Binop (Gt, a, b)
let ( >=: ) a b = Binop (Ge, a, b)
let ( &&: ) a b = Binop (Logand, a, b)
let ( ||: ) a b = Binop (Logor, a, b)
let neg e = Unop (Neg, e)
let lognot e = Unop (Lognot, e)

let decl name e = Decl (name, Tint, e)
let declf name e = Decl (name, Tfloat, e)
let decl_arr name e = Decl_arr (name, Tint, e)
let decl_arrf name e = Decl_arr (name, Tfloat, e)
let assign name e = Assign (Lvar name, e)
let aset name index e = Assign (Lidx (name, index), e)
let if_ cond then_ else_ = If { id = unassigned_id; cond; then_; else_ }
let while_ cond body = While { id = unassigned_id; cond; body }

let for_ x lo hi body =
  [ decl x lo; while_ (v x <: hi) (body @ [ assign x (v x +: i 1) ]) ]

let call name args = Call (name, args)
let call_assign dst name args = Call_assign (dst, name, args)
let ret e = Return (Some e)
let ret_void = Return None
let assert_ cond msg = if_ (lognot cond) [ Abort msg ] []
let abort msg = Abort msg
let exit_ code = Ast.Exit code

let sanity cond = if_ (lognot cond) [ Ast.Exit (i 1) ] []

let input ?cap ?lo ?(default = 0) iname = Input { iname; cap; lo; default }

let comm_rank comm var = Mpi (Comm_rank (comm, var))
let comm_size comm var = Mpi (Comm_size (comm, var))
let comm_split comm ~color ~key ~into = Mpi (Comm_split { comm; color; key; into })
let barrier comm = Mpi (Barrier comm)
let send ?(comm = World) ~dest ~tag data = Mpi (Send { comm; dest; tag; data })

let recv ?(comm = World) ?src ?tag ~into () = Mpi (Recv { comm; src; tag; into })
let isend ?(comm = World) ~dest ~tag ~req data = Mpi (Isend { comm; dest; tag; data; req })
let irecv ?(comm = World) ?src ?tag ~req () = Mpi (Irecv { comm; src; tag; req })
let wait ?into req = Mpi (Wait { req; into })

let bcast ?(comm = World) ~root data = Mpi (Bcast { comm; root; data })

let reduce ?(comm = World) ~op ~root data ~into =
  Mpi (Reduce { comm; op; root; data; into })

let allreduce ?(comm = World) ~op data ~into = Mpi (Allreduce { comm; op; data; into })
let gather ?(comm = World) ~root data ~into = Mpi (Gather { comm; root; data; into })
let scatter ?(comm = World) ~root data ~into = Mpi (Scatter { comm; root; data; into })
let allgather ?(comm = World) data ~into = Mpi (Allgather { comm; data; into })
let alltoall ?(comm = World) data ~into = Mpi (Alltoall { comm; data; into })

let func fname params body = { fname; params; body }
let program ?(entry = "main") funcs = { funcs; entry }
