let binop_str (op : Ast.binop) =
  match op with
  | Ast.Add -> "+"
  | Ast.Sub -> "-"
  | Ast.Mul -> "*"
  | Ast.Div -> "/"
  | Ast.Mod -> "%"
  | Ast.Eq -> "=="
  | Ast.Ne -> "!="
  | Ast.Lt -> "<"
  | Ast.Le -> "<="
  | Ast.Gt -> ">"
  | Ast.Ge -> ">="
  | Ast.Logand -> "&&"
  | Ast.Logor -> "||"
  | Ast.Bitand -> "&"
  | Ast.Bitor -> "|"
  | Ast.Bitxor -> "^"
  | Ast.Shl -> "<<"
  | Ast.Shr -> ">>"

let rec pp_expr ppf (e : Ast.expr) =
  match e with
  | Ast.Int n -> Format.fprintf ppf "%d" n
  | Ast.Float x -> Format.fprintf ppf "%g" x
  | Ast.Var name -> Format.pp_print_string ppf name
  | Ast.Idx (name, ie) -> Format.fprintf ppf "%s[%a]" name pp_expr ie
  | Ast.Len name -> Format.fprintf ppf "len(%s)" name
  | Ast.Unop (Ast.Neg, e1) -> Format.fprintf ppf "-(%a)" pp_expr e1
  | Ast.Unop (Ast.Lognot, e1) -> Format.fprintf ppf "!(%a)" pp_expr e1
  | Ast.Binop (op, a, b) ->
    Format.fprintf ppf "(%a %s %a)" pp_expr a (binop_str op) pp_expr b

let pp_lval ppf (lv : Ast.lval) =
  match lv with
  | Ast.Lvar name -> Format.pp_print_string ppf name
  | Ast.Lidx (name, ie) -> Format.fprintf ppf "%s[%a]" name pp_expr ie

let comm_str = function Ast.World -> "MPI_COMM_WORLD" | Ast.Comm_var name -> name

let reduce_op_str = function
  | Ast.Op_sum -> "MPI_SUM"
  | Ast.Op_prod -> "MPI_PROD"
  | Ast.Op_max -> "MPI_MAX"
  | Ast.Op_min -> "MPI_MIN"

let ctype_str = function Ast.Tint -> "int" | Ast.Tfloat -> "double"

let pp_mpi ppf (m : Ast.mpi) =
  match m with
  | Ast.Comm_rank (c, var) -> Format.fprintf ppf "MPI_Comm_rank(%s, &%s);" (comm_str c) var
  | Ast.Comm_size (c, var) -> Format.fprintf ppf "MPI_Comm_size(%s, &%s);" (comm_str c) var
  | Ast.Comm_split { comm; color; key; into } ->
    Format.fprintf ppf "MPI_Comm_split(%s, %a, %a, &%s);" (comm_str comm) pp_expr color
      pp_expr key into
  | Ast.Barrier c -> Format.fprintf ppf "MPI_Barrier(%s);" (comm_str c)
  | Ast.Send { comm; dest; tag; data } ->
    Format.fprintf ppf "MPI_Send(%a, %a, %a, %s);" pp_expr data pp_expr dest pp_expr tag
      (comm_str comm)
  | Ast.Recv { comm; src; tag; into } ->
    let pp_opt ppf = function
      | Some e -> pp_expr ppf e
      | None -> Format.pp_print_string ppf "MPI_ANY"
    in
    Format.fprintf ppf "MPI_Recv(&%a, %a, %a, %s);" pp_lval into pp_opt src pp_opt tag
      (comm_str comm)
  | Ast.Isend { comm; dest; tag; data; req } ->
    Format.fprintf ppf "MPI_Isend(%a, %a, %a, %s, &%s);" pp_expr data pp_expr dest pp_expr
      tag (comm_str comm) req
  | Ast.Irecv { comm; src; tag; req } ->
    let pp_opt ppf = function
      | Some e -> pp_expr ppf e
      | None -> Format.pp_print_string ppf "MPI_ANY"
    in
    Format.fprintf ppf "MPI_Irecv(%a, %a, %s, &%s);" pp_opt src pp_opt tag (comm_str comm)
      req
  | Ast.Wait { req; into } -> (
    match into with
    | Some lv -> Format.fprintf ppf "MPI_Wait(&%a -> &%a);" pp_expr req pp_lval lv
    | None -> Format.fprintf ppf "MPI_Wait(&%a);" pp_expr req)
  | Ast.Bcast { comm; root; data } ->
    Format.fprintf ppf "MPI_Bcast(&%a, %a, %s);" pp_lval data pp_expr root (comm_str comm)
  | Ast.Reduce { comm; op; root; data; into } ->
    Format.fprintf ppf "MPI_Reduce(%a, &%a, %s, %a, %s);" pp_expr data pp_lval into
      (reduce_op_str op) pp_expr root (comm_str comm)
  | Ast.Allreduce { comm; op; data; into } ->
    Format.fprintf ppf "MPI_Allreduce(%a, &%a, %s, %s);" pp_expr data pp_lval into
      (reduce_op_str op) (comm_str comm)
  | Ast.Gather { comm; root; data; into } ->
    Format.fprintf ppf "MPI_Gather(%a, %s, %a, %s);" pp_expr data into pp_expr root
      (comm_str comm)
  | Ast.Scatter { comm; root; data; into } ->
    Format.fprintf ppf "MPI_Scatter(%s, &%a, %a, %s);" data pp_lval into pp_expr root
      (comm_str comm)
  | Ast.Allgather { comm; data; into } ->
    Format.fprintf ppf "MPI_Allgather(%a, %s, %s);" pp_expr data into (comm_str comm)
  | Ast.Alltoall { comm; data; into } ->
    Format.fprintf ppf "MPI_Alltoall(%s, %s, %s);" data into (comm_str comm)

let rec pp_stmt ppf (stmt : Ast.stmt) =
  match stmt with
  | Ast.Nop -> Format.fprintf ppf ";"
  | Ast.Decl (name, ctype, e) ->
    Format.fprintf ppf "%s %s = %a;" (ctype_str ctype) name pp_expr e
  | Ast.Decl_arr (name, ctype, e) ->
    Format.fprintf ppf "%s *%s = malloc((%a) * sizeof(%s));" (ctype_str ctype) name pp_expr
      e (ctype_str ctype)
  | Ast.Assign (lv, e) -> Format.fprintf ppf "%a = %a;" pp_lval lv pp_expr e
  | Ast.If { id; cond; then_; else_ } ->
    Format.fprintf ppf "@[<v 2>if /*%d*/ (%a) {%a@]@,}" id pp_expr cond pp_block then_;
    if else_ <> [] then Format.fprintf ppf "@[<v 2> else {%a@]@,}" pp_block else_
  | Ast.While { id; cond; body } ->
    Format.fprintf ppf "@[<v 2>while /*%d*/ (%a) {%a@]@,}" id pp_expr cond pp_block body
  | Ast.Call (name, args) -> Format.fprintf ppf "%s(%a);" name pp_args args
  | Ast.Call_assign (dst, name, args) ->
    Format.fprintf ppf "%s = %s(%a);" dst name pp_args args
  | Ast.Return (Some e) -> Format.fprintf ppf "return %a;" pp_expr e
  | Ast.Return None -> Format.fprintf ppf "return;"
  | Ast.Assert (cond, msg) -> Format.fprintf ppf "assert(%a); /* %s */" pp_expr cond msg
  | Ast.Abort msg -> Format.fprintf ppf "abort(); /* %s */" msg
  | Ast.Exit code -> Format.fprintf ppf "exit(%a);" pp_expr code
  | Ast.Input { iname; cap; lo; default } ->
    (match (cap, lo) with
    | Some c, _ -> Format.fprintf ppf "COMPI_int_with_limit(&%s, %d);" iname c
    | None, _ -> Format.fprintf ppf "COMPI_int(&%s);" iname);
    ignore lo;
    ignore default
  | Ast.Mpi m -> pp_mpi ppf m

and pp_args ppf args =
  Format.pp_print_list
    ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ")
    pp_expr ppf args

and pp_block ppf block =
  List.iter (fun stmt -> Format.fprintf ppf "@,%a" pp_stmt stmt) block

let pp_func ppf (fn : Ast.func) =
  let pp_param ppf (name, ctype) = Format.fprintf ppf "%s %s" (ctype_str ctype) name in
  Format.fprintf ppf "@[<v 2>int %s(%a) {%a@]@,}@," fn.Ast.fname
    (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ") pp_param)
    fn.Ast.params pp_block fn.Ast.body

let pp_program ppf (program : Ast.program) =
  Format.fprintf ppf "@[<v>";
  List.iter (fun fn -> Format.fprintf ppf "%a@," pp_func fn) program.Ast.funcs;
  Format.fprintf ppf "@]"

let program_to_string program = Format.asprintf "%a" pp_program program

let source_lines program =
  program_to_string program
  |> String.split_on_char '\n'
  |> List.filter (fun line -> String.trim line <> "")
  |> List.length
